#include "detector_session.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "telemetry/hub.hh"
#include "util/thread_pool.hh"
#include "util/tuning.hh"

namespace ptolemy::core
{

namespace
{

bool
wideBatchDefault()
{
    ensureTuningApplied();
    // Off by default: on a single core the fused pipeline extracts each
    // Record while its activations are still cache-hot, and that
    // locality is worth more than the wide path's batched SGEMMs (the
    // bench-compare harness measures both; see wide_speedup_vs_fused).
    // The wide path stays available as the layer-major seam for
    // multi-sample offload, opt-in via env or setWideBatch().
    if (const char *s = std::getenv("PTOLEMY_WIDE_BATCH")) {
        const std::string v(s);
        return !(v == "0" || v == "off");
    }
    return false;
}

std::size_t
wideChunkDefault()
{
    ensureTuningApplied();
    if (const char *s = std::getenv("PTOLEMY_WIDE_CHUNK")) {
        const long v = std::atol(s);
        if (v > 0)
            return static_cast<std::size_t>(v);
    }
    return 64;
}

} // namespace

DetectorSession::DetectorSession(const DetectorModel &model)
    : mdl(&model), slots(1), wideBatch(wideBatchDefault()),
      wideChunkSize(wideChunkDefault())
{
}

void
DetectorSession::detectInto(const nn::Tensor &x, Decision &d, Slot &s)
{
    // The fused per-sample pipeline: inference, extraction, canary
    // comparison and forest scoring back-to-back against one slot's
    // scratch, so the recorded activations are still cache-hot when
    // the extractor ranks them. Bit-identical to the historical
    // sequential pipeline: same float ops, same order.
    mdl->network().inferInto(x, s.rec);
    finishDetect(s.rec, d, s);
}

void
DetectorSession::finishDetect(const nn::Network::Record &rec, Decision &d,
                              Slot &s)
{
    d.predictedClass = rec.predictedClass();
    mdl->extractor().extractInto(rec, s.ws, s.path);
    path::computeSimilarityInto(
        s.path, mdl->classPaths().classPath(d.predictedClass),
        mdl->extractor().layout(), d.features);
    d.features.toVectorInto(s.feat);
    d.score = mdl->forest().predictProb(s.feat);
    if (!std::isfinite(d.score)) {
        // Poisoned activation: a NaN/Inf somewhere upstream propagated
        // into the score. Every comparison against a NaN is false, so
        // `score >= 0.5` would silently wave the sample through —
        // fail SAFE instead and flag it. Telemetry below routes the
        // non-finite score to its typed poison counter (never a bin),
        // so sketches and quantiles stay uncorrupted and the drift
        // detector reports the poisoning as its own event class.
        d.adversarial = true;
    } else {
        d.adversarial = d.score >= 0.5;
    }
    if (hub != nullptr) {
        // Shard index = this slot's index, so concurrent loop bodies
        // (distinct slots by the pool's contract) write disjoint
        // shards. Integer counters only: Decisions and all sealed
        // aggregates stay bit-identical at any thread count.
        hub->ingest(static_cast<unsigned>(&s - slots.data()), d.score,
                    d.predictedClass, d.adversarial,
                    1.0 - d.features.overall, &s.path);
    }
}

Decision
DetectorSession::detect(const nn::Tensor &x)
{
    Decision d;
    detectInto(x, d, slots[0]);
    return d;
}

void
DetectorSession::detectBatch(std::span<const nn::Tensor *const> xs,
                             std::span<Decision> out, ThreadPool *pool)
{
    // Documented contract (see header): the spans must pair up
    // one-to-one. A length mismatch is a caller bug — debug-assert so
    // it trips loudly in instrumented builds, and throw a typed error
    // in release builds rather than writing out of bounds.
    assert(xs.size() == out.size() &&
           "detectBatch: requests/decisions span lengths differ");
    if (xs.size() != out.size())
        throw std::invalid_argument(
            "DetectorSession::detectBatch: xs.size() != out.size()");
    // Empty batch: explicit no-op — no pool touch, no slot growth.
    if (xs.empty())
        return;
    if (!pool)
        pool = &globalPool();
    // Grow (never shrink) the slot table to the pool width so warmed
    // buffers survive pool changes.
    if (slots.size() < pool->size())
        slots.resize(pool->size());
    if (!wideBatch) {
        pool->parallelForWithTid(xs.size(), [&](std::size_t i, unsigned tid) {
            detectInto(*xs[i], out[i], slot(tid));
        });
        return;
    }
    // Wide-batch path: the forward pass runs layer-major over chunks —
    // one wide SGEMM per conv layer, one weight stream per linear layer
    // — then the per-sample tail (extraction onward) fans out over the
    // slot scratch. The wide forward's Records are bit-identical to
    // inferInto's and the tail is the same code either way, so
    // Decisions match the fused path exactly at any chunk size or
    // thread count. wideRecs is persistent session scratch: steady
    // state allocates nothing.
    for (std::size_t base = 0; base < xs.size(); base += wideChunkSize) {
        const std::size_t n = std::min(wideChunkSize, xs.size() - base);
        mdl->network().forwardBatchWide(xs.subspan(base, n), wideRecs, pool);
        pool->parallelForWithTid(n, [&](std::size_t i, unsigned tid) {
            finishDetect(wideRecs[i], out[base + i], slot(tid));
        });
    }
}

void
DetectorSession::detectBatch(const std::vector<nn::Tensor> &xs,
                             std::vector<Decision> &out, ThreadPool *pool)
{
    thread_local std::vector<const nn::Tensor *> ptrs;
    ptrs.clear();
    for (const auto &x : xs)
        ptrs.push_back(&x);
    out.resize(xs.size());
    detectBatch(std::span<const nn::Tensor *const>(ptrs.data(),
                                                   ptrs.size()),
                std::span<Decision>(out.data(), out.size()), pool);
}

std::vector<double>
DetectorSession::featuresFor(const nn::Network::Record &rec,
                             path::ExtractionTrace *trace)
{
    Slot &s = slots[0];
    mdl->extractor().extractInto(rec, s.ws, s.path, trace);
    const auto &pc = mdl->classPaths().classPath(rec.predictedClass());
    return path::computeSimilarity(s.path, pc, mdl->extractor().layout())
        .toVector();
}

double
DetectorSession::score(const nn::Network::Record &rec)
{
    return mdl->forest().predictProb(featuresFor(rec));
}

void
DetectorSession::featuresBatch(const std::vector<nn::Tensor> &xs,
                               classify::FeatureMatrix &rows,
                               std::vector<std::size_t> *predicted)
{
    detail::featuresBatch(*mdl, xs, rows, predicted, fbScratch);
}

} // namespace ptolemy::core
