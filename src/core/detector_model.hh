/**
 * @file
 * Immutable detector engine: the Ptolemy serving-side model artifact.
 *
 * The detection stack is split production-engine style:
 *
 *  - DetectorModel — everything fitted offline and *frozen*: the
 *    protected (const) network, the extraction configuration, the
 *    per-class canary paths and the fitted random forest. A
 *    DetectorModel performs no writes after construction, so any
 *    number of threads may serve detections from one instance
 *    concurrently, with no locks (see the thread-safety contract on
 *    the class).
 *
 *  - DetectorBuilder — the offline phase (paper Fig. 4 top): profile
 *    class paths over correctly-predicted training samples, fit the
 *    classifier on benign/adversarial feature rows, then release the
 *    finished, immutable DetectorModel.
 *
 *  - DetectorSession (detector_session.hh) — one lightweight,
 *    cheap-to-construct object per client/request stream holding all
 *    mutable hot-path scratch.
 *
 * Persistence: save()/load() serialize the fitted artifacts (config,
 * class paths, forest) keyed by the network's architecture signature,
 * so a profiled detector deploys onto a freshly loaded network without
 * re-profiling.
 */

#ifndef PTOLEMY_CORE_DETECTOR_MODEL_HH
#define PTOLEMY_CORE_DETECTOR_MODEL_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "classify/random_forest.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"
#include "path/class_path.hh"
#include "path/extractor.hh"

namespace ptolemy::core
{

class DetectorModel;

namespace detail
{
/**
 * Reusable scratch for the chunked batched feature pipeline shared by
 * DetectorBuilder (fitting phase) and DetectorSession (evaluation
 * harness): per-chunk input copies, records, paths and per-slot
 * extraction workspaces.
 */
struct FeatureBatchScratch
{
    std::vector<nn::Tensor> xs;
    std::vector<nn::Network::Record> recs;
    std::vector<BitVector> paths;
    path::BatchExtractionWorkspace bws;
};

/**
 * Batched similarity-feature rows over raw inputs: inference and path
 * extraction fan out on the process-wide pool, one workspace per pool
 * slot. rows[i] (and predicted[i] when requested) always correspond to
 * xs[i] and are bit-identical to the sequential pipeline, independent
 * of thread count.
 */
void featuresBatch(const DetectorModel &mdl,
                   const std::vector<nn::Tensor> &xs,
                   classify::FeatureMatrix &rows,
                   std::vector<std::size_t> *predicted,
                   FeatureBatchScratch &scratch);
} // namespace detail

/**
 * Typed error thrown by DetectorModel::load for every failure mode:
 * unreadable file, bad magic, architecture-signature mismatch,
 * truncation at any byte offset, or corrupt/inconsistent artifact data.
 * Corrupt inputs never crash, read out of bounds, or attempt unbounded
 * allocations — every length field is validated before use. The model
 * under load is left unchanged (strong guarantee), so a failed hot
 * swap keeps serving the old artifacts.
 */
class ModelLoadError : public std::runtime_error
{
  public:
    explicit ModelLoadError(const std::string &what)
        : std::runtime_error("DetectorModel::load: " + what)
    {
    }
};

/** Verdict for one input (one serving response). */
struct Decision
{
    std::size_t predictedClass = 0;
    bool adversarial = false;
    double score = 0.0; ///< forest probability of "adversarial"
    path::SimilarityFeatures features;
};

/**
 * Frozen (network, extraction config, class paths, classifier) bundle.
 *
 * Thread-safety contract: after the offline phase (DetectorBuilder, or
 * load()) completes, a DetectorModel is never written again. Every
 * accessor is const and every serving operation routed through it
 * (DetectorSession::detect/detectBatch) only reads, so one model may
 * back any number of concurrent sessions with no synchronization. The
 * one non-const member, load(), is an owner-phase operation: call it
 * before the model is shared, never while sessions are serving.
 *
 * The network is borrowed and must outlive the model; it must likewise
 * stay frozen while the model serves (training it would invalidate the
 * profiled class paths anyway).
 */
class DetectorModel
{
  public:
    /**
     * @param net the protected network (borrowed; must outlive this).
     * @param cfg extraction configuration (one policy per weighted layer).
     * @param num_classes classifier output arity.
     * @param forest_cfg random-forest hyper-parameters.
     */
    DetectorModel(const nn::Network &net, path::ExtractionConfig cfg,
                  std::size_t num_classes,
                  classify::ForestConfig forest_cfg = {});

    const nn::Network &network() const { return *net; }
    const path::PathExtractor &extractor() const { return pathExtractor; }
    const path::ClassPathStore &classPaths() const { return store; }
    const classify::RandomForest &forest() const { return rf; }
    const path::ExtractionConfig &config() const
    {
        return pathExtractor.config();
    }
    std::size_t numClasses() const { return store.numClasses(); }

    /** Variant tag, e.g. "BwCu". */
    std::string variantName() const { return config().variantName(); }

    /**
     * Serialize the fitted artifacts (architecture signature, extraction
     * config, class paths, forest) to @p path. The network weights are
     * not included — they are the training artifact, saved separately
     * via nn::Network::save. @return success.
     */
    bool save(const std::string &path) const;

    /**
     * Load fitted artifacts saved by save(). Throws ModelLoadError —
     * with the model unchanged (strong guarantee) — on every failure:
     * unreadable file, bad magic, borrowed-network signature mismatch,
     * truncation, or corrupt artifact data. Owner-phase only: never
     * call on a model other threads are serving from (hot swap builds
     * a fresh model and publishes it instead; see serve::DetectorServer).
     */
    void load(const std::string &path);

    /** load() variant returning false instead of throwing. */
    bool tryLoad(const std::string &path);

  private:
    friend class DetectorBuilder;

    const nn::Network *net;
    path::PathExtractor pathExtractor;
    path::ClassPathStore store;
    classify::RandomForest rf;
};

/**
 * Offline phase: profiles class paths and fits the classifier, then
 * hands out the finished model. Wraps the paper's offline pipeline
 * (aggregate activation paths of correctly-predicted training samples;
 * fit the random forest on path-similarity features).
 *
 * Single-threaded use only (profiling fans out internally on the
 * process-wide pool, but the builder object itself is one client).
 * Not movable: the internal session is bound to the model member.
 */
class DetectorBuilder
{
  public:
    DetectorBuilder(const nn::Network &net, path::ExtractionConfig cfg,
                    std::size_t num_classes,
                    classify::ForestConfig forest_cfg = {});

    DetectorBuilder(const DetectorBuilder &) = delete;
    DetectorBuilder &operator=(const DetectorBuilder &) = delete;

    /**
     * Aggregate activation paths of correctly-predicted training
     * samples into class paths (paper: saturates around 100 images per
     * class). Inference + extraction ride the batched pipeline on the
     * process-wide pool; the resulting class paths are bit-identical
     * to the sequential loop at any thread count.
     * @return number of samples aggregated.
     */
    std::size_t profileClassPaths(const nn::Dataset &train,
                                  int max_per_class = 100);

    /**
     * Similarity-feature rows for raw inputs (the fitting-phase feature
     * pipeline; see DetectorSession::featuresBatch).
     */
    void featuresBatch(const std::vector<nn::Tensor> &xs,
                       classify::FeatureMatrix &rows,
                       std::vector<std::size_t> *predicted = nullptr);

    /** Fit the forest on benign (label 0) and adversarial (label 1)
     *  feature rows. */
    void fitClassifier(const classify::FeatureMatrix &benign,
                       const classify::FeatureMatrix &adversarial);

    /** The model being built (valid for the builder's lifetime). */
    const DetectorModel &model() const { return mdl; }

    /** Release the finished model. The builder is consumed. */
    DetectorModel build() && { return std::move(mdl); }

  private:
    DetectorModel mdl;
    detail::FeatureBatchScratch scratch;
    std::vector<std::size_t> labelScratch; ///< profiling chunk labels
};

} // namespace ptolemy::core

#endif // PTOLEMY_CORE_DETECTOR_MODEL_HH
