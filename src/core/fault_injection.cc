#include "fault_injection.hh"

#include <cmath>
#include <cstring>

#include "util/rng.hh"

namespace ptolemy::core
{

nn::Network::Record
forwardWithFault(const nn::Network &net, const nn::Tensor &x,
                 const FaultSpec &fault)
{
    nn::Network::Record rec;
    rec.input = x;
    rec.outputs.reserve(net.numNodes());
    for (int id = 0; id < net.numNodes(); ++id) {
        const auto &node = net.node(id);
        std::vector<const nn::Tensor *> ins;
        ins.reserve(node.inputs.size());
        for (int in_id : node.inputs)
            ins.push_back(in_id < 0 ? &rec.input : &rec.outputs[in_id]);
        rec.outputs.emplace_back();
        net.layerAt(id).forwardInto(ins, rec.outputs.back(), false);

        if (id == fault.nodeId && !rec.outputs[id].empty()) {
            // Single-event upset: flip one bit of the stored value.
            auto &t = rec.outputs[id];
            const std::size_t e = fault.element % t.size();
            std::uint32_t raw;
            std::memcpy(&raw, &t[e], sizeof(raw));
            raw ^= (1u << (fault.bit & 31));
            float flipped;
            std::memcpy(&flipped, &raw, sizeof(flipped));
            // A flipped exponent can produce inf/NaN; a real accelerator
            // would saturate its fixed-point value instead.
            if (!std::isfinite(flipped))
                flipped = flipped > 0 ? 1e6f : -1e6f;
            t[e] = flipped;
        }
    }
    return rec;
}

FaultCampaignResult
runFaultCampaign(Detector &det, const nn::Dataset &inputs,
                 int num_injections, std::uint64_t seed)
{
    Rng rng(seed);
    FaultCampaignResult result;
    const nn::Network &net = det.network(); // const-only online view
    nn::Network::Record predScratch;

    for (int i = 0; i < num_injections; ++i) {
        const auto &sample = inputs[rng.below(inputs.size())];
        const std::size_t clean_pred =
            net.inferPredict(sample.input, predScratch);

        FaultSpec fault;
        fault.nodeId = static_cast<int>(rng.below(net.numNodes() - 1));
        fault.element = rng.below(
            std::max<std::size_t>(1, net.nodeOutputShape(fault.nodeId)
                                         .numel()));
        // Exponent bits: large magnitude changes, the damaging SEU class
        // (low-order mantissa flips are almost always masked).
        fault.bit = 24 + static_cast<int>(rng.below(7));

        auto rec = forwardWithFault(net, sample.input, fault);
        ++result.injections;
        const bool mispredicts = rec.predictedClass() != clean_pred;
        const bool flagged = det.score(rec) >= 0.5;
        if (mispredicts) {
            ++result.mispredictions;
            if (flagged)
                ++result.detected;
        } else if (flagged) {
            ++result.falseAlarms;
        }
    }
    return result;
}

} // namespace ptolemy::core
