#include "fault_injection.hh"

#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "util/rng.hh"

namespace ptolemy::core
{

nn::Network::Record
forwardWithFault(const nn::Network &net, const nn::Tensor &x,
                 const FaultSpec &fault)
{
    nn::Network::Record rec;
    rec.input = x;
    rec.outputs.reserve(net.numNodes());
    for (int id = 0; id < net.numNodes(); ++id) {
        const auto &node = net.node(id);
        std::vector<const nn::Tensor *> ins;
        ins.reserve(node.inputs.size());
        for (int in_id : node.inputs)
            ins.push_back(in_id < 0 ? &rec.input : &rec.outputs[in_id]);
        rec.outputs.emplace_back();
        net.layerAt(id).forwardInto(ins, rec.outputs.back(), false);

        if (id == fault.nodeId && !rec.outputs[id].empty()) {
            // Single-event upset: flip one bit of the stored value.
            auto &t = rec.outputs[id];
            const std::size_t e = fault.element % t.size();
            std::uint32_t raw;
            std::memcpy(&raw, &t[e], sizeof(raw));
            raw ^= (1u << (fault.bit & 31));
            float flipped;
            std::memcpy(&flipped, &raw, sizeof(flipped));
            // A flipped exponent can produce inf/NaN; a real accelerator
            // would saturate its fixed-point value instead.
            if (!std::isfinite(flipped))
                flipped = flipped > 0 ? 1e6f : -1e6f;
            t[e] = flipped;
        }
    }
    return rec;
}

FaultCampaignResult
runFaultCampaign(DetectorSession &sess, const nn::Dataset &inputs,
                 int num_injections, std::uint64_t seed)
{
    Rng rng(seed);
    FaultCampaignResult result;
    const nn::Network &net = sess.model().network(); // const online view
    nn::Network::Record predScratch;

    for (int i = 0; i < num_injections; ++i) {
        const auto &sample = inputs[rng.below(inputs.size())];
        const std::size_t clean_pred =
            net.inferPredict(sample.input, predScratch);

        FaultSpec fault;
        fault.nodeId = static_cast<int>(rng.below(net.numNodes() - 1));
        fault.element = rng.below(
            std::max<std::size_t>(1, net.nodeOutputShape(fault.nodeId)
                                         .numel()));
        // Exponent bits: large magnitude changes, the damaging SEU class
        // (low-order mantissa flips are almost always masked).
        fault.bit = 24 + static_cast<int>(rng.below(7));

        auto rec = forwardWithFault(net, sample.input, fault);
        ++result.injections;
        const bool mispredicts = rec.predictedClass() != clean_pred;
        const bool flagged = sess.score(rec) >= 0.5;
        if (mispredicts) {
            ++result.mispredictions;
            if (flagged)
                ++result.detected;
        } else if (flagged) {
            ++result.falseAlarms;
        }
    }
    return result;
}

FaultCampaignResult
runFaultCampaign(Detector &det, const nn::Dataset &inputs,
                 int num_injections, std::uint64_t seed)
{
    return runFaultCampaign(det.session(), inputs, num_injections, seed);
}

void
ServeFaultPlan::onBatchFormed(std::uint64_t batch_seq)
{
    if (delayEveryNthBatch == 0 || batch_seq % delayEveryNthBatch != 0)
        return;
    delaysInjected.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(batchDelayMicros));
}

void
ServeFaultPlan::throwPoison(std::uint64_t request_seq)
{
    poisonsInjected.fetch_add(1, std::memory_order_relaxed);
    throw PoisonedRequestError(request_seq);
}

void
ServeFaultPlan::onSwapLoad()
{
    // Consume one armed fault atomically (several threads may swap).
    std::size_t armed = failNextSwaps.load(std::memory_order_relaxed);
    while (armed > 0) {
        if (failNextSwaps.compare_exchange_weak(
                armed, armed - 1, std::memory_order_relaxed)) {
            swapFaultsInjected.fetch_add(1, std::memory_order_relaxed);
            throw ModelLoadError("injected swap-during-load fault");
        }
    }
}

} // namespace ptolemy::core
