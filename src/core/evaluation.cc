#include "evaluation.hh"

#include <algorithm>
#include <numeric>

#include "util/rng.hh"
#include "util/stats.hh"

namespace ptolemy::core
{

std::vector<DetectionPair>
buildAttackPairs(nn::Network &net, attack::Attack &atk,
                 const nn::Dataset &test, int max_samples,
                 std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::size_t> order(test.size());
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);

    std::vector<DetectionPair> pairs;
    int attempted = 0;
    nn::Network::Record rec;
    for (std::size_t idx : order) {
        if (attempted >= max_samples)
            break;
        const auto &s = test[idx];
        net.forwardInto(s.input, rec, /*train=*/false, /*stash=*/false);
        if (rec.predictedClass() != s.label)
            continue; // attacks start from correctly-classified inputs
        ++attempted;
        auto res = atk.run(net, s.input, s.label);
        if (!res.success)
            continue;
        DetectionPair p;
        p.clean = s.input;
        p.adversarial = std::move(res.adversarial);
        p.label = s.label;
        p.mse = res.mse;
        pairs.push_back(std::move(p));
    }
    return pairs;
}

PairScores
fitAndScore(Detector &det, const std::vector<DetectionPair> &pairs,
            double train_fraction, std::uint64_t seed)
{
    PairScores out;
    if (pairs.size() < 4)
        return out;

    Rng rng(seed);
    std::vector<std::size_t> order(pairs.size());
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);
    const std::size_t n_train =
        std::max<std::size_t>(2, static_cast<std::size_t>(
            train_fraction * pairs.size()));

    // Batched feature pipeline: inference + extraction of each split
    // fan out on the process-wide pool inside featuresBatch; row order
    // matches the historical sequential loop exactly.
    std::vector<nn::Tensor> xs;
    classify::FeatureMatrix benign, adversarial;
    xs.reserve(n_train);
    for (std::size_t i = 0; i < n_train; ++i)
        xs.push_back(pairs[order[i]].clean);
    det.featuresBatch(xs, benign);
    xs.clear();
    for (std::size_t i = 0; i < n_train; ++i)
        xs.push_back(pairs[order[i]].adversarial);
    det.featuresBatch(xs, adversarial);
    det.fitClassifier(benign, adversarial);

    xs.clear();
    for (std::size_t i = n_train; i < pairs.size(); ++i) {
        xs.push_back(pairs[order[i]].clean);
        xs.push_back(pairs[order[i]].adversarial);
    }
    classify::FeatureMatrix held;
    std::vector<std::size_t> preds;
    det.featuresBatch(xs, held, &preds);

    std::vector<double> scores;
    std::vector<int> labels;
    for (std::size_t i = n_train; i < pairs.size(); ++i) {
        const auto &p = pairs[order[i]];
        for (int adv = 0; adv < 2; ++adv) {
            const std::size_t q = 2 * (i - n_train) + adv;
            ScoredSample ss;
            ss.label = adv;
            ss.trueClass = p.label;
            ss.mse = adv ? p.mse : 0.0;
            ss.predictedClass = preds[q];
            ss.score = det.forest().predictProb(held[q]);
            scores.push_back(ss.score);
            labels.push_back(ss.label);
            out.heldOut.push_back(std::move(ss));
        }
    }
    out.auc = aucScore(scores, labels);
    return out;
}

AttackEvalResult
evaluateAttack(Detector &det, attack::Attack &atk, const nn::Dataset &test,
               int max_samples, std::uint64_t seed)
{
    AttackEvalResult r;
    r.attackName = atk.name();
    auto pairs = buildAttackPairs(det.network(), atk, test, max_samples,
                                  seed);
    r.numPairs = pairs.size();
    r.attackSuccessRate = max_samples == 0
        ? 0.0
        : static_cast<double>(pairs.size()) / max_samples;
    double mse_sum = 0.0;
    for (const auto &p : pairs)
        mse_sum += p.mse;
    r.avgMse = pairs.empty() ? 0.0 : mse_sum / pairs.size();
    r.auc = fitAndScore(det, pairs, 0.5, seed).auc;
    return r;
}

SuiteEvalResult
evaluateSuite(Detector &det,
              const std::vector<std::unique_ptr<attack::Attack>> &attacks,
              const nn::Dataset &test, int max_samples_per_attack,
              std::uint64_t seed)
{
    SuiteEvalResult suite;
    double sum = 0.0;
    for (const auto &atk : attacks) {
        auto r = evaluateAttack(det, *atk, test, max_samples_per_attack,
                                seed);
        sum += r.auc;
        suite.minAuc = std::min(suite.minAuc, r.auc);
        suite.maxAuc = std::max(suite.maxAuc, r.auc);
        suite.perAttack.push_back(std::move(r));
    }
    suite.avgAuc = suite.perAttack.empty()
        ? 0.0
        : sum / suite.perAttack.size();
    return suite;
}

} // namespace ptolemy::core
