#include "evaluation.hh"

#include <algorithm>
#include <numeric>

#include "util/rng.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"

namespace ptolemy::core
{

std::vector<DetectionPair>
buildAttackPairs(nn::Network &net, attack::Attack &atk,
                 const nn::Dataset &test, int max_samples,
                 std::uint64_t seed, int *attempted_out)
{
    Rng rng(seed);
    std::vector<std::size_t> order(test.size());
    std::iota(order.begin(), order.end(), 0);
    // i > 1 keeps every Rng::below argument positive (empty and
    // single-sample test sets shuffle to themselves).
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);

    std::vector<DetectionPair> pairs;
    int attempted = 0;
    // Filter pass rides forwardBatch over borrowed candidate views:
    // candidates are classified one chunk at a time on the process-wide
    // pool, bit-identical to the sequential loop, so the selected attack
    // targets are unchanged; a chunk may classify a few candidates
    // beyond the cap, which is noise next to the attack cost.
    //
    // Selected candidates accumulate into kChunk-sample batches for the
    // batched attack engine. A candidate's global sample index is its
    // selection ordinal (the attempted count at selection time), so
    // randomized attacks draw the same noise however the stream is
    // chunked — pairs are bit-identical to attacking the candidates one
    // at a time in selection order, at any PTOLEMY_NUM_THREADS.
    constexpr std::size_t kChunk = 64;
    std::vector<const nn::Tensor *> xptrs;
    std::vector<nn::Network::Record> recs;
    std::vector<const nn::Tensor *> batch_xs;
    std::vector<std::size_t> batch_labels;
    std::vector<const nn::Sample *> batch_samples;
    std::vector<attack::AttackResult> results;

    auto flushBatch = [&] {
        if (batch_xs.empty())
            return;
        results.resize(batch_xs.size());
        atk.runBatch(net, batch_xs, batch_labels, results,
                     /*index_base=*/static_cast<std::uint64_t>(attempted) -
                         batch_xs.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (!results[i].success)
                continue;
            DetectionPair p;
            p.clean = batch_samples[i]->input;
            p.adversarial = std::move(results[i].adversarial);
            p.label = batch_samples[i]->label;
            p.mse = results[i].mse;
            pairs.push_back(std::move(p));
        }
        batch_xs.clear();
        batch_labels.clear();
        batch_samples.clear();
    };

    for (std::size_t c0 = 0;
         c0 < order.size() && attempted < max_samples; c0 += kChunk) {
        const std::size_t cn = std::min(kChunk, order.size() - c0);
        xptrs.clear();
        for (std::size_t i = 0; i < cn; ++i)
            xptrs.push_back(&test[order[c0 + i]].input);
        net.forwardBatch(
            std::span<const nn::Tensor *const>(xptrs.data(), cn), recs,
            &globalPool());
        for (std::size_t i = 0; i < cn && attempted < max_samples; ++i) {
            const auto &s = test[order[c0 + i]];
            if (recs[i].predictedClass() != s.label)
                continue; // attacks start from correctly-classified inputs
            ++attempted;
            batch_xs.push_back(&s.input);
            batch_labels.push_back(s.label);
            batch_samples.push_back(&s);
            if (batch_xs.size() == kChunk)
                flushBatch();
        }
    }
    flushBatch();
    if (attempted_out)
        *attempted_out = attempted;
    return pairs;
}

PairScores
fitAndScore(DetectorBuilder &bld, DetectorSession &sess,
            const std::vector<DetectionPair> &pairs, double train_fraction,
            std::uint64_t seed)
{
    PairScores out;
    if (pairs.size() < 4)
        return out;

    Rng rng(seed);
    std::vector<std::size_t> order(pairs.size());
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);
    // Clamp both ends: at least 2 training pairs, and at least 2
    // held-out pairs no matter how close train_fraction is to 1 (the
    // unclamped split scored an empty held-out set and reported its
    // vacuous 0.5 AUC as if measured).
    const std::size_t n_train = std::clamp<std::size_t>(
        static_cast<std::size_t>(train_fraction * pairs.size()), 2,
        pairs.size() - 2);

    // Batched feature pipeline: inference + extraction of each split
    // fan out on the process-wide pool inside featuresBatch; row order
    // matches the historical sequential loop exactly.
    std::vector<nn::Tensor> xs;
    classify::FeatureMatrix benign, adversarial;
    xs.reserve(n_train);
    for (std::size_t i = 0; i < n_train; ++i)
        xs.push_back(pairs[order[i]].clean);
    bld.featuresBatch(xs, benign);
    xs.clear();
    for (std::size_t i = 0; i < n_train; ++i)
        xs.push_back(pairs[order[i]].adversarial);
    bld.featuresBatch(xs, adversarial);
    bld.fitClassifier(benign, adversarial);

    // Held-out scoring goes through the real serving path: one fused
    // detectBatch over borrowed held-out views (clean/adversarial
    // interleaved, the paper's evenly-split test set). Decisions carry
    // the same features/scores the old per-row predictProb computed —
    // bit-identical — but the code path is now exactly the one serving
    // production traffic.
    std::vector<const nn::Tensor *> xptrs;
    for (std::size_t i = n_train; i < pairs.size(); ++i) {
        xptrs.push_back(&pairs[order[i]].clean);
        xptrs.push_back(&pairs[order[i]].adversarial);
    }
    std::vector<Decision> decisions(xptrs.size());
    sess.detectBatch(
        std::span<const nn::Tensor *const>(xptrs.data(), xptrs.size()),
        std::span<Decision>(decisions.data(), decisions.size()));

    std::vector<double> scores;
    std::vector<int> labels;
    for (std::size_t i = n_train; i < pairs.size(); ++i) {
        const auto &p = pairs[order[i]];
        for (int adv = 0; adv < 2; ++adv) {
            const std::size_t q = 2 * (i - n_train) + adv;
            ScoredSample ss;
            ss.label = adv;
            ss.trueClass = p.label;
            ss.mse = adv ? p.mse : 0.0;
            ss.predictedClass = decisions[q].predictedClass;
            ss.score = decisions[q].score;
            scores.push_back(ss.score);
            labels.push_back(ss.label);
            out.heldOut.push_back(std::move(ss));
        }
    }
    out.auc = aucScore(scores, labels);
    return out;
}

PairScores
fitAndScore(Detector &det, const std::vector<DetectionPair> &pairs,
            double train_fraction, std::uint64_t seed)
{
    return fitAndScore(det.builder(), det.session(), pairs, train_fraction,
                       seed);
}

AttackEvalResult
evaluateAttack(nn::Network &net, DetectorBuilder &bld, DetectorSession &sess,
               attack::Attack &atk, const nn::Dataset &test, int max_samples,
               std::uint64_t seed)
{
    AttackEvalResult r;
    r.attackName = atk.name();
    int attempted = 0;
    auto pairs =
        buildAttackPairs(net, atk, test, max_samples, seed, &attempted);
    r.numPairs = pairs.size();
    r.numAttempted = static_cast<std::size_t>(attempted);
    // Divide by the attacks actually launched: the test set can run out
    // of correctly-classified inputs before max_samples, and dividing
    // by the cap silently deflated every reported success rate.
    r.attackSuccessRate = attempted == 0
        ? 0.0
        : static_cast<double>(pairs.size()) / attempted;
    double mse_sum = 0.0;
    for (const auto &p : pairs)
        mse_sum += p.mse;
    r.avgMse = pairs.empty() ? 0.0 : mse_sum / pairs.size();
    r.auc = fitAndScore(bld, sess, pairs, 0.5, seed).auc;
    return r;
}

AttackEvalResult
evaluateAttack(nn::Network &net, Detector &det, attack::Attack &atk,
               const nn::Dataset &test, int max_samples, std::uint64_t seed)
{
    return evaluateAttack(net, det.builder(), det.session(), atk, test,
                          max_samples, seed);
}

SuiteEvalResult
evaluateSuite(nn::Network &net, DetectorBuilder &bld, DetectorSession &sess,
              const std::vector<std::unique_ptr<attack::Attack>> &attacks,
              const nn::Dataset &test, int max_samples_per_attack,
              std::uint64_t seed)
{
    SuiteEvalResult suite;
    double sum = 0.0;
    for (const auto &atk : attacks) {
        auto r = evaluateAttack(net, bld, sess, *atk, test,
                                max_samples_per_attack, seed);
        sum += r.auc;
        suite.minAuc = std::min(suite.minAuc, r.auc);
        suite.maxAuc = std::max(suite.maxAuc, r.auc);
        suite.perAttack.push_back(std::move(r));
    }
    suite.avgAuc = suite.perAttack.empty()
        ? 0.0
        : sum / suite.perAttack.size();
    return suite;
}

SuiteEvalResult
evaluateSuite(nn::Network &net, Detector &det,
              const std::vector<std::unique_ptr<attack::Attack>> &attacks,
              const nn::Dataset &test, int max_samples_per_attack,
              std::uint64_t seed)
{
    return evaluateSuite(net, det.builder(), det.session(), attacks, test,
                         max_samples_per_attack, seed);
}

} // namespace ptolemy::core
