/**
 * @file
 * Per-client serving session over a shared, immutable DetectorModel.
 *
 * A DetectorSession owns every piece of mutable hot-path scratch the
 * online pipeline (paper Fig. 4 bottom: inference -> path extraction ->
 * canary comparison -> classification) needs: records, extraction
 * workspaces, path bits and feature buffers. Constructing one is cheap
 * (a handful of empty buffers); the first few detections warm the
 * buffers, after which the steady state performs no heap allocation.
 *
 * Thread-safety contract: one session serves one client/request stream
 * — never drive a single session from two threads at once. Any number
 * of sessions may share one DetectorModel concurrently with no locks
 * (the model is read-only; see DetectorModel). detectBatch() fans one
 * batch out on a thread pool *inside* the one calling thread's
 * session, over per-pool-slot scratch.
 *
 * Bit-identity guarantee: Decisions from detectBatch are bit-identical
 * to calling detect() on each input in order — at any batch size,
 * any chunking and any PTOLEMY_NUM_THREADS — and any two sessions over
 * the same model produce identical Decisions for identical inputs.
 */

#ifndef PTOLEMY_CORE_DETECTOR_SESSION_HH
#define PTOLEMY_CORE_DETECTOR_SESSION_HH

#include <span>
#include <vector>

#include "core/detector_model.hh"

namespace ptolemy
{
class ThreadPool;
}

namespace ptolemy::telemetry
{
class TelemetryHub;
}

namespace ptolemy::core
{

/**
 * Lightweight per-client detection session (all scratch, no state).
 */
class DetectorSession
{
  public:
    /** @param model fitted model (borrowed; must outlive the session
     *         and must not be mutated while the session serves). */
    explicit DetectorSession(const DetectorModel &model);

    const DetectorModel &model() const { return *mdl; }

    /** Full online pipeline for one input: inference + extraction +
     *  canary comparison + classification. */
    Decision detect(const nn::Tensor &x);

    /**
     * Fused batched serving entry point: for every xs[i], run
     * inference, path extraction, similarity features and forest
     * scoring in ONE pass over this sample — forward activations are
     * still cache-hot when the extractor walks them — with samples
     * fanned out on @p pool over per-pool-slot scratch. out[i] is the
     * Decision for xs[i], bit-identical to sequential detect(), at any
     * thread count (slots are pure scratch; results are keyed by
     * sample index, never by executing slot). A warmed-up session
     * performs no heap allocation per batch.
     *
     * Contract: @p out must pair up with @p xs one-to-one —
     * out.size() == xs.size(). A mismatch is a caller bug: it
     * debug-asserts, and throws std::invalid_argument in release
     * builds (never writes out of bounds). An empty @p xs is an
     * explicit no-op: the session returns immediately without touching
     * the pool or growing any scratch.
     *
     * @param xs borrowed batch inputs.
     * @param out one Decision per input; out.size() must equal
     *        xs.size(). Reused Decision buffers (a persistent vector)
     *        keep repeated batches allocation-free.
     * @param pool pool to fan out on; nullptr = the process-wide pool.
     */
    void detectBatch(std::span<const nn::Tensor *const> xs,
                     std::span<Decision> out, ThreadPool *pool = nullptr);

    /** Convenience overload over owned tensors. */
    void detectBatch(const std::vector<nn::Tensor> &xs,
                     std::vector<Decision> &out,
                     ThreadPool *pool = nullptr);

    /**
     * Select between the wide-batch serving path (default: chunks of
     * wideChunk() samples run layer-major through
     * Network::forwardBatchWide — one wide SGEMM per conv layer, one
     * weight stream per linear layer — then finish per sample) and the
     * fused per-sample reference path. Decisions are bit-identical
     * either way (the wide forward's contract); the switch exists for
     * benchmarking and the determinism cross-checks. Initialized from
     * PTOLEMY_WIDE_BATCH ("0"/"off" disables; default on).
     */
    void setWideBatch(bool on) { wideBatch = on; }
    bool wideBatchEnabled() const { return wideBatch; }

    /** Samples per wide forward chunk (PTOLEMY_WIDE_CHUNK, default 64). */
    std::size_t wideChunk() const { return wideChunkSize; }
    void setWideChunk(std::size_t n) { wideChunkSize = n > 0 ? n : 1; }

    /**
     * Attach (or detach with nullptr) a telemetry hub: every Decision
     * this session produces — detect() and both detectBatch() paths —
     * is ingested into the hub's shard for the executing pool slot.
     * Ingestion is a handful of integer counter bumps per record and
     * never changes a Decision; scores stay bit-identical with
     * telemetry attached or not. The hub is borrowed and must outlive
     * the session (or be detached first). The hub should be built with
     * at least as many slots as the widest pool this session fans out
     * on; extra slots are harmless (they merge in as empty shards).
     */
    void attachTelemetry(telemetry::TelemetryHub *h) { hub = h; }
    telemetry::TelemetryHub *telemetryHub() const { return hub; }

    /** Similarity features of a recorded inference against the canary
     *  path of its predicted class. @p trace optionally receives the
     *  extraction op counts. */
    std::vector<double> featuresFor(const nn::Network::Record &rec,
                                    path::ExtractionTrace *trace = nullptr);

    /** Adversarial-probability score for a recorded pass. */
    double score(const nn::Network::Record &rec);

    /** Batched similarity-feature rows (the evaluation-harness fitting
     *  pipeline; see detail::featuresBatch). */
    void featuresBatch(const std::vector<nn::Tensor> &xs,
                       classify::FeatureMatrix &rows,
                       std::vector<std::size_t> *predicted = nullptr);

  private:
    /** Per-pool-slot scratch for the fused batch pipeline. Slot 0 also
     *  serves single-stream detect(), so both paths share warm
     *  buffers. */
    struct Slot
    {
        nn::Network::Record rec;
        path::ExtractionWorkspace ws;
        BitVector path;
        std::vector<double> feat;
    };

    /** Slot for the executing thread; out-of-range ids (a nested
     *  parallel section running inline under a foreign worker's id)
     *  clamp to slot 0, which is safe because inline sections are
     *  single-threaded by construction. */
    Slot &slot(unsigned tid)
    {
        return slots[tid < slots.size() ? tid : 0];
    }

    /** The shared per-sample pipeline behind detect and detectBatch. */
    void detectInto(const nn::Tensor &x, Decision &d, Slot &s);

    /** Post-inference tail of the pipeline (extraction, canary
     *  comparison, forest scoring) over an already-recorded forward
     *  pass; shared by detectInto and the wide-batch path. */
    void finishDetect(const nn::Network::Record &rec, Decision &d, Slot &s);

    const DetectorModel *mdl;
    telemetry::TelemetryHub *hub = nullptr; ///< borrowed; may be null
    std::vector<Slot> slots;              ///< grown to pool width, kept warm
    detail::FeatureBatchScratch fbScratch; ///< featuresBatch only
    bool wideBatch;                       ///< wide-batch serving path on?
    std::size_t wideChunkSize;            ///< samples per wide chunk
    std::vector<nn::Network::Record> wideRecs; ///< wide-chunk records, warm
};

} // namespace ptolemy::core

#endif // PTOLEMY_CORE_DETECTOR_SESSION_HH
