/**
 * @file
 * Transient-fault detection extension (paper Sec. VIII).
 *
 * The paper notes that "Ptolemy could also be used for detecting the
 * execution errors of DNN accelerators caused by transient hardware
 * errors". A single-event upset flipping a bit in a feature map changes
 * the downstream activation path the same way an adversarial input does,
 * so the same canary-path comparison flags it.
 *
 * This module implements the experiment: replay a forward pass with one
 * injected bit flip in a chosen intermediate tensor and run a fault
 * campaign measuring how many mispredicting faulty executions the
 * detector rejects.
 */

#ifndef PTOLEMY_CORE_FAULT_INJECTION_HH
#define PTOLEMY_CORE_FAULT_INJECTION_HH

#include <cstdint>

#include "core/detector.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"

namespace ptolemy::core
{

/** One transient fault: flip @p bit of element @p element of the output
 *  of graph node @p nodeId. */
struct FaultSpec
{
    int nodeId = 0;
    std::size_t element = 0;
    int bit = 23; ///< bit of the IEEE-754 float representation
};

/**
 * Forward pass with a single-event upset injected: identical to an
 * inference pass except the fault is applied to the chosen node's
 * output before its consumers read it. Read-only on the network (the
 * campaign runs against the detector's shared const view).
 */
nn::Network::Record forwardWithFault(const nn::Network &net,
                                     const nn::Tensor &x,
                                     const FaultSpec &fault);

/** Fault-campaign outcome. */
struct FaultCampaignResult
{
    std::size_t injections = 0;      ///< faults injected
    std::size_t mispredictions = 0;  ///< faults that flipped the class
    std::size_t detected = 0;        ///< mispredictions the detector flagged
    std::size_t falseAlarms = 0;     ///< benign-outcome faults flagged

    /** Detection rate over class-flipping faults. */
    double
    detectionRate() const
    {
        return mispredictions == 0
            ? 0.0
            : static_cast<double>(detected) / mispredictions;
    }
};

/**
 * Inject @p num_injections random high-order bit flips into random
 * feature-map elements during inferences over @p inputs, and score each
 * faulty execution with @p det. The detector must already be fitted
 * (class paths + classifier); faults whose execution mispredicts count
 * as "detected" when the detector's score crosses 0.5.
 */
FaultCampaignResult runFaultCampaign(Detector &det,
                                     const nn::Dataset &inputs,
                                     int num_injections,
                                     std::uint64_t seed = 0xFA017);

} // namespace ptolemy::core

#endif // PTOLEMY_CORE_FAULT_INJECTION_HH
