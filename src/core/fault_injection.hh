/**
 * @file
 * Fault injection: transient hardware faults (paper Sec. VIII) and
 * serving-layer fault plans.
 *
 * The paper notes that "Ptolemy could also be used for detecting the
 * execution errors of DNN accelerators caused by transient hardware
 * errors". A single-event upset flipping a bit in a feature map changes
 * the downstream activation path the same way an adversarial input does,
 * so the same canary-path comparison flags it.
 *
 * This module implements the experiment: replay a forward pass with one
 * injected bit flip in a chosen intermediate tensor and run a fault
 * campaign measuring how many mispredicting faulty executions the
 * detector rejects.
 *
 * It also hosts ServeFaultPlan, the deterministic failure campaign the
 * serving tier (serve::DetectorServer) runs against itself: stalled
 * batches, poisoned requests that throw during request execution, and
 * swap-during-load faults. The serving robustness contract under any
 * such plan is that every submitted request still resolves to exactly
 * one typed status — never a crash, deadlock or lost request.
 */

#ifndef PTOLEMY_CORE_FAULT_INJECTION_HH
#define PTOLEMY_CORE_FAULT_INJECTION_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/detector.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"

namespace ptolemy::core
{

/** One transient fault: flip @p bit of element @p element of the output
 *  of graph node @p nodeId. */
struct FaultSpec
{
    int nodeId = 0;
    std::size_t element = 0;
    int bit = 23; ///< bit of the IEEE-754 float representation
};

/**
 * Forward pass with a single-event upset injected: identical to an
 * inference pass except the fault is applied to the chosen node's
 * output before its consumers read it. Read-only on the network (the
 * campaign runs against the detector's shared const view).
 */
nn::Network::Record forwardWithFault(const nn::Network &net,
                                     const nn::Tensor &x,
                                     const FaultSpec &fault);

/** Fault-campaign outcome. */
struct FaultCampaignResult
{
    std::size_t injections = 0;      ///< faults injected
    std::size_t mispredictions = 0;  ///< faults that flipped the class
    std::size_t detected = 0;        ///< mispredictions the detector flagged
    std::size_t falseAlarms = 0;     ///< benign-outcome faults flagged

    /** Detection rate over class-flipping faults. */
    double
    detectionRate() const
    {
        return mispredictions == 0
            ? 0.0
            : static_cast<double>(detected) / mispredictions;
    }
};

/**
 * Inject @p num_injections random high-order bit flips into random
 * feature-map elements during inferences over @p inputs, and score each
 * faulty execution through @p sess. The session's model must already be
 * fitted (class paths + classifier); faults whose execution mispredicts
 * count as "detected" when the detector's score crosses 0.5.
 */
FaultCampaignResult runFaultCampaign(DetectorSession &sess,
                                     const nn::Dataset &inputs,
                                     int num_injections,
                                     std::uint64_t seed = 0xFA017);

/** Façade wrapper over the session overload. */
FaultCampaignResult runFaultCampaign(Detector &det,
                                     const nn::Dataset &inputs,
                                     int num_injections,
                                     std::uint64_t seed = 0xFA017);

/**
 * Typed error a poisoned request throws while the server executes it.
 * The serving tier must resolve exactly that request to
 * RequestStatus::kError and keep every other request in the batch —
 * and the server itself — fully healthy.
 */
class PoisonedRequestError : public std::runtime_error
{
  public:
    explicit PoisonedRequestError(std::uint64_t request_seq)
        : std::runtime_error("poisoned request #" +
                             std::to_string(request_seq))
    {
    }
};

/**
 * Deterministic serving-layer fault plan, keyed on the server's batch
 * and request ordinals so a campaign is reproducible independent of
 * timing. All hooks are called by serve::DetectorServer; a null plan
 * (the default) injects nothing. Counters are atomics so submitter
 * threads and the dispatch thread may share one plan.
 *
 * Fault classes:
 *  - Stalled batches: every delayEveryNthBatch-th batch sleeps
 *    batchDelayMicros between dequeue and execution, so queued
 *    requests pile up (exercises admission-control shedding) and
 *    deadlines expire at batch-formation time.
 *  - Poisoned requests: every poisonEveryNthRequest-th submitted
 *    request throws PoisonedRequestError when the server starts
 *    executing it (the same propagation path as a throw from inside
 *    the fused inference batch, which the thread pool rethrows on the
 *    dispatching thread; see ThreadPool's exception contract).
 *  - Swap-during-load: the next failNextSwaps model swaps fail
 *    mid-load; the server must keep serving the old model.
 */
struct ServeFaultPlan
{
    std::size_t delayEveryNthBatch = 0;   ///< 0 = off
    std::uint32_t batchDelayMicros = 0;   ///< stall length
    std::size_t poisonEveryNthRequest = 0; ///< 0 = off
    std::atomic<std::size_t> failNextSwaps{0}; ///< swap-during-load arm

    // Injection counters (for campaign accounting in tests/benches).
    std::atomic<std::size_t> delaysInjected{0};
    std::atomic<std::size_t> poisonsInjected{0};
    std::atomic<std::size_t> swapFaultsInjected{0};

    /** Dispatcher hook, called once per formed batch (1-based batch
     *  ordinal): sleeps when the batch is selected for a stall. */
    void onBatchFormed(std::uint64_t batch_seq);

    /** True when the submit-ordinal keyed request is poisoned. */
    bool
    poisoned(std::uint64_t request_seq) const
    {
        return poisonEveryNthRequest != 0 &&
               (request_seq + 1) % poisonEveryNthRequest == 0;
    }

    /** Throws PoisonedRequestError for the selected request (the
     *  server calls this as it starts executing the request). */
    void throwPoison(std::uint64_t request_seq);

    /** Swap hook: consumes one armed swap fault and throws, or
     *  returns silently when none is armed. */
    void onSwapLoad();
};

} // namespace ptolemy::core

#endif // PTOLEMY_CORE_FAULT_INJECTION_HH
