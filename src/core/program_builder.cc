#include "program_builder.hh"

#include <stdexcept>

namespace ptolemy::core
{

ProgramBuilder::ProgramBuilder(const nn::Network &net)
{
    cfg = path::ExtractionConfig::bwCu(
        static_cast<int>(net.weightedNodes().size()), 0.5);
}

ProgramBuilder &
ProgramBuilder::backwardExtraction()
{
    cfg.direction = path::Direction::Backward;
    return *this;
}

ProgramBuilder &
ProgramBuilder::forwardExtraction()
{
    cfg.direction = path::Direction::Forward;
    return *this;
}

ProgramBuilder &
ProgramBuilder::extractNone()
{
    for (auto &lp : cfg.layers)
        lp.extract = false;
    return *this;
}

ProgramBuilder &
ProgramBuilder::extractLayer(int layer, path::ThresholdKind kind,
                             double threshold)
{
    if (layer < 0 || layer >= cfg.numLayers())
        throw std::out_of_range("extractLayer: bad weighted-layer index");
    auto &lp = cfg.layers[layer];
    lp.extract = true;
    lp.kind = kind;
    if (kind == path::ThresholdKind::Cumulative)
        lp.theta = threshold;
    else
        lp.phi = threshold;
    return *this;
}

ProgramBuilder &
ProgramBuilder::extractLayers(int first, int last, path::ThresholdKind kind,
                              double threshold)
{
    for (int l = first; l <= last; ++l)
        extractLayer(l, kind, threshold);
    return *this;
}

ProgramBuilder &
ProgramBuilder::startAtLayer(int first)
{
    if (first < 0 || first > cfg.numLayers())
        throw std::out_of_range("startAtLayer: bad weighted-layer index");
    cfg.selectFrom(first);
    return *this;
}

path::ExtractionConfig
ProgramBuilder::build() const
{
    if (cfg.numExtracted() == 0)
        throw std::logic_error("ProgramBuilder: no layers extracted");
    return cfg;
}

} // namespace ptolemy::core
