/**
 * @file
 * High-level programming interface (paper Sec. III-D, Fig. 6).
 *
 * Mirrors the paper's Python-style API in C++: the programmer expresses
 * which layers to extract, in which direction, and with which per-layer
 * thresholding mechanism; the builder produces the ExtractionConfig the
 * compiler consumes. The paper's one structural rule is enforced —
 * backward and forward extraction cannot be combined in one network
 * (the direction is a whole-network property).
 *
 * The paper's Fig. 6 example translates to:
 * @code
 *   auto cfg = ProgramBuilder(net)
 *                  .forwardExtraction()
 *                  .extractNone()
 *                  .extractLayer(n - 3, ThresholdKind::Absolute, phi)
 *                  .extractLayer(n - 2, ThresholdKind::Absolute, phi)
 *                  .extractLayer(n - 1, ThresholdKind::Cumulative, theta)
 *                  .build();
 * @endcode
 */

#ifndef PTOLEMY_CORE_PROGRAM_BUILDER_HH
#define PTOLEMY_CORE_PROGRAM_BUILDER_HH

#include "nn/network.hh"
#include "path/extraction_config.hh"

namespace ptolemy::core
{

/**
 * Fluent builder for extraction configurations.
 */
class ProgramBuilder
{
  public:
    /** Starts with backward/cumulative(0.5) on every weighted layer. */
    explicit ProgramBuilder(const nn::Network &net);

    /** Set backward extraction (whole network). */
    ProgramBuilder &backwardExtraction();

    /** Set forward extraction (whole network). */
    ProgramBuilder &forwardExtraction();

    /** Disable extraction everywhere (then opt layers back in). */
    ProgramBuilder &extractNone();

    /**
     * Configure one weighted layer.
     * @param layer weighted-layer index (0-based, topological).
     * @param kind threshold mechanism for this layer.
     * @param threshold theta for cumulative, phi for absolute.
     */
    ProgramBuilder &extractLayer(int layer, path::ThresholdKind kind,
                                 double threshold);

    /** Configure an inclusive range [first, last] of weighted layers. */
    ProgramBuilder &extractLayers(int first, int last,
                                  path::ThresholdKind kind,
                                  double threshold);

    /** Selective-extraction knob: extract only layers >= @p first
     *  (early termination / late start, paper Sec. III-C). */
    ProgramBuilder &startAtLayer(int first);

    /** Finalize. Validates indices and the forward/backward rule. */
    path::ExtractionConfig build() const;

  private:
    path::ExtractionConfig cfg;
};

} // namespace ptolemy::core

#endif // PTOLEMY_CORE_PROGRAM_BUILDER_HH
