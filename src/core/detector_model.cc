#include "detector_model.hh"

#include <fstream>

#include "util/serialize.hh"
#include "util/thread_pool.hh"

namespace ptolemy::core
{

namespace
{
const char *const kModelMagic = "ptolemy-detector-v1";
} // namespace

DetectorModel::DetectorModel(const nn::Network &net_ref,
                             path::ExtractionConfig cfg,
                             std::size_t num_classes,
                             classify::ForestConfig forest_cfg)
    : net(&net_ref), pathExtractor(net_ref, std::move(cfg)),
      store(num_classes, pathExtractor.layout().totalBits()), rf(forest_cfg)
{
    // Owner phase: this thread still holds the network exclusively, so
    // filling the layers' packed-weight caches here is race-free; every
    // serving forward after this point is a pure read of the panels.
    net_ref.prepackForServing();
}

bool
DetectorModel::save(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    writeString(os, kModelMagic);
    writeString(os, net->signature());
    writeU64(os, store.numClasses());
    config().serialize(os);
    store.serialize(os);
    rf.serialize(os);
    return os.good();
}

void
DetectorModel::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw ModelLoadError("cannot open '" + path + "'");
    std::string magic, sig;
    std::uint64_t num_classes;
    if (!readString(is, magic) || magic != kModelMagic)
        throw ModelLoadError("bad magic (not a detector artifact file, "
                             "or a truncated/corrupt header)");
    if (!readString(is, sig))
        throw ModelLoadError("truncated architecture signature");
    if (sig != net->signature())
        throw ModelLoadError("architecture signature mismatch: file has '" +
                             sig + "', network is '" + net->signature() +
                             "'");
    if (!readU64(is, num_classes))
        throw ModelLoadError("truncated class count");
    path::ExtractionConfig cfg;
    if (!cfg.deserialize(is))
        throw ModelLoadError("corrupt extraction config");
    if (cfg.numLayers() != static_cast<int>(net->weightedNodes().size()))
        throw ModelLoadError("extraction config layer count does not "
                             "match the network");
    // Rebuild the extractor for the loaded config before validating the
    // store against its layout: the offline and online phases must
    // agree on every knob, or the canary bits would not line up.
    path::PathExtractor ex(*net, std::move(cfg));
    path::ClassPathStore loaded_store;
    classify::RandomForest loaded_rf;
    // Feature arity the served vectors will have ([overall,
    // perLayer...]): trees referencing features beyond it are corrupt.
    const std::size_t num_features = 1 + ex.layout().segments().size();
    if (!loaded_store.deserialize(is))
        throw ModelLoadError("corrupt class-path store");
    if (!loaded_rf.deserialize(is, num_features))
        throw ModelLoadError("corrupt random forest");
    if (loaded_store.numClasses() != num_classes)
        throw ModelLoadError("class-path store class count does not "
                             "match the header");
    if (loaded_store.numClasses() > 0 &&
        loaded_store.numBits() != ex.layout().totalBits())
        throw ModelLoadError("class-path store bit width does not match "
                             "the extraction layout");
    pathExtractor = std::move(ex);
    store = std::move(loaded_store);
    rf = std::move(loaded_rf);
}

bool
DetectorModel::tryLoad(const std::string &path)
{
    try {
        load(path);
        return true;
    } catch (const ModelLoadError &) {
        return false;
    }
}

namespace detail
{

void
featuresBatch(const DetectorModel &mdl, const std::vector<nn::Tensor> &xs,
              classify::FeatureMatrix &rows,
              std::vector<std::size_t> *predicted,
              FeatureBatchScratch &scratch)
{
    // Chunked so resident memory stays bounded by a few pool-widths of
    // Records (a Record holds every intermediate feature map) instead
    // of one Record per input for the whole batch.
    ThreadPool *pool = &globalPool();
    const std::size_t chunk = std::max<std::size_t>(8, 4 * pool->size());
    rows.resize(xs.size());
    if (predicted)
        predicted->resize(xs.size());
    const auto &ex = mdl.extractor();
    for (std::size_t base = 0; base < xs.size(); base += chunk) {
        const std::size_t n = std::min(chunk, xs.size() - base);
        scratch.xs.assign(xs.begin() + static_cast<std::ptrdiff_t>(base),
                          xs.begin() +
                              static_cast<std::ptrdiff_t>(base + n));
        // Wide layer-major forward (bit-identical to forwardBatch, one
        // wide SGEMM per conv layer); exact-resize afterwards because
        // extractBatch walks the whole record vector.
        mdl.network().forwardBatchWide(scratch.xs, scratch.recs, pool);
        scratch.recs.resize(n);
        ex.extractBatch(scratch.recs, scratch.paths, scratch.bws, pool);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t pred = scratch.recs[i].predictedClass();
            if (predicted)
                (*predicted)[base + i] = pred;
            rows[base + i] =
                path::computeSimilarity(scratch.paths[i],
                                        mdl.classPaths().classPath(pred),
                                        ex.layout())
                    .toVector();
        }
    }
}

} // namespace detail

DetectorBuilder::DetectorBuilder(const nn::Network &net,
                                 path::ExtractionConfig cfg,
                                 std::size_t num_classes,
                                 classify::ForestConfig forest_cfg)
    : mdl(net, std::move(cfg), num_classes, forest_cfg)
{
}

std::size_t
DetectorBuilder::profileClassPaths(const nn::Dataset &train,
                                   int max_per_class)
{
    // Chunked batch pipeline: inference + extraction of each chunk fan
    // out on the pool, then aggregation replays the chunk in dataset
    // order with the same cap/correctness checks the sequential loop
    // applied, so the resulting class paths are identical to it. (A
    // sample whose class fills up mid-chunk is forwarded wastefully but
    // never aggregated.)
    std::size_t aggregated = 0;
    ThreadPool *pool = &globalPool();
    const std::size_t chunk = std::max<std::size_t>(8, 4 * pool->size());
    const auto cap = static_cast<std::size_t>(max_per_class);
    scratch.xs.clear();
    labelScratch.clear();

    auto flush = [&] {
        if (scratch.xs.empty())
            return;
        mdl.network().forwardBatchWide(scratch.xs, scratch.recs, pool);
        scratch.recs.resize(scratch.xs.size());
        mdl.pathExtractor.extractBatch(scratch.recs, scratch.paths,
                                       scratch.bws, pool);
        for (std::size_t i = 0; i < scratch.xs.size(); ++i) {
            const std::size_t label = labelScratch[i];
            if (mdl.store.samplesSeen(label) >= cap)
                continue;
            if (scratch.recs[i].predictedClass() != label)
                continue; // only correct predictions define the canary
            mdl.store.aggregate(label, scratch.paths[i]);
            ++aggregated;
        }
        scratch.xs.clear();
        labelScratch.clear();
    };

    for (const auto &s : train) {
        if (mdl.store.samplesSeen(s.label) >= cap)
            continue;
        scratch.xs.push_back(s.input);
        labelScratch.push_back(s.label);
        if (scratch.xs.size() >= chunk)
            flush();
    }
    flush();
    return aggregated;
}

void
DetectorBuilder::featuresBatch(const std::vector<nn::Tensor> &xs,
                               classify::FeatureMatrix &rows,
                               std::vector<std::size_t> *predicted)
{
    detail::featuresBatch(mdl, xs, rows, predicted, scratch);
}

void
DetectorBuilder::fitClassifier(const classify::FeatureMatrix &benign,
                               const classify::FeatureMatrix &adversarial)
{
    classify::FeatureMatrix x;
    std::vector<int> y;
    x.reserve(benign.size() + adversarial.size());
    for (const auto &row : benign) {
        x.push_back(row);
        y.push_back(0);
    }
    for (const auto &row : adversarial) {
        x.push_back(row);
        y.push_back(1);
    }
    mdl.rf.fit(x, y);
}

} // namespace ptolemy::core
