/**
 * @file
 * Detection-accuracy evaluation harness (paper Sec. VI-A metrics).
 *
 * Follows the paper's setup: test sets are evenly split between benign
 * and (successful) adversarial inputs, the detector's random forest is
 * fitted on a held-in split of the pairs, and accuracy is reported as the
 * area under the ROC curve (AUC) on the held-out split.
 */

#ifndef PTOLEMY_CORE_EVALUATION_HH
#define PTOLEMY_CORE_EVALUATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "attack/attack.hh"
#include "core/detector.hh"
#include "nn/trainer.hh"

namespace ptolemy::core
{

/** One clean/adversarial input pair produced by an attack. */
struct DetectionPair
{
    nn::Tensor clean;
    nn::Tensor adversarial;
    std::size_t label = 0; ///< true class of the clean input
    double mse = 0.0;      ///< attack distortion
};

/** One scored held-out sample. */
struct ScoredSample
{
    double score = 0.0; ///< detector's adversarial probability
    int label = 0;      ///< 1 = adversarial
    double mse = 0.0;   ///< pair distortion (0 for benign rows)
    std::size_t trueClass = 0;
    std::size_t predictedClass = 0;
};

/** Evaluation output: held-out scores plus the AUC. */
struct PairScores
{
    std::vector<ScoredSample> heldOut;
    double auc = 0.5;
};

/** Per-attack summary row. */
struct AttackEvalResult
{
    std::string attackName;
    double auc = 0.5;
    std::size_t numPairs = 0;
    std::size_t numAttempted = 0; ///< attacks actually launched
    double attackSuccessRate = 0.0; ///< numPairs / numAttempted
    double avgMse = 0.0;
};

/** Suite summary (the paper reports avg plus min/max error bars). */
struct SuiteEvalResult
{
    std::vector<AttackEvalResult> perAttack;
    double avgAuc = 0.0, minAuc = 1.0, maxAuc = 0.0;
};

/**
 * Attack up to @p max_samples correctly-classified test inputs; keep the
 * successful ones as pairs. Candidates are filtered through batched
 * inference and then fed to the attack in 64-sample chunks
 * (Attack::runBatch on the process-wide pool). Each candidate's sample
 * index is its selection ordinal, so the produced pairs are
 * bit-identical to attacking the candidates one at a time in selection
 * order — at any chunking and any PTOLEMY_NUM_THREADS.
 *
 * @param attempted_out when non-null, receives the number of attacks
 *        actually launched. The test set can run out of
 *        correctly-classified inputs, so this may be less than
 *        @p max_samples — success rates must divide by the attempted
 *        count, not the cap.
 */
std::vector<DetectionPair> buildAttackPairs(nn::Network &net,
                                            attack::Attack &atk,
                                            const nn::Dataset &test,
                                            int max_samples,
                                            std::uint64_t seed = 0xE7A1,
                                            int *attempted_out = nullptr);

/**
 * Fit the builder's classifier on a @p train_fraction split of the
 * pairs' benign/adversarial features, then score the held-out split
 * through @p sess. The train split is clamped to
 * [2, pairs.size() - 2] so the held-out split is never empty, whatever
 * @p train_fraction says.
 *
 * @p sess must be bound to @p bld's model; fitClassifier mutates the
 * model in place, so the session observes the freshly fitted forest.
 * Held-out scoring rides the real serving path — one fused
 * DetectorSession::detectBatch over the held-out inputs — so the
 * Sec. VI harness exercises exactly what production traffic would,
 * with scores bit-identical to per-sample score() calls.
 */
PairScores fitAndScore(DetectorBuilder &bld, DetectorSession &sess,
                       const std::vector<DetectionPair> &pairs,
                       double train_fraction = 0.5,
                       std::uint64_t seed = 17);

/** Façade wrapper over the builder/session overload. */
PairScores fitAndScore(Detector &det,
                       const std::vector<DetectionPair> &pairs,
                       double train_fraction = 0.5,
                       std::uint64_t seed = 17);

/**
 * buildAttackPairs + fitAndScore for one attack. Attack generation
 * needs gradient passes against @p net — the one mutable-network use
 * in the harness — so the network is passed explicitly; the detector
 * side only ever reads (it borrows the same network const).
 */
AttackEvalResult evaluateAttack(nn::Network &net, DetectorBuilder &bld,
                                DetectorSession &sess, attack::Attack &atk,
                                const nn::Dataset &test, int max_samples,
                                std::uint64_t seed = 17);

/** Façade wrapper over the builder/session overload. */
AttackEvalResult evaluateAttack(nn::Network &net, Detector &det,
                                attack::Attack &atk,
                                const nn::Dataset &test, int max_samples,
                                std::uint64_t seed = 17);

/**
 * Evaluate every attack in @p attacks and summarize. Attack generation
 * (the dominant cost) rides the batched attack engine, so throughput
 * scales with the process-wide pool while the summary stays
 * bit-identical to the sample-serial path at any thread count.
 */
SuiteEvalResult evaluateSuite(
    nn::Network &net, DetectorBuilder &bld, DetectorSession &sess,
    const std::vector<std::unique_ptr<attack::Attack>> &attacks,
    const nn::Dataset &test, int max_samples_per_attack,
    std::uint64_t seed = 17);

/** Façade wrapper over the builder/session overload. */
SuiteEvalResult evaluateSuite(
    nn::Network &net, Detector &det,
    const std::vector<std::unique_ptr<attack::Attack>> &attacks,
    const nn::Dataset &test, int max_samples_per_attack,
    std::uint64_t seed = 17);

} // namespace ptolemy::core

#endif // PTOLEMY_CORE_EVALUATION_HH
