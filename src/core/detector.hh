/**
 * @file
 * The Ptolemy adversarial-sample detector (paper Fig. 4).
 *
 * Offline: profile correctly-predicted training samples, extract their
 * activation paths and OR them into per-class canary paths; fit the
 * random-forest classifier on path-similarity features of benign and
 * adversarial examples.
 *
 * Online: extract the input's activation path (per the configured
 * direction/threshold/selective-extraction knobs), compare it against the
 * canary path of the predicted class, and classify.
 */

#ifndef PTOLEMY_CORE_DETECTOR_HH
#define PTOLEMY_CORE_DETECTOR_HH

#include <string>
#include <vector>

#include "classify/random_forest.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"
#include "path/class_path.hh"
#include "path/extractor.hh"

namespace ptolemy::core
{

/**
 * End-to-end detector for one (network, extraction-config) pair.
 */
class Detector
{
  public:
    /** Verdict for one input. */
    struct Decision
    {
        std::size_t predictedClass = 0;
        bool adversarial = false;
        double score = 0.0; ///< forest probability of "adversarial"
        path::SimilarityFeatures features;
    };

    /**
     * @param net the protected network (borrowed; must outlive this).
     * @param cfg extraction configuration (one policy per weighted layer).
     * @param num_classes classifier output arity.
     * @param forest_cfg random-forest hyper-parameters.
     */
    Detector(nn::Network &net, path::ExtractionConfig cfg,
             std::size_t num_classes,
             classify::ForestConfig forest_cfg = {});

    /**
     * Offline profiling: aggregate activation paths of correctly-predicted
     * training samples into class paths (paper: saturates around 100
     * images per class).
     * @param train training samples.
     * @param max_per_class cap of aggregated samples per class.
     * @return number of samples aggregated.
     */
    std::size_t buildClassPaths(const nn::Dataset &train,
                                int max_per_class = 100);

    /** Similarity features of a recorded inference against the canary
     *  path of its predicted class. @p trace optionally receives the
     *  extraction op counts. */
    std::vector<double> featuresFor(const nn::Network::Record &rec,
                                    path::ExtractionTrace *trace = nullptr);

    /**
     * Batched featuresFor over raw inputs: inference and path
     * extraction fan out on the process-wide pool, one workspace per
     * pool slot. rows[i] (and predicted[i] when requested) always
     * correspond to xs[i] and are bit-identical to the sequential
     * pipeline, independent of thread count.
     */
    void featuresBatch(const std::vector<nn::Tensor> &xs,
                       classify::FeatureMatrix &rows,
                       std::vector<std::size_t> *predicted = nullptr);

    /** Fit the forest on benign (label 0) and adversarial (label 1)
     *  feature rows. */
    void fitClassifier(const classify::FeatureMatrix &benign,
                       const classify::FeatureMatrix &adversarial);

    /** Full online pipeline: inference + extraction + classification. */
    Decision detect(const nn::Tensor &x);

    /** Adversarial-probability score for a recorded pass. */
    double score(const nn::Network::Record &rec);

    nn::Network &network() { return *net; }
    const path::PathExtractor &extractor() const { return pathExtractor; }
    const path::ClassPathStore &classPaths() const { return store; }
    path::ClassPathStore &classPaths() { return store; }
    const classify::RandomForest &forest() const { return rf; }
    const path::ExtractionConfig &config() const
    {
        return pathExtractor.config();
    }

    /** Variant tag, e.g. "BwCu". */
    std::string variantName() const { return config().variantName(); }

  private:
    nn::Network *net;
    path::PathExtractor pathExtractor;
    path::ClassPathStore store;
    classify::RandomForest rf;
    // Reused hot-path buffers: the online pipeline (forward -> extract
    // -> compare) allocates nothing once these are warm.
    nn::Network::Record recScratch;
    path::ExtractionWorkspace ws;
    BitVector pathScratch;
    // Batched-pipeline scratch (buildClassPaths / featuresBatch).
    std::vector<nn::Tensor> xsScratch;
    std::vector<std::size_t> labelScratch;
    std::vector<nn::Network::Record> recBatch;
    std::vector<BitVector> pathBatch;
    path::BatchExtractionWorkspace bws;
};

} // namespace ptolemy::core

#endif // PTOLEMY_CORE_DETECTOR_HH
