/**
 * @file
 * Deprecated single-client façade over the Engine/Session split.
 *
 * The detection stack now lives in two pieces (see detector_model.hh /
 * detector_session.hh): an immutable, thread-shareable DetectorModel
 * built offline by a DetectorBuilder, and cheap per-client
 * DetectorSessions holding all hot-path scratch, with the fused
 * batched serving entry point DetectorSession::detectBatch.
 *
 * Detector remains as a thin transition façade bundling one builder
 * and one session for code written against the pre-split API. It is a
 * single-client object like before — but it no longer leaks mutable
 * views: network(), classPaths() and friends are const-only, so online
 * -path code can only read. New code should use
 * DetectorBuilder/DetectorModel/DetectorSession directly.
 */

#ifndef PTOLEMY_CORE_DETECTOR_HH
#define PTOLEMY_CORE_DETECTOR_HH

#include <memory>
#include <string>
#include <vector>

#include "core/detector_model.hh"
#include "core/detector_session.hh"

namespace ptolemy::core
{

/**
 * End-to-end single-client detector for one (network, extraction-config)
 * pair. Deprecated façade: delegates to DetectorBuilder (offline phase)
 * and DetectorSession (online phase) over one internally-owned model.
 */
class Detector
{
  public:
    /** Verdict for one input (alias of the serving-API type). */
    using Decision = core::Decision;

    /**
     * @param net the protected network (borrowed; must outlive this).
     * @param cfg extraction configuration (one policy per weighted layer).
     * @param num_classes classifier output arity.
     * @param forest_cfg random-forest hyper-parameters.
     */
    Detector(const nn::Network &net, path::ExtractionConfig cfg,
             std::size_t num_classes,
             classify::ForestConfig forest_cfg = {});

    /** Offline profiling (see DetectorBuilder::profileClassPaths). */
    std::size_t buildClassPaths(const nn::Dataset &train,
                                int max_per_class = 100);

    /** See DetectorSession::featuresFor. */
    std::vector<double> featuresFor(const nn::Network::Record &rec,
                                    path::ExtractionTrace *trace = nullptr);

    /** See DetectorSession::featuresBatch. */
    void featuresBatch(const std::vector<nn::Tensor> &xs,
                       classify::FeatureMatrix &rows,
                       std::vector<std::size_t> *predicted = nullptr);

    /** See DetectorBuilder::fitClassifier. */
    void fitClassifier(const classify::FeatureMatrix &benign,
                       const classify::FeatureMatrix &adversarial);

    /** Full online pipeline: inference + extraction + classification. */
    Decision detect(const nn::Tensor &x);

    /** Adversarial-probability score for a recorded pass. */
    double score(const nn::Network::Record &rec);

    /**
     * Const-only views. The pre-split API returned mutable references
     * to the network and class-path store here; those leaks are gone —
     * everything the online path can reach through a Detector is
     * read-only. Code that mutates the network (attack generation,
     * training) must hold its own non-const reference.
     */
    const nn::Network &network() const { return model().network(); }
    const path::PathExtractor &extractor() const
    {
        return model().extractor();
    }
    const path::ClassPathStore &classPaths() const
    {
        return model().classPaths();
    }
    const classify::RandomForest &forest() const { return model().forest(); }
    const path::ExtractionConfig &config() const { return model().config(); }

    /** Variant tag, e.g. "BwCu". */
    std::string variantName() const { return model().variantName(); }

    /** The underlying immutable model (share it across sessions). */
    const DetectorModel &model() const { return bld->model(); }

    /** The façade's offline-phase builder (profiling/fitting). */
    DetectorBuilder &builder() { return *bld; }

    /** The façade's own serving session (single-client scratch). */
    DetectorSession &session() { return *sess; }

  private:
    // unique_ptrs keep the model/session addresses stable across moves
    // of the façade (bench helpers return Detectors by value).
    std::unique_ptr<DetectorBuilder> bld;
    std::unique_ptr<DetectorSession> sess;
};

} // namespace ptolemy::core

#endif // PTOLEMY_CORE_DETECTOR_HH
