#include "detector.hh"

#include "util/thread_pool.hh"

namespace ptolemy::core
{

Detector::Detector(nn::Network &net_ref, path::ExtractionConfig cfg,
                   std::size_t num_classes,
                   classify::ForestConfig forest_cfg)
    : net(&net_ref), pathExtractor(net_ref, std::move(cfg)),
      store(num_classes, pathExtractor.layout().totalBits()), rf(forest_cfg)
{
}

std::size_t
Detector::buildClassPaths(const nn::Dataset &train, int max_per_class)
{
    // Chunked batch pipeline: inference + extraction of each chunk fan
    // out on the pool, then aggregation replays the chunk in dataset
    // order with the same cap/correctness checks the sequential loop
    // applied, so the resulting class paths are identical to it. (A
    // sample whose class fills up mid-chunk is forwarded wastefully but
    // never aggregated.)
    std::size_t aggregated = 0;
    ThreadPool *pool = &globalPool();
    const std::size_t chunk = std::max<std::size_t>(8, 4 * pool->size());
    const auto cap = static_cast<std::size_t>(max_per_class);
    xsScratch.clear();
    labelScratch.clear();

    auto flush = [&] {
        if (xsScratch.empty())
            return;
        net->forwardBatch(xsScratch, recBatch, pool);
        pathExtractor.extractBatch(recBatch, pathBatch, bws, pool);
        for (std::size_t i = 0; i < xsScratch.size(); ++i) {
            const std::size_t label = labelScratch[i];
            if (store.samplesSeen(label) >= cap)
                continue;
            if (recBatch[i].predictedClass() != label)
                continue; // only correct predictions define the canary
            store.aggregate(label, pathBatch[i]);
            ++aggregated;
        }
        xsScratch.clear();
        labelScratch.clear();
    };

    for (const auto &s : train) {
        if (store.samplesSeen(s.label) >= cap)
            continue;
        xsScratch.push_back(s.input);
        labelScratch.push_back(s.label);
        if (xsScratch.size() >= chunk)
            flush();
    }
    flush();
    return aggregated;
}

std::vector<double>
Detector::featuresFor(const nn::Network::Record &rec,
                      path::ExtractionTrace *trace)
{
    pathExtractor.extractInto(rec, ws, pathScratch, trace);
    const auto &pc = store.classPath(rec.predictedClass());
    return path::computeSimilarity(pathScratch, pc, pathExtractor.layout())
        .toVector();
}

void
Detector::featuresBatch(const std::vector<nn::Tensor> &xs,
                        classify::FeatureMatrix &rows,
                        std::vector<std::size_t> *predicted)
{
    // Chunked so resident memory stays bounded by a few pool-widths of
    // Records (a Record holds every intermediate feature map) instead
    // of one Record per input for the whole batch.
    ThreadPool *pool = &globalPool();
    const std::size_t chunk = std::max<std::size_t>(8, 4 * pool->size());
    rows.resize(xs.size());
    if (predicted)
        predicted->resize(xs.size());
    for (std::size_t base = 0; base < xs.size(); base += chunk) {
        const std::size_t n = std::min(chunk, xs.size() - base);
        xsScratch.assign(xs.begin() + static_cast<std::ptrdiff_t>(base),
                         xs.begin() + static_cast<std::ptrdiff_t>(base + n));
        net->forwardBatch(xsScratch, recBatch, pool);
        pathExtractor.extractBatch(recBatch, pathBatch, bws, pool);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t pred = recBatch[i].predictedClass();
            if (predicted)
                (*predicted)[base + i] = pred;
            rows[base + i] =
                path::computeSimilarity(pathBatch[i],
                                        store.classPath(pred),
                                        pathExtractor.layout())
                    .toVector();
        }
    }
}

void
Detector::fitClassifier(const classify::FeatureMatrix &benign,
                        const classify::FeatureMatrix &adversarial)
{
    classify::FeatureMatrix x;
    std::vector<int> y;
    x.reserve(benign.size() + adversarial.size());
    for (const auto &row : benign) {
        x.push_back(row);
        y.push_back(0);
    }
    for (const auto &row : adversarial) {
        x.push_back(row);
        y.push_back(1);
    }
    rf.fit(x, y);
}

Detector::Decision
Detector::detect(const nn::Tensor &x)
{
    net->forwardInto(x, recScratch, /*train=*/false);
    Decision d;
    d.predictedClass = recScratch.predictedClass();
    pathExtractor.extractInto(recScratch, ws, pathScratch);
    const auto &pc = store.classPath(d.predictedClass);
    d.features =
        path::computeSimilarity(pathScratch, pc, pathExtractor.layout());
    d.score = rf.predictProb(d.features.toVector());
    d.adversarial = d.score >= 0.5;
    return d;
}

double
Detector::score(const nn::Network::Record &rec)
{
    return rf.predictProb(featuresFor(rec));
}

} // namespace ptolemy::core
