#include "detector.hh"

namespace ptolemy::core
{

Detector::Detector(const nn::Network &net, path::ExtractionConfig cfg,
                   std::size_t num_classes,
                   classify::ForestConfig forest_cfg)
    : bld(std::make_unique<DetectorBuilder>(net, std::move(cfg),
                                            num_classes, forest_cfg)),
      sess(std::make_unique<DetectorSession>(bld->model()))
{
}

std::size_t
Detector::buildClassPaths(const nn::Dataset &train, int max_per_class)
{
    return bld->profileClassPaths(train, max_per_class);
}

std::vector<double>
Detector::featuresFor(const nn::Network::Record &rec,
                      path::ExtractionTrace *trace)
{
    return sess->featuresFor(rec, trace);
}

void
Detector::featuresBatch(const std::vector<nn::Tensor> &xs,
                        classify::FeatureMatrix &rows,
                        std::vector<std::size_t> *predicted)
{
    sess->featuresBatch(xs, rows, predicted);
}

void
Detector::fitClassifier(const classify::FeatureMatrix &benign,
                        const classify::FeatureMatrix &adversarial)
{
    bld->fitClassifier(benign, adversarial);
}

Detector::Decision
Detector::detect(const nn::Tensor &x)
{
    return sess->detect(x);
}

double
Detector::score(const nn::Network::Record &rec)
{
    return sess->score(rec);
}

} // namespace ptolemy::core
