#include "detector.hh"

namespace ptolemy::core
{

Detector::Detector(nn::Network &net_ref, path::ExtractionConfig cfg,
                   std::size_t num_classes,
                   classify::ForestConfig forest_cfg)
    : net(&net_ref), pathExtractor(net_ref, std::move(cfg)),
      store(num_classes, pathExtractor.layout().totalBits()), rf(forest_cfg)
{
}

std::size_t
Detector::buildClassPaths(const nn::Dataset &train, int max_per_class)
{
    std::size_t aggregated = 0;
    for (const auto &s : train) {
        if (store.samplesSeen(s.label) >=
            static_cast<std::size_t>(max_per_class))
            continue;
        net->forwardInto(s.input, recScratch, /*train=*/false,
                         /*stash=*/false);
        if (recScratch.predictedClass() != s.label)
            continue; // only correctly-predicted samples define the canary
        pathExtractor.extractInto(recScratch, ws, pathScratch);
        store.aggregate(s.label, pathScratch);
        ++aggregated;
    }
    return aggregated;
}

std::vector<double>
Detector::featuresFor(const nn::Network::Record &rec,
                      path::ExtractionTrace *trace)
{
    pathExtractor.extractInto(rec, ws, pathScratch, trace);
    const auto &pc = store.classPath(rec.predictedClass());
    return path::computeSimilarity(pathScratch, pc, pathExtractor.layout())
        .toVector();
}

void
Detector::fitClassifier(const classify::FeatureMatrix &benign,
                        const classify::FeatureMatrix &adversarial)
{
    classify::FeatureMatrix x;
    std::vector<int> y;
    x.reserve(benign.size() + adversarial.size());
    for (const auto &row : benign) {
        x.push_back(row);
        y.push_back(0);
    }
    for (const auto &row : adversarial) {
        x.push_back(row);
        y.push_back(1);
    }
    rf.fit(x, y);
}

Detector::Decision
Detector::detect(const nn::Tensor &x)
{
    net->forwardInto(x, recScratch, /*train=*/false, /*stash=*/false);
    Decision d;
    d.predictedClass = recScratch.predictedClass();
    pathExtractor.extractInto(recScratch, ws, pathScratch);
    const auto &pc = store.classPath(d.predictedClass);
    d.features =
        path::computeSimilarity(pathScratch, pc, pathExtractor.layout());
    d.score = rf.predictProb(d.features.toVector());
    d.adversarial = d.score >= 0.5;
    return d;
}

double
Detector::score(const nn::Network::Record &rec)
{
    return rf.predictProb(featuresFor(rec));
}

} // namespace ptolemy::core
