#include "detector.hh"

namespace ptolemy::core
{

Detector::Detector(nn::Network &net_ref, path::ExtractionConfig cfg,
                   std::size_t num_classes,
                   classify::ForestConfig forest_cfg)
    : net(&net_ref), pathExtractor(net_ref, std::move(cfg)),
      store(num_classes, pathExtractor.layout().totalBits()), rf(forest_cfg)
{
}

std::size_t
Detector::buildClassPaths(const nn::Dataset &train, int max_per_class)
{
    std::size_t aggregated = 0;
    for (const auto &s : train) {
        if (store.samplesSeen(s.label) >=
            static_cast<std::size_t>(max_per_class))
            continue;
        auto rec = net->forward(s.input);
        if (rec.predictedClass() != s.label)
            continue; // only correctly-predicted samples define the canary
        store.aggregate(s.label, pathExtractor.extract(rec));
        ++aggregated;
    }
    return aggregated;
}

std::vector<double>
Detector::featuresFor(const nn::Network::Record &rec,
                      path::ExtractionTrace *trace)
{
    const BitVector p = pathExtractor.extract(rec, trace);
    const auto &pc = store.classPath(rec.predictedClass());
    return path::computeSimilarity(p, pc, pathExtractor.layout()).toVector();
}

void
Detector::fitClassifier(const classify::FeatureMatrix &benign,
                        const classify::FeatureMatrix &adversarial)
{
    classify::FeatureMatrix x;
    std::vector<int> y;
    x.reserve(benign.size() + adversarial.size());
    for (const auto &row : benign) {
        x.push_back(row);
        y.push_back(0);
    }
    for (const auto &row : adversarial) {
        x.push_back(row);
        y.push_back(1);
    }
    rf.fit(x, y);
}

Detector::Decision
Detector::detect(const nn::Tensor &x)
{
    auto rec = net->forward(x);
    Decision d;
    d.predictedClass = rec.predictedClass();
    const BitVector p = pathExtractor.extract(rec);
    const auto &pc = store.classPath(d.predictedClass);
    d.features = path::computeSimilarity(p, pc, pathExtractor.layout());
    d.score = rf.predictProb(d.features.toVector());
    d.adversarial = d.score >= 0.5;
    return d;
}

double
Detector::score(const nn::Network::Record &rec)
{
    return rf.predictProb(featuresFor(rec));
}

} // namespace ptolemy::core
