#include "simulator.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace ptolemy::hw
{

using isa::Instruction;
using isa::InstrMeta;
using isa::Opcode;

const char *
funcUnitName(FuncUnit u)
{
    switch (u) {
      case FuncUnit::Accel: return "accel";
      case FuncUnit::Sort: return "sort";
      case FuncUnit::Accum: return "accum";
      case FuncUnit::Mask: return "mask";
      case FuncUnit::Mcu: return "mcu";
    }
    return "?";
}

Simulator::Simulator(HwConfig config) : cfg(config), energy(cfg) {}

FuncUnit
Simulator::unitFor(Opcode op)
{
    switch (op) {
      case Opcode::Inf:
      case Opcode::InfSp:
      case Opcode::Csps:
        return FuncUnit::Accel;
      case Opcode::Sort:
        return FuncUnit::Sort;
      case Opcode::Acum:
        return FuncUnit::Accum;
      case Opcode::GenMasks:
        return FuncUnit::Mask;
      case Opcode::Cls:
        return FuncUnit::Mask; // bit-parallel similarity in the path ctor
      default:
        return FuncUnit::Mcu;
    }
}

namespace
{

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return b == 0 ? 0 : (a + b - 1) / b;
}

/** Compare-exchange stages of a bitonic network of width w. */
std::uint64_t
bitonicDepth(int w)
{
    int lg = 0;
    while ((1 << lg) < w)
        ++lg;
    return static_cast<std::uint64_t>(lg) * (lg + 1) / 2;
}

/** Source registers of an instruction under the compiler's conventions. */
void
sourceRegs(const Instruction &ins, int out[4], int &n)
{
    n = 0;
    switch (ins.op) {
      case Opcode::Inf:       // inf in, w, out
      case Opcode::Csps:      // csps neuron, layer, psum
        out[n++] = ins.r0;
        out[n++] = ins.r1;
        break;
      case Opcode::InfSp:     // infsp in, w, out, psum
        out[n++] = ins.r0;
        out[n++] = ins.r1;
        break;
      case Opcode::Sort:      // sort src, len, dst
        out[n++] = ins.r0;
        out[n++] = ins.r1;
        break;
      case Opcode::Acum:      // acum src, dst, thr
        out[n++] = ins.r0;
        out[n++] = ins.r2;
        break;
      case Opcode::GenMasks:  // genmasks src, dst
      case Opcode::FindRf:    // findrf neuron, dst
        out[n++] = ins.r0;
        break;
      case Opcode::FindNeuron: // findneuron layer, pos, dst
        out[n++] = ins.r0;
        out[n++] = ins.r1;
        break;
      case Opcode::Cls:       // cls cpath, apath, result
        out[n++] = ins.r0;
        out[n++] = ins.r1;
        break;
      case Opcode::MovR:
        out[n++] = ins.r1;
        break;
      case Opcode::Dec:
      case Opcode::Jne:
        out[n++] = ins.r0;
        break;
      default:
        break;
    }
}

/** Destination register, or -1. */
int
destReg(const Instruction &ins)
{
    switch (ins.op) {
      case Opcode::Inf: return ins.r2;
      case Opcode::InfSp: return ins.r2;
      case Opcode::Csps: return ins.r2;
      case Opcode::Sort: return ins.r2;
      case Opcode::Acum: return ins.r1;
      case Opcode::GenMasks: return ins.r1;
      case Opcode::FindNeuron: return ins.r2;
      case Opcode::FindRf: return ins.r1;
      case Opcode::Cls: return ins.r2;
      case Opcode::Mov: return ins.r0;
      case Opcode::MovR: return ins.r0;
      case Opcode::Dec: return ins.r0;
      default: return -1;
    }
}

} // namespace

std::uint64_t
Simulator::durationOf(const Instruction &ins, const InstrMeta &meta,
                      std::uint64_t seq_len) const
{
    const std::uint64_t fill =
        static_cast<std::uint64_t>(cfg.arrayRows) + cfg.arrayCols;
    switch (ins.op) {
      case Opcode::Inf: {
        const std::uint64_t compute =
            ceilDiv(meta.macs, cfg.macsPerCycle()) + fill;
        const std::uint64_t dma = static_cast<std::uint64_t>(
            (meta.ifmBytes + meta.wBytes + meta.ofmBytes) /
            cfg.dramBytesPerCycle());
        return std::max<std::uint64_t>(1, std::max(compute, dma));
      }
      case Opcode::InfSp: {
        // Storing every partial sum stalls the array (Sec. III-B): the
        // psum traffic serializes with compute.
        const std::uint64_t compute =
            ceilDiv(meta.macs, cfg.macsPerCycle()) + fill;
        const std::uint64_t dma = static_cast<std::uint64_t>(
            (meta.ifmBytes + meta.wBytes + meta.ofmBytes) /
            cfg.dramBytesPerCycle());
        const std::uint64_t psum_stall = static_cast<std::uint64_t>(
            meta.psumBytes / cfg.dramBytesPerCycle());
        return std::max<std::uint64_t>(
            1, std::max(compute, dma) + psum_stall);
      }
      case Opcode::Csps:
        // Recompute uses only the first PE row (Sec. V-B).
        return std::max<std::uint64_t>(
            1, ceilDiv(meta.macs, cfg.arrayCols) + cfg.arrayCols);
      case Opcode::Sort: {
        const std::uint64_t len =
            seq_len > 0 ? seq_len : std::max<std::size_t>(1, meta.seqLen);
        if (meta.selectPasses > 0) {
            // Ranked-prefix selection (the PR 7 software semantics
            // mapped onto the same hardware): each pass streams the
            // remaining candidates through the sort units as parallel
            // max reducers — one beat per numSortUnits*sortUnitWidth
            // lanes — and the per-unit partial maxima reduce through
            // the merge tree. Wide prefixes pay log-depth heap pops
            // past the scan passes.
            const std::uint64_t lanes = static_cast<std::uint64_t>(
                cfg.numSortUnits) * cfg.sortUnitWidth;
            const std::uint64_t beats = ceilDiv(len, lanes);
            // Tournament depth inside one sort unit: reducing its slice
            // of candidates to a single max takes ceil(log2) comparator
            // levels per beat.
            const std::uint64_t in_unit = std::min<std::uint64_t>(
                len, static_cast<std::uint64_t>(cfg.sortUnitWidth));
            std::uint64_t depth = 0;
            while ((1ull << depth) < in_unit)
                ++depth;
            std::uint64_t levels = 0;
            for (std::uint64_t rem = ceilDiv(len, cfg.sortUnitWidth);
                 rem > 1; rem = ceilDiv(rem, cfg.mergeTreeLen))
                ++levels;
            std::uint64_t heap = 0;
            if (meta.heapPops > 0) {
                std::uint64_t lg = 0;
                while ((1ull << lg) < len)
                    ++lg;
                heap = meta.heapPops * (lg + 1);
            }
            return std::max<std::uint64_t>(
                1, meta.selectPasses * (beats + depth + levels) + heap);
        }
        const std::uint64_t n_sub = ceilDiv(len, cfg.sortUnitWidth);
        const std::uint64_t sub_cycles =
            ceilDiv(n_sub, cfg.numSortUnits) *
            bitonicDepth(cfg.sortUnitWidth);
        std::uint64_t passes = 0;
        for (std::uint64_t remaining = n_sub; remaining > 1;
             remaining = ceilDiv(remaining, cfg.mergeTreeLen))
            ++passes;
        return std::max<std::uint64_t>(1, sub_cycles + passes * len);
      }
      case Opcode::Acum:
        return std::max<std::uint64_t>(1, meta.accumLen);
      case Opcode::GenMasks:
        return std::max<std::uint64_t>(1, ceilDiv(meta.bits, 64));
      case Opcode::Cls:
        return std::max<std::uint64_t>(
            1, ceilDiv(meta.bits, 64) + meta.mcuOps);
      default:
        return 1;
    }
}

PerfReport
Simulator::run(const isa::Program &prog) const
{
    PerfReport rep;
    std::int64_t regs[isa::kNumRegisters] = {};
    std::uint64_t reg_ready[isa::kNumRegisters] = {};
    std::uint64_t unit_free[kNumFuncUnits] = {};
    std::uint64_t dispatch_free = 0;

    constexpr std::uint64_t kMaxInstructions = 400'000'000ull;
    std::size_t pc = 0;

    while (pc < prog.size() &&
           rep.instructionsExecuted < kMaxInstructions) {
        const Instruction &ins = prog.instruction(pc);
        const InstrMeta &meta = prog.meta(pc);
        if (ins.op == Opcode::Halt)
            break;

        const FuncUnit unit = unitFor(ins.op);
        const int ui = static_cast<int>(unit);

        int srcs[4];
        int n_srcs;
        sourceRegs(ins, srcs, n_srcs);
        std::uint64_t ready = dispatch_free;
        for (int i = 0; i < n_srcs; ++i)
            ready = std::max(ready, reg_ready[srcs[i]]);
        const std::uint64_t issue = std::max(ready, unit_free[ui]);

        // Sort length comes from the register file (Listing 1's mov idiom).
        std::uint64_t seq_len = 0;
        if (ins.op == Opcode::Sort && regs[ins.r1] > 0)
            seq_len = static_cast<std::uint64_t>(regs[ins.r1]);

        const std::uint64_t dur = durationOf(ins, meta, seq_len);
        const std::uint64_t finish = issue + dur;

        // Blocking-issue in-order dispatch, one instruction per cycle.
        dispatch_free = issue + 1;
        unit_free[ui] = finish;
        const int dst = destReg(ins);
        if (dst >= 0)
            reg_ready[dst] = finish;

        rep.unitBusyCycles[ui] += dur;
        ++rep.instructionsExecuted;

        // ------------------------------------------------ energy + DRAM --
        double e = 0.0;
        switch (ins.op) {
          case Opcode::Inf:
          case Opcode::InfSp: {
            e += meta.macs * energy.macOp();
            const std::uint64_t data_bytes =
                meta.ifmBytes + meta.wBytes + meta.ofmBytes;
            e += data_bytes * (energy.sramByte() + energy.dramByte());
            e += meta.psumBytes * (energy.sramByte() + energy.dramByte());
            e += meta.maskBits * energy.maskBit();
            rep.dramBytes += data_bytes + meta.psumBytes +
                             (meta.maskBits + 7) / 8;
            break;
          }
          case Opcode::Csps:
            e += meta.macs * energy.macOp();
            e += meta.macs * cfg.elemBytes() * energy.sramByte();
            break;
          case Opcode::Sort: {
            const std::uint64_t len = std::max<std::uint64_t>(
                1, seq_len > 0 ? seq_len : meta.seqLen);
            const double lg = std::log2(static_cast<double>(
                std::max<std::uint64_t>(2, len)));
            if (meta.selectPasses > 0) {
                // Ranked-prefix selection: each argmax pass compares
                // every remaining candidate once and re-reads it from
                // SRAM; fallback heap pops pay log-depth compares.
                const double cmps =
                    static_cast<double>(meta.selectPasses) * len +
                    static_cast<double>(meta.heapPops) * lg;
                e += cmps * energy.sortCompare();
                e += static_cast<double>(meta.selectPasses) * len *
                     cfg.elemBytes() * energy.sramByte();
                break;
            }
            e += len * lg * energy.sortCompare();
            // Every merge pass re-streams the sequence through the SRAM
            // (read + write), plus the initial sub-sort pass.
            std::uint64_t passes = 1;
            for (std::uint64_t rem = ceilDiv(len, cfg.sortUnitWidth);
                 rem > 1; rem = ceilDiv(rem, cfg.mergeTreeLen))
                ++passes;
            e += static_cast<double>(len) * passes * cfg.elemBytes() *
                 2.0 * energy.sramByte();
            break;
          }
          case Opcode::Acum:
            e += meta.accumLen * energy.accumAdd();
            break;
          case Opcode::GenMasks:
            e += meta.bits * energy.maskBit();
            e += ceilDiv(meta.bits, 64) * energy.bitParallelWord();
            break;
          case Opcode::Cls:
            e += ceilDiv(meta.bits, 64) * energy.bitParallelWord();
            e += meta.mcuOps * energy.mcuOp();
            break;
          default:
            e += energy.mcuOp();
            break;
        }
        rep.unitEnergyPj[ui] += e;
        rep.energyPj += e;

        // ------------------------------------------------ semantics ------
        switch (ins.op) {
          case Opcode::Mov:
            regs[ins.r0] = ins.imm;
            pc += 1;
            break;
          case Opcode::MovR:
            regs[ins.r0] = regs[ins.r1];
            pc += 1;
            break;
          case Opcode::Dec:
            regs[ins.r0] -= 1;
            pc += 1;
            break;
          case Opcode::Jne:
            pc = regs[ins.r0] != 0 ? ins.imm : pc + 1;
            break;
          default:
            if (dst >= 0)
                regs[dst] = 0; // address/handle token
            pc += 1;
            break;
        }
    }

    for (int u = 0; u < kNumFuncUnits; ++u)
        rep.cycles = std::max(rep.cycles, unit_free[u]);
    rep.cycles = std::max(rep.cycles, dispatch_free);
    rep.energyPj += rep.cycles * energy.staticPerCycle();
    return rep;
}

} // namespace ptolemy::hw
