/**
 * @file
 * Energy model.
 *
 * Per-operation energies in picojoules, representative of a ~15 nm-class
 * process (the paper synthesizes with the Silvaco 15 nm open cell library
 * and an ARM memory compiler; we substitute published per-op constants of
 * that technology class — see DESIGN.md). Absolute joules are not the
 * reproduction target; the ratios between MAC, SRAM, DRAM and
 * sort/accumulate work are what shape the paper's normalized energy
 * overheads, and those ratios are preserved.
 */

#ifndef PTOLEMY_HW_ENERGY_HH
#define PTOLEMY_HW_ENERGY_HH

#include <cstddef>

#include "hw/config.hh"

namespace ptolemy::hw
{

/** Per-op energy constants (pJ), scaled by datapath width. */
class EnergyModel
{
  public:
    explicit EnergyModel(const HwConfig &cfg);

    double macOp() const { return macPj; }          ///< one 16/8-bit MAC
    double sramByte() const { return sramBytePj; }  ///< on-chip access
    double dramByte() const { return dramBytePj; }  ///< off-chip access
    double sortCompare() const { return cmpPj; }    ///< compare-exchange
    double accumAdd() const { return addPj; }       ///< accumulate step
    double maskBit() const { return maskPj; }       ///< mask gen/store
    double mcuOp() const { return mcuPj; }          ///< controller op
    double bitParallelWord() const { return bitwPj; } ///< 64-bit AND+popc

    /** Leakage+clock power of the whole chip, pJ per cycle. */
    double staticPerCycle() const { return staticPj; }

  private:
    double macPj, sramBytePj, dramBytePj, cmpPj, addPj, maskPj, mcuPj,
        bitwPj, staticPj;
};

} // namespace ptolemy::hw

#endif // PTOLEMY_HW_ENERGY_HH
