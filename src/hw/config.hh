/**
 * @file
 * Hardware configuration (paper Sec. V / VII-A).
 *
 * Defaults model the paper's baseline: a TPU-like 20×20 MAC systolic array
 * at 250 MHz with 1.5 MB of double-buffered SRAM (64 KB banks), augmented
 * by Ptolemy with a 32 KB partial-sum/mask SRAM (2 KB banks), a 64 KB path
 * constructor SRAM, two 16-element sort units and one 16-way merge tree.
 * Off-chip memory is four LPDDR3-1600 channels.
 */

#ifndef PTOLEMY_HW_CONFIG_HH
#define PTOLEMY_HW_CONFIG_HH

#include <cstddef>

namespace ptolemy::hw
{

/** Full hardware parameterization. */
struct HwConfig
{
    // Baseline DNN accelerator.
    int arrayRows = 20;
    int arrayCols = 20;
    double clockMhz = 250.0;
    int bitWidth = 16;          ///< datapath precision (16 or 8)
    std::size_t accSramKB = 1536;
    std::size_t accSramBankKB = 64;

    // Ptolemy extensions.
    std::size_t psumSramKB = 32; ///< partial-sum / mask buffer (2 KB banks)
    std::size_t pcSramKB = 64;   ///< path-constructor SRAM
    int numSortUnits = 2;
    int sortUnitWidth = 16;      ///< elements per sort-network pass
    int mergeTreeLen = 16;       ///< sequences merged simultaneously

    // Off-chip memory: 4x 16 Gb LPDDR3-1600 -> ~12.8 GB/s per channel.
    int dramChannels = 4;
    double dramGBps = 12.8; ///< per channel

    /** MACs retired per cycle when the array is fully utilized. */
    std::size_t
    macsPerCycle() const
    {
        return static_cast<std::size_t>(arrayRows) * arrayCols;
    }

    /** DRAM bytes transferable per accelerator cycle. */
    double
    dramBytesPerCycle() const
    {
        return dramChannels * dramGBps * 1e9 / (clockMhz * 1e6);
    }

    /** Bytes per fixed-point element. */
    std::size_t elemBytes() const { return bitWidth / 8; }

    /** The paper's default configuration. */
    static HwConfig baseline() { return HwConfig{}; }

    /** 8-bit variant (paper Sec. VII-G). */
    static HwConfig
    eightBit()
    {
        HwConfig c;
        c.bitWidth = 8;
        return c;
    }

    /** 32x32 array variant (paper Sec. VII-G): the psum buffer, path
     *  constructor SRAM and sort provisioning scale with the array's
     *  partial-sum production rate. */
    static HwConfig
    bigArray()
    {
        HwConfig c;
        c.arrayRows = 32;
        c.arrayCols = 32;
        c.psumSramKB = 82; // 32 KB * (32*32)/(20*20), rounded
        c.pcSramKB = 96;
        c.numSortUnits = 4;
        return c;
    }
};

} // namespace ptolemy::hw

#endif // PTOLEMY_HW_CONFIG_HH
