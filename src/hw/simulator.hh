/**
 * @file
 * Cycle-level simulator for the Ptolemy architecture (paper Sec. V/VI-A).
 *
 * Executes compiled programs functionally (registers, loops, control
 * flow) while modeling timing with an in-order, blocking-issue dispatch
 * pipeline: the controller dispatches one instruction per cycle; an
 * instruction issues when its functional unit is free and its source
 * registers' producers have completed; dispatch stalls until the head
 * instruction issues ("the hardware remains in-order ... with logic to
 * check dependencies and stall the pipeline", Sec. IV-B). Different
 * functional units execute concurrently, which is what lets the
 * compiler's layer-level and neuron-level pipelining overlap inference
 * with path construction.
 */

#ifndef PTOLEMY_HW_SIMULATOR_HH
#define PTOLEMY_HW_SIMULATOR_HH

#include "hw/config.hh"
#include "hw/energy.hh"
#include "hw/report.hh"
#include "isa/program.hh"

namespace ptolemy::hw
{

/**
 * The cycle-level machine model.
 */
class Simulator
{
  public:
    explicit Simulator(HwConfig cfg = HwConfig::baseline());

    const HwConfig &config() const { return cfg; }

    /** Execute @p prog to completion (halt / fall-through). */
    PerfReport run(const isa::Program &prog) const;

    /** Functional unit an opcode executes on. */
    static FuncUnit unitFor(isa::Opcode op);

    /** Timing of one instruction given its metadata and the sequence
     *  length in @p seq_len (sort reads it from a register). Exposed for
     *  unit tests. */
    std::uint64_t durationOf(const isa::Instruction &ins,
                             const isa::InstrMeta &meta,
                             std::uint64_t seq_len) const;

  private:
    HwConfig cfg;
    EnergyModel energy;
};

} // namespace ptolemy::hw

#endif // PTOLEMY_HW_SIMULATOR_HH
