#include "area.hh"

namespace ptolemy::hw
{

namespace
{

// 15 nm-class density constants (mm²), calibrated so the default
// configuration lands on the paper's accounting (5.2% total overhead,
// 3.9% SRAM / 0.4% MAC / 0.9% logic).
constexpr double kSramMm2PerKB = 6.25e-4;
constexpr double kMac16Mm2 = 1.3e-3;
constexpr double kControlMm2 = 0.058;
constexpr double kMacAugmentFraction = 0.012; ///< of MAC area
constexpr double kSortUnitMm2Per16 = 3.0e-3;  ///< one 16-wide sort network
constexpr double kMergeTreeMm2Per16 = 4.8e-3; ///< one 16-way merge tree
constexpr double kAccumMaskSimMm2 = 2.0e-3;   ///< accum + maskgen + simil.

double
macMm2(const HwConfig &cfg)
{
    return kMac16Mm2 * (cfg.bitWidth == 8 ? 0.45 : 1.0);
}

} // namespace

AreaBreakdown
areaBreakdown(const HwConfig &cfg)
{
    AreaBreakdown a;
    const double n_macs = static_cast<double>(cfg.arrayRows) * cfg.arrayCols;
    a.baselineMm2 = cfg.accSramKB * kSramMm2PerKB + n_macs * macMm2(cfg) +
                    kControlMm2;

    a.extraSramMm2 = (cfg.psumSramKB + cfg.pcSramKB) * kSramMm2PerKB;
    a.macAugmentMm2 = n_macs * macMm2(cfg) * kMacAugmentFraction;
    const double logic_scale = cfg.bitWidth == 8 ? 0.55 : 1.0;
    a.otherLogicMm2 =
        (cfg.numSortUnits * kSortUnitMm2Per16 * (cfg.sortUnitWidth / 16.0) +
         kMergeTreeMm2Per16 * (cfg.mergeTreeLen / 16.0) +
         kAccumMaskSimMm2) * logic_scale;

    a.totalOverheadMm2 =
        a.extraSramMm2 + a.macAugmentMm2 + a.otherLogicMm2;
    a.overheadFraction = a.totalOverheadMm2 / a.baselineMm2;
    a.sramFraction = a.extraSramMm2 / a.baselineMm2;
    a.macFraction = a.macAugmentMm2 / a.baselineMm2;
    a.logicFraction = a.otherLogicMm2 / a.baselineMm2;
    return a;
}

std::size_t
extraDramBytes(const HwConfig &cfg, std::size_t psum_count,
               std::size_t mask_bits, std::size_t recompute_psums)
{
    // Partial sums are buffered at accumulator precision (2x datapath
    // width); masks are bit-packed. Everything is double-buffered between
    // the SRAM and DRAM (Sec. V-B).
    const std::size_t psum_bytes = psum_count * cfg.elemBytes() * 2;
    const std::size_t recompute_bytes =
        recompute_psums * cfg.elemBytes() * 2;
    const std::size_t mask_bytes = (mask_bits + 7) / 8;
    return 2 * (psum_bytes + recompute_bytes + mask_bytes);
}

} // namespace ptolemy::hw
