/**
 * @file
 * Simulation output: cycle and energy accounting per functional unit.
 */

#ifndef PTOLEMY_HW_REPORT_HH
#define PTOLEMY_HW_REPORT_HH

#include <array>
#include <cstdint>

namespace ptolemy::hw
{

/** Functional units the controller dispatches to (paper Fig. 8). */
enum class FuncUnit : int
{
    Accel = 0, ///< systolic MAC array (inf / infsp / csps)
    Sort,      ///< sort units + merge tree
    Accum,     ///< threshold accumulator
    Mask,      ///< mask generation / path assembly / similarity
    Mcu,       ///< controller (dispatch, scalar ops, random forest)
};

inline constexpr int kNumFuncUnits = 5;

/** Name of a functional unit. */
const char *funcUnitName(FuncUnit u);

/** One simulation's performance/energy report. */
struct PerfReport
{
    std::uint64_t cycles = 0;
    std::uint64_t instructionsExecuted = 0;
    std::uint64_t dramBytes = 0;
    double energyPj = 0.0; ///< total, incl. static

    std::array<std::uint64_t, kNumFuncUnits> unitBusyCycles{};
    std::array<double, kNumFuncUnits> unitEnergyPj{};

    /** Wall-clock latency at @p clock_mhz. */
    double
    latencyUs(double clock_mhz) const
    {
        return cycles / clock_mhz;
    }

    /** Average power in milliwatts at @p clock_mhz. */
    double
    avgPowerMw(double clock_mhz) const
    {
        const double us = latencyUs(clock_mhz);
        return us <= 0.0 ? 0.0 : energyPj / us * 1e-3; // pJ/us = uW

    }
};

} // namespace ptolemy::hw

#endif // PTOLEMY_HW_REPORT_HH
