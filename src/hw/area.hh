/**
 * @file
 * Area model (paper Sec. VII-A).
 *
 * Component areas in mm², calibrated to 15 nm-class densities so the
 * default configuration reproduces the paper's accounting: Ptolemy adds
 * 5.2% (0.08 mm²) on top of the baseline accelerator, of which 3.9% is
 * SRAM, 0.4% MAC-unit augmentation and 0.9% other logic. The model also
 * reproduces the scaling studies: 5.5% at 8-bit and 6.4% with a 32×32
 * array (Sec. VII-G).
 */

#ifndef PTOLEMY_HW_AREA_HH
#define PTOLEMY_HW_AREA_HH

#include "hw/config.hh"

namespace ptolemy::hw
{

/** Area accounting split. */
struct AreaBreakdown
{
    double baselineMm2 = 0.0;      ///< unmodified accelerator
    double extraSramMm2 = 0.0;     ///< psum/mask + path-constructor SRAM
    double macAugmentMm2 = 0.0;    ///< per-MAC compare/mask mux
    double otherLogicMm2 = 0.0;    ///< sort units, merge tree, accum, mask
    double totalOverheadMm2 = 0.0;
    double overheadFraction = 0.0; ///< totalOverhead / baseline
    double sramFraction = 0.0;
    double macFraction = 0.0;
    double logicFraction = 0.0;
};

/** Compute the area breakdown for a configuration. */
AreaBreakdown areaBreakdown(const HwConfig &cfg);

/**
 * Extra DRAM space (bytes) required for detection data structures.
 * @param psum_count partial sums stored per inference (0 when masks or
 *        recompute are used).
 * @param mask_bits single-bit masks stored per inference.
 * @param recompute_psums partial sums buffered under the csps recompute
 *        optimization (only important receptive fields).
 */
std::size_t extraDramBytes(const HwConfig &cfg, std::size_t psum_count,
                           std::size_t mask_bits,
                           std::size_t recompute_psums);

} // namespace ptolemy::hw

#endif // PTOLEMY_HW_AREA_HH
