#include "functional.hh"

#include <array>

#include "path/class_path.hh"

namespace ptolemy::hw
{

namespace
{

/// Runaway-loop backstop: far above any real program (the compiler
/// emits tens of static instructions; a batch program retires
/// ~instrs × batchSize dynamic ones).
constexpr std::uint64_t kMaxInstructions = 10'000'000;

} // namespace

FunctionalResult
runFunctional(const isa::Program &prog, const core::DetectorModel &model,
              std::span<const nn::Tensor *const> inputs)
{
    FunctionalResult res;
    res.paths.reserve(inputs.size());
    res.decisions.reserve(inputs.size());

    // Architectural state. Registers a real Ptolemy core would hold —
    // the functional interpreter only needs them for control flow
    // (mov/movr/dec/jne drive the batch countdown loop); the detection
    // macro-ops carry their workload in the instruction metadata and
    // are realized against the model below.
    std::array<std::uint64_t, isa::kNumRegisters> regs{};

    // Detection scratch, reused across the batch. The reference
    // full-sort selection is deliberately a *different* code path than
    // the branchless argmax scan DetectorSession uses — both pick the
    // identical ranked prefix, so agreement here is a genuine
    // cross-check rather than the same code run twice.
    path::ExtractionWorkspace ws;
    ws.referenceSort = true;
    nn::Network::Record rec;
    std::vector<double> feat;

    std::size_t next_input = 0;
    std::size_t pc = 0;
    while (pc < prog.size() && res.instructionsExecuted < kMaxInstructions) {
        const isa::Instruction &ins = prog.instruction(pc);
        ++res.instructionsExecuted;
        switch (ins.op) {
        case isa::Opcode::Mov:
            regs[ins.r0] = ins.imm;
            ++pc;
            break;
        case isa::Opcode::MovR:
            regs[ins.r0] = regs[ins.r1];
            ++pc;
            break;
        case isa::Opcode::Dec:
            if (regs[ins.r0] > 0)
                --regs[ins.r0];
            ++pc;
            break;
        case isa::Opcode::Jne:
            pc = regs[ins.r0] != 0 ? ins.imm : pc + 1;
            break;
        case isa::Opcode::Halt:
            res.halted = true;
            return res;
        case isa::Opcode::Cls: {
            // cls retires one detection: the inference + path
            // construction instructions before it produced the recorded
            // activations and the selected path; realize them now
            // against the model and score exactly the way
            // DetectorSession::finishDetect does.
            if (next_input >= inputs.size())
                return res; // batch program wider than the input set
            model.network().inferInto(*inputs[next_input++], rec);
            core::Decision d;
            d.predictedClass = rec.predictedClass();
            BitVector path;
            model.extractor().extractInto(rec, ws, path);
            path::computeSimilarityInto(
                path, model.classPaths().classPath(d.predictedClass),
                model.extractor().layout(), d.features);
            d.features.toVectorInto(feat);
            d.score = model.forest().predictProb(feat);
            d.adversarial = d.score >= 0.5;
            regs[ins.r2] = d.adversarial ? 1 : 0;
            res.paths.push_back(std::move(path));
            res.decisions.push_back(std::move(d));
            ++pc;
            break;
        }
        default:
            // Detection macro-ops (inf/infsp/csps, sort/acum/genmasks,
            // findneuron/findrf): their combined effect is realized at
            // the owning cls above; architecturally they deposit a
            // result token in their destination register.
            if (const int n = isa::opcodeNumRegs(ins.op); n > 0) {
                const std::uint8_t dst = n >= 4   ? ins.r3
                                         : n == 3 ? ins.r2
                                         : n == 2 ? ins.r1
                                                  : ins.r0;
                regs[dst] = 0;
            }
            ++pc;
            break;
        }
    }
    if (pc >= prog.size())
        res.halted = true; // fell off the end — treat as orderly stop
    return res;
}

} // namespace ptolemy::hw
