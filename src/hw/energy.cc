#include "energy.hh"

namespace ptolemy::hw
{

EnergyModel::EnergyModel(const HwConfig &cfg)
{
    // 16-bit baseline constants (pJ), 15 nm-class estimates.
    const double width_scale = cfg.bitWidth == 8 ? 0.45 : 1.0;
    macPj = 0.9 * width_scale;
    sramBytePj = 1.2;
    dramBytePj = 21.0;
    cmpPj = 0.35 * width_scale;  // compare-exchange in the sort network
    addPj = 0.25 * width_scale;  // accumulator step
    maskPj = 0.02;               // single-bit compare+store
    mcuPj = 0.6;                 // Cortex-M4-class op
    bitwPj = 0.3;                // 64-bit AND + popcount step
    // Leakage + clock tree scaled to array size (the dominant static
    // consumers). At the baseline 20x20 array this is ~1% of a fully
    // busy inference's power — but it is what makes long, serialized
    // extraction phases (BwCu) expensive in energy, since the wide MAC
    // array sits idle while the path constructor sorts.
    staticPj = 0.012 * cfg.arrayRows * cfg.arrayCols;
}

} // namespace ptolemy::hw
