/**
 * @file
 * Functional execution of compiled detection programs.
 *
 * The cycle-level Simulator (simulator.hh) models *timing*; this module
 * gives the same programs *semantics*: it walks the instruction stream
 * with the architectural register file driving control flow (mov / movr
 * / dec / jne execute exactly as in the cycle model, so a batch
 * program's outer countdown loop replays its body the compiled number
 * of times), and interprets the detection macro-ops against a
 * DetectorModel — inference runs the recorded forward pass, the
 * sort/acum/genmasks chain realizes the reference ranked-prefix
 * selection (full sort by value with input-index tie-breaks, the
 * specification the optimized branchless engine must match), and cls
 * scores the assembled path against the class canary with the fitted
 * forest.
 *
 * The contract — enforced by tests/test_codesign.cc and the CI codesign
 * leg — is bit-identity: the selected path bits and the Decisions
 * (class, score, verdict, features) of a functional run must equal
 * DetectorSession::detectBatch on the same inputs. That keeps the
 * hardware co-design layer honest against the batched software engine
 * instead of a modeled pipeline nobody ships.
 */

#ifndef PTOLEMY_HW_FUNCTIONAL_HH
#define PTOLEMY_HW_FUNCTIONAL_HH

#include <cstdint>
#include <span>
#include <vector>

#include "core/detector_model.hh"
#include "isa/program.hh"
#include "util/bitvector.hh"

namespace ptolemy::hw
{

/** Functional output of one program run over a batch of inputs. */
struct FunctionalResult
{
    /** Selected activation-path bits, one per completed detection. */
    std::vector<BitVector> paths;
    /** Serving decisions, one per completed detection (same fields and
     *  bit pattern as DetectorSession::detectBatch). */
    std::vector<core::Decision> decisions;
    std::uint64_t instructionsExecuted = 0;
    bool halted = false; ///< reached halt/fall-through (not the instr cap)
};

/**
 * Execute @p prog functionally against @p model. Every cls retired by
 * the program consumes the next input: a batchSize-N compiled program
 * detects inputs[0..N); a single-sample program consumes one. Execution
 * stops at halt, at fall-through, when the inputs are exhausted, or at
 * a runaway-loop instruction cap (halted stays false in the last case).
 */
FunctionalResult runFunctional(const isa::Program &prog,
                               const core::DetectorModel &model,
                               std::span<const nn::Tensor *const> inputs);

} // namespace ptolemy::hw

#endif // PTOLEMY_HW_FUNCTIONAL_HH
