/**
 * @file
 * Interface for the prior-work detection baselines the paper compares
 * against (Sec. VI-B): EP [55], CDRP [72] and DeepFense [57].
 */

#ifndef PTOLEMY_BASELINES_BASELINE_HH
#define PTOLEMY_BASELINES_BASELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluation.hh"
#include "nn/network.hh"

namespace ptolemy::baselines
{

/**
 * A detection baseline: profiled offline on benign training data, fitted
 * on clean/adversarial pairs, scores inputs at test time.
 */
class BaselineDetector
{
  public:
    virtual ~BaselineDetector() = default;

    virtual std::string name() const = 0;

    /** Offline profiling on benign training data. */
    virtual void profile(nn::Network &net, const nn::Dataset &train) = 0;

    /** Supervised fitting on clean/adversarial training pairs (no-op for
     *  purely unsupervised baselines). */
    virtual void fit(nn::Network &net,
                     const std::vector<core::DetectionPair> &pairs) = 0;

    /** Adversarial score of @p x (higher = more likely adversarial). */
    virtual double score(nn::Network &net, const nn::Tensor &x) = 0;

    /** True when the scheme can run at inference time (CDRP cannot —
     *  it requires retraining; paper Sec. VI-B). */
    virtual bool inferenceTimeCapable() const { return true; }
};

/**
 * Evaluate a baseline like core::fitAndScore evaluates Ptolemy: fit on a
 * split of the pairs, AUC over benign+adversarial of the held-out split.
 */
double evaluateBaselineAuc(BaselineDetector &det, nn::Network &net,
                           const std::vector<core::DetectionPair> &pairs,
                           double train_fraction = 0.5,
                           std::uint64_t seed = 17);

} // namespace ptolemy::baselines

#endif // PTOLEMY_BASELINES_BASELINE_HH
