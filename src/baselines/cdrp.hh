/**
 * @file
 * CDRP baseline — "Interpret neural networks by identifying critical data
 * routing paths" (Wang et al., CVPR 2018, the paper's reference [72]).
 *
 * CDRP learns channel-wise control gates by retraining the network per
 * input and uses the resulting routing vector for interpretation /
 * adversarial detection. Retraining per input is what makes CDRP
 * unsuitable for inference-time detection (paper Sec. VI-B). We model the
 * routing vector with its standard distillation-free approximation: the
 * per-channel mean activation of every convolution layer, gated against
 * per-layer thresholds; detection compares an input's gate vector with
 * the profiled class centroid. The coarser channel granularity (versus
 * Ptolemy's neuron-level paths) is what costs CDRP accuracy — matching
 * the paper's Fig. 10, where CDRP trails by up to 0.1-0.16 AUC.
 */

#ifndef PTOLEMY_BASELINES_CDRP_HH
#define PTOLEMY_BASELINES_CDRP_HH

#include <vector>

#include "baselines/baseline.hh"
#include "classify/random_forest.hh"

namespace ptolemy::baselines
{

class CdrpBaseline : public BaselineDetector
{
  public:
    CdrpBaseline(nn::Network &net, std::size_t num_classes);

    std::string name() const override { return "CDRP"; }
    void profile(nn::Network &net, const nn::Dataset &train) override;
    void fit(nn::Network &net,
             const std::vector<core::DetectionPair> &pairs) override;
    double score(nn::Network &net, const nn::Tensor &x) override;
    bool inferenceTimeCapable() const override { return false; }

  private:
    /** Per-channel mean-activation vector across conv layers. */
    std::vector<double> channelMeans(nn::Network &net, const nn::Tensor &x,
                                     std::size_t *pred = nullptr);

    /** Binary routing gates: channel on when its mean activation exceeds
     *  the profiled per-layer threshold (CDRP's gate vector). */
    std::vector<std::uint8_t> gates(nn::Network &net, const nn::Tensor &x,
                                    std::size_t *pred = nullptr);

    /** Features vs the predicted class's gate centroid. */
    std::vector<double> features(nn::Network &net, const nn::Tensor &x);

    std::vector<int> convNodes;
    std::vector<std::size_t> layerOfGate; ///< conv-layer index per gate dim
    std::size_t gateDims = 0;
    std::vector<double> layerThreshold;   ///< profiled per conv layer
    std::vector<std::vector<double>> classGateFreq; ///< per class
    std::vector<std::size_t> classCount;
    classify::RandomForest rf;
};

} // namespace ptolemy::baselines

#endif // PTOLEMY_BASELINES_CDRP_HH
