#include "deepfense.hh"

#include <cmath>

#include "util/rng.hh"

namespace ptolemy::baselines
{

DeepFenseBaseline::DeepFenseBaseline(nn::Network &net, int num_defenders,
                                     int latent_dims, std::uint64_t seed)
    : latentDims(latent_dims)
{
    Rng rng(seed);
    const auto &weighted = net.weightedNodes();
    defenders.resize(num_defenders);
    for (int d = 0; d < num_defenders; ++d) {
        // Tap deep layers first — latent distributions late in the
        // network separate adversarial inputs best — then spread toward
        // the input, cycling with fresh projections when there are more
        // defenders than layers.
        const int n_w = static_cast<int>(weighted.size());
        const int w = n_w - 1 - (d % n_w);
        Defender &def = defenders[d];
        def.tapNode = weighted[w];
        def.inDims = net.nodeOutputShape(def.tapNode).numel();
        def.proj.resize(static_cast<std::size_t>(latentDims) * def.inDims);
        const double scale = 1.0 / std::sqrt(static_cast<double>(
            def.inDims));
        for (float &p : def.proj)
            p = static_cast<float>(rng.gaussian(0.0, scale));
        def.mean.assign(latentDims, 0.0);
        def.var.assign(latentDims, 0.0);
    }
}

std::string
DeepFenseBaseline::name() const
{
    const int n = numDefenders();
    if (n <= 1)
        return "DFL";
    if (n <= 8)
        return "DFM";
    return "DFH";
}

std::vector<double>
DeepFenseBaseline::defenderLatent(const Defender &d,
                                  const nn::Tensor &act) const
{
    std::vector<double> z(latentDims, 0.0);
    for (int k = 0; k < latentDims; ++k) {
        const float *row = &d.proj[static_cast<std::size_t>(k) * d.inDims];
        double acc = 0.0;
        for (std::size_t i = 0; i < d.inDims; ++i)
            acc += static_cast<double>(row[i]) * act[i];
        z[k] = acc;
    }
    return z;
}

double
DeepFenseBaseline::defenderMaha(const Defender &d,
                                const nn::Tensor &act) const
{
    const auto z = defenderLatent(d, act);
    double maha = 0.0;
    for (int k = 0; k < latentDims; ++k) {
        const double dz = z[k] - d.mean[k];
        maha += dz * dz / d.var[k];
    }
    return maha / latentDims;
}

void
DeepFenseBaseline::profile(nn::Network &net, const nn::Dataset &train)
{
    // Diagonal Gaussian fit in one sweep (sum / sum-of-squares).
    std::vector<std::vector<double>> sum(defenders.size()),
        sumsq(defenders.size());
    for (std::size_t d = 0; d < defenders.size(); ++d) {
        sum[d].assign(latentDims, 0.0);
        sumsq[d].assign(latentDims, 0.0);
    }
    std::size_t n = 0;
    for (const auto &s : train) {
        if (n >= 1000)
            break;
        auto rec = net.forward(s.input);
        for (std::size_t d = 0; d < defenders.size(); ++d) {
            const auto z = defenderLatent(defenders[d],
                                          rec.outputs[defenders[d].tapNode]);
            for (int k = 0; k < latentDims; ++k) {
                sum[d][k] += z[k];
                sumsq[d][k] += z[k] * z[k];
            }
        }
        ++n;
    }
    for (std::size_t d = 0; d < defenders.size(); ++d) {
        defenders[d].fitted = n;
        for (int k = 0; k < latentDims; ++k) {
            const double m = sum[d][k] / std::max<std::size_t>(1, n);
            defenders[d].mean[k] = m;
            defenders[d].var[k] = std::max(
                1e-6, sumsq[d][k] / std::max<std::size_t>(1, n) - m * m);
        }
    }

    // Calibrate the benign Mahalanobis distribution so the anomaly score
    // flags both over- and under-dispersed latents (boundary-grazing
    // adversaries can look *more* typical than clean inputs).
    std::vector<double> maha_sum(defenders.size(), 0.0),
        maha_sumsq(defenders.size(), 0.0);
    std::size_t m = 0;
    for (const auto &s : train) {
        if (m >= 300)
            break;
        auto rec = net.forward(s.input);
        for (std::size_t d = 0; d < defenders.size(); ++d) {
            const double v =
                defenderMaha(defenders[d], rec.outputs[defenders[d].tapNode]);
            maha_sum[d] += v;
            maha_sumsq[d] += v * v;
        }
        ++m;
    }
    for (std::size_t d = 0; d < defenders.size(); ++d) {
        const double mn = maha_sum[d] / std::max<std::size_t>(1, m);
        defenders[d].mahaMean = mn;
        defenders[d].mahaStd = std::sqrt(std::max(
            1e-9, maha_sumsq[d] / std::max<std::size_t>(1, m) - mn * mn));
    }
}

double
DeepFenseBaseline::score(nn::Network &net, const nn::Tensor &x)
{
    auto rec = net.forward(x);
    double total = 0.0;
    for (const auto &d : defenders) {
        const double maha = defenderMaha(d, rec.outputs[d.tapNode]);
        total += std::abs(maha - d.mahaMean) / d.mahaStd;
    }
    return total / defenders.size();
}

std::size_t
DeepFenseBaseline::extraMacs() const
{
    std::size_t macs = 0;
    for (const auto &d : defenders)
        macs += d.inDims * static_cast<std::size_t>(latentDims);
    return macs;
}

} // namespace ptolemy::baselines
