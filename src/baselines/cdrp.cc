#include "cdrp.hh"

#include <cmath>

namespace ptolemy::baselines
{

CdrpBaseline::CdrpBaseline(nn::Network &net, std::size_t num_classes)
{
    std::size_t layer_idx = 0;
    for (int id : net.weightedNodes()) {
        if (net.layerAt(id).kind() == nn::LayerKind::Conv) {
            convNodes.push_back(id);
            const std::size_t c =
                static_cast<std::size_t>(net.nodeOutputShape(id).c);
            for (std::size_t k = 0; k < c; ++k)
                layerOfGate.push_back(layer_idx);
            gateDims += c;
            ++layer_idx;
        }
    }
    layerThreshold.assign(convNodes.size(), 0.0);
    classGateFreq.assign(num_classes, std::vector<double>(gateDims, 0.0));
    classCount.assign(num_classes, 0);
}

std::vector<double>
CdrpBaseline::channelMeans(nn::Network &net, const nn::Tensor &x,
                           std::size_t *pred)
{
    auto rec = net.forward(x);
    if (pred)
        *pred = rec.predictedClass();
    std::vector<double> v;
    v.reserve(gateDims);
    for (int id : convNodes) {
        const auto &out = rec.outputs[id];
        const int hw = std::max(1, out.shape().h * out.shape().w);
        for (int c = 0; c < out.shape().c; ++c) {
            double m = 0.0;
            for (int i = 0; i < hw; ++i)
                m += std::max(
                    0.0f, out[static_cast<std::size_t>(c) * hw + i]);
            v.push_back(m / hw);
        }
    }
    return v;
}

std::vector<std::uint8_t>
CdrpBaseline::gates(nn::Network &net, const nn::Tensor &x,
                    std::size_t *pred)
{
    const auto means = channelMeans(net, x, pred);
    std::vector<std::uint8_t> g(gateDims);
    for (std::size_t i = 0; i < gateDims; ++i)
        g[i] = means[i] > layerThreshold[layerOfGate[i]] ? 1 : 0;
    return g;
}

void
CdrpBaseline::profile(nn::Network &net, const nn::Dataset &train)
{
    // Pass 1: per-layer gate thresholds = mean channel activation across
    // a profiling slice (the gate's operating point).
    std::vector<double> sum(convNodes.size(), 0.0);
    std::vector<std::size_t> cnt(convNodes.size(), 0);
    std::size_t probed = 0;
    for (const auto &s : train) {
        if (probed >= 200)
            break;
        const auto means = channelMeans(net, s.input);
        for (std::size_t i = 0; i < gateDims; ++i) {
            sum[layerOfGate[i]] += means[i];
            ++cnt[layerOfGate[i]];
        }
        ++probed;
    }
    for (std::size_t l = 0; l < convNodes.size(); ++l)
        layerThreshold[l] = cnt[l] ? sum[l] / cnt[l] : 0.0;

    // Pass 2: per-class gate frequencies over correctly-predicted inputs.
    for (const auto &s : train) {
        if (classCount[s.label] >= 100)
            continue;
        std::size_t pred;
        const auto g = gates(net, s.input, &pred);
        if (pred != s.label)
            continue;
        auto &freq = classGateFreq[s.label];
        for (std::size_t i = 0; i < gateDims; ++i)
            freq[i] += g[i];
        ++classCount[s.label];
    }
    for (std::size_t c = 0; c < classGateFreq.size(); ++c)
        if (classCount[c] > 0)
            for (double &f : classGateFreq[c])
                f /= classCount[c];
}

std::vector<double>
CdrpBaseline::features(nn::Network &net, const nn::Tensor &x)
{
    std::size_t pred;
    const auto g = gates(net, x, &pred);
    const auto &freq = classGateFreq[pred];

    // Fraction of this input's on-gates that the class routinely uses,
    // and the IoU against the class's majority gate vector.
    std::size_t on = 0, inter = 0, uni = 0;
    double covered = 0.0;
    for (std::size_t i = 0; i < gateDims; ++i) {
        const bool class_on = freq[i] >= 0.5;
        if (g[i]) {
            ++on;
            covered += freq[i];
        }
        inter += g[i] && class_on;
        uni += g[i] || class_on;
    }
    const double coverage = on ? covered / on : 1.0;
    const double iou = uni ? static_cast<double>(inter) / uni : 1.0;
    return {coverage, iou};
}

void
CdrpBaseline::fit(nn::Network &net,
                  const std::vector<core::DetectionPair> &pairs)
{
    classify::FeatureMatrix x;
    std::vector<int> y;
    for (const auto &p : pairs) {
        x.push_back(features(net, p.clean));
        y.push_back(0);
        x.push_back(features(net, p.adversarial));
        y.push_back(1);
    }
    rf.fit(x, y);
}

double
CdrpBaseline::score(nn::Network &net, const nn::Tensor &x)
{
    return rf.predictProb(features(net, x));
}

} // namespace ptolemy::baselines
