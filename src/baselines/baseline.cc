#include "baseline.hh"

#include <numeric>

#include "util/rng.hh"
#include "util/stats.hh"

namespace ptolemy::baselines
{

double
evaluateBaselineAuc(BaselineDetector &det, nn::Network &net,
                    const std::vector<core::DetectionPair> &pairs,
                    double train_fraction, std::uint64_t seed)
{
    if (pairs.size() < 4)
        return 0.5;
    Rng rng(seed);
    std::vector<std::size_t> order(pairs.size());
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);
    const std::size_t n_train = std::max<std::size_t>(
        2, static_cast<std::size_t>(train_fraction * pairs.size()));

    std::vector<core::DetectionPair> train_pairs;
    for (std::size_t i = 0; i < n_train; ++i)
        train_pairs.push_back(pairs[order[i]]);
    det.fit(net, train_pairs);

    std::vector<double> scores;
    std::vector<int> labels;
    for (std::size_t i = n_train; i < pairs.size(); ++i) {
        const auto &p = pairs[order[i]];
        scores.push_back(det.score(net, p.clean));
        labels.push_back(0);
        scores.push_back(det.score(net, p.adversarial));
        labels.push_back(1);
    }
    return aucScore(scores, labels);
}

} // namespace ptolemy::baselines
