/**
 * @file
 * EP baseline — "Adversarial defense through network profiling based path
 * extraction" (Qiu et al., CVPR 2019, the paper's reference [55]).
 *
 * EP extracts per-class effective paths with a cumulative threshold over
 * the whole network and classifies on the overall path similarity. It is
 * the algorithmic ancestor of Ptolemy's BwCu: same backward cumulative
 * extraction, but (a) always the full network, (b) only the aggregate
 * similarity feature (no per-layer features), and (c) no
 * compiler/hardware cost optimizations — a pure software pass the paper
 * reports at 15.4x/50.7x inference latency (Sec. III-B).
 */

#ifndef PTOLEMY_BASELINES_EP_HH
#define PTOLEMY_BASELINES_EP_HH

#include <memory>

#include "baselines/baseline.hh"
#include "classify/random_forest.hh"
#include "path/class_path.hh"
#include "path/extractor.hh"

namespace ptolemy::baselines
{

class EpBaseline : public BaselineDetector
{
  public:
    /** @param theta cumulative coverage threshold (EP's default 0.5). */
    EpBaseline(nn::Network &net, std::size_t num_classes,
               double theta = 0.5);

    std::string name() const override { return "EP"; }
    void profile(nn::Network &net, const nn::Dataset &train) override;
    void fit(nn::Network &net,
             const std::vector<core::DetectionPair> &pairs) override;
    double score(nn::Network &net, const nn::Tensor &x) override;

    /** The extraction config (for cost modeling in the benches). */
    const path::ExtractionConfig &config() const
    {
        return extractor->config();
    }

  private:
    double overallSimilarity(nn::Network &net, const nn::Tensor &x);

    std::unique_ptr<path::PathExtractor> extractor;
    path::ClassPathStore store;
    classify::RandomForest rf;
    int maxPerClass = 100;
};

} // namespace ptolemy::baselines

#endif // PTOLEMY_BASELINES_EP_HH
