#include "ep.hh"

namespace ptolemy::baselines
{

EpBaseline::EpBaseline(nn::Network &net, std::size_t num_classes,
                       double theta)
{
    auto cfg = path::ExtractionConfig::bwCu(
        static_cast<int>(net.weightedNodes().size()), theta);
    extractor = std::make_unique<path::PathExtractor>(net, std::move(cfg));
    store = path::ClassPathStore(num_classes,
                                 extractor->layout().totalBits());
}

void
EpBaseline::profile(nn::Network &net, const nn::Dataset &train)
{
    for (const auto &s : train) {
        if (store.samplesSeen(s.label) >=
            static_cast<std::size_t>(maxPerClass))
            continue;
        auto rec = net.forward(s.input);
        if (rec.predictedClass() != s.label)
            continue;
        store.aggregate(s.label, extractor->extract(rec));
    }
}

double
EpBaseline::overallSimilarity(nn::Network &net, const nn::Tensor &x)
{
    auto rec = net.forward(x);
    const BitVector p = extractor->extract(rec);
    const auto &pc = store.classPath(rec.predictedClass());
    const std::size_t ones = p.popcount();
    return ones == 0 ? 1.0
                     : static_cast<double>(p.andPopcount(pc)) / ones;
}

void
EpBaseline::fit(nn::Network &net,
                const std::vector<core::DetectionPair> &pairs)
{
    classify::FeatureMatrix x;
    std::vector<int> y;
    for (const auto &p : pairs) {
        x.push_back({overallSimilarity(net, p.clean)});
        y.push_back(0);
        x.push_back({overallSimilarity(net, p.adversarial)});
        y.push_back(1);
    }
    rf.fit(x, y);
}

double
EpBaseline::score(nn::Network &net, const nn::Tensor &x)
{
    return rf.predictProb({overallSimilarity(net, x)});
}

} // namespace ptolemy::baselines
