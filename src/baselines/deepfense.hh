/**
 * @file
 * DeepFense baseline — "Online accelerated defense against adversarial
 * deep learning" (Rouhani et al., ICCAD 2018, the paper's reference [57]).
 *
 * DeepFense is the modular-redundancy school of defense: N latent
 * defender modules each model the distribution of benign data in some
 * latent space of the victim network and flag inputs that fall outside
 * it. The paper compares against the three default variants — DFL (1
 * defender), DFM (8) and DFH (16). Each of our defenders projects one
 * intermediate feature map through a fixed random matrix and scores the
 * Mahalanobis distance under a diagonal Gaussian fitted to benign
 * training data; the ensemble score is the mean defender score. Cost
 * scales with the number of redundant modules, which is exactly the
 * trade-off Fig. 12 illustrates.
 */

#ifndef PTOLEMY_BASELINES_DEEPFENSE_HH
#define PTOLEMY_BASELINES_DEEPFENSE_HH

#include <cstdint>
#include <vector>

#include "baselines/baseline.hh"

namespace ptolemy::baselines
{

class DeepFenseBaseline : public BaselineDetector
{
  public:
    /**
     * @param net victim network (layer taps are chosen from it).
     * @param num_defenders 1 (DFL), 8 (DFM) or 16 (DFH).
     * @param latent_dims random-projection width per defender.
     */
    DeepFenseBaseline(nn::Network &net, int num_defenders,
                      int latent_dims = 24, std::uint64_t seed = 0xDF);

    std::string name() const override;
    void profile(nn::Network &net, const nn::Dataset &train) override;
    void fit(nn::Network &net,
             const std::vector<core::DetectionPair> &pairs) override
    {
        (void)net;
        (void)pairs; // unsupervised: defenders are fitted in profile()
    }
    double score(nn::Network &net, const nn::Tensor &x) override;

    int numDefenders() const { return static_cast<int>(defenders.size()); }

    /** MACs added per inference by the redundant modules (cost model for
     *  Fig. 12b). */
    std::size_t extraMacs() const;

  private:
    struct Defender
    {
        int tapNode;                 ///< graph node whose output it taps
        std::size_t inDims;
        std::vector<float> proj;     ///< latentDims x inDims random matrix
        std::vector<double> mean, var;
        double mahaMean = 0.0;       ///< benign Mahalanobis calibration
        double mahaStd = 1.0;
        std::size_t fitted = 0;
    };

    std::vector<double> defenderLatent(const Defender &d,
                                       const nn::Tensor &act) const;

    double defenderMaha(const Defender &d, const nn::Tensor &act) const;

    int latentDims;
    std::vector<Defender> defenders;
};

} // namespace ptolemy::baselines

#endif // PTOLEMY_BASELINES_DEEPFENSE_HH
