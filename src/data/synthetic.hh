/**
 * @file
 * Procedural synthetic image datasets.
 *
 * Stand-in for the paper's ImageNet / CIFAR-10 / CIFAR-100 (see DESIGN.md
 * substitution table): 3×S×S images in [0,1] whose classes are texture
 * families (stripes, checkers, blobs, rings, gradients, crosses, dots)
 * modulated per class by color and spatial frequency. Each sample draws
 * random phase, frequency jitter, brightness and additive Gaussian noise,
 * so classes are learnable but not trivially separable — exactly what the
 * class-path analysis needs: a trained model whose per-class activation
 * paths are distinctive (paper Fig. 5).
 *
 * The 10-class configuration plays the role of CIFAR-10; 100 classes
 * (10 families × 10 color/frequency variants) plays CIFAR-100/ImageNet's
 * "many finer classes" role.
 */

#ifndef PTOLEMY_DATA_SYNTHETIC_HH
#define PTOLEMY_DATA_SYNTHETIC_HH

#include <cstdint>

#include "nn/trainer.hh"

namespace ptolemy
{
class Rng;
}

namespace ptolemy::data
{

/** Dataset generation parameters. */
struct DatasetSpec
{
    int numClasses = 10;    ///< 10 or 100 (families × variants)
    int imageSize = 16;     ///< square image side
    int trainPerClass = 120;
    int testPerClass = 30;
    double noiseSigma = 0.06;
    std::uint64_t seed = 1234;
};

/** Train/test split produced by the generator. */
struct SplitDataset
{
    nn::Dataset train;
    nn::Dataset test;
    int numClasses = 0;
    int imageSize = 0;
};

/** Generate one sample of @p label (deterministic given the RNG state). */
nn::Sample makeSample(int label, int num_classes, int image_size,
                      double noise_sigma, Rng &rng);

/** Generate a full train/test split. */
SplitDataset makeSyntheticDataset(const DatasetSpec &spec);

} // namespace ptolemy::data

#endif // PTOLEMY_DATA_SYNTHETIC_HH
