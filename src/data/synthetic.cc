#include "synthetic.hh"

#include <algorithm>
#include <cmath>

#include "util/rng.hh"

namespace ptolemy::data
{

namespace
{

/** Base texture value in [0,1] for family @p fam at pixel (y,x). */
double
textureValue(int fam, double y, double x, double freq, double phase,
             double size)
{
    const double cy = size / 2.0, cx = size / 2.0;
    switch (fam) {
      case 0: // horizontal stripes
        return 0.5 + 0.5 * std::sin(freq * y + phase);
      case 1: // vertical stripes
        return 0.5 + 0.5 * std::sin(freq * x + phase);
      case 2: // diagonal stripes
        return 0.5 + 0.5 * std::sin(freq * (x + y) * 0.7071 + phase);
      case 3: // checkerboard
        return 0.5 + 0.5 * std::sin(freq * x + phase) *
                          std::sin(freq * y + phase);
      case 4: { // centered blob; width shrinks with frequency
        const double sigma = size / (4.0 + freq * size / M_PI);
        const double r2 = (y - cy) * (y - cy) + (x - cx) * (x - cx);
        return std::exp(-r2 / (2.0 * sigma * sigma));
      }
      case 5: { // ring; radius wobbles with the phase draw
        const double r = std::sqrt((y - cy) * (y - cy) +
                                   (x - cx) * (x - cx));
        const double ring_r = size / 4.0 + std::sin(phase);
        return std::exp(-(r - ring_r) * (r - ring_r) / 3.0);
      }
      case 6: // x gradient
        return x / size;
      case 7: // y gradient
        return y / size;
      case 8: { // cross
        const double dx = std::abs(x - cx), dy = std::abs(y - cy);
        return (dx < size / 8.0 || dy < size / 8.0) ? 0.9 : 0.1;
      }
      default: { // concentric squares
        const double d = std::max(std::abs(x - cx), std::abs(y - cy));
        return 0.5 + 0.5 * std::sin(freq * d + phase);
      }
    }
}

/** Per-variant RGB tint; variant 0..9 walks around a simple color wheel. */
void
variantColor(int variant, double &r, double &g, double &b)
{
    const double hue = variant / 10.0 * 2.0 * M_PI;
    r = 0.55 + 0.45 * std::cos(hue);
    g = 0.55 + 0.45 * std::cos(hue - 2.0 * M_PI / 3.0);
    b = 0.55 + 0.45 * std::cos(hue + 2.0 * M_PI / 3.0);
}

} // namespace

nn::Sample
makeSample(int label, int num_classes, int image_size, double noise_sigma,
           Rng &rng)
{
    // With >10 classes, the label decomposes into (family, variant):
    // the family picks the texture, the variant picks color and frequency.
    const int per_family = std::max(1, num_classes / 10);
    const int fam = num_classes > 10 ? label / per_family : label;
    const int variant = num_classes > 10 ? label % per_family : fam;

    double cr, cg, cb;
    variantColor(variant, cr, cg, cb);

    // Per-sample randomness: frequency jitter, phase, brightness.
    const double base_freq = 2.0 * M_PI / image_size *
                             (2.0 + (num_classes > 10 ? variant % 3 : 0));
    const double freq = base_freq * (1.0 + 0.15 * (rng.uniform() - 0.5));
    const double phase = rng.uniform(0.0, 2.0 * M_PI);
    const double brightness = rng.uniform(0.85, 1.15);

    nn::Sample s;
    s.label = static_cast<std::size_t>(label);
    s.input = nn::Tensor(nn::mapShape(3, image_size, image_size));
    for (int y = 0; y < image_size; ++y) {
        for (int x = 0; x < image_size; ++x) {
            const double t =
                textureValue(fam % 10, y, x, freq, phase, image_size);
            const double chan[3] = {t * cr, t * cg, t * cb};
            for (int c = 0; c < 3; ++c) {
                double v = chan[c] * brightness +
                           rng.gaussian(0.0, noise_sigma);
                s.input.at(c, y, x) =
                    static_cast<float>(std::clamp(v, 0.0, 1.0));
            }
        }
    }
    return s;
}

SplitDataset
makeSyntheticDataset(const DatasetSpec &spec)
{
    Rng rng(spec.seed);
    SplitDataset out;
    out.numClasses = spec.numClasses;
    out.imageSize = spec.imageSize;
    out.train.reserve(static_cast<std::size_t>(spec.numClasses) *
                      spec.trainPerClass);
    out.test.reserve(static_cast<std::size_t>(spec.numClasses) *
                     spec.testPerClass);
    for (int cls = 0; cls < spec.numClasses; ++cls) {
        for (int i = 0; i < spec.trainPerClass; ++i)
            out.train.push_back(makeSample(cls, spec.numClasses,
                                           spec.imageSize, spec.noiseSigma,
                                           rng));
        for (int i = 0; i < spec.testPerClass; ++i)
            out.test.push_back(makeSample(cls, spec.numClasses,
                                          spec.imageSize, spec.noiseSigma,
                                          rng));
    }
    return out;
}

} // namespace ptolemy::data
