#include "random_forest.hh"

#include "util/rng.hh"

namespace ptolemy::classify
{

void
RandomForest::fit(const FeatureMatrix &x, const std::vector<int> &y)
{
    trees.assign(config.numTrees, DecisionTree());
    Rng rng(config.seed);
    const std::size_t n = x.size();
    std::vector<std::size_t> bootstrap(n);
    for (auto &tree : trees) {
        for (std::size_t i = 0; i < n; ++i)
            bootstrap[i] = rng.below(n);
        tree.fit(x, y, bootstrap, config.growth, rng);
    }
}

double
RandomForest::predictProb(const std::vector<double> &features) const
{
    if (trees.empty())
        return 0.5;
    double acc = 0.0;
    for (const auto &tree : trees)
        acc += tree.predict(features);
    return acc / trees.size();
}

double
RandomForest::avgDepth() const
{
    if (trees.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto &tree : trees)
        acc += tree.depth();
    return acc / trees.size();
}

std::size_t
RandomForest::decisionOps(const std::vector<double> &features) const
{
    std::size_t ops = 0;
    for (const auto &tree : trees)
        ops += tree.decisionOps(features);
    return ops;
}

} // namespace ptolemy::classify
