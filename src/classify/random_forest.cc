#include "random_forest.hh"

#include "util/rng.hh"
#include "util/serialize.hh"

namespace ptolemy::classify
{

void
RandomForest::fit(const FeatureMatrix &x, const std::vector<int> &y)
{
    trees.assign(config.numTrees, DecisionTree());
    Rng rng(config.seed);
    const std::size_t n = x.size();
    std::vector<std::size_t> bootstrap(n);
    for (auto &tree : trees) {
        for (std::size_t i = 0; i < n; ++i)
            bootstrap[i] = rng.below(n);
        tree.fit(x, y, bootstrap, config.growth, rng);
    }
}

double
RandomForest::predictProb(const std::vector<double> &features) const
{
    if (trees.empty())
        return 0.5;
    double acc = 0.0;
    for (const auto &tree : trees)
        acc += tree.predict(features);
    return acc / trees.size();
}

double
RandomForest::avgDepth() const
{
    if (trees.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto &tree : trees)
        acc += tree.depth();
    return acc / trees.size();
}

std::size_t
RandomForest::decisionOps(const std::vector<double> &features) const
{
    std::size_t ops = 0;
    for (const auto &tree : trees)
        ops += tree.decisionOps(features);
    return ops;
}

void
RandomForest::serialize(std::ostream &os) const
{
    writeU64(os, trees.size());
    for (const auto &tree : trees)
        tree.serialize(os);
}

bool
RandomForest::deserialize(std::istream &is, std::size_t num_features)
{
    std::uint64_t n;
    if (!readU64(is, n))
        return false;
    // Bounded before allocation: corrupt counts return false rather
    // than throwing bad_alloc (the paper's forest has 100 trees).
    if (n > (1u << 20))
        return false;
    trees.assign(n, DecisionTree());
    for (auto &tree : trees)
        if (!tree.deserialize(is, num_features))
            return false;
    return true;
}

} // namespace ptolemy::classify
