/**
 * @file
 * CART decision tree for binary classification on small dense feature
 * vectors (the path-similarity features).
 */

#ifndef PTOLEMY_CLASSIFY_DECISION_TREE_HH
#define PTOLEMY_CLASSIFY_DECISION_TREE_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace ptolemy
{
class Rng;
}

namespace ptolemy::classify
{

/** Training matrix: one row per sample. */
using FeatureMatrix = std::vector<std::vector<double>>;

/**
 * Binary CART tree with Gini-impurity splits.
 */
class DecisionTree
{
  public:
    /** Tree growth limits. */
    struct GrowthConfig
    {
        int maxDepth = 12;
        std::size_t minSamplesSplit = 4;
        double featureFraction = 0.7; ///< features considered per split
    };

    /**
     * Fit on (a bootstrap sample of) the data.
     * @param x feature rows; @param y binary labels (1 = adversarial).
     * @param row_indices which rows to train on (bootstrap support).
     */
    void fit(const FeatureMatrix &x, const std::vector<int> &y,
             const std::vector<std::size_t> &row_indices,
             const GrowthConfig &cfg, Rng &rng);

    /** Probability that @p features belongs to class 1. */
    double predict(const std::vector<double> &features) const;

    std::size_t numNodes() const { return nodes.size(); }

    /** Depth of the deepest leaf (paper quotes average depth ~12). */
    int depth() const;

    /** Comparisons performed for one prediction (path length). */
    std::size_t decisionOps(const std::vector<double> &features) const;

    /** Write the fitted tree to a binary stream (node table verbatim,
     *  so a loaded tree predicts bit-identically). */
    void serialize(std::ostream &os) const;

    /**
     * Inverse of serialize(). Rejects malformed input outright:
     * implausible node counts, interior-node feature indices outside
     * [0, @p num_features), and child links that are out of range or
     * not strictly forward (build() emits children after their parent,
     * so forward-only links also guarantee predict() terminates).
     * @return false on malformed input.
     */
    bool deserialize(std::istream &is, std::size_t num_features);

  private:
    struct Node
    {
        int feature = -1; ///< -1 for leaves
        double threshold = 0.0;
        int left = -1, right = -1;
        double prob = 0.0; ///< class-1 probability at leaves
        int nodeDepth = 0;
    };

    int build(const FeatureMatrix &x, const std::vector<int> &y,
              std::vector<std::size_t> &rows, int depth_now,
              const GrowthConfig &cfg, Rng &rng);

    std::vector<Node> nodes;
};

} // namespace ptolemy::classify

#endif // PTOLEMY_CLASSIFY_DECISION_TREE_HH
