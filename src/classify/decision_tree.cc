#include "decision_tree.hh"

#include <algorithm>
#include <cmath>

#include "util/rng.hh"
#include "util/serialize.hh"

namespace ptolemy::classify
{

namespace
{

/** Gini impurity of a (count1, total) split side. */
double
gini(std::size_t ones, std::size_t total)
{
    if (total == 0)
        return 0.0;
    const double p = static_cast<double>(ones) / total;
    return 2.0 * p * (1.0 - p);
}

} // namespace

void
DecisionTree::fit(const FeatureMatrix &x, const std::vector<int> &y,
                  const std::vector<std::size_t> &row_indices,
                  const GrowthConfig &cfg, Rng &rng)
{
    nodes.clear();
    std::vector<std::size_t> rows = row_indices;
    build(x, y, rows, 0, cfg, rng);
}

int
DecisionTree::build(const FeatureMatrix &x, const std::vector<int> &y,
                    std::vector<std::size_t> &rows, int depth_now,
                    const GrowthConfig &cfg, Rng &rng)
{
    const int id = static_cast<int>(nodes.size());
    nodes.emplace_back();
    nodes[id].nodeDepth = depth_now;

    std::size_t ones = 0;
    for (std::size_t r : rows)
        ones += static_cast<std::size_t>(y[r]);
    nodes[id].prob = rows.empty()
        ? 0.5
        : static_cast<double>(ones) / rows.size();

    const bool pure = ones == 0 || ones == rows.size();
    if (pure || depth_now >= cfg.maxDepth ||
        rows.size() < cfg.minSamplesSplit)
        return id;

    // Pick a random feature subset, then scan candidate thresholds.
    const std::size_t n_feat = x[rows[0]].size();
    std::vector<std::size_t> feats(n_feat);
    for (std::size_t f = 0; f < n_feat; ++f)
        feats[f] = f;
    for (std::size_t i = n_feat; i > 1; --i)
        std::swap(feats[i - 1], feats[rng.below(i)]);
    const std::size_t n_try = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg.featureFraction * n_feat));

    double best_gain = 1e-9;
    std::size_t best_feat = 0;
    double best_thr = 0.0;
    const double parent_gini = gini(ones, rows.size());

    std::vector<std::pair<double, int>> vals;
    for (std::size_t fi = 0; fi < n_try; ++fi) {
        const std::size_t f = feats[fi];
        vals.clear();
        for (std::size_t r : rows)
            vals.emplace_back(x[r][f], y[r]);
        std::sort(vals.begin(), vals.end());

        std::size_t left_ones = 0;
        for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
            left_ones += static_cast<std::size_t>(vals[i].second);
            if (vals[i].first == vals[i + 1].first)
                continue;
            const std::size_t n_left = i + 1;
            const std::size_t n_right = vals.size() - n_left;
            const double w_gini =
                (n_left * gini(left_ones, n_left) +
                 n_right * gini(ones - left_ones, n_right)) / vals.size();
            const double gain = parent_gini - w_gini;
            if (gain > best_gain) {
                best_gain = gain;
                best_feat = f;
                best_thr = 0.5 * (vals[i].first + vals[i + 1].first);
            }
        }
    }
    if (best_gain <= 1e-9)
        return id;

    std::vector<std::size_t> left_rows, right_rows;
    for (std::size_t r : rows)
        (x[r][best_feat] <= best_thr ? left_rows : right_rows).push_back(r);
    if (left_rows.empty() || right_rows.empty())
        return id;

    rows.clear();
    rows.shrink_to_fit();
    nodes[id].feature = static_cast<int>(best_feat);
    nodes[id].threshold = best_thr;
    const int left = build(x, y, left_rows, depth_now + 1, cfg, rng);
    nodes[id].left = left;
    const int right = build(x, y, right_rows, depth_now + 1, cfg, rng);
    nodes[id].right = right;
    return id;
}

double
DecisionTree::predict(const std::vector<double> &features) const
{
    int id = 0;
    while (nodes[id].feature >= 0) {
        id = features[nodes[id].feature] <= nodes[id].threshold
            ? nodes[id].left
            : nodes[id].right;
    }
    return nodes[id].prob;
}

int
DecisionTree::depth() const
{
    int d = 0;
    for (const auto &n : nodes)
        d = std::max(d, n.nodeDepth);
    return d;
}

std::size_t
DecisionTree::decisionOps(const std::vector<double> &features) const
{
    std::size_t ops = 0;
    int id = 0;
    while (nodes[id].feature >= 0) {
        ++ops;
        id = features[nodes[id].feature] <= nodes[id].threshold
            ? nodes[id].left
            : nodes[id].right;
    }
    return ops;
}

void
DecisionTree::serialize(std::ostream &os) const
{
    writeU64(os, nodes.size());
    for (const auto &n : nodes) {
        writeU32(os, static_cast<std::uint32_t>(n.feature));
        writeF64(os, n.threshold);
        writeU32(os, static_cast<std::uint32_t>(n.left));
        writeU32(os, static_cast<std::uint32_t>(n.right));
        writeF64(os, n.prob);
        writeU32(os, static_cast<std::uint32_t>(n.nodeDepth));
    }
}

bool
DecisionTree::deserialize(std::istream &is, std::size_t num_features)
{
    std::uint64_t n;
    if (!readU64(is, n))
        return false;
    // Bound the count before allocating: a corrupt length field must
    // return false, not throw bad_alloc (depth-12 CARTs have < 2^13
    // nodes; 2^22 is generous for any future growth config).
    if (n > (1u << 22))
        return false;
    nodes.assign(n, Node{});
    for (std::size_t id = 0; id < n; ++id) {
        auto &node = nodes[id];
        std::uint32_t feature, left, right, depth;
        if (!readU32(is, feature) || !readF64(is, node.threshold) ||
            !readU32(is, left) || !readU32(is, right) ||
            !readF64(is, node.prob) || !readU32(is, depth))
            return false;
        node.feature = static_cast<int>(feature);
        node.left = static_cast<int>(left);
        node.right = static_cast<int>(right);
        node.nodeDepth = static_cast<int>(depth);
        if (node.feature < 0)
            continue; // leaf: child links unused
        // Interior node: the split feature must exist in the feature
        // vector predict() will be handed, and child links must point
        // strictly forward inside the table — build() emits children
        // after their parent, and forward-only links are what makes
        // the predict() walk provably terminate on loaded files.
        if (static_cast<std::size_t>(node.feature) >= num_features)
            return false;
        if (node.left <= static_cast<int>(id) ||
            node.right <= static_cast<int>(id) ||
            node.left >= static_cast<int>(n) ||
            node.right >= static_cast<int>(n))
            return false;
    }
    return true;
}

} // namespace ptolemy::classify
