/**
 * @file
 * Random-forest adversarial classifier (paper Sec. III-B / V-D).
 *
 * The paper's final classification stage: path-similarity features go into
 * a random forest of 100 trees with average depth ~12, cheap enough
 * (≈2,000 operations) to execute on the controller MCU in microseconds.
 */

#ifndef PTOLEMY_CLASSIFY_RANDOM_FOREST_HH
#define PTOLEMY_CLASSIFY_RANDOM_FOREST_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "classify/decision_tree.hh"

namespace ptolemy::classify
{

/** Forest hyper-parameters; defaults match the paper's description. */
struct ForestConfig
{
    int numTrees = 100;
    DecisionTree::GrowthConfig growth;
    std::uint64_t seed = 0xF02E57;
};

/**
 * Bagged ensemble of CART trees.
 */
class RandomForest
{
  public:
    explicit RandomForest(ForestConfig cfg = {}) : config(cfg) {}

    /**
     * Fit on feature rows @p x with binary labels @p y
     * (1 = adversarial). Each tree sees a bootstrap resample.
     */
    void fit(const FeatureMatrix &x, const std::vector<int> &y);

    /** Mean class-1 probability across trees. */
    double predictProb(const std::vector<double> &features) const;

    /** Hard decision at the 0.5 operating point. */
    bool predictAdversarial(const std::vector<double> &features) const
    {
        return predictProb(features) >= 0.5;
    }

    int numTrees() const { return static_cast<int>(trees.size()); }

    /** Mean tree depth (paper quotes ~12). */
    double avgDepth() const;

    /** Total comparisons for one prediction, for the MCU cost model. */
    std::size_t decisionOps(const std::vector<double> &features) const;

    /** Write the fitted ensemble to a binary stream; a deserialized
     *  forest scores bit-identically (used by DetectorModel::save). */
    void serialize(std::ostream &os) const;

    /** Inverse of serialize(). @p num_features is the arity of the
     *  feature vectors the loaded forest will score; trees referencing
     *  features outside it are rejected (see DecisionTree).
     *  @return false on malformed input. */
    bool deserialize(std::istream &is, std::size_t num_features);

  private:
    ForestConfig config;
    std::vector<DecisionTree> trees;
};

} // namespace ptolemy::classify

#endif // PTOLEMY_CLASSIFY_RANDOM_FOREST_HH
