/**
 * @file
 * Operation-count trace of one path extraction.
 *
 * The functional extractor records how much work each layer's extraction
 * performed (partial sums generated, elements sorted, threshold compares,
 * masks written). The Ptolemy compiler uses these counts as loop trip
 * counts and the cycle-level hardware model turns them into latency and
 * energy — mirroring how the paper derives cost from the algorithm's
 * dynamic behaviour (Sec. III-B cost analysis, Sec. VII-C).
 */

#ifndef PTOLEMY_PATH_TRACE_HH
#define PTOLEMY_PATH_TRACE_HH

#include <cstddef>
#include <vector>

#include "path/extraction_config.hh"

namespace ptolemy::nn
{
class Network;
}

namespace ptolemy::path
{

/** Ranked-prefix selection runs this many successive argmax scans per
 *  neuron before falling back to a heap (see PathExtractor); the
 *  compiler reads the same constant to bound its static trip counts. */
inline constexpr int kMaxSelectScanPasses = 32;

/** Per-weighted-layer extraction work counts. */
struct LayerTrace
{
    int weightedIndex = 0;
    int nodeId = 0;
    ThresholdKind kind = ThresholdKind::Cumulative;
    std::size_t inputFmapSize = 0;
    std::size_t outputFmapSize = 0;
    std::size_t rfSize = 0;          ///< nominal receptive-field size
    std::size_t macs = 0;            ///< inference MACs of this layer
    std::size_t importantOut = 0;    ///< important outputs driving extraction
    std::size_t psumsConsidered = 0; ///< partial sums generated/examined
    std::size_t sortedElems = 0;     ///< elements through the sort unit
    std::size_t thresholdCmps = 0;   ///< absolute-threshold comparisons
    std::size_t masksWritten = 0;    ///< single-bit masks stored
    std::size_t importantIn = 0;     ///< path bits set at this layer

    // Ranked-prefix selection shape (cumulative layers): how the theta
    // prefix was actually found. Each scan pass is one full argmax sweep
    // of the remaining candidates; neurons whose prefix outgrows
    // kMaxSelectScanPasses fall back to a heap and pay heapPops pops.
    std::size_t selectScanPasses = 0;   ///< argmax sweeps across neurons
    std::size_t heapFallbackNeurons = 0; ///< neurons that hit the fallback
    std::size_t heapPops = 0;           ///< fallback heap pops
};

/** Whole-network extraction trace for one input. */
struct ExtractionTrace
{
    Direction direction = Direction::Backward;
    std::vector<LayerTrace> layers;
    std::size_t pathBits = 0;   ///< total popcount of the activation path
    std::size_t totalMacs = 0;  ///< inference MACs of the full network

    /** Sum of a LayerTrace member across layers. */
    template <typename F>
    std::size_t
    sum(F &&get) const
    {
        std::size_t total = 0;
        for (const auto &lt : layers)
            total += get(lt);
        return total;
    }
};

/**
 * Element-wise average of several traces (all from the same network and
 * config). The compiler consumes an averaged trace as the profiled
 * workload when generating a program.
 */
ExtractionTrace averageTraces(const std::vector<ExtractionTrace> &traces);

/** Inference MACs of weighted graph node @p node_id. */
std::size_t weightedLayerMacs(const nn::Network &net, int node_id);

/** Inference MACs of the whole network (weighted layers only). */
std::size_t networkMacs(const nn::Network &net);

} // namespace ptolemy::path

#endif // PTOLEMY_PATH_TRACE_HH
