/**
 * @file
 * Activation-path extraction (paper Sec. III-A/III-C, Fig. 3).
 *
 * Backward extraction starts from the predicted class neuron in the last
 * layer and walks the data graph toward the input: for every important
 * output neuron of a weighted layer, the partial sums in its receptive
 * field are ranked (cumulative θ) or compared against a constant
 * (absolute φ) to pick the important input neurons; those propagate
 * through non-weighted layers (ReLU, pools, residual adds, concats) via
 * each layer's index back-mapping.
 *
 * Forward extraction thresholds each extracted layer's input feature map
 * as soon as it is produced, which the compiler can overlap with the next
 * layer's inference (paper Sec. IV-B).
 */

#ifndef PTOLEMY_PATH_EXTRACTOR_HH
#define PTOLEMY_PATH_EXTRACTOR_HH

#include <vector>

#include "nn/network.hh"
#include "path/extraction_config.hh"
#include "path/path_layout.hh"
#include "path/trace.hh"
#include "util/bitvector.hh"

namespace ptolemy
{
class ThreadPool;
}

namespace ptolemy::path
{

/**
 * Reusable scratch for PathExtractor. One workspace per extraction
 * loop makes the steady state allocation-free: the per-node importance
 * lists, dedup flags, partial-sum scratch and selection buffers are all
 * grown once and reused, and the dedup flags are cleared sparsely (only
 * the bits set by the previous call) instead of reallocated.
 */
struct ExtractionWorkspace
{
    /** Selection strategy for cumulative-threshold layers. When true,
     *  fully sort every partial-sum list (the pre-workspace reference
     *  behavior); when false (default), pop a max-heap only until theta
     *  coverage is reached, which is O(n + k log n) for a k-element
     *  prefix instead of O(n log n). Both orders rank by value with
     *  input-index tie-breaks, so the selected sets are identical. */
    bool referenceSort = false;

    std::vector<std::vector<std::size_t>> important; ///< per node
    std::vector<std::vector<std::uint8_t>> seen;     ///< per-node flags
    std::vector<int> touched;              ///< nodes dirtied last call
    std::vector<nn::PartialSum> scratch;   ///< partial sums of one neuron
    std::vector<std::size_t> selected;     ///< selected input indices
    std::vector<std::size_t> order;        ///< forward-cumulative ranking
    std::vector<std::vector<std::size_t>> perInput; ///< backmap results
    std::vector<const nn::Tensor *> insScratch;     ///< backmap input views
};

/**
 * Scratch for extractBatch: one ExtractionWorkspace per pool slot so
 * concurrent extractions never share mutable state. Reuse one instance
 * across batches for an allocation-free steady state.
 */
struct BatchExtractionWorkspace
{
    std::vector<ExtractionWorkspace> perThread;
};

/**
 * Extracts activation paths from recorded forward passes.
 */
class PathExtractor
{
  public:
    /**
     * @param net network the records come from (borrowed; must outlive
     *            the extractor).
     * @param cfg extraction configuration; must describe exactly the
     *            network's weighted layers.
     */
    PathExtractor(const nn::Network &net, ExtractionConfig cfg);

    const PathLayout &layout() const { return lay; }
    const ExtractionConfig &config() const { return cfg; }
    const nn::Network &network() const { return *net; }

    /**
     * Extract the activation path for one recorded inference.
     * Convenience form that allocates a fresh workspace per call; loops
     * should prefer the workspace overloads below.
     * @param rec recorded forward pass.
     * @param trace optional op-count trace for the compiler/hardware model.
     */
    BitVector extract(const nn::Network::Record &rec,
                      ExtractionTrace *trace = nullptr) const;

    /** Extract reusing @p ws across calls (no steady-state allocation
     *  besides the returned BitVector). */
    BitVector extract(const nn::Network::Record &rec,
                      ExtractionWorkspace &ws,
                      ExtractionTrace *trace = nullptr) const;

    /**
     * Fully allocation-free steady state: reuse both the workspace and
     * the output BitVector (@p bits is reset and resized on first use).
     */
    void extractInto(const nn::Network::Record &rec, ExtractionWorkspace &ws,
                     BitVector &bits, ExtractionTrace *trace = nullptr) const;

    /**
     * Extract a batch of recorded inferences, optionally fanned out on
     * @p pool (each pool slot works out of its own workspace in
     * @p bws). Output ordering is deterministic — out[i] is always the
     * path of recs[i], bit-identical to a sequential extract() —
     * regardless of pool size or scheduling.
     */
    void extractBatch(const std::vector<nn::Network::Record> &recs,
                      std::vector<BitVector> &out,
                      BatchExtractionWorkspace &bws,
                      ThreadPool *pool = nullptr) const;

    /** Allocating convenience overload of extractBatch. */
    std::vector<BitVector>
    extractBatch(const std::vector<nn::Network::Record> &recs,
                 ThreadPool *pool = nullptr) const;

    /**
     * Batched profiling entry point: extract every record with the same
     * deterministic fan-out as extractBatch while tracing each sample,
     * and return the element-wise averaged trace (the workload the
     * compiler consumes). out[i] is always the path of recs[i] and the
     * averaged trace is bit-identical to tracing the records one at a
     * time in order, at any pool size.
     */
    ExtractionTrace
    profileBatch(const std::vector<nn::Network::Record> &recs,
                 std::vector<BitVector> &out, BatchExtractionWorkspace &bws,
                 ThreadPool *pool = nullptr) const;

    /** Allocating convenience overload of profileBatch (paths dropped). */
    ExtractionTrace
    profileBatch(const std::vector<nn::Network::Record> &recs,
                 ThreadPool *pool = nullptr) const;

  private:
    void extractBackward(const nn::Network::Record &rec,
                         ExtractionWorkspace &ws, BitVector &bits,
                         ExtractionTrace *trace) const;
    void extractForward(const nn::Network::Record &rec,
                        ExtractionWorkspace &ws, BitVector &bits,
                        ExtractionTrace *trace) const;

    /** Pick important inputs of one weighted output neuron into
     *  ws.selected. */
    void selectImportantInputs(const nn::Layer &layer,
                               const nn::Tensor &input, std::size_t out_idx,
                               float out_val, const LayerPolicy &policy,
                               ExtractionWorkspace &ws) const;

    const nn::Network *net;
    ExtractionConfig cfg;
    PathLayout lay;
    std::vector<int> weightedIndexOfNode; ///< node id -> weighted idx or -1
};

/**
 * Calibrate per-layer absolute thresholds phi so that roughly
 * @p target_fraction of the compared values pass, using a handful of
 * training samples. Backward-absolute layers calibrate on partial sums;
 * forward-absolute layers calibrate on input activations.
 *
 * Mirrors the paper's offline profiling step: phi "can be specified at
 * each layer" (Sec. III-C) and must match between the offline and online
 * phases.
 */
void calibrateAbsoluteThresholds(nn::Network &net, ExtractionConfig &cfg,
                                 const std::vector<nn::Tensor> &samples,
                                 double target_fraction);

} // namespace ptolemy::path

#endif // PTOLEMY_PATH_EXTRACTOR_HH
