#include "extractor.hh"

#include <algorithm>
#include <cassert>

#include "util/rng.hh"

namespace ptolemy::path
{

PathExtractor::PathExtractor(const nn::Network &net_ref,
                             ExtractionConfig config)
    : net(&net_ref), cfg(std::move(config)), lay(net_ref, cfg),
      weightedIndexOfNode(net_ref.numNodes(), -1)
{
    const auto &weighted = net->weightedNodes();
    assert(cfg.numLayers() == static_cast<int>(weighted.size()));
    for (int w = 0; w < static_cast<int>(weighted.size()); ++w)
        weightedIndexOfNode[weighted[w]] = w;
}

BitVector
PathExtractor::extract(const nn::Network::Record &rec,
                       ExtractionTrace *trace) const
{
    BitVector bits(lay.totalBits());
    if (trace) {
        trace->direction = cfg.direction;
        trace->layers.clear();
        trace->totalMacs = networkMacs(*net);
    }
    if (cfg.direction == Direction::Backward)
        extractBackward(rec, bits, trace);
    else
        extractForward(rec, bits, trace);
    if (trace)
        trace->pathBits = bits.popcount();
    return bits;
}

void
PathExtractor::selectImportantInputs(const nn::Layer &layer,
                                     const nn::Tensor &input,
                                     std::size_t out_idx, float out_val,
                                     const LayerPolicy &policy,
                                     std::vector<nn::PartialSum> &scratch,
                                     std::vector<std::size_t> &selected) const
{
    selected.clear();
    layer.partialSums(input, out_idx, scratch);
    if (scratch.empty())
        return;

    if (policy.kind == ThresholdKind::Absolute) {
        for (const auto &ps : scratch)
            if (ps.value >= policy.phi)
                selected.push_back(ps.inputIndex);
        return;
    }

    // Cumulative: rank partial sums, take the minimal prefix whose sum
    // reaches theta * output. A non-positive output has no meaningful
    // coverage target; keep the single largest contributor (minimal set).
    std::sort(scratch.begin(), scratch.end(),
              [](const nn::PartialSum &a, const nn::PartialSum &b) {
                  return a.value > b.value;
              });
    const double target = policy.theta * out_val;
    if (out_val <= 0.0f) {
        selected.push_back(scratch.front().inputIndex);
        return;
    }
    double cum = 0.0;
    for (const auto &ps : scratch) {
        selected.push_back(ps.inputIndex);
        cum += ps.value;
        if (cum >= target)
            break;
    }
}

void
PathExtractor::extractBackward(const nn::Network::Record &rec,
                               BitVector &bits,
                               ExtractionTrace *trace) const
{
    const int n_nodes = net->numNodes();
    // Important output-element sets per node, deduplicated via flags.
    std::vector<std::vector<std::size_t>> important(n_nodes);
    std::vector<std::vector<std::uint8_t>> seen(n_nodes);

    auto mark = [&](int node_id, std::size_t idx) {
        if (node_id < 0)
            return; // reached the network input
        auto &flags = seen[node_id];
        if (flags.empty())
            flags.assign(rec.outputs[node_id].size(), 0);
        if (!flags[idx]) {
            flags[idx] = 1;
            important[node_id].push_back(idx);
        }
    };

    // Seed: the predicted class neuron of the last layer (paper Sec. III-A).
    mark(n_nodes - 1, rec.predictedClass());

    std::vector<nn::PartialSum> scratch;
    std::vector<std::size_t> selected;

    for (int id = n_nodes - 1; id >= 0; --id) {
        if (important[id].empty())
            continue;
        const auto &node = net->node(id);
        const int w = weightedIndexOfNode[id];

        if (w >= 0) {
            const LayerPolicy &policy = cfg.layers[w];
            if (!policy.extract)
                continue; // early termination: stop below this layer
            const int in_id = node.inputs[0];
            const nn::Tensor &input =
                in_id < 0 ? rec.input : rec.outputs[in_id];
            const auto *seg = lay.segmentForWeighted(w);

            LayerTrace lt;
            lt.weightedIndex = w;
            lt.nodeId = id;
            lt.kind = policy.kind;
            lt.inputFmapSize = input.size();
            lt.outputFmapSize = rec.outputs[id].size();
            lt.rfSize = node.layer->receptiveFieldSize();
            lt.macs = weightedLayerMacs(*net, id);
            lt.importantOut = important[id].size();

            for (std::size_t o : important[id]) {
                selectImportantInputs(*node.layer, input, o,
                                      rec.outputs[id][o], policy, scratch,
                                      selected);
                lt.psumsConsidered += scratch.size();
                if (policy.kind == ThresholdKind::Cumulative)
                    lt.sortedElems += scratch.size();
                else
                    lt.thresholdCmps += scratch.size();
                for (std::size_t in_idx : selected) {
                    if (!bits.test(seg->bitOffset + in_idx)) {
                        bits.set(seg->bitOffset + in_idx);
                        ++lt.importantIn;
                    }
                    mark(in_id, in_idx);
                }
            }
            // Absolute variants store one single-bit mask per partial sum
            // during inference (paper Sec. III-C); cumulative variants
            // store the partial sums themselves (costed by the hw model).
            lt.masksWritten =
                policy.kind == ThresholdKind::Absolute ? lt.macs : 0;
            if (trace)
                trace->layers.push_back(lt);
        } else {
            // Route importance through the non-weighted layer.
            std::vector<const nn::Tensor *> ins;
            for (int in_id : node.inputs)
                ins.push_back(in_id < 0 ? &rec.input
                                        : &rec.outputs[in_id]);
            std::vector<std::vector<std::size_t>> per_input;
            node.layer->backmapImportant(ins, rec.outputs[id],
                                         important[id], per_input);
            for (std::size_t slot = 0; slot < per_input.size(); ++slot)
                for (std::size_t idx : per_input[slot])
                    mark(node.inputs[slot], idx);
        }
    }
    if (trace)
        std::reverse(trace->layers.begin(), trace->layers.end());
}

void
PathExtractor::extractForward(const nn::Network::Record &rec,
                              BitVector &bits, ExtractionTrace *trace) const
{
    const auto &weighted = net->weightedNodes();
    std::vector<std::size_t> order; // indices of extracted elements

    for (int w = 0; w < cfg.numLayers(); ++w) {
        const LayerPolicy &policy = cfg.layers[w];
        if (!policy.extract)
            continue;
        const int id = weighted[w];
        const auto &node = net->node(id);
        const int in_id = node.inputs[0];
        const nn::Tensor &input = in_id < 0 ? rec.input
                                            : rec.outputs[in_id];
        const auto *seg = lay.segmentForWeighted(w);

        LayerTrace lt;
        lt.weightedIndex = w;
        lt.nodeId = id;
        lt.kind = policy.kind;
        lt.inputFmapSize = input.size();
        lt.outputFmapSize = rec.outputs[id].size();
        lt.rfSize = node.layer->receptiveFieldSize();
        lt.macs = weightedLayerMacs(*net, id);
        lt.importantOut = 0; // forward mode is not driven by outputs

        if (policy.kind == ThresholdKind::Absolute) {
            // Threshold the freshly produced feature map; the single-bit
            // masks are generated during inference (paper Sec. III-C).
            lt.thresholdCmps = input.size();
            lt.masksWritten = input.size();
            for (std::size_t i = 0; i < input.size(); ++i) {
                if (input[i] >= policy.phi) {
                    bits.set(seg->bitOffset + i);
                    ++lt.importantIn;
                }
            }
        } else {
            // Forward cumulative (paper Fig. 6, last layer): rank the
            // feature-map elements and keep the minimal prefix covering
            // theta of the total activation mass.
            order.resize(input.size());
            for (std::size_t i = 0; i < input.size(); ++i)
                order[i] = i;
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return input[a] > input[b];
                      });
            double total = 0.0;
            for (std::size_t i = 0; i < input.size(); ++i)
                total += std::max(0.0f, input[i]);
            const double target = policy.theta * total;
            lt.sortedElems = input.size();
            double cum = 0.0;
            for (std::size_t i : order) {
                bits.set(seg->bitOffset + i);
                ++lt.importantIn;
                cum += std::max(0.0f, input[i]);
                if (cum >= target)
                    break;
            }
        }
        if (trace)
            trace->layers.push_back(lt);
    }
}

void
calibrateAbsoluteThresholds(nn::Network &net, ExtractionConfig &cfg,
                            const std::vector<nn::Tensor> &samples,
                            double target_fraction)
{
    const auto &weighted = net.weightedNodes();
    std::vector<std::vector<float>> pools(cfg.numLayers());
    Rng rng(0xCA11B8A7Eull);
    std::vector<nn::PartialSum> scratch;

    for (const auto &x : samples) {
        auto rec = net.forward(x);
        for (int w = 0; w < cfg.numLayers(); ++w) {
            if (!cfg.layers[w].extract ||
                cfg.layers[w].kind != ThresholdKind::Absolute)
                continue;
            const int id = weighted[w];
            const auto &node = net.node(id);
            const int in_id = node.inputs[0];
            const nn::Tensor &input = in_id < 0 ? rec.input
                                                : rec.outputs[in_id];
            if (cfg.direction == Direction::Forward) {
                for (std::size_t i = 0; i < input.size(); ++i)
                    pools[w].push_back(input[i]);
            } else {
                // Sample a few output neurons' partial sums.
                const std::size_t n_out = rec.outputs[id].size();
                const std::size_t n_probe = std::min<std::size_t>(32, n_out);
                for (std::size_t p = 0; p < n_probe; ++p) {
                    const std::size_t o = rng.below(n_out);
                    net.layerAt(id).partialSums(input, o, scratch);
                    for (const auto &ps : scratch)
                        pools[w].push_back(ps.value);
                }
            }
        }
    }

    for (int w = 0; w < cfg.numLayers(); ++w) {
        auto &pool = pools[w];
        if (pool.empty())
            continue;
        const std::size_t k = static_cast<std::size_t>(
            (1.0 - target_fraction) * (pool.size() - 1));
        std::nth_element(pool.begin(),
                         pool.begin() + static_cast<std::ptrdiff_t>(k),
                         pool.end());
        cfg.layers[w].phi = pool[k];
    }
}

} // namespace ptolemy::path
