#include "extractor.hh"

#include <algorithm>
#include <cassert>

#include "nn/psum_kernels.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/thread_pool.hh"

namespace ptolemy::path
{

namespace
{

/** Total order for partial-sum ranking: value descending, input index
 *  ascending on ties. A total order (rather than value-only) makes the
 *  heap-prefix and full-sort selection strategies pick identical sets
 *  even when equal values straddle the theta cut. */
inline bool
rankedBefore(const nn::PartialSum &a, const nn::PartialSum &b)
{
    if (a.value != b.value)
        return a.value > b.value;
    return a.inputIndex < b.inputIndex;
}

/** make_heap/pop_heap comparator: "less" = ranked after. */
inline bool
heapLess(const nn::PartialSum &a, const nn::PartialSum &b)
{
    return rankedBefore(b, a);
}

/** Array position of the rankedBefore-first entry of p[0, n). Pure
 *  comparisons under the same total order as the sort/heap paths, so
 *  all three selection strategies pick identical elements. The scan is
 *  branchless (conditional moves / AVX2 blends) where the heap walk
 *  mispredicts on essentially every random float comparison. */
inline std::size_t
argmaxRanked(const nn::PartialSum *p, std::size_t n)
{
#ifdef PTOLEMY_HAVE_AVX2
    if (n >= 16 && simdMode() == SimdMode::Avx2)
        return nn::detail::avx2ArgmaxRanked(p, n);
#endif
    std::size_t best = 0;
    for (std::size_t i = 1; i < n; ++i) {
        const bool better = rankedBefore(p[i], p[best]);
        best = better ? i : best;
    }
    return best;
}

/** Selection prefixes are typically a handful of elements, so a few
 *  successive argmax scans beat heapifying the whole receptive field;
 *  past this many passes the remainder falls back to the heap so a
 *  pathological wide prefix stays O(n + k log n). The constant lives in
 *  trace.hh so the compiler can mirror it in static trip counts. */
constexpr int kMaxScanPasses = kMaxSelectScanPasses;

} // namespace

PathExtractor::PathExtractor(const nn::Network &net_ref,
                             ExtractionConfig config)
    : net(&net_ref), cfg(std::move(config)), lay(net_ref, cfg),
      weightedIndexOfNode(net_ref.numNodes(), -1)
{
    const auto &weighted = net->weightedNodes();
    assert(cfg.numLayers() == static_cast<int>(weighted.size()));
    for (int w = 0; w < static_cast<int>(weighted.size()); ++w)
        weightedIndexOfNode[weighted[w]] = w;
}

BitVector
PathExtractor::extract(const nn::Network::Record &rec,
                       ExtractionTrace *trace) const
{
    ExtractionWorkspace ws;
    return extract(rec, ws, trace);
}

BitVector
PathExtractor::extract(const nn::Network::Record &rec,
                       ExtractionWorkspace &ws, ExtractionTrace *trace) const
{
    BitVector bits;
    extractInto(rec, ws, bits, trace);
    return bits;
}

void
PathExtractor::extractInto(const nn::Network::Record &rec,
                           ExtractionWorkspace &ws, BitVector &bits,
                           ExtractionTrace *trace) const
{
    if (bits.size() != lay.totalBits())
        bits = BitVector(lay.totalBits());
    else
        bits.reset();
    if (trace) {
        trace->direction = cfg.direction;
        trace->layers.clear();
        trace->totalMacs = networkMacs(*net);
    }
    if (cfg.direction == Direction::Backward)
        extractBackward(rec, ws, bits, trace);
    else
        extractForward(rec, ws, bits, trace);
    if (trace)
        trace->pathBits = bits.popcount();
}

void
PathExtractor::extractBatch(const std::vector<nn::Network::Record> &recs,
                            std::vector<BitVector> &out,
                            BatchExtractionWorkspace &bws,
                            ThreadPool *pool) const
{
    out.resize(recs.size());
    const unsigned slots = pool ? pool->size() : 1;
    if (bws.perThread.size() < slots)
        bws.perThread.resize(slots);
    if (pool && pool->size() > 1 && recs.size() > 1) {
        // extractInto only mutates its workspace and output BitVector;
        // the extractor, layout and records are read-only, so distinct
        // (slot workspace, out[i]) pairs make concurrent samples safe.
        pool->parallelForWithTid(
            recs.size(), [&](std::size_t i, unsigned tid) {
                extractInto(recs[i], bws.perThread[tid], out[i]);
            });
        return;
    }
    for (std::size_t i = 0; i < recs.size(); ++i)
        extractInto(recs[i], bws.perThread[0], out[i]);
}

std::vector<BitVector>
PathExtractor::extractBatch(const std::vector<nn::Network::Record> &recs,
                            ThreadPool *pool) const
{
    BatchExtractionWorkspace bws;
    std::vector<BitVector> out;
    extractBatch(recs, out, bws, pool);
    return out;
}

ExtractionTrace
PathExtractor::profileBatch(const std::vector<nn::Network::Record> &recs,
                            std::vector<BitVector> &out,
                            BatchExtractionWorkspace &bws,
                            ThreadPool *pool) const
{
    out.resize(recs.size());
    std::vector<ExtractionTrace> traces(recs.size());
    const unsigned slots = pool ? pool->size() : 1;
    if (bws.perThread.size() < slots)
        bws.perThread.resize(slots);
    if (pool && pool->size() > 1 && recs.size() > 1) {
        // Same safety argument as extractBatch: per-sample traces are
        // indexed by i, so the averaged result is order-independent of
        // pool scheduling.
        pool->parallelForWithTid(
            recs.size(), [&](std::size_t i, unsigned tid) {
                extractInto(recs[i], bws.perThread[tid], out[i],
                            &traces[i]);
            });
    } else {
        for (std::size_t i = 0; i < recs.size(); ++i)
            extractInto(recs[i], bws.perThread[0], out[i], &traces[i]);
    }
    return averageTraces(traces);
}

ExtractionTrace
PathExtractor::profileBatch(const std::vector<nn::Network::Record> &recs,
                            ThreadPool *pool) const
{
    BatchExtractionWorkspace bws;
    std::vector<BitVector> out;
    return profileBatch(recs, out, bws, pool);
}

void
PathExtractor::selectImportantInputs(const nn::Layer &layer,
                                     const nn::Tensor &input,
                                     std::size_t out_idx, float out_val,
                                     const LayerPolicy &policy,
                                     ExtractionWorkspace &ws) const
{
    auto &scratch = ws.scratch;
    auto &selected = ws.selected;
    selected.clear();
    layer.partialSums(input, out_idx, scratch);
    if (scratch.empty())
        return;

    if (policy.kind == ThresholdKind::Absolute) {
        for (const auto &ps : scratch)
            if (ps.value >= policy.phi)
                selected.push_back(ps.inputIndex);
        return;
    }

    // Cumulative: rank partial sums, take the minimal prefix whose sum
    // reaches theta * output. A non-positive output has no meaningful
    // coverage target; keep the single largest contributor (minimal set).
    if (out_val <= 0.0f) {
        selected.push_back(
            scratch[argmaxRanked(scratch.data(), scratch.size())]
                .inputIndex);
        return;
    }
    const double target = policy.theta * out_val;
    if (ws.referenceSort) {
        std::sort(scratch.begin(), scratch.end(), rankedBefore);
        double cum = 0.0;
        for (const auto &ps : scratch) {
            selected.push_back(ps.inputIndex);
            cum += ps.value;
            if (cum >= target)
                break;
        }
        return;
    }
    // Successive argmax scans: each pass swaps the ranked-next element
    // to the front of the unselected region, so elements are emitted —
    // and cum accumulated — in exactly the reference sort's order.
    const std::size_t n = scratch.size();
    std::size_t head = 0;
    double cum = 0.0;
    for (int pass = 0; pass < kMaxScanPasses && head < n; ++pass) {
        const std::size_t best =
            head + argmaxRanked(scratch.data() + head, n - head);
        std::swap(scratch[head], scratch[best]);
        selected.push_back(scratch[head].inputIndex);
        cum += scratch[head].value;
        ++head;
        if (cum >= target)
            return;
    }
    // Wide prefix: heapify the remaining elements and pop until
    // coverage (n + k log n worst case). The heap pops continue the
    // same ranked order, so the selection stays identical.
    std::make_heap(scratch.begin() + static_cast<std::ptrdiff_t>(head),
                   scratch.end(), heapLess);
    auto end = scratch.end();
    const auto heap_begin =
        scratch.begin() + static_cast<std::ptrdiff_t>(head);
    while (end != heap_begin) {
        std::pop_heap(heap_begin, end, heapLess);
        --end;
        selected.push_back(end->inputIndex);
        cum += end->value;
        if (cum >= target)
            break;
    }
}

void
PathExtractor::extractBackward(const nn::Network::Record &rec,
                               ExtractionWorkspace &ws, BitVector &bits,
                               ExtractionTrace *trace) const
{
    const int n_nodes = net->numNodes();
    // Important output-element sets per node, deduplicated via flags.
    // The flag arrays persist in the workspace; only the bits dirtied by
    // the previous extraction are cleared, keeping reuse O(path size).
    if (ws.important.size() != static_cast<std::size_t>(n_nodes)) {
        // Workspace last served a different network: start clean so the
        // sparse-clear loop below never indexes stale node ids.
        ws.important.assign(n_nodes, {});
        ws.seen.assign(n_nodes, {});
        ws.touched.clear();
    }
    for (int id : ws.touched) {
        for (std::size_t idx : ws.important[id])
            ws.seen[id][idx] = 0;
        ws.important[id].clear();
    }
    ws.touched.clear();

    auto mark = [&](int node_id, std::size_t idx) {
        if (node_id < 0)
            return; // reached the network input
        auto &flags = ws.seen[node_id];
        if (flags.size() != rec.outputs[node_id].size())
            flags.assign(rec.outputs[node_id].size(), 0);
        if (!flags[idx]) {
            if (ws.important[node_id].empty())
                ws.touched.push_back(node_id);
            flags[idx] = 1;
            ws.important[node_id].push_back(idx);
        }
    };

    // Seed: the predicted class neuron of the last layer (paper Sec. III-A).
    mark(n_nodes - 1, rec.predictedClass());

    for (int id = n_nodes - 1; id >= 0; --id) {
        if (ws.important[id].empty())
            continue;
        const auto &node = net->node(id);
        const int w = weightedIndexOfNode[id];

        if (w >= 0) {
            const LayerPolicy &policy = cfg.layers[w];
            if (!policy.extract)
                continue; // early termination: stop below this layer
            const int in_id = node.inputs[0];
            const nn::Tensor &input =
                in_id < 0 ? rec.input : rec.outputs[in_id];
            const auto *seg = lay.segmentForWeighted(w);

            LayerTrace lt;
            lt.weightedIndex = w;
            lt.nodeId = id;
            lt.kind = policy.kind;
            lt.inputFmapSize = input.size();
            lt.outputFmapSize = rec.outputs[id].size();
            lt.rfSize = node.layer->receptiveFieldSize();
            lt.macs = weightedLayerMacs(*net, id);
            lt.importantOut = ws.important[id].size();

            for (std::size_t o : ws.important[id]) {
                selectImportantInputs(*node.layer, input, o,
                                      rec.outputs[id][o], policy, ws);
                lt.psumsConsidered += ws.scratch.size();
                if (policy.kind == ThresholdKind::Cumulative) {
                    lt.sortedElems += ws.scratch.size();
                    // Selection shape: the scan path emits exactly one
                    // element per pass, so the pass/pop counts follow
                    // from the selected prefix length (identical for
                    // the reference-sort strategy, which picks the same
                    // set).
                    const std::size_t k = ws.selected.size();
                    lt.selectScanPasses += std::min<std::size_t>(
                        k, static_cast<std::size_t>(kMaxScanPasses));
                    if (k > static_cast<std::size_t>(kMaxScanPasses)) {
                        ++lt.heapFallbackNeurons;
                        lt.heapPops += k - kMaxScanPasses;
                    }
                } else {
                    lt.thresholdCmps += ws.scratch.size();
                }
                for (std::size_t in_idx : ws.selected) {
                    if (!bits.test(seg->bitOffset + in_idx)) {
                        bits.set(seg->bitOffset + in_idx);
                        ++lt.importantIn;
                    }
                    mark(in_id, in_idx);
                }
            }
            // Absolute variants store one single-bit mask per partial sum
            // during inference (paper Sec. III-C); cumulative variants
            // store the partial sums themselves (costed by the hw model).
            lt.masksWritten =
                policy.kind == ThresholdKind::Absolute ? lt.macs : 0;
            if (trace)
                trace->layers.push_back(lt);
        } else {
            // Route importance through the non-weighted layer.
            auto &ins = ws.insScratch;
            ins.clear();
            for (int in_id : node.inputs)
                ins.push_back(in_id < 0 ? &rec.input
                                        : &rec.outputs[in_id]);
            node.layer->backmapImportant(ins, rec.outputs[id],
                                         ws.important[id], ws.perInput);
            for (std::size_t slot = 0; slot < ws.perInput.size(); ++slot)
                for (std::size_t idx : ws.perInput[slot])
                    mark(node.inputs[slot], idx);
        }
    }
    if (trace)
        std::reverse(trace->layers.begin(), trace->layers.end());
}

void
PathExtractor::extractForward(const nn::Network::Record &rec,
                              ExtractionWorkspace &ws, BitVector &bits,
                              ExtractionTrace *trace) const
{
    const auto &weighted = net->weightedNodes();
    auto &order = ws.order; // ranked indices of extracted elements

    for (int w = 0; w < cfg.numLayers(); ++w) {
        const LayerPolicy &policy = cfg.layers[w];
        if (!policy.extract)
            continue;
        const int id = weighted[w];
        const auto &node = net->node(id);
        const int in_id = node.inputs[0];
        const nn::Tensor &input = in_id < 0 ? rec.input
                                            : rec.outputs[in_id];
        const auto *seg = lay.segmentForWeighted(w);

        LayerTrace lt;
        lt.weightedIndex = w;
        lt.nodeId = id;
        lt.kind = policy.kind;
        lt.inputFmapSize = input.size();
        lt.outputFmapSize = rec.outputs[id].size();
        lt.rfSize = node.layer->receptiveFieldSize();
        lt.macs = weightedLayerMacs(*net, id);
        lt.importantOut = 0; // forward mode is not driven by outputs

        if (policy.kind == ThresholdKind::Absolute) {
            // Threshold the freshly produced feature map; the single-bit
            // masks are generated during inference (paper Sec. III-C).
            lt.thresholdCmps = input.size();
            lt.masksWritten = input.size();
            for (std::size_t i = 0; i < input.size(); ++i) {
                if (input[i] >= policy.phi) {
                    bits.set(seg->bitOffset + i);
                    ++lt.importantIn;
                }
            }
        } else {
            // Forward cumulative (paper Fig. 6, last layer): rank the
            // feature-map elements and keep the minimal prefix covering
            // theta of the total activation mass.
            const auto idx_ranked_before = [&](std::size_t a,
                                               std::size_t b) {
                if (input[a] != input[b])
                    return input[a] > input[b];
                return a < b;
            };
            const auto idx_heap_less = [&](std::size_t a, std::size_t b) {
                return idx_ranked_before(b, a);
            };
            order.resize(input.size());
            for (std::size_t i = 0; i < input.size(); ++i)
                order[i] = i;
            double total = 0.0;
            for (std::size_t i = 0; i < input.size(); ++i)
                total += std::max(0.0f, input[i]);
            const double target = policy.theta * total;
            lt.sortedElems = input.size();
            double cum = 0.0;
            if (ws.referenceSort) {
                std::sort(order.begin(), order.end(), idx_ranked_before);
                for (std::size_t i : order) {
                    bits.set(seg->bitOffset + i);
                    ++lt.importantIn;
                    cum += std::max(0.0f, input[i]);
                    if (cum >= target)
                        break;
                }
            } else {
                std::make_heap(order.begin(), order.end(), idx_heap_less);
                auto end = order.end();
                while (end != order.begin()) {
                    std::pop_heap(order.begin(), end, idx_heap_less);
                    --end;
                    bits.set(seg->bitOffset + *end);
                    ++lt.importantIn;
                    cum += std::max(0.0f, input[*end]);
                    if (cum >= target)
                        break;
                }
            }
            // Forward cumulative ranks the whole feature map in one
            // heapified pass (one "neuron", importantIn pops) — the
            // ranked-prefix scan rewrite applies to the backward
            // per-neuron receptive fields only.
            lt.heapFallbackNeurons = 1;
            lt.heapPops = lt.importantIn;
        }
        if (trace)
            trace->layers.push_back(lt);
    }
}

void
calibrateAbsoluteThresholds(nn::Network &net, ExtractionConfig &cfg,
                            const std::vector<nn::Tensor> &samples,
                            double target_fraction)
{
    const auto &weighted = net.weightedNodes();
    std::vector<std::vector<float>> pools(cfg.numLayers());
    Rng rng(0xCA11B8A7Eull);
    std::vector<nn::PartialSum> scratch;

    // Record the calibration samples in pool-parallel chunks (bounded
    // memory: a Record holds every intermediate feature map); the
    // pooling below keeps the original serial order, so thresholds are
    // identical to the one-at-a-time loop.
    ThreadPool &tp = globalPool();
    const std::size_t chunk = std::max<std::size_t>(8, 4 * tp.size());
    std::vector<nn::Tensor> xsChunk;
    std::vector<nn::Network::Record> recs;
    for (std::size_t base = 0; base < samples.size(); base += chunk) {
        const std::size_t n = std::min(chunk, samples.size() - base);
        xsChunk.assign(
            samples.begin() + static_cast<std::ptrdiff_t>(base),
            samples.begin() + static_cast<std::ptrdiff_t>(base + n));
        net.forwardBatch(xsChunk, recs, &tp);

        for (std::size_t r = 0; r < n; ++r) {
            const auto &rec = recs[r];
            for (int w = 0; w < cfg.numLayers(); ++w) {
                if (!cfg.layers[w].extract ||
                    cfg.layers[w].kind != ThresholdKind::Absolute)
                    continue;
                const int id = weighted[w];
                const auto &node = net.node(id);
                const int in_id = node.inputs[0];
                const nn::Tensor &input = in_id < 0 ? rec.input
                                                    : rec.outputs[in_id];
                if (cfg.direction == Direction::Forward) {
                    for (std::size_t i = 0; i < input.size(); ++i)
                        pools[w].push_back(input[i]);
                } else {
                    // Sample a few output neurons' partial sums.
                    const std::size_t n_out = rec.outputs[id].size();
                    const std::size_t n_probe =
                        std::min<std::size_t>(32, n_out);
                    for (std::size_t p = 0; p < n_probe; ++p) {
                        const std::size_t o = rng.below(n_out);
                        net.layerAt(id).partialSums(input, o, scratch);
                        for (const auto &ps : scratch)
                            pools[w].push_back(ps.value);
                    }
                }
            }
        }
    }

    for (int w = 0; w < cfg.numLayers(); ++w) {
        auto &pool = pools[w];
        if (pool.empty())
            continue;
        const std::size_t k = static_cast<std::size_t>(
            (1.0 - target_fraction) * (pool.size() - 1));
        std::nth_element(pool.begin(),
                         pool.begin() + static_cast<std::ptrdiff_t>(k),
                         pool.end());
        cfg.layers[w].phi = pool[k];
    }
}

} // namespace ptolemy::path
