/**
 * @file
 * Algorithmic knobs of the Ptolemy detection framework (paper Sec. III-C).
 *
 * Three knobs control how activation paths are extracted:
 *  - extraction direction: backward (from the predicted class) or forward
 *    (alongside inference) — applies to the whole network;
 *  - thresholding mechanism per layer: cumulative (θ, rank partial sums and
 *    accumulate until θ of the output is covered) or absolute (φ, compare
 *    each partial sum / activation against a constant);
 *  - selective extraction: only a suffix of layers is extracted
 *    ("early termination" for backward, "late start" for forward).
 *
 * The paper's four named variants (Sec. VI-B) are provided as presets:
 * BwCu, BwAb, FwAb and Hybrid (BwAb on the first half, BwCu on the rest).
 */

#ifndef PTOLEMY_PATH_EXTRACTION_CONFIG_HH
#define PTOLEMY_PATH_EXTRACTION_CONFIG_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace ptolemy::path
{

/** Which end of the network extraction walks from. */
enum class Direction
{
    Backward, ///< from the predicted class toward the input (serialized)
    Forward,  ///< layer-by-layer alongside inference (can be overlapped)
};

/** How important neurons are selected within one layer. */
enum class ThresholdKind
{
    Cumulative, ///< sort partial sums, accumulate until >= theta * output
    Absolute,   ///< compare each partial sum / activation against phi
};

/** Per-weighted-layer extraction policy. */
struct LayerPolicy
{
    bool extract = true;
    ThresholdKind kind = ThresholdKind::Cumulative;
    double theta = 0.5; ///< cumulative coverage threshold in [0,1]
    double phi = 0.0;   ///< absolute threshold (set by calibration)
};

/**
 * Full extraction configuration: direction plus one policy per weighted
 * layer, indexed in topological weighted-layer order.
 */
struct ExtractionConfig
{
    Direction direction = Direction::Backward;
    std::vector<LayerPolicy> layers;

    /** Number of weighted layers this config describes. */
    int numLayers() const { return static_cast<int>(layers.size()); }

    /** Weighted-layer index extraction effectively begins at (first
     *  extracted layer); layers below it are skipped. */
    int firstExtractedLayer() const;

    /** Count of extracted layers. */
    int numExtracted() const;

    /**
     * Restrict extraction to weighted layers [first, N). For backward
     * variants this is the paper's early-termination knob ("terminate at
     * layer first+1" in the paper's 1-based numbering); for forward
     * variants it is late-start.
     */
    void selectFrom(int first);

    /** Human-readable variant tag ("BwCu", "FwAb", "Hybrid", ...). */
    std::string variantName() const;

    /** Write the full configuration to a binary stream (DetectorModel
     *  persistence: the offline and online phases must share knobs). */
    void serialize(std::ostream &os) const;

    /** Inverse of serialize(). @return false on malformed input. */
    bool deserialize(std::istream &is);

    // Presets (paper Sec. VI-B). @p n = number of weighted layers.

    /** Backward extraction, cumulative threshold theta everywhere. */
    static ExtractionConfig bwCu(int n, double theta = 0.5);

    /** Backward extraction, absolute thresholds (phi via calibration). */
    static ExtractionConfig bwAb(int n, double phi = 0.0);

    /** Forward extraction, absolute thresholds. */
    static ExtractionConfig fwAb(int n, double phi = 0.0);

    /** BwAb on the first half of the network, BwCu on the rest. */
    static ExtractionConfig hybrid(int n, double theta = 0.5,
                                   double phi = 0.0);
};

} // namespace ptolemy::path

#endif // PTOLEMY_PATH_EXTRACTION_CONFIG_HH
