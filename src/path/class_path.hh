/**
 * @file
 * Canary class paths (paper Sec. III-A/III-B).
 *
 * The class path of class c is the bitwise OR of the activation paths of
 * training inputs correctly predicted as c: Pc = ∪_{x∈x̄c} P(x). Class
 * paths are generated offline, stored, and incrementally updatable — a new
 * sample's path is simply OR-ed in without regenerating anything.
 */

#ifndef PTOLEMY_PATH_CLASS_PATH_HH
#define PTOLEMY_PATH_CLASS_PATH_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "path/path_layout.hh"
#include "util/bitvector.hh"

namespace ptolemy::path
{

/**
 * Per-class canary path store.
 */
class ClassPathStore
{
  public:
    ClassPathStore() = default;

    /** @param num_classes class count; @param num_bits path bit width. */
    ClassPathStore(std::size_t num_classes, std::size_t num_bits);

    std::size_t numClasses() const { return paths.size(); }
    std::size_t numBits() const
    {
        return paths.empty() ? 0 : paths[0].size();
    }

    /**
     * OR @p path into class @p cls (incremental profiling).
     * @return number of newly set bits — zero once the class path has
     *         saturated (the paper observes saturation around 100 images).
     */
    std::size_t aggregate(std::size_t cls, const BitVector &path);

    const BitVector &classPath(std::size_t cls) const { return paths[cls]; }
    std::size_t samplesSeen(std::size_t cls) const { return counts[cls]; }

    /** Jaccard similarity between two class paths (paper Fig. 5). */
    double interClassSimilarity(std::size_t a, std::size_t b) const;

    /** Full inter-class similarity matrix. */
    std::vector<std::vector<double>> similarityMatrix() const;

    /** Serialize to @p file_path. @return success. */
    bool save(const std::string &file_path) const;

    /** Load; replaces current contents. @return success. */
    bool load(const std::string &file_path);

    /** Stream-embeddable form of save/load (used by DetectorModel
     *  persistence, which packs the store into one model file). */
    void serialize(std::ostream &os) const;
    bool deserialize(std::istream &is);

  private:
    std::vector<BitVector> paths;
    std::vector<std::size_t> counts;
};

/**
 * Similarity between an activation path and a canary class path
 * (paper Sec. III-B): overall S = ‖P ∧ Pc‖₁ / ‖P‖₁ plus the same ratio
 * restricted to each layer segment. The per-layer ratios are the feature
 * vector fed to the random-forest classifier.
 */
struct SimilarityFeatures
{
    double overall = 0.0;
    std::vector<double> perLayer;

    /** Flatten to a feature vector: [overall, perLayer...]. */
    std::vector<double> toVector() const;

    /** Flatten into a caller-owned vector (buffer reused across calls,
     *  so a warmed serving loop performs no heap allocation). */
    void toVectorInto(std::vector<double> &out) const;
};

/** Compute similarity features of @p p against class path @p pc. */
SimilarityFeatures computeSimilarity(const BitVector &p, const BitVector &pc,
                                     const PathLayout &layout);

/**
 * As computeSimilarity, but writing into caller-owned features whose
 * perLayer buffer is reused across calls — the allocation-free form the
 * serving hot path (DetectorSession::detect/detectBatch) rides.
 * Results are bit-identical to computeSimilarity.
 */
void computeSimilarityInto(const BitVector &p, const BitVector &pc,
                           const PathLayout &layout,
                           SimilarityFeatures &out);

} // namespace ptolemy::path

#endif // PTOLEMY_PATH_CLASS_PATH_HH
