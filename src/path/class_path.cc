#include "class_path.hh"

#include <algorithm>
#include <fstream>

#include "util/serialize.hh"

namespace ptolemy::path
{

ClassPathStore::ClassPathStore(std::size_t num_classes, std::size_t num_bits)
    : paths(num_classes, BitVector(num_bits)), counts(num_classes, 0)
{
}

std::size_t
ClassPathStore::aggregate(std::size_t cls, const BitVector &path)
{
    ++counts[cls];
    return paths[cls].orAssignCountNew(path);
}

double
ClassPathStore::interClassSimilarity(std::size_t a, std::size_t b) const
{
    return paths[a].jaccard(paths[b]);
}

std::vector<std::vector<double>>
ClassPathStore::similarityMatrix() const
{
    const std::size_t n = numClasses();
    std::vector<std::vector<double>> m(n, std::vector<double>(n, 1.0));
    for (std::size_t a = 0; a < n; ++a)
        for (std::size_t b = a + 1; b < n; ++b)
            m[a][b] = m[b][a] = interClassSimilarity(a, b);
    return m;
}

void
ClassPathStore::serialize(std::ostream &os) const
{
    writeU64(os, paths.size());
    for (std::size_t c = 0; c < paths.size(); ++c) {
        writeU64(os, counts[c]);
        writeString(os, paths[c].serialize());
    }
}

bool
ClassPathStore::deserialize(std::istream &is)
{
    std::uint64_t n;
    if (!readU64(is, n))
        return false;
    // Bounded before allocation: a corrupt class count must return
    // false, not throw bad_alloc.
    if (n > (1u << 20))
        return false;
    paths.assign(n, BitVector());
    counts.assign(n, 0);
    for (std::size_t c = 0; c < n; ++c) {
        std::uint64_t cnt;
        std::string blob;
        if (!readU64(is, cnt) || !readString(is, blob) ||
            !BitVector::deserialize(blob, paths[c]))
            return false;
        counts[c] = cnt;
    }
    return true;
}

bool
ClassPathStore::save(const std::string &file_path) const
{
    std::ofstream os(file_path, std::ios::binary);
    if (!os)
        return false;
    serialize(os);
    return os.good();
}

bool
ClassPathStore::load(const std::string &file_path)
{
    std::ifstream is(file_path, std::ios::binary);
    if (!is)
        return false;
    return deserialize(is);
}

std::vector<double>
SimilarityFeatures::toVector() const
{
    std::vector<double> v;
    v.reserve(1 + perLayer.size());
    v.push_back(overall);
    v.insert(v.end(), perLayer.begin(), perLayer.end());
    return v;
}

void
SimilarityFeatures::toVectorInto(std::vector<double> &out) const
{
    out.resize(1 + perLayer.size());
    out[0] = overall;
    std::copy(perLayer.begin(), perLayer.end(), out.begin() + 1);
}

SimilarityFeatures
computeSimilarity(const BitVector &p, const BitVector &pc,
                  const PathLayout &layout)
{
    SimilarityFeatures f;
    computeSimilarityInto(p, pc, layout, f);
    return f;
}

void
computeSimilarityInto(const BitVector &p, const BitVector &pc,
                      const PathLayout &layout, SimilarityFeatures &out)
{
    const std::size_t p_ones = p.popcount();
    out.overall = p_ones == 0
        ? 1.0
        : static_cast<double>(p.andPopcount(pc)) / p_ones;
    out.perLayer.resize(layout.segments().size());
    std::size_t w = 0;
    for (const auto &seg : layout.segments()) {
        const std::size_t ones =
            p.popcountRange(seg.bitOffset, seg.bitOffset + seg.numBits);
        const std::size_t inter = p.andPopcountRange(
            pc, seg.bitOffset, seg.bitOffset + seg.numBits);
        out.perLayer[w++] =
            ones == 0 ? 1.0 : static_cast<double>(inter) / ones;
    }
}

} // namespace ptolemy::path
