/**
 * @file
 * Mapping from (weighted layer, input-feature-map element) to bit position.
 *
 * An activation path is "a bitmask where each bit m_{i,j} indicates whether
 * the neuron (input feature map element) at layer i position j is an
 * important neuron" (paper Sec. III-A). The layout assigns each extracted
 * weighted layer a contiguous bit segment sized by its input feature map.
 */

#ifndef PTOLEMY_PATH_PATH_LAYOUT_HH
#define PTOLEMY_PATH_PATH_LAYOUT_HH

#include <cstddef>
#include <vector>

#include "path/extraction_config.hh"

namespace ptolemy::nn
{
class Network;
}

namespace ptolemy::path
{

/**
 * Bit layout of an activation path for a (network, config) pair.
 */
class PathLayout
{
  public:
    /** Segment descriptor for one extracted weighted layer. */
    struct Segment
    {
        int weightedIndex; ///< index into Network::weightedNodes()
        int nodeId;        ///< graph node id of the weighted layer
        std::size_t bitOffset;
        std::size_t numBits; ///< input feature map size of the layer
    };

    PathLayout() = default;

    /** Build the layout for the layers @p cfg extracts from @p net. */
    PathLayout(const nn::Network &net, const ExtractionConfig &cfg);

    const std::vector<Segment> &segments() const { return segs; }
    std::size_t totalBits() const { return bits; }

    /** Segment for weighted-layer index @p w, or nullptr if not extracted. */
    const Segment *segmentForWeighted(int w) const;

  private:
    std::vector<Segment> segs;
    std::size_t bits = 0;
};

} // namespace ptolemy::path

#endif // PTOLEMY_PATH_PATH_LAYOUT_HH
