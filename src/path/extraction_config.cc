#include "extraction_config.hh"

namespace ptolemy::path
{

int
ExtractionConfig::firstExtractedLayer() const
{
    for (int i = 0; i < numLayers(); ++i)
        if (layers[i].extract)
            return i;
    return numLayers();
}

int
ExtractionConfig::numExtracted() const
{
    int n = 0;
    for (const auto &lp : layers)
        if (lp.extract)
            ++n;
    return n;
}

void
ExtractionConfig::selectFrom(int first)
{
    for (int i = 0; i < numLayers(); ++i)
        layers[i].extract = i >= first;
}

std::string
ExtractionConfig::variantName() const
{
    bool any_cu = false, any_ab = false;
    for (const auto &lp : layers) {
        if (!lp.extract)
            continue;
        (lp.kind == ThresholdKind::Cumulative ? any_cu : any_ab) = true;
    }
    const std::string dir = direction == Direction::Backward ? "Bw" : "Fw";
    if (any_cu && any_ab)
        return "Hybrid";
    return dir + (any_cu ? "Cu" : "Ab");
}

ExtractionConfig
ExtractionConfig::bwCu(int n, double theta)
{
    ExtractionConfig cfg;
    cfg.direction = Direction::Backward;
    cfg.layers.assign(n, {true, ThresholdKind::Cumulative, theta, 0.0});
    return cfg;
}

ExtractionConfig
ExtractionConfig::bwAb(int n, double phi)
{
    ExtractionConfig cfg;
    cfg.direction = Direction::Backward;
    cfg.layers.assign(n, {true, ThresholdKind::Absolute, 0.5, phi});
    return cfg;
}

ExtractionConfig
ExtractionConfig::fwAb(int n, double phi)
{
    ExtractionConfig cfg;
    cfg.direction = Direction::Forward;
    cfg.layers.assign(n, {true, ThresholdKind::Absolute, 0.5, phi});
    return cfg;
}

ExtractionConfig
ExtractionConfig::hybrid(int n, double theta, double phi)
{
    ExtractionConfig cfg;
    cfg.direction = Direction::Backward;
    cfg.layers.assign(n, {true, ThresholdKind::Absolute, theta, phi});
    for (int i = n / 2; i < n; ++i)
        cfg.layers[i].kind = ThresholdKind::Cumulative;
    return cfg;
}

} // namespace ptolemy::path
