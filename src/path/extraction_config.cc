#include "extraction_config.hh"

#include <cstdint>

#include "util/serialize.hh"

namespace ptolemy::path
{

int
ExtractionConfig::firstExtractedLayer() const
{
    for (int i = 0; i < numLayers(); ++i)
        if (layers[i].extract)
            return i;
    return numLayers();
}

int
ExtractionConfig::numExtracted() const
{
    int n = 0;
    for (const auto &lp : layers)
        if (lp.extract)
            ++n;
    return n;
}

void
ExtractionConfig::selectFrom(int first)
{
    for (int i = 0; i < numLayers(); ++i)
        layers[i].extract = i >= first;
}

std::string
ExtractionConfig::variantName() const
{
    bool any_cu = false, any_ab = false;
    for (const auto &lp : layers) {
        if (!lp.extract)
            continue;
        (lp.kind == ThresholdKind::Cumulative ? any_cu : any_ab) = true;
    }
    const std::string dir = direction == Direction::Backward ? "Bw" : "Fw";
    if (any_cu && any_ab)
        return "Hybrid";
    return dir + (any_cu ? "Cu" : "Ab");
}

ExtractionConfig
ExtractionConfig::bwCu(int n, double theta)
{
    ExtractionConfig cfg;
    cfg.direction = Direction::Backward;
    cfg.layers.assign(n, {true, ThresholdKind::Cumulative, theta, 0.0});
    return cfg;
}

ExtractionConfig
ExtractionConfig::bwAb(int n, double phi)
{
    ExtractionConfig cfg;
    cfg.direction = Direction::Backward;
    cfg.layers.assign(n, {true, ThresholdKind::Absolute, 0.5, phi});
    return cfg;
}

ExtractionConfig
ExtractionConfig::fwAb(int n, double phi)
{
    ExtractionConfig cfg;
    cfg.direction = Direction::Forward;
    cfg.layers.assign(n, {true, ThresholdKind::Absolute, 0.5, phi});
    return cfg;
}

ExtractionConfig
ExtractionConfig::hybrid(int n, double theta, double phi)
{
    ExtractionConfig cfg;
    cfg.direction = Direction::Backward;
    cfg.layers.assign(n, {true, ThresholdKind::Absolute, theta, phi});
    for (int i = n / 2; i < n; ++i)
        cfg.layers[i].kind = ThresholdKind::Cumulative;
    return cfg;
}

void
ExtractionConfig::serialize(std::ostream &os) const
{
    writeU32(os, direction == Direction::Backward ? 0u : 1u);
    writeU64(os, layers.size());
    for (const auto &lp : layers) {
        writeU32(os, lp.extract ? 1u : 0u);
        writeU32(os, lp.kind == ThresholdKind::Cumulative ? 0u : 1u);
        writeF64(os, lp.theta);
        writeF64(os, lp.phi);
    }
}

bool
ExtractionConfig::deserialize(std::istream &is)
{
    std::uint32_t dir;
    std::uint64_t n;
    if (!readU32(is, dir) || dir > 1 || !readU64(is, n))
        return false;
    // Bounded before allocation: a corrupt layer count must return
    // false, not throw bad_alloc (no real network has 2^16 weighted
    // layers).
    if (n > (1u << 16))
        return false;
    direction = dir == 0 ? Direction::Backward : Direction::Forward;
    layers.assign(n, LayerPolicy{});
    for (auto &lp : layers) {
        std::uint32_t extract, kind;
        if (!readU32(is, extract) || extract > 1 || !readU32(is, kind) ||
            kind > 1 || !readF64(is, lp.theta) || !readF64(is, lp.phi))
            return false;
        lp.extract = extract != 0;
        lp.kind = kind == 0 ? ThresholdKind::Cumulative
                            : ThresholdKind::Absolute;
    }
    return true;
}

} // namespace ptolemy::path
