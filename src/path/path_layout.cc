#include "path_layout.hh"

#include <cassert>

#include "nn/network.hh"

namespace ptolemy::path
{

PathLayout::PathLayout(const nn::Network &net, const ExtractionConfig &cfg)
{
    const auto &weighted = net.weightedNodes();
    assert(cfg.numLayers() == static_cast<int>(weighted.size()));
    for (int w = 0; w < cfg.numLayers(); ++w) {
        if (!cfg.layers[w].extract)
            continue;
        Segment s;
        s.weightedIndex = w;
        s.nodeId = weighted[w];
        s.bitOffset = bits;
        s.numBits = net.nodeInputShape(weighted[w]).numel();
        bits += s.numBits;
        segs.push_back(s);
    }
}

const PathLayout::Segment *
PathLayout::segmentForWeighted(int w) const
{
    for (const auto &s : segs)
        if (s.weightedIndex == w)
            return &s;
    return nullptr;
}

} // namespace ptolemy::path
