#include "trace.hh"

#include "nn/conv.hh"
#include "nn/linear.hh"
#include "nn/network.hh"

namespace ptolemy::path
{

ExtractionTrace
averageTraces(const std::vector<ExtractionTrace> &traces)
{
    ExtractionTrace avg;
    if (traces.empty())
        return avg;
    avg = traces[0];
    const std::size_t n = traces.size();
    for (std::size_t t = 1; t < n; ++t) {
        avg.pathBits += traces[t].pathBits;
        for (std::size_t l = 0; l < avg.layers.size(); ++l) {
            auto &dst = avg.layers[l];
            const auto &src = traces[t].layers[l];
            dst.importantOut += src.importantOut;
            dst.psumsConsidered += src.psumsConsidered;
            dst.sortedElems += src.sortedElems;
            dst.thresholdCmps += src.thresholdCmps;
            dst.masksWritten += src.masksWritten;
            dst.importantIn += src.importantIn;
            dst.selectScanPasses += src.selectScanPasses;
            dst.heapFallbackNeurons += src.heapFallbackNeurons;
            dst.heapPops += src.heapPops;
        }
    }
    avg.pathBits /= n;
    for (auto &lt : avg.layers) {
        lt.importantOut /= n;
        lt.psumsConsidered /= n;
        lt.sortedElems /= n;
        lt.thresholdCmps /= n;
        lt.masksWritten /= n;
        lt.importantIn /= n;
        lt.selectScanPasses /= n;
        lt.heapFallbackNeurons /= n;
        lt.heapPops /= n;
    }
    return avg;
}

std::size_t
weightedLayerMacs(const nn::Network &net, int node_id)
{
    const nn::Layer &layer = net.layerAt(node_id);
    const nn::Shape out = net.nodeOutputShape(node_id);
    if (layer.kind() == nn::LayerKind::Conv) {
        const auto &conv = static_cast<const nn::Conv2d &>(layer);
        return out.numel() * static_cast<std::size_t>(conv.inChannels()) *
               conv.kernel() * conv.kernel();
    }
    if (layer.kind() == nn::LayerKind::Linear) {
        const auto &lin = static_cast<const nn::Linear &>(layer);
        return static_cast<std::size_t>(lin.inFeatures()) *
               lin.outFeatures();
    }
    return 0;
}

std::size_t
networkMacs(const nn::Network &net)
{
    std::size_t total = 0;
    for (int id : net.weightedNodes())
        total += weightedLayerMacs(net, id);
    return total;
}

} // namespace ptolemy::path
