/**
 * @file
 * Bounded MPSC request queue with admission control and deadline-aware
 * micro-batch collection.
 *
 * Producers (any number of client threads) call tryPush(), which NEVER
 * blocks: when the queue is at capacity the push is refused and the
 * caller sheds the request (RequestStatus::kShed) instead of stalling.
 * The single consumer (the server's dispatcher thread) calls
 * collectBatch(), which blocks for the first request of a batch and
 * then tops the batch up until it fills, the batching window closes,
 * or the earliest deadline among the collected requests would expire
 * while waiting — whichever comes first.
 *
 * The ring storage is allocated once at construction; push/pop never
 * allocate.
 */

#ifndef PTOLEMY_SERVE_REQUEST_QUEUE_HH
#define PTOLEMY_SERVE_REQUEST_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "serve/serve_types.hh"

namespace ptolemy::serve
{

/**
 * Fixed-capacity multi-producer single-consumer queue of borrowed
 * ServeRequest pointers (the caller owns the requests; the queue only
 * routes addresses).
 */
class RequestQueue
{
  public:
    /** @param depth admission limit (must be >= 1). */
    explicit RequestQueue(std::size_t depth);

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /**
     * Admit @p r, or refuse without blocking. @return false when the
     * queue is full (admission control: the caller must shed) or
     * closed; true when the request was enqueued.
     */
    bool tryPush(ServeRequest *r);

    /**
     * Collect the next micro-batch into @p out (appended; caller
     * clears). Blocks until at least one request arrives or the queue
     * is closed AND drained (in which case it returns 0 — the consumer
     * should exit). After the first request, keeps collecting until
     * @p max_batch requests are gathered, @p window elapses from the
     * moment the batch opened, or waiting any longer would overshoot
     * the earliest deadline among the collected requests.
     */
    std::size_t collectBatch(std::vector<ServeRequest *> &out,
                             std::size_t max_batch,
                             std::chrono::microseconds window);

    /**
     * Close the queue: subsequent tryPush calls fail; collectBatch
     * keeps returning already-admitted requests until drained, then
     * returns 0. Idempotent.
     */
    void close();

    /** Instantaneous depth (racy by nature; for stats/backpressure). */
    std::size_t size() const;

    bool closed() const;

  private:
    /** Pop one request; mu must be held and count > 0. */
    ServeRequest *popLocked();

    mutable std::mutex mu;
    std::condition_variable cv;
    std::vector<ServeRequest *> ring; ///< fixed capacity, never resized
    std::size_t head = 0;             ///< index of the oldest entry
    std::size_t count = 0;            ///< entries currently queued
    bool isClosed = false;
};

} // namespace ptolemy::serve

#endif // PTOLEMY_SERVE_REQUEST_QUEUE_HH
