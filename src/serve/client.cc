#include "serve/client.hh"

#include <algorithm>
#include <chrono>
#include <thread>

namespace ptolemy::serve
{

RetryClient::RetryClient(DetectorServer &server, Options opt_)
    : srv(&server), opt(opt_)
{
    opt.maxAttempts = std::max(opt.maxAttempts, 1);
    opt.backoffMultiplier = std::max(opt.backoffMultiplier, 1.0);
}

RequestStatus
RetryClient::detect(ServeRequest &req, const nn::Tensor &x,
                    Clock::time_point deadline)
{
    double backoff = static_cast<double>(opt.initialBackoffMicros);
    for (int attempt = 0;; ++attempt) {
        req.reset(x, deadline);
        if (srv->submit(req) != RequestStatus::kShed)
            return srv->wait(req);
        if (attempt + 1 >= opt.maxAttempts)
            return RequestStatus::kShed; // budget exhausted
        // Backing off past the request's own deadline is pointless:
        // give up as shed rather than sleep into certain expiry.
        const auto pause =
            std::chrono::microseconds(static_cast<std::uint64_t>(backoff));
        if (deadline != Clock::time_point::max() &&
            Clock::now() + pause >= deadline)
            return RequestStatus::kShed;
        ++retried;
        std::this_thread::sleep_for(pause);
        backoff *= opt.backoffMultiplier;
    }
}

} // namespace ptolemy::serve
