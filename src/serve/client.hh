/**
 * @file
 * RetryClient: blocking convenience wrapper over DetectorServer with
 * exponential-backoff retry on shed.
 *
 * Admission control resolves overload by shedding; a well-behaved
 * client responds by backing off and retrying rather than hammering
 * the queue. RetryClient packages that loop: submit, and on kShed
 * sleep an exponentially growing backoff before trying again, up to a
 * bounded attempt budget. Any other terminal status is returned as-is
 * (a deadline miss or an execution error is not retryable — the
 * request's moment has passed).
 */

#ifndef PTOLEMY_SERVE_CLIENT_HH
#define PTOLEMY_SERVE_CLIENT_HH

#include <cstdint>

#include "serve/server.hh"
#include "serve/serve_types.hh"

namespace ptolemy::serve
{

/**
 * Per-client-thread retry helper (not thread-safe; one instance per
 * submitting thread, like DetectorSession).
 */
class RetryClient
{
  public:
    struct Options
    {
        int maxAttempts = 4;                  ///< total submits per request
        std::uint32_t initialBackoffMicros = 100;
        double backoffMultiplier = 2.0;       ///< growth per retry
    };

    explicit RetryClient(DetectorServer &server)
        : RetryClient(server, Options())
    {
    }

    RetryClient(DetectorServer &server, Options opt);

    /**
     * Serve @p x through @p req (caller-owned, reused across calls):
     * reset, submit, wait; on shed, back off and retry. @return the
     * final terminal status — kOk (req.decision valid), kShed (budget
     * exhausted), kDeadlineExceeded or kError.
     */
    RequestStatus detect(ServeRequest &req, const nn::Tensor &x,
                         Clock::time_point deadline =
                             Clock::time_point::max());

    /** Total shed-then-retried submissions across all detect calls. */
    std::uint64_t retries() const { return retried; }

  private:
    DetectorServer *srv;
    Options opt;
    std::uint64_t retried = 0;
};

} // namespace ptolemy::serve

#endif // PTOLEMY_SERVE_CLIENT_HH
