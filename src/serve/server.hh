/**
 * @file
 * DetectorServer: the robust in-process serving tier over the
 * Engine/Session split.
 *
 * Architecture: client threads submit() preallocated ServeRequest
 * objects into a bounded RequestQueue (admission control sheds instead
 * of blocking). One dispatcher thread collects deadline-aware
 * micro-batches and executes each as a single fused
 * DetectorSession::detectBatch over the configured thread pool, then
 * resolves every request in the batch to exactly one typed terminal
 * status:
 *
 *  - kOk               served; Decision bit-identical to a direct
 *                      detectBatch over the same model.
 *  - kShed             refused at admission (queue at queueDepth).
 *  - kDeadlineExceeded expired before execution (checked when the
 *                      batch is formed).
 *  - kError            execution threw (poisoned request, or a fault
 *                      from inside the fused inference batch, which
 *                      the thread pool rethrows on the dispatcher —
 *                      see ThreadPool's exception contract). The
 *                      server itself survives and keeps serving.
 *
 * Hot model swap (RCU-style): swapModel() loads a fresh DetectorModel
 * from a signature-keyed save() artifact off to the side and publishes
 * it atomically; the batch in flight finishes on the old model, the
 * next batch pins the new one. A failed load (ModelLoadError, including
 * injected swap-during-load faults) leaves the old model serving.
 *
 * Fault injection: pass a core::ServeFaultPlan to construct the server
 * under a deterministic failure campaign (stalled batches, poisoned
 * requests, swap-during-load). The conservation contract —
 * stats().conserved() once quiescent, no crash, no deadlock, no lost
 * request — holds under any plan.
 */

#ifndef PTOLEMY_SERVE_SERVER_HH
#define PTOLEMY_SERVE_SERVER_HH

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/detector_session.hh"
#include "core/fault_injection.hh"
#include "serve/request_queue.hh"
#include "serve/serve_types.hh"

namespace ptolemy::serve
{

/**
 * In-process detection server: bounded queue, micro-batching
 * dispatcher, hot swap. Thread-safe entry points: submit(), wait(),
 * swapModel(), stats(), queueDepth() may be called from any thread.
 */
class DetectorServer
{
  public:
    /**
     * Starts the dispatcher thread immediately.
     * @param model initial fitted model (borrowed; must outlive the
     *        server or every model swapped in after it).
     * @param cfg tier knobs.
     * @param faults optional fault plan (borrowed; campaign counters
     *        are read back by the caller). nullptr = inject nothing.
     */
    explicit DetectorServer(const core::DetectorModel &model,
                            ServeConfig cfg = {},
                            core::ServeFaultPlan *faults = nullptr);

    /** Stops and joins the dispatcher (drains admitted requests). */
    ~DetectorServer();

    DetectorServer(const DetectorServer &) = delete;
    DetectorServer &operator=(const DetectorServer &) = delete;

    /**
     * Submit @p r (previously reset() with its input and deadline).
     * Never blocks. @return kQueued when admitted — the request now
     * belongs to the server until it resolves (wait() for it) — or
     * kShed when admission control refused it (the request is already
     * resolved; retry via RetryClient or give up). Submitting to a
     * stopped server sheds.
     */
    RequestStatus submit(ServeRequest &r);

    /** Block until @p r resolves; @return its terminal status. */
    RequestStatus wait(ServeRequest &r);

    /**
     * Hot model swap: build + load a fresh DetectorModel from a
     * save() artifact at @p path (validated against the serving
     * network's architecture signature) and publish it. In-flight
     * batches finish on the old model; batches formed after the swap
     * pin the new one. @return true on success; false when the load
     * failed (old model keeps serving, stats().failedSwaps bumped).
     */
    bool swapModel(const std::string &path);

    /**
     * Close admission and drain: already-admitted requests still
     * execute (deadlines permitting), then the dispatcher exits.
     * Idempotent; the destructor calls it.
     */
    void stop();

    ServeStatsSnapshot stats() const { return counters.snapshot(); }

    /** Instantaneous queue depth (for load probes). */
    std::size_t queueDepth() const { return queue.size(); }

    /** Pin the currently-published model (tests: decision bit-identity
     *  against a direct session over the same model). */
    std::shared_ptr<const core::DetectorModel> pinModel() const;

  private:
    void dispatchLoop();

    /** Execute one collected batch: fault hooks, deadline triage,
     *  poison triage, one fused detectBatch, per-request resolution. */
    void executeBatch(std::vector<ServeRequest *> &batch);

    /** Resolve @p r to terminal status @p s (bumps the matching
     *  counter, stamps completedAt, wakes waiters). */
    void resolve(ServeRequest &r, RequestStatus s);

    ServeConfig cfg;
    core::ServeFaultPlan *faults; ///< borrowed, may be nullptr
    ServeStats counters;
    RequestQueue queue;

    std::atomic<std::uint64_t> seqCounter{0}; ///< submit ordinals

    // Published model (RCU): readers pin a shared_ptr under modelMu;
    // swapModel publishes a replacement. The initial model is borrowed
    // (aliasing shared_ptr with no control block ownership).
    mutable std::mutex modelMu;
    std::shared_ptr<const core::DetectorModel> curModel;

    // Completion signalling: resolvers store the request's atomic
    // status, then take-and-drop doneMu before notifying, so a waiter
    // between its predicate check and its sleep cannot miss the wake.
    std::mutex doneMu;
    std::condition_variable doneCv;

    // Dispatcher-owned serving state (no locks: single consumer).
    std::shared_ptr<const core::DetectorModel> pinned;
    std::unique_ptr<core::DetectorSession> session;
    std::uint64_t batchSeq = 0;
    std::vector<ServeRequest *> batch;    ///< collected micro-batch
    std::vector<ServeRequest *> live;     ///< survivors of triage
    std::vector<const nn::Tensor *> xs;   ///< inputs of `live`
    std::vector<core::Decision> outs;     ///< persistent warmed results

    std::thread dispatcher; ///< started last, joined by stop()
};

} // namespace ptolemy::serve

#endif // PTOLEMY_SERVE_SERVER_HH
