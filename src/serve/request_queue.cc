#include "serve/request_queue.hh"

#include <algorithm>

namespace ptolemy::serve
{

RequestQueue::RequestQueue(std::size_t depth)
    : ring(std::max<std::size_t>(depth, 1), nullptr)
{
}

bool
RequestQueue::tryPush(ServeRequest *r)
{
    {
        std::lock_guard<std::mutex> lk(mu);
        if (isClosed || count == ring.size())
            return false;
        ring[(head + count) % ring.size()] = r;
        ++count;
    }
    cv.notify_one();
    return true;
}

ServeRequest *
RequestQueue::popLocked()
{
    ServeRequest *r = ring[head];
    ring[head] = nullptr;
    head = (head + 1) % ring.size();
    --count;
    return r;
}

std::size_t
RequestQueue::collectBatch(std::vector<ServeRequest *> &out,
                           std::size_t max_batch,
                           std::chrono::microseconds window)
{
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return count > 0 || isClosed; });
    if (count == 0)
        return 0; // closed and drained: consumer exits

    // The batch opens on its first request; the window is measured from
    // here, not from the last arrival, so a trickle of stragglers can't
    // hold the batch open indefinitely.
    out.push_back(popLocked());
    const Clock::time_point window_end = Clock::now() + window;

    while (out.size() < max_batch) {
        if (count > 0) {
            out.push_back(popLocked());
            continue;
        }
        if (isClosed)
            break;
        // Wait bound: the window close, tightened to the earliest
        // deadline already collected — holding an about-to-expire
        // request to wait for company would expire it pointlessly.
        // The min() also keeps the bound finite (deadline-less
        // requests carry time_point::max(), which must never reach
        // wait_until).
        Clock::time_point bound = window_end;
        for (const ServeRequest *r : out)
            bound = std::min(bound, r->deadline);
        if (Clock::now() >= bound)
            break;
        if (cv.wait_until(lk, bound) == std::cv_status::timeout)
            break;
    }
    return out.size();
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        isClosed = true;
    }
    cv.notify_all();
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lk(mu);
    return count;
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lk(mu);
    return isClosed;
}

} // namespace ptolemy::serve
