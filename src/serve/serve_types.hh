/**
 * @file
 * Serving-tier vocabulary types: per-request lifecycle, typed
 * resolution statuses, tier configuration and conservation-checked
 * statistics.
 *
 * The robustness contract the whole tier is built around: every
 * submitted request resolves to EXACTLY ONE terminal status — kOk,
 * kShed, kDeadlineExceeded or kError — under overload, poisoned
 * requests, stalled batches and mid-traffic model swaps alike. Nothing
 * crashes, nothing deadlocks, nothing is lost: counted in equals
 * counted out (ServeStatsSnapshot::conserved()).
 */

#ifndef PTOLEMY_SERVE_SERVE_TYPES_HH
#define PTOLEMY_SERVE_SERVE_TYPES_HH

#include <atomic>
#include <chrono>
#include <cstdint>

#include "core/detector_model.hh"

namespace ptolemy
{
class ThreadPool;
}

namespace ptolemy::telemetry
{
class TelemetryHub;
}

namespace ptolemy::serve
{

/** The serving tier's clock (deadlines, latency accounting). */
using Clock = std::chrono::steady_clock;

/**
 * Request lifecycle. kPending/kQueued are transient; the four terminal
 * states are the typed per-request outcomes of the robustness
 * contract.
 */
enum class RequestStatus : std::uint8_t
{
    kPending = 0,         ///< constructed / reset, not yet submitted
    kQueued,              ///< admitted, waiting for or inside a batch
    kOk,                  ///< served; ServeRequest::decision is valid
    kShed,                ///< rejected by admission control (queue full)
    kDeadlineExceeded,    ///< expired at dequeue / batch formation
    kError,               ///< execution threw; see ServeRequest::error
};

/** True for the four terminal states. */
inline bool
isResolved(RequestStatus s)
{
    return s >= RequestStatus::kOk;
}

inline const char *
requestStatusName(RequestStatus s)
{
    switch (s) {
    case RequestStatus::kPending: return "pending";
    case RequestStatus::kQueued: return "queued";
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kShed: return "shed";
    case RequestStatus::kDeadlineExceeded: return "deadline_exceeded";
    case RequestStatus::kError: return "error";
    }
    return "?";
}

/**
 * One in-flight detection request. The caller owns the object and the
 * input tensor; both must stay alive and untouched from submit() until
 * the request resolves (wait() on it). A resolved request is reusable:
 * reset() re-arms it for the next submit, and its Decision keeps its
 * warmed buffers, so a steady-state client performs no heap allocation
 * per request.
 *
 * Not copyable or movable (the server holds its address while queued).
 * Preallocate slabs as std::vector<ServeRequest> slab(n) — constructed
 * at full size, never resized.
 */
struct ServeRequest
{
    const nn::Tensor *x = nullptr;          ///< borrowed input
    Clock::time_point deadline = Clock::time_point::max();
    core::Decision decision;                ///< valid when status kOk
    Clock::time_point submittedAt{};        ///< stamped by submit()
    Clock::time_point completedAt{};        ///< stamped at resolution
    std::uint64_t seq = 0;                  ///< submit ordinal (server)
    const char *error = "";                 ///< static reason for kError
    std::atomic<RequestStatus> status{RequestStatus::kPending};

    ServeRequest() = default;
    ServeRequest(const ServeRequest &) = delete;
    ServeRequest &operator=(const ServeRequest &) = delete;

    /** Re-arm for submission. Never call on a queued request. */
    void
    reset(const nn::Tensor &input,
          Clock::time_point dl = Clock::time_point::max())
    {
        x = &input;
        deadline = dl;
        seq = 0;
        error = "";
        status.store(RequestStatus::kPending, std::memory_order_relaxed);
    }

    /** Served-to-resolved latency (meaningful once resolved). */
    double
    latencyMicros() const
    {
        return std::chrono::duration<double, std::micro>(completedAt -
                                                         submittedAt)
            .count();
    }
};

/** Serving-tier knobs. */
struct ServeConfig
{
    /** Admission limit: submit() beyond this queue depth sheds
     *  immediately (producers are never blocked). */
    std::size_t queueDepth = 256;

    /** Micro-batch cap: a batch executes as soon as this many requests
     *  are collected. */
    std::size_t maxBatch = 16;

    /** Micro-batch window: the longest the dispatcher holds the first
     *  request of a batch waiting for company, in microseconds. The
     *  batch also flushes early when any collected request's deadline
     *  would expire inside the window. */
    std::uint32_t batchWindowMicros = 200;

    /** Default per-request deadline applied at submit() to requests
     *  that carry none (0 = requests without a deadline never
     *  expire). */
    std::uint32_t defaultDeadlineMicros = 0;

    /** Pool detectBatch fans out on; nullptr = the process-wide
     *  pool. */
    ThreadPool *pool = nullptr;

    /**
     * Optional telemetry hub (borrowed; must outlive the server).
     * When set, the dispatcher attaches it to its serving session —
     * every kOk Decision is ingested into the hub's per-slot shards —
     * and calls maybeSeal() between batches, so windows seal on the
     * dispatcher thread, never on a worker mid-batch. Telemetry
     * survives hot model swaps: the replacement session re-attaches
     * the same hub, and window/reference state carries across the
     * swap untouched.
     */
    telemetry::TelemetryHub *telemetry = nullptr;
};

/** Monotonic tier counters (readable while serving). */
struct ServeStatsSnapshot
{
    std::uint64_t submitted = 0;
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    std::uint64_t deadlineExceeded = 0;
    std::uint64_t errors = 0;
    std::uint64_t batches = 0;
    std::uint64_t swaps = 0;
    std::uint64_t failedSwaps = 0;

    /** Terminal resolutions. */
    std::uint64_t
    resolved() const
    {
        return ok + shed + deadlineExceeded + errors;
    }

    /** Counted in == counted out. Only meaningful once the tier is
     *  quiescent (drained or stopped). */
    bool
    conserved() const
    {
        return resolved() == submitted;
    }
};

/** Atomic counter block behind ServeStatsSnapshot. */
struct ServeStats
{
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> deadlineExceeded{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> swaps{0};
    std::atomic<std::uint64_t> failedSwaps{0};

    ServeStatsSnapshot
    snapshot() const
    {
        ServeStatsSnapshot s;
        s.submitted = submitted.load(std::memory_order_relaxed);
        s.ok = ok.load(std::memory_order_relaxed);
        s.shed = shed.load(std::memory_order_relaxed);
        s.deadlineExceeded =
            deadlineExceeded.load(std::memory_order_relaxed);
        s.errors = errors.load(std::memory_order_relaxed);
        s.batches = batches.load(std::memory_order_relaxed);
        s.swaps = swaps.load(std::memory_order_relaxed);
        s.failedSwaps = failedSwaps.load(std::memory_order_relaxed);
        return s;
    }
};

} // namespace ptolemy::serve

#endif // PTOLEMY_SERVE_SERVE_TYPES_HH
