#include "serve/server.hh"

#include <exception>
#include <span>

#include "telemetry/hub.hh"

namespace ptolemy::serve
{

DetectorServer::DetectorServer(const core::DetectorModel &model,
                               ServeConfig cfg_,
                               core::ServeFaultPlan *faults_)
    : cfg(cfg_), faults(faults_), queue(cfg_.queueDepth),
      curModel(std::shared_ptr<const core::DetectorModel>(), &model)
{
    if (cfg.maxBatch == 0)
        cfg.maxBatch = 1;
    batch.reserve(cfg.maxBatch);
    live.reserve(cfg.maxBatch);
    xs.reserve(cfg.maxBatch);
    outs.resize(cfg.maxBatch);
    dispatcher = std::thread([this] { dispatchLoop(); });
}

DetectorServer::~DetectorServer()
{
    stop();
}

RequestStatus
DetectorServer::submit(ServeRequest &r)
{
    r.submittedAt = Clock::now();
    if (cfg.defaultDeadlineMicros != 0 &&
        r.deadline == Clock::time_point::max())
        r.deadline = r.submittedAt +
                     std::chrono::microseconds(cfg.defaultDeadlineMicros);
    r.seq = seqCounter.fetch_add(1, std::memory_order_relaxed);
    counters.submitted.fetch_add(1, std::memory_order_relaxed);

    // Mark queued BEFORE the push: once the pointer is in the queue the
    // dispatcher may resolve it at any moment, and a late kQueued store
    // would stomp the terminal status.
    r.status.store(RequestStatus::kQueued, std::memory_order_release);
    if (!queue.tryPush(&r)) {
        resolve(r, RequestStatus::kShed); // admission control: never block
        return RequestStatus::kShed;
    }
    return RequestStatus::kQueued;
}

RequestStatus
DetectorServer::wait(ServeRequest &r)
{
    std::unique_lock<std::mutex> lk(doneMu);
    doneCv.wait(lk, [&] {
        return isResolved(r.status.load(std::memory_order_acquire));
    });
    return r.status.load(std::memory_order_acquire);
}

void
DetectorServer::resolve(ServeRequest &r, RequestStatus s)
{
    switch (s) {
    case RequestStatus::kOk:
        counters.ok.fetch_add(1, std::memory_order_relaxed);
        break;
    case RequestStatus::kShed:
        counters.shed.fetch_add(1, std::memory_order_relaxed);
        break;
    case RequestStatus::kDeadlineExceeded:
        counters.deadlineExceeded.fetch_add(1, std::memory_order_relaxed);
        break;
    default:
        counters.errors.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    r.completedAt = Clock::now();
    r.status.store(s, std::memory_order_release);
    // Empty critical section: a waiter that read the old status is
    // either already sleeping (the notify wakes it) or still holds
    // doneMu (we block here until it sleeps). Either way no lost wake.
    { std::lock_guard<std::mutex> lk(doneMu); }
    doneCv.notify_all();
}

std::shared_ptr<const core::DetectorModel>
DetectorServer::pinModel() const
{
    std::lock_guard<std::mutex> lk(modelMu);
    return curModel;
}

bool
DetectorServer::swapModel(const std::string &path)
{
    std::shared_ptr<const core::DetectorModel> cur = pinModel();
    try {
        // Build the replacement off to the side: the dispatcher keeps
        // serving the published model the whole time.
        auto fresh = std::make_shared<core::DetectorModel>(
            cur->network(), cur->config(), cur->numClasses());
        if (faults)
            faults->onSwapLoad();
        fresh->load(path); // throws ModelLoadError on any corruption
        {
            std::lock_guard<std::mutex> lk(modelMu);
            curModel = std::move(fresh);
        }
        counters.swaps.fetch_add(1, std::memory_order_relaxed);
        return true;
    } catch (const core::ModelLoadError &) {
        counters.failedSwaps.fetch_add(1, std::memory_order_relaxed);
        return false; // old model keeps serving
    }
}

void
DetectorServer::stop()
{
    queue.close();
    if (dispatcher.joinable())
        dispatcher.join();
}

void
DetectorServer::dispatchLoop()
{
    pinned = pinModel();
    session = std::make_unique<core::DetectorSession>(*pinned);
    session->attachTelemetry(cfg.telemetry);
    for (;;) {
        batch.clear();
        if (queue.collectBatch(batch, cfg.maxBatch,
                               std::chrono::microseconds(
                                   cfg.batchWindowMicros)) == 0)
            return; // closed and drained
        executeBatch(batch);
    }
}

void
DetectorServer::executeBatch(std::vector<ServeRequest *> &formed)
{
    counters.batches.fetch_add(1, std::memory_order_relaxed);
    if (faults)
        faults->onBatchFormed(++batchSeq); // may stall (injected delay)

    // Pin the latest published model: a swap lands between batches,
    // never inside one.
    {
        std::shared_ptr<const core::DetectorModel> now = pinModel();
        if (now != pinned) {
            pinned = std::move(now);
            session = std::make_unique<core::DetectorSession>(*pinned);
            // The hub outlives any one model: windows, reference and
            // drift state carry across the swap.
            session->attachTelemetry(cfg.telemetry);
        }
    }

    // Triage: expire and poison BEFORE the fused batch, so one bad
    // request can't take its batchmates down with it.
    const Clock::time_point now = Clock::now();
    live.clear();
    xs.clear();
    for (ServeRequest *r : formed) {
        if (r->deadline < now) {
            resolve(*r, RequestStatus::kDeadlineExceeded);
            continue;
        }
        if (faults && faults->poisoned(r->seq)) {
            try {
                faults->throwPoison(r->seq);
            } catch (const std::exception &) {
                r->error = "poisoned request";
                resolve(*r, RequestStatus::kError);
            }
            continue;
        }
        live.push_back(r);
        xs.push_back(r->x);
    }
    if (live.empty())
        return;

    // One fused detectBatch for the survivors. A throw from inside the
    // fan-out (the pool rethrows the lowest-index task exception here)
    // fails the whole batch to kError — the server itself survives.
    bool ok = true;
    try {
        session->detectBatch(
            std::span<const nn::Tensor *const>(xs.data(), xs.size()),
            std::span<core::Decision>(outs.data(), live.size()),
            cfg.pool);
    } catch (const std::exception &) {
        ok = false;
    }
    for (std::size_t i = 0; i < live.size(); ++i) {
        if (ok) {
            live[i]->decision = outs[i]; // capacity-reusing copy
            resolve(*live[i], RequestStatus::kOk);
        } else {
            live[i]->error = "batch execution failed";
            resolve(*live[i], RequestStatus::kError);
        }
    }
    // Seal on the dispatcher between batches: ingest is quiescent here
    // (the fused batch above has fully joined), which is exactly the
    // hub's seal-side contract.
    if (cfg.telemetry != nullptr)
        cfg.telemetry->maybeSeal();
}

} // namespace ptolemy::serve
