/**
 * @file
 * The Ptolemy ISA (paper Sec. IV-A, Table I).
 *
 * CISC-style 24-bit fixed-length instructions with 16 general-purpose
 * registers. Four instruction classes:
 *  - Inference:          inf, infsp, csps
 *  - Path construction:  sort, acum, genmasks, findneuron, findrf
 *  - Classification:     cls
 *  - Others:             mov (imm16), movr, dec, jne, halt
 *
 * Encoding: [23:20] opcode. Register operands occupy successive 4-bit
 * fields from [19:16] downward; mov/jne carry a 16-bit immediate in
 * [15:0]. All detection instructions use register operands only, so the
 * compiler moves statically-computed constants (receptive-field sizes,
 * thresholds, trip counts) into registers first — exactly the paper's
 * Listing 1 idiom.
 */

#ifndef PTOLEMY_ISA_INSTRUCTION_HH
#define PTOLEMY_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

namespace ptolemy::isa
{

/** Number of general-purpose registers. */
inline constexpr int kNumRegisters = 16;

/** Opcodes, 4 bits. */
enum class Opcode : std::uint8_t
{
    Inf = 0x0,        ///< inf in, w, out — run one layer's inference
    InfSp = 0x1,      ///< infsp in, w, out, psum — inference storing psums
    Csps = 0x2,       ///< csps outNeuron, layer, psum — recompute psums
    Sort = 0x3,       ///< sort src, len, dst — sort a psum sequence
    Acum = 0x4,       ///< acum src, dst, thr — accumulate to threshold
    GenMasks = 0x5,   ///< genmasks src, dst — masks -> path bits
    FindNeuron = 0x6, ///< findneuron layer, pos, dst — neuron address
    FindRf = 0x7,     ///< findrf neuron, dst — receptive-field address
    Cls = 0x8,        ///< cls classPath, actPath, result
    Mov = 0x9,        ///< mov rd, imm16
    MovR = 0xA,       ///< movr rd, rs
    Dec = 0xB,        ///< dec rd
    Jne = 0xC,        ///< jne rs, target — jump when rs != 0
    Halt = 0xF,       ///< end of program
};

/** Instruction class (Table I row groups). */
enum class InstrClass
{
    Inference,
    PathConstruction,
    Classification,
    Other,
};

/** Mnemonic for an opcode. */
const char *opcodeName(Opcode op);

/** Number of register operands an opcode takes. */
int opcodeNumRegs(Opcode op);

/** True when the opcode carries a 16-bit immediate. */
bool opcodeHasImm(Opcode op);

/** Class of an opcode. */
InstrClass opcodeClass(Opcode op);

/**
 * One decoded instruction. Unused operand slots are zero.
 */
struct Instruction
{
    Opcode op = Opcode::Halt;
    std::uint8_t r0 = 0, r1 = 0, r2 = 0, r3 = 0;
    std::uint16_t imm = 0;

    /** Pack into the low 24 bits of a word. */
    std::uint32_t encode() const;

    /** Unpack; fields beyond the opcode's arity read as zero. */
    static Instruction decode(std::uint32_t word);

    /** Assembly-like rendering, e.g. "sort r1, r3, r6". */
    std::string toString() const;

    bool operator==(const Instruction &other) const = default;
};

// Convenience constructors -------------------------------------------------

Instruction makeInf(int r_in, int r_w, int r_out);
Instruction makeInfSp(int r_in, int r_w, int r_out, int r_psum);
Instruction makeCsps(int r_neuron, int r_layer, int r_psum);
Instruction makeSort(int r_src, int r_len, int r_dst);
Instruction makeAcum(int r_src, int r_dst, int r_thr);
Instruction makeGenMasks(int r_src, int r_dst);
Instruction makeFindNeuron(int r_layer, int r_pos, int r_dst);
Instruction makeFindRf(int r_neuron, int r_dst);
Instruction makeCls(int r_cpath, int r_apath, int r_result);
Instruction makeMov(int rd, std::uint16_t imm);
Instruction makeMovR(int rd, int rs);
Instruction makeDec(int rd);
Instruction makeJne(int rs, std::uint16_t target);
Instruction makeHalt();

} // namespace ptolemy::isa

#endif // PTOLEMY_ISA_INSTRUCTION_HH
