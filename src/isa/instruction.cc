#include "instruction.hh"

#include <cstdio>

namespace ptolemy::isa
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Inf: return "inf";
      case Opcode::InfSp: return "infsp";
      case Opcode::Csps: return "csps";
      case Opcode::Sort: return "sort";
      case Opcode::Acum: return "acum";
      case Opcode::GenMasks: return "genmasks";
      case Opcode::FindNeuron: return "findneuron";
      case Opcode::FindRf: return "findrf";
      case Opcode::Cls: return "cls";
      case Opcode::Mov: return "mov";
      case Opcode::MovR: return "movr";
      case Opcode::Dec: return "dec";
      case Opcode::Jne: return "jne";
      case Opcode::Halt: return "halt";
    }
    return "?";
}

int
opcodeNumRegs(Opcode op)
{
    switch (op) {
      case Opcode::Inf: return 3;
      case Opcode::InfSp: return 4;
      case Opcode::Csps: return 3;
      case Opcode::Sort: return 3;
      case Opcode::Acum: return 3;
      case Opcode::GenMasks: return 2;
      case Opcode::FindNeuron: return 3;
      case Opcode::FindRf: return 2;
      case Opcode::Cls: return 3;
      case Opcode::Mov: return 1;
      case Opcode::MovR: return 2;
      case Opcode::Dec: return 1;
      case Opcode::Jne: return 1;
      case Opcode::Halt: return 0;
    }
    return 0;
}

bool
opcodeHasImm(Opcode op)
{
    return op == Opcode::Mov || op == Opcode::Jne;
}

InstrClass
opcodeClass(Opcode op)
{
    switch (op) {
      case Opcode::Inf:
      case Opcode::InfSp:
      case Opcode::Csps:
        return InstrClass::Inference;
      case Opcode::Sort:
      case Opcode::Acum:
      case Opcode::GenMasks:
      case Opcode::FindNeuron:
      case Opcode::FindRf:
        return InstrClass::PathConstruction;
      case Opcode::Cls:
        return InstrClass::Classification;
      default:
        return InstrClass::Other;
    }
}

std::uint32_t
Instruction::encode() const
{
    std::uint32_t w = static_cast<std::uint32_t>(op) << 20;
    if (opcodeHasImm(op)) {
        w |= static_cast<std::uint32_t>(r0 & 0xF) << 16;
        w |= imm;
        return w;
    }
    const std::uint8_t regs[4] = {r0, r1, r2, r3};
    int shift = 16;
    for (int i = 0; i < opcodeNumRegs(op); ++i, shift -= 4)
        w |= static_cast<std::uint32_t>(regs[i] & 0xF) << shift;
    return w;
}

Instruction
Instruction::decode(std::uint32_t word)
{
    Instruction ins;
    ins.op = static_cast<Opcode>((word >> 20) & 0xF);
    if (opcodeHasImm(ins.op)) {
        ins.r0 = (word >> 16) & 0xF;
        ins.imm = word & 0xFFFF;
        return ins;
    }
    std::uint8_t regs[4] = {0, 0, 0, 0};
    int shift = 16;
    for (int i = 0; i < opcodeNumRegs(ins.op); ++i, shift -= 4)
        regs[i] = (word >> shift) & 0xF;
    ins.r0 = regs[0];
    ins.r1 = regs[1];
    ins.r2 = regs[2];
    ins.r3 = regs[3];
    return ins;
}

std::string
Instruction::toString() const
{
    char buf[96];
    if (op == Opcode::Mov) {
        std::snprintf(buf, sizeof(buf), "mov r%d, 0x%x", r0, imm);
    } else if (op == Opcode::Jne) {
        std::snprintf(buf, sizeof(buf), "jne r%d, %d", r0, imm);
    } else {
        const int n = opcodeNumRegs(op);
        const std::uint8_t regs[4] = {r0, r1, r2, r3};
        std::string s = opcodeName(op);
        for (int i = 0; i < n; ++i) {
            s += i == 0 ? " r" : ", r";
            s += std::to_string(regs[i]);
        }
        return s;
    }
    return buf;
}

Instruction
makeInf(int r_in, int r_w, int r_out)
{
    return {Opcode::Inf, static_cast<std::uint8_t>(r_in),
            static_cast<std::uint8_t>(r_w),
            static_cast<std::uint8_t>(r_out), 0, 0};
}

Instruction
makeInfSp(int r_in, int r_w, int r_out, int r_psum)
{
    return {Opcode::InfSp, static_cast<std::uint8_t>(r_in),
            static_cast<std::uint8_t>(r_w), static_cast<std::uint8_t>(r_out),
            static_cast<std::uint8_t>(r_psum), 0};
}

Instruction
makeCsps(int r_neuron, int r_layer, int r_psum)
{
    return {Opcode::Csps, static_cast<std::uint8_t>(r_neuron),
            static_cast<std::uint8_t>(r_layer),
            static_cast<std::uint8_t>(r_psum), 0, 0};
}

Instruction
makeSort(int r_src, int r_len, int r_dst)
{
    return {Opcode::Sort, static_cast<std::uint8_t>(r_src),
            static_cast<std::uint8_t>(r_len),
            static_cast<std::uint8_t>(r_dst), 0, 0};
}

Instruction
makeAcum(int r_src, int r_dst, int r_thr)
{
    return {Opcode::Acum, static_cast<std::uint8_t>(r_src),
            static_cast<std::uint8_t>(r_dst),
            static_cast<std::uint8_t>(r_thr), 0, 0};
}

Instruction
makeGenMasks(int r_src, int r_dst)
{
    return {Opcode::GenMasks, static_cast<std::uint8_t>(r_src),
            static_cast<std::uint8_t>(r_dst), 0, 0, 0};
}

Instruction
makeFindNeuron(int r_layer, int r_pos, int r_dst)
{
    return {Opcode::FindNeuron, static_cast<std::uint8_t>(r_layer),
            static_cast<std::uint8_t>(r_pos),
            static_cast<std::uint8_t>(r_dst), 0, 0};
}

Instruction
makeFindRf(int r_neuron, int r_dst)
{
    return {Opcode::FindRf, static_cast<std::uint8_t>(r_neuron),
            static_cast<std::uint8_t>(r_dst), 0, 0, 0};
}

Instruction
makeCls(int r_cpath, int r_apath, int r_result)
{
    return {Opcode::Cls, static_cast<std::uint8_t>(r_cpath),
            static_cast<std::uint8_t>(r_apath),
            static_cast<std::uint8_t>(r_result), 0, 0};
}

Instruction
makeMov(int rd, std::uint16_t imm)
{
    return {Opcode::Mov, static_cast<std::uint8_t>(rd), 0, 0, 0, imm};
}

Instruction
makeMovR(int rd, int rs)
{
    return {Opcode::MovR, static_cast<std::uint8_t>(rd),
            static_cast<std::uint8_t>(rs), 0, 0, 0};
}

Instruction
makeDec(int rd)
{
    return {Opcode::Dec, static_cast<std::uint8_t>(rd), 0, 0, 0, 0};
}

Instruction
makeJne(int rs, std::uint16_t target)
{
    return {Opcode::Jne, static_cast<std::uint8_t>(rs), 0, 0, 0, target};
}

Instruction
makeHalt()
{
    return {Opcode::Halt, 0, 0, 0, 0, 0};
}

} // namespace ptolemy::isa
