/**
 * @file
 * Compiled Ptolemy program: the instruction stream plus per-instruction
 * workload metadata.
 *
 * The metadata plays the role of the statically-known model configuration
 * the paper's compiler bakes into each program (layer shapes, receptive
 * field sizes) together with the profile-measured dynamic counts (number
 * of important neurons); the cycle-level simulator uses it to cost each
 * instruction. Programs stay tiny — the paper quotes ~30 static
 * instructions (< 100 bytes) for the largest variant.
 */

#ifndef PTOLEMY_ISA_PROGRAM_HH
#define PTOLEMY_ISA_PROGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace ptolemy::isa
{

/** Workload annotation for one instruction. */
struct InstrMeta
{
    int layerNode = -1;          ///< graph node id (inference instrs)
    std::size_t macs = 0;        ///< MACs (inf/infsp/csps)
    std::size_t ifmBytes = 0;    ///< input feature-map DMA bytes
    std::size_t wBytes = 0;      ///< weight DMA bytes
    std::size_t ofmBytes = 0;    ///< output feature-map DMA bytes
    std::size_t psumBytes = 0;   ///< partial-sum store/load bytes (infsp)
    std::size_t maskBits = 0;    ///< single-bit masks written
    std::size_t seqLen = 0;      ///< sort sequence length
    std::size_t accumLen = 0;    ///< acum elements consumed (profiled avg)
    std::size_t bits = 0;        ///< genmasks / cls path bits
    std::size_t mcuOps = 0;      ///< controller ops (cls random forest)
    std::size_t tripCount = 1;   ///< loop executions this instr sees
    std::size_t selectPasses = 0; ///< sort: ranked-prefix argmax sweeps
                                  ///< (0 = full bitonic sort/merge)
    std::size_t heapPops = 0;     ///< sort: ranked-prefix heap-fallback pops
};

/**
 * Instruction stream with metadata.
 */
class Program
{
  public:
    /** Append an instruction. @return its index. */
    std::size_t append(const Instruction &ins, const InstrMeta &meta = {});

    std::size_t size() const { return instrs.size(); }
    const Instruction &instruction(std::size_t i) const { return instrs[i]; }
    Instruction &instruction(std::size_t i) { return instrs[i]; }
    const InstrMeta &meta(std::size_t i) const { return metas[i]; }
    InstrMeta &meta(std::size_t i) { return metas[i]; }

    /** Static code size in bytes (24-bit instructions). */
    std::size_t codeBytes() const { return instrs.size() * 3; }

    /** Multi-line disassembly. */
    std::string disassemble() const;

  private:
    std::vector<Instruction> instrs;
    std::vector<InstrMeta> metas;
};

} // namespace ptolemy::isa

#endif // PTOLEMY_ISA_PROGRAM_HH
