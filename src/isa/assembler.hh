/**
 * @file
 * Two-pass assembler for the Ptolemy ISA.
 *
 * Supports the paper's Listing-1 syntax: `.set NAME VALUE` directives,
 * `<label>` definitions, `jne rX, <label>` references, register operands
 * `rN`, and hex/decimal immediates. Intended for tests and for writing
 * hand-crafted detection kernels; the compiler emits Program objects
 * directly.
 */

#ifndef PTOLEMY_ISA_ASSEMBLER_HH
#define PTOLEMY_ISA_ASSEMBLER_HH

#include <string>

#include "isa/program.hh"

namespace ptolemy::isa
{

/** Assembly result: program plus error diagnostics. */
struct AssemblyResult
{
    Program program;
    bool ok = false;
    std::string error; ///< first diagnostic when !ok
};

/** Assemble @p source into a program. */
AssemblyResult assemble(const std::string &source);

} // namespace ptolemy::isa

#endif // PTOLEMY_ISA_ASSEMBLER_HH
