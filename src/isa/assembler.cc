#include "assembler.hh"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace ptolemy::isa
{

namespace
{

/** Strip comments (';' to end of line) and surrounding whitespace. */
std::string
cleanLine(std::string line)
{
    const auto semi = line.find(';');
    if (semi != std::string::npos)
        line.erase(semi);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = line.find_last_not_of(" \t\r");
    return line.substr(first, last - first + 1);
}

/** Split an operand list on commas/whitespace. */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::optional<Opcode>
opcodeFromName(const std::string &name)
{
    static const std::map<std::string, Opcode> table = {
        {"inf", Opcode::Inf},       {"infsp", Opcode::InfSp},
        {"csps", Opcode::Csps},     {"sort", Opcode::Sort},
        {"acum", Opcode::Acum},     {"genmasks", Opcode::GenMasks},
        {"findneuron", Opcode::FindNeuron}, {"findrf", Opcode::FindRf},
        {"cls", Opcode::Cls},       {"mov", Opcode::Mov},
        {"movr", Opcode::MovR},     {"dec", Opcode::Dec},
        {"jne", Opcode::Jne},       {"halt", Opcode::Halt},
    };
    const auto it = table.find(name);
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

/** Parse "rN" into a register number. */
std::optional<int>
parseReg(const std::string &tok)
{
    if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R'))
        return std::nullopt;
    int v = 0;
    for (std::size_t i = 1; i < tok.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return std::nullopt;
        v = v * 10 + (tok[i] - '0');
    }
    if (v >= kNumRegisters)
        return std::nullopt;
    return v;
}

/** Parse a decimal or 0x-prefixed immediate. */
std::optional<long>
parseImm(const std::string &tok,
         const std::map<std::string, long> &constants)
{
    const auto it = constants.find(tok);
    if (it != constants.end())
        return it->second;
    try {
        std::size_t pos = 0;
        const long v = std::stol(tok, &pos, 0);
        if (pos != tok.size())
            return std::nullopt;
        return v;
    } catch (...) {
        return std::nullopt;
    }
}

} // namespace

AssemblyResult
assemble(const std::string &source)
{
    AssemblyResult result;
    std::map<std::string, long> constants;
    std::map<std::string, std::uint16_t> labels;

    // Pass 1: collect labels and .set constants, count instructions.
    std::vector<std::string> lines;
    {
        std::istringstream iss(source);
        std::string raw;
        std::uint16_t pc = 0;
        while (std::getline(iss, raw)) {
            const std::string line = cleanLine(raw);
            if (line.empty())
                continue;
            if (line[0] == '.') { // directive
                const auto toks = splitOperands(line.substr(1));
                if (toks.size() == 3 && toks[0] == "set") {
                    // handled in pass 2 via constants map (value parse now)
                } else if (toks.size() != 3) {
                    result.error = "bad directive: " + line;
                    return result;
                }
                const auto v = parseImm(toks[2], constants);
                if (!v) {
                    result.error = "bad constant: " + line;
                    return result;
                }
                constants[toks[1]] = *v;
                continue;
            }
            if (line.front() == '<' && line.back() == '>') {
                labels[line.substr(1, line.size() - 2)] = pc;
                continue;
            }
            lines.push_back(line);
            ++pc;
        }
    }

    // Pass 2: encode.
    for (const auto &line : lines) {
        std::istringstream ls(line);
        std::string mnemonic;
        ls >> mnemonic;
        const auto op = opcodeFromName(mnemonic);
        if (!op) {
            result.error = "unknown mnemonic: " + line;
            return result;
        }
        std::string rest;
        std::getline(ls, rest);
        const auto toks = splitOperands(rest);

        Instruction ins;
        ins.op = *op;
        if (*op == Opcode::Mov) {
            const auto rd = toks.size() == 2 ? parseReg(toks[0])
                                             : std::nullopt;
            const auto imm = toks.size() == 2
                ? parseImm(toks[1], constants)
                : std::nullopt;
            if (!rd || !imm) {
                result.error = "bad mov: " + line;
                return result;
            }
            ins.r0 = static_cast<std::uint8_t>(*rd);
            ins.imm = static_cast<std::uint16_t>(*imm);
        } else if (*op == Opcode::Jne) {
            const auto rs = toks.size() == 2 ? parseReg(toks[0])
                                             : std::nullopt;
            if (!rs) {
                result.error = "bad jne: " + line;
                return result;
            }
            std::string target = toks[1];
            if (target.front() == '<' && target.back() == '>')
                target = target.substr(1, target.size() - 2);
            const auto lbl = labels.find(target);
            std::optional<long> imm;
            if (lbl != labels.end())
                imm = lbl->second;
            else
                imm = parseImm(target, constants);
            if (!imm) {
                result.error = "bad jump target: " + line;
                return result;
            }
            ins.r0 = static_cast<std::uint8_t>(*rs);
            ins.imm = static_cast<std::uint16_t>(*imm);
        } else {
            const int need = opcodeNumRegs(*op);
            if (static_cast<int>(toks.size()) != need) {
                result.error = "operand count mismatch: " + line;
                return result;
            }
            std::uint8_t regs[4] = {0, 0, 0, 0};
            for (int i = 0; i < need; ++i) {
                const auto r = parseReg(toks[i]);
                if (!r) {
                    result.error = "bad register: " + line;
                    return result;
                }
                regs[i] = static_cast<std::uint8_t>(*r);
            }
            ins.r0 = regs[0];
            ins.r1 = regs[1];
            ins.r2 = regs[2];
            ins.r3 = regs[3];
        }
        result.program.append(ins);
    }
    result.ok = true;
    return result;
}

} // namespace ptolemy::isa
