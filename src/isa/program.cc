#include "program.hh"

namespace ptolemy::isa
{

std::size_t
Program::append(const Instruction &ins, const InstrMeta &meta)
{
    instrs.push_back(ins);
    metas.push_back(meta);
    return instrs.size() - 1;
}

std::string
Program::disassemble() const
{
    // Output must reassemble: mnemonic lines only, with the instruction
    // index as a trailing comment so the listing stays navigable.
    std::string out;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
        out += instrs[i].toString();
        out += "\t; ";
        out += std::to_string(i);
        out += "\n";
    }
    return out;
}

} // namespace ptolemy::isa
