#include "common_layers.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ptolemy::nn
{

// ---------------------------------------------------------------- ReLU ----

Shape
ReLU::outputShape(const std::vector<Shape> &ins) const
{
    return ins[0];
}

void
ReLU::forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                  bool train) const
{
    (void)train;
    const Tensor &in = *ins[0];
    out.resize(in.shape());
    for (std::size_t i = 0; i < in.size(); ++i)
        out[i] = in[i] > 0.0f ? in[i] : 0.0f;
}

void
ReLU::backwardInto(const std::vector<const Tensor *> &ins,
                   const Tensor &grad_out, const std::vector<GradSink> &sinks,
                   std::vector<float> *const *param_grads)
{
    (void)param_grads;
    // The mask is the recorded input's sign — no stash needed.
    const Tensor &in = *ins[0];
    Tensor &d = *sinks[0].grad;
    if (sinks[0].accumulate) {
        for (std::size_t i = 0; i < grad_out.size(); ++i)
            if (in[i] > 0.0f)
                d[i] += grad_out[i];
        return;
    }
    d.resize(in.shape());
    for (std::size_t i = 0; i < grad_out.size(); ++i)
        d[i] = in[i] > 0.0f ? grad_out[i] : 0.0f;
}

// ----------------------------------------------------------- MaxPool2d ----

Shape
MaxPool2d::outputShape(const std::vector<Shape> &ins) const
{
    assert(ins[0].h % kSize == 0 && ins[0].w % kSize == 0);
    return mapShape(ins[0].c, ins[0].h / kSize, ins[0].w / kSize);
}

void
MaxPool2d::forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                       bool train) const
{
    (void)train;
    const Tensor &in = *ins[0];
    out.resize(mapShape(in.shape().c, in.shape().h / kSize,
                        in.shape().w / kSize));
    const int oh = out.shape().h, ow = out.shape().w;
    for (int c = 0; c < out.shape().c; ++c) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                float best = -1e30f;
                for (int ky = 0; ky < kSize; ++ky) {
                    for (int kx = 0; kx < kSize; ++kx) {
                        const float v =
                            in.at(c, oy * kSize + ky, ox * kSize + kx);
                        if (v > best)
                            best = v;
                    }
                }
                out.at(c, oy, ox) = best;
            }
        }
    }
}

void
MaxPool2d::backwardInto(const std::vector<const Tensor *> &ins,
                        const Tensor &grad_out,
                        const std::vector<GradSink> &sinks,
                        std::vector<float> *const *param_grads)
{
    (void)param_grads;
    // Re-derive each window's winner from the recorded input (first
    // maximum in scan order — the same tie-break the forward pass used).
    const Tensor &in = *ins[0];
    Tensor &d = *sinks[0].grad;
    if (!sinks[0].accumulate)
        d.resizeZero(in.shape()); // scatter-add target must start clean
    const int oh = grad_out.shape().h, ow = grad_out.shape().w;
    for (int c = 0; c < grad_out.shape().c; ++c) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                float best = -1e30f;
                std::size_t best_idx = 0;
                for (int ky = 0; ky < kSize; ++ky) {
                    for (int kx = 0; kx < kSize; ++kx) {
                        const int iy = oy * kSize + ky;
                        const int ix = ox * kSize + kx;
                        const float v = in.at(c, iy, ix);
                        if (v > best) {
                            best = v;
                            best_idx = in.index(c, iy, ix);
                        }
                    }
                }
                d[best_idx] += grad_out.at(c, oy, ox);
            }
        }
    }
}

void
MaxPool2d::backmapImportant(
    const std::vector<const Tensor *> &ins, const Tensor &out,
    const std::vector<std::size_t> &out_idx,
    std::vector<std::vector<std::size_t>> &per_input) const
{
    // Re-derive the winner from the recorded tensors: the important output
    // value equals the maximal input in its pooling window.
    const Tensor &in = *ins[0];
    per_input.assign(1, {});
    per_input[0].reserve(out_idx.size());
    const int ow = out.shape().w;
    const int oh = out.shape().h;
    for (std::size_t o : out_idx) {
        const int c = static_cast<int>(o / (static_cast<std::size_t>(oh) *
                                            ow));
        const std::size_t rem = o % (static_cast<std::size_t>(oh) * ow);
        const int oy = static_cast<int>(rem / ow);
        const int ox = static_cast<int>(rem % ow);
        float best = -1e30f;
        std::size_t best_idx = 0;
        for (int ky = 0; ky < kSize; ++ky) {
            for (int kx = 0; kx < kSize; ++kx) {
                const float v = in.at(c, oy * kSize + ky, ox * kSize + kx);
                if (v > best) {
                    best = v;
                    best_idx = in.index(c, oy * kSize + ky, ox * kSize + kx);
                }
            }
        }
        per_input[0].push_back(best_idx);
    }
}

// ------------------------------------------------------- GlobalAvgPool ----

Shape
GlobalAvgPool::outputShape(const std::vector<Shape> &ins) const
{
    return flatShape(ins[0].c);
}

void
GlobalAvgPool::forwardInto(const std::vector<const Tensor *> &ins,
                           Tensor &out, bool train) const
{
    (void)train;
    const Tensor &in = *ins[0];
    out.resize(flatShape(in.shape().c));
    const int hw = in.shape().h * in.shape().w;
    for (int c = 0; c < in.shape().c; ++c) {
        float acc = 0.0f;
        for (int y = 0; y < in.shape().h; ++y)
            for (int x = 0; x < in.shape().w; ++x)
                acc += in.at(c, y, x);
        out[c] = acc / hw;
    }
}

void
GlobalAvgPool::backwardInto(const std::vector<const Tensor *> &ins,
                            const Tensor &grad_out,
                            const std::vector<GradSink> &sinks,
                            std::vector<float> *const *param_grads)
{
    (void)param_grads;
    const Shape in_shape = ins[0]->shape();
    Tensor &d = *sinks[0].grad;
    const bool acc = sinks[0].accumulate;
    if (!acc)
        d.resize(in_shape);
    const int hw = in_shape.h * in_shape.w;
    for (int c = 0; c < in_shape.c; ++c) {
        const float g = grad_out[c] / hw;
        for (int y = 0; y < in_shape.h; ++y)
            for (int x = 0; x < in_shape.w; ++x) {
                if (acc)
                    d.at(c, y, x) += g;
                else
                    d.at(c, y, x) = g;
            }
    }
}

void
GlobalAvgPool::backmapImportant(
    const std::vector<const Tensor *> &ins, const Tensor &out,
    const std::vector<std::size_t> &out_idx,
    std::vector<std::vector<std::size_t>> &per_input) const
{
    // Every spatial element of an important channel contributes equally;
    // mark the whole channel plane (windows are small in our models).
    (void)out;
    const Shape in_shape = ins[0]->shape();
    per_input.assign(1, {});
    for (std::size_t o : out_idx) {
        const int c = static_cast<int>(o);
        for (int y = 0; y < in_shape.h; ++y)
            for (int x = 0; x < in_shape.w; ++x)
                per_input[0].push_back(ins[0]->index(c, y, x));
    }
}

// ------------------------------------------------------------- Flatten ----

Shape
Flatten::outputShape(const std::vector<Shape> &ins) const
{
    return flatShape(static_cast<int>(ins[0].numel()));
}

void
Flatten::forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train) const
{
    (void)train;
    out.resize(flatShape(static_cast<int>(ins[0]->size())));
    std::copy(ins[0]->vec().begin(), ins[0]->vec().end(), out.vec().begin());
}

void
Flatten::backwardInto(const std::vector<const Tensor *> &ins,
                      const Tensor &grad_out,
                      const std::vector<GradSink> &sinks,
                      std::vector<float> *const *param_grads)
{
    (void)param_grads;
    Tensor &d = *sinks[0].grad;
    if (sinks[0].accumulate) {
        for (std::size_t i = 0; i < grad_out.size(); ++i)
            d[i] += grad_out[i];
        return;
    }
    d.resize(ins[0]->shape());
    std::copy(grad_out.vec().begin(), grad_out.vec().end(),
              d.vec().begin());
}

// ----------------------------------------------------------------- Add ----

Shape
Add::outputShape(const std::vector<Shape> &ins) const
{
    assert(ins.size() == 2 && ins[0] == ins[1]);
    return ins[0];
}

void
Add::forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                 bool train) const
{
    (void)train;
    const Tensor &a = *ins[0], &b = *ins[1];
    out.resize(a.shape());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
}

void
Add::backwardInto(const std::vector<const Tensor *> &ins,
                  const Tensor &grad_out, const std::vector<GradSink> &sinks,
                  std::vector<float> *const *param_grads)
{
    (void)param_grads;
    const Shape shape = ins[0]->shape();
    for (const auto &s : sinks) {
        Tensor &d = *s.grad;
        if (s.accumulate) {
            d += grad_out;
        } else {
            d.resize(shape);
            std::copy(grad_out.vec().begin(), grad_out.vec().end(),
                      d.vec().begin());
        }
    }
}

void
Add::backmapImportant(const std::vector<const Tensor *> &ins,
                      const Tensor &out,
                      const std::vector<std::size_t> &out_idx,
                      std::vector<std::vector<std::size_t>> &per_input) const
{
    // Both branches carry the important value at the same element.
    (void)ins;
    (void)out;
    per_input.assign(2, out_idx);
}

// -------------------------------------------------------------- Concat ----

Shape
Concat::outputShape(const std::vector<Shape> &ins) const
{
    assert(ins.size() == 2 && ins[0].h == ins[1].h && ins[0].w == ins[1].w);
    return mapShape(ins[0].c + ins[1].c, ins[0].h, ins[0].w);
}

void
Concat::forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                    bool train) const
{
    (void)train;
    out.resize(mapShape(ins[0]->shape().c + ins[1]->shape().c,
                        ins[0]->shape().h, ins[0]->shape().w));
    std::copy(ins[0]->vec().begin(), ins[0]->vec().end(),
              out.vec().begin());
    std::copy(ins[1]->vec().begin(), ins[1]->vec().end(),
              out.vec().begin() + static_cast<std::ptrdiff_t>(ins[0]->size()));
}

void
Concat::backwardInto(const std::vector<const Tensor *> &ins,
                     const Tensor &grad_out,
                     const std::vector<GradSink> &sinks,
                     std::vector<float> *const *param_grads)
{
    (void)param_grads;
    std::size_t off = 0;
    for (int slot = 0; slot < 2; ++slot) {
        const Shape shape = ins[slot]->shape();
        Tensor &d = *sinks[slot].grad;
        const std::size_t n = shape.numel();
        if (sinks[slot].accumulate) {
            for (std::size_t i = 0; i < n; ++i)
                d[i] += grad_out[off + i];
        } else {
            d.resize(shape);
            std::copy(grad_out.vec().begin() +
                          static_cast<std::ptrdiff_t>(off),
                      grad_out.vec().begin() +
                          static_cast<std::ptrdiff_t>(off + n),
                      d.vec().begin());
        }
        off += n;
    }
}

void
Concat::backmapImportant(
    const std::vector<const Tensor *> &ins, const Tensor &out,
    const std::vector<std::size_t> &out_idx,
    std::vector<std::vector<std::size_t>> &per_input) const
{
    (void)out;
    const std::size_t split = ins[0]->size();
    per_input.assign(2, {});
    for (std::size_t o : out_idx) {
        if (o < split)
            per_input[0].push_back(o);
        else
            per_input[1].push_back(o - split);
    }
}

// ------------------------------------------------------- DownsamplePad ----

Shape
DownsamplePad::outputShape(const std::vector<Shape> &ins) const
{
    assert(ins[0].h % 2 == 0 && ins[0].w % 2 == 0);
    return mapShape(ins[0].c * 2, ins[0].h / 2, ins[0].w / 2);
}

void
DownsamplePad::forwardInto(const std::vector<const Tensor *> &ins,
                           Tensor &out, bool train) const
{
    (void)train;
    const Tensor &in = *ins[0];
    // Padded channels stay zero.
    out.resizeZero(mapShape(in.shape().c * 2, in.shape().h / 2,
                            in.shape().w / 2));
    for (int c = 0; c < in.shape().c; ++c)
        for (int y = 0; y < out.shape().h; ++y)
            for (int x = 0; x < out.shape().w; ++x)
                out.at(c, y, x) = in.at(c, 2 * y, 2 * x);
}

void
DownsamplePad::backwardInto(const std::vector<const Tensor *> &ins,
                            const Tensor &grad_out,
                            const std::vector<GradSink> &sinks,
                            std::vector<float> *const *param_grads)
{
    (void)param_grads;
    const Shape in_shape = ins[0]->shape();
    Tensor &d = *sinks[0].grad;
    const bool acc = sinks[0].accumulate;
    if (!acc)
        d.resizeZero(in_shape); // untouched elements carry no gradient
    for (int c = 0; c < in_shape.c; ++c)
        for (int y = 0; y < grad_out.shape().h; ++y)
            for (int x = 0; x < grad_out.shape().w; ++x) {
                if (acc)
                    d.at(c, 2 * y, 2 * x) += grad_out.at(c, y, x);
                else
                    d.at(c, 2 * y, 2 * x) = grad_out.at(c, y, x);
            }
}

void
DownsamplePad::backmapImportant(
    const std::vector<const Tensor *> &ins, const Tensor &out,
    const std::vector<std::size_t> &out_idx,
    std::vector<std::vector<std::size_t>> &per_input) const
{
    const Tensor &in = *ins[0];
    per_input.assign(1, {});
    const int oh = out.shape().h, ow = out.shape().w;
    for (std::size_t o : out_idx) {
        const int c = static_cast<int>(o / (static_cast<std::size_t>(oh) *
                                            ow));
        if (c >= in.shape().c)
            continue; // zero-padded channel: no input neuron behind it
        const std::size_t rem = o % (static_cast<std::size_t>(oh) * ow);
        const int y = static_cast<int>(rem / ow);
        const int x = static_cast<int>(rem % ow);
        per_input[0].push_back(in.index(c, 2 * y, 2 * x));
    }
}

// -------------------------------------------------------------- Norm2d ----

Norm2d::Norm2d(std::string name, int channels, float momentum, float eps)
    : Layer(std::move(name)), chans(channels), mom(momentum), epsilon(eps),
      gamma(channels, 1.0f), beta(channels, 0.0f),
      gradGamma(channels, 0.0f), gradBeta(channels, 0.0f),
      runMean(channels, 0.0f), runVar(channels, 1.0f)
{
}

Shape
Norm2d::outputShape(const std::vector<Shape> &ins) const
{
    assert(ins[0].c == chans);
    return ins[0];
}

void
Norm2d::forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                    bool train) const
{
    // Train and inference passes normalize identically, with the stats
    // as they stand; the training-time stat update is deferred (see the
    // class comment), so this method never writes layer state.
    (void)train;
    const Tensor &in = *ins[0];
    const int hw = std::max(1, in.shape().h * in.shape().w);
    out.resize(in.shape());
    for (int c = 0; c < chans; ++c) {
        const float inv = 1.0f / std::sqrt(runVar[c] + epsilon);
        for (int i = 0; i < hw; ++i) {
            const std::size_t idx = static_cast<std::size_t>(c) * hw + i;
            out[idx] = gamma[c] * (in[idx] - runMean[c]) * inv + beta[c];
        }
    }
}

void
Norm2d::backwardInto(const std::vector<const Tensor *> &ins,
                     const Tensor &grad_out,
                     const std::vector<GradSink> &sinks,
                     std::vector<float> *const *param_grads)
{
    const Tensor &in = *ins[0];
    Tensor &d = *sinks[0].grad;
    const bool acc = sinks[0].accumulate;
    if (!acc)
        d.resize(in.shape());
    const int hw = std::max(1, in.shape().h * in.shape().w);
    if (param_grads == skipParamGrads()) {
        // Input-gradient-only backward: d depends only on gamma and
        // the frozen stats, so xhat need not be recomputed at all.
        for (int c = 0; c < chans; ++c) {
            const float inv = 1.0f / std::sqrt(runVar[c] + epsilon);
            const float scale = gamma[c] * inv;
            for (int i = 0; i < hw; ++i) {
                const std::size_t idx =
                    static_cast<std::size_t>(c) * hw + i;
                if (acc)
                    d[idx] += grad_out[idx] * scale;
                else
                    d[idx] = grad_out[idx] * scale;
            }
        }
        return;
    }
    auto &g_gamma = param_grads ? *param_grads[0] : gradGamma;
    auto &g_beta = param_grads ? *param_grads[1] : gradBeta;
    for (int c = 0; c < chans; ++c) {
        // xhat is recomputed from the recorded input with the same
        // frozen stats the forward pass used — bit-identical to what
        // forward produced, with no stashed tensor.
        const float inv = 1.0f / std::sqrt(runVar[c] + epsilon);
        const float scale = gamma[c] * inv;
        for (int i = 0; i < hw; ++i) {
            const std::size_t idx = static_cast<std::size_t>(c) * hw + i;
            const float xhat = (in[idx] - runMean[c]) * inv;
            g_gamma[c] += grad_out[idx] * xhat;
            g_beta[c] += grad_out[idx];
            if (acc)
                d[idx] += grad_out[idx] * scale;
            else
                d[idx] = grad_out[idx] * scale;
        }
    }
}

std::vector<Param>
Norm2d::params()
{
    return {{&gamma, &gradGamma}, {&beta, &gradBeta}};
}

std::vector<Param>
Norm2d::state()
{
    return {{&runMean, nullptr}, {&runVar, nullptr}};
}

std::size_t
Norm2d::trainStateSize() const
{
    return static_cast<std::size_t>(chans) * 2; // per-channel mean, var
}

void
Norm2d::collectTrainState(const std::vector<const Tensor *> &ins,
                          float *dst) const
{
    const Tensor &in = *ins[0];
    const int hw = std::max(1, in.shape().h * in.shape().w);
    for (int c = 0; c < chans; ++c) {
        double m = 0.0, v = 0.0;
        for (int i = 0; i < hw; ++i) {
            const float x = in[static_cast<std::size_t>(c) * hw + i];
            m += x;
            v += static_cast<double>(x) * x;
        }
        m /= hw;
        v = v / hw - m * m;
        dst[c] = static_cast<float>(m);
        dst[chans + c] = static_cast<float>(std::max(v, 0.0));
    }
}

void
Norm2d::applyTrainState(const float *src)
{
    for (int c = 0; c < chans; ++c) {
        runMean[c] = (1.0f - mom) * runMean[c] + mom * src[c];
        runVar[c] = (1.0f - mom) * runVar[c] + mom * src[chans + c];
    }
}

} // namespace ptolemy::nn
