/**
 * @file
 * SGD trainer with momentum and step decay — data-parallel within each
 * mini-batch.
 *
 * Samples of a batch fan out over the process-wide ThreadPool via
 * parallelForWithTid: each pool slot runs forward+backward with its own
 * Network::Record and GradArena, and gradients accumulate into a fixed
 * number of per-lane parameter-gradient clones (lane = sample position
 * mod laneCount, independent of the thread count). Lanes are reduced
 * into the optimizer state in lane order and deferred layer-state
 * updates (Norm running stats) are folded in sample order, so trained
 * weights are bit-identical across PTOLEMY_NUM_THREADS — the same
 * determinism contract the tile-parallel SGEMM honors.
 */

#ifndef PTOLEMY_NN_TRAINER_HH
#define PTOLEMY_NN_TRAINER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/loss.hh"
#include "nn/network.hh"
#include "nn/tensor.hh"

namespace ptolemy
{
class ThreadPool;
}

namespace ptolemy::nn
{

/** A labelled sample. */
struct Sample
{
    Tensor input;
    std::size_t label;
};

/** Labelled dataset — a plain vector with helpers lives in src/data. */
using Dataset = std::vector<Sample>;

/** Trainer hyper-parameters. */
struct TrainConfig
{
    double learningRate = 0.05;
    double momentum = 0.9;
    double weightDecay = 1e-4;
    int epochs = 6;
    int batchSize = 16;
    double lrDecay = 0.5;    ///< multiplied in every lrDecayEvery epochs
    int lrDecayEvery = 2;
    std::uint64_t shuffleSeed = 7;
    bool verbose = false;
    /** Pool the batch fans out on; nullptr = the process-wide
     *  globalPool(). Results do not depend on the pool's size. */
    ThreadPool *pool = nullptr;
};

/** One epoch's summary. */
struct EpochStats
{
    double avgLoss;
    double trainAccuracy;
};

/**
 * Mini-batch SGD with momentum: per-sample gradients are computed in
 * parallel, accumulated over batchSize samples through deterministic
 * gradient lanes, then a single parameter step is applied.
 */
class Trainer
{
  public:
    /** Gradient lanes per batch — fixed (never derived from the thread
     *  count) so the reduction order, and therefore the trained
     *  weights, are identical no matter how many threads run. */
    static constexpr std::size_t kMaxGradLanes = 16;

    explicit Trainer(TrainConfig cfg = {}) : config(cfg) {}

    /** Train in place; returns per-epoch stats. */
    std::vector<EpochStats> train(Network &net, const Dataset &data);

    /**
     * As train(), writing the stats into a caller-owned vector. With a
     * warmed-up Trainer (scratch persists across calls) the steady-state
     * training loop performs no heap allocation — perf_smoke asserts
     * this.
     */
    void trainInto(Network &net, const Dataset &data,
                   std::vector<EpochStats> &history);

    /** Top-1 accuracy over @p data. */
    static double evaluate(Network &net, const Dataset &data);

  private:
    /** Per-pool-slot pass scratch (record + arena + loss). */
    struct Slot
    {
        Network::Record rec;
        Network::GradArena arena;
        LossGrad lg;
    };

    /** Per-lane deterministic accumulators. */
    struct Lane
    {
        std::vector<std::vector<float>> paramGrads; ///< flatParams order
        std::vector<float> trainState; ///< deferred stats, per sample slot
        double lossSum = 0.0;
        std::size_t correct = 0;
    };

    TrainConfig config;
    std::vector<std::vector<float>> velocity; ///< per-parameter momentum
    // Persistent scratch: reused across train() calls so repeated
    // training (and the perf harness) allocates only on first use.
    std::vector<Slot> slots;
    std::vector<Lane> lanes;
    std::vector<std::size_t> order;
};

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_TRAINER_HH
