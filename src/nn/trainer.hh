/**
 * @file
 * SGD trainer with momentum and step decay.
 */

#ifndef PTOLEMY_NN_TRAINER_HH
#define PTOLEMY_NN_TRAINER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "nn/network.hh"
#include "nn/tensor.hh"

namespace ptolemy::nn
{

/** A labelled sample. */
struct Sample
{
    Tensor input;
    std::size_t label;
};

/** Labelled dataset — a plain vector with helpers lives in src/data. */
using Dataset = std::vector<Sample>;

/** Trainer hyper-parameters. */
struct TrainConfig
{
    double learningRate = 0.05;
    double momentum = 0.9;
    double weightDecay = 1e-4;
    int epochs = 6;
    int batchSize = 16;
    double lrDecay = 0.5;    ///< multiplied in every lrDecayEvery epochs
    int lrDecayEvery = 2;
    std::uint64_t shuffleSeed = 7;
    bool verbose = false;
};

/** One epoch's summary. */
struct EpochStats
{
    double avgLoss;
    double trainAccuracy;
};

/**
 * Sample-at-a-time SGD with momentum: gradients are accumulated over
 * batchSize samples, then a single parameter step is applied.
 */
class Trainer
{
  public:
    explicit Trainer(TrainConfig cfg = {}) : config(cfg) {}

    /** Train in place; returns per-epoch stats. */
    std::vector<EpochStats> train(Network &net, const Dataset &data);

    /** Top-1 accuracy over @p data. */
    static double evaluate(Network &net, const Dataset &data);

  private:
    TrainConfig config;
    std::vector<std::vector<float>> velocity; ///< per-parameter momentum
};

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_TRAINER_HH
