/**
 * @file
 * Small single-precision GEMM kernels and im2col/col2im helpers.
 *
 * The inference hot path lowers convolution to matrix multiplication:
 * im2col unrolls each receptive field into a column, so the layer's
 * forward pass is one [outC x K] * [K x OHW] product computed by a
 * cache-blocked, vectorizable kernel instead of a 6-deep scalar loop.
 * The same kernels back the backward pass (weight gradient via NT,
 * input gradient via TN + col2im) and the Linear layer (gemv).
 *
 * All matrices are dense row-major. Two kernel families back the entry
 * points: a portable scalar reference (bit-identical to the historical
 * cache-blocked kernel) and AVX2/FMA microkernels compiled into their
 * own TU when the build enables them (CMake option PTOLEMY_SIMD).
 * simdMode() picks between them at runtime; both are deterministic
 * across thread counts. Large products are additionally split over
 * M x N tiles and fanned out on the process-wide thread pool (or
 * whatever pool gemmPool() points at), so single-sample conv latency
 * scales with cores.
 */

#ifndef PTOLEMY_NN_GEMM_HH
#define PTOLEMY_NN_GEMM_HH

#include <cstddef>
#include <vector>

#include "util/aligned.hh"
#include "util/simd.hh"

namespace ptolemy
{
class ThreadPool;
}

namespace ptolemy::nn
{

// The process-wide SIMD selector moved to util/simd.hh so util-level
// code (BitVector) can dispatch without depending on nn; re-exported
// here for the historical nn::simdMode() spelling.
using ptolemy::SimdMode;
using ptolemy::simdMode;
using ptolemy::simdModeName;
using ptolemy::avx2Available;

/**
 * Pool the tiled kernels fan work out on. Defaults to the process-wide
 * globalPool(); point it elsewhere (or at nullptr for strictly serial
 * kernels) in tests. Small products always run serially regardless.
 */
ThreadPool *&gemmPool();

/**
 * C[MxN] = A[MxK] * B[KxN], or += when @p accumulate.
 * Cache-blocked with a k-unrolled inner kernel over contiguous C/B rows.
 */
void sgemm(int M, int N, int K, const float *A, const float *B, float *C,
           bool accumulate = false);

/**
 * A B matrix [K x N] packed once into the blocked panel layout the
 * tile kernels consume (see detail::packedBLayout), 64-byte-aligned.
 * Serving-path weights are immutable, so packing them at model-build
 * time removes the per-call packBPanel copy from every forward SGEMM.
 */
struct PackedB
{
    int K = 0;
    int N = 0;
    util::AlignedF32 data;

    bool empty() const { return data.empty(); }

    void
    clear()
    {
        K = N = 0;
        util::AlignedF32().swap(data);
    }
};

/** Pack row-major B [K x N] (leading dimension @p ldb) into @p out. */
void packBMatrix(const float *B, int ldb, int K, int N, PackedB &out);

/**
 * Pack a B matrix given arbitrary element strides: element (k, n) is
 * b[k * k_stride + n * n_stride]. This packs a transposed view without
 * materializing it — conv weights [outC x K] pack as W^T with
 * (k_stride, n_stride) = (1, K).
 */
void packBMatrixStrided(const float *b, std::ptrdiff_t k_stride,
                        std::ptrdiff_t n_stride, int K, int N,
                        PackedB &out);

/**
 * C[MxN] = A[MxK] * B from a persistent packed panel (or += when
 * @p accumulate), with N and K taken from @p B. Bit-identical to
 * sgemm(M, N, K, A, B_unpacked, C, accumulate) in both SIMD modes:
 * the AVX2 tiles skip the per-call pack but consume the exact blocked
 * layout packBPanel produced, and the scalar path replays the
 * reference kernel's BK-blocked grouped-4 accumulation order over the
 * packed panels (k-group boundaries are absolute, so per-element
 * numerics cannot shift).
 */
void sgemmPrepacked(int M, const float *A, const PackedB &B, float *C,
                    bool accumulate = false);

/**
 * Fused packed conv forward (AVX2 serving fast path): per block of
 * output rows, emit a [K x P] slice of the im2col matrix into a
 * reusable L2-resident panel (the full col matrix is never
 * materialized) and run the flipped 6-position x 16-channel register
 * tiles against the persistent packed W^T panels, bias fused into the
 * store. Output is channel-major [outC x oh*ow], bit-identical to
 * im2col + sgemm + bias (see avx2ConvPackedBlock). Row blocks fan out
 * on gemmPool() like sgemm tiles. Caller must hold simdMode() == Avx2
 * and an AVX2 build; @p wt must be the packed [K x outC] transposed
 * weight matrix with K = in_c*k*k.
 */
void convForwardPacked(const float *in, int in_c, int ih, int iw, int k,
                       int stride, int pad, int oh, int ow,
                       const PackedB &wt, const float *bias, float *out);

/**
 * Emit the im2col columns of output rows [oy0, oy1) as a row-major
 * [K x (oy1-oy0)*ow] matrix at leading dimension @p row_stride (tap
 * row order (ic, ky, kx) as im2col). This is im2colInto restricted to
 * a row range — the same contiguous-run memcpy inner loop — and is the
 * fused per-block A-panel emission behind convForwardPacked, exposed
 * for tests and reuse. im2colInto delegates here with the full range.
 */
void im2colRowsInto(const float *in, int in_c, int ih, int iw, int k,
                    int stride, int pad, int ow, int oy0, int oy1,
                    float *col, std::size_t row_stride);

/**
 * Process-wide switch for the persistent-packed serving path
 * (convForwardPacked / packed Linear weights). Initialized from
 * PTOLEMY_PREPACK (default on; "0" disables); benches and bench_sweep
 * flip it at runtime to measure the packed-vs-on-the-fly delta. Gates
 * *use* of packed panels only — layers still build them — so flipping
 * it is always bit-identity-safe.
 */
bool &prepackEnabled();

/**
 * Minimum task count before a tiled kernel fans out to gemmPool():
 * below it the product runs inline on the calling thread, skipping
 * pool dispatch latency that dominates the 2-3-tile shapes detectBatch
 * actually sees. From PTOLEMY_GEMM_INLINE_TILES (default 4); the FLOP
 * cutoff still applies independently. Scheduling only — results are
 * bit-identical either way.
 */
int &gemmInlineTaskCutoff();

/**
 * C[MxN] = A^T * B where A is [KxM] row-major, or += when @p accumulate.
 * Used for the convolution input gradient: col_grad = W^T * grad_out.
 */
void sgemmTN(int M, int N, int K, const float *A, const float *B, float *C,
             bool accumulate = false);

/**
 * C[MxN] = A[MxK] * B^T where B is [NxK] row-major, or += when
 * @p accumulate. Each output element is a contiguous dot product; used
 * for the convolution weight gradient: grad_W = grad_out * col^T.
 */
void sgemmNT(int M, int N, int K, const float *A, const float *B, float *C,
             bool accumulate = false);

/**
 * y[M] = bias[M] + A[MxK] * x[K]: the Linear-layer forward. Dispatched
 * through simdMode() like the sgemm entry points — AVX2/FMA rows when
 * available, otherwise the scalar reference that seeds each dot
 * product's accumulator with the bias (the historical Linear numerics;
 * statistical fixtures are calibrated to hold under both).
 */
void sgemvBias(int M, int K, const float *A, const float *x,
               const float *bias, float *y);

/**
 * Batched Linear forward: ys[s][i] = bias[i] + dot(A row i, xs[s]) for
 * @p S samples. The weight-row loop is outermost, so A streams from
 * memory once per batch instead of once per sample — the dominant
 * memory-traffic win for wide fully-connected layers. Each
 * (row, sample) cell runs the exact sgemvBias row kernel of the active
 * SIMD mode, so results are bit-identical to S independent sgemvBias
 * calls at any batch size.
 */
void sgemvBiasBatch(int M, int K, const float *A, const float *bias,
                    const float *const *xs, float *const *ys, int S);

/** y[K] = A^T * x where A is [MxK] row-major (+= when @p accumulate). */
void sgemvT(int M, int K, const float *A, const float *x, float *y,
            bool accumulate = false);

/**
 * Reusable im2col/col2im scratch. One instance lives per thread (see
 * gemmScratch()), so a warmed-up inference loop performs no heap
 * allocation regardless of how many conv layers share it.
 */
struct GemmScratch
{
    util::AlignedF32 col;     ///< im2col matrix [inC*k*k x oh*ow]
    util::AlignedF32 colGrad; ///< col-space gradient for backward
    util::AlignedF32 colWide; ///< wide-batch im2col [inC*k*k x S*oh*ow]
    util::AlignedF32 outWide; ///< wide-batch output [outC x S*oh*ow]
    std::vector<const float *> xsWide; ///< batched-gemv input pointers
    std::vector<float *> ysWide;       ///< batched-gemv output pointers
};

/** Thread-local scratch shared by every conv layer on this thread. */
GemmScratch &gemmScratch();

/**
 * Unroll @p in (CHW, @p in_c x @p ih x @p iw) into @p col as a
 * [in_c*k*k x oh*ow] row-major matrix; out-of-image taps are zero.
 * Row (ic*k + ky)*k + kx matches the Conv2d weight layout, so the
 * weight matrix multiplies @p col directly.
 */
void im2col(const float *in, int in_c, int ih, int iw, int k, int stride,
            int pad, int oh, int ow, util::AlignedF32 &col);

/**
 * im2col into caller-owned storage with an arbitrary row stride
 * (@p row_stride >= oh*ow floats between consecutive matrix rows).
 * This is the wide-batch building block: each sample of a serving
 * chunk unrolls into the same [in_c*k*k x S*oh*ow] matrix at column
 * offset s*oh*ow, so one SGEMM covers the whole chunk. Tap values and
 * their in-row order are identical to im2col.
 */
void im2colInto(const float *in, int in_c, int ih, int iw, int k, int stride,
                int pad, int oh, int ow, float *col, std::size_t row_stride);

/**
 * Inverse scatter-add of im2col: accumulate the col-space gradient
 * @p col [in_c*k*k x oh*ow] back into the image gradient @p grad_in
 * (CHW, must be pre-zeroed by the caller).
 */
void col2im(const util::AlignedF32 &col, int in_c, int ih, int iw, int k,
            int stride, int pad, int oh, int ow, float *grad_in);

/**
 * Process-wide switch to the scalar reference convolution (equivalence
 * tests, perf baselines). Initialized from the PTOLEMY_NAIVE_CONV
 * environment variable; tests and benches may flip it at runtime.
 */
bool &naiveConvFlag();

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_GEMM_HH
