/**
 * @file
 * Dense float tensor for the NN substrate.
 *
 * The reproduction trains and attacks small CNNs, so tensors are
 * single-sample (no batch dimension): a feature map is (C, H, W) and a
 * vector is (N). Keeping the batch loop outside the layers keeps every
 * layer's forward/backward easy to audit against the math.
 */

#ifndef PTOLEMY_NN_TENSOR_HH
#define PTOLEMY_NN_TENSOR_HH

#include <cassert>
#include <cstddef>
#include <vector>

namespace ptolemy::nn
{

/** Shape of a tensor: up to three dims; (C,H,W) for maps, (N) for vectors. */
struct Shape
{
    int c = 0; ///< channels (or vector length when h == w == 0)
    int h = 0; ///< height; 0 for flat vectors
    int w = 0; ///< width; 0 for flat vectors

    /** Flat element count. */
    std::size_t
    numel() const
    {
        if (h == 0 && w == 0)
            return static_cast<std::size_t>(c);
        return static_cast<std::size_t>(c) * h * w;
    }

    /** True for a flat (N) vector shape. */
    bool isFlat() const { return h == 0 && w == 0; }

    bool operator==(const Shape &other) const = default;
};

/** Make a flat vector shape of length n. */
inline Shape
flatShape(int n)
{
    return Shape{n, 0, 0};
}

/** Make a (C,H,W) feature-map shape. */
inline Shape
mapShape(int c, int h, int w)
{
    return Shape{c, h, w};
}

/**
 * Dense float tensor with CHW layout.
 */
class Tensor
{
  public:
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(Shape s) : shp(s), buf(s.numel(), 0.0f) {}

    /** Tensor adopting existing data; size must match the shape. */
    Tensor(Shape s, std::vector<float> data) : shp(s), buf(std::move(data))
    {
        assert(buf.size() == shp.numel());
    }

    const Shape &shape() const { return shp; }
    std::size_t size() const { return buf.size(); }
    bool empty() const { return buf.empty(); }

    float *data() { return buf.data(); }
    const float *data() const { return buf.data(); }
    std::vector<float> &vec() { return buf; }
    const std::vector<float> &vec() const { return buf; }

    float &operator[](std::size_t i) { return buf[i]; }
    float operator[](std::size_t i) const { return buf[i]; }

    /** (c,y,x) accessor for feature maps. */
    float &
    at(int c, int y, int x)
    {
        return buf[(static_cast<std::size_t>(c) * shp.h + y) * shp.w + x];
    }

    float
    at(int c, int y, int x) const
    {
        return buf[(static_cast<std::size_t>(c) * shp.h + y) * shp.w + x];
    }

    /** Flat index of map element (c,y,x). */
    std::size_t
    index(int c, int y, int x) const
    {
        return (static_cast<std::size_t>(c) * shp.h + y) * shp.w + x;
    }

    /**
     * Reshape to @p s, reusing the existing buffer when capacity allows
     * (no heap traffic in a warmed-up inference loop). Element values
     * are unspecified afterwards; callers must overwrite them.
     */
    void
    resize(Shape s)
    {
        shp = s;
        buf.resize(s.numel());
    }

    /** Reshape to @p s and zero-fill, reusing the buffer when possible. */
    void
    resizeZero(Shape s)
    {
        shp = s;
        buf.assign(s.numel(), 0.0f);
    }

    /** Fill with a constant. */
    void fill(float v);

    /** Element-wise in-place add; shapes must match. */
    Tensor &operator+=(const Tensor &other);

    /** Element-wise in-place scale. */
    Tensor &operator*=(float s);

    /** Sum of squared elements (used by attack distortion metrics). */
    double sumSq() const;

    /** Index of the maximum element (argmax over logits). */
    std::size_t argmax() const;

  private:
    Shape shp;
    std::vector<float> buf;
};

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_TENSOR_HH
