#include "gemm.hh"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "nn/gemm_kernels.hh"
#include "util/thread_pool.hh"

namespace ptolemy::nn
{

namespace
{

// Tile sizes for both cache blocking and the parallel work split: a
// TM x BK panel of A (32*128 floats = 16 KiB) and a BK x TN panel of B
// (128*256 floats = 128 KiB) stay resident while a TM x TN tile of C is
// streamed. TN is a multiple of 16 so the AVX2 column blocking is
// anchored identically no matter how the matrix is tiled, which keeps
// results bit-identical across thread counts.
constexpr int TM = 32;
constexpr int BK = 128;
constexpr int TN = 256;

// Products below this many FLOPs (2*M*N*K) are not worth waking the
// pool for; they run serially on the calling thread.
constexpr double kParallelFlopCutoff = 2.0 * 1024 * 1024;

/** Pool gate shared by every tiled entry point: enough threads, enough
 *  tasks (see gemmInlineTaskCutoff), enough arithmetic. */
bool
usePoolFor(ThreadPool *pool, std::size_t n_tasks, double flops)
{
    return pool && pool->size() > 1 && n_tasks > 1 &&
           n_tasks >= static_cast<std::size_t>(gemmInlineTaskCutoff()) &&
           flops >= kParallelFlopCutoff;
}

/**
 * Inner scalar kernel: C[i0..imax) x [j0..jmax) += A-panel * B-panel.
 * @p a_at maps (i, k) to the A element so the same kernel serves the
 * NN and TN variants without a transposed copy. Unchanged from the
 * pre-parallel implementation: per-element accumulation order depends
 * only on the absolute BK blocking, so tiling and threading do not
 * change the numerics.
 */
template <typename AAt>
inline void
panelKernel(int i0, int imax, int j0, int jmax, int k0, int kmax, int N,
            AAt a_at, const float *B, float *C)
{
    for (int i = i0; i < imax; ++i) {
        float *c = C + static_cast<std::size_t>(i) * N;
        int k = k0;
        // Four A coefficients per pass quarters the C read/write traffic.
        for (; k + 3 < kmax; k += 4) {
            const float a0 = a_at(i, k);
            const float a1 = a_at(i, k + 1);
            const float a2 = a_at(i, k + 2);
            const float a3 = a_at(i, k + 3);
            const float *b0 = B + static_cast<std::size_t>(k) * N;
            const float *b1 = b0 + N;
            const float *b2 = b1 + N;
            const float *b3 = b2 + N;
            for (int j = j0; j < jmax; ++j)
                c[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
        for (; k < kmax; ++k) {
            const float a = a_at(i, k);
            const float *b = B + static_cast<std::size_t>(k) * N;
            for (int j = j0; j < jmax; ++j)
                c[j] += a * b[j];
        }
    }
}

/** One scalar C tile: zero (unless accumulating), then k-blocked panels. */
template <typename AAt>
inline void
scalarTile(int i0, int imax, int j0, int jmax, int K, int N, AAt a_at,
           const float *B, float *C, bool accumulate)
{
    if (!accumulate)
        for (int i = i0; i < imax; ++i)
            std::fill(C + static_cast<std::size_t>(i) * N + j0,
                      C + static_cast<std::size_t>(i) * N + jmax, 0.0f);
    for (int k0 = 0; k0 < K; k0 += BK)
        panelKernel(i0, imax, j0, jmax, k0, std::min(K, k0 + BK), N, a_at,
                    B, C);
}

/**
 * Run @p tile over the TM x TN grid covering [0,M) x [0,N), on the
 * gemm pool when the product is large enough, serially otherwise.
 * Tiles write disjoint C regions and each element's value is
 * independent of the partition, so any interleaving is equivalent.
 */
template <typename TileFn>
void
forEachTile(int M, int N, double flops, TileFn tile)
{
    const int mt = (M + TM - 1) / TM;
    const int nt = (N + TN - 1) / TN;
    const std::size_t n_tasks =
        static_cast<std::size_t>(mt) * static_cast<std::size_t>(nt);
    ThreadPool *pool = gemmPool();
    auto run = [&](std::size_t t) {
        const int i0 = static_cast<int>(t / nt) * TM;
        const int j0 = static_cast<int>(t % nt) * TN;
        tile(i0, std::min(M, i0 + TM), j0, std::min(N, j0 + TN));
    };
    if (usePoolFor(pool, n_tasks, flops)) {
        pool->parallelFor(n_tasks, run);
        return;
    }
    for (std::size_t t = 0; t < n_tasks; ++t)
        run(t);
}

bool
useAvx2()
{
#ifdef PTOLEMY_HAVE_AVX2
    return simdMode() == SimdMode::Avx2;
#else
    return false;
#endif
}

} // namespace

ThreadPool *&
gemmPool()
{
    static ThreadPool *pool = &globalPool();
    return pool;
}

bool &
prepackEnabled()
{
    static bool on = [] {
        ensureTuningApplied();
        const char *env = std::getenv("PTOLEMY_PREPACK");
        return !(env && env[0] == '0' && env[1] == '\0');
    }();
    return on;
}

int &
gemmInlineTaskCutoff()
{
    static int cutoff = [] {
        if (const char *env = std::getenv("PTOLEMY_GEMM_INLINE_TILES")) {
            const int parsed = std::atoi(env);
            if (parsed > 0)
                return parsed;
        }
        return 4;
    }();
    return cutoff;
}

namespace
{

/**
 * Shared NN/TN driver: the A element for output row i, depth k is
 * a_base[i * a_row_stride + k * a_elem_stride], so the NN layout is
 * (K, 1) and the TN layout is (1, M). Both kernel families take the
 * strides directly; the dispatch and pool gating live here once.
 */
void
gemmDriver(int M, int N, int K, const float *a_base,
           std::ptrdiff_t a_row_stride, std::ptrdiff_t a_elem_stride,
           const float *B, float *C, bool accumulate)
{
    const double flops = 2.0 * M * N * K;
#ifdef PTOLEMY_HAVE_AVX2
    if (useAvx2()) {
        forEachTile(M, N, flops, [&](int i0, int imax, int j0, int jmax) {
            detail::avx2GemmTile(i0, imax, j0, jmax, K, a_base,
                                 a_row_stride, a_elem_stride, B, N, C, N,
                                 accumulate);
        });
        return;
    }
#endif
    const auto a_at = [a_base, a_row_stride, a_elem_stride](int i, int k) {
        return a_base[i * a_row_stride + k * a_elem_stride];
    };
    forEachTile(M, N, flops, [&](int i0, int imax, int j0, int jmax) {
        scalarTile(i0, imax, j0, jmax, K, N, a_at, B, C, accumulate);
    });
}

} // namespace

void
sgemm(int M, int N, int K, const float *A, const float *B, float *C,
      bool accumulate)
{
    gemmDriver(M, N, K, A, /*a_row_stride=*/K, /*a_elem_stride=*/1, B, C,
               accumulate);
}

void
sgemmTN(int M, int N, int K, const float *A, const float *B, float *C,
        bool accumulate)
{
    gemmDriver(M, N, K, A, /*a_row_stride=*/1, /*a_elem_stride=*/M, B, C,
               accumulate);
}

namespace
{

void
scalarNTRows(int i0, int i1, int N, int K, const float *A, const float *B,
             float *C, bool accumulate)
{
    for (int i = i0; i < i1; ++i) {
        const float *a = A + static_cast<std::size_t>(i) * K;
        float *c = C + static_cast<std::size_t>(i) * N;
        for (int j = 0; j < N; ++j) {
            const float *b = B + static_cast<std::size_t>(j) * K;
            float s = 0.0f;
            for (int k = 0; k < K; ++k)
                s += a[k] * b[k];
            if (accumulate)
                c[j] += s;
            else
                c[j] = s;
        }
    }
}

} // namespace

void
sgemmNT(int M, int N, int K, const float *A, const float *B, float *C,
        bool accumulate)
{
    // Each output is an independent contiguous dot product; parallelism
    // splits rows, which cannot change any element's accumulation order.
    const double flops = 2.0 * M * N * K;
    const int rows_per_task = std::max(1, TM / 4);
    const std::size_t n_tasks =
        static_cast<std::size_t>((M + rows_per_task - 1) / rows_per_task);
    ThreadPool *pool = gemmPool();
    auto run = [&](std::size_t t) {
        const int i0 = static_cast<int>(t) * rows_per_task;
        const int i1 = std::min(M, i0 + rows_per_task);
#ifdef PTOLEMY_HAVE_AVX2
        if (useAvx2()) {
            detail::avx2GemmNTRows(i0, i1, N, K, A, B, C, accumulate);
            return;
        }
#endif
        scalarNTRows(i0, i1, N, K, A, B, C, accumulate);
    };
    if (usePoolFor(pool, n_tasks, flops)) {
        pool->parallelFor(n_tasks, run);
        return;
    }
    for (std::size_t t = 0; t < n_tasks; ++t)
        run(t);
}

namespace
{

/**
 * One scalar gemv row: bias-seeded sequential dot product (the
 * historical Linear-layer numerics). noinline pins a single codegen of
 * the accumulation chain, so the single-sample and batched entry
 * points below produce bit-identical results per (row, sample) — the
 * compiler cannot contract or unroll them differently per call site.
 */
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
float
scalarGemvRowDotBias(const float *a, const float *x, int K, float bias)
{
    float s = bias;
    for (int k = 0; k < K; ++k)
        s += a[k] * x[k];
    return s;
}

} // namespace

void
sgemvBias(int M, int K, const float *A, const float *x, const float *bias,
          float *y)
{
#ifdef PTOLEMY_HAVE_AVX2
    if (useAvx2()) {
        detail::avx2GemvBias(M, K, A, x, bias, y);
        return;
    }
#endif
    for (int i = 0; i < M; ++i)
        y[i] = scalarGemvRowDotBias(A + static_cast<std::size_t>(i) * K, x,
                                    K, bias[i]);
}

void
sgemvBiasBatch(int M, int K, const float *A, const float *bias,
               const float *const *xs, float *const *ys, int S)
{
#ifdef PTOLEMY_HAVE_AVX2
    if (useAvx2()) {
        detail::avx2GemvBiasBatch(M, K, A, bias, xs, ys, S);
        return;
    }
#endif
    // Weight-row loop outermost: A streams once per batch, the samples'
    // input vectors stay cache-resident. Each cell runs the exact
    // single-sample row kernel, so results are bit-identical to S
    // sgemvBias calls.
    for (int i = 0; i < M; ++i) {
        const float *a = A + static_cast<std::size_t>(i) * K;
        const float b = bias[i];
        for (int s = 0; s < S; ++s)
            ys[s][i] = scalarGemvRowDotBias(a, xs[s], K, b);
    }
}

void
sgemvT(int M, int K, const float *A, const float *x, float *y, bool accumulate)
{
    if (!accumulate)
        std::fill(y, y + K, 0.0f);
    for (int i = 0; i < M; ++i) {
        const float xi = x[i];
        if (xi == 0.0f)
            continue;
        const float *a = A + static_cast<std::size_t>(i) * K;
        for (int k = 0; k < K; ++k)
            y[k] += xi * a[k];
    }
}

GemmScratch &
gemmScratch()
{
    thread_local GemmScratch scratch;
    return scratch;
}

void
packBMatrixStrided(const float *b, std::ptrdiff_t k_stride,
                   std::ptrdiff_t n_stride, int K, int N, PackedB &out)
{
    const auto L = detail::packedBLayout(K, N);
    out.K = K;
    out.N = N;
    // assign zeroes the alignment padding between panels so the buffer
    // content is fully deterministic (the pad floats are never read).
    out.data.assign(L.total, 0.0f);
    float *base = out.data.data();
    auto at = [&](int k, int n) { return b[k * k_stride + n * n_stride]; };
    for (int blk = 0; blk < L.nFull; ++blk) {
        float *dst = base + static_cast<std::size_t>(blk) * K * 16;
        for (int k = 0; k < K; ++k)
            for (int c = 0; c < 16; ++c)
                dst[static_cast<std::size_t>(k) * 16 + c] =
                    at(k, blk * 16 + c);
    }
    if (L.has8) {
        float *dst = base + L.off8;
        const int j0 = L.nFull * 16;
        for (int k = 0; k < K; ++k)
            for (int c = 0; c < 8; ++c)
                dst[static_cast<std::size_t>(k) * 8 + c] = at(k, j0 + c);
    }
    if (L.tail > 0) {
        float *dst = base + L.offTail;
        const int j0 = L.nFull * 16 + (L.has8 ? 8 : 0);
        for (int k = 0; k < K; ++k)
            for (int c = 0; c < L.tail; ++c)
                dst[static_cast<std::size_t>(k) * L.tail + c] =
                    at(k, j0 + c);
    }
}

void
packBMatrix(const float *B, int ldb, int K, int N, PackedB &out)
{
    packBMatrixStrided(B, ldb, 1, K, N, out);
}

namespace
{

/**
 * Scalar prepacked tile: replays scalarTile's exact accumulation order
 * — zero fill, then for each absolute BK block the grouped-4 panel
 * kernel — but reads B from the packed panels. The k-group boundaries
 * are multiples of BK regardless of column, so every element's float
 * chain is identical to scalarTile on the unpacked matrix.
 */
void
scalarPrepackedTile(int i0, int imax, int j0, int jmax, int K, int N,
                    const float *A, const float *packed, float *C,
                    bool accumulate)
{
    const auto L = detail::packedBLayout(K, N);
    if (!accumulate)
        for (int i = i0; i < imax; ++i)
            std::fill(C + static_cast<std::size_t>(i) * N + j0,
                      C + static_cast<std::size_t>(i) * N + jmax, 0.0f);
    for (int k0 = 0; k0 < K; k0 += BK) {
        const int kmax = std::min(K, k0 + BK);
        int j = j0;
        while (j < jmax) {
            // Panel containing column j. Tile bounds sit on multiples
            // of TN (a multiple of 16), so panels never straddle them.
            const float *P;
            int w, col0;
            if (j < L.nFull * 16) {
                const int blk = j / 16;
                P = packed + static_cast<std::size_t>(blk) * K * 16;
                w = 16;
                col0 = blk * 16;
            } else if (L.has8 && j < L.nFull * 16 + 8) {
                P = packed + L.off8;
                w = 8;
                col0 = L.nFull * 16;
            } else {
                P = packed + L.offTail;
                w = L.tail;
                col0 = L.nFull * 16 + (L.has8 ? 8 : 0);
            }
            const int jend = std::min(jmax, col0 + w);
            for (int i = i0; i < imax; ++i) {
                const float *a = A + static_cast<std::size_t>(i) * K;
                float *c = C + static_cast<std::size_t>(i) * N;
                int k = k0;
                for (; k + 3 < kmax; k += 4) {
                    const float a0 = a[k];
                    const float a1 = a[k + 1];
                    const float a2 = a[k + 2];
                    const float a3 = a[k + 3];
                    const float *b0 = P + static_cast<std::size_t>(k) * w;
                    const float *b1 = b0 + w;
                    const float *b2 = b1 + w;
                    const float *b3 = b2 + w;
                    for (int jj = j; jj < jend; ++jj) {
                        const int c0 = jj - col0;
                        c[jj] += a0 * b0[c0] + a1 * b1[c0] + a2 * b2[c0] +
                                 a3 * b3[c0];
                    }
                }
                for (; k < kmax; ++k) {
                    const float ak = a[k];
                    const float *bk = P + static_cast<std::size_t>(k) * w;
                    for (int jj = j; jj < jend; ++jj)
                        c[jj] += ak * bk[jj - col0];
                }
            }
            j = jend;
        }
    }
}

} // namespace

void
sgemmPrepacked(int M, const float *A, const PackedB &B, float *C,
               bool accumulate)
{
    const int N = B.N;
    const int K = B.K;
    const double flops = 2.0 * M * N * K;
#ifdef PTOLEMY_HAVE_AVX2
    if (useAvx2()) {
        forEachTile(M, N, flops, [&](int i0, int imax, int j0, int jmax) {
            detail::avx2GemmTilePrepacked(i0, imax, j0, jmax, K, A,
                                          /*a_row_stride=*/K,
                                          /*a_elem_stride=*/1,
                                          B.data.data(), N, C, N,
                                          accumulate);
        });
        return;
    }
#endif
    forEachTile(M, N, flops, [&](int i0, int imax, int j0, int jmax) {
        scalarPrepackedTile(i0, imax, j0, jmax, K, N, A, B.data.data(), C,
                            accumulate);
    });
}


#ifdef PTOLEMY_HAVE_AVX2
namespace
{

/** Per-thread fused A-panel scratch (6 x K floats, cache-aligned). */
util::AlignedF32 &
convPanelScratch()
{
    thread_local util::AlignedF32 panel;
    return panel;
}

} // namespace
#endif

void
convForwardPacked(const float *in, int in_c, int ih, int iw, int k,
                  int stride, int pad, int oh, int ow, const PackedB &wt,
                  float const *bias, float *out)
{
#ifndef PTOLEMY_HAVE_AVX2
    (void)in;
    (void)in_c;
    (void)ih;
    (void)iw;
    (void)k;
    (void)stride;
    (void)pad;
    (void)oh;
    (void)ow;
    (void)wt;
    (void)bias;
    (void)out;
    assert(false && "convForwardPacked requires the AVX2 build");
#else
    const int K = wt.K;
    const int outC = wt.N;
    const int ohw = oh * ow;
    assert(K == in_c * k * k);
    // Block whole output rows so one fused A panel covers ~96 output
    // positions. Row-aligned blocks keep the panel emission on
    // im2colRowsInto's contiguous-run memcpys (the exact im2col inner
    // loop — just restricted to the block's rows, so only a [K x P]
    // slice ever materializes, L2-resident and consumed immediately),
    // and the blocked kernel then reuses each K x 16 weight panel
    // across every strip of the block. One block is also the pool-task
    // grain. Positions are independent and per-element results
    // partition-invariant, so the blocking is scheduling-only.
    constexpr int kTargetBlockPositions = 96;
    const int rows_per_block = std::max(
        1, std::min(oh, (kTargetBlockPositions + ow - 1) / ow));
    const std::size_t n_tasks = static_cast<std::size_t>(
        (oh + rows_per_block - 1) / rows_per_block);
    const double flops = 2.0 * outC * ohw * K;
    auto run = [&](std::size_t t) {
        const int oy0 = static_cast<int>(t) * rows_per_block;
        const int oy1 = std::min(oh, oy0 + rows_per_block);
        const int P = (oy1 - oy0) * ow; // positions in this block
        auto &panel = convPanelScratch();
        panel.resize(static_cast<std::size_t>(K) * P);
        im2colRowsInto(in, in_c, ih, iw, k, stride, pad, ow, oy0, oy1,
                       panel.data(), static_cast<std::size_t>(P));
        const int n_strips = (P + 5) / 6;
        detail::avx2ConvPackedBlock(K, outC, panel.data(), P, n_strips,
                                    P - 6 * (n_strips - 1), wt.data.data(),
                                    bias, out + oy0 * ow, ohw);
    };
    ThreadPool *pool = gemmPool();
    if (usePoolFor(pool, n_tasks, flops)) {
        pool->parallelFor(n_tasks, run);
        return;
    }
    for (std::size_t t = 0; t < n_tasks; ++t)
        run(t);
#endif
}

void
im2col(const float *in, int in_c, int ih, int iw, int k, int stride, int pad,
       int oh, int ow, util::AlignedF32 &col)
{
    const std::size_t ohw = static_cast<std::size_t>(oh) * ow;
    col.resize(static_cast<std::size_t>(in_c) * k * k * ohw);
    im2colInto(in, in_c, ih, iw, k, stride, pad, oh, ow, col.data(), ohw);
}

void
im2colInto(const float *in, int in_c, int ih, int iw, int k, int stride,
           int pad, int oh, int ow, float *col, std::size_t row_stride)
{
    im2colRowsInto(in, in_c, ih, iw, k, stride, pad, ow, 0, oh, col,
                   row_stride);
}

void
im2colRowsInto(const float *in, int in_c, int ih, int iw, int k, int stride,
               int pad, int ow, int oy0, int oy1, float *col,
               std::size_t row_stride)
{
    float *dst = col;
    for (int ic = 0; ic < in_c; ++ic) {
        const float *plane = in + static_cast<std::size_t>(ic) * ih * iw;
        for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
                for (int oy = oy0; oy < oy1; ++oy) {
                    const int iy = oy * stride - pad + ky;
                    float *row =
                        dst + static_cast<std::size_t>(oy - oy0) * ow;
                    if (iy < 0 || iy >= ih) {
                        std::memset(row, 0, sizeof(float) * ow);
                        continue;
                    }
                    const float *src = plane + static_cast<std::size_t>(iy) * iw;
                    if (stride == 1) {
                        // Contiguous tap run; clamp the borders once. All
                        // three extents are clamped to the row so kernel
                        // footprints wider than the padded image (e.g.
                        // k=5, pad=2 on a 1-wide input) stay in bounds.
                        const int ix0 = -pad + kx;
                        const int lead = std::clamp(-ix0, 0, ow);
                        const int valid_end = std::clamp(iw - ix0, 0, ow);
                        const int body = std::max(0, valid_end - lead);
                        const int tail = ow - lead - body;
                        if (lead > 0)
                            std::memset(row, 0, sizeof(float) * lead);
                        if (body > 0)
                            std::memcpy(row + lead, src + ix0 + lead,
                                        sizeof(float) * body);
                        if (tail > 0)
                            std::memset(row + lead + body, 0,
                                        sizeof(float) * tail);
                    } else {
                        for (int ox = 0; ox < ow; ++ox) {
                            const int ix = ox * stride - pad + kx;
                            row[ox] = (ix < 0 || ix >= iw) ? 0.0f : src[ix];
                        }
                    }
                }
                dst += row_stride;
            }
        }
    }
}

void
col2im(const util::AlignedF32 &col, int in_c, int ih, int iw, int k,
       int stride, int pad, int oh, int ow, float *grad_in)
{
    const std::size_t ohw = static_cast<std::size_t>(oh) * ow;
    const float *src = col.data();
    for (int ic = 0; ic < in_c; ++ic) {
        float *plane = grad_in + static_cast<std::size_t>(ic) * ih * iw;
        for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
                for (int oy = 0; oy < oh; ++oy) {
                    const int iy = oy * stride - pad + ky;
                    if (iy < 0 || iy >= ih)
                        continue;
                    const float *row = src + static_cast<std::size_t>(oy) * ow;
                    float *drow = plane + static_cast<std::size_t>(iy) * iw;
                    for (int ox = 0; ox < ow; ++ox) {
                        const int ix = ox * stride - pad + kx;
                        if (ix >= 0 && ix < iw)
                            drow[ix] += row[ox];
                    }
                }
                src += ohw;
            }
        }
    }
}

bool &
naiveConvFlag()
{
    static bool flag = std::getenv("PTOLEMY_NAIVE_CONV") != nullptr;
    return flag;
}

} // namespace ptolemy::nn
