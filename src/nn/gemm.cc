#include "gemm.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace ptolemy::nn
{

namespace
{

// Block sizes sized for typical L1/L2: a BM x BK panel of A (32*128
// floats = 16 KiB) and a BK x BN panel of B (128*256 floats = 128 KiB)
// stay resident while a BM x BN tile of C is streamed.
constexpr int BM = 32;
constexpr int BK = 128;
constexpr int BN = 256;

/**
 * Inner kernel: C[i0..imax) x [j0..jmax) += A-panel * B-panel.
 * @p a_at maps (i, k) to the A element so the same kernel serves the
 * NN and TN variants without a transposed copy.
 */
template <typename AAt>
inline void
panelKernel(int i0, int imax, int j0, int jmax, int k0, int kmax, int N,
            AAt a_at, const float *B, float *C)
{
    for (int i = i0; i < imax; ++i) {
        float *c = C + static_cast<std::size_t>(i) * N;
        int k = k0;
        // Four A coefficients per pass quarters the C read/write traffic.
        for (; k + 3 < kmax; k += 4) {
            const float a0 = a_at(i, k);
            const float a1 = a_at(i, k + 1);
            const float a2 = a_at(i, k + 2);
            const float a3 = a_at(i, k + 3);
            const float *b0 = B + static_cast<std::size_t>(k) * N;
            const float *b1 = b0 + N;
            const float *b2 = b1 + N;
            const float *b3 = b2 + N;
            for (int j = j0; j < jmax; ++j)
                c[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
        for (; k < kmax; ++k) {
            const float a = a_at(i, k);
            const float *b = B + static_cast<std::size_t>(k) * N;
            for (int j = j0; j < jmax; ++j)
                c[j] += a * b[j];
        }
    }
}

template <typename AAt>
void
blockedGemm(int M, int N, int K, AAt a_at, const float *B, float *C,
            bool accumulate)
{
    if (!accumulate)
        std::fill(C, C + static_cast<std::size_t>(M) * N, 0.0f);
    for (int k0 = 0; k0 < K; k0 += BK) {
        const int kmax = std::min(K, k0 + BK);
        for (int i0 = 0; i0 < M; i0 += BM) {
            const int imax = std::min(M, i0 + BM);
            for (int j0 = 0; j0 < N; j0 += BN) {
                const int jmax = std::min(N, j0 + BN);
                panelKernel(i0, imax, j0, jmax, k0, kmax, N, a_at, B, C);
            }
        }
    }
}

} // namespace

void
sgemm(int M, int N, int K, const float *A, const float *B, float *C,
      bool accumulate)
{
    blockedGemm(
        M, N, K,
        [A, K](int i, int k) { return A[static_cast<std::size_t>(i) * K + k]; },
        B, C, accumulate);
}

void
sgemmTN(int M, int N, int K, const float *A, const float *B, float *C,
        bool accumulate)
{
    blockedGemm(
        M, N, K,
        [A, M](int i, int k) { return A[static_cast<std::size_t>(k) * M + i]; },
        B, C, accumulate);
}

void
sgemmNT(int M, int N, int K, const float *A, const float *B, float *C,
        bool accumulate)
{
    for (int i = 0; i < M; ++i) {
        const float *a = A + static_cast<std::size_t>(i) * K;
        float *c = C + static_cast<std::size_t>(i) * N;
        for (int j = 0; j < N; ++j) {
            const float *b = B + static_cast<std::size_t>(j) * K;
            float s = 0.0f;
            for (int k = 0; k < K; ++k)
                s += a[k] * b[k];
            if (accumulate)
                c[j] += s;
            else
                c[j] = s;
        }
    }
}

void
sgemvBias(int M, int K, const float *A, const float *x, const float *bias,
          float *y)
{
    for (int i = 0; i < M; ++i) {
        const float *a = A + static_cast<std::size_t>(i) * K;
        float s = bias[i];
        for (int k = 0; k < K; ++k)
            s += a[k] * x[k];
        y[i] = s;
    }
}

void
sgemvT(int M, int K, const float *A, const float *x, float *y, bool accumulate)
{
    if (!accumulate)
        std::fill(y, y + K, 0.0f);
    for (int i = 0; i < M; ++i) {
        const float xi = x[i];
        if (xi == 0.0f)
            continue;
        const float *a = A + static_cast<std::size_t>(i) * K;
        for (int k = 0; k < K; ++k)
            y[k] += xi * a[k];
    }
}

GemmScratch &
gemmScratch()
{
    thread_local GemmScratch scratch;
    return scratch;
}

void
im2col(const float *in, int in_c, int ih, int iw, int k, int stride, int pad,
       int oh, int ow, std::vector<float> &col)
{
    const std::size_t ohw = static_cast<std::size_t>(oh) * ow;
    col.resize(static_cast<std::size_t>(in_c) * k * k * ohw);
    float *dst = col.data();
    for (int ic = 0; ic < in_c; ++ic) {
        const float *plane = in + static_cast<std::size_t>(ic) * ih * iw;
        for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
                for (int oy = 0; oy < oh; ++oy) {
                    const int iy = oy * stride - pad + ky;
                    float *row = dst + static_cast<std::size_t>(oy) * ow;
                    if (iy < 0 || iy >= ih) {
                        std::memset(row, 0, sizeof(float) * ow);
                        continue;
                    }
                    const float *src = plane + static_cast<std::size_t>(iy) * iw;
                    if (stride == 1) {
                        // Contiguous tap run; clamp the borders once. All
                        // three extents are clamped to the row so kernel
                        // footprints wider than the padded image (e.g.
                        // k=5, pad=2 on a 1-wide input) stay in bounds.
                        const int ix0 = -pad + kx;
                        const int lead = std::clamp(-ix0, 0, ow);
                        const int valid_end = std::clamp(iw - ix0, 0, ow);
                        const int body = std::max(0, valid_end - lead);
                        const int tail = ow - lead - body;
                        if (lead > 0)
                            std::memset(row, 0, sizeof(float) * lead);
                        if (body > 0)
                            std::memcpy(row + lead, src + ix0 + lead,
                                        sizeof(float) * body);
                        if (tail > 0)
                            std::memset(row + lead + body, 0,
                                        sizeof(float) * tail);
                    } else {
                        for (int ox = 0; ox < ow; ++ox) {
                            const int ix = ox * stride - pad + kx;
                            row[ox] = (ix < 0 || ix >= iw) ? 0.0f : src[ix];
                        }
                    }
                }
                dst += ohw;
            }
        }
    }
}

void
col2im(const std::vector<float> &col, int in_c, int ih, int iw, int k,
       int stride, int pad, int oh, int ow, float *grad_in)
{
    const std::size_t ohw = static_cast<std::size_t>(oh) * ow;
    const float *src = col.data();
    for (int ic = 0; ic < in_c; ++ic) {
        float *plane = grad_in + static_cast<std::size_t>(ic) * ih * iw;
        for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
                for (int oy = 0; oy < oh; ++oy) {
                    const int iy = oy * stride - pad + ky;
                    if (iy < 0 || iy >= ih)
                        continue;
                    const float *row = src + static_cast<std::size_t>(oy) * ow;
                    float *drow = plane + static_cast<std::size_t>(iy) * iw;
                    for (int ox = 0; ox < ow; ++ox) {
                        const int ix = ox * stride - pad + kx;
                        if (ix >= 0 && ix < iw)
                            drow[ix] += row[ox];
                    }
                }
                src += ohw;
            }
        }
    }
}

bool &
naiveConvFlag()
{
    static bool flag = std::getenv("PTOLEMY_NAIVE_CONV") != nullptr;
    return flag;
}

} // namespace ptolemy::nn
