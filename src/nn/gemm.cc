#include "gemm.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "nn/gemm_kernels.hh"
#include "util/thread_pool.hh"

namespace ptolemy::nn
{

namespace
{

// Tile sizes for both cache blocking and the parallel work split: a
// TM x BK panel of A (32*128 floats = 16 KiB) and a BK x TN panel of B
// (128*256 floats = 128 KiB) stay resident while a TM x TN tile of C is
// streamed. TN is a multiple of 16 so the AVX2 column blocking is
// anchored identically no matter how the matrix is tiled, which keeps
// results bit-identical across thread counts.
constexpr int TM = 32;
constexpr int BK = 128;
constexpr int TN = 256;

// Products below this many FLOPs (2*M*N*K) are not worth waking the
// pool for; they run serially on the calling thread.
constexpr double kParallelFlopCutoff = 2.0 * 1024 * 1024;

/**
 * Inner scalar kernel: C[i0..imax) x [j0..jmax) += A-panel * B-panel.
 * @p a_at maps (i, k) to the A element so the same kernel serves the
 * NN and TN variants without a transposed copy. Unchanged from the
 * pre-parallel implementation: per-element accumulation order depends
 * only on the absolute BK blocking, so tiling and threading do not
 * change the numerics.
 */
template <typename AAt>
inline void
panelKernel(int i0, int imax, int j0, int jmax, int k0, int kmax, int N,
            AAt a_at, const float *B, float *C)
{
    for (int i = i0; i < imax; ++i) {
        float *c = C + static_cast<std::size_t>(i) * N;
        int k = k0;
        // Four A coefficients per pass quarters the C read/write traffic.
        for (; k + 3 < kmax; k += 4) {
            const float a0 = a_at(i, k);
            const float a1 = a_at(i, k + 1);
            const float a2 = a_at(i, k + 2);
            const float a3 = a_at(i, k + 3);
            const float *b0 = B + static_cast<std::size_t>(k) * N;
            const float *b1 = b0 + N;
            const float *b2 = b1 + N;
            const float *b3 = b2 + N;
            for (int j = j0; j < jmax; ++j)
                c[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
        for (; k < kmax; ++k) {
            const float a = a_at(i, k);
            const float *b = B + static_cast<std::size_t>(k) * N;
            for (int j = j0; j < jmax; ++j)
                c[j] += a * b[j];
        }
    }
}

/** One scalar C tile: zero (unless accumulating), then k-blocked panels. */
template <typename AAt>
inline void
scalarTile(int i0, int imax, int j0, int jmax, int K, int N, AAt a_at,
           const float *B, float *C, bool accumulate)
{
    if (!accumulate)
        for (int i = i0; i < imax; ++i)
            std::fill(C + static_cast<std::size_t>(i) * N + j0,
                      C + static_cast<std::size_t>(i) * N + jmax, 0.0f);
    for (int k0 = 0; k0 < K; k0 += BK)
        panelKernel(i0, imax, j0, jmax, k0, std::min(K, k0 + BK), N, a_at,
                    B, C);
}

/**
 * Run @p tile over the TM x TN grid covering [0,M) x [0,N), on the
 * gemm pool when the product is large enough, serially otherwise.
 * Tiles write disjoint C regions and each element's value is
 * independent of the partition, so any interleaving is equivalent.
 */
template <typename TileFn>
void
forEachTile(int M, int N, double flops, TileFn tile)
{
    const int mt = (M + TM - 1) / TM;
    const int nt = (N + TN - 1) / TN;
    const std::size_t n_tasks =
        static_cast<std::size_t>(mt) * static_cast<std::size_t>(nt);
    ThreadPool *pool = gemmPool();
    auto run = [&](std::size_t t) {
        const int i0 = static_cast<int>(t / nt) * TM;
        const int j0 = static_cast<int>(t % nt) * TN;
        tile(i0, std::min(M, i0 + TM), j0, std::min(N, j0 + TN));
    };
    if (pool && pool->size() > 1 && n_tasks > 1 &&
        flops >= kParallelFlopCutoff) {
        pool->parallelFor(n_tasks, run);
        return;
    }
    for (std::size_t t = 0; t < n_tasks; ++t)
        run(t);
}

bool
useAvx2()
{
#ifdef PTOLEMY_HAVE_AVX2
    return simdMode() == SimdMode::Avx2;
#else
    return false;
#endif
}

} // namespace

ThreadPool *&
gemmPool()
{
    static ThreadPool *pool = &globalPool();
    return pool;
}

namespace
{

/**
 * Shared NN/TN driver: the A element for output row i, depth k is
 * a_base[i * a_row_stride + k * a_elem_stride], so the NN layout is
 * (K, 1) and the TN layout is (1, M). Both kernel families take the
 * strides directly; the dispatch and pool gating live here once.
 */
void
gemmDriver(int M, int N, int K, const float *a_base,
           std::ptrdiff_t a_row_stride, std::ptrdiff_t a_elem_stride,
           const float *B, float *C, bool accumulate)
{
    const double flops = 2.0 * M * N * K;
#ifdef PTOLEMY_HAVE_AVX2
    if (useAvx2()) {
        forEachTile(M, N, flops, [&](int i0, int imax, int j0, int jmax) {
            detail::avx2GemmTile(i0, imax, j0, jmax, K, a_base,
                                 a_row_stride, a_elem_stride, B, N, C, N,
                                 accumulate);
        });
        return;
    }
#endif
    const auto a_at = [a_base, a_row_stride, a_elem_stride](int i, int k) {
        return a_base[i * a_row_stride + k * a_elem_stride];
    };
    forEachTile(M, N, flops, [&](int i0, int imax, int j0, int jmax) {
        scalarTile(i0, imax, j0, jmax, K, N, a_at, B, C, accumulate);
    });
}

} // namespace

void
sgemm(int M, int N, int K, const float *A, const float *B, float *C,
      bool accumulate)
{
    gemmDriver(M, N, K, A, /*a_row_stride=*/K, /*a_elem_stride=*/1, B, C,
               accumulate);
}

void
sgemmTN(int M, int N, int K, const float *A, const float *B, float *C,
        bool accumulate)
{
    gemmDriver(M, N, K, A, /*a_row_stride=*/1, /*a_elem_stride=*/M, B, C,
               accumulate);
}

namespace
{

void
scalarNTRows(int i0, int i1, int N, int K, const float *A, const float *B,
             float *C, bool accumulate)
{
    for (int i = i0; i < i1; ++i) {
        const float *a = A + static_cast<std::size_t>(i) * K;
        float *c = C + static_cast<std::size_t>(i) * N;
        for (int j = 0; j < N; ++j) {
            const float *b = B + static_cast<std::size_t>(j) * K;
            float s = 0.0f;
            for (int k = 0; k < K; ++k)
                s += a[k] * b[k];
            if (accumulate)
                c[j] += s;
            else
                c[j] = s;
        }
    }
}

} // namespace

void
sgemmNT(int M, int N, int K, const float *A, const float *B, float *C,
        bool accumulate)
{
    // Each output is an independent contiguous dot product; parallelism
    // splits rows, which cannot change any element's accumulation order.
    const double flops = 2.0 * M * N * K;
    const int rows_per_task = std::max(1, TM / 4);
    const std::size_t n_tasks =
        static_cast<std::size_t>((M + rows_per_task - 1) / rows_per_task);
    ThreadPool *pool = gemmPool();
    auto run = [&](std::size_t t) {
        const int i0 = static_cast<int>(t) * rows_per_task;
        const int i1 = std::min(M, i0 + rows_per_task);
#ifdef PTOLEMY_HAVE_AVX2
        if (useAvx2()) {
            detail::avx2GemmNTRows(i0, i1, N, K, A, B, C, accumulate);
            return;
        }
#endif
        scalarNTRows(i0, i1, N, K, A, B, C, accumulate);
    };
    if (pool && pool->size() > 1 && n_tasks > 1 &&
        flops >= kParallelFlopCutoff) {
        pool->parallelFor(n_tasks, run);
        return;
    }
    for (std::size_t t = 0; t < n_tasks; ++t)
        run(t);
}

namespace
{

/**
 * One scalar gemv row: bias-seeded sequential dot product (the
 * historical Linear-layer numerics). noinline pins a single codegen of
 * the accumulation chain, so the single-sample and batched entry
 * points below produce bit-identical results per (row, sample) — the
 * compiler cannot contract or unroll them differently per call site.
 */
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
float
scalarGemvRowDotBias(const float *a, const float *x, int K, float bias)
{
    float s = bias;
    for (int k = 0; k < K; ++k)
        s += a[k] * x[k];
    return s;
}

} // namespace

void
sgemvBias(int M, int K, const float *A, const float *x, const float *bias,
          float *y)
{
#ifdef PTOLEMY_HAVE_AVX2
    if (useAvx2()) {
        detail::avx2GemvBias(M, K, A, x, bias, y);
        return;
    }
#endif
    for (int i = 0; i < M; ++i)
        y[i] = scalarGemvRowDotBias(A + static_cast<std::size_t>(i) * K, x,
                                    K, bias[i]);
}

void
sgemvBiasBatch(int M, int K, const float *A, const float *bias,
               const float *const *xs, float *const *ys, int S)
{
#ifdef PTOLEMY_HAVE_AVX2
    if (useAvx2()) {
        detail::avx2GemvBiasBatch(M, K, A, bias, xs, ys, S);
        return;
    }
#endif
    // Weight-row loop outermost: A streams once per batch, the samples'
    // input vectors stay cache-resident. Each cell runs the exact
    // single-sample row kernel, so results are bit-identical to S
    // sgemvBias calls.
    for (int i = 0; i < M; ++i) {
        const float *a = A + static_cast<std::size_t>(i) * K;
        const float b = bias[i];
        for (int s = 0; s < S; ++s)
            ys[s][i] = scalarGemvRowDotBias(a, xs[s], K, b);
    }
}

void
sgemvT(int M, int K, const float *A, const float *x, float *y, bool accumulate)
{
    if (!accumulate)
        std::fill(y, y + K, 0.0f);
    for (int i = 0; i < M; ++i) {
        const float xi = x[i];
        if (xi == 0.0f)
            continue;
        const float *a = A + static_cast<std::size_t>(i) * K;
        for (int k = 0; k < K; ++k)
            y[k] += xi * a[k];
    }
}

GemmScratch &
gemmScratch()
{
    thread_local GemmScratch scratch;
    return scratch;
}

void
im2col(const float *in, int in_c, int ih, int iw, int k, int stride, int pad,
       int oh, int ow, std::vector<float> &col)
{
    const std::size_t ohw = static_cast<std::size_t>(oh) * ow;
    col.resize(static_cast<std::size_t>(in_c) * k * k * ohw);
    im2colInto(in, in_c, ih, iw, k, stride, pad, oh, ow, col.data(), ohw);
}

void
im2colInto(const float *in, int in_c, int ih, int iw, int k, int stride,
           int pad, int oh, int ow, float *col, std::size_t row_stride)
{
    float *dst = col;
    for (int ic = 0; ic < in_c; ++ic) {
        const float *plane = in + static_cast<std::size_t>(ic) * ih * iw;
        for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
                for (int oy = 0; oy < oh; ++oy) {
                    const int iy = oy * stride - pad + ky;
                    float *row = dst + static_cast<std::size_t>(oy) * ow;
                    if (iy < 0 || iy >= ih) {
                        std::memset(row, 0, sizeof(float) * ow);
                        continue;
                    }
                    const float *src = plane + static_cast<std::size_t>(iy) * iw;
                    if (stride == 1) {
                        // Contiguous tap run; clamp the borders once. All
                        // three extents are clamped to the row so kernel
                        // footprints wider than the padded image (e.g.
                        // k=5, pad=2 on a 1-wide input) stay in bounds.
                        const int ix0 = -pad + kx;
                        const int lead = std::clamp(-ix0, 0, ow);
                        const int valid_end = std::clamp(iw - ix0, 0, ow);
                        const int body = std::max(0, valid_end - lead);
                        const int tail = ow - lead - body;
                        if (lead > 0)
                            std::memset(row, 0, sizeof(float) * lead);
                        if (body > 0)
                            std::memcpy(row + lead, src + ix0 + lead,
                                        sizeof(float) * body);
                        if (tail > 0)
                            std::memset(row + lead + body, 0,
                                        sizeof(float) * tail);
                    } else {
                        for (int ox = 0; ox < ow; ++ox) {
                            const int ix = ox * stride - pad + kx;
                            row[ox] = (ix < 0 || ix >= iw) ? 0.0f : src[ix];
                        }
                    }
                }
                dst += row_stride;
            }
        }
    }
}

void
col2im(const std::vector<float> &col, int in_c, int ih, int iw, int k,
       int stride, int pad, int oh, int ow, float *grad_in)
{
    const std::size_t ohw = static_cast<std::size_t>(oh) * ow;
    const float *src = col.data();
    for (int ic = 0; ic < in_c; ++ic) {
        float *plane = grad_in + static_cast<std::size_t>(ic) * ih * iw;
        for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
                for (int oy = 0; oy < oh; ++oy) {
                    const int iy = oy * stride - pad + ky;
                    if (iy < 0 || iy >= ih)
                        continue;
                    const float *row = src + static_cast<std::size_t>(oy) * ow;
                    float *drow = plane + static_cast<std::size_t>(iy) * iw;
                    for (int ox = 0; ox < ow; ++ox) {
                        const int ix = ox * stride - pad + kx;
                        if (ix >= 0 && ix < iw)
                            drow[ix] += row[ox];
                    }
                }
                src += ohw;
            }
        }
    }
}

bool &
naiveConvFlag()
{
    static bool flag = std::getenv("PTOLEMY_NAIVE_CONV") != nullptr;
    return flag;
}

} // namespace ptolemy::nn
