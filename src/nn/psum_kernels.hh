/**
 * @file
 * Internal AVX2 kernel interface for partial-sum construction, shared
 * between the dispatching layers (linear.cc, conv.cc) and the AVX2 TU
 * (psum_avx2.cc). Same arrangement as gemm_kernels.hh: only
 * psum_avx2.cc is compiled with -mavx2 -mfma.
 *
 * Partial-sum values are single products w[i] * x[i] — one rounding
 * each — so the vector kernels are bit-identical to the scalar loops
 * by construction; there is no accumulation order to preserve.
 */

#ifndef PTOLEMY_NN_PSUM_KERNELS_HH
#define PTOLEMY_NN_PSUM_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace ptolemy::nn
{
struct PartialSum;
}

namespace ptolemy::nn::detail
{

#ifdef PTOLEMY_HAVE_AVX2

/**
 * out[i] = { i, w[i] * x[i] } for i in [0, n): the full partial-sum
 * row of one Linear output neuron. @p out must already hold n entries.
 * 8 products per iteration, index iota and product vectors interleaved
 * into (index, value) pairs with unpack/permute; scalar tail.
 */
void avx2PartialProducts(const float *w, const float *x, std::uint32_t n,
                         PartialSum *out);

/**
 * Array position of the ranked-first entry of p[0, n): highest value,
 * ties broken by the smaller inputIndex (the extraction total order).
 * Pure comparisons — no float arithmetic — so the result is exactly
 * the scalar scan's, independent of lane count. n must be >= 1.
 */
std::size_t avx2ArgmaxRanked(const PartialSum *p, std::size_t n);

#endif // PTOLEMY_HAVE_AVX2

} // namespace ptolemy::nn::detail

#endif // PTOLEMY_NN_PSUM_KERNELS_HH
