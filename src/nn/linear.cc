#include "linear.hh"

#include <cassert>

namespace ptolemy::nn
{

Linear::Linear(std::string name, int in_n, int out_n)
    : Layer(std::move(name)), inN(in_n), outN(out_n),
      weight(static_cast<std::size_t>(in_n) * out_n, 0.0f), bias(out_n, 0.0f),
      gradWeight(weight.size(), 0.0f), gradBias(out_n, 0.0f)
{
}

Shape
Linear::outputShape(const std::vector<Shape> &ins) const
{
    assert(ins.size() == 1 && static_cast<int>(ins[0].numel()) == inN);
    (void)ins;
    return flatShape(outN);
}

Tensor
Linear::forward(const std::vector<const Tensor *> &ins, bool train)
{
    (void)train;
    const Tensor &in = *ins[0];
    assert(static_cast<int>(in.size()) == inN);
    lastInput = in;
    Tensor out(flatShape(outN));
    for (int o = 0; o < outN; ++o) {
        float acc = bias[o];
        const float *wrow = &weight[static_cast<std::size_t>(o) * inN];
        const float *x = in.data();
        for (int i = 0; i < inN; ++i)
            acc += wrow[i] * x[i];
        out[o] = acc;
    }
    return out;
}

std::vector<Tensor>
Linear::backward(const Tensor &grad_out)
{
    const Tensor &in = lastInput;
    Tensor grad_in(in.shape());
    for (int o = 0; o < outN; ++o) {
        const float g = grad_out[o];
        if (g == 0.0f)
            continue;
        gradBias[o] += g;
        float *gwrow = &gradWeight[static_cast<std::size_t>(o) * inN];
        const float *wrow = &weight[static_cast<std::size_t>(o) * inN];
        for (int i = 0; i < inN; ++i) {
            gwrow[i] += g * in[i];
            grad_in[i] += g * wrow[i];
        }
    }
    std::vector<Tensor> grads;
    grads.push_back(std::move(grad_in));
    return grads;
}

std::vector<Param>
Linear::params()
{
    return {{&weight, &gradWeight}, {&bias, &gradBias}};
}

void
Linear::partialSums(const Tensor &input, std::size_t out_index,
                    std::vector<PartialSum> &out) const
{
    out.clear();
    out.reserve(inN);
    const float *wrow = &weight[out_index * inN];
    for (int i = 0; i < inN; ++i)
        out.push_back({static_cast<std::size_t>(i), wrow[i] * input[i]});
}

std::size_t
Linear::receptiveFieldSize() const
{
    return static_cast<std::size_t>(inN);
}

} // namespace ptolemy::nn
