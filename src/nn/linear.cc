#include "linear.hh"

#include <cassert>

#include "nn/gemm.hh"
#include "nn/psum_kernels.hh"

namespace ptolemy::nn
{

Linear::Linear(std::string name, int in_n, int out_n)
    : Layer(std::move(name)), inN(in_n), outN(out_n),
      weight(static_cast<std::size_t>(in_n) * out_n, 0.0f), bias(out_n, 0.0f),
      gradWeight(weight.size(), 0.0f), gradBias(out_n, 0.0f)
{
}

void
Linear::prepackWeights() const
{
    if (packedW.size() == weight.size())
        return; // fresh — stay a pure read (serving-safe no-op)
    packedW.assign(weight.begin(), weight.end());
}

const float *
Linear::servingWeights() const
{
    return (!packedW.empty() && prepackEnabled()) ? packedW.data()
                                                  : weight.data();
}

Shape
Linear::outputShape(const std::vector<Shape> &ins) const
{
    assert(ins.size() == 1 && static_cast<int>(ins[0].numel()) == inN);
    (void)ins;
    return flatShape(outN);
}

void
Linear::forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                    bool train) const
{
    (void)train;
    const Tensor &in = *ins[0];
    assert(static_cast<int>(in.size()) == inN);
    out.resize(flatShape(outN));
    sgemvBias(outN, inN, servingWeights(), in.data(), bias.data(),
              out.data());
}

void
Linear::forwardBatchInto(std::span<const Tensor *const> ins,
                         std::span<Tensor *const> outs) const
{
    const std::size_t S = ins.size();
    if (S <= 1) {
        Layer::forwardBatchInto(ins, outs);
        return;
    }
    auto &scratch = gemmScratch();
    scratch.xsWide.resize(S);
    scratch.ysWide.resize(S);
    for (std::size_t s = 0; s < S; ++s) {
        assert(static_cast<int>(ins[s]->size()) == inN);
        outs[s]->resize(flatShape(outN));
        scratch.xsWide[s] = ins[s]->data();
        scratch.ysWide[s] = outs[s]->data();
    }
    sgemvBiasBatch(outN, inN, servingWeights(), bias.data(),
                   scratch.xsWide.data(), scratch.ysWide.data(),
                   static_cast<int>(S));
}

void
Linear::backwardInto(const std::vector<const Tensor *> &ins,
                     const Tensor &grad_out,
                     const std::vector<GradSink> &sinks,
                     std::vector<float> *const *param_grads)
{
    const Tensor &in = *ins[0];
    Tensor &grad_in = *sinks[0].grad;
    if (!sinks[0].accumulate)
        grad_in.resize(in.shape());
    // grad_in = W^T * grad_out; the kernel skips zero gradient rows just
    // like the fused scalar loop did, and its accumulate flag directly
    // implements the sink's overwrite/accumulate contract.
    sgemvT(outN, inN, weight.data(), grad_out.data(), grad_in.data(),
           sinks[0].accumulate);
    if (param_grads == skipParamGrads())
        return; // input-gradient-only backward
    auto &grad_w = param_grads ? *param_grads[0] : gradWeight;
    auto &grad_b = param_grads ? *param_grads[1] : gradBias;
    for (int o = 0; o < outN; ++o) {
        const float g = grad_out[o];
        if (g == 0.0f)
            continue;
        grad_b[o] += g;
        float *gwrow = &grad_w[static_cast<std::size_t>(o) * inN];
        for (int i = 0; i < inN; ++i)
            gwrow[i] += g * in[i];
    }
}

std::vector<Param>
Linear::params()
{
    return {{&weight, &gradWeight}, {&bias, &gradBias}};
}

void
Linear::partialSums(const Tensor &input, std::size_t out_index,
                    std::vector<PartialSum> &out) const
{
    const float *wrow = &weight[out_index * inN];
#ifdef PTOLEMY_HAVE_AVX2
    if (simdMode() == SimdMode::Avx2) {
        // Values are single products (one rounding each), so the vector
        // kernel is bit-identical to the scalar loop below.
        out.resize(static_cast<std::size_t>(inN));
        detail::avx2PartialProducts(wrow, input.data(),
                                    static_cast<std::uint32_t>(inN),
                                    out.data());
        return;
    }
#endif
    out.clear();
    out.reserve(inN);
    for (int i = 0; i < inN; ++i)
        out.push_back({static_cast<std::uint32_t>(i), wrow[i] * input[i]});
}

std::size_t
Linear::receptiveFieldSize() const
{
    return static_cast<std::size_t>(inN);
}

} // namespace ptolemy::nn
