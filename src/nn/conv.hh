/**
 * @file
 * 2-D convolution layer (NCHW, square kernel, zero padding).
 */

#ifndef PTOLEMY_NN_CONV_HH
#define PTOLEMY_NN_CONV_HH

#include <vector>

#include "nn/gemm.hh"
#include "nn/layer.hh"

namespace ptolemy::nn
{

/**
 * Standard 2-D convolution with bias.
 *
 * Weight layout: [outC][inC][k][k]; bias: [outC].
 */
class Conv2d : public Layer
{
  public:
    /**
     * @param name layer name (unique within a network).
     * @param in_c input channels.
     * @param out_c output channels.
     * @param k square kernel size.
     * @param stride stride in both dimensions.
     * @param pad zero padding on each border.
     */
    Conv2d(std::string name, int in_c, int out_c, int k, int stride = 1,
           int pad = 1);

    LayerKind kind() const override { return LayerKind::Conv; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train) const override;
    bool supportsBatchedForward() const override { return true; }
    /**
     * Wide-batch forward: every sample's im2col columns land in one
     * [inC*k*k x S*oh*ow] matrix (at column offset s*oh*ow), one SGEMM
     * covers the chunk, and the bias-fused scatter splits the wide
     * output back per sample. Bit-identical to S forwardInto calls —
     * the SGEMM kernels' per-element results depend only on
     * (row, column, K), never on column placement. Falls back to the
     * per-sample loop for S <= 1, naive-conv mode, or mixed input
     * shapes.
     */
    void forwardBatchInto(std::span<const Tensor *const> ins,
                          std::span<Tensor *const> outs) const override;
    void backwardInto(const std::vector<const Tensor *> &ins,
                      const Tensor &grad_out,
                      const std::vector<GradSink> &sinks,
                      std::vector<float> *const *param_grads) override;
    std::vector<Param> params() override;
    bool weighted() const override { return true; }
    void partialSums(const Tensor &input, std::size_t out_index,
                     std::vector<PartialSum> &out) const override;
    std::size_t receptiveFieldSize() const override;

    /**
     * Pack W^T [inC*k*k x outC] into the persistent blocked panel
     * layout the fused serving forward consumes (convForwardPacked).
     * Pure read when already fresh; see Layer::prepackWeights for the
     * ownership contract.
     */
    void prepackWeights() const override;
    void invalidatePackedWeights() override { packedWt.clear(); }

    int inChannels() const { return inC; }
    int outChannels() const { return outC; }
    int kernel() const { return kSize; }
    int strideOf() const { return strd; }
    int padOf() const { return padding; }

    /** Direct access for initializers and tests. Non-const access
     *  invalidates the packed weight cache (the values may change). */
    std::vector<float> &
    weights()
    {
        invalidatePackedWeights();
        return weight;
    }
    std::vector<float> &
    biases()
    {
        // Bias is read live by every forward path (never packed), but
        // dropping the cache keeps the staleness story uniform.
        invalidatePackedWeights();
        return bias;
    }

  private:
    /** Output shape for one input shape, allocation-free. */
    Shape outShapeFor(const Shape &in) const;
    /** True when the fused packed serving forward should run: AVX2
     *  build+mode, PTOLEMY_PREPACK on, and a fresh packed panel. */
    bool usePackedForward() const;
    /** Scalar reference forward (PTOLEMY_NAIVE_CONV / equivalence tests). */
    void forwardNaive(const Tensor &in, Tensor &out) const;
    /** GEMM forward: im2col + cache-blocked sgemm (the hot path). */
    void forwardGemm(const Tensor &in, Tensor &out) const;
    /** Scalar reference backward. Null @p grad_w / @p grad_b skip the
     *  parameter-gradient arithmetic (input-gradient-only backward). */
    void backwardNaive(const Tensor &in, const Tensor &grad_out,
                       const GradSink &sink, std::vector<float> *grad_w,
                       std::vector<float> *grad_b);
    /** GEMM backward: grad_W via NT, grad_in via TN + col2im. Null
     *  @p grad_w / @p grad_b skip the dW GEMM and its im2col. */
    void backwardGemm(const Tensor &in, const Tensor &grad_out,
                      const GradSink &sink, std::vector<float> *grad_w,
                      std::vector<float> *grad_b);

    float &
    wAt(int oc, int ic, int ky, int kx)
    {
        return weight[((static_cast<std::size_t>(oc) * inC + ic) * kSize +
                       ky) * kSize + kx];
    }

    float
    wAt(int oc, int ic, int ky, int kx) const
    {
        return weight[((static_cast<std::size_t>(oc) * inC + ic) * kSize +
                       ky) * kSize + kx];
    }

    int inC, outC, kSize, strd, padding;
    std::vector<float> weight, bias;
    std::vector<float> gradWeight, gradBias;
    /** Serving-time packed W^T panels; mutable const-cache filled by
     *  prepackWeights (owner phase only — see Layer contract). */
    mutable PackedB packedWt;
};

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_CONV_HH
