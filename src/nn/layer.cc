#include "layer.hh"

namespace ptolemy::nn
{

std::vector<float> *const *
skipParamGrads()
{
    // Unique address compared against by layers with parameters; the
    // pointed-to slot is never read.
    static std::vector<float> *const sentinel[1] = {nullptr};
    return sentinel;
}

const char *
layerKindName(LayerKind k)
{
    switch (k) {
      case LayerKind::Conv: return "conv";
      case LayerKind::Linear: return "linear";
      case LayerKind::ReLU: return "relu";
      case LayerKind::MaxPool: return "maxpool";
      case LayerKind::GlobalAvgPool: return "gavgpool";
      case LayerKind::Flatten: return "flatten";
      case LayerKind::Add: return "add";
      case LayerKind::Concat: return "concat";
      case LayerKind::Norm: return "norm";
      case LayerKind::Downsample: return "downsample";
    }
    return "?";
}

Tensor
Layer::forward(const std::vector<const Tensor *> &ins, bool train)
{
    Tensor out;
    forwardInto(ins, out, train);
    if (train) {
        // Single-sample streaming semantics: fold the deferred state
        // update right away. Batched training defers this to the batch
        // boundary instead (Network::applyTrainState).
        const std::size_t n = trainStateSize();
        if (n > 0) {
            std::vector<float> st(n);
            collectTrainState(ins, st.data());
            applyTrainState(st.data());
        }
    }
    return out;
}

void
Layer::forwardBatchInto(std::span<const Tensor *const> ins,
                        std::span<Tensor *const> outs) const
{
    // Reference implementation: per-sample forwardInto. The thread_local
    // ins vector keeps a warmed-up call allocation-free.
    thread_local std::vector<const Tensor *> one;
    one.resize(1);
    for (std::size_t s = 0; s < ins.size(); ++s) {
        one[0] = ins[s];
        forwardInto(one, *outs[s], /*train=*/false);
    }
}

std::vector<Tensor>
Layer::backward(const std::vector<const Tensor *> &ins,
                const Tensor &grad_out)
{
    std::vector<Tensor> grads(static_cast<std::size_t>(numInputs()));
    std::vector<GradSink> sinks;
    sinks.reserve(grads.size());
    for (auto &g : grads)
        sinks.push_back({&g, /*accumulate=*/false});
    backwardInto(ins, grad_out, sinks, /*param_grads=*/nullptr);
    return grads;
}

void
Layer::backmapImportant(const std::vector<const Tensor *> &ins,
                        const Tensor &out,
                        const std::vector<std::size_t> &out_idx,
                        std::vector<std::vector<std::size_t>> &per_input) const
{
    // Default: element-wise unary layer; importance maps through
    // identically (covers ReLU, Norm, Flatten).
    (void)ins;
    (void)out;
    per_input.assign(1, out_idx);
}

} // namespace ptolemy::nn
