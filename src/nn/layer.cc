#include "layer.hh"

namespace ptolemy::nn
{

const char *
layerKindName(LayerKind k)
{
    switch (k) {
      case LayerKind::Conv: return "conv";
      case LayerKind::Linear: return "linear";
      case LayerKind::ReLU: return "relu";
      case LayerKind::MaxPool: return "maxpool";
      case LayerKind::GlobalAvgPool: return "gavgpool";
      case LayerKind::Flatten: return "flatten";
      case LayerKind::Add: return "add";
      case LayerKind::Concat: return "concat";
      case LayerKind::Norm: return "norm";
      case LayerKind::Downsample: return "downsample";
    }
    return "?";
}

void
Layer::backmapImportant(const std::vector<const Tensor *> &ins,
                        const Tensor &out,
                        const std::vector<std::size_t> &out_idx,
                        std::vector<std::vector<std::size_t>> &per_input) const
{
    // Default: element-wise unary layer; importance maps through
    // identically (covers ReLU, Norm, Flatten).
    (void)ins;
    (void)out;
    per_input.assign(1, out_idx);
}

} // namespace ptolemy::nn
