/**
 * @file
 * DAG of layers with activation recording.
 *
 * The network is the substrate both for inference/training and for the
 * Ptolemy detector: a forward pass records every node's output tensor
 * (the "feature maps" the paper's extractor walks), and the node graph
 * exposes which nodes are weighted so the extractor can follow the data
 * graph backward through residual adds, concats and pools.
 *
 * Layers are stateless across passes (see Layer), so a Record is all
 * the context a pass carries: any recorded pass — including one from
 * forwardBatch — can be differentiated later by handing the Record to
 * backward(). Per-slot GradArena scratch plus caller-owned parameter-
 * gradient clones make forward+backward safe to run concurrently for
 * different samples against one network, which is what the
 * data-parallel trainer rides on.
 */

#ifndef PTOLEMY_NN_NETWORK_HH
#define PTOLEMY_NN_NETWORK_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.hh"
#include "nn/tensor.hh"

namespace ptolemy
{
class ThreadPool;
}

namespace ptolemy::nn
{

/**
 * Feed-forward DAG. Nodes must be added in topological order; input id -1
 * denotes the network input. The last added node is the output (logits).
 */
class Network
{
  public:
    /** One graph node: a layer plus the node ids feeding it. */
    struct Node
    {
        std::unique_ptr<Layer> layer;
        std::vector<int> inputs; ///< node ids; -1 = network input
        Shape outShape;
    };

    /** Recorded activations of one forward pass. */
    struct Record
    {
        Tensor input;
        std::vector<Tensor> outputs; ///< per node, in node order

        /** Network output (logits) — last node's output. */
        const Tensor &logits() const { return outputs.back(); }

        /** Predicted class. */
        std::size_t predictedClass() const { return logits().argmax(); }
    };

    /**
     * Per-slot forward/backward scratch: input-pointer views for the
     * node walk plus the gradient arena (per-node output gradients,
     * seeded flags, sink/seed scratch). One arena per concurrent pass;
     * every buffer is reused across calls, so a warmed-up
     * forward+backward loop performs no heap allocation. The trainer
     * keeps one per ThreadPool slot.
     */
    struct GradArena
    {
        std::vector<const Tensor *> ins;  ///< forward/backward input views
        std::vector<Tensor> gradAt;       ///< per node output gradient
        std::vector<std::uint8_t> seeded; ///< gradAt[i] valid this pass
        Tensor gradInput;
        bool gradInputSeeded = false;
        std::vector<GradSink> sinks;      ///< per-node sink scratch
        std::vector<std::pair<int, Tensor>> seeds; ///< backward() scratch
        std::vector<std::vector<float> *> pgradPtrs; ///< per-param dests
    };

    Network(std::string name, Shape input_shape)
        : netName(std::move(name)), inShape(input_shape)
    {}

    const std::string &name() const { return netName; }
    const Shape &inputShape() const { return inShape; }

    /**
     * Append a layer.
     * @param layer the layer (ownership transfers).
     * @param inputs feeding node ids; empty means "previous node"
     *        (or the network input for the first node).
     * @return the new node's id.
     */
    int add(std::unique_ptr<Layer> layer, std::vector<int> inputs = {});

    int numNodes() const { return static_cast<int>(nodes.size()); }
    const Node &node(int id) const { return nodes[id]; }
    Layer &layerAt(int id) { return *nodes[id].layer; }
    const Layer &layerAt(int id) const { return *nodes[id].layer; }

    /** Shape a node consumes/produces. */
    Shape nodeInputShape(int id, int input_slot = 0) const;
    const Shape &nodeOutputShape(int id) const { return nodes[id].outShape; }

    /** Node ids of weighted (conv/linear) layers, topological order. */
    const std::vector<int> &weightedNodes() const { return weightedIds; }

    /** Node ids that consume node @p id's output (or the input for -1). */
    std::vector<int> consumersOf(int id) const;

    /** Run the network, recording every node's output. */
    Record forward(const Tensor &x, bool train = false);

    /**
     * Run the network into a caller-owned Record. Re-using the same
     * Record across calls makes the steady-state forward pass
     * allocation-free: every node output and the recorded input are
     * written into the buffers of the previous pass. With train=true,
     * deferred layer-state updates (Norm running statistics) are
     * folded in immediately — the single-sample streaming semantics a
     * hand-rolled training loop expects.
     */
    void forwardInto(const Tensor &x, Record &rec, bool train = false);

    /**
     * forwardInto with caller-owned node-input scratch: several threads
     * may run this concurrently against one network, each with its own
     * Record and GradArena (the member-scratch overload above is for
     * single-stream callers only). This overload NEVER touches layer
     * state — with train=true the caller owns the deferred stat fold
     * (collectTrainState per sample, applyTrainState in sample order at
     * the batch boundary), which is how the trainer keeps parallel
     * training deterministic. Const: legal on a shared, frozen network.
     */
    void forwardInto(const Tensor &x, Record &rec, bool train,
                     GradArena &slot) const;

    /**
     * Const inference entry point: run the network (train=false),
     * recording every node's output, without touching any member
     * scratch. Any number of threads may call this concurrently on one
     * frozen network, each with its own Record — the thread-safety
     * contract core::DetectorModel/DetectorSession serve on. The
     * node-input views live in thread-local scratch, so a warmed-up
     * loop performs no heap allocation and the results are
     * bit-identical to forwardInto(x, rec, false).
     */
    void inferInto(const Tensor &x, Record &rec) const;

    /** Argmax class of a const inference pass; @p rec is this caller's
     *  reusable record scratch. */
    std::size_t inferPredict(const Tensor &x, Record &rec) const
    {
        inferInto(x, rec);
        return rec.predictedClass();
    }

    /**
     * Run a batch of inputs, one Record per sample, optionally fanned
     * out over a thread pool. Records from a batch are full records:
     * any of them may be handed to backward() afterwards.
     *
     * @param xs batch inputs.
     * @param recs resized to xs.size(); per-sample records (buffers are
     *        reused across calls, so a persistent vector makes repeated
     *        batches allocation-free).
     * @param pool optional pool; samples are independent, so any
     *        interleaving is equivalent to the serial loop.
     */
    void forwardBatch(const std::vector<Tensor> &xs,
                      std::vector<Record> &recs,
                      ThreadPool *pool = nullptr) const;

    /**
     * As forwardBatch, but over borrowed tensors (no copies into a
     * contiguous vector): the batched attack engine and the
     * evaluation filter pass feed candidate views straight from their
     * owners. Worker-side scratch is thread-local, so a warmed-up
     * batch loop performs no heap allocation.
     */
    void forwardBatch(std::span<const Tensor *const> xs,
                      std::vector<Record> &recs,
                      ThreadPool *pool = nullptr) const;

    /**
     * Layer-major ("wide") batched inference: instead of running each
     * sample through the whole graph independently, every node runs
     * over the whole batch before the next node starts. Layers that
     * answer supportsBatchedForward() — conv and linear, the arithmetic
     * bulk — process the batch in one wide SGEMM / one weight stream
     * (see their forwardBatchInto contracts); the rest loop per sample
     * (fanned out on @p pool when provided).
     *
     * Every Record is a full record, bit-identical to what
     * forwardBatch/inferInto produce for the same sample at any batch
     * size, chunking, or thread count — wide mode is a throughput
     * lever, never a numerics change. Inference-only (train=false
     * semantics); records may still be handed to backward().
     *
     * Unlike forwardBatch, @p recs is grown but never shrunk (only the
     * first xs.size() records are written), so a chunked serving loop
     * with a short tail keeps its warm record buffers.
     */
    void forwardBatchWide(std::span<const Tensor *const> xs,
                          std::vector<Record> &recs,
                          ThreadPool *pool = nullptr) const;

    /** As above, over owned tensors. */
    void forwardBatchWide(const std::vector<Tensor> &xs,
                          std::vector<Record> &recs,
                          ThreadPool *pool = nullptr) const;

    /**
     * Back-propagate from the logits of a recorded pass.
     * @param rec the record produced by the matching forward pass on
     *        this network; throws std::logic_error if it does not cover
     *        every node.
     * @param grad_logits dLoss/dLogits.
     * @return dLoss/dInput, borrowed from the network's gradient arena;
     *         valid until the next backward on this network. A warmed-up
     *         forward/backward loop performs no heap allocation.
     */
    const Tensor &backward(const Record &rec, const Tensor &grad_logits);

    /**
     * As backward(rec, grad_logits), but with caller-owned scratch and
     * gradient destinations so several samples can back-propagate
     * concurrently on one network.
     * @param slot this pass's scratch arena; the returned tensor is
     *        borrowed from it.
     * @param param_grads when non-null, parameter gradients accumulate
     *        into these flat buffers (flatParams() order, sized like
     *        each parameter) instead of the layers' own grad buffers.
     */
    const Tensor &backward(const Record &rec, const Tensor &grad_logits,
                           GradArena &slot,
                           std::vector<std::vector<float>> *param_grads);

    /**
     * As the slot-scratch backward, but computing the input gradient
     * ONLY: parameter gradients are neither computed nor written
     * anywhere — weighted layers skip the dW/db arithmetic outright
     * (roughly half of a conv backward), and the returned input
     * gradient is bit-identical to the full backward's. This is the
     * batched attack engine's fast path: attacks consume dLoss/dInput
     * and nothing else.
     */
    const Tensor &backwardInputOnly(const Record &rec,
                                    const Tensor &grad_logits,
                                    GradArena &slot);

    /**
     * Back-propagate from gradients seeded at arbitrary nodes (used by the
     * adaptive attack, whose loss is defined on intermediate activations).
     * @param seeds (node id, dLoss/dNodeOutput) pairs.
     * @return dLoss/dInput.
     */
    const Tensor &backwardMulti(
        const Record &rec, const std::vector<std::pair<int, Tensor>> &seeds);

    /** Slot-scratch variant of backwardMulti (see backward above). */
    const Tensor &backwardMulti(
        const Record &rec, const std::vector<std::pair<int, Tensor>> &seeds,
        GradArena &slot, std::vector<std::vector<float>> *param_grads);

    /** Input-gradient-only variant of backwardMulti (see
     *  backwardInputOnly). */
    const Tensor &backwardMultiInputOnly(
        const Record &rec, const std::vector<std::pair<int, Tensor>> &seeds,
        GradArena &slot);

    /** Argmax class of a plain forward pass. */
    std::size_t predict(const Tensor &x);

    /** All trainable parameters in node order (fresh vector). */
    std::vector<Param> params();

    /**
     * Cached flat parameter list (same order as params()); the
     * canonical index space for per-lane gradient clones. The pointers
     * are stable, and repeated calls allocate nothing.
     */
    const std::vector<Param> &flatParams();

    /** Size @p bufs as parameter-gradient clones: one zeroed vector per
     *  flatParams() entry. */
    void allocParamGrads(std::vector<std::vector<float>> &bufs);

    /** Zero every parameter gradient. */
    void zeroGrads();

    /** Total trainable parameter count. */
    std::size_t numParams();

    /** Total floats of deferred train-state per sample (see Layer). */
    std::size_t trainStateSize();

    /**
     * Derive one training sample's deferred state updates (Norm running
     * statistics) from its record into @p dst (trainStateSize() floats,
     * node order). Pure — safe from any thread.
     */
    void collectTrainState(const Record &rec, float *dst);

    /** Fold one sample's deferred updates into the layers. Call
     *  serially, in a fixed sample order, for determinism. */
    void applyTrainState(const float *src);

    /**
     * Build every weighted layer's serving-time packed weight cache
     * (persistent packed SGEMM panels; see Layer::prepackWeights).
     * Call while this thread still owns the network exclusively —
     * core::DetectorModel's constructor does, before the model is
     * shared with serving threads. Idempotent pure read when fresh.
     */
    void prepackForServing() const;

    /** Drop all packed weight caches (weights are about to change).
     *  Forward falls back to the unpacked paths, bit-identically. */
    void invalidatePackedWeights();

    /**
     * Architecture signature used to validate weight caches: layer names,
     * kinds and parameter sizes.
     */
    std::string signature() const;

    /** Serialize parameters + state to @p path. @return success. */
    bool save(const std::string &path);

    /** Load parameters + state; fails if the signature mismatches. */
    bool load(const std::string &path);

  private:
    /** Build the cached parameter index (flat list + per-node spans). */
    void ensureParamIndex();

    /** Shared walk behind every backward entry point. */
    const Tensor &backwardMultiImpl(
        const Record &rec, const std::vector<std::pair<int, Tensor>> &seeds,
        GradArena &slot, std::vector<std::vector<float>> *param_grads,
        bool input_only);

    std::string netName;
    Shape inShape;
    std::vector<Node> nodes;
    std::vector<int> weightedIds;
    GradArena arena; ///< member scratch for the single-stream entry points
    std::vector<float> trainStateScratch; ///< single-stream stat folds
    // Cached parameter index: flat params, per-node offset into it, and
    // per-node deferred-train-state offsets. Rebuilt if nodes are added.
    std::vector<Param> flatParamCache;
    std::vector<std::size_t> nodeParamOffset; ///< per node, into flat list
    std::vector<std::size_t> nodeStateOffset; ///< per node, into state blob
    std::size_t stateFloats = 0;
    std::size_t paramIndexNodes = static_cast<std::size_t>(-1);
};

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_NETWORK_HH
