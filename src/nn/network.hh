/**
 * @file
 * DAG of layers with activation recording.
 *
 * The network is the substrate both for inference/training and for the
 * Ptolemy detector: a forward pass can record every node's output tensor
 * (the "feature maps" the paper's extractor walks), and the node graph
 * exposes which nodes are weighted so the extractor can follow the data
 * graph backward through residual adds, concats and pools.
 */

#ifndef PTOLEMY_NN_NETWORK_HH
#define PTOLEMY_NN_NETWORK_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hh"
#include "nn/tensor.hh"

namespace ptolemy
{
class ThreadPool;
}

namespace ptolemy::nn
{

/**
 * Feed-forward DAG. Nodes must be added in topological order; input id -1
 * denotes the network input. The last added node is the output (logits).
 */
class Network
{
  public:
    /** One graph node: a layer plus the node ids feeding it. */
    struct Node
    {
        std::unique_ptr<Layer> layer;
        std::vector<int> inputs; ///< node ids; -1 = network input
        Shape outShape;
    };

    /** Recorded activations of one forward pass. */
    struct Record
    {
        Tensor input;
        std::vector<Tensor> outputs; ///< per node, in node order
        /** True when the pass that produced this record stashed layer
         *  backward state (forwardInto stash=true). Records from
         *  forwardBatch are inference-only and carry false; a
         *  backward() after such a pass throws (debug tripwire). */
        bool stashed = false;

        /** Network output (logits) — last node's output. */
        const Tensor &logits() const { return outputs.back(); }

        /** Predicted class. */
        std::size_t predictedClass() const { return logits().argmax(); }
    };

    Network(std::string name, Shape input_shape)
        : netName(std::move(name)), inShape(input_shape)
    {}

    const std::string &name() const { return netName; }
    const Shape &inputShape() const { return inShape; }

    /**
     * Append a layer.
     * @param layer the layer (ownership transfers).
     * @param inputs feeding node ids; empty means "previous node"
     *        (or the network input for the first node).
     * @return the new node's id.
     */
    int add(std::unique_ptr<Layer> layer, std::vector<int> inputs = {});

    int numNodes() const { return static_cast<int>(nodes.size()); }
    const Node &node(int id) const { return nodes[id]; }
    Layer &layerAt(int id) { return *nodes[id].layer; }
    const Layer &layerAt(int id) const { return *nodes[id].layer; }

    /** Shape a node consumes/produces. */
    Shape nodeInputShape(int id, int input_slot = 0) const;
    const Shape &nodeOutputShape(int id) const { return nodes[id].outShape; }

    /** Node ids of weighted (conv/linear) layers, topological order. */
    const std::vector<int> &weightedNodes() const { return weightedIds; }

    /** Node ids that consume node @p id's output (or the input for -1). */
    std::vector<int> consumersOf(int id) const;

    /** Run the network, recording every node's output. */
    Record forward(const Tensor &x, bool train = false);

    /**
     * Run the network into a caller-owned Record. Re-using the same
     * Record across calls makes the steady-state forward pass
     * allocation-free: every node output and the stashed input are
     * written into the buffers of the previous pass.
     *
     * @param stash when true (default), layers stash the state their
     *        backward() needs. Pass false for inference-only passes;
     *        such a pass performs no writes to layer state, which is
     *        what makes forwardBatch safe to parallelize.
     */
    void forwardInto(const Tensor &x, Record &rec, bool train = false,
                     bool stash = true);

    /**
     * Run a batch of inputs, one Record per sample, optionally fanned
     * out over a thread pool. Records are inference-only (no backward
     * state is stashed): use them for extraction, detection and
     * evaluation, not for a following backward().
     *
     * @param xs batch inputs.
     * @param recs resized to xs.size(); per-sample records (buffers are
     *        reused across calls, so a persistent vector makes repeated
     *        batches allocation-free).
     * @param pool optional pool; samples are independent, so any
     *        interleaving is equivalent to the serial loop.
     */
    void forwardBatch(const std::vector<Tensor> &xs,
                      std::vector<Record> &recs,
                      ThreadPool *pool = nullptr);

    /**
     * Back-propagate from the logits. Must directly follow the matching
     * forward() on this network; throws std::logic_error if that pass
     * ran with stash=false (its records carry no backward state).
     * @param grad_logits dLoss/dLogits.
     * @return dLoss/dInput, borrowed from the network's gradient arena;
     *         valid until the next backward on this network. A warmed-up
     *         forward/backward loop performs no heap allocation.
     */
    const Tensor &backward(const Tensor &grad_logits);

    /**
     * Back-propagate from gradients seeded at arbitrary nodes (used by the
     * adaptive attack, whose loss is defined on intermediate activations).
     * Must directly follow the matching forward(); same stash tripwire
     * and arena-borrowed return as backward().
     * @param seeds (node id, dLoss/dNodeOutput) pairs.
     * @return dLoss/dInput.
     */
    const Tensor &backwardMulti(
        const std::vector<std::pair<int, Tensor>> &seeds);

    /** Argmax class of a plain forward pass. */
    std::size_t predict(const Tensor &x);

    /** All trainable parameters in node order. */
    std::vector<Param> params();

    /** Zero every parameter gradient. */
    void zeroGrads();

    /** Total trainable parameter count. */
    std::size_t numParams();

    /**
     * Architecture signature used to validate weight caches: layer names,
     * kinds and parameter sizes.
     */
    std::string signature() const;

    /** Serialize parameters + state to @p path. @return success. */
    bool save(const std::string &path);

    /** Load parameters + state; fails if the signature mismatches. */
    bool load(const std::string &path);

  private:
    /**
     * Reusable backward scratch mirroring Record: per-node output
     * gradients plus the input gradient, with seeded flags so stale
     * tensors from the previous call are never read. Keeping the
     * tensors across calls makes steady-state backward allocation-free.
     */
    struct GradArena
    {
        std::vector<Tensor> gradAt;       ///< per node output gradient
        std::vector<std::uint8_t> seeded; ///< gradAt[i] valid this pass
        Tensor gradInput;
        bool gradInputSeeded = false;
        std::vector<GradSink> sinks; ///< per-call sink scratch
    };

    std::string netName;
    Shape inShape;
    std::vector<Node> nodes;
    std::vector<int> weightedIds;
    std::vector<const Tensor *> insScratch; ///< forwardInto input views
    GradArena arena;
    bool lastStash = false; ///< did the last forward pass stash state?
};

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_NETWORK_HH
