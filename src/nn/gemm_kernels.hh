/**
 * @file
 * Internal SGEMM tile-kernel interface shared between the portable
 * driver (gemm.cc) and the AVX2/FMA translation unit (gemm_avx2.cc).
 *
 * The AVX2 kernels live in their own TU so only that file is compiled
 * with -mavx2 -mfma: the rest of the library keeps the default ISA and
 * the scalar reference kernels keep their exact historical numerics.
 * When the build does not define PTOLEMY_HAVE_AVX2 the TU is empty and
 * the driver never references these symbols.
 */

#ifndef PTOLEMY_NN_GEMM_KERNELS_HH
#define PTOLEMY_NN_GEMM_KERNELS_HH

#include <cstddef>

namespace ptolemy::nn::detail
{

#ifdef PTOLEMY_HAVE_AVX2

/**
 * C tile [i0,i1) x [j0,j1) = A * B over the full K extent (or += when
 * @p accumulate), with register-resident accumulators (6x16 FMA
 * microkernel plus 8-wide and scalar column tails).
 *
 * The A element for output row i, depth k is
 *   a_base[i * a_row_stride + k * a_elem_stride]
 * which serves both the NN layout (row_stride = K, elem_stride = 1)
 * and the TN layout (row_stride = 1, elem_stride = M) without a
 * transposed copy. B and C are row-major with leading dimensions
 * @p ldb / @p ldc.
 *
 * Per-element results depend only on (i, j, K) — never on the tile
 * partition or where the 16/8-column blocking lands: every column
 * (vector lane or scalar tail) computes the same fold of
 * fma(a_k, b_kj, acc) over k ascending. Outputs are therefore
 * bit-identical across thread counts AND across column placement,
 * which is what lets the wide-batch forward concatenate per-sample
 * im2col columns at arbitrary offsets and reproduce the standalone
 * per-sample product exactly.
 */
void avx2GemmTile(int i0, int i1, int j0, int j1, int K,
                  const float *a_base, std::ptrdiff_t a_row_stride,
                  std::ptrdiff_t a_elem_stride, const float *B, int ldb,
                  float *C, int ldc, bool accumulate);

/**
 * NT row block: C[i][j] = dot(A row i, B row j) for i in [i0,i1),
 * j in [0,N), rows of length K (or += when @p accumulate). 8-wide FMA
 * accumulation with a scalar remainder; per-element deterministic.
 */
void avx2GemmNTRows(int i0, int i1, int N, int K, const float *A,
                    const float *B, float *C, bool accumulate);

/**
 * y[M] = bias[M] + A[MxK] * x[K]: the Linear-layer forward. 8-wide FMA
 * accumulation per row (horizontal sum, then bias and the scalar
 * remainder); per-element deterministic, tolerance-equal — not
 * bit-equal — to the scalar reference, whose statistical fixtures were
 * recalibrated when this path landed.
 */
void avx2GemvBias(int M, int K, const float *A, const float *x,
                  const float *bias, float *y);

/**
 * Batched gemv: ys[s][i] = bias[i] + dot(A row i, xs[s]) for S
 * samples, with the weight-row loop outermost so A streams from memory
 * once per batch instead of once per sample. Each (row, sample) cell
 * runs the exact avx2GemvBias row kernel — results are bit-identical
 * to S independent avx2GemvBias calls.
 */
void avx2GemvBiasBatch(int M, int K, const float *A, const float *bias,
                       const float *const *xs, float *const *ys, int S);

#endif // PTOLEMY_HAVE_AVX2

} // namespace ptolemy::nn::detail

#endif // PTOLEMY_NN_GEMM_KERNELS_HH
