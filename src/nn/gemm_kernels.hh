/**
 * @file
 * Internal SGEMM tile-kernel interface shared between the portable
 * driver (gemm.cc) and the AVX2/FMA translation unit (gemm_avx2.cc).
 *
 * The AVX2 kernels live in their own TU so only that file is compiled
 * with -mavx2 -mfma: the rest of the library keeps the default ISA and
 * the scalar reference kernels keep their exact historical numerics.
 * When the build does not define PTOLEMY_HAVE_AVX2 the TU is empty and
 * the driver never references these symbols.
 */

#ifndef PTOLEMY_NN_GEMM_KERNELS_HH
#define PTOLEMY_NN_GEMM_KERNELS_HH

#include <cstddef>

namespace ptolemy::nn::detail
{

/**
 * Blocked layout of a persistent packed B matrix [K x N]: the column
 * space is split exactly the way the tile kernels block it — 16-wide
 * panels, then one 8-wide panel when 8 <= N%16, then a <8-column
 * scalar tail — and each panel is stored [k][width] contiguous, the
 * shape packBPanel produced per call before packing became persistent.
 * Panel starts are padded up to 64-byte boundaries so every AVX2 load
 * of a panel row begins on a cache line (the backing buffer itself is
 * allocated with util::AlignedF32).
 *
 * Both the packer (gemm.cc) and the consuming kernels (gemm_avx2.cc,
 * the scalar prepacked tile) derive offsets from this one function, so
 * layout and consumption cannot drift apart.
 */
struct PackedBLayout
{
    int K = 0;
    int N = 0;
    int nFull = 0;         ///< count of 16-wide panels
    bool has8 = false;     ///< one 8-wide panel after the 16s
    int tail = 0;          ///< scalar-tail columns (0..7)
    std::size_t off8 = 0;  ///< float offset of the 8-wide panel
    std::size_t offTail = 0; ///< float offset of the scalar tail panel
    std::size_t total = 0; ///< total floats (incl. alignment padding)
};

/** Round a float count up to a 64-byte (16-float) boundary. */
constexpr std::size_t
alignFloats16(std::size_t n)
{
    return (n + 15u) & ~static_cast<std::size_t>(15u);
}

constexpr PackedBLayout
packedBLayout(int K, int N)
{
    PackedBLayout L;
    L.K = K;
    L.N = N;
    L.nFull = N / 16;
    const int rem = N - L.nFull * 16;
    L.has8 = rem >= 8;
    L.tail = rem - (L.has8 ? 8 : 0);
    // 16-wide panels are K*16 floats each — inherently 64-byte
    // multiples — so only the 8-wide panel needs explicit padding.
    L.off8 = static_cast<std::size_t>(L.nFull) * K * 16;
    L.offTail =
        L.off8 +
        (L.has8 ? alignFloats16(static_cast<std::size_t>(K) * 8) : 0);
    L.total = L.offTail + static_cast<std::size_t>(K) * L.tail;
    return L;
}

#ifdef PTOLEMY_HAVE_AVX2

/**
 * C tile [i0,i1) x [j0,j1) = A * B over the full K extent (or += when
 * @p accumulate), with register-resident accumulators (6x16 FMA
 * microkernel plus 8-wide and scalar column tails).
 *
 * The A element for output row i, depth k is
 *   a_base[i * a_row_stride + k * a_elem_stride]
 * which serves both the NN layout (row_stride = K, elem_stride = 1)
 * and the TN layout (row_stride = 1, elem_stride = M) without a
 * transposed copy. B and C are row-major with leading dimensions
 * @p ldb / @p ldc.
 *
 * Per-element results depend only on (i, j, K) — never on the tile
 * partition or where the 16/8-column blocking lands: every column
 * (vector lane or scalar tail) computes the same fold of
 * fma(a_k, b_kj, acc) over k ascending. Outputs are therefore
 * bit-identical across thread counts AND across column placement,
 * which is what lets the wide-batch forward concatenate per-sample
 * im2col columns at arbitrary offsets and reproduce the standalone
 * per-sample product exactly.
 */
void avx2GemmTile(int i0, int i1, int j0, int j1, int K,
                  const float *a_base, std::ptrdiff_t a_row_stride,
                  std::ptrdiff_t a_elem_stride, const float *B, int ldb,
                  float *C, int ldc, bool accumulate);

/**
 * As avx2GemmTile, but B comes pre-packed in the packedBLayout blocked
 * form (@p packed, layout derived from (K, @p packedN)) so the
 * per-tile packBPanel copy is skipped entirely — the serving path's
 * weight panels are packed once at model-build time instead of once
 * per call. Tile boundaries must sit on multiples of 16 columns (the
 * driver's TN grid guarantees this), which keeps the panel blocking
 * identical to what packBPanel produced on the fly; per-element
 * results are bit-identical to avx2GemmTile on the unpacked matrix.
 */
void avx2GemmTilePrepacked(int i0, int i1, int j0, int j1, int K,
                           const float *a_base,
                           std::ptrdiff_t a_row_stride,
                           std::ptrdiff_t a_elem_stride,
                           const float *packed, int packedN, float *C,
                           int ldc, bool accumulate);

/**
 * Fused conv-forward block over one im2col A panel: out[i * ldc + j] =
 * bias[i] + sum_k ap[k * a_ld + j] * packed weight (k, i) for channels
 * i in [0, N) and the block's P = 6 * (n_strips - 1) + r_last output
 * positions j. @p ap is a row-major [K x P] slice of the im2col matrix
 * with leading dimension @p a_ld (im2colRowsInto emits it per block of
 * output rows); @p packed the persistent transposed weight matrix
 * W^T [K x N] in packedBLayout form.
 *
 * The register tile is flipped relative to avx2GemmTile — 6 positions
 * (one strip) are the broadcast operand, 16 output channels the vector
 * operand — and the results are transposed through registers into the
 * channel-major output with the bias added before the store. The loop
 * nest is channel-panel OUTER, strip INNER, so each K x 16 weight
 * panel streams from cache once per block instead of once per strip —
 * that weight reuse plus the never-materialized full im2col matrix is
 * what makes the fused path beat im2col + sgemm.
 *
 * Per output element this performs the exact same chain as the
 * unpacked path: a fold of fma(a_k, w_ik, acc) over k ascending from
 * zero (fma(a, b, c) and fma(b, a, c) round identically), then one
 * bias addition — so the fused path is bit-identical to
 * im2col + sgemm + bias, and the strip/block partition is scheduling,
 * not numerics.
 */
void avx2ConvPackedBlock(int K, int N, const float *ap,
                         std::ptrdiff_t a_ld, int n_strips, int r_last,
                         const float *packed, const float *bias,
                         float *out, std::ptrdiff_t ldc);

/**
 * NT row block: C[i][j] = dot(A row i, B row j) for i in [i0,i1),
 * j in [0,N), rows of length K (or += when @p accumulate). 8-wide FMA
 * accumulation with a scalar remainder; per-element deterministic.
 */
void avx2GemmNTRows(int i0, int i1, int N, int K, const float *A,
                    const float *B, float *C, bool accumulate);

/**
 * y[M] = bias[M] + A[MxK] * x[K]: the Linear-layer forward. 8-wide FMA
 * accumulation per row (horizontal sum, then bias and the scalar
 * remainder); per-element deterministic, tolerance-equal — not
 * bit-equal — to the scalar reference, whose statistical fixtures were
 * recalibrated when this path landed.
 */
void avx2GemvBias(int M, int K, const float *A, const float *x,
                  const float *bias, float *y);

/**
 * Batched gemv: ys[s][i] = bias[i] + dot(A row i, xs[s]) for S
 * samples, with the weight-row loop outermost so A streams from memory
 * once per batch instead of once per sample. Each (row, sample) cell
 * runs the exact avx2GemvBias row kernel — results are bit-identical
 * to S independent avx2GemvBias calls.
 */
void avx2GemvBiasBatch(int M, int K, const float *A, const float *bias,
                       const float *const *xs, float *const *ys, int S);

#endif // PTOLEMY_HAVE_AVX2

} // namespace ptolemy::nn::detail

#endif // PTOLEMY_NN_GEMM_KERNELS_HH
