/**
 * @file
 * AVX2/FMA SGEMM microkernels. This is the only TU compiled with
 * -mavx2 -mfma (see CMakeLists); everything here is reached through
 * runtime dispatch in gemm.cc, guarded by avx2CpuSupported().
 *
 * The core is a 6x16 register tile: 12 ymm accumulators, two B vectors
 * and one broadcast A value stay in registers across the whole K loop,
 * so each C element is read/written exactly once per call. Column
 * blocks are anchored at absolute multiples of 16 from column 0 and
 * rows are independent, which makes results bit-identical no matter
 * how the surrounding driver tiles or threads the matrix.
 */

#include "gemm_kernels.hh"

#ifdef PTOLEMY_HAVE_AVX2

#include <immintrin.h>

#include <cassert>
#include <cmath>
#include <vector>

#include "util/aligned.hh"

namespace ptolemy::nn::detail
{

namespace
{

/** A-element accessor: row r (relative to the block base), depth k. */
struct APanel
{
    const float *base;
    std::ptrdiff_t rowStride;
    std::ptrdiff_t elemStride;

    const float *
    row(int r) const
    {
        return base + static_cast<std::ptrdiff_t>(r) * rowStride;
    }
};

/**
 * R x 16 register-tile kernel over the full K extent. STRIDE1 selects
 * the unit-stride A specialization (the NN layout, i.e. the conv
 * forward hot path) so the per-k A addressing is a pointer increment.
 */
template <int R, bool STRIDE1>
inline void
kernelRx16(int K, const APanel &a, const float *B, int ldb, float *c,
           int ldc, bool accumulate)
{
    __m256 acc0[R], acc1[R];
    for (int r = 0; r < R; ++r) {
        acc0[r] = _mm256_setzero_ps();
        acc1[r] = _mm256_setzero_ps();
    }
    const float *arow[R];
    for (int r = 0; r < R; ++r)
        arow[r] = a.row(r);
    const std::ptrdiff_t astep = STRIDE1 ? 1 : a.elemStride;
    auto step = [&](int k) {
        const float *brow = B + static_cast<std::ptrdiff_t>(k) * ldb;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        for (int r = 0; r < R; ++r) {
            const __m256 av = _mm256_set1_ps(arow[r][k * astep]);
            acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
            acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
        }
    };
    int k = 0;
    // K x4 unroll. Each element keeps its single accumulator chain in
    // the same k-ascending order (splitting the chain would change the
    // rounding and break bit-identity); the unroll only removes
    // loop-carried branch overhead and lets the B loads of the next
    // steps issue while the FMA chain drains.
    for (; k + 4 <= K; k += 4) {
        step(k);
        step(k + 1);
        step(k + 2);
        step(k + 3);
    }
    for (; k < K; ++k)
        step(k);
    for (int r = 0; r < R; ++r) {
        float *crow = c + static_cast<std::ptrdiff_t>(r) * ldc;
        if (accumulate) {
            acc0[r] = _mm256_add_ps(acc0[r], _mm256_loadu_ps(crow));
            acc1[r] = _mm256_add_ps(acc1[r], _mm256_loadu_ps(crow + 8));
        }
        _mm256_storeu_ps(crow, acc0[r]);
        _mm256_storeu_ps(crow + 8, acc1[r]);
    }
}

/** R x 8 kernel for the 8-wide column tail. */
template <int R, bool STRIDE1>
inline void
kernelRx8(int K, const APanel &a, const float *B, int ldb, float *c,
          int ldc, bool accumulate)
{
    __m256 acc[R];
    for (int r = 0; r < R; ++r)
        acc[r] = _mm256_setzero_ps();
    const float *arow[R];
    for (int r = 0; r < R; ++r)
        arow[r] = a.row(r);
    const std::ptrdiff_t astep = STRIDE1 ? 1 : a.elemStride;
    auto step = [&](int k) {
        const __m256 b0 =
            _mm256_loadu_ps(B + static_cast<std::ptrdiff_t>(k) * ldb);
        for (int r = 0; r < R; ++r)
            acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(arow[r][k * astep]),
                                     b0, acc[r]);
    };
    int k = 0;
    // Same K x4 single-chain unroll as kernelRx16.
    for (; k + 4 <= K; k += 4) {
        step(k);
        step(k + 1);
        step(k + 2);
        step(k + 3);
    }
    for (; k < K; ++k)
        step(k);
    for (int r = 0; r < R; ++r) {
        float *crow = c + static_cast<std::ptrdiff_t>(r) * ldc;
        if (accumulate)
            acc[r] = _mm256_add_ps(acc[r], _mm256_loadu_ps(crow));
        _mm256_storeu_ps(crow, acc[r]);
    }
}

/**
 * Scalar column tail (fewer than 8 columns left). The accumulation is
 * an explicit single-rounding FMA per k step, which makes this column
 * chain identical to one SIMD lane of kernelRx16/kernelRx8: every AVX2
 * column — vector or tail — computes fold(fma(a_k, b_kj, acc)) over k
 * ascending from zero. Per-element results therefore depend only on
 * (i, j, K), never on where the 16/8-column blocking lands, which is
 * what lets wide-batch GEMM concatenate sample columns at arbitrary
 * offsets and stay bit-identical to the per-sample products.
 */
inline void
kernelScalarCols(int rows, int j0, int jmax, int K, const APanel &a,
                 const float *B, int ldb, float *c, int ldc,
                 bool accumulate)
{
    for (int r = 0; r < rows; ++r) {
        const float *arow = a.row(r);
        float *crow = c + static_cast<std::ptrdiff_t>(r) * ldc;
        for (int j = j0; j < jmax; ++j) {
            float s = 0.0f;
            for (int k = 0; k < K; ++k)
                s = std::fmaf(arow[k * a.elemStride],
                              B[static_cast<std::ptrdiff_t>(k) * ldb + j],
                              s);
            crow[j] = accumulate ? crow[j] + s : s;
        }
    }
}

/**
 * Pack @p width (8 or 16) columns of B starting at @p j into @p dst as
 * [k][width] contiguous rows. B's row stride is a feature-map width
 * (kilobytes), so the unpacked walk touches one page per k step; the
 * packed panel streams. The pack pays that cost once per tile instead
 * of once per 6-row microkernel pass.
 */
inline void
packBPanel(const float *B, int ldb, int j, int K, int width, float *dst)
{
    for (int k = 0; k < K; ++k) {
        const float *src = B + static_cast<std::ptrdiff_t>(k) * ldb + j;
        _mm256_storeu_ps(dst, _mm256_loadu_ps(src));
        if (width == 16)
            _mm256_storeu_ps(dst + 8, _mm256_loadu_ps(src + 8));
        dst += width;
    }
}

/** Per-thread B-panel scratch; grown once, reused by every tile. */
inline std::vector<float> &
packScratch()
{
    thread_local std::vector<float> buf;
    return buf;
}

/**
 * Run the 6-row microkernels over one packed B panel of @p width (16
 * or 8) columns at absolute column @p j. Shared by the on-the-fly tile
 * (which just packed the panel) and the prepacked tile (persistent
 * panel) — both therefore execute the exact same kernel sequence.
 */
template <bool STRIDE1>
inline void
panelColumns(int width, int i0, int i1, int j, int K, const float *a_base,
             std::ptrdiff_t a_row_stride, std::ptrdiff_t a_elem_stride,
             const float *bp, float *C, int ldc, bool accumulate)
{
    int i = i0;
    for (; i + 6 <= i1; i += 6) {
        const APanel a{a_base + i * a_row_stride, a_row_stride,
                       a_elem_stride};
        float *c = C + static_cast<std::ptrdiff_t>(i) * ldc + j;
        if (width == 16)
            kernelRx16<6, STRIDE1>(K, a, bp, 16, c, ldc, accumulate);
        else
            kernelRx8<6, STRIDE1>(K, a, bp, 8, c, ldc, accumulate);
    }
    const int rem = i1 - i;
    if (rem > 0) {
        const APanel a{a_base + i * a_row_stride, a_row_stride,
                       a_elem_stride};
        float *c = C + static_cast<std::ptrdiff_t>(i) * ldc + j;
        if (width == 16) {
            switch (rem) {
              case 1: kernelRx16<1, STRIDE1>(K, a, bp, 16, c, ldc, accumulate); break;
              case 2: kernelRx16<2, STRIDE1>(K, a, bp, 16, c, ldc, accumulate); break;
              case 3: kernelRx16<3, STRIDE1>(K, a, bp, 16, c, ldc, accumulate); break;
              case 4: kernelRx16<4, STRIDE1>(K, a, bp, 16, c, ldc, accumulate); break;
              default: kernelRx16<5, STRIDE1>(K, a, bp, 16, c, ldc, accumulate); break;
            }
        } else {
            switch (rem) {
              case 1: kernelRx8<1, STRIDE1>(K, a, bp, 8, c, ldc, accumulate); break;
              case 2: kernelRx8<2, STRIDE1>(K, a, bp, 8, c, ldc, accumulate); break;
              case 3: kernelRx8<3, STRIDE1>(K, a, bp, 8, c, ldc, accumulate); break;
              case 4: kernelRx8<4, STRIDE1>(K, a, bp, 8, c, ldc, accumulate); break;
              default: kernelRx8<5, STRIDE1>(K, a, bp, 8, c, ldc, accumulate); break;
            }
        }
    }
}

template <bool STRIDE1>
void
gemmTileImpl(int i0, int i1, int j0, int j1, int K, const float *a_base,
             std::ptrdiff_t a_row_stride, std::ptrdiff_t a_elem_stride,
             const float *B, int ldb, float *C, int ldc, bool accumulate)
{
    auto &pack = packScratch();

    // Column blocks are anchored at the tile origin, which the driver
    // places at absolute multiples of 16, so per-element grouping (and
    // therefore the result) is independent of the tile partition.
    int j = j0;
    for (; j + 8 <= j1; j += (j + 16 <= j1) ? 16 : 8) {
        const int width = (j + 16 <= j1) ? 16 : 8;
        pack.resize(static_cast<std::size_t>(K) * width);
        packBPanel(B, ldb, j, K, width, pack.data());
        panelColumns<STRIDE1>(width, i0, i1, j, K, a_base, a_row_stride,
                              a_elem_stride, pack.data(), C, ldc,
                              accumulate);
    }
    if (j < j1) {
        // Scalar column tail (fewer than 8 columns at the matrix edge).
        for (int i = i0; i < i1; ++i) {
            const APanel a{a_base + i * a_row_stride, a_row_stride,
                           a_elem_stride};
            kernelScalarCols(1, j, j1, K, a, B, ldb,
                             C + static_cast<std::ptrdiff_t>(i) * ldc, ldc,
                             accumulate);
        }
    }
}

template <bool STRIDE1>
void
gemmTilePrepackedImpl(int i0, int i1, int j0, int j1, int K,
                      const float *a_base, std::ptrdiff_t a_row_stride,
                      std::ptrdiff_t a_elem_stride, const float *packed,
                      int packedN, float *C, int ldc, bool accumulate)
{
    const PackedBLayout L = packedBLayout(K, packedN);
    // Same column blocking as gemmTileImpl: full 16s, one 8, scalar
    // tail. Tile bounds sit on multiples of TN (a multiple of 16), so
    // the persistent panels line up exactly with what packBPanel would
    // have produced per tile.
    int j = j0;
    for (; j + 16 <= j1; j += 16) {
        const float *bp = packed + static_cast<std::size_t>(j / 16) * K * 16;
        assert(util::isAligned(bp));
        panelColumns<STRIDE1>(16, i0, i1, j, K, a_base, a_row_stride,
                              a_elem_stride, bp, C, ldc, accumulate);
    }
    if (j + 8 <= j1) {
        const float *bp = packed + L.off8;
        assert(L.has8 && j == L.nFull * 16 && util::isAligned(bp));
        panelColumns<STRIDE1>(8, i0, i1, j, K, a_base, a_row_stride,
                              a_elem_stride, bp, C, ldc, accumulate);
        j += 8;
    }
    if (j < j1) {
        // Scalar column tail from the packed [k][tail] panel: the same
        // fmaf fold as kernelScalarCols, reading packed rows.
        const float *P = packed + L.offTail;
        const int col0 = L.nFull * 16 + (L.has8 ? 8 : 0);
        for (int i = i0; i < i1; ++i) {
            const float *arow = a_base + i * a_row_stride;
            float *crow = C + static_cast<std::ptrdiff_t>(i) * ldc;
            for (int jj = j; jj < j1; ++jj) {
                const int c = jj - col0;
                float s = 0.0f;
                for (int k = 0; k < K; ++k)
                    s = std::fmaf(
                        arow[k * (STRIDE1 ? 1 : a_elem_stride)],
                        P[static_cast<std::size_t>(k) * L.tail + c], s);
                crow[jj] = accumulate ? crow[jj] + s : s;
            }
        }
    }
}

} // namespace

void
avx2GemmTile(int i0, int i1, int j0, int j1, int K, const float *a_base,
             std::ptrdiff_t a_row_stride, std::ptrdiff_t a_elem_stride,
             const float *B, int ldb, float *C, int ldc, bool accumulate)
{
    if (a_elem_stride == 1)
        gemmTileImpl<true>(i0, i1, j0, j1, K, a_base, a_row_stride, 1, B,
                           ldb, C, ldc, accumulate);
    else
        gemmTileImpl<false>(i0, i1, j0, j1, K, a_base, a_row_stride,
                            a_elem_stride, B, ldb, C, ldc, accumulate);
}

void
avx2GemmTilePrepacked(int i0, int i1, int j0, int j1, int K,
                      const float *a_base, std::ptrdiff_t a_row_stride,
                      std::ptrdiff_t a_elem_stride, const float *packed,
                      int packedN, float *C, int ldc, bool accumulate)
{
    if (a_elem_stride == 1)
        gemmTilePrepackedImpl<true>(i0, i1, j0, j1, K, a_base,
                                    a_row_stride, 1, packed, packedN, C,
                                    ldc, accumulate);
    else
        gemmTilePrepackedImpl<false>(i0, i1, j0, j1, K, a_base,
                                     a_row_stride, a_elem_stride, packed,
                                     packedN, C, ldc, accumulate);
}

namespace
{

/** Row masks for storing R < 8 lanes (load at offset 8 - R). */
alignas(32) constexpr int kRowMaskTab[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                             0,  0,  0,  0,  0,  0,  0,  0};

inline __m256i
rowMask(int R)
{
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(kRowMaskTab + 8 - R));
}

/** In-register 8x8 float transpose (data movement only, no rounding). */
inline void
transpose8x8(__m256 r[8])
{
    __m256 t[8];
    t[0] = _mm256_unpacklo_ps(r[0], r[1]);
    t[1] = _mm256_unpackhi_ps(r[0], r[1]);
    t[2] = _mm256_unpacklo_ps(r[2], r[3]);
    t[3] = _mm256_unpackhi_ps(r[2], r[3]);
    t[4] = _mm256_unpacklo_ps(r[4], r[5]);
    t[5] = _mm256_unpackhi_ps(r[4], r[5]);
    t[6] = _mm256_unpacklo_ps(r[6], r[7]);
    t[7] = _mm256_unpackhi_ps(r[6], r[7]);
    __m256 s[8];
    s[0] = _mm256_shuffle_ps(t[0], t[2], 0x44);
    s[1] = _mm256_shuffle_ps(t[0], t[2], 0xEE);
    s[2] = _mm256_shuffle_ps(t[1], t[3], 0x44);
    s[3] = _mm256_shuffle_ps(t[1], t[3], 0xEE);
    s[4] = _mm256_shuffle_ps(t[4], t[6], 0x44);
    s[5] = _mm256_shuffle_ps(t[4], t[6], 0xEE);
    s[6] = _mm256_shuffle_ps(t[5], t[7], 0x44);
    s[7] = _mm256_shuffle_ps(t[5], t[7], 0xEE);
    r[0] = _mm256_permute2f128_ps(s[0], s[4], 0x20);
    r[1] = _mm256_permute2f128_ps(s[1], s[5], 0x20);
    r[2] = _mm256_permute2f128_ps(s[2], s[6], 0x20);
    r[3] = _mm256_permute2f128_ps(s[3], s[7], 0x20);
    r[4] = _mm256_permute2f128_ps(s[0], s[4], 0x31);
    r[5] = _mm256_permute2f128_ps(s[1], s[5], 0x31);
    r[6] = _mm256_permute2f128_ps(s[2], s[6], 0x31);
    r[7] = _mm256_permute2f128_ps(s[3], s[7], 0x31);
}

/**
 * Flipped conv register tile: R strip positions (broadcast operand) x
 * 16 output channels (vector operand) over a packed [k][16] weight
 * panel. @p ap is the depth-major A panel (ap[k*6 + r], see
 * im2colPanelInto) — the 6 broadcasts of one depth step share a cache
 * line. Per element this is the exact fold fma(a_k, w_ik, acc) over k
 * ascending the unpacked path computes — fma's product operands merely
 * swap roles, which rounds identically — followed by the one bias
 * addition forwardGemm performs, so results are bit-identical. The
 * accumulators hold 16 channels per strip position; an in-register
 * 8x8 transpose turns them into per-channel rows of R positions for
 * the masked store into the channel-major output.
 */
template <int R>
inline void
convStripKx16(int K, const float *ap, std::ptrdiff_t a_ld, const float *wp,
              const float *bias, float *out, std::ptrdiff_t ldc)
{
    __m256 acc0[R], acc1[R];
    for (int r = 0; r < R; ++r) {
        acc0[r] = _mm256_setzero_ps();
        acc1[r] = _mm256_setzero_ps();
    }
    auto step = [&](int k) {
        const float *w = wp + static_cast<std::size_t>(k) * 16;
        const float *a6 = ap + static_cast<std::ptrdiff_t>(k) * a_ld;
        const __m256 b0 = _mm256_load_ps(w);
        const __m256 b1 = _mm256_load_ps(w + 8);
        for (int r = 0; r < R; ++r) {
            const __m256 av = _mm256_set1_ps(a6[r]);
            acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
            acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
        }
    };
    int k = 0;
    for (; k + 4 <= K; k += 4) {
        step(k);
        step(k + 1);
        step(k + 2);
        step(k + 3);
    }
    for (; k < K; ++k)
        step(k);
    // Bias before the transpose: out = gemm + b, the same single
    // addition the unpacked path's bias pass performs.
    const __m256 bv0 = _mm256_loadu_ps(bias);
    const __m256 bv1 = _mm256_loadu_ps(bias + 8);
    __m256 t0[8], t1[8];
    for (int r = 0; r < 8; ++r)
        t0[r] = t1[r] = _mm256_setzero_ps();
    for (int r = 0; r < R; ++r) {
        t0[r] = _mm256_add_ps(acc0[r], bv0);
        t1[r] = _mm256_add_ps(acc1[r], bv1);
    }
    transpose8x8(t0);
    transpose8x8(t1);
    const __m256i mask = rowMask(R);
    for (int c = 0; c < 8; ++c)
        _mm256_maskstore_ps(out + static_cast<std::ptrdiff_t>(c) * ldc,
                            mask, t0[c]);
    for (int c = 0; c < 8; ++c)
        _mm256_maskstore_ps(out + static_cast<std::ptrdiff_t>(8 + c) * ldc,
                            mask, t1[c]);
}

/** 8-channel variant of convStripKx16 for the 8-wide channel panel. */
template <int R>
inline void
convStripKx8(int K, const float *ap, std::ptrdiff_t a_ld, const float *wp,
             const float *bias, float *out, std::ptrdiff_t ldc)
{
    __m256 acc[R];
    for (int r = 0; r < R; ++r)
        acc[r] = _mm256_setzero_ps();
    auto step = [&](int k) {
        const __m256 b0 =
            _mm256_loadu_ps(wp + static_cast<std::size_t>(k) * 8);
        const float *a6 = ap + static_cast<std::ptrdiff_t>(k) * a_ld;
        for (int r = 0; r < R; ++r)
            acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(a6[r]), b0, acc[r]);
    };
    int k = 0;
    for (; k + 4 <= K; k += 4) {
        step(k);
        step(k + 1);
        step(k + 2);
        step(k + 3);
    }
    for (; k < K; ++k)
        step(k);
    const __m256 bv = _mm256_loadu_ps(bias);
    __m256 t[8];
    for (int r = 0; r < 8; ++r)
        t[r] = _mm256_setzero_ps();
    for (int r = 0; r < R; ++r)
        t[r] = _mm256_add_ps(acc[r], bv);
    transpose8x8(t);
    const __m256i mask = rowMask(R);
    for (int c = 0; c < 8; ++c)
        _mm256_maskstore_ps(out + static_cast<std::ptrdiff_t>(c) * ldc,
                            mask, t[c]);
}

/** Scalar-fmaf channel tail (fewer than 8 channels left). */
inline void
convStripScalarChannels(int K, const float *ap, std::ptrdiff_t a_ld, int R,
                        const float *P, int w, const float *bias,
                        float *out, std::ptrdiff_t ldc)
{
    for (int c = 0; c < w; ++c) {
        const float b = bias[c];
        float *crow = out + static_cast<std::ptrdiff_t>(c) * ldc;
        for (int r = 0; r < R; ++r) {
            float s = 0.0f;
            for (int k = 0; k < K; ++k)
                s = std::fmaf(ap[static_cast<std::ptrdiff_t>(k) * a_ld + r],
                              P[static_cast<std::size_t>(k) * w + c], s);
            crow[r] = s + b;
        }
    }
}

} // namespace

void
avx2ConvPackedBlock(int K, int N, const float *ap, std::ptrdiff_t a_ld,
                    int n_strips, int r_last, const float *packed,
                    const float *bias, float *out, std::ptrdiff_t ldc)
{
    assert(n_strips >= 1 && r_last >= 1 && r_last <= 6);
    assert(a_ld >= (n_strips - 1) * 6 + r_last);
    assert(util::isAligned(packed));
    const PackedBLayout L = packedBLayout(K, N);
    auto run16 = [&](int R, const float *sap, const float *wp,
                     const float *bv, float *o) {
        switch (R) {
          case 1: convStripKx16<1>(K, sap, a_ld, wp, bv, o, ldc); break;
          case 2: convStripKx16<2>(K, sap, a_ld, wp, bv, o, ldc); break;
          case 3: convStripKx16<3>(K, sap, a_ld, wp, bv, o, ldc); break;
          case 4: convStripKx16<4>(K, sap, a_ld, wp, bv, o, ldc); break;
          case 5: convStripKx16<5>(K, sap, a_ld, wp, bv, o, ldc); break;
          default: convStripKx16<6>(K, sap, a_ld, wp, bv, o, ldc); break;
        }
    };
    auto run8 = [&](int R, const float *sap, const float *wp,
                    const float *bv, float *o) {
        switch (R) {
          case 1: convStripKx8<1>(K, sap, a_ld, wp, bv, o, ldc); break;
          case 2: convStripKx8<2>(K, sap, a_ld, wp, bv, o, ldc); break;
          case 3: convStripKx8<3>(K, sap, a_ld, wp, bv, o, ldc); break;
          case 4: convStripKx8<4>(K, sap, a_ld, wp, bv, o, ldc); break;
          case 5: convStripKx8<5>(K, sap, a_ld, wp, bv, o, ldc); break;
          default: convStripKx8<6>(K, sap, a_ld, wp, bv, o, ldc); break;
        }
    };
    const auto stripR = [&](int s) { return s + 1 == n_strips ? r_last : 6; };
    for (int blk = 0; blk < L.nFull; ++blk) {
        const float *wp = packed + static_cast<std::size_t>(blk) * K * 16;
        assert(util::isAligned(wp));
        float *o = out + static_cast<std::ptrdiff_t>(blk) * 16 * ldc;
        for (int s = 0; s < n_strips; ++s)
            run16(stripR(s), ap + s * 6, wp, bias + blk * 16, o + s * 6);
    }
    int c0 = L.nFull * 16;
    if (L.has8) {
        const float *wp = packed + L.off8;
        assert(util::isAligned(wp));
        float *o = out + static_cast<std::ptrdiff_t>(c0) * ldc;
        for (int s = 0; s < n_strips; ++s)
            run8(stripR(s), ap + s * 6, wp, bias + c0, o + s * 6);
        c0 += 8;
    }
    if (L.tail > 0) {
        float *o = out + static_cast<std::ptrdiff_t>(c0) * ldc;
        for (int s = 0; s < n_strips; ++s)
            convStripScalarChannels(K, ap + s * 6, a_ld, stripR(s),
                                    packed + L.offTail, L.tail, bias + c0,
                                    o + s * 6, ldc);
    }
}

void
avx2GemmNTRows(int i0, int i1, int N, int K, const float *A, const float *B,
               float *C, bool accumulate)
{
    for (int i = i0; i < i1; ++i) {
        const float *a = A + static_cast<std::ptrdiff_t>(i) * K;
        float *c = C + static_cast<std::ptrdiff_t>(i) * N;
        for (int j = 0; j < N; ++j) {
            const float *b = B + static_cast<std::ptrdiff_t>(j) * K;
            __m256 acc = _mm256_setzero_ps();
            int k = 0;
            for (; k + 8 <= K; k += 8)
                acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + k),
                                      _mm256_loadu_ps(b + k), acc);
            // Horizontal sum, then the scalar remainder.
            __m128 lo = _mm256_castps256_ps128(acc);
            __m128 hi = _mm256_extractf128_ps(acc, 1);
            lo = _mm_add_ps(lo, hi);
            lo = _mm_hadd_ps(lo, lo);
            lo = _mm_hadd_ps(lo, lo);
            float s = _mm_cvtss_f32(lo);
            for (; k < K; ++k)
                s += a[k] * b[k];
            c[j] = accumulate ? c[j] + s : s;
        }
    }
}

namespace
{

/**
 * One gemv row: 8-wide FMA accumulation, horizontal sum, bias, scalar
 * remainder. Shared by the single-sample and batched entry points so
 * both produce the exact same float chain per (row, sample) — that is
 * the batched path's bit-identity guarantee.
 */
inline float
gemvRowDotBias(const float *a, const float *x, int K, float bias)
{
    __m256 acc = _mm256_setzero_ps();
    int k = 0;
    for (; k + 8 <= K; k += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + k),
                              _mm256_loadu_ps(x + k), acc);
    __m128 lo = _mm256_castps256_ps128(acc);
    __m128 hi = _mm256_extractf128_ps(acc, 1);
    lo = _mm_add_ps(lo, hi);
    lo = _mm_hadd_ps(lo, lo);
    lo = _mm_hadd_ps(lo, lo);
    float s = bias + _mm_cvtss_f32(lo);
    for (; k < K; ++k)
        s += a[k] * x[k];
    return s;
}

} // namespace

void
avx2GemvBias(int M, int K, const float *A, const float *x, const float *bias,
             float *y)
{
    for (int i = 0; i < M; ++i)
        y[i] = gemvRowDotBias(A + static_cast<std::ptrdiff_t>(i) * K, x, K,
                              bias[i]);
}

void
avx2GemvBiasBatch(int M, int K, const float *A, const float *bias,
                  const float *const *xs, float *const *ys, int S)
{
    // Loop interchange + 4-sample interleave. The weight row is the
    // outer loop so the matrix streams from memory once per *batch*
    // instead of once per sample, and four samples share each loaded
    // weight vector with four *independent* accumulator chains — the
    // single-sample kernel is FMA-latency-bound (one serial chain), so
    // the interleave is where the batched speedup actually comes from.
    // Each sample's chain performs gemvRowDotBias's exact op sequence
    // (same 8-wide fmadd fold, same horizontal sum, same scalar
    // remainder), so per-element results are bit-identical to S calls
    // of avx2GemvBias.
    for (int i = 0; i < M; ++i) {
        const float *a = A + static_cast<std::ptrdiff_t>(i) * K;
        const float b = bias[i];
        int s = 0;
        for (; s + 4 <= S; s += 4) {
            const float *x0 = xs[s], *x1 = xs[s + 1];
            const float *x2 = xs[s + 2], *x3 = xs[s + 3];
            __m256 acc0 = _mm256_setzero_ps();
            __m256 acc1 = _mm256_setzero_ps();
            __m256 acc2 = _mm256_setzero_ps();
            __m256 acc3 = _mm256_setzero_ps();
            int k = 0;
            for (; k + 8 <= K; k += 8) {
                const __m256 av = _mm256_loadu_ps(a + k);
                acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(x0 + k), acc0);
                acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(x1 + k), acc1);
                acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(x2 + k), acc2);
                acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(x3 + k), acc3);
            }
            auto finish = [&](__m256 acc, const float *x) {
                __m128 lo = _mm256_castps256_ps128(acc);
                __m128 hi = _mm256_extractf128_ps(acc, 1);
                lo = _mm_add_ps(lo, hi);
                lo = _mm_hadd_ps(lo, lo);
                lo = _mm_hadd_ps(lo, lo);
                float v = b + _mm_cvtss_f32(lo);
                for (int t = k; t < K; ++t)
                    v += a[t] * x[t];
                return v;
            };
            ys[s][i] = finish(acc0, x0);
            ys[s + 1][i] = finish(acc1, x1);
            ys[s + 2][i] = finish(acc2, x2);
            ys[s + 3][i] = finish(acc3, x3);
        }
        for (; s < S; ++s)
            ys[s][i] = gemvRowDotBias(a, xs[s], K, b);
    }
}

} // namespace ptolemy::nn::detail

#endif // PTOLEMY_HAVE_AVX2
