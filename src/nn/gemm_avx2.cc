/**
 * @file
 * AVX2/FMA SGEMM microkernels. This is the only TU compiled with
 * -mavx2 -mfma (see CMakeLists); everything here is reached through
 * runtime dispatch in gemm.cc, guarded by avx2CpuSupported().
 *
 * The core is a 6x16 register tile: 12 ymm accumulators, two B vectors
 * and one broadcast A value stay in registers across the whole K loop,
 * so each C element is read/written exactly once per call. Column
 * blocks are anchored at absolute multiples of 16 from column 0 and
 * rows are independent, which makes results bit-identical no matter
 * how the surrounding driver tiles or threads the matrix.
 */

#include "gemm_kernels.hh"

#ifdef PTOLEMY_HAVE_AVX2

#include <immintrin.h>

#include <cmath>
#include <vector>

namespace ptolemy::nn::detail
{

namespace
{

/** A-element accessor: row r (relative to the block base), depth k. */
struct APanel
{
    const float *base;
    std::ptrdiff_t rowStride;
    std::ptrdiff_t elemStride;

    const float *
    row(int r) const
    {
        return base + static_cast<std::ptrdiff_t>(r) * rowStride;
    }
};

/**
 * R x 16 register-tile kernel over the full K extent. STRIDE1 selects
 * the unit-stride A specialization (the NN layout, i.e. the conv
 * forward hot path) so the per-k A addressing is a pointer increment.
 */
template <int R, bool STRIDE1>
inline void
kernelRx16(int K, const APanel &a, const float *B, int ldb, float *c,
           int ldc, bool accumulate)
{
    __m256 acc0[R], acc1[R];
    for (int r = 0; r < R; ++r) {
        acc0[r] = _mm256_setzero_ps();
        acc1[r] = _mm256_setzero_ps();
    }
    const float *arow[R];
    for (int r = 0; r < R; ++r)
        arow[r] = a.row(r);
    const std::ptrdiff_t astep = STRIDE1 ? 1 : a.elemStride;
    for (int k = 0; k < K; ++k) {
        const float *brow = B + static_cast<std::ptrdiff_t>(k) * ldb;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        for (int r = 0; r < R; ++r) {
            const __m256 av = _mm256_set1_ps(arow[r][k * astep]);
            acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
            acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
        }
    }
    for (int r = 0; r < R; ++r) {
        float *crow = c + static_cast<std::ptrdiff_t>(r) * ldc;
        if (accumulate) {
            acc0[r] = _mm256_add_ps(acc0[r], _mm256_loadu_ps(crow));
            acc1[r] = _mm256_add_ps(acc1[r], _mm256_loadu_ps(crow + 8));
        }
        _mm256_storeu_ps(crow, acc0[r]);
        _mm256_storeu_ps(crow + 8, acc1[r]);
    }
}

/** R x 8 kernel for the 8-wide column tail. */
template <int R, bool STRIDE1>
inline void
kernelRx8(int K, const APanel &a, const float *B, int ldb, float *c,
          int ldc, bool accumulate)
{
    __m256 acc[R];
    for (int r = 0; r < R; ++r)
        acc[r] = _mm256_setzero_ps();
    const float *arow[R];
    for (int r = 0; r < R; ++r)
        arow[r] = a.row(r);
    const std::ptrdiff_t astep = STRIDE1 ? 1 : a.elemStride;
    for (int k = 0; k < K; ++k) {
        const __m256 b0 =
            _mm256_loadu_ps(B + static_cast<std::ptrdiff_t>(k) * ldb);
        for (int r = 0; r < R; ++r)
            acc[r] = _mm256_fmadd_ps(_mm256_set1_ps(arow[r][k * astep]),
                                     b0, acc[r]);
    }
    for (int r = 0; r < R; ++r) {
        float *crow = c + static_cast<std::ptrdiff_t>(r) * ldc;
        if (accumulate)
            acc[r] = _mm256_add_ps(acc[r], _mm256_loadu_ps(crow));
        _mm256_storeu_ps(crow, acc[r]);
    }
}

/**
 * Scalar column tail (fewer than 8 columns left). The accumulation is
 * an explicit single-rounding FMA per k step, which makes this column
 * chain identical to one SIMD lane of kernelRx16/kernelRx8: every AVX2
 * column — vector or tail — computes fold(fma(a_k, b_kj, acc)) over k
 * ascending from zero. Per-element results therefore depend only on
 * (i, j, K), never on where the 16/8-column blocking lands, which is
 * what lets wide-batch GEMM concatenate sample columns at arbitrary
 * offsets and stay bit-identical to the per-sample products.
 */
inline void
kernelScalarCols(int rows, int j0, int jmax, int K, const APanel &a,
                 const float *B, int ldb, float *c, int ldc,
                 bool accumulate)
{
    for (int r = 0; r < rows; ++r) {
        const float *arow = a.row(r);
        float *crow = c + static_cast<std::ptrdiff_t>(r) * ldc;
        for (int j = j0; j < jmax; ++j) {
            float s = 0.0f;
            for (int k = 0; k < K; ++k)
                s = std::fmaf(arow[k * a.elemStride],
                              B[static_cast<std::ptrdiff_t>(k) * ldb + j],
                              s);
            crow[j] = accumulate ? crow[j] + s : s;
        }
    }
}

/**
 * Pack @p width (8 or 16) columns of B starting at @p j into @p dst as
 * [k][width] contiguous rows. B's row stride is a feature-map width
 * (kilobytes), so the unpacked walk touches one page per k step; the
 * packed panel streams. The pack pays that cost once per tile instead
 * of once per 6-row microkernel pass.
 */
inline void
packBPanel(const float *B, int ldb, int j, int K, int width, float *dst)
{
    for (int k = 0; k < K; ++k) {
        const float *src = B + static_cast<std::ptrdiff_t>(k) * ldb + j;
        _mm256_storeu_ps(dst, _mm256_loadu_ps(src));
        if (width == 16)
            _mm256_storeu_ps(dst + 8, _mm256_loadu_ps(src + 8));
        dst += width;
    }
}

/** Per-thread B-panel scratch; grown once, reused by every tile. */
inline std::vector<float> &
packScratch()
{
    thread_local std::vector<float> buf;
    return buf;
}

template <bool STRIDE1>
void
gemmTileImpl(int i0, int i1, int j0, int j1, int K, const float *a_base,
             std::ptrdiff_t a_row_stride, std::ptrdiff_t a_elem_stride,
             const float *B, int ldb, float *C, int ldc, bool accumulate)
{
    auto &pack = packScratch();

    // Column blocks are anchored at the tile origin, which the driver
    // places at absolute multiples of 16, so per-element grouping (and
    // therefore the result) is independent of the tile partition.
    int j = j0;
    for (; j + 8 <= j1; j += (j + 16 <= j1) ? 16 : 8) {
        const int width = (j + 16 <= j1) ? 16 : 8;
        pack.resize(static_cast<std::size_t>(K) * width);
        packBPanel(B, ldb, j, K, width, pack.data());
        const float *bp = pack.data();

        int i = i0;
        for (; i + 6 <= i1; i += 6) {
            const APanel a{a_base + i * a_row_stride, a_row_stride,
                           a_elem_stride};
            float *c = C + static_cast<std::ptrdiff_t>(i) * ldc + j;
            if (width == 16)
                kernelRx16<6, STRIDE1>(K, a, bp, 16, c, ldc, accumulate);
            else
                kernelRx8<6, STRIDE1>(K, a, bp, 8, c, ldc, accumulate);
        }
        const int rem = i1 - i;
        if (rem > 0) {
            const APanel a{a_base + i * a_row_stride, a_row_stride,
                           a_elem_stride};
            float *c = C + static_cast<std::ptrdiff_t>(i) * ldc + j;
            if (width == 16) {
                switch (rem) {
                  case 1: kernelRx16<1, STRIDE1>(K, a, bp, 16, c, ldc, accumulate); break;
                  case 2: kernelRx16<2, STRIDE1>(K, a, bp, 16, c, ldc, accumulate); break;
                  case 3: kernelRx16<3, STRIDE1>(K, a, bp, 16, c, ldc, accumulate); break;
                  case 4: kernelRx16<4, STRIDE1>(K, a, bp, 16, c, ldc, accumulate); break;
                  default: kernelRx16<5, STRIDE1>(K, a, bp, 16, c, ldc, accumulate); break;
                }
            } else {
                switch (rem) {
                  case 1: kernelRx8<1, STRIDE1>(K, a, bp, 8, c, ldc, accumulate); break;
                  case 2: kernelRx8<2, STRIDE1>(K, a, bp, 8, c, ldc, accumulate); break;
                  case 3: kernelRx8<3, STRIDE1>(K, a, bp, 8, c, ldc, accumulate); break;
                  case 4: kernelRx8<4, STRIDE1>(K, a, bp, 8, c, ldc, accumulate); break;
                  default: kernelRx8<5, STRIDE1>(K, a, bp, 8, c, ldc, accumulate); break;
                }
            }
        }
    }
    if (j < j1) {
        // Scalar column tail (fewer than 8 columns at the matrix edge).
        for (int i = i0; i < i1; ++i) {
            const APanel a{a_base + i * a_row_stride, a_row_stride,
                           a_elem_stride};
            kernelScalarCols(1, j, j1, K, a, B, ldb,
                             C + static_cast<std::ptrdiff_t>(i) * ldc, ldc,
                             accumulate);
        }
    }
}

} // namespace

void
avx2GemmTile(int i0, int i1, int j0, int j1, int K, const float *a_base,
             std::ptrdiff_t a_row_stride, std::ptrdiff_t a_elem_stride,
             const float *B, int ldb, float *C, int ldc, bool accumulate)
{
    if (a_elem_stride == 1)
        gemmTileImpl<true>(i0, i1, j0, j1, K, a_base, a_row_stride, 1, B,
                           ldb, C, ldc, accumulate);
    else
        gemmTileImpl<false>(i0, i1, j0, j1, K, a_base, a_row_stride,
                            a_elem_stride, B, ldb, C, ldc, accumulate);
}

void
avx2GemmNTRows(int i0, int i1, int N, int K, const float *A, const float *B,
               float *C, bool accumulate)
{
    for (int i = i0; i < i1; ++i) {
        const float *a = A + static_cast<std::ptrdiff_t>(i) * K;
        float *c = C + static_cast<std::ptrdiff_t>(i) * N;
        for (int j = 0; j < N; ++j) {
            const float *b = B + static_cast<std::ptrdiff_t>(j) * K;
            __m256 acc = _mm256_setzero_ps();
            int k = 0;
            for (; k + 8 <= K; k += 8)
                acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + k),
                                      _mm256_loadu_ps(b + k), acc);
            // Horizontal sum, then the scalar remainder.
            __m128 lo = _mm256_castps256_ps128(acc);
            __m128 hi = _mm256_extractf128_ps(acc, 1);
            lo = _mm_add_ps(lo, hi);
            lo = _mm_hadd_ps(lo, lo);
            lo = _mm_hadd_ps(lo, lo);
            float s = _mm_cvtss_f32(lo);
            for (; k < K; ++k)
                s += a[k] * b[k];
            c[j] = accumulate ? c[j] + s : s;
        }
    }
}

namespace
{

/**
 * One gemv row: 8-wide FMA accumulation, horizontal sum, bias, scalar
 * remainder. Shared by the single-sample and batched entry points so
 * both produce the exact same float chain per (row, sample) — that is
 * the batched path's bit-identity guarantee.
 */
inline float
gemvRowDotBias(const float *a, const float *x, int K, float bias)
{
    __m256 acc = _mm256_setzero_ps();
    int k = 0;
    for (; k + 8 <= K; k += 8)
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + k),
                              _mm256_loadu_ps(x + k), acc);
    __m128 lo = _mm256_castps256_ps128(acc);
    __m128 hi = _mm256_extractf128_ps(acc, 1);
    lo = _mm_add_ps(lo, hi);
    lo = _mm_hadd_ps(lo, lo);
    lo = _mm_hadd_ps(lo, lo);
    float s = bias + _mm_cvtss_f32(lo);
    for (; k < K; ++k)
        s += a[k] * x[k];
    return s;
}

} // namespace

void
avx2GemvBias(int M, int K, const float *A, const float *x, const float *bias,
             float *y)
{
    for (int i = 0; i < M; ++i)
        y[i] = gemvRowDotBias(A + static_cast<std::ptrdiff_t>(i) * K, x, K,
                              bias[i]);
}

void
avx2GemvBiasBatch(int M, int K, const float *A, const float *bias,
                  const float *const *xs, float *const *ys, int S)
{
    // Loop interchange + 4-sample interleave. The weight row is the
    // outer loop so the matrix streams from memory once per *batch*
    // instead of once per sample, and four samples share each loaded
    // weight vector with four *independent* accumulator chains — the
    // single-sample kernel is FMA-latency-bound (one serial chain), so
    // the interleave is where the batched speedup actually comes from.
    // Each sample's chain performs gemvRowDotBias's exact op sequence
    // (same 8-wide fmadd fold, same horizontal sum, same scalar
    // remainder), so per-element results are bit-identical to S calls
    // of avx2GemvBias.
    for (int i = 0; i < M; ++i) {
        const float *a = A + static_cast<std::ptrdiff_t>(i) * K;
        const float b = bias[i];
        int s = 0;
        for (; s + 4 <= S; s += 4) {
            const float *x0 = xs[s], *x1 = xs[s + 1];
            const float *x2 = xs[s + 2], *x3 = xs[s + 3];
            __m256 acc0 = _mm256_setzero_ps();
            __m256 acc1 = _mm256_setzero_ps();
            __m256 acc2 = _mm256_setzero_ps();
            __m256 acc3 = _mm256_setzero_ps();
            int k = 0;
            for (; k + 8 <= K; k += 8) {
                const __m256 av = _mm256_loadu_ps(a + k);
                acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(x0 + k), acc0);
                acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(x1 + k), acc1);
                acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(x2 + k), acc2);
                acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(x3 + k), acc3);
            }
            auto finish = [&](__m256 acc, const float *x) {
                __m128 lo = _mm256_castps256_ps128(acc);
                __m128 hi = _mm256_extractf128_ps(acc, 1);
                lo = _mm_add_ps(lo, hi);
                lo = _mm_hadd_ps(lo, lo);
                lo = _mm_hadd_ps(lo, lo);
                float v = b + _mm_cvtss_f32(lo);
                for (int t = k; t < K; ++t)
                    v += a[t] * x[t];
                return v;
            };
            ys[s][i] = finish(acc0, x0);
            ys[s + 1][i] = finish(acc1, x1);
            ys[s + 2][i] = finish(acc2, x2);
            ys[s + 3][i] = finish(acc3, x3);
        }
        for (; s < S; ++s)
            ys[s][i] = gemvRowDotBias(a, xs[s], K, b);
    }
}

} // namespace ptolemy::nn::detail

#endif // PTOLEMY_HAVE_AVX2
