#include "trainer.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "nn/loss.hh"
#include "util/rng.hh"

namespace ptolemy::nn
{

std::vector<EpochStats>
Trainer::train(Network &net, const Dataset &data)
{
    auto params = net.params();
    velocity.clear();
    for (auto p : params)
        velocity.emplace_back(p.value->size(), 0.0f);

    Rng rng(config.shuffleSeed);
    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);

    std::vector<EpochStats> history;
    double lr = config.learningRate;
    Network::Record rec; // reused across samples: no per-sample allocation
    LossGrad lg;         // ditto for the loss gradient

    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        // Fisher-Yates with our deterministic RNG.
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);

        double loss_sum = 0.0;
        std::size_t correct = 0;
        std::size_t in_batch = 0;
        net.zeroGrads();

        auto apply_step = [&](std::size_t batch_n) {
            if (batch_n == 0)
                return;
            const double scale = 1.0 / static_cast<double>(batch_n);
            for (std::size_t pi = 0; pi < params.size(); ++pi) {
                auto &val = *params[pi].value;
                auto &grd = *params[pi].grad;
                auto &vel = velocity[pi];
                for (std::size_t i = 0; i < val.size(); ++i) {
                    const double g = grd[i] * scale +
                                     config.weightDecay * val[i];
                    vel[i] = static_cast<float>(config.momentum * vel[i] -
                                                lr * g);
                    val[i] += vel[i];
                }
            }
            net.zeroGrads();
        };

        for (std::size_t k = 0; k < order.size(); ++k) {
            const Sample &s = data[order[k]];
            net.forwardInto(s.input, rec, /*train=*/true);
            if (rec.predictedClass() == s.label)
                ++correct;
            softmaxCrossEntropyInto(rec.logits(), s.label, lg);
            loss_sum += lg.loss;
            net.backward(lg.grad);
            if (++in_batch == static_cast<std::size_t>(config.batchSize)) {
                apply_step(in_batch);
                in_batch = 0;
            }
        }
        apply_step(in_batch);

        EpochStats st{loss_sum / data.size(),
                      static_cast<double>(correct) / data.size()};
        history.push_back(st);
        if (config.verbose) {
            std::printf("[train %s] epoch %d loss=%.4f acc=%.3f lr=%.4f\n",
                        net.name().c_str(), epoch, st.avgLoss,
                        st.trainAccuracy, lr);
        }
        if (config.lrDecayEvery > 0 && (epoch + 1) % config.lrDecayEvery == 0)
            lr *= config.lrDecay;
    }
    return history;
}

double
Trainer::evaluate(Network &net, const Dataset &data)
{
    if (data.empty())
        return 0.0;
    std::size_t correct = 0;
    Network::Record rec;
    for (const auto &s : data) {
        net.forwardInto(s.input, rec, /*train=*/false, /*stash=*/false);
        if (rec.predictedClass() == s.label)
            ++correct;
    }
    return static_cast<double>(correct) / data.size();
}

} // namespace ptolemy::nn
