#include "trainer.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace ptolemy::nn
{

std::vector<EpochStats>
Trainer::train(Network &net, const Dataset &data)
{
    std::vector<EpochStats> history;
    trainInto(net, data, history);
    return history;
}

void
Trainer::trainInto(Network &net, const Dataset &data,
                   std::vector<EpochStats> &history)
{
    history.clear();
    if (data.empty())
        return; // nothing to fit; also keeps the shuffle below(0)-free

    // Training writes weights through the flat-param pointers, which the
    // layers cannot observe — drop any serving-time packed caches up
    // front so a later forward never reads stale panels.
    net.invalidatePackedWeights();

    ThreadPool &pool = config.pool ? *config.pool : globalPool();
    const auto &params = net.flatParams();

    velocity.resize(params.size());
    for (std::size_t pi = 0; pi < params.size(); ++pi)
        velocity[pi].assign(params[pi].value->size(), 0.0f);

    const std::size_t batch =
        std::max<std::size_t>(1, static_cast<std::size_t>(config.batchSize));
    // Lane count depends only on the batch size — never on the pool —
    // so the gradient reduction order is thread-count invariant.
    const std::size_t nlanes = std::min(batch, kMaxGradLanes);
    const std::size_t state_sz = net.trainStateSize();
    const std::size_t per_lane = (batch + nlanes - 1) / nlanes;

    slots.resize(pool.size());
    lanes.resize(nlanes);
    for (auto &ln : lanes) {
        net.allocParamGrads(ln.paramGrads);
        ln.trainState.assign(state_sz * per_lane, 0.0f);
    }

    Rng rng(config.shuffleSeed);
    order.resize(data.size());
    std::iota(order.begin(), order.end(), 0);

    double lr = config.learningRate;

    auto apply_step = [&](std::size_t batch_n) {
        if (batch_n == 0)
            return;
        const double scale = 1.0 / static_cast<double>(batch_n);
        for (std::size_t pi = 0; pi < params.size(); ++pi) {
            auto &val = *params[pi].value;
            auto &grd = *params[pi].grad;
            auto &vel = velocity[pi];
            for (std::size_t i = 0; i < val.size(); ++i) {
                const double g = grd[i] * scale +
                                 config.weightDecay * val[i];
                vel[i] = static_cast<float>(config.momentum * vel[i] -
                                            lr * g);
                val[i] += vel[i];
            }
        }
        net.zeroGrads();
    };

    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        // Fisher-Yates with our deterministic RNG (the i > 1 bound keeps
        // every Rng::below argument positive, even for 1-sample data).
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);

        double loss_sum = 0.0;
        std::size_t correct = 0;
        net.zeroGrads();

        for (std::size_t k0 = 0; k0 < order.size(); k0 += batch) {
            const std::size_t bn = std::min(batch, order.size() - k0);

            // Fan the batch out: lane l walks samples l, l+nlanes, ...
            // in order, on whichever pool slot picked it up. Records,
            // arenas and loss scratch are per-slot (pure scratch);
            // gradient and stat accumulators are per-lane
            // (deterministic).
            pool.parallelForWithTid(nlanes, [&](std::size_t lane,
                                                unsigned tid) {
                // A nested/inline run may carry a foreign slot id;
                // clamping is safe there because inline sections are
                // single-threaded by construction.
                Slot &sc = slots[tid < slots.size() ? tid : 0];
                Lane &ln = lanes[lane];
                ln.lossSum = 0.0;
                ln.correct = 0;
                for (auto &g : ln.paramGrads)
                    std::fill(g.begin(), g.end(), 0.0f);
                for (std::size_t j = lane; j < bn; j += nlanes) {
                    const Sample &s = data[order[k0 + j]];
                    net.forwardInto(s.input, sc.rec, /*train=*/true,
                                    sc.arena);
                    if (sc.rec.predictedClass() == s.label)
                        ++ln.correct;
                    softmaxCrossEntropyInto(sc.rec.logits(), s.label,
                                            sc.lg);
                    ln.lossSum += sc.lg.loss;
                    net.backward(sc.rec, sc.lg.grad, sc.arena,
                                 &ln.paramGrads);
                    if (state_sz > 0)
                        net.collectTrainState(
                            sc.rec,
                            ln.trainState.data() + (j / nlanes) * state_sz);
                }
            });

            // Deterministic reductions: lanes in lane order.
            for (const Lane &ln : lanes) {
                loss_sum += ln.lossSum;
                correct += ln.correct;
            }
            for (const Lane &ln : lanes)
                for (std::size_t pi = 0; pi < params.size(); ++pi) {
                    auto &dst = *params[pi].grad;
                    const auto &src = ln.paramGrads[pi];
                    for (std::size_t i = 0; i < dst.size(); ++i)
                        dst[i] += src[i];
                }
            // Deferred layer-state updates fold in sample order, which
            // reproduces the serial EMA-update sequence exactly.
            if (state_sz > 0)
                for (std::size_t j = 0; j < bn; ++j)
                    net.applyTrainState(lanes[j % nlanes].trainState.data() +
                                        (j / nlanes) * state_sz);
            apply_step(bn);
        }

        EpochStats st{loss_sum / data.size(),
                      static_cast<double>(correct) / data.size()};
        history.push_back(st);
        if (config.verbose) {
            std::printf("[train %s] epoch %d loss=%.4f acc=%.3f lr=%.4f\n",
                        net.name().c_str(), epoch, st.avgLoss,
                        st.trainAccuracy, lr);
        }
        if (config.lrDecayEvery > 0 && (epoch + 1) % config.lrDecayEvery == 0)
            lr *= config.lrDecay;
    }
}

double
Trainer::evaluate(Network &net, const Dataset &data)
{
    if (data.empty())
        return 0.0;
    std::size_t correct = 0;
    Network::Record rec;
    for (const auto &s : data) {
        net.forwardInto(s.input, rec, /*train=*/false);
        if (rec.predictedClass() == s.label)
            ++correct;
    }
    return static_cast<double>(correct) / data.size();
}

} // namespace ptolemy::nn
