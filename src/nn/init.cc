#include "init.hh"

#include <cmath>

#include "nn/conv.hh"
#include "nn/linear.hh"
#include "nn/network.hh"
#include "util/rng.hh"

namespace ptolemy::nn
{

void
heInit(Network &net, std::uint64_t seed)
{
    Rng rng(seed);
    for (int id = 0; id < net.numNodes(); ++id) {
        Layer &layer = net.layerAt(id);
        if (layer.kind() == LayerKind::Conv) {
            auto &conv = static_cast<Conv2d &>(layer);
            const double fan_in = static_cast<double>(conv.inChannels()) *
                                  conv.kernel() * conv.kernel();
            const double std_dev = std::sqrt(2.0 / fan_in);
            for (float &w : conv.weights())
                w = static_cast<float>(rng.gaussian(0.0, std_dev));
        } else if (layer.kind() == LayerKind::Linear) {
            auto &lin = static_cast<Linear &>(layer);
            const double std_dev = std::sqrt(2.0 / lin.inFeatures());
            for (float &w : lin.weights())
                w = static_cast<float>(rng.gaussian(0.0, std_dev));
        }
    }
}

} // namespace ptolemy::nn
