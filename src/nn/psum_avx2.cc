/**
 * @file
 * AVX2 partial-sum construction kernel (compiled with -mavx2 -mfma;
 * empty TU otherwise). Extraction's hottest loop is building the
 * per-neuron (input index, w*x) rows that feed the ranking heap — for
 * the fc1 layer that is inN products per important neuron. Each value
 * is a single multiply (one rounding), so this path is bit-identical
 * to the scalar loop it replaces.
 */

#include "psum_kernels.hh"

#ifdef PTOLEMY_HAVE_AVX2

#include <immintrin.h>

#include "nn/layer.hh"

namespace ptolemy::nn::detail
{

static_assert(sizeof(PartialSum) == 8,
              "interleaved stores assume packed {u32 index, f32 value}");

void
avx2PartialProducts(const float *w, const float *x, std::uint32_t n,
                    PartialSum *out)
{
    const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    const __m256i step = _mm256_set1_epi32(8);
    __m256i iv = iota;
    std::uint32_t i = 0;
    auto *dst = reinterpret_cast<__m256i *>(out);
    for (; i + 8 <= n; i += 8) {
        const __m256 pv = _mm256_mul_ps(_mm256_loadu_ps(w + i),
                                        _mm256_loadu_ps(x + i));
        const __m256i pvi = _mm256_castps_si256(pv);
        // Interleave indices and values into (index, value) pairs:
        // unpack works per 128-bit half, the permutes stitch the halves
        // back into memory order.
        const __m256i lo = _mm256_unpacklo_epi32(iv, pvi);
        const __m256i hi = _mm256_unpackhi_epi32(iv, pvi);
        _mm256_storeu_si256(dst++, _mm256_permute2x128_si256(lo, hi, 0x20));
        _mm256_storeu_si256(dst++, _mm256_permute2x128_si256(lo, hi, 0x31));
        iv = _mm256_add_epi32(iv, step);
    }
    for (; i < n; ++i)
        out[i] = {i, w[i] * x[i]};
}

std::size_t
avx2ArgmaxRanked(const PartialSum *p, std::size_t n)
{
    // Scalar reference order: best if value greater, or equal value and
    // smaller inputIndex. Lanes additionally track the array position so
    // the winner can be swapped into place by the caller.
    std::size_t best = 0;
    std::size_t i = 1;
    if (n >= 16) {
        const auto *words = reinterpret_cast<const __m256i *>(p);
        // Each 64-byte pair of loads covers structs [i, i+8):
        // v0 = {i0 f0 i1 f1 | i2 f2 i3 f3}, v1 = {i4 f4 ... f7}.
        // shuffle_ps picks (per 128-bit half) the value or index slots;
        // the resulting lane order is scrambled but identical between
        // the value, index and position vectors, which is all the
        // max-tracking needs.
        __m256 bval = _mm256_set1_ps(p[0].value);
        __m256i bidx = _mm256_set1_epi32(
            static_cast<std::int32_t>(p[0].inputIndex));
        __m256i bpos = _mm256_setzero_si256();
        const __m256i lane_pos =
            _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
        const __m256i step = _mm256_set1_epi32(8);
        __m256i pos = lane_pos;
        i = 0;
        for (; i + 8 <= n; i += 8) {
            const __m256 v0 = _mm256_castsi256_ps(
                _mm256_loadu_si256(words + i / 4));
            const __m256 v1 = _mm256_castsi256_ps(
                _mm256_loadu_si256(words + i / 4 + 1));
            const __m256 val = _mm256_shuffle_ps(v0, v1, 0xDD);
            const __m256i idx =
                _mm256_castps_si256(_mm256_shuffle_ps(v0, v1, 0x88));
            const __m256 gt = _mm256_cmp_ps(val, bval, _CMP_GT_OQ);
            const __m256 eq = _mm256_cmp_ps(val, bval, _CMP_EQ_OQ);
            const __m256i smaller = _mm256_cmpgt_epi32(bidx, idx);
            const __m256 take = _mm256_or_ps(
                gt, _mm256_and_ps(eq, _mm256_castsi256_ps(smaller)));
            bval = _mm256_blendv_ps(bval, val, take);
            bidx = _mm256_castps_si256(
                _mm256_blendv_ps(_mm256_castsi256_ps(bidx),
                                 _mm256_castsi256_ps(idx), take));
            bpos = _mm256_castps_si256(
                _mm256_blendv_ps(_mm256_castsi256_ps(bpos),
                                 _mm256_castsi256_ps(pos), take));
            pos = _mm256_add_epi32(pos, step);
        }
        alignas(32) float vals[8];
        alignas(32) std::uint32_t idxs[8];
        alignas(32) std::uint32_t poss[8];
        _mm256_store_ps(vals, bval);
        _mm256_store_si256(reinterpret_cast<__m256i *>(idxs), bidx);
        _mm256_store_si256(reinterpret_cast<__m256i *>(poss), bpos);
        best = poss[0];
        float bv = vals[0];
        std::uint32_t bi = idxs[0];
        for (int l = 1; l < 8; ++l) {
            if (vals[l] > bv || (vals[l] == bv && idxs[l] < bi)) {
                bv = vals[l];
                bi = idxs[l];
                best = poss[l];
            }
        }
    }
    for (; i < n; ++i) {
        const bool better =
            p[i].value > p[best].value ||
            (p[i].value == p[best].value &&
             p[i].inputIndex < p[best].inputIndex);
        best = better ? i : best;
    }
    return best;
}

} // namespace ptolemy::nn::detail

#endif // PTOLEMY_HAVE_AVX2
