#include "conv.hh"

#include <algorithm>
#include <cassert>

#include "nn/gemm.hh"

namespace ptolemy::nn
{

Conv2d::Conv2d(std::string name, int in_c, int out_c, int k, int stride,
               int pad)
    : Layer(std::move(name)), inC(in_c), outC(out_c), kSize(k), strd(stride),
      padding(pad),
      weight(static_cast<std::size_t>(out_c) * in_c * k * k, 0.0f),
      bias(out_c, 0.0f), gradWeight(weight.size(), 0.0f),
      gradBias(out_c, 0.0f)
{
}

Shape
Conv2d::outShapeFor(const Shape &in) const
{
    const int oh = (in.h + 2 * padding - kSize) / strd + 1;
    const int ow = (in.w + 2 * padding - kSize) / strd + 1;
    return mapShape(outC, oh, ow);
}

Shape
Conv2d::outputShape(const std::vector<Shape> &ins) const
{
    assert(ins.size() == 1 && ins[0].c == inC);
    return outShapeFor(ins[0]);
}

void
Conv2d::forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                    bool train) const
{
    (void)train;
    const Tensor &in = *ins[0];
    // outShapeFor instead of outputShape({...}): the braced vector
    // temporary was the hot path's only steady-state heap allocation.
    out.resize(outShapeFor(in.shape()));
    if (naiveConvFlag())
        forwardNaive(in, out);
    else
        forwardGemm(in, out);
}

void
Conv2d::prepackWeights() const
{
    const int K = inC * kSize * kSize;
    if (!packedWt.empty() && packedWt.K == K && packedWt.N == outC)
        return; // fresh — stay a pure read (serving-safe no-op)
    // B[k][oc] = W^T, packed straight from the [outC x K] weight rows.
    packBMatrixStrided(weight.data(), /*k_stride=*/1, /*n_stride=*/K, K,
                       outC, packedWt);
}

bool
Conv2d::usePackedForward() const
{
#ifdef PTOLEMY_HAVE_AVX2
    // Order matters: the simd/knob checks touch no layer state, so a
    // thread can never observe a half-built pack unless it is already
    // serving this network — which the DetectorModel ownership contract
    // forbids before the constructor (which packs) returns.
    return simdMode() == SimdMode::Avx2 && prepackEnabled() &&
           !packedWt.empty();
#else
    return false;
#endif
}

void
Conv2d::forwardBatchInto(std::span<const Tensor *const> ins,
                         std::span<Tensor *const> outs) const
{
    const std::size_t S = ins.size();
    if (S <= 1 || naiveConvFlag()) {
        Layer::forwardBatchInto(ins, outs);
        return;
    }
    if (usePackedForward()) {
        // The fused packed path beats the concatenated wide SGEMM: the
        // weights are already packed, the A panel never materializes,
        // and the bias is folded into the kernel store — so there is
        // nothing left for cross-sample batching to amortize. The
        // per-sample loop lands in forwardGemm's packed branch and
        // stays bit-identical by the same kernel contract.
        Layer::forwardBatchInto(ins, outs);
        return;
    }
    const Shape ishape = ins[0]->shape();
    for (std::size_t s = 1; s < S; ++s) {
        if (!(ins[s]->shape() == ishape)) {
            Layer::forwardBatchInto(ins, outs);
            return;
        }
    }
    const int ih = ishape.h, iw = ishape.w;
    const Shape oshape = outShapeFor(ishape);
    const int oh = oshape.h, ow = oshape.w;
    const std::size_t ohw = static_cast<std::size_t>(oh) * ow;
    const int kdim = inC * kSize * kSize;

    // Cache-block the concatenation: if the whole chunk's column matrix
    // went to scratch at once, im2col would evict it before the SGEMM
    // reads it back — doubling the RAM traffic and losing to the
    // per-sample path outright. Group samples so colWide + outWide stay
    // roughly L2-resident; any grouping is bit-identical (per-element
    // SGEMM results are independent of column placement), so the block
    // size is purely a throughput knob.
    constexpr std::size_t kWideBytesBudget = 192 * 1024;
    const std::size_t bytes_per_sample =
        (static_cast<std::size_t>(kdim) + outC) * ohw * sizeof(float);
    const std::size_t group =
        std::max<std::size_t>(1, kWideBytesBudget / bytes_per_sample);
    if (group <= 1) {
        // A single sample's matrices already fill the budget: the
        // per-sample path (whose col scratch is read back while hot)
        // is the faster schedule.
        Layer::forwardBatchInto(ins, outs);
        return;
    }

    auto &scratch = gemmScratch();
    for (std::size_t base = 0; base < S; base += group) {
        const std::size_t n = std::min(group, S - base);
        const std::size_t n_wide = n * ohw;
        scratch.colWide.resize(static_cast<std::size_t>(kdim) * n_wide);
        scratch.outWide.resize(static_cast<std::size_t>(outC) * n_wide);
        for (std::size_t s = 0; s < n; ++s)
            im2colInto(ins[base + s]->data(), inC, ih, iw, kSize, strd,
                       padding, oh, ow, scratch.colWide.data() + s * ohw,
                       n_wide);
        sgemm(outC, static_cast<int>(n_wide), kdim, weight.data(),
              scratch.colWide.data(), scratch.outWide.data());
        // Scatter the wide output back per sample with the bias fused
        // in: out[i] = gemm + b is the same single addition
        // forwardGemm's in-place `row[i] += b` performs on the same
        // gemm value.
        for (std::size_t s = 0; s < n; ++s) {
            Tensor &out = *outs[base + s];
            out.resize(oshape);
            for (int oc = 0; oc < outC; ++oc) {
                const float b = bias[oc];
                const float *src = scratch.outWide.data() +
                                   static_cast<std::size_t>(oc) * n_wide +
                                   s * ohw;
                float *dst = out.data() + static_cast<std::size_t>(oc) * ohw;
                for (std::size_t i = 0; i < ohw; ++i)
                    dst[i] = src[i] + b;
            }
        }
    }
}

void
Conv2d::forwardGemm(const Tensor &in, Tensor &out) const
{
    const int ih = in.shape().h, iw = in.shape().w;
    const int oh = out.shape().h, ow = out.shape().w;
    const std::size_t ohw = static_cast<std::size_t>(oh) * ow;
    if (usePackedForward()) {
        // Fused serving path: the im2col A panel is emitted strip by
        // strip straight into the microkernel's broadcast operand, so
        // the [K x oh*ow] column matrix never materializes. Bias is
        // added once to the accumulators — the same single addition as
        // the `row[i] += b` pass below. Bit-identical per the
        // gemm_kernels.hh contract.
        convForwardPacked(in.data(), inC, ih, iw, kSize, strd, padding, oh,
                          ow, packedWt, bias.data(), out.data());
        return;
    }
    auto &scratch = gemmScratch();
    im2col(in.data(), inC, ih, iw, kSize, strd, padding, oh, ow, scratch.col);
    sgemm(outC, static_cast<int>(ohw), inC * kSize * kSize, weight.data(),
          scratch.col.data(), out.data());
    for (int oc = 0; oc < outC; ++oc) {
        const float b = bias[oc];
        float *row = out.data() + static_cast<std::size_t>(oc) * ohw;
        for (std::size_t i = 0; i < ohw; ++i)
            row[i] += b;
    }
}

void
Conv2d::forwardNaive(const Tensor &in, Tensor &out) const
{
    const int ih = in.shape().h, iw = in.shape().w;
    const int oh = out.shape().h, ow = out.shape().w;

    for (int oc = 0; oc < outC; ++oc) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                float acc = bias[oc];
                const int iy0 = oy * strd - padding;
                const int ix0 = ox * strd - padding;
                for (int ic = 0; ic < inC; ++ic) {
                    for (int ky = 0; ky < kSize; ++ky) {
                        const int iy = iy0 + ky;
                        if (iy < 0 || iy >= ih)
                            continue;
                        for (int kx = 0; kx < kSize; ++kx) {
                            const int ix = ix0 + kx;
                            if (ix < 0 || ix >= iw)
                                continue;
                            acc += wAt(oc, ic, ky, kx) * in.at(ic, iy, ix);
                        }
                    }
                }
                out.at(oc, oy, ox) = acc;
            }
        }
    }
}

void
Conv2d::backwardInto(const std::vector<const Tensor *> &ins,
                     const Tensor &grad_out,
                     const std::vector<GradSink> &sinks,
                     std::vector<float> *const *param_grads)
{
    const Tensor &in = *ins[0];
    const bool skip = param_grads == skipParamGrads();
    auto *grad_w =
        skip ? nullptr : (param_grads ? param_grads[0] : &gradWeight);
    auto *grad_b =
        skip ? nullptr : (param_grads ? param_grads[1] : &gradBias);
    // Both paths scatter-add into the input gradient, so an overwrite
    // sink starts from zero and an accumulate sink keeps its contents.
    if (!sinks[0].accumulate)
        sinks[0].grad->resizeZero(in.shape());
    if (naiveConvFlag())
        backwardNaive(in, grad_out, sinks[0], grad_w, grad_b);
    else
        backwardGemm(in, grad_out, sinks[0], grad_w, grad_b);
}

void
Conv2d::backwardGemm(const Tensor &in, const Tensor &grad_out,
                     const GradSink &sink, std::vector<float> *grad_w,
                     std::vector<float> *grad_b)
{
    Tensor &grad_in = *sink.grad;
    const int ih = in.shape().h, iw = in.shape().w;
    const int oh = grad_out.shape().h, ow = grad_out.shape().w;
    const std::size_t ohw = static_cast<std::size_t>(oh) * ow;
    const int kdim = inC * kSize * kSize;

    auto &scratch = gemmScratch();
    if (grad_b) {
        for (int oc = 0; oc < outC; ++oc) {
            const float *row =
                grad_out.data() + static_cast<std::size_t>(oc) * ohw;
            float acc = 0.0f;
            for (std::size_t i = 0; i < ohw; ++i)
                acc += row[i];
            (*grad_b)[oc] += acc;
        }
    }
    if (grad_w) {
        // The im2col only feeds the dW product, so the input-only
        // backward skips both.
        im2col(in.data(), inC, ih, iw, kSize, strd, padding, oh, ow,
               scratch.col);
        // grad_W[outC x kdim] += grad_out[outC x ohw] * col^T.
        sgemmNT(outC, kdim, static_cast<int>(ohw), grad_out.data(),
                scratch.col.data(), grad_w->data(), /*accumulate=*/true);
    }
    // col_grad[kdim x ohw] = W^T * grad_out, scattered back to the image.
    scratch.colGrad.resize(static_cast<std::size_t>(kdim) * ohw);
    sgemmTN(kdim, static_cast<int>(ohw), outC, weight.data(),
            grad_out.data(), scratch.colGrad.data());
    col2im(scratch.colGrad, inC, ih, iw, kSize, strd, padding, oh, ow,
           grad_in.data());
}

void
Conv2d::backwardNaive(const Tensor &in, const Tensor &grad_out,
                      const GradSink &sink, std::vector<float> *grad_w,
                      std::vector<float> *grad_b)
{
    Tensor &grad_in = *sink.grad;
    const int ih = in.shape().h, iw = in.shape().w;
    const int oh = grad_out.shape().h, ow = grad_out.shape().w;

    for (int oc = 0; oc < outC; ++oc) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                const float g = grad_out.at(oc, oy, ox);
                if (g == 0.0f)
                    continue;
                if (grad_b)
                    (*grad_b)[oc] += g;
                const int iy0 = oy * strd - padding;
                const int ix0 = ox * strd - padding;
                for (int ic = 0; ic < inC; ++ic) {
                    for (int ky = 0; ky < kSize; ++ky) {
                        const int iy = iy0 + ky;
                        if (iy < 0 || iy >= ih)
                            continue;
                        for (int kx = 0; kx < kSize; ++kx) {
                            const int ix = ix0 + kx;
                            if (ix < 0 || ix >= iw)
                                continue;
                            const std::size_t wi =
                                ((static_cast<std::size_t>(oc) * inC + ic) *
                                 kSize + ky) * kSize + kx;
                            if (grad_w)
                                (*grad_w)[wi] += g * in.at(ic, iy, ix);
                            grad_in.at(ic, iy, ix) += g * weight[wi];
                        }
                    }
                }
            }
        }
    }
}

std::vector<Param>
Conv2d::params()
{
    return {{&weight, &gradWeight}, {&bias, &gradBias}};
}

void
Conv2d::partialSums(const Tensor &input, std::size_t out_index,
                    std::vector<PartialSum> &out) const
{
    out.clear();
    out.reserve(receptiveFieldSize());
    const int ih = input.shape().h, iw = input.shape().w;
    const int oh = (ih + 2 * padding - kSize) / strd + 1;
    const int ow = (iw + 2 * padding - kSize) / strd + 1;
    const std::size_t plane = static_cast<std::size_t>(oh) * ow;
    const int oc = static_cast<int>(out_index / plane);
    const std::size_t rem = out_index % plane;
    const int oy = static_cast<int>(rem / ow);
    const int ox = static_cast<int>(rem % ow);

    const int iy0 = oy * strd - padding;
    const int ix0 = ox * strd - padding;

    if (iy0 >= 0 && ix0 >= 0 && iy0 + kSize <= ih && ix0 + kSize <= iw) {
        // Interior neuron: the whole receptive field is in-image, so
        // the per-tap bounds checks vanish and every tap emits. Same
        // (ic, ky, kx) emission order and the same single-rounding
        // products as the general loop below.
        out.resize(static_cast<std::size_t>(inC) * kSize * kSize);
        const float *w = &weight[(static_cast<std::size_t>(oc) * inC) *
                                 kSize * kSize];
        const float *in = input.data();
        PartialSum *dst = out.data();
        for (int ic = 0; ic < inC; ++ic) {
            const std::size_t plane0 =
                (static_cast<std::size_t>(ic) * ih + iy0) * iw + ix0;
            for (int ky = 0; ky < kSize; ++ky) {
                const float *row = in + plane0 + static_cast<std::size_t>(ky) * iw;
                const std::uint32_t idx0 =
                    static_cast<std::uint32_t>(plane0 + static_cast<std::size_t>(ky) * iw);
                for (int kx = 0; kx < kSize; ++kx)
                    *dst++ = {idx0 + static_cast<std::uint32_t>(kx),
                              w[kx] * row[kx]};
                w += kSize;
            }
        }
        return;
    }

    for (int ic = 0; ic < inC; ++ic) {
        for (int ky = 0; ky < kSize; ++ky) {
            const int iy = iy0 + ky;
            if (iy < 0 || iy >= ih)
                continue;
            for (int kx = 0; kx < kSize; ++kx) {
                const int ix = ix0 + kx;
                if (ix < 0 || ix >= iw)
                    continue;
                const float v = wAt(oc, ic, ky, kx) * input.at(ic, iy, ix);
                out.push_back(
                    {static_cast<std::uint32_t>(input.index(ic, iy, ix)), v});
            }
        }
    }
}

std::size_t
Conv2d::receptiveFieldSize() const
{
    return static_cast<std::size_t>(inC) * kSize * kSize;
}

} // namespace ptolemy::nn
