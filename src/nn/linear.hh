/**
 * @file
 * Fully-connected layer.
 */

#ifndef PTOLEMY_NN_LINEAR_HH
#define PTOLEMY_NN_LINEAR_HH

#include <vector>

#include "nn/layer.hh"

namespace ptolemy::nn
{

/**
 * Dense layer y = W x + b over flat vectors. Weight layout: [out][in].
 */
class Linear : public Layer
{
  public:
    Linear(std::string name, int in_n, int out_n);

    LayerKind kind() const override { return LayerKind::Linear; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train) const override;
    bool supportsBatchedForward() const override { return true; }
    /**
     * Batched forward via sgemvBiasBatch: the weight matrix streams
     * from memory once per chunk instead of once per sample (for wide
     * fc layers the weight stream dominates single-sample latency).
     * Each (row, sample) cell runs the exact sgemvBias row kernel, so
     * outputs are bit-identical to S forwardInto calls.
     */
    void forwardBatchInto(std::span<const Tensor *const> ins,
                          std::span<Tensor *const> outs) const override;
    void backwardInto(const std::vector<const Tensor *> &ins,
                      const Tensor &grad_out,
                      const std::vector<GradSink> &sinks,
                      std::vector<float> *const *param_grads) override;
    std::vector<Param> params() override;
    bool weighted() const override { return true; }
    void partialSums(const Tensor &input, std::size_t out_index,
                     std::vector<PartialSum> &out) const override;
    std::size_t receptiveFieldSize() const override;

    int inFeatures() const { return inN; }
    int outFeatures() const { return outN; }
    std::vector<float> &weights() { return weight; }
    std::vector<float> &biases() { return bias; }

  private:
    int inN, outN;
    std::vector<float> weight, bias;
    std::vector<float> gradWeight, gradBias;
};

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_LINEAR_HH
