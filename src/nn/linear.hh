/**
 * @file
 * Fully-connected layer.
 */

#ifndef PTOLEMY_NN_LINEAR_HH
#define PTOLEMY_NN_LINEAR_HH

#include <vector>

#include "nn/layer.hh"
#include "util/aligned.hh"

namespace ptolemy::nn
{

/**
 * Dense layer y = W x + b over flat vectors. Weight layout: [out][in].
 */
class Linear : public Layer
{
  public:
    Linear(std::string name, int in_n, int out_n);

    LayerKind kind() const override { return LayerKind::Linear; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train) const override;
    bool supportsBatchedForward() const override { return true; }
    /**
     * Batched forward via sgemvBiasBatch: the weight matrix streams
     * from memory once per chunk instead of once per sample (for wide
     * fc layers the weight stream dominates single-sample latency).
     * Each (row, sample) cell runs the exact sgemvBias row kernel, so
     * outputs are bit-identical to S forwardInto calls.
     */
    void forwardBatchInto(std::span<const Tensor *const> ins,
                          std::span<Tensor *const> outs) const override;
    void backwardInto(const std::vector<const Tensor *> &ins,
                      const Tensor &grad_out,
                      const std::vector<GradSink> &sinks,
                      std::vector<float> *const *param_grads) override;
    std::vector<Param> params() override;
    bool weighted() const override { return true; }
    void partialSums(const Tensor &input, std::size_t out_index,
                     std::vector<PartialSum> &out) const override;
    std::size_t receptiveFieldSize() const override;

    /**
     * Copy the weight matrix into a 64-byte-aligned buffer the serving
     * gemv streams from. The values are identical, so every SIMD mode
     * is trivially bit-identical; the win is aligned vector loads and a
     * cache-line-aligned stream. See Layer::prepackWeights for the
     * ownership contract.
     */
    void prepackWeights() const override;
    void invalidatePackedWeights() override
    {
        util::AlignedF32().swap(packedW);
    }

    int inFeatures() const { return inN; }
    int outFeatures() const { return outN; }
    /** Direct access for initializers and tests. Non-const access
     *  invalidates the packed weight cache (the values may change). */
    std::vector<float> &
    weights()
    {
        invalidatePackedWeights();
        return weight;
    }
    std::vector<float> &
    biases()
    {
        // Bias is read live (never packed), but dropping the cache
        // keeps the staleness story uniform.
        invalidatePackedWeights();
        return bias;
    }

  private:
    /** Serving weight pointer: aligned copy when fresh, else live. */
    const float *servingWeights() const;

    int inN, outN;
    std::vector<float> weight, bias;
    std::vector<float> gradWeight, gradBias;
    /** Aligned serving-time copy of weight; mutable const-cache filled
     *  by prepackWeights (owner phase only — see Layer contract). */
    mutable util::AlignedF32 packedW;
};

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_LINEAR_HH
