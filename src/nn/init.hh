/**
 * @file
 * Weight initialization.
 */

#ifndef PTOLEMY_NN_INIT_HH
#define PTOLEMY_NN_INIT_HH

#include <cstdint>

namespace ptolemy
{
class Rng;
}

namespace ptolemy::nn
{

class Network;

/**
 * He-normal initialization for every conv/linear weight (std =
 * sqrt(2 / fan_in)); biases and Norm affine parameters keep their
 * defaults (0 / identity).
 */
void heInit(Network &net, std::uint64_t seed);

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_INIT_HH
