/**
 * @file
 * Parameter-light layers: ReLU, MaxPool2d, GlobalAvgPool, Flatten,
 * residual Add, channel Concat, and the EMA-statistics Norm2d.
 */

#ifndef PTOLEMY_NN_COMMON_LAYERS_HH
#define PTOLEMY_NN_COMMON_LAYERS_HH

#include <vector>

#include "nn/layer.hh"

namespace ptolemy::nn
{

/** Element-wise rectifier. */
class ReLU : public Layer
{
  public:
    explicit ReLU(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::ReLU; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train, bool stash) override;
    void backwardInto(const Tensor &grad_out,
                      const std::vector<GradSink> &sinks) override;

  private:
    std::vector<bool> mask;
    Shape lastShape;
};

/** Non-overlapping max pooling with square window. */
class MaxPool2d : public Layer
{
  public:
    MaxPool2d(std::string name, int k) : Layer(std::move(name)), kSize(k) {}

    LayerKind kind() const override { return LayerKind::MaxPool; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train, bool stash) override;
    void backwardInto(const Tensor &grad_out,
                      const std::vector<GradSink> &sinks) override;
    void backmapImportant(
        const std::vector<const Tensor *> &ins, const Tensor &out,
        const std::vector<std::size_t> &out_idx,
        std::vector<std::vector<std::size_t>> &per_input) const override;

    int kernel() const { return kSize; }

  private:
    int kSize;
    Shape lastInShape;
    std::vector<std::size_t> argmaxIdx; ///< winner input index per output
};

/** Global average pool: (C,H,W) -> flat (C). */
class GlobalAvgPool : public Layer
{
  public:
    explicit GlobalAvgPool(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::GlobalAvgPool; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train, bool stash) override;
    void backwardInto(const Tensor &grad_out,
                      const std::vector<GradSink> &sinks) override;
    void backmapImportant(
        const std::vector<const Tensor *> &ins, const Tensor &out,
        const std::vector<std::size_t> &out_idx,
        std::vector<std::vector<std::size_t>> &per_input) const override;

  private:
    Shape lastInShape;
};

/** Reshape (C,H,W) -> flat (C*H*W). Values are unchanged. */
class Flatten : public Layer
{
  public:
    explicit Flatten(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::Flatten; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train, bool stash) override;
    void backwardInto(const Tensor &grad_out,
                      const std::vector<GradSink> &sinks) override;

  private:
    Shape lastInShape;
};

/** Element-wise sum of two same-shaped tensors (residual connection). */
class Add : public Layer
{
  public:
    explicit Add(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::Add; }
    int numInputs() const override { return 2; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train, bool stash) override;
    void backwardInto(const Tensor &grad_out,
                      const std::vector<GradSink> &sinks) override;
    void backmapImportant(
        const std::vector<const Tensor *> &ins, const Tensor &out,
        const std::vector<std::size_t> &out_idx,
        std::vector<std::vector<std::size_t>> &per_input) const override;

  private:
    Shape lastShape;
};

/** Channel-dimension concatenation of two maps with equal H and W. */
class Concat : public Layer
{
  public:
    explicit Concat(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::Concat; }
    int numInputs() const override { return 2; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train, bool stash) override;
    void backwardInto(const Tensor &grad_out,
                      const std::vector<GradSink> &sinks) override;
    void backmapImportant(
        const std::vector<const Tensor *> &ins, const Tensor &out,
        const std::vector<std::size_t> &out_idx,
        std::vector<std::vector<std::size_t>> &per_input) const override;

  private:
    Shape inShapeA, inShapeB;
};

/**
 * Parameter-free residual shortcut for strided stages (ResNet "option A"):
 * spatially subsample by 2 and zero-pad the channel dimension to 2C.
 * Keeps ResNet-18's weighted-layer count at exactly 18.
 */
class DownsamplePad : public Layer
{
  public:
    explicit DownsamplePad(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::Downsample; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train, bool stash) override;
    void backwardInto(const Tensor &grad_out,
                      const std::vector<GradSink> &sinks) override;
    void backmapImportant(
        const std::vector<const Tensor *> &ins, const Tensor &out,
        const std::vector<std::size_t> &out_idx,
        std::vector<std::vector<std::size_t>> &per_input) const override;

  private:
    Shape lastInShape;
};

/**
 * Per-channel normalization with EMA running statistics.
 *
 * y = gamma * (x - mu_run) / sqrt(var_run + eps) + beta.
 *
 * During training the running statistics are updated from the current
 * sample and then treated as constants in backward (streaming/"frozen"
 * batch-norm), which is stable with our sample-at-a-time training loop
 * and keeps the backward pass simple. The running stats are serialized
 * as layer state.
 */
class Norm2d : public Layer
{
  public:
    Norm2d(std::string name, int channels, float momentum = 0.05f,
           float eps = 1e-5f);

    LayerKind kind() const override { return LayerKind::Norm; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train, bool stash) override;
    void backwardInto(const Tensor &grad_out,
                      const std::vector<GradSink> &sinks) override;
    std::vector<Param> params() override;
    std::vector<Param> state() override;

  private:
    int chans;
    float mom, epsilon;
    std::vector<float> gamma, beta, gradGamma, gradBeta;
    std::vector<float> runMean, runVar;
    Tensor lastXhat; ///< normalized input, needed for gradGamma
    Shape lastShape;
};

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_COMMON_LAYERS_HH
