/**
 * @file
 * Parameter-light layers: ReLU, MaxPool2d, GlobalAvgPool, Flatten,
 * residual Add, channel Concat, and the EMA-statistics Norm2d.
 *
 * None of these layers keeps per-pass state: backward re-derives
 * masks/argmaxes/shapes from the recorded forward inputs, so any number
 * of samples may be in flight through one layer object concurrently
 * (see the Layer contract).
 */

#ifndef PTOLEMY_NN_COMMON_LAYERS_HH
#define PTOLEMY_NN_COMMON_LAYERS_HH

#include <vector>

#include "nn/layer.hh"

namespace ptolemy::nn
{

/** Element-wise rectifier. */
class ReLU : public Layer
{
  public:
    explicit ReLU(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::ReLU; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train) const override;
    void backwardInto(const std::vector<const Tensor *> &ins,
                      const Tensor &grad_out,
                      const std::vector<GradSink> &sinks,
                      std::vector<float> *const *param_grads) override;
};

/** Non-overlapping max pooling with square window. */
class MaxPool2d : public Layer
{
  public:
    MaxPool2d(std::string name, int k) : Layer(std::move(name)), kSize(k) {}

    LayerKind kind() const override { return LayerKind::MaxPool; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train) const override;
    void backwardInto(const std::vector<const Tensor *> &ins,
                      const Tensor &grad_out,
                      const std::vector<GradSink> &sinks,
                      std::vector<float> *const *param_grads) override;
    void backmapImportant(
        const std::vector<const Tensor *> &ins, const Tensor &out,
        const std::vector<std::size_t> &out_idx,
        std::vector<std::vector<std::size_t>> &per_input) const override;

    int kernel() const { return kSize; }

  private:
    int kSize;
};

/** Global average pool: (C,H,W) -> flat (C). */
class GlobalAvgPool : public Layer
{
  public:
    explicit GlobalAvgPool(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::GlobalAvgPool; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train) const override;
    void backwardInto(const std::vector<const Tensor *> &ins,
                      const Tensor &grad_out,
                      const std::vector<GradSink> &sinks,
                      std::vector<float> *const *param_grads) override;
    void backmapImportant(
        const std::vector<const Tensor *> &ins, const Tensor &out,
        const std::vector<std::size_t> &out_idx,
        std::vector<std::vector<std::size_t>> &per_input) const override;
};

/** Reshape (C,H,W) -> flat (C*H*W). Values are unchanged. */
class Flatten : public Layer
{
  public:
    explicit Flatten(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::Flatten; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train) const override;
    void backwardInto(const std::vector<const Tensor *> &ins,
                      const Tensor &grad_out,
                      const std::vector<GradSink> &sinks,
                      std::vector<float> *const *param_grads) override;
};

/** Element-wise sum of two same-shaped tensors (residual connection). */
class Add : public Layer
{
  public:
    explicit Add(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::Add; }
    int numInputs() const override { return 2; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train) const override;
    void backwardInto(const std::vector<const Tensor *> &ins,
                      const Tensor &grad_out,
                      const std::vector<GradSink> &sinks,
                      std::vector<float> *const *param_grads) override;
    void backmapImportant(
        const std::vector<const Tensor *> &ins, const Tensor &out,
        const std::vector<std::size_t> &out_idx,
        std::vector<std::vector<std::size_t>> &per_input) const override;
};

/** Channel-dimension concatenation of two maps with equal H and W. */
class Concat : public Layer
{
  public:
    explicit Concat(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::Concat; }
    int numInputs() const override { return 2; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train) const override;
    void backwardInto(const std::vector<const Tensor *> &ins,
                      const Tensor &grad_out,
                      const std::vector<GradSink> &sinks,
                      std::vector<float> *const *param_grads) override;
    void backmapImportant(
        const std::vector<const Tensor *> &ins, const Tensor &out,
        const std::vector<std::size_t> &out_idx,
        std::vector<std::vector<std::size_t>> &per_input) const override;
};

/**
 * Parameter-free residual shortcut for strided stages (ResNet "option A"):
 * spatially subsample by 2 and zero-pad the channel dimension to 2C.
 * Keeps ResNet-18's weighted-layer count at exactly 18.
 */
class DownsamplePad : public Layer
{
  public:
    explicit DownsamplePad(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::Downsample; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train) const override;
    void backwardInto(const std::vector<const Tensor *> &ins,
                      const Tensor &grad_out,
                      const std::vector<GradSink> &sinks,
                      std::vector<float> *const *param_grads) override;
    void backmapImportant(
        const std::vector<const Tensor *> &ins, const Tensor &out,
        const std::vector<std::size_t> &out_idx,
        std::vector<std::vector<std::size_t>> &per_input) const override;
};

/**
 * Per-channel normalization with EMA running statistics.
 *
 * y = gamma * (x - mu_run) / sqrt(var_run + eps) + beta.
 *
 * Training uses *deferred* statistics updates: forward normalizes with
 * the running stats as of the start of the mini-batch, each sample's
 * per-channel moments are collected via collectTrainState, and the
 * trainer folds them into the EMA in a fixed sample order at the batch
 * boundary (applyTrainState). The stats are then treated as constants
 * in backward (streaming/"frozen" batch-norm), which is stable with
 * our per-sample gradient computation, keeps the backward pass simple,
 * and — unlike the old update-during-forward scheme — is bit-identical
 * no matter how many threads execute the batch. The running stats are
 * serialized as layer state.
 */
class Norm2d : public Layer
{
  public:
    Norm2d(std::string name, int channels, float momentum = 0.05f,
           float eps = 1e-5f);

    LayerKind kind() const override { return LayerKind::Norm; }
    Shape outputShape(const std::vector<Shape> &ins) const override;
    void forwardInto(const std::vector<const Tensor *> &ins, Tensor &out,
                     bool train) const override;
    void backwardInto(const std::vector<const Tensor *> &ins,
                      const Tensor &grad_out,
                      const std::vector<GradSink> &sinks,
                      std::vector<float> *const *param_grads) override;
    std::vector<Param> params() override;
    std::vector<Param> state() override;
    std::size_t trainStateSize() const override;
    void collectTrainState(const std::vector<const Tensor *> &ins,
                           float *dst) const override;
    void applyTrainState(const float *src) override;

  private:
    int chans;
    float mom, epsilon;
    std::vector<float> gamma, beta, gradGamma, gradBeta;
    std::vector<float> runMean, runVar;
};

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_COMMON_LAYERS_HH
