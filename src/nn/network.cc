#include "network.hh"

#include <cassert>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/serialize.hh"
#include "util/thread_pool.hh"

namespace ptolemy::nn
{

int
Network::add(std::unique_ptr<Layer> layer, std::vector<int> inputs)
{
    const int id = static_cast<int>(nodes.size());
    if (inputs.empty())
        inputs.push_back(id - 1); // previous node; -1 == network input
    assert(static_cast<int>(inputs.size()) == layer->numInputs());

    std::vector<Shape> in_shapes;
    for (int in_id : inputs) {
        assert(in_id >= -1 && in_id < id); // topological order
        in_shapes.push_back(in_id < 0 ? inShape : nodes[in_id].outShape);
    }
    Node n;
    n.outShape = layer->outputShape(in_shapes);
    if (layer->weighted())
        weightedIds.push_back(id);
    n.layer = std::move(layer);
    n.inputs = std::move(inputs);
    nodes.push_back(std::move(n));
    return id;
}

Shape
Network::nodeInputShape(int id, int input_slot) const
{
    const int in_id = nodes[id].inputs[input_slot];
    return in_id < 0 ? inShape : nodes[in_id].outShape;
}

std::vector<int>
Network::consumersOf(int id) const
{
    std::vector<int> out;
    for (int n = 0; n < numNodes(); ++n)
        for (int in_id : nodes[n].inputs)
            if (in_id == id)
                out.push_back(n);
    return out;
}

Network::Record
Network::forward(const Tensor &x, bool train)
{
    Record rec;
    forwardInto(x, rec, train);
    return rec;
}

void
Network::forwardInto(const Tensor &x, Record &rec, bool train)
{
    forwardInto(x, rec, train, arena);
    // Single-stream training semantics: fold any deferred layer-state
    // update (Norm running stats) right away, like the pre-refactor
    // streaming behavior. Batched training uses the slot overload and
    // defers the fold to the batch boundary instead.
    if (train && trainStateSize() > 0) {
        trainStateScratch.resize(trainStateSize());
        collectTrainState(rec, trainStateScratch.data());
        applyTrainState(trainStateScratch.data());
    }
}

void
Network::forwardInto(const Tensor &x, Record &rec, bool train,
                     GradArena &slot) const
{
    assert(x.shape() == inShape);
    rec.input = x; // copy-assign reuses the record's buffer
    rec.outputs.resize(nodes.size());
    for (std::size_t id = 0; id < nodes.size(); ++id) {
        const auto &n = nodes[id];
        slot.ins.clear();
        for (int in_id : n.inputs)
            slot.ins.push_back(in_id < 0 ? &rec.input
                                         : &rec.outputs[in_id]);
        n.layer->forwardInto(slot.ins, rec.outputs[id], train);
    }
}

void
Network::inferInto(const Tensor &x, Record &rec) const
{
    assert(x.shape() == inShape);
    // Layers are state-free in forward, so concurrent inferences
    // through the shared layer objects do not race. The input views are
    // thread-local so a warmed-up loop allocates nothing.
    thread_local std::vector<const Tensor *> ins;
    rec.input = x; // copy-assign reuses the record's buffer
    rec.outputs.resize(nodes.size());
    for (std::size_t id = 0; id < nodes.size(); ++id) {
        const auto &n = nodes[id];
        ins.clear();
        for (int in_id : n.inputs)
            ins.push_back(in_id < 0 ? &rec.input : &rec.outputs[in_id]);
        n.layer->forwardInto(ins, rec.outputs[id], false);
    }
}

void
Network::forwardBatch(const std::vector<Tensor> &xs, std::vector<Record> &recs,
                      ThreadPool *pool) const
{
    // Delegate through borrowed views; per-thread pointer scratch keeps
    // repeated batches allocation-free.
    thread_local std::vector<const Tensor *> ptrs;
    ptrs.clear();
    for (const Tensor &x : xs)
        ptrs.push_back(&x);
    forwardBatch(std::span<const Tensor *const>(ptrs.data(), ptrs.size()),
                 recs, pool);
}

void
Network::forwardBatch(std::span<const Tensor *const> xs,
                      std::vector<Record> &recs, ThreadPool *pool) const
{
    recs.resize(xs.size());
    if (pool && pool->size() > 1 && xs.size() > 1) {
        pool->parallelFor(xs.size(),
                          [&](std::size_t i) { inferInto(*xs[i], recs[i]); });
        return;
    }
    for (std::size_t i = 0; i < xs.size(); ++i)
        inferInto(*xs[i], recs[i]);
}

void
Network::forwardBatchWide(const std::vector<Tensor> &xs,
                          std::vector<Record> &recs, ThreadPool *pool) const
{
    thread_local std::vector<const Tensor *> ptrs;
    ptrs.clear();
    for (const Tensor &x : xs)
        ptrs.push_back(&x);
    forwardBatchWide(std::span<const Tensor *const>(ptrs.data(), ptrs.size()),
                     recs, pool);
}

void
Network::forwardBatchWide(std::span<const Tensor *const> xs,
                          std::vector<Record> &recs, ThreadPool *pool) const
{
    const std::size_t S = xs.size();
    // Grow-only: a short tail chunk must not destroy the warm Records
    // a full chunk built up (steady-state serving allocates nothing).
    // Only recs[0..S) are written this call.
    if (recs.size() < S)
        recs.resize(S);
    if (S == 1) {
        inferInto(*xs[0], recs[0]);
        return;
    }
    if (S == 0)
        return;
    for (std::size_t s = 0; s < S; ++s) {
        assert(xs[s]->shape() == inShape);
        recs[s].input = *xs[s]; // copy-assign reuses the record's buffer
        recs[s].outputs.resize(nodes.size());
    }
    // Layer-major sweep: node by node, whole batch per node. All views
    // into the records are resolved per node; thread-local scratch
    // keeps a warmed-up loop allocation-free.
    thread_local std::vector<const Tensor *> ins_wide;
    thread_local std::vector<Tensor *> outs_wide;
    for (std::size_t id = 0; id < nodes.size(); ++id) {
        const auto &n = nodes[id];
        if (n.layer->supportsBatchedForward() && n.inputs.size() == 1) {
            const int in_id = n.inputs[0];
            ins_wide.clear();
            outs_wide.clear();
            for (std::size_t s = 0; s < S; ++s) {
                ins_wide.push_back(in_id < 0 ? &recs[s].input
                                             : &recs[s].outputs[in_id]);
                outs_wide.push_back(&recs[s].outputs[id]);
            }
            n.layer->forwardBatchInto(
                std::span<const Tensor *const>(ins_wide.data(), S),
                std::span<Tensor *const>(outs_wide.data(), S));
            continue;
        }
        auto run_one = [&](std::size_t s) {
            thread_local std::vector<const Tensor *> ins;
            ins.clear();
            for (int in_id : n.inputs)
                ins.push_back(in_id < 0 ? &recs[s].input
                                        : &recs[s].outputs[in_id]);
            n.layer->forwardInto(ins, recs[s].outputs[id], false);
        };
        if (pool && pool->size() > 1) {
            pool->parallelFor(S, run_one);
        } else {
            for (std::size_t s = 0; s < S; ++s)
                run_one(s);
        }
    }
}

const Tensor &
Network::backward(const Record &rec, const Tensor &grad_logits)
{
    return backward(rec, grad_logits, arena, /*param_grads=*/nullptr);
}

const Tensor &
Network::backward(const Record &rec, const Tensor &grad_logits,
                  GradArena &slot, std::vector<std::vector<float>> *param_grads)
{
    slot.seeds.resize(1);
    slot.seeds[0].first = numNodes() - 1;
    slot.seeds[0].second = grad_logits; // copy-assign reuses the buffer
    return backwardMulti(rec, slot.seeds, slot, param_grads);
}

const Tensor &
Network::backwardInputOnly(const Record &rec, const Tensor &grad_logits,
                           GradArena &slot)
{
    slot.seeds.resize(1);
    slot.seeds[0].first = numNodes() - 1;
    slot.seeds[0].second = grad_logits; // copy-assign reuses the buffer
    return backwardMultiImpl(rec, slot.seeds, slot,
                             /*param_grads=*/nullptr,
                             /*input_only=*/true);
}

const Tensor &
Network::backwardMulti(const Record &rec,
                       const std::vector<std::pair<int, Tensor>> &seeds)
{
    return backwardMulti(rec, seeds, arena, /*param_grads=*/nullptr);
}

const Tensor &
Network::backwardMulti(const Record &rec,
                       const std::vector<std::pair<int, Tensor>> &seeds,
                       GradArena &slot,
                       std::vector<std::vector<float>> *param_grads)
{
    return backwardMultiImpl(rec, seeds, slot, param_grads,
                             /*input_only=*/false);
}

const Tensor &
Network::backwardMultiInputOnly(
    const Record &rec, const std::vector<std::pair<int, Tensor>> &seeds,
    GradArena &slot)
{
    return backwardMultiImpl(rec, seeds, slot, /*param_grads=*/nullptr,
                             /*input_only=*/true);
}

const Tensor &
Network::backwardMultiImpl(const Record &rec,
                           const std::vector<std::pair<int, Tensor>> &seeds,
                           GradArena &slot,
                           std::vector<std::vector<float>> *param_grads,
                           bool input_only)
{
    if (rec.outputs.size() != nodes.size())
        throw std::logic_error(
            "Network::backward: the record does not cover this network's "
            "nodes — pass the Record of a matching forward pass");
    ensureParamIndex();
    if (param_grads) {
        // Per-node destination pointers into the caller's flat buffers;
        // the table mirrors flatParams() order.
        slot.pgradPtrs.resize(flatParamCache.size());
        for (std::size_t i = 0; i < flatParamCache.size(); ++i)
            slot.pgradPtrs[i] = &(*param_grads)[i];
    }

    // Gradients accumulate at each node's *output* (plus the net input)
    // inside the slot arena; seeded flags gate every read so stale
    // tensors from the previous pass are never observed.
    slot.gradAt.resize(nodes.size());
    slot.seeded.assign(nodes.size(), 0);
    slot.gradInputSeeded = false;
    for (const auto &[node_id, grad] : seeds) {
        if (!slot.seeded[node_id]) {
            slot.gradAt[node_id] = grad; // copy-assign reuses the buffer
            slot.seeded[node_id] = 1;
        } else {
            slot.gradAt[node_id] += grad;
        }
    }

    for (int id = numNodes() - 1; id >= 0; --id) {
        if (!slot.seeded[id])
            continue; // node does not reach the loss
        auto &n = nodes[id];
        slot.sinks.clear();
        slot.ins.clear();
        for (int in_id : n.inputs) {
            slot.ins.push_back(in_id < 0 ? &rec.input
                                         : &rec.outputs[in_id]);
            GradSink s;
            if (in_id < 0) {
                s.grad = &slot.gradInput;
                s.accumulate = slot.gradInputSeeded;
                slot.gradInputSeeded = true;
            } else {
                s.grad = &slot.gradAt[in_id];
                s.accumulate = slot.seeded[in_id] != 0;
                slot.seeded[in_id] = 1;
            }
            slot.sinks.push_back(s);
        }
        n.layer->backwardInto(
            slot.ins, slot.gradAt[id], slot.sinks,
            input_only
                ? skipParamGrads()
                : (param_grads
                       ? slot.pgradPtrs.data() + nodeParamOffset[id]
                       : nullptr));
    }
    if (!slot.gradInputSeeded)
        slot.gradInput.resizeZero(inShape); // loss unreachable from input
    return slot.gradInput;
}

std::size_t
Network::predict(const Tensor &x)
{
    return forward(x).predictedClass();
}

std::vector<Param>
Network::params()
{
    std::vector<Param> out;
    for (auto &n : nodes)
        for (auto p : n.layer->params())
            out.push_back(p);
    return out;
}

void
Network::ensureParamIndex()
{
    if (paramIndexNodes == nodes.size())
        return;
    flatParamCache.clear();
    nodeParamOffset.assign(nodes.size(), 0);
    nodeStateOffset.assign(nodes.size(), 0);
    stateFloats = 0;
    for (std::size_t id = 0; id < nodes.size(); ++id) {
        nodeParamOffset[id] = flatParamCache.size();
        for (auto p : nodes[id].layer->params())
            flatParamCache.push_back(p);
        nodeStateOffset[id] = stateFloats;
        stateFloats += nodes[id].layer->trainStateSize();
    }
    paramIndexNodes = nodes.size();
}

const std::vector<Param> &
Network::flatParams()
{
    ensureParamIndex();
    return flatParamCache;
}

void
Network::allocParamGrads(std::vector<std::vector<float>> &bufs)
{
    ensureParamIndex();
    bufs.resize(flatParamCache.size());
    for (std::size_t i = 0; i < flatParamCache.size(); ++i)
        bufs[i].assign(flatParamCache[i].value->size(), 0.0f);
}

void
Network::zeroGrads()
{
    for (auto p : flatParams())
        if (p.grad)
            std::fill(p.grad->begin(), p.grad->end(), 0.0f);
}

std::size_t
Network::numParams()
{
    std::size_t total = 0;
    for (auto p : flatParams())
        total += p.value->size();
    return total;
}

std::size_t
Network::trainStateSize()
{
    ensureParamIndex();
    return stateFloats;
}

void
Network::collectTrainState(const Record &rec, float *dst)
{
    ensureParamIndex();
    for (std::size_t id = 0; id < nodes.size(); ++id) {
        auto &n = nodes[id];
        if (n.layer->trainStateSize() == 0)
            continue;
        // Thread-safe: collectTrainState is pure and the input views
        // come from the caller's record.
        thread_local std::vector<const Tensor *> ins;
        ins.clear();
        for (int in_id : n.inputs)
            ins.push_back(in_id < 0 ? &rec.input : &rec.outputs[in_id]);
        n.layer->collectTrainState(ins, dst + nodeStateOffset[id]);
    }
}

void
Network::applyTrainState(const float *src)
{
    ensureParamIndex();
    for (std::size_t id = 0; id < nodes.size(); ++id)
        if (nodes[id].layer->trainStateSize() > 0)
            nodes[id].layer->applyTrainState(src + nodeStateOffset[id]);
}

void
Network::prepackForServing() const
{
    for (int id : weightedIds)
        nodes[id].layer->prepackWeights();
}

void
Network::invalidatePackedWeights()
{
    for (int id : weightedIds)
        nodes[id].layer->invalidatePackedWeights();
}

std::string
Network::signature() const
{
    std::ostringstream oss;
    oss << netName << ":" << inShape.c << "x" << inShape.h << "x"
        << inShape.w;
    for (const auto &n : nodes) {
        oss << "|" << layerKindName(n.layer->kind()) << ":"
            << n.layer->name();
        for (int in_id : n.inputs)
            oss << "," << in_id;
        // Parameter/state sizes distinguish same-named architectures
        // that differ only in arity (e.g. a classifier head with a
        // different class count) — without them, weight caches and
        // detector-model files could load onto the wrong network.
        // params()/state() return mutable views so they are non-const;
        // only the sizes are read here.
        auto &layer = const_cast<Layer &>(*n.layer);
        for (auto p : layer.params())
            oss << ";p" << p.value->size();
        for (auto p : layer.state())
            oss << ";s" << p.value->size();
    }
    return oss.str();
}

bool
Network::save(const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    writeString(os, signature());
    std::uint64_t n_bufs = 0;
    for (auto &n : nodes)
        n_bufs += n.layer->params().size() + n.layer->state().size();
    writeU64(os, n_bufs);
    for (auto &n : nodes) {
        for (auto p : n.layer->params())
            writeFloats(os, *p.value);
        for (auto p : n.layer->state())
            writeFloats(os, *p.value);
    }
    return os.good();
}

bool
Network::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::string sig;
    if (!readString(is, sig) || sig != signature())
        return false;
    std::uint64_t n_bufs;
    if (!readU64(is, n_bufs))
        return false;
    invalidatePackedWeights(); // the weights below replace the packed ones
    for (auto &n : nodes) {
        for (auto p : n.layer->params()) {
            std::vector<float> v;
            if (!readFloats(is, v) || v.size() != p.value->size())
                return false;
            *p.value = std::move(v);
        }
        for (auto p : n.layer->state()) {
            std::vector<float> v;
            if (!readFloats(is, v) || v.size() != p.value->size())
                return false;
            *p.value = std::move(v);
        }
    }
    return true;
}

} // namespace ptolemy::nn
