#include "network.hh"

#include <cassert>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/serialize.hh"
#include "util/thread_pool.hh"

namespace ptolemy::nn
{

int
Network::add(std::unique_ptr<Layer> layer, std::vector<int> inputs)
{
    const int id = static_cast<int>(nodes.size());
    if (inputs.empty())
        inputs.push_back(id - 1); // previous node; -1 == network input
    assert(static_cast<int>(inputs.size()) == layer->numInputs());

    std::vector<Shape> in_shapes;
    for (int in_id : inputs) {
        assert(in_id >= -1 && in_id < id); // topological order
        in_shapes.push_back(in_id < 0 ? inShape : nodes[in_id].outShape);
    }
    Node n;
    n.outShape = layer->outputShape(in_shapes);
    if (layer->weighted())
        weightedIds.push_back(id);
    n.layer = std::move(layer);
    n.inputs = std::move(inputs);
    nodes.push_back(std::move(n));
    return id;
}

Shape
Network::nodeInputShape(int id, int input_slot) const
{
    const int in_id = nodes[id].inputs[input_slot];
    return in_id < 0 ? inShape : nodes[in_id].outShape;
}

std::vector<int>
Network::consumersOf(int id) const
{
    std::vector<int> out;
    for (int n = 0; n < numNodes(); ++n)
        for (int in_id : nodes[n].inputs)
            if (in_id == id)
                out.push_back(n);
    return out;
}

Network::Record
Network::forward(const Tensor &x, bool train)
{
    Record rec;
    forwardInto(x, rec, train);
    return rec;
}

void
Network::forwardInto(const Tensor &x, Record &rec, bool train, bool stash)
{
    assert(x.shape() == inShape);
    // Train-mode passes mutate layer state (Norm running stats) no
    // matter what; stash=false only guarantees state-free execution for
    // inference passes.
    assert(stash || !train);
    rec.input = x; // copy-assign reuses the record's buffer
    rec.stashed = stash;
    lastStash = stash;
    rec.outputs.resize(nodes.size());
    for (std::size_t id = 0; id < nodes.size(); ++id) {
        auto &n = nodes[id];
        insScratch.clear();
        for (int in_id : n.inputs)
            insScratch.push_back(in_id < 0 ? &rec.input
                                           : &rec.outputs[in_id]);
        n.layer->forwardInto(insScratch, rec.outputs[id], train, stash);
    }
}

void
Network::forwardBatch(const std::vector<Tensor> &xs, std::vector<Record> &recs,
                      ThreadPool *pool)
{
    recs.resize(xs.size());
    lastStash = false; // batch records carry no backward state
    if (pool && pool->size() > 1 && xs.size() > 1) {
        pool->parallelFor(xs.size(), [&](std::size_t i) {
            // stash=false: no layer-state writes, so concurrent samples
            // through the shared layer objects do not race.
            std::vector<const Tensor *> ins;
            Record &rec = recs[i];
            rec.input = xs[i];
            rec.stashed = false;
            rec.outputs.resize(nodes.size());
            for (std::size_t id = 0; id < nodes.size(); ++id) {
                auto &n = nodes[id];
                ins.clear();
                for (int in_id : n.inputs)
                    ins.push_back(in_id < 0 ? &rec.input
                                            : &rec.outputs[in_id]);
                n.layer->forwardInto(ins, rec.outputs[id], false, false);
            }
        });
        return;
    }
    for (std::size_t i = 0; i < xs.size(); ++i)
        forwardInto(xs[i], recs[i], /*train=*/false, /*stash=*/false);
}

const Tensor &
Network::backward(const Tensor &grad_logits)
{
    // Static to keep the steady state allocation-free; backward passes
    // on one network are not concurrent (layer state is shared anyway).
    thread_local std::vector<std::pair<int, Tensor>> seeds;
    seeds.resize(1);
    seeds[0].first = numNodes() - 1;
    seeds[0].second = grad_logits; // copy-assign reuses the buffer
    return backwardMulti(seeds);
}

const Tensor &
Network::backwardMulti(const std::vector<std::pair<int, Tensor>> &seeds)
{
    if (!lastStash)
        throw std::logic_error(
            "Network::backward after a stash=false forward pass: records "
            "from forwardBatch / inference-only forwardInto carry no "
            "layer backward state");

    // Gradients accumulate at each node's *output* (plus the net input)
    // inside the persistent arena; seeded flags gate every read so
    // stale tensors from the previous pass are never observed.
    arena.gradAt.resize(nodes.size());
    arena.seeded.assign(nodes.size(), 0);
    arena.gradInputSeeded = false;
    for (const auto &[node_id, grad] : seeds) {
        if (!arena.seeded[node_id]) {
            arena.gradAt[node_id] = grad; // copy-assign reuses the buffer
            arena.seeded[node_id] = 1;
        } else {
            arena.gradAt[node_id] += grad;
        }
    }

    for (int id = numNodes() - 1; id >= 0; --id) {
        if (!arena.seeded[id])
            continue; // node does not reach the loss
        auto &n = nodes[id];
        arena.sinks.clear();
        for (int in_id : n.inputs) {
            GradSink s;
            if (in_id < 0) {
                s.grad = &arena.gradInput;
                s.accumulate = arena.gradInputSeeded;
                arena.gradInputSeeded = true;
            } else {
                s.grad = &arena.gradAt[in_id];
                s.accumulate = arena.seeded[in_id] != 0;
                arena.seeded[in_id] = 1;
            }
            arena.sinks.push_back(s);
        }
        n.layer->backwardInto(arena.gradAt[id], arena.sinks);
    }
    if (!arena.gradInputSeeded)
        arena.gradInput.resizeZero(inShape); // loss unreachable from input
    return arena.gradInput;
}

std::size_t
Network::predict(const Tensor &x)
{
    return forward(x).predictedClass();
}

std::vector<Param>
Network::params()
{
    std::vector<Param> out;
    for (auto &n : nodes)
        for (auto p : n.layer->params())
            out.push_back(p);
    return out;
}

void
Network::zeroGrads()
{
    for (auto p : params())
        if (p.grad)
            std::fill(p.grad->begin(), p.grad->end(), 0.0f);
}

std::size_t
Network::numParams()
{
    std::size_t total = 0;
    for (auto p : params())
        total += p.value->size();
    return total;
}

std::string
Network::signature() const
{
    std::ostringstream oss;
    oss << netName << ":" << inShape.c << "x" << inShape.h << "x"
        << inShape.w;
    for (const auto &n : nodes) {
        oss << "|" << layerKindName(n.layer->kind()) << ":"
            << n.layer->name();
        for (int in_id : n.inputs)
            oss << "," << in_id;
    }
    return oss.str();
}

bool
Network::save(const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    writeString(os, signature());
    std::uint64_t n_bufs = 0;
    for (auto &n : nodes)
        n_bufs += n.layer->params().size() + n.layer->state().size();
    writeU64(os, n_bufs);
    for (auto &n : nodes) {
        for (auto p : n.layer->params())
            writeFloats(os, *p.value);
        for (auto p : n.layer->state())
            writeFloats(os, *p.value);
    }
    return os.good();
}

bool
Network::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::string sig;
    if (!readString(is, sig) || sig != signature())
        return false;
    std::uint64_t n_bufs;
    if (!readU64(is, n_bufs))
        return false;
    for (auto &n : nodes) {
        for (auto p : n.layer->params()) {
            std::vector<float> v;
            if (!readFloats(is, v) || v.size() != p.value->size())
                return false;
            *p.value = std::move(v);
        }
        for (auto p : n.layer->state()) {
            std::vector<float> v;
            if (!readFloats(is, v) || v.size() != p.value->size())
                return false;
            *p.value = std::move(v);
        }
    }
    return true;
}

} // namespace ptolemy::nn
