/**
 * @file
 * Layer interface for the NN substrate.
 *
 * Every layer implements forward and backward (the attack suite needs
 * gradients with respect to the input, and training needs gradients with
 * respect to the weights). Weighted layers (conv, linear) additionally
 * expose their per-output partial sums so the Ptolemy path extractor can
 * rank/threshold them exactly as the hardware would (paper Fig. 3).
 *
 * Contract: layers are **stateless across passes**. forwardInto writes
 * no layer state, and backwardInto re-derives everything it needs from
 * the recorded forward tensors the caller passes back in. That is what
 * lets several samples be in flight through one layer object at once —
 * batched inference and data-parallel training both fan out over the
 * shared layer graph. The only mutable per-layer buffers are the
 * parameter gradients, and backwardInto can redirect those to
 * caller-owned clones (one set per training lane) so even gradient
 * accumulation is race-free and deterministic.
 *
 * Train-time state updates (Norm2d's EMA running statistics) are
 * likewise not applied inside forward: they are *deferred* — derived
 * per sample via collectTrainState and folded in later, in a fixed
 * sample order, via applyTrainState — so training results are
 * bit-identical no matter how many threads ran the batch.
 */

#ifndef PTOLEMY_NN_LAYER_HH
#define PTOLEMY_NN_LAYER_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "nn/tensor.hh"

namespace ptolemy::nn
{

/** Layer taxonomy; the compiler and hw model key their costs off this. */
enum class LayerKind
{
    Conv,
    Linear,
    ReLU,
    MaxPool,
    GlobalAvgPool,
    Flatten,
    Add,
    Concat,
    Norm,
    Downsample,
};

/** Human-readable kind name (for dumps and error messages). */
const char *layerKindName(LayerKind k);

/** A mutable view of one parameter (or state buffer) and its gradient. */
struct Param
{
    std::vector<float> *value = nullptr;
    std::vector<float> *grad = nullptr; ///< null for non-trainable state
};

/**
 * One partial-sum term of an output neuron: (input flat index, value).
 * The index is 32-bit on purpose: no layer input comes near 2^32
 * elements, and halving the struct to 8 bytes doubles the density of
 * the extractor's heap-ranking working set — partial-sum construction
 * and ranking is the single hottest extraction loop.
 */
struct PartialSum
{
    std::uint32_t inputIndex;
    float value;
};

/**
 * Destination for one input-slot gradient during backwardInto. The
 * tensor is caller-owned (Network keeps them in a reusable arena), so
 * a warmed-up backward pass performs no heap allocation. When
 * @p accumulate is false the layer resizes the tensor and overwrites
 * it; when true the tensor already holds another consumer's gradient
 * of the same shape and the layer adds element-wise.
 */
struct GradSink
{
    Tensor *grad = nullptr;
    bool accumulate = false;
};

/**
 * Sentinel accepted as backwardInto's @p param_grads: compute no
 * parameter gradients at all. Layers with parameters skip the dW/db
 * arithmetic outright (for conv that also drops the im2col that only
 * feeds dW — roughly half the backward cost); the input gradients they
 * produce are bit-identical to a full backward's. The batched attack
 * engine rides this: attacks consume dLoss/dInput only, and the legacy
 * sample-serial path wasted the parameter-gradient work every
 * iteration. Compare by address; never dereference.
 */
std::vector<float> *const *skipParamGrads();

/**
 * Abstract NN layer.
 */
class Layer
{
  public:
    explicit Layer(std::string layer_name) : layerName(std::move(layer_name))
    {}
    virtual ~Layer() = default;

    Layer(const Layer &) = delete;
    Layer &operator=(const Layer &) = delete;

    const std::string &name() const { return layerName; }
    virtual LayerKind kind() const = 0;

    /** Number of input tensors this layer consumes (1 except Add/Concat). */
    virtual int numInputs() const { return 1; }

    /** Output shape given input shapes (for graph construction checks). */
    virtual Shape outputShape(const std::vector<Shape> &ins) const = 0;

    /**
     * Run the layer, writing the result into @p out (resized as needed;
     * a warmed-up @p out buffer makes the call allocation-free for the
     * overriding layers). Const and state-free: it performs no writes
     * to layer state whatsoever, so concurrent samples through one
     * layer object never race, and a fully `const Network` can serve
     * inference (the immutability guarantee core::DetectorModel is
     * built on).
     *
     * @param ins borrowed input tensors, one per declared input.
     * @param out output tensor, resized to the layer's output shape.
     * @param train true during training. Layers with running statistics
     *        do NOT fold them in here (see collectTrainState); today no
     *        layer's output depends on the flag, but it is kept so
     *        future train-only behaviors (dropout) have a seam.
     */
    virtual void forwardInto(const std::vector<const Tensor *> &ins,
                             Tensor &out, bool train) const = 0;

    /**
     * True when this layer overrides forwardBatchInto with a genuinely
     * batched implementation (one wide SGEMM / one weight stream for
     * the whole sample set). Network::forwardBatchWide consults this
     * per node; layers answering false run per sample.
     */
    virtual bool supportsBatchedForward() const { return false; }

    /**
     * Inference forward over @p S samples at once: ins[s] is sample s's
     * input tensor, outs[s] its caller-owned output. Single-input
     * layers only (numInputs() == 1). Const and state-free like
     * forwardInto.
     *
     * Contract: outs[s] must be bit-identical to what
     * forwardInto({ins[s]}, *outs[s], false) produces, for every s, at
     * any batch size — batching is a throughput lever, never a numerics
     * change. The default implementation just loops forwardInto;
     * batched overrides (Conv2d's wide-im2col SGEMM, Linear's
     * weight-streaming gemv) uphold the contract via the kernel-level
     * bit-identity guarantees in gemm_kernels.hh.
     */
    virtual void forwardBatchInto(std::span<const Tensor *const> ins,
                                  std::span<Tensor *const> outs) const;

    /**
     * Convenience wrapper around forwardInto() that allocates the output.
     * When @p train is set, any deferred train-state update (Norm2d's
     * running statistics) is folded in immediately — the single-sample
     * streaming behavior tests and one-off callers expect. Non-const
     * because of that fold; inference-only callers on a const layer use
     * forwardInto directly.
     */
    Tensor forward(const std::vector<const Tensor *> &ins, bool train);

    /**
     * Back-propagate into caller-owned gradient tensors.
     *
     * @param ins the recorded forward inputs of the pass being
     *        differentiated (a Network passes the Record tensors back
     *        in). Layers re-derive any forward state they need from
     *        these — ReLU masks, pool argmaxes, normalized values —
     *        instead of stashing it, so backward passes for different
     *        samples can run concurrently against one layer object.
     * @param grad_out gradient of the loss w.r.t. this layer's output.
     * @param sinks one destination per declared input, in input order;
     *        see GradSink for the overwrite/accumulate contract.
     * @param param_grads destinations for the parameter gradients, one
     *        per params() entry in the same order, accumulated (+=).
     *        Pass nullptr to accumulate into the layer's own grad
     *        buffers (the serial default); a data-parallel trainer
     *        passes per-lane clones instead; skipParamGrads() elides
     *        the parameter-gradient computation entirely (the attack
     *        engine's input-gradient-only backward).
     */
    virtual void backwardInto(const std::vector<const Tensor *> &ins,
                              const Tensor &grad_out,
                              const std::vector<GradSink> &sinks,
                              std::vector<float> *const *param_grads) = 0;

    /**
     * Allocating convenience wrapper around backwardInto() (tests and
     * one-off callers; hot loops go through Network's gradient arena).
     * Parameter gradients accumulate into the layer's own buffers.
     * @param ins the forward inputs of the pass being differentiated.
     * @return gradient w.r.t. each input, in input order.
     */
    std::vector<Tensor> backward(const std::vector<const Tensor *> &ins,
                                 const Tensor &grad_out);

    /** Trainable parameters (empty by default). */
    virtual std::vector<Param> params() { return {}; }

    /** Non-trainable state saved with the model (e.g. Norm running stats). */
    virtual std::vector<Param> state() { return {}; }

    /**
     * Floats of deferred train-state this layer derives per training
     * sample (0 for layers without running statistics). Norm2d reports
     * 2*C: per-channel mean and variance of the sample.
     */
    virtual std::size_t trainStateSize() const { return 0; }

    /**
     * Derive one training sample's deferred state update from its
     * recorded forward inputs into @p dst (trainStateSize() floats).
     * Pure — writes no layer state — so it can run on any thread.
     */
    virtual void
    collectTrainState(const std::vector<const Tensor *> &ins, float *dst) const
    {
        (void)ins;
        (void)dst;
    }

    /**
     * Fold one sample's deferred update (as produced by
     * collectTrainState) into the layer's running state. Callers invoke
     * this serially, in a fixed sample order, which is what makes
     * data-parallel training bit-identical across thread counts.
     */
    virtual void applyTrainState(const float *src) { (void)src; }

    /**
     * Build this layer's serving-time packed weight cache (see
     * Conv2d/Linear). Const cache-fill into mutable members, called
     * from Network::prepackForServing while the caller still owns the
     * network exclusively (DetectorModel's constructor — before the
     * model is shared with serving threads). Idempotent: when the
     * cache is already fresh this is a pure read, so repeated calls
     * (e.g. a hot-swap building a second model over an already-packed
     * network) never write during serving. Default: no cache, no-op.
     */
    virtual void prepackWeights() const {}

    /**
     * Drop the packed weight cache after a weight mutation (training,
     * load, direct weights() access). Forward falls back to the
     * unpacked path — bit-identical, just slower — until the next
     * prepackWeights().
     */
    virtual void invalidatePackedWeights() {}

    /** True for layers that own weights and define partial sums. */
    virtual bool weighted() const { return false; }

    /**
     * Partial sums of output neuron @p out_index given recorded input
     * @p input: the terms input[i] * w that the MAC array generates.
     * Only meaningful when weighted(). Bias is excluded: it is not
     * attributable to any input neuron (consistent with paper Fig. 3,
     * which ranks input-element contributions only).
     */
    virtual void
    partialSums(const Tensor &input, std::size_t out_index,
                std::vector<PartialSum> &out) const
    {
        (void)input;
        (void)out_index;
        out.clear();
    }

    /** Receptive-field size (partial sums per output neuron), 0 if not
     *  weighted. For conv this is inC*k*k (interior); edges may be less. */
    virtual std::size_t receptiveFieldSize() const { return 0; }

    /**
     * Map important output elements back to important input elements for
     * layers that merely reshape/route values (ReLU, pool, add, concat...).
     * Weighted layers do not use this; the extractor thresholds their
     * partial sums instead.
     *
     * @param ins recorded inputs of the forward pass being analyzed.
     * @param out recorded output of that pass.
     * @param out_idx sorted important output flat indices.
     * @param per_input filled with important input flat indices per input.
     */
    virtual void backmapImportant(
        const std::vector<const Tensor *> &ins, const Tensor &out,
        const std::vector<std::size_t> &out_idx,
        std::vector<std::vector<std::size_t>> &per_input) const;

  private:
    std::string layerName;
};

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_LAYER_HH
