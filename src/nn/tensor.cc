#include "tensor.hh"

#include <algorithm>

namespace ptolemy::nn
{

void
Tensor::fill(float v)
{
    std::fill(buf.begin(), buf.end(), v);
}

Tensor &
Tensor::operator+=(const Tensor &other)
{
    assert(shp == other.shp);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] += other.buf[i];
    return *this;
}

Tensor &
Tensor::operator*=(float s)
{
    for (float &v : buf)
        v *= s;
    return *this;
}

double
Tensor::sumSq() const
{
    double s = 0.0;
    for (float v : buf)
        s += static_cast<double>(v) * v;
    return s;
}

std::size_t
Tensor::argmax() const
{
    return static_cast<std::size_t>(
        std::max_element(buf.begin(), buf.end()) - buf.begin());
}

} // namespace ptolemy::nn
