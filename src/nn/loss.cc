#include "loss.hh"

#include <algorithm>
#include <cmath>

namespace ptolemy::nn
{

std::vector<double>
softmax(const Tensor &logits)
{
    const float mx = *std::max_element(logits.vec().begin(),
                                       logits.vec().end());
    std::vector<double> p(logits.size());
    double denom = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        p[i] = std::exp(static_cast<double>(logits[i]) - mx);
        denom += p[i];
    }
    for (double &v : p)
        v /= denom;
    return p;
}

LossGrad
softmaxCrossEntropy(const Tensor &logits, std::size_t label)
{
    LossGrad lg;
    softmaxCrossEntropyInto(logits, label, lg);
    return lg;
}

void
softmaxCrossEntropyInto(const Tensor &logits, std::size_t label,
                        LossGrad &out)
{
    // Same numerics as softmax(), with the probability scratch living
    // in the caller's LossGrad so a warmed-up loop allocates nothing.
    std::vector<double> &p = out.probs;
    const float mx = *std::max_element(logits.vec().begin(),
                                       logits.vec().end());
    p.resize(logits.size());
    double denom = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        p[i] = std::exp(static_cast<double>(logits[i]) - mx);
        denom += p[i];
    }
    for (double &v : p)
        v /= denom;
    out.loss = -std::log(std::max(p[label], 1e-12));
    out.grad.resize(logits.shape());
    for (std::size_t i = 0; i < logits.size(); ++i)
        out.grad[i] = static_cast<float>(p[i] - (i == label ? 1.0 : 0.0));
}

} // namespace ptolemy::nn
