/**
 * @file
 * Softmax cross-entropy loss and probability helpers.
 */

#ifndef PTOLEMY_NN_LOSS_HH
#define PTOLEMY_NN_LOSS_HH

#include <cstddef>
#include <vector>

#include "nn/tensor.hh"

namespace ptolemy::nn
{

/** Numerically-stable softmax of a flat logits tensor. */
std::vector<double> softmax(const Tensor &logits);

/** Loss value and dLoss/dLogits pair. */
struct LossGrad
{
    double loss = 0.0;
    Tensor grad;
    /** Probability scratch reused across calls; keeping it here (rather
     *  than thread-local) makes the buffer's ownership follow the
     *  caller's slot, so per-slot training loops stay allocation-free
     *  and self-contained. */
    std::vector<double> probs;
};

/**
 * Softmax cross-entropy against an integer label.
 * grad = softmax(logits) - onehot(label).
 */
LossGrad softmaxCrossEntropy(const Tensor &logits, std::size_t label);

/**
 * As softmaxCrossEntropy, but writing into a caller-owned LossGrad
 * (grad buffer reused across calls) so per-sample training and attack
 * loops stay allocation-free in the steady state.
 */
void softmaxCrossEntropyInto(const Tensor &logits, std::size_t label,
                             LossGrad &out);

} // namespace ptolemy::nn

#endif // PTOLEMY_NN_LOSS_HH
