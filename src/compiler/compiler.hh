/**
 * @file
 * The Ptolemy compiler (paper Sec. IV-B).
 *
 * Lowers a high-level detection configuration (direction + per-layer
 * thresholding + selective extraction) into a Ptolemy ISA program, using
 * the profiled extraction trace for the statically-scheduled loop trip
 * counts. Three optimizations, each independently switchable for
 * ablation:
 *
 *  - Layer-level pipelining (forward extraction only): emit inf(j+1)
 *    before the extraction block of layer j so inference and extraction
 *    of adjacent layers overlap (Fig. 7a).
 *  - Neuron-level pipelining: software-pipeline the sort/acum loop with
 *    register rotation so sort(i+1) overlaps acum(i) (Fig. 7b). Without
 *    it the generated loop chains each iteration through the previous
 *    accumulate result, serializing the units.
 *  - Compute-for-memory recompute: replace infsp (store all partial
 *    sums) with plain inf plus csps instructions that re-compute the
 *    partial sums of important receptive fields at extraction time
 *    (Sec. IV-B "Trading-off Compute for Memory").
 */

#ifndef PTOLEMY_COMPILER_COMPILER_HH
#define PTOLEMY_COMPILER_COMPILER_HH

#include "isa/program.hh"
#include "nn/network.hh"
#include "path/extraction_config.hh"
#include "path/trace.hh"

namespace ptolemy::compiler
{

/** Optimization switches. */
struct CompileOptions
{
    bool layerPipelining = true;
    bool neuronPipelining = true;
    bool recomputePsums = true;
    std::size_t classifierOps = 1200; ///< random-forest MCU ops for cls

    /**
     * Micro-batch dimension: compile one program that detects
     * batchSize samples back-to-back the way
     * DetectorSession::detectBatch serves them. Sample 0 runs with
     * cold weights; the remaining samples execute an outer countdown
     * loop whose inference instructions carry zero weight-DMA bytes
     * (the weights are resident, amortized across the micro-batch), so
     * infsp/csps and both pipelining passes amortize too. batchSize=1
     * emits the historical single-sample program byte-for-byte.
     */
    std::size_t batchSize = 1;
};

/** DRAM footprint of the detection data structures for one inference. */
struct DramFootprint
{
    std::size_t psumCount = 0;      ///< psums stored (infsp path)
    std::size_t maskBits = 0;       ///< single-bit masks stored
    std::size_t recomputePsums = 0; ///< psums buffered under csps
};

/**
 * Program generator for one (network, extraction config) pair.
 */
class Compiler
{
  public:
    Compiler(const nn::Network &net, path::ExtractionConfig cfg,
             CompileOptions opts = {});

    /**
     * Compile against the profiled workload @p trace (typically
     * path::averageTraces over a calibration set). The trace must come
     * from the same network and config.
     */
    isa::Program compile(const path::ExtractionTrace &trace) const;

    /** Inference-only program (the normalization baseline). */
    static isa::Program inferenceOnly(const nn::Network &net);

    /** Detection DRAM footprint implied by the config/options. */
    DramFootprint dramFootprint(const path::ExtractionTrace &trace) const;

    const CompileOptions &options() const { return opts; }

  private:
    const nn::Network *net;
    path::ExtractionConfig cfg;
    CompileOptions opts;
};

} // namespace ptolemy::compiler

#endif // PTOLEMY_COMPILER_COMPILER_HH
