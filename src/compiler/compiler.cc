#include "compiler.hh"

#include <algorithm>
#include <cassert>
#include <map>

#include "nn/conv.hh"
#include "nn/linear.hh"

namespace ptolemy::compiler
{

using isa::Instruction;
using isa::InstrMeta;
using isa::Program;

namespace
{

// Register conventions used by generated code:
//   r0/r1  feature-map ping-pong buffers (inference chaining)
//   r2     weight base address
//   r3     loop counter
//   r4     neuron address (findneuron result)
//   r5     layer id
//   r6     receptive-field address (findrf result)
//   r7     receptive-field size (sort length)
//   r8/r9  sorted-sequence buffers (rotated by neuron pipelining)
//   r10    threshold
//   r11    selection result (acum output / extraction cursor)
//   r12    recomputed-psum buffer (csps output)
//   r13    class-path base
//   r14    activation-path base
//   r15    classification result
constexpr int rFmapA = 0, rFmapB = 1, rWeights = 2, rCount = 3,
              rNeuron = 4, rLayer = 5, rRf = 6, rRfSize = 7, rSortA = 8,
              rSortB = 9, rThr = 10, rSel = 11, rPsum = 12, rCPath = 13,
              rAPath = 14, rResult = 15;

std::uint16_t
clampImm(std::size_t v)
{
    return static_cast<std::uint16_t>(std::min<std::size_t>(v, 0xFFFF));
}

constexpr std::size_t kElemBytes = 2;  ///< 16-bit datapath elements
constexpr std::size_t kPsumBytes = 4;  ///< 32-bit accumulator psums

/** Parameter element count of a weighted layer. */
std::size_t
layerParamCount(const nn::Layer &layer)
{
    if (layer.kind() == nn::LayerKind::Conv) {
        const auto &c = static_cast<const nn::Conv2d &>(layer);
        return static_cast<std::size_t>(c.outChannels()) * c.inChannels() *
                   c.kernel() * c.kernel() +
               c.outChannels();
    }
    const auto &l = static_cast<const nn::Linear &>(layer);
    return static_cast<std::size_t>(l.inFeatures()) * l.outFeatures() +
           l.outFeatures();
}

} // namespace

Compiler::Compiler(const nn::Network &net_ref, path::ExtractionConfig config,
                   CompileOptions options)
    : net(&net_ref), cfg(std::move(config)), opts(options)
{
    assert(cfg.numLayers() ==
           static_cast<int>(net_ref.weightedNodes().size()));
}

isa::Program
Compiler::inferenceOnly(const nn::Network &net)
{
    Program prog;
    const auto &weighted = net.weightedNodes();
    for (std::size_t w = 0; w < weighted.size(); ++w) {
        const int id = weighted[w];
        InstrMeta m;
        m.layerNode = id;
        m.macs = path::weightedLayerMacs(net, id);
        m.ifmBytes = net.nodeInputShape(id).numel() * kElemBytes;
        m.wBytes = layerParamCount(net.layerAt(id)) * kElemBytes;
        m.ofmBytes = net.nodeOutputShape(id).numel() * kElemBytes;
        const int r_in = w % 2 == 0 ? rFmapA : rFmapB;
        const int r_out = w % 2 == 0 ? rFmapB : rFmapA;
        prog.append(isa::makeInf(r_in, rWeights, r_out), m);
    }
    prog.append(isa::makeHalt());
    return prog;
}

isa::Program
Compiler::compile(const path::ExtractionTrace &trace) const
{
    // Index the trace by weighted-layer index.
    std::map<int, const path::LayerTrace *> by_layer;
    for (const auto &lt : trace.layers)
        by_layer[lt.weightedIndex] = &lt;

    const auto &weighted = net->weightedNodes();
    const int n_w = static_cast<int>(weighted.size());
    Program prog;

    std::size_t total_path_bits = 0;
    for (const auto &lt : trace.layers)
        total_path_bits += lt.inputFmapSize;

    // Inference instruction for weighted layer w. Loop-body samples of a
    // batch program run with the weights already resident on chip (the
    // first sample paid the DMA), which is exactly the amortization
    // detectBatch gets from sharing one DetectorModel.
    auto emit_inf = [&](int w, bool weights_resident) {
        const int id = weighted[w];
        InstrMeta m;
        m.layerNode = id;
        m.macs = path::weightedLayerMacs(*net, id);
        m.ifmBytes = net->nodeInputShape(id).numel() * kElemBytes;
        m.wBytes = weights_resident
            ? 0
            : layerParamCount(net->layerAt(id)) * kElemBytes;
        m.ofmBytes = net->nodeOutputShape(id).numel() * kElemBytes;

        const auto &lp = cfg.layers[w];
        const int r_in = w % 2 == 0 ? rFmapA : rFmapB;
        const int r_out = w % 2 == 0 ? rFmapB : rFmapA;
        const bool extracted = lp.extract && by_layer.count(w);

        if (extracted && lp.kind == path::ThresholdKind::Cumulative &&
            cfg.direction == path::Direction::Backward &&
            !opts.recomputePsums) {
            // Store every partial sum for later extraction.
            m.psumBytes = m.macs * kPsumBytes;
            prog.append(isa::makeInfSp(r_in, rWeights, r_out, rPsum), m);
            return;
        }
        if (extracted && lp.kind == path::ThresholdKind::Absolute) {
            // Single-bit masks generated in the MAC units during
            // inference (Sec. V-B): per partial sum for backward, per
            // output neuron for forward.
            m.maskBits = cfg.direction == path::Direction::Backward
                ? m.macs
                : net->nodeOutputShape(id).numel();
        }
        prog.append(isa::makeInf(r_in, rWeights, r_out), m);
    };

    // Backward extraction block for layer w.
    auto emit_backward_block = [&](int w) {
        const auto &lt = *by_layer.at(w);
        const auto &lp = cfg.layers[w];
        const std::size_t trips = lt.importantOut;
        if (trips == 0)
            return;
        const std::size_t rf_avg =
            std::max<std::size_t>(1, lt.psumsConsidered / trips);
        const std::size_t accum_avg =
            std::max<std::size_t>(1, lt.importantIn / trips);

        prog.append(isa::makeMov(rLayer, clampImm(w)));
        prog.append(isa::makeMov(rRfSize, clampImm(rf_avg)));

        if (lp.kind == path::ThresholdKind::Absolute) {
            // The masks were generated by the MAC units during inference;
            // extraction only streams the mask bits of the important
            // outputs' receptive fields through the bit-parallel mask
            // unit — no sorting, no per-neuron scalar loop.
            prog.append(isa::makeMov(rCount, clampImm(trips)));
            prog.append(isa::makeFindNeuron(rLayer, rCount, rNeuron));
            prog.append(isa::makeFindRf(rNeuron, rRf));
            InstrMeta gm;
            gm.bits = trips * rf_avg;
            prog.append(isa::makeGenMasks(rRf, rSel), gm);
            InstrMeta path_gm;
            path_gm.bits = lt.importantIn;
            prog.append(isa::makeGenMasks(rSel, rAPath), path_gm);
            return;
        }

        // Cumulative: sort + accumulate per important output.
        prog.append(isa::makeMov(
            rThr, clampImm(static_cast<std::size_t>(lp.theta * 1000))));
        InstrMeta csps_m;
        csps_m.macs = rf_avg;
        InstrMeta sort_m;
        sort_m.seqLen = rf_avg;
        // PR 7 ranked-prefix selection semantics: when the profiled
        // trace recorded the selection shape, the sort unit runs
        // successive argmax sweeps (one per selected element, at most
        // kMaxSelectScanPasses) plus the heap-fallback pops for wide
        // prefixes — not a full bitonic sort of the receptive field.
        // Traces without selection data (hand-built workloads) keep the
        // full-sort cost model.
        if (lt.selectScanPasses > 0) {
            sort_m.selectPasses = std::min<std::size_t>(
                static_cast<std::size_t>(path::kMaxSelectScanPasses),
                std::max<std::size_t>(1, lt.selectScanPasses / trips));
            sort_m.heapPops = lt.heapPops / trips;
        }
        InstrMeta acum_m;
        acum_m.accumLen = accum_avg;
        const int r_src = opts.recomputePsums ? rPsum : rRf;

        // Profitability heuristic: software pipelining pays a prologue /
        // epilogue; below ~16 important neurons per layer the overlap it
        // buys cannot amortize that, so fall back to the naive schedule.
        if (opts.neuronPipelining && trips >= 16) {
            // Fig. 7b: software-pipelined schedule — each acum(i) is
            // placed *after* sort(i+1) with rSortA/rSortB rotation, so
            // the accumulate of one neuron overlaps the sort of the
            // next, and the csps/findrf of iteration i+1 overlap the
            // in-flight sort of iteration i.
            auto emit_front = [&](int r_sort) {
                prog.append(isa::makeFindNeuron(rLayer, rCount, rNeuron));
                prog.append(isa::makeFindRf(rNeuron, rRf));
                if (opts.recomputePsums)
                    prog.append(isa::makeCsps(rNeuron, rLayer, rPsum),
                                csps_m);
                prog.append(isa::makeSort(r_src, rRfSize, r_sort), sort_m);
            };
            emit_front(rSortA); // prologue: sort(1)
            const std::size_t rounds = trips > 1 ? (trips - 1 + 1) / 2 : 0;
            if (rounds > 0) {
                prog.append(isa::makeMov(rCount, clampImm(rounds)));
                const std::uint16_t loop =
                    static_cast<std::uint16_t>(prog.size());
                emit_front(rSortB);                       // sort(i+1)
                prog.append(isa::makeAcum(rSortA, rSel, rThr), acum_m);
                emit_front(rSortA);                       // sort(i+2)
                prog.append(isa::makeAcum(rSortB, rSel, rThr), acum_m);
                prog.append(isa::makeDec(rCount));
                prog.append(isa::makeJne(rCount, loop));
            }
            // Epilogue: drain the last in-flight sort.
            prog.append(isa::makeAcum(rSortA, rSel, rThr), acum_m);
        } else {
            // Naive schedule: the next neuron lookup consumes the
            // previous accumulate's cursor (rSel), serializing
            // iterations — this is the dependency the pipelining pass
            // removes.
            prog.append(isa::makeMov(rCount, clampImm(trips)));
            const std::uint16_t loop =
                static_cast<std::uint16_t>(prog.size());
            prog.append(isa::makeFindNeuron(rLayer, rSel, rNeuron));
            prog.append(isa::makeFindRf(rNeuron, rRf));
            if (opts.recomputePsums)
                prog.append(isa::makeCsps(rNeuron, rLayer, rPsum), csps_m);
            prog.append(isa::makeSort(r_src, rRfSize, rSortA), sort_m);
            prog.append(isa::makeAcum(rSortA, rSel, rThr), acum_m);
            prog.append(isa::makeDec(rCount));
            prog.append(isa::makeJne(rCount, loop));
        }
        InstrMeta path_gm;
        path_gm.bits = lt.importantIn;
        prog.append(isa::makeGenMasks(rSel, rAPath), path_gm);
    };

    // Forward extraction block for layer w: "as soon as layer Li
    // finishes inference we determine the important neurons in its
    // output" (Sec. III-C) — so the block depends on inf(w)'s output
    // register, which is exactly the dependency the layer-pipelining
    // pass hides by dispatching inf(w+1) first (Fig. 7a).
    auto emit_forward_block = [&](int w) {
        const auto &lt = *by_layer.at(w);
        const auto &lp = cfg.layers[w];
        const int r_out = w % 2 == 0 ? rFmapB : rFmapA;
        if (lp.kind == path::ThresholdKind::Absolute) {
            InstrMeta gm;
            gm.bits = lt.inputFmapSize;
            prog.append(isa::makeGenMasks(r_out, rAPath), gm);
            return;
        }
        // Forward cumulative (Fig. 6's last layer).
        prog.append(isa::makeMov(rRfSize, clampImm(lt.inputFmapSize)));
        prog.append(isa::makeMov(
            rThr, clampImm(static_cast<std::size_t>(lp.theta * 1000))));
        InstrMeta sort_m;
        sort_m.seqLen = lt.inputFmapSize;
        InstrMeta acum_m;
        acum_m.accumLen = std::max<std::size_t>(1, lt.importantIn);
        prog.append(isa::makeSort(r_out, rRfSize, rSortA), sort_m);
        prog.append(isa::makeAcum(rSortA, rSel, rThr), acum_m);
        InstrMeta gm;
        gm.bits = lt.importantIn;
        prog.append(isa::makeGenMasks(rSel, rAPath), gm);
    };

    // ---------------------------------------------------------- emit ----
    // Batch programs reuse r15 as the outer per-sample countdown, so
    // their cls writes the selection-cursor register instead; single-
    // sample programs keep the historical result register.
    const int r_batch = rResult;
    const int r_cls_dst = opts.batchSize > 1 ? rSel : rResult;

    // One full detection (inference + extraction + classification).
    auto emit_body = [&](bool weights_resident) {
        if (cfg.direction == path::Direction::Backward) {
            for (int w = 0; w < n_w; ++w)
                emit_inf(w, weights_resident);
            // Barrier: extraction is seeded by the predicted class, so
            // it starts only after the last layer's inference completes.
            const int last_out = (n_w - 1) % 2 == 0 ? rFmapB : rFmapA;
            prog.append(isa::makeMovR(rAPath, last_out));
            for (int w = n_w - 1; w >= 0; --w)
                if (cfg.layers[w].extract && by_layer.count(w))
                    emit_backward_block(w);
        } else {
            if (opts.layerPipelining && n_w > 0) {
                // Fig. 7a: inf(j+1) is emitted before the extraction of
                // layer j, overlapping inference with extraction.
                emit_inf(0, weights_resident);
                for (int w = 0; w + 1 < n_w; ++w) {
                    emit_inf(w + 1, weights_resident);
                    if (cfg.layers[w].extract && by_layer.count(w))
                        emit_forward_block(w);
                }
                if (cfg.layers[n_w - 1].extract && by_layer.count(n_w - 1))
                    emit_forward_block(n_w - 1);
            } else {
                for (int w = 0; w < n_w; ++w) {
                    emit_inf(w, weights_resident);
                    if (cfg.layers[w].extract && by_layer.count(w))
                        emit_forward_block(w);
                }
            }
        }
        InstrMeta cls_m;
        cls_m.bits = total_path_bits;
        cls_m.mcuOps = opts.classifierOps;
        prog.append(isa::makeCls(rCPath, rAPath, r_cls_dst), cls_m);
    };

    // Sample 0 pays the weight DMA; the remaining batchSize-1 samples
    // loop over a weights-resident body (the detectBatch amortization).
    emit_body(/*weights_resident=*/false);
    if (opts.batchSize > 1) {
        prog.append(isa::makeMov(r_batch, clampImm(opts.batchSize - 1)));
        const std::uint16_t loop = static_cast<std::uint16_t>(prog.size());
        emit_body(/*weights_resident=*/true);
        prog.append(isa::makeDec(r_batch));
        prog.append(isa::makeJne(r_batch, loop));
    }
    prog.append(isa::makeHalt());
    return prog;
}

DramFootprint
Compiler::dramFootprint(const path::ExtractionTrace &trace) const
{
    DramFootprint fp;
    for (const auto &lt : trace.layers) {
        const auto &lp = cfg.layers[lt.weightedIndex];
        if (lp.kind == path::ThresholdKind::Absolute) {
            fp.maskBits += cfg.direction == path::Direction::Backward
                ? lt.macs
                : lt.inputFmapSize;
        } else if (cfg.direction == path::Direction::Backward) {
            if (opts.recomputePsums)
                fp.recomputePsums += lt.psumsConsidered;
            else
                fp.psumCount += lt.macs;
        }
    }
    return fp;
}

} // namespace ptolemy::compiler
