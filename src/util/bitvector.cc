#include "bitvector.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "bitvector_kernels.hh"
#include "simd.hh"

namespace ptolemy
{

namespace
{

/**
 * Word count below which the scalar loop wins (kernel setup + the
 * horizontal fold cost more than a handful of std::popcount calls).
 * Dispatch is observationally invisible either way — the kernels
 * compute the same exact integers.
 */
constexpr std::size_t kAvx2MinWords = 8;

inline bool
useAvx2(std::size_t nwords)
{
#ifdef PTOLEMY_HAVE_AVX2
    return nwords >= kAvx2MinWords && simdMode() == SimdMode::Avx2;
#else
    (void)nwords;
    return false;
#endif
}

} // namespace

void
BitVector::reset()
{
    std::fill(words.begin(), words.end(), 0);
}

std::size_t
BitVector::popcount() const
{
#ifdef PTOLEMY_HAVE_AVX2
    if (useAvx2(words.size()))
        return detail::avx2Popcount(words.data(), words.size());
#endif
    std::size_t total = 0;
    for (std::uint64_t w : words)
        total += std::popcount(w);
    return total;
}

namespace
{

/** Mask covering bits [lo, hi) of a single 64-bit word, lo < hi <= 64. */
std::uint64_t
wordMask(std::size_t lo, std::size_t hi)
{
    std::uint64_t m = ~std::uint64_t{0};
    m >>= (64 - (hi - lo));
    return m << lo;
}

} // namespace

std::size_t
BitVector::popcountRange(std::size_t begin, std::size_t end) const
{
    assert(begin <= end && end <= numBits);
    if (begin == end)
        return 0;
    std::size_t first_word = begin >> 6;
    std::size_t last_word = (end - 1) >> 6;
    if (first_word == last_word) {
        return std::popcount(words[first_word] &
                             wordMask(begin & 63, ((end - 1) & 63) + 1));
    }
    std::size_t total =
        std::popcount(words[first_word] & wordMask(begin & 63, 64));
    // Boundary words stay scalar (they need the partial-word masks);
    // the interior full-word span dispatches to the AVX2 kernel.
    const std::size_t mid = last_word - first_word - 1;
#ifdef PTOLEMY_HAVE_AVX2
    if (useAvx2(mid)) {
        total += detail::avx2Popcount(words.data() + first_word + 1, mid);
    } else
#endif
    {
        for (std::size_t w = first_word + 1; w < last_word; ++w)
            total += std::popcount(words[w]);
    }
    total += std::popcount(words[last_word] & wordMask(0, ((end - 1) & 63) + 1));
    return total;
}

BitVector &
BitVector::operator|=(const BitVector &other)
{
    assert(numBits == other.numBits);
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] |= other.words[i];
    return *this;
}

std::size_t
BitVector::orAssignCountNew(const BitVector &other)
{
    assert(numBits == other.numBits);
    std::size_t added = 0;
    for (std::size_t i = 0; i < words.size(); ++i) {
        const std::uint64_t before = words[i];
        const std::uint64_t after = before | other.words[i];
        added += std::popcount(after ^ before);
        words[i] = after;
    }
    return added;
}

BitVector &
BitVector::operator&=(const BitVector &other)
{
    assert(numBits == other.numBits);
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] &= other.words[i];
    return *this;
}

std::size_t
BitVector::andPopcount(const BitVector &other) const
{
    assert(numBits == other.numBits);
#ifdef PTOLEMY_HAVE_AVX2
    if (useAvx2(words.size()))
        return detail::avx2AndPopcount(words.data(), other.words.data(),
                                       words.size());
#endif
    std::size_t total = 0;
    for (std::size_t i = 0; i < words.size(); ++i)
        total += std::popcount(words[i] & other.words[i]);
    return total;
}

std::size_t
BitVector::andPopcountRange(const BitVector &other, std::size_t begin,
                            std::size_t end) const
{
    assert(numBits == other.numBits);
    assert(begin <= end && end <= numBits);
    if (begin == end)
        return 0;
    std::size_t first_word = begin >> 6;
    std::size_t last_word = (end - 1) >> 6;
    auto masked = [&](std::size_t w, std::uint64_t mask) {
        return std::popcount(words[w] & other.words[w] & mask);
    };
    if (first_word == last_word)
        return masked(first_word, wordMask(begin & 63, ((end - 1) & 63) + 1));
    std::size_t total = masked(first_word, wordMask(begin & 63, 64));
    // Partial boundary words scalar, interior full-word span vectorized
    // (the per-class prefix sweeps hand this spans of thousands of
    // words, so the interior dominates).
    const std::size_t mid = last_word - first_word - 1;
#ifdef PTOLEMY_HAVE_AVX2
    if (useAvx2(mid)) {
        total += detail::avx2AndPopcount(words.data() + first_word + 1,
                                         other.words.data() + first_word + 1,
                                         mid);
    } else
#endif
    {
        for (std::size_t w = first_word + 1; w < last_word; ++w)
            total += std::popcount(words[w] & other.words[w]);
    }
    total += masked(last_word, wordMask(0, ((end - 1) & 63) + 1));
    return total;
}

double
BitVector::jaccard(const BitVector &other) const
{
    assert(numBits == other.numBits);
    std::size_t inter = 0, uni = 0;
#ifdef PTOLEMY_HAVE_AVX2
    if (useAvx2(words.size())) {
        detail::avx2AndOrPopcount(words.data(), other.words.data(),
                                  words.size(), inter, uni);
        return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
    }
#endif
    for (std::size_t i = 0; i < words.size(); ++i) {
        inter += std::popcount(words[i] & other.words[i]);
        uni += std::popcount(words[i] | other.words[i]);
    }
    return uni == 0 ? 1.0 : static_cast<double>(inter) / uni;
}

std::string
BitVector::serialize() const
{
    std::string blob;
    std::uint64_t n = numBits;
    blob.append(reinterpret_cast<const char *>(&n), sizeof(n));
    blob.append(reinterpret_cast<const char *>(words.data()),
                words.size() * sizeof(std::uint64_t));
    return blob;
}

bool
BitVector::deserialize(const std::string &blob, BitVector &out)
{
    if (blob.size() < sizeof(std::uint64_t))
        return false;
    std::uint64_t n;
    std::memcpy(&n, blob.data(), sizeof(n));
    std::size_t nwords = (n + 63) / 64;
    if (blob.size() != sizeof(n) + nwords * sizeof(std::uint64_t))
        return false;
    out.numBits = n;
    out.words.resize(nwords);
    std::memcpy(out.words.data(), blob.data() + sizeof(n),
                nwords * sizeof(std::uint64_t));
    return true;
}

} // namespace ptolemy
