/**
 * @file
 * Minimal binary stream serialization used to cache trained models and
 * offline-generated class paths (the paper's "stored offline and reused
 * over time" artifacts, Sec. III-B).
 */

#ifndef PTOLEMY_UTIL_SERIALIZE_HH
#define PTOLEMY_UTIL_SERIALIZE_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace ptolemy
{

/** Write a fixed-width little-endian integer. */
void writeU64(std::ostream &os, std::uint64_t v);
void writeU32(std::ostream &os, std::uint32_t v);

/** Write a double (IEEE-754 bit pattern). */
void writeF64(std::ostream &os, double v);

/** Write a float vector with a length prefix. */
void writeFloats(std::ostream &os, const std::vector<float> &v);

/** Write a length-prefixed string. */
void writeString(std::ostream &os, const std::string &s);

/** Readers return false on EOF/short-read so callers can reject caches.
 *  Length-prefixed readers also bound the prefix (2^26) before any
 *  allocation, so a corrupt length field is rejected instead of being
 *  handed to the allocator. */
bool readU64(std::istream &is, std::uint64_t &v);
bool readU32(std::istream &is, std::uint32_t &v);
bool readF64(std::istream &is, double &v);
bool readFloats(std::istream &is, std::vector<float> &v);
bool readString(std::istream &is, std::string &s);

} // namespace ptolemy

#endif // PTOLEMY_UTIL_SERIALIZE_HH
