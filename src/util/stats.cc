#include "stats.hh"

#include <algorithm>
#include <cmath>

namespace ptolemy
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / xs.size();
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / xs.size());
}

double
minOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    const double rank = (p / 100.0) * (xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - lo;
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
aucScore(const std::vector<double> &scores, const std::vector<int> &labels)
{
    // Rank-sum (Mann-Whitney U) formulation with midrank tie handling.
    // Degenerate inputs — no samples at all, or a single class — carry
    // no ranking information: return the chance level explicitly rather
    // than dividing by a zero class count.
    const std::size_t n = scores.size();
    if (n == 0)
        return 0.5;
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return scores[a] < scores[b];
    });

    std::vector<double> rank(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && scores[order[j + 1]] == scores[order[i]])
            ++j;
        const double mid = 0.5 * (i + j) + 1.0; // 1-based midrank
        for (std::size_t k = i; k <= j; ++k)
            rank[order[k]] = mid;
        i = j + 1;
    }

    double pos_rank_sum = 0.0;
    std::size_t n_pos = 0;
    for (std::size_t k = 0; k < n; ++k) {
        if (labels[k] == 1) {
            pos_rank_sum += rank[k];
            ++n_pos;
        }
    }
    const std::size_t n_neg = n - n_pos;
    if (n_pos == 0 || n_neg == 0)
        return 0.5;
    const double u = pos_rank_sum - n_pos * (n_pos + 1.0) / 2.0;
    return u / (static_cast<double>(n_pos) * n_neg);
}

double
DetectionCounts::tpr() const
{
    const auto denom = truePos + falseNeg;
    return denom == 0 ? 0.0 : static_cast<double>(truePos) / denom;
}

double
DetectionCounts::fpr() const
{
    const auto denom = falsePos + trueNeg;
    return denom == 0 ? 0.0 : static_cast<double>(falsePos) / denom;
}

double
DetectionCounts::accuracy() const
{
    const auto total = truePos + falsePos + trueNeg + falseNeg;
    return total == 0 ? 0.0
                      : static_cast<double>(truePos + trueNeg) / total;
}

DetectionCounts
countsAtThreshold(const std::vector<double> &scores,
                  const std::vector<int> &labels, double threshold)
{
    DetectionCounts c;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        const bool predicted_adv = scores[i] >= threshold;
        if (labels[i] == 1) {
            if (predicted_adv)
                ++c.truePos;
            else
                ++c.falseNeg;
        } else {
            if (predicted_adv)
                ++c.falsePos;
            else
                ++c.trueNeg;
        }
    }
    return c;
}

} // namespace ptolemy
