/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in the reproduction (dataset synthesis, weight init, attack
 * noise, forest bagging) draws from this generator so that every test,
 * example and bench is bit-reproducible across runs.
 */

#ifndef PTOLEMY_UTIL_RNG_HH
#define PTOLEMY_UTIL_RNG_HH

#include <cassert>
#include <cstdint>
#include <cmath>

namespace ptolemy
{

/**
 * xoshiro256** generator seeded through SplitMix64.
 *
 * Chosen over std::mt19937 because its stream is specified independently of
 * the standard library implementation, keeping results identical across
 * toolchains.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-seed the full 256-bit state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state)
            word = splitmix64(seed);
        hasGauss = false;
    }

    /** Next raw 64-bit output. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /**
     * Uniform integer in [0, n). @p n must be positive: n == 0 is
     * modulo-by-zero UB, so callers iterating a container (Fisher-Yates
     * shuffles, bagging draws) must guard the empty case — the debug
     * assert makes violations fail loudly instead of silently.
     */
    std::uint64_t
    below(std::uint64_t n)
    {
        assert(n > 0 && "Rng::below(0) is undefined");
        return next() % n;
    }

    /** Standard normal via Box-Muller (cached pair). */
    double
    gaussian()
    {
        if (hasGauss) {
            hasGauss = false;
            return cachedGauss;
        }
        double u1 = 0.0;
        while (u1 <= 1e-12)
            u1 = uniform();
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        cachedGauss = r * std::sin(theta);
        hasGauss = true;
        return r * std::cos(theta);
    }

    /** Gaussian with explicit mean/stddev. */
    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

    /** True with probability @p p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t state[4] = {};
    bool hasGauss = false;
    double cachedGauss = 0.0;
};

} // namespace ptolemy

#endif // PTOLEMY_UTIL_RNG_HH
