/**
 * @file
 * AVX2 popcount kernels for BitVector (the only util TU compiled with
 * -mavx2). Muła's vpshufb nibble-LUT popcount: each 256-bit load splits
 * bytes into nibbles, looks their popcounts up in a 16-entry in-register
 * table, and _mm256_sad_epu8 folds the byte counts into four 64-bit
 * lanes accumulated across the loop. Counts are exact integers, so the
 * kernels are bit-identical to the scalar std::popcount loops.
 */

#include "bitvector_kernels.hh"

#ifdef PTOLEMY_HAVE_AVX2

#include <immintrin.h>

#include <bit>

namespace ptolemy::detail
{

namespace
{

/** Per-64-bit-lane byte popcount of @p v (Muła nibble LUT + SAD). */
inline __m256i
popcount256(__m256i v)
{
    const __m256i lut =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                         0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

/** Horizontal sum of the four 64-bit lanes of @p acc. */
inline std::size_t
hsum64(__m256i acc)
{
    const __m128i lo = _mm256_castsi256_si128(acc);
    const __m128i hi = _mm256_extracti128_si256(acc, 1);
    const __m128i s = _mm_add_epi64(lo, hi);
    return static_cast<std::size_t>(_mm_cvtsi128_si64(s)) +
           static_cast<std::size_t>(
               _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

} // namespace

std::size_t
avx2Popcount(const std::uint64_t *w, std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(w + i));
        acc = _mm256_add_epi64(acc, popcount256(v));
    }
    std::size_t total = hsum64(acc);
    for (; i < n; ++i)
        total += std::popcount(w[i]);
    return total;
}

std::size_t
avx2AndPopcount(const std::uint64_t *a, const std::uint64_t *b, std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + i));
        acc = _mm256_add_epi64(acc, popcount256(_mm256_and_si256(va, vb)));
    }
    std::size_t total = hsum64(acc);
    for (; i < n; ++i)
        total += std::popcount(a[i] & b[i]);
    return total;
}

void
avx2AndOrPopcount(const std::uint64_t *a, const std::uint64_t *b,
                  std::size_t n, std::size_t &inter, std::size_t &uni)
{
    __m256i acc_and = _mm256_setzero_si256();
    __m256i acc_or = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + i));
        acc_and =
            _mm256_add_epi64(acc_and, popcount256(_mm256_and_si256(va, vb)));
        acc_or =
            _mm256_add_epi64(acc_or, popcount256(_mm256_or_si256(va, vb)));
    }
    std::size_t s_inter = hsum64(acc_and);
    std::size_t s_uni = hsum64(acc_or);
    for (; i < n; ++i) {
        s_inter += std::popcount(a[i] & b[i]);
        s_uni += std::popcount(a[i] | b[i]);
    }
    inter = s_inter;
    uni = s_uni;
}

} // namespace ptolemy::detail

#endif // PTOLEMY_HAVE_AVX2
