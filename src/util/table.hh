/**
 * @file
 * Plain-text table printer used by the bench harnesses to print the rows
 * and series that match the paper's tables and figures.
 */

#ifndef PTOLEMY_UTIL_TABLE_HH
#define PTOLEMY_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace ptolemy
{

/**
 * Column-aligned table with a title, a header row and string cells.
 *
 * Numeric formatting is the caller's job (see fmt() helpers below) so that
 * each bench can match the precision the paper reports.
 */
class Table
{
  public:
    explicit Table(std::string title) : tableTitle(std::move(title)) {}

    /** Set the header row; defines the column count. */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header width. */
    void row(std::vector<std::string> cells);

    /** Render with box-drawing separators to @p os. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values (header + rows). */
    void printCsv(std::ostream &os) const;

  private:
    std::string tableTitle;
    std::vector<std::string> headerCells;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with @p digits decimal places. */
std::string fmt(double value, int digits = 3);

/** Format a ratio like the paper's overheads, e.g. "12.3x". */
std::string fmtX(double value, int digits = 1);

/** Format a percentage, e.g. "5.2%". */
std::string fmtPct(double fraction, int digits = 1);

} // namespace ptolemy

#endif // PTOLEMY_UTIL_TABLE_HH
