/**
 * @file
 * Minimal persistent thread pool for data-parallel loops.
 *
 * One process-wide pool (globalPool()) is shared by every parallel
 * section in the library: batched forward passes, tile-parallel SGEMM,
 * batched path extraction and the data-parallel trainer's per-batch
 * sample fan-out all share the same workers, so the process never
 * oversubscribes the machine. Sections that need deterministic
 * accumulation (the trainer's gradient lanes) key their accumulators
 * to loop indices, never to the executing slot — parallelForWithTid's
 * slot ids are a scratch-indexing facility, not a stable partition. parallelFor hands out
 * indices through an atomic counter so uneven per-item costs
 * self-balance, and the calling thread participates. On a single core
 * the pool degenerates to a plain serial loop with no threads.
 *
 * Nested parallel sections are safe by construction: a parallelFor
 * issued from inside a pool worker, or while another parallelFor is
 * already in flight on the same pool, runs inline on the calling
 * thread. This is what lets the tile-parallel SGEMM live inside
 * Network::forwardBatch's sample-parallel loop without deadlocking on
 * the pool's single job slot.
 *
 * A throwing loop body no longer std::terminates the process: every
 * index is still attempted, the exception from the lowest task index
 * is captured, and exactly that one is rethrown on the calling thread
 * once the loop has drained — deterministic at any thread count (see
 * parallelForWithTid). This is what lets a serving tier above the pool
 * turn a poisoned request into a typed per-request error instead of a
 * process crash.
 */

#ifndef PTOLEMY_UTIL_THREAD_POOL_HH
#define PTOLEMY_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/tuning.hh"

namespace ptolemy
{

namespace detail
{
/** True on threads that are pool workers (any pool). */
inline bool &
onPoolWorkerFlag()
{
    thread_local bool flag = false;
    return flag;
}

/** Slot id the current thread runs loop bodies under (0 on non-workers). */
inline unsigned &
currentTidRef()
{
    thread_local unsigned tid = 0;
    return tid;
}
} // namespace detail

/**
 * Fixed-size pool executing index-parallel loops.
 */
class ThreadPool
{
  public:
    /** @param n_threads total worker count; 0 = hardware concurrency. */
    explicit ThreadPool(unsigned n_threads = 0)
    {
        unsigned n =
            n_threads ? n_threads : std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
        for (unsigned i = 0; i + 1 < n; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            stopping = true;
            ++generation;
        }
        cv.notify_all();
        for (auto &t : workers)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads participating in a loop (workers + caller). */
    unsigned size() const
    {
        return static_cast<unsigned>(workers.size()) + 1;
    }

    /**
     * Run fn(0..n) across the pool; returns when every index finished.
     * @p fn must be safe to call concurrently for distinct indices.
     * Runs inline when issued from a pool worker or while the pool is
     * already mid-loop (nested parallel sections never deadlock or
     * stack threads). Type erasure is a function-pointer trampoline
     * over the caller's stack frame — never a std::function — so even
     * capture-heavy loop bodies dispatch without heap allocation.
     */
    template <typename Fn>
    void
    parallelFor(std::size_t n, const Fn &fn)
    {
        parallelForWithTid(n,
                           [&fn](std::size_t i, unsigned) { fn(i); });
    }

    /**
     * Like parallelFor, but @p fn additionally receives the slot id of
     * the executing thread, a value in [0, size()). Within one call,
     * concurrently-executing invocations of @p fn always carry
     * distinct slot ids (slot 0 is the calling thread), so scratch
     * indexed by slot and owned by that call — one workspace per slot
     * — is race-free. Slot ids are NOT distinct across simultaneous
     * calls from different external threads (the loser of the busy
     * check runs inline under its own slot, typically 0): scratch
     * shared between concurrent calls must be synchronized by the
     * caller like any other shared state.
     *
     * Exception contract: a throwing task never terminates the
     * process. Every index is still attempted (workers keep draining
     * the index counter; cancelling mid-loop would make the executed
     * set scheduling-dependent), the exception thrown by the LOWEST
     * task index is captured, and that one exception is rethrown on
     * the calling thread after the loop completes — deterministically,
     * at any thread count, including the serial/nested inline paths.
     * Exceptions from higher-indexed tasks are discarded. The pool
     * stays fully usable after a rethrow.
     */
    template <typename Fn>
    void
    parallelForWithTid(std::size_t n, const Fn &fn)
    {
        if (n == 0)
            return;
        const bool nested = detail::onPoolWorkerFlag();
        if (workers.empty() || n == 1 || nested ||
            inFlight.exchange(true, std::memory_order_acquire)) {
            // Serial / nested / pool-busy: run inline on this thread,
            // under the slot id this thread already owns (its worker
            // slot inside a nested section, 0 otherwise), so nested
            // sections never alias another thread's slot scratch.
            // Mirrors the pooled exception contract: run every index,
            // rethrow the lowest-indexed exception at the end.
            const unsigned tid = detail::currentTidRef();
            std::exception_ptr ex;
            for (std::size_t i = 0; i < n; ++i) {
                try {
                    fn(i, tid);
                } catch (...) {
                    if (!ex) // ascending i: first caught = lowest index
                        ex = std::current_exception();
                }
            }
            if (ex)
                std::rethrow_exception(ex);
            return;
        }
        {
            std::lock_guard<std::mutex> lk(mu);
            jobFn = &trampoline<Fn>;
            jobCtx = const_cast<void *>(static_cast<const void *>(&fn));
            jobSize = n;
            nextIndex.store(0, std::memory_order_relaxed);
            firstEx = nullptr;
            firstExIdx = 0;
            active = static_cast<unsigned>(workers.size());
            ++generation;
        }
        cv.notify_all();
        runIndices(jobFn, jobCtx, n, 0);
        std::exception_ptr ex;
        {
            std::unique_lock<std::mutex> lk(mu);
            doneCv.wait(lk, [this] { return active == 0; });
            jobFn = nullptr;
            ex = firstEx;
            firstEx = nullptr;
        }
        inFlight.store(false, std::memory_order_release);
        if (ex)
            std::rethrow_exception(ex);
    }

  private:
    using JobFn = void (*)(void *ctx, std::size_t i, unsigned tid);

    template <typename Fn>
    static void
    trampoline(void *ctx, std::size_t i, unsigned tid)
    {
        (*static_cast<const Fn *>(ctx))(i, tid);
    }

    /** Record a task exception; the lowest task index wins so the
     *  winner is independent of worker scheduling. */
    void
    recordException(std::size_t i)
    {
        std::lock_guard<std::mutex> lk(mu);
        if (!firstEx || i < firstExIdx) {
            firstEx = std::current_exception();
            firstExIdx = i;
        }
    }

    void
    runIndices(JobFn fn, void *ctx, std::size_t n, unsigned tid)
    {
        for (;;) {
            const std::size_t i =
                nextIndex.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                fn(ctx, i, tid);
            } catch (...) {
                recordException(i);
            }
        }
    }

    void
    workerLoop()
    {
        detail::onPoolWorkerFlag() = true;
        const unsigned tid = workerTid.fetch_add(1) + 1; // slot 0 = caller
        detail::currentTidRef() = tid;
        std::uint64_t seen = 0;
        for (;;) {
            JobFn fn;
            void *ctx;
            std::size_t n;
            {
                std::unique_lock<std::mutex> lk(mu);
                cv.wait(lk,
                        [&] { return stopping || generation != seen; });
                seen = generation;
                if (stopping)
                    return;
                fn = jobFn;
                ctx = jobCtx;
                n = jobSize;
            }
            if (fn)
                runIndices(fn, ctx, n, tid);
            {
                std::lock_guard<std::mutex> lk(mu);
                if (--active == 0)
                    doneCv.notify_one();
            }
        }
    }

    std::vector<std::thread> workers;
    std::mutex mu;
    std::condition_variable cv, doneCv;
    JobFn jobFn = nullptr;
    void *jobCtx = nullptr;
    std::size_t jobSize = 0;
    std::atomic<std::size_t> nextIndex{0};
    std::atomic<unsigned> workerTid{0};
    std::atomic<bool> inFlight{false};
    std::exception_ptr firstEx;  ///< lowest-index task exception (under mu)
    std::size_t firstExIdx = 0;
    unsigned active = 0;
    std::uint64_t generation = 0;
    bool stopping = false;
};

/**
 * The process-wide pool every library-internal parallel section uses.
 * Sized from PTOLEMY_NUM_THREADS when set (1 forces fully serial
 * execution), hardware concurrency otherwise. Constructed on first use;
 * workers idle on a condition variable between loops.
 */
inline ThreadPool &
globalPool()
{
    static ThreadPool pool([] {
        // Honor a bench_sweep picks file before the first env read
        // (explicit environment still wins; see util/tuning.hh).
        ensureTuningApplied();
        if (const char *s = std::getenv("PTOLEMY_NUM_THREADS")) {
            const long n = std::strtol(s, nullptr, 10);
            if (n > 0)
                return static_cast<unsigned>(n);
        }
        return 0u; // hardware concurrency
    }());
    return pool;
}

} // namespace ptolemy

#endif // PTOLEMY_UTIL_THREAD_POOL_HH
