/**
 * @file
 * Minimal persistent thread pool for data-parallel loops.
 *
 * Network::forwardBatch uses it to spread independent samples across
 * cores: the pool owns hardware_concurrency - 1 workers (the calling
 * thread participates), and parallelFor hands out indices through an
 * atomic counter so uneven per-sample costs self-balance. On a single
 * core the pool degenerates to a plain serial loop with no threads.
 */

#ifndef PTOLEMY_UTIL_THREAD_POOL_HH
#define PTOLEMY_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ptolemy
{

/**
 * Fixed-size pool executing index-parallel loops.
 */
class ThreadPool
{
  public:
    /** @param n_threads total worker count; 0 = hardware concurrency. */
    explicit ThreadPool(unsigned n_threads = 0)
    {
        unsigned n =
            n_threads ? n_threads : std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
        for (unsigned i = 0; i + 1 < n; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lk(mu);
            stopping = true;
            ++generation;
        }
        cv.notify_all();
        for (auto &t : workers)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total threads participating in a loop (workers + caller). */
    unsigned size() const
    {
        return static_cast<unsigned>(workers.size()) + 1;
    }

    /**
     * Run fn(0..n) across the pool; returns when every index finished.
     * @p fn must be safe to call concurrently for distinct indices.
     */
    void
    parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        if (n == 0)
            return;
        if (workers.empty() || n == 1) {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        {
            std::lock_guard<std::mutex> lk(mu);
            job = &fn;
            jobSize = n;
            nextIndex.store(0, std::memory_order_relaxed);
            active = static_cast<unsigned>(workers.size());
            ++generation;
        }
        cv.notify_all();
        runIndices(fn, n);
        std::unique_lock<std::mutex> lk(mu);
        doneCv.wait(lk, [this] { return active == 0; });
        job = nullptr;
    }

  private:
    void
    runIndices(const std::function<void(std::size_t)> &fn, std::size_t n)
    {
        for (;;) {
            const std::size_t i =
                nextIndex.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            fn(i);
        }
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(std::size_t)> *fn;
            std::size_t n;
            {
                std::unique_lock<std::mutex> lk(mu);
                cv.wait(lk,
                        [&] { return stopping || generation != seen; });
                seen = generation;
                if (stopping)
                    return;
                fn = job;
                n = jobSize;
            }
            if (fn)
                runIndices(*fn, n);
            {
                std::lock_guard<std::mutex> lk(mu);
                if (--active == 0)
                    doneCv.notify_one();
            }
        }
    }

    std::vector<std::thread> workers;
    std::mutex mu;
    std::condition_variable cv, doneCv;
    const std::function<void(std::size_t)> *job = nullptr;
    std::size_t jobSize = 0;
    std::atomic<std::size_t> nextIndex{0};
    unsigned active = 0;
    std::uint64_t generation = 0;
    bool stopping = false;
};

} // namespace ptolemy

#endif // PTOLEMY_UTIL_THREAD_POOL_HH
