/**
 * @file
 * Startup consumption of bench_sweep picked-defaults JSON.
 *
 * `tools/bench_sweep.py` sweeps the knob grid and writes the winning
 * configuration to a picks JSON (`picked_env`: knob name → value).
 * Pointing PTOLEMY_TUNING_FILE at that file applies the picked knobs
 * process-wide at startup — closing the loop so a sweep run on the
 * deployment host actually configures the binary, instead of sitting
 * in a report nobody reads back.
 *
 * Precedence: explicitly-set environment variables ALWAYS win. The
 * loader only fills in knobs that are unset (setenv with overwrite=0),
 * so `PTOLEMY_SIMD=scalar ./detect` still forces scalar even when the
 * tuning file picked AVX2. Only the known knob names are applied
 * (PTOLEMY_NUM_THREADS, PTOLEMY_SIMD, PTOLEMY_WIDE_BATCH,
 * PTOLEMY_WIDE_CHUNK, PTOLEMY_PREPACK) — a tuning file cannot inject
 * arbitrary environment.
 *
 * Mechanism: every lazy env-reading static in the tree (globalPool's
 * thread count, simdMode, prepackEnabled, the session's wide-batch
 * defaults) calls ensureTuningApplied() before its first getenv, so
 * the file is honored no matter which knob is read first. The load
 * happens exactly once (std::once_flag) and uses setenv(), which is
 * only safe before other threads are spawned — which holds here
 * because the first of those statics to initialize is what creates
 * the pool.
 */

#ifndef PTOLEMY_UTIL_TUNING_HH
#define PTOLEMY_UTIL_TUNING_HH

namespace ptolemy
{

/**
 * Apply PTOLEMY_TUNING_FILE (if set) exactly once, process-wide.
 * Unset, unreadable or malformed files are diagnosed to stderr and
 * otherwise ignored — a bad tuning file must never take serving down.
 * Idempotent and cheap after the first call.
 */
void ensureTuningApplied();

/**
 * Apply the picks file at @p path immediately (the worker behind
 * ensureTuningApplied; callable directly by tests and tools). Returns
 * the number of knobs actually applied — unknown knob names are
 * skipped (a tuning file cannot inject arbitrary environment) and so
 * are knobs already pinned by explicit environment.
 */
unsigned applyTuningFile(const char *path);

/** Knobs applied by the last (only) load — 0 when no file was set,
 *  the file was unreadable, or every picked knob was already pinned by
 *  explicit environment. Introspection for tests and startup logs. */
unsigned tuningKnobsApplied();

} // namespace ptolemy

#endif // PTOLEMY_UTIL_TUNING_HH
