/**
 * @file
 * Internal AVX2 word-kernel interface for BitVector, shared between the
 * dispatch TU (bitvector.cc) and the AVX2 TU (bitvector_avx2.cc).
 *
 * Mirrors the nn/gemm_kernels.hh arrangement: only bitvector_avx2.cc is
 * compiled with -mavx2, the dispatch TU merely learns the symbols exist
 * via PTOLEMY_HAVE_AVX2. All kernels compute exact integer popcounts
 * over full 64-bit words, so they are trivially bit-identical to the
 * scalar std::popcount loops they replace — dispatch never changes an
 * observable result, only throughput.
 */

#ifndef PTOLEMY_UTIL_BITVECTOR_KERNELS_HH
#define PTOLEMY_UTIL_BITVECTOR_KERNELS_HH

#include <cstddef>
#include <cstdint>

namespace ptolemy::detail
{

#ifdef PTOLEMY_HAVE_AVX2

/**
 * Population count of @p n 64-bit words starting at @p w (no alignment
 * requirement). Muła nibble-LUT (vpshufb) popcount, 4 words per
 * iteration, scalar std::popcount tail.
 */
std::size_t avx2Popcount(const std::uint64_t *w, std::size_t n);

/** Popcount of (a[i] & b[i]) over @p n words — set-intersection size. */
std::size_t avx2AndPopcount(const std::uint64_t *a, const std::uint64_t *b,
                            std::size_t n);

/**
 * Fused intersection and union popcounts over @p n words, one pass over
 * both operands (the Jaccard numerator and denominator).
 */
void avx2AndOrPopcount(const std::uint64_t *a, const std::uint64_t *b,
                       std::size_t n, std::size_t &inter, std::size_t &uni);

#endif // PTOLEMY_HAVE_AVX2

} // namespace ptolemy::detail

#endif // PTOLEMY_UTIL_BITVECTOR_KERNELS_HH
