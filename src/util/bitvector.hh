/**
 * @file
 * Dense bit vector used to represent activation paths and class paths.
 *
 * A path is a bitmask where bit (layer i, position j) records whether the
 * input-feature-map element j of layer i is an important neuron
 * (paper Sec. III-A, "From Neurons to Paths"). Class paths are the bitwise
 * OR of many activation paths, and the detection similarity is
 * popcount(P & Pc) / popcount(P), so the hot operations here are
 * word-parallel AND/OR and popcount.
 */

#ifndef PTOLEMY_UTIL_BITVECTOR_HH
#define PTOLEMY_UTIL_BITVECTOR_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ptolemy
{

/**
 * Fixed-size dense bit vector with word-parallel set operations.
 */
class BitVector
{
  public:
    BitVector() = default;

    /** Construct an all-zero vector with @p nbits bits. */
    explicit BitVector(std::size_t nbits)
        : numBits(nbits), words((nbits + 63) / 64, 0)
    {}

    /** Number of addressable bits. */
    std::size_t size() const { return numBits; }

    /** True when the vector holds zero bits. */
    bool empty() const { return numBits == 0; }

    /** Set bit @p idx to 1. Out-of-range indices are a programming error. */
    void
    set(std::size_t idx)
    {
        words[idx >> 6] |= (std::uint64_t{1} << (idx & 63));
    }

    /** Clear bit @p idx. */
    void
    clear(std::size_t idx)
    {
        words[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }

    /** Read bit @p idx. */
    bool
    test(std::size_t idx) const
    {
        return (words[idx >> 6] >> (idx & 63)) & 1;
    }

    /** Set all bits to zero, keeping the size. */
    void reset();

    /** Number of set bits (the paper's ‖P‖₁). */
    std::size_t popcount() const;

    /** Number of set bits within the half-open bit range [begin, end). */
    std::size_t popcountRange(std::size_t begin, std::size_t end) const;

    /** In-place bitwise OR (class-path aggregation). Sizes must match. */
    BitVector &operator|=(const BitVector &other);

    /**
     * In-place bitwise OR that also counts the newly set bits, in a
     * single fused pass over the words (class-path aggregation tracks
     * saturation via this delta; doing it with two full popcounts costs
     * three word sweeps instead of one).
     * @return number of bits that were 0 before and are 1 after.
     */
    std::size_t orAssignCountNew(const BitVector &other);

    /** In-place bitwise AND. Sizes must match. */
    BitVector &operator&=(const BitVector &other);

    /** popcount(this & other) without materializing the intersection. */
    std::size_t andPopcount(const BitVector &other) const;

    /** popcount(this & other) restricted to the bit range [begin, end). */
    std::size_t andPopcountRange(const BitVector &other, std::size_t begin,
                                 std::size_t end) const;

    /**
     * Jaccard-style similarity used for the paper's Fig. 5 class-path
     * similarity matrices: |A ∧ B| / |A ∨ B|.
     */
    double jaccard(const BitVector &other) const;

    bool operator==(const BitVector &other) const = default;

    /** Raw 64-bit words, little-endian bit order within a word. */
    const std::vector<std::uint64_t> &rawWords() const { return words; }

    /** Serialize to a compact binary string (size + words). */
    std::string serialize() const;

    /** Inverse of serialize(). Returns false on malformed input. */
    static bool deserialize(const std::string &blob, BitVector &out);

  private:
    std::size_t numBits = 0;
    std::vector<std::uint64_t> words;
};

} // namespace ptolemy

#endif // PTOLEMY_UTIL_BITVECTOR_HH
