#include "serialize.hh"

#include <cstring>

namespace ptolemy
{

void
writeU64(std::ostream &os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeF64(std::ostream &os, double v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeFloats(std::ostream &os, const std::vector<float> &v)
{
    writeU64(os, v.size());
    os.write(reinterpret_cast<const char *>(v.data()),
             v.size() * sizeof(float));
}

void
writeString(std::ostream &os, const std::string &s)
{
    writeU64(os, s.size());
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool
readU64(std::istream &is, std::uint64_t &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return is.good();
}

bool
readU32(std::istream &is, std::uint32_t &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return is.good();
}

bool
readF64(std::istream &is, double &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    return is.good();
}

namespace
{
// Upper bound on any length prefix this codebase writes (the largest
// real payload is a network's conv weight vector, well under 2^26
// elements). A corrupt length field — e.g. a flipped high byte turning
// 19 into 2^56 — must be rejected before resize(), never handed to the
// allocator: under AddressSanitizer an absurd allocation is a hard
// error, and even without it the stream would fault or OOM.
constexpr std::uint64_t kMaxLenPrefix = 1ull << 26;
} // namespace

bool
readFloats(std::istream &is, std::vector<float> &v)
{
    std::uint64_t n;
    if (!readU64(is, n) || n > kMaxLenPrefix)
        return false;
    v.resize(n);
    is.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    return is.good() || (is.eof() && is.gcount() ==
        static_cast<std::streamsize>(n * sizeof(float)));
}

bool
readString(std::istream &is, std::string &s)
{
    std::uint64_t n;
    if (!readU64(is, n) || n > kMaxLenPrefix)
        return false;
    s.resize(n);
    is.read(s.data(), static_cast<std::streamsize>(n));
    return is.good() || (is.eof() && is.gcount() ==
        static_cast<std::streamsize>(n));
}

} // namespace ptolemy
