#include "simd.hh"

#include <cstdlib>
#include <string>

#include "util/tuning.hh"

namespace ptolemy
{

SimdMode &
simdMode()
{
    static SimdMode mode = [] {
        ensureTuningApplied();
        if (const char *s = std::getenv("PTOLEMY_SIMD")) {
            if (std::string(s) == "scalar")
                return SimdMode::Scalar;
        }
        return avx2Available() ? SimdMode::Avx2 : SimdMode::Scalar;
    }();
    return mode;
}

const char *
simdModeName()
{
    return simdMode() == SimdMode::Avx2 ? "avx2" : "scalar";
}

bool
avx2Available()
{
#ifdef PTOLEMY_HAVE_AVX2
    // The cpuid probe needs no -mavx2 flag, so it can live in this
    // plain TU; only the kernels themselves need the ISA flags.
#if defined(__GNUC__) || defined(__clang__)
    static const bool ok =
        __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    return ok;
#else
    return false;
#endif
#else
    return false;
#endif
}

} // namespace ptolemy
