#include "table.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace ptolemy
{

void
Table::header(std::vector<std::string> cells)
{
    headerCells = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    assert(cells.size() == headerCells.size());
    rows.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headerCells.size(), 0);
    for (std::size_t c = 0; c < headerCells.size(); ++c)
        width[c] = headerCells[c].size();
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << " " << cells[c];
            for (std::size_t pad = cells[c].size(); pad < width[c]; ++pad)
                os << ' ';
            os << " |";
        }
        os << "\n";
    };
    auto print_sep = [&]() {
        os << "+";
        for (std::size_t c = 0; c < width.size(); ++c) {
            for (std::size_t pad = 0; pad < width[c] + 2; ++pad)
                os << '-';
            os << "+";
        }
        os << "\n";
    };

    os << "== " << tableTitle << " ==\n";
    print_sep();
    print_row(headerCells);
    print_sep();
    for (const auto &r : rows)
        print_row(r);
    print_sep();
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << cells[c];
        }
        os << "\n";
    };
    emit(headerCells);
    for (const auto &r : rows)
        emit(r);
}

std::string
fmt(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
fmtX(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", digits, value);
    return buf;
}

std::string
fmtPct(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

} // namespace ptolemy
