/**
 * @file
 * 64-byte-aligned allocation helper.
 *
 * The AVX2 microkernels read packed weight panels and im2col scratch
 * with 256-bit loads; allocating those buffers on cache-line
 * boundaries keeps every vector load within one line (unaligned
 * std::vector storage makes roughly half of them line-splitting).
 * AlignedVector is a drop-in std::vector with that guarantee; the
 * packed-panel layouts additionally align every interior block start
 * (see gemm_kernels.hh), and the AVX2 kernels debug-assert the
 * resulting pointers via isAligned().
 */

#ifndef PTOLEMY_UTIL_ALIGNED_HH
#define PTOLEMY_UTIL_ALIGNED_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace ptolemy::util
{

/** Cache-line alignment used by every packed kernel buffer. */
inline constexpr std::size_t kKernelAlign = 64;

/** True when @p p sits on an @p align-byte boundary. */
inline bool
isAligned(const void *p, std::size_t align = kKernelAlign)
{
    return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

/**
 * Minimal over-aligning allocator: storage comes from the C++17
 * aligned operator new, so every allocation (not just large ones)
 * starts on an @p Align boundary.
 */
template <typename T, std::size_t Align = kKernelAlign>
struct AlignedAllocator
{
    using value_type = T;
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "alignment must be a power of two covering T");

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &)
    {}

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(
            ::operator new(n * sizeof(T), std::align_val_t{Align}));
    }

    void
    deallocate(T *p, std::size_t)
    {
        ::operator delete(p, std::align_val_t{Align});
    }

    bool operator==(const AlignedAllocator &) const { return true; }
    bool operator!=(const AlignedAllocator &) const { return false; }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/** Float scratch on cache-line boundaries (packed panels, im2col). */
using AlignedF32 = AlignedVector<float>;

} // namespace ptolemy::util

#endif // PTOLEMY_UTIL_ALIGNED_HH
