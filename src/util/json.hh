/**
 * @file
 * Minimal streaming JSON writer for benchmark artifacts.
 *
 * The perf harnesses emit machine-readable results (BENCH_micro.json)
 * so every PR leaves a comparable perf trajectory; this writer is just
 * enough JSON for that: nested objects/arrays, numbers, strings and
 * booleans, with correct comma placement and string escaping. No
 * parsing, no external dependencies.
 */

#ifndef PTOLEMY_UTIL_JSON_HH
#define PTOLEMY_UTIL_JSON_HH

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace ptolemy
{

/**
 * Streaming writer; emit begin/end and key/value calls in document
 * order. The writer tracks nesting to insert commas; it does not
 * validate that keys are only used inside objects.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : out(os) {}

    JsonWriter &
    beginObject()
    {
        prefix();
        out << "{";
        stack.push_back(true);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        stack.pop_back();
        newlineIndent();
        out << "}";
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        prefix();
        out << "[";
        stack.push_back(true);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        stack.pop_back();
        newlineIndent();
        out << "]";
        return *this;
    }

    /** Emit "key": ...; follow with a value or begin call. */
    JsonWriter &
    key(const std::string &name)
    {
        prefix();
        quote(name);
        out << ": ";
        pendingKey = true;
        return *this;
    }

    JsonWriter &
    value(double v)
    {
        prefix();
        if (std::isfinite(v)) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.6g", v);
            out << buf;
        } else {
            out << "null";
        }
        return *this;
    }

    JsonWriter &
    value(std::size_t v)
    {
        prefix();
        out << v;
        return *this;
    }

    JsonWriter &
    value(int v)
    {
        prefix();
        out << v;
        return *this;
    }

    JsonWriter &
    value(bool v)
    {
        prefix();
        out << (v ? "true" : "false");
        return *this;
    }

    JsonWriter &
    value(const std::string &v)
    {
        prefix();
        quote(v);
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string(v));
    }

    /** key(name) + value(v) in one call. */
    template <typename T>
    JsonWriter &
    kv(const std::string &name, T v)
    {
        key(name);
        return value(v);
    }

  private:
    void
    prefix()
    {
        if (pendingKey) {
            pendingKey = false;
            return; // value follows its key on the same line
        }
        if (stack.empty())
            return;
        if (!stack.back())
            out << ",";
        stack.back() = false;
        newline();
    }

    void
    newline()
    {
        out << "\n";
        for (std::size_t i = 0; i < stack.size(); ++i)
            out << "  ";
    }

    void
    newlineIndent()
    {
        out << "\n";
        for (std::size_t i = 0; i < stack.size(); ++i)
            out << "  ";
    }

    void
    quote(const std::string &s)
    {
        out << '"';
        for (char c : s) {
            switch (c) {
              case '"': out << "\\\""; break;
              case '\\': out << "\\\\"; break;
              case '\n': out << "\\n"; break;
              case '\t': out << "\\t"; break;
              default: out << c;
            }
        }
        out << '"';
    }

    std::ostream &out;
    std::vector<bool> stack; ///< per level: "no element emitted yet"
    bool pendingKey = false;
};

} // namespace ptolemy

#endif // PTOLEMY_UTIL_JSON_HH
