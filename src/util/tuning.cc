#include "util/tuning.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace ptolemy
{

namespace
{

unsigned g_applied = 0;

/** The only knobs a tuning file may set (see header). */
const char *const kKnobs[] = {
    "PTOLEMY_NUM_THREADS", "PTOLEMY_SIMD", "PTOLEMY_WIDE_BATCH",
    "PTOLEMY_WIDE_CHUNK",  "PTOLEMY_PREPACK",
};

bool
isKnownKnob(const std::string &name)
{
    for (const char *k : kKnobs)
        if (name == k)
            return true;
    return false;
}

void
skipSpace(const std::string &s, std::size_t &i)
{
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
}

/** Parse a JSON string starting at the opening quote; advances @p i
 *  past the closing quote. Handles \" escapes (enough for knob names
 *  and values, which are plain identifiers/numbers). */
bool
parseString(const std::string &s, std::size_t &i, std::string &out)
{
    if (i >= s.size() || s[i] != '"')
        return false;
    out.clear();
    for (++i; i < s.size(); ++i) {
        if (s[i] == '\\' && i + 1 < s.size()) {
            out.push_back(s[++i]);
        } else if (s[i] == '"') {
            ++i;
            return true;
        } else {
            out.push_back(s[i]);
        }
    }
    return false;
}

/**
 * Extract the key/value pairs of the "picked_env" object from a
 * bench_sweep picks JSON. Values may be strings or bare numbers (the
 * sweep writes whatever type the grid held); both surface as the
 * string setenv needs. A deliberately small scanner, not a general
 * JSON parser: the input format is our own tool's output.
 */
bool
parsePickedEnv(const std::string &text,
               std::vector<std::pair<std::string, std::string>> &out)
{
    const std::size_t key = text.find("\"picked_env\"");
    if (key == std::string::npos)
        return false;
    std::size_t i = text.find('{', key);
    if (i == std::string::npos)
        return false;
    ++i;
    for (;;) {
        skipSpace(text, i);
        if (i >= text.size())
            return false;
        if (text[i] == '}')
            return true;
        if (text[i] == ',') {
            ++i;
            continue;
        }
        std::string name;
        if (!parseString(text, i, name))
            return false;
        skipSpace(text, i);
        if (i >= text.size() || text[i] != ':')
            return false;
        ++i;
        skipSpace(text, i);
        std::string value;
        if (i < text.size() && text[i] == '"') {
            if (!parseString(text, i, value))
                return false;
        } else {
            // Bare token (number / true / false) up to a delimiter.
            const std::size_t start = i;
            while (i < text.size() && text[i] != ',' && text[i] != '}' &&
                   !std::isspace(static_cast<unsigned char>(text[i])))
                ++i;
            if (i == start)
                return false;
            value = text.substr(start, i - start);
        }
        out.emplace_back(std::move(name), std::move(value));
    }
}

} // namespace

unsigned
applyTuningFile(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr,
                     "ptolemy: tuning file %s unreadable; ignoring\n",
                     path);
        return 0;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::vector<std::pair<std::string, std::string>> env;
    if (!parsePickedEnv(text, env)) {
        std::fprintf(stderr,
                     "ptolemy: tuning file %s has no parseable "
                     "picked_env block; ignoring\n",
                     path);
        return 0;
    }
    unsigned applied = 0;
    for (const auto &[name, value] : env) {
        if (!isKnownKnob(name))
            continue; // never inject arbitrary environment
        if (std::getenv(name.c_str()) != nullptr)
            continue; // explicit environment wins
        if (::setenv(name.c_str(), value.c_str(), /*overwrite=*/0) == 0)
            ++applied;
    }
    g_applied += applied;
    return applied;
}

void
ensureTuningApplied()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *path = std::getenv("PTOLEMY_TUNING_FILE");
        if (path != nullptr && path[0] != '\0')
            applyTuningFile(path);
    });
}

unsigned
tuningKnobsApplied()
{
    ensureTuningApplied();
    return g_applied;
}

} // namespace ptolemy
