/**
 * @file
 * Process-wide SIMD kernel selection.
 *
 * Every vectorized hot path in the library (SGEMM microkernels, the
 * partial-sum extraction feed, BitVector popcount kernels) follows one
 * pattern: the AVX2/FMA implementation lives in its own translation
 * unit compiled with -mavx2 -mfma, reached through runtime dispatch on
 * simdMode(), with the portable scalar implementation always compiled
 * and always available. This header owns the selector so util-level
 * code (BitVector) can dispatch without depending on the nn layer;
 * nn/gemm.hh re-exports the names for its historical callers.
 *
 * Dispatch rule: a TU consults simdMode() at each entry point and calls
 * its AVX2 kernel iff the mode is Avx2 (which is only reachable when
 * the build compiled the kernels AND the CPU supports AVX2+FMA).
 * Flipping the mode at runtime is supported for tests and benches; it
 * is not thread-safe against concurrent hot-path calls.
 */

#ifndef PTOLEMY_UTIL_SIMD_HH
#define PTOLEMY_UTIL_SIMD_HH

namespace ptolemy
{

/** Kernel family used by the dispatched entry points. */
enum class SimdMode
{
    Scalar, ///< portable reference kernels (exact historical numerics)
    Avx2,   ///< AVX2/FMA kernels (bit-identity contracts documented per
            ///< entry point)
};

/**
 * Process-wide kernel selector. Initialized to Avx2 when the build
 * compiled the AVX2 TUs and the CPU supports them (override with the
 * PTOLEMY_SIMD=scalar environment variable); tests and benches may
 * flip it at runtime.
 */
SimdMode &simdMode();

/** Human-readable name of the *active* mode ("avx2" / "scalar"). */
const char *simdModeName();

/** True when the AVX2 kernels are compiled in and the CPU supports
 *  them (i.e. SimdMode::Avx2 is usable). */
bool avx2Available();

} // namespace ptolemy

#endif // PTOLEMY_UTIL_SIMD_HH
