/**
 * @file
 * Small statistics helpers shared by the evaluation harnesses.
 */

#ifndef PTOLEMY_UTIL_STATS_HH
#define PTOLEMY_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace ptolemy
{

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &xs);

/** Minimum; 0 for an empty input. */
double minOf(const std::vector<double> &xs);

/** Maximum; 0 for an empty input. */
double maxOf(const std::vector<double> &xs);

/**
 * Percentile with linear interpolation, @p p in [0, 100].
 * Used for the paper's "90-percentile path similarity" statistics.
 */
double percentile(std::vector<double> xs, double p);

/**
 * Area under the ROC curve for binary labels.
 *
 * @param scores Higher score means "more likely adversarial".
 * @param labels 1 = adversarial (positive), 0 = benign.
 * @return AUC in [0, 1]; 0.5 for degenerate inputs with one class only.
 */
double aucScore(const std::vector<double> &scores,
                const std::vector<int> &labels);

/** True/false positive counts at a fixed decision threshold. */
struct DetectionCounts
{
    std::size_t truePos = 0;
    std::size_t falsePos = 0;
    std::size_t trueNeg = 0;
    std::size_t falseNeg = 0;

    double tpr() const;
    double fpr() const;
    double accuracy() const;
};

/** Confusion counts for thresholded scores. */
DetectionCounts countsAtThreshold(const std::vector<double> &scores,
                                  const std::vector<int> &labels,
                                  double threshold);

} // namespace ptolemy

#endif // PTOLEMY_UTIL_STATS_HH
