/**
 * @file
 * DeepFool [Moosavi-Dezfooli'16]: iteratively project onto the nearest
 * linearized decision boundary (an L2 attack).
 *
 * Batched execution fans the candidate batch out sample-parallel on
 * the attack's pool; each sample's projection loop (with its per-sample
 * early exit the moment the prediction flips) runs in one pool task
 * against per-slot scratch, bit-identical to the sample-serial loop at
 * any thread count.
 */

#ifndef PTOLEMY_ATTACK_DEEPFOOL_HH
#define PTOLEMY_ATTACK_DEEPFOOL_HH

#include "attack/attack.hh"

namespace ptolemy::attack
{

class DeepFool : public Attack
{
  public:
    /**
     * @param max_iters linearization iterations.
     * @param overshoot step multiplier (the original paper's 1+eta).
     */
    explicit DeepFool(int max_iters = 20, double overshoot = 0.02)
        : maxIters(max_iters), overshoot(overshoot)
    {}

    std::string name() const override { return "DeepFool"; }
    void runBatch(nn::Network &net, std::span<const nn::Tensor *const> xs,
                  std::span<const std::size_t> labels,
                  std::span<AttackResult> results,
                  std::uint64_t index_base = 0) override;

  private:
    int maxIters;
    double overshoot;
    AttackScratch scratch;
};

} // namespace ptolemy::attack

#endif // PTOLEMY_ATTACK_DEEPFOOL_HH
