/**
 * @file
 * DeepFool [Moosavi-Dezfooli'16]: iteratively project onto the nearest
 * linearized decision boundary (an L2 attack).
 */

#ifndef PTOLEMY_ATTACK_DEEPFOOL_HH
#define PTOLEMY_ATTACK_DEEPFOOL_HH

#include "attack/attack.hh"

namespace ptolemy::attack
{

class DeepFool : public Attack
{
  public:
    /**
     * @param max_iters linearization iterations.
     * @param overshoot step multiplier (the original paper's 1+eta).
     */
    explicit DeepFool(int max_iters = 20, double overshoot = 0.02)
        : maxIters(max_iters), overshoot(overshoot)
    {}

    std::string name() const override { return "DeepFool"; }
    AttackResult run(nn::Network &net, const nn::Tensor &x,
                     std::size_t label) override;

  private:
    int maxIters;
    double overshoot;
};

} // namespace ptolemy::attack

#endif // PTOLEMY_ATTACK_DEEPFOOL_HH
