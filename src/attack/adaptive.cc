#include "adaptive.hh"

#include <cmath>
#include <limits>

#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace ptolemy::attack
{

AdaptiveActivationAttack::AdaptiveActivationAttack(
    int layers_considered, const nn::Dataset *target_pool, int num_targets,
    int iters, double lr, std::uint64_t seed)
    : layersConsidered(layers_considered), targetPool(target_pool),
      numTargets(num_targets), iters(iters), lr(lr), seed(seed)
{
}

void
AdaptiveActivationAttack::runBatch(nn::Network &net,
                                   std::span<const nn::Tensor *const> xs,
                                   std::span<const std::size_t> labels,
                                   std::span<AttackResult> results,
                                   std::uint64_t index_base)
{
    if (xs.empty())
        return;
    ThreadPool &tp = pool();
    scratch.prepare(net, tp);

    // The activations considered: outputs of the last n weighted layers
    // (shared, read-only across the batch).
    const auto &weighted = net.weightedNodes();
    const int n_w = static_cast<int>(weighted.size());
    const int first = std::max(0, n_w - layersConsidered);
    zNodes.assign(weighted.begin() + first, weighted.end());

    tp.parallelForWithTid(xs.size(), [&](std::size_t si, unsigned tid) {
        auto &sl = scratch.slot(tid);
        const nn::Tensor &x = *xs[si];
        const std::size_t label = labels[si];

        // Per-sample RNG keyed by the global sample index: target
        // draws never depend on batch composition or thread count.
        Rng rng(sampleKey(seed, index_base + si));

        nn::Tensor &best_adv = sl.best;
        best_adv = x; // copy-assign reuses the slot buffer
        double best_loss = std::numeric_limits<double>::max();
        int total_iters = 0;

        std::vector<std::size_t> &used_classes = sl.idx;
        used_classes.clear();
        for (int t = 0; t < numTargets && !targetPool->empty(); ++t) {
            // Draw a benign target of a fresh, different class.
            const nn::Sample *target = nullptr;
            for (int tries = 0; tries < 200 && !target; ++tries) {
                const auto &cand =
                    (*targetPool)[rng.below(targetPool->size())];
                if (cand.label == label)
                    continue;
                bool fresh = true;
                for (std::size_t uc : used_classes)
                    if (uc == cand.label)
                        fresh = false;
                if (fresh)
                    target = &cand;
            }
            if (!target)
                break;
            used_classes.push_back(target->label);

            // Record the target's activations z_i(x_t).
            net.forwardInto(target->input, sl.auxRec, /*train=*/false,
                            sl.arena);
            sl.acts.resize(zNodes.size());
            for (std::size_t zi = 0; zi < zNodes.size(); ++zi)
                sl.acts[zi] = sl.auxRec.outputs[zNodes[zi]]; // buffer reuse

            // PGD on the activation-matching loss.
            nn::Tensor &adv = sl.adv;
            adv = x;
            double loss = 0.0;
            for (int it = 0; it < iters; ++it) {
                ++total_iters;
                net.forwardInto(adv, sl.rec, /*train=*/false, sl.arena);
                loss = 0.0;
                sl.nodeSeeds.resize(zNodes.size());
                for (std::size_t zi = 0; zi < zNodes.size(); ++zi) {
                    const auto &z = sl.rec.outputs[zNodes[zi]];
                    sl.nodeSeeds[zi].first = zNodes[zi];
                    nn::Tensor &g = sl.nodeSeeds[zi].second;
                    g.resize(z.shape());
                    for (std::size_t i = 0; i < z.size(); ++i) {
                        const float d = z[i] - sl.acts[zi][i];
                        loss += static_cast<double>(d) * d;
                        g[i] = 2.0f * d;
                    }
                }
                const nn::Tensor &grad =
                    net.backwardMultiInputOnly(sl.rec, sl.nodeSeeds,
                                               sl.arena);
                // Normalize the step so the first iterations do not
                // overshoot.
                const double gnorm = std::sqrt(grad.sumSq()) + 1e-12;
                for (std::size_t i = 0; i < adv.size(); ++i)
                    adv[i] -= static_cast<float>(lr / gnorm * grad[i]);
                clipToImageRange(adv);
            }
            if (loss < best_loss) {
                net.forwardInto(adv, sl.rec, /*train=*/false, sl.arena);
                if (sl.rec.predictedClass() != label) {
                    best_loss = loss;
                    best_adv = adv;
                }
            }
        }

        AttackResult &r = results[si];
        net.forwardInto(best_adv, sl.rec, /*train=*/false, sl.arena);
        r.success = sl.rec.predictedClass() != label;
        r.mse = mseDistortion(best_adv, x);
        r.iterations = total_iters;
        r.adversarial = best_adv; // copy-assign reuses the buffer
    });
}

} // namespace ptolemy::attack
