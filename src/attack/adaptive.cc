#include "adaptive.hh"

#include <cmath>
#include <limits>

#include "util/rng.hh"

namespace ptolemy::attack
{

AdaptiveActivationAttack::AdaptiveActivationAttack(
    int layers_considered, const nn::Dataset *target_pool, int num_targets,
    int iters, double lr, std::uint64_t seed)
    : layersConsidered(layers_considered), targetPool(target_pool),
      numTargets(num_targets), iters(iters), lr(lr), seed(seed)
{
}

AttackResult
AdaptiveActivationAttack::run(nn::Network &net, const nn::Tensor &x,
                              std::size_t label)
{
    Rng rng(seed ^ (label * 0x2545F4914F6CDD1Dull));

    // The activations considered: outputs of the last n weighted layers.
    const auto &weighted = net.weightedNodes();
    const int n_w = static_cast<int>(weighted.size());
    const int first = std::max(0, n_w - layersConsidered);
    std::vector<int> z_nodes(weighted.begin() + first, weighted.end());

    nn::Tensor best_adv = x;
    double best_loss = std::numeric_limits<double>::max();
    int total_iters = 0;

    std::vector<std::size_t> used_classes;
    for (int t = 0; t < numTargets && !targetPool->empty(); ++t) {
        // Draw a benign target of a fresh, different class.
        const nn::Sample *target = nullptr;
        for (int tries = 0; tries < 200 && !target; ++tries) {
            const auto &cand = (*targetPool)[rng.below(targetPool->size())];
            if (cand.label == label)
                continue;
            bool fresh = true;
            for (std::size_t uc : used_classes)
                if (uc == cand.label)
                    fresh = false;
            if (fresh)
                target = &cand;
        }
        if (!target)
            break;
        used_classes.push_back(target->label);

        // Record the target's activations z_i(x_t).
        auto target_rec = net.forward(target->input);
        std::vector<nn::Tensor> z_target;
        z_target.reserve(z_nodes.size());
        for (int id : z_nodes)
            z_target.push_back(target_rec.outputs[id]);

        // PGD on the activation-matching loss.
        nn::Tensor adv = x;
        double loss = 0.0;
        nn::Network::Record rec; // reused across PGD iterations
        for (int it = 0; it < iters; ++it) {
            ++total_iters;
            net.forwardInto(adv, rec);
            loss = 0.0;
            std::vector<std::pair<int, nn::Tensor>> seeds;
            seeds.reserve(z_nodes.size());
            for (std::size_t zi = 0; zi < z_nodes.size(); ++zi) {
                const auto &z = rec.outputs[z_nodes[zi]];
                nn::Tensor g(z.shape());
                for (std::size_t i = 0; i < z.size(); ++i) {
                    const float d = z[i] - z_target[zi][i];
                    loss += static_cast<double>(d) * d;
                    g[i] = 2.0f * d;
                }
                seeds.emplace_back(z_nodes[zi], std::move(g));
            }
            nn::Tensor grad = net.backwardMulti(rec, seeds);
            // Normalize the step so the first iterations do not overshoot.
            const double gnorm = std::sqrt(grad.sumSq()) + 1e-12;
            for (std::size_t i = 0; i < adv.size(); ++i)
                adv[i] -= static_cast<float>(lr / gnorm * grad[i]);
            clipToImageRange(adv);
        }
        if (loss < best_loss && net.predict(adv) != label) {
            best_loss = loss;
            best_adv = adv;
        }
    }

    AttackResult r;
    r.success = net.predict(best_adv) != label;
    r.mse = mseDistortion(best_adv, x);
    r.iterations = total_iters;
    r.adversarial = std::move(best_adv);
    return r;
}

} // namespace ptolemy::attack
