#include "cw.hh"

#include <algorithm>

#include "util/thread_pool.hh"

namespace ptolemy::attack
{

void
CarliniWagnerL2::runBatch(nn::Network &net,
                          std::span<const nn::Tensor *const> xs,
                          std::span<const std::size_t> labels,
                          std::span<AttackResult> results, std::uint64_t)
{
    if (xs.empty())
        return;
    ThreadPool &tp = pool();
    scratch.prepare(net, tp);
    tp.parallelForWithTid(xs.size(), [&](std::size_t si, unsigned tid) {
        auto &sl = scratch.slot(tid);
        const nn::Tensor &x = *xs[si];
        const std::size_t label = labels[si];

        nn::Tensor &adv = sl.adv;
        nn::Tensor &best_adv = sl.best;
        adv = x;      // copy-assigns reuse the slot buffers
        best_adv = x;
        double best_l2 = 1e30;
        bool found = false;
        int it = 0;

        for (; it < maxIters; ++it) {
            net.forwardInto(adv, sl.rec, /*train=*/false, sl.arena);
            const auto &logits = sl.rec.logits();

            // Strongest rival class.
            std::size_t rival = label == 0 ? 1 : 0;
            for (std::size_t k = 0; k < logits.size(); ++k)
                if (k != label && logits[k] > logits[rival])
                    rival = k;

            const double margin =
                static_cast<double>(logits[label]) - logits[rival];
            if (margin < -kappa) {
                // Adversarial; keep the lowest-distortion success and
                // keep shrinking the perturbation.
                const double l2 = l2Distortion(adv, x);
                if (l2 < best_l2) {
                    best_l2 = l2;
                    best_adv = adv;
                    found = true;
                }
            }

            // Gradient of the margin part (only active while
            // margin > -kappa).
            nn::Tensor &grad = sl.grad;
            if (margin > -kappa) {
                sl.logitSeed.resizeZero(logits.shape());
                sl.logitSeed[label] = 1.0f;
                sl.logitSeed[rival] = -1.0f;
                grad = net.backwardInputOnly(sl.rec, sl.logitSeed, sl.arena);
                grad *= static_cast<float>(tradeoffC);
            } else {
                grad.resizeZero(x.shape());
            }
            // Plus the distortion gradient 2*(adv - x).
            for (std::size_t i = 0; i < adv.size(); ++i)
                grad[i] += 2.0f * (adv[i] - x[i]);

            for (std::size_t i = 0; i < adv.size(); ++i)
                adv[i] -= static_cast<float>(learnRate) * grad[i];
            clipToImageRange(adv);
        }

        AttackResult &r = results[si];
        r.adversarial = found ? best_adv : adv;
        net.forwardInto(r.adversarial, sl.rec, /*train=*/false, sl.arena);
        r.success = sl.rec.predictedClass() != label;
        r.mse = mseDistortion(r.adversarial, x);
        r.iterations = it;
    });
}

} // namespace ptolemy::attack
