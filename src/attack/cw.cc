#include "cw.hh"

#include <algorithm>

namespace ptolemy::attack
{

AttackResult
CarliniWagnerL2::run(nn::Network &net, const nn::Tensor &x,
                     std::size_t label)
{
    nn::Tensor adv = x;
    nn::Tensor best_adv = x;
    double best_l2 = 1e30;
    bool found = false;
    int it = 0;
    nn::Network::Record rec; // reused across iterations

    for (; it < maxIters; ++it) {
        net.forwardInto(adv, rec); // records the pass for the backward below
        const auto &logits = rec.logits();

        // Strongest rival class.
        std::size_t rival = label == 0 ? 1 : 0;
        for (std::size_t k = 0; k < logits.size(); ++k)
            if (k != label && logits[k] > logits[rival])
                rival = k;

        const double margin =
            static_cast<double>(logits[label]) - logits[rival];
        if (margin < -kappa) {
            // Adversarial; keep the lowest-distortion success and keep
            // shrinking the perturbation.
            const double l2 = l2Distortion(adv, x);
            if (l2 < best_l2) {
                best_l2 = l2;
                best_adv = adv;
                found = true;
            }
        }

        // Gradient of the margin part (only active while margin > -kappa).
        nn::Tensor grad(x.shape());
        if (margin > -kappa) {
            nn::Tensor seed(logits.shape());
            seed[label] = 1.0f;
            seed[rival] = -1.0f;
            grad = net.backward(rec, seed);
            grad *= static_cast<float>(tradeoffC);
        }
        // Plus the distortion gradient 2*(adv - x).
        for (std::size_t i = 0; i < adv.size(); ++i)
            grad[i] += 2.0f * (adv[i] - x[i]);

        for (std::size_t i = 0; i < adv.size(); ++i)
            adv[i] -= static_cast<float>(learnRate) * grad[i];
        clipToImageRange(adv);
    }

    AttackResult r;
    r.adversarial = found ? best_adv : adv;
    r.success = net.predict(r.adversarial) != label;
    r.mse = mseDistortion(r.adversarial, x);
    r.iterations = it;
    return r;
}

} // namespace ptolemy::attack
