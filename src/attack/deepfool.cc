#include "deepfool.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/thread_pool.hh"

namespace ptolemy::attack
{

void
DeepFool::runBatch(nn::Network &net, std::span<const nn::Tensor *const> xs,
                   std::span<const std::size_t> labels,
                   std::span<AttackResult> results, std::uint64_t)
{
    if (xs.empty())
        return;
    constexpr std::size_t kRivals = 3;
    ThreadPool &tp = pool();
    scratch.prepare(net, tp);
    tp.parallelForWithTid(xs.size(), [&](std::size_t si, unsigned tid) {
        auto &sl = scratch.slot(tid);
        const nn::Tensor &x = *xs[si];
        const std::size_t label = labels[si];

        nn::Tensor &adv = sl.adv;
        adv = x; // copy-assign reuses the slot buffer
        int it = 0;
        for (; it < maxIters; ++it) {
            net.forwardInto(adv, sl.rec, /*train=*/false, sl.arena);
            const auto &logits = sl.rec.logits();
            if (sl.rec.predictedClass() != label)
                break;

            // Rivals in descending-logit order (label excluded).
            sl.idx.resize(logits.size());
            std::iota(sl.idx.begin(), sl.idx.end(), 0);
            std::sort(sl.idx.begin(), sl.idx.end(),
                      [&](std::size_t a, std::size_t b) {
                          return logits[a] > logits[b];
                      });

            // For each rival class k, the linearized distance to the
            // boundary is |f_k - f_label| / ||grad(f_k - f_label)||;
            // move toward the closest one.
            double best_dist = std::numeric_limits<double>::max();
            nn::Tensor &best_dir = sl.best;
            bool have_dir = false;
            double best_fdiff = 0.0;
            std::size_t rivals = 0;
            for (std::size_t k : sl.idx) {
                if (k == label)
                    continue;
                if (rivals++ == kRivals)
                    break;
                sl.logitSeed.resizeZero(logits.shape());
                sl.logitSeed[k] = 1.0f;
                sl.logitSeed[label] = -1.0f;
                // One record serves every rival's backward: layers keep
                // no per-pass state, so no refresh forward is needed.
                const nn::Tensor &grad =
                    net.backwardInputOnly(sl.rec, sl.logitSeed, sl.arena);
                const double gnorm2 = grad.sumSq();
                if (gnorm2 < 1e-20)
                    continue;
                const double fdiff =
                    static_cast<double>(logits[k]) - logits[label];
                const double dist = std::abs(fdiff) / std::sqrt(gnorm2);
                if (dist < best_dist) {
                    best_dist = dist;
                    best_dir = grad; // copy-assign reuses the buffer
                    have_dir = true;
                    best_fdiff = fdiff;
                }
            }
            if (!have_dir)
                break;
            // Step just across the boundary: delta = |f|/||g||^2 * g.
            const double gnorm2 = best_dir.sumSq();
            const double scale =
                (1.0 + overshoot) * (std::abs(best_fdiff) + 1e-4) / gnorm2;
            for (std::size_t i = 0; i < adv.size(); ++i)
                adv[i] += static_cast<float>(scale * best_dir[i]);
            clipToImageRange(adv);
        }

        AttackResult &r = results[si];
        net.forwardInto(adv, sl.rec, /*train=*/false, sl.arena);
        r.success = sl.rec.predictedClass() != label;
        r.mse = mseDistortion(adv, x);
        r.iterations = it;
        r.adversarial = adv; // copy-assign reuses the buffer
    });
}

} // namespace ptolemy::attack
