#include "deepfool.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace ptolemy::attack
{

namespace
{

/** Indices of the largest @p k logits excluding @p skip. */
std::vector<std::size_t>
topRivals(const nn::Tensor &logits, std::size_t skip, std::size_t k)
{
    std::vector<std::size_t> idx(logits.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return logits[a] > logits[b];
    });
    std::vector<std::size_t> out;
    for (std::size_t i : idx) {
        if (i == skip)
            continue;
        out.push_back(i);
        if (out.size() == k)
            break;
    }
    return out;
}

} // namespace

AttackResult
DeepFool::run(nn::Network &net, const nn::Tensor &x, std::size_t label)
{
    nn::Tensor adv = x;
    int it = 0;
    nn::Network::Record rec; // reused across iterations
    for (; it < maxIters; ++it) {
        net.forwardInto(adv, rec);
        const auto &logits = rec.logits();
        if (rec.predictedClass() != label)
            break;

        // For each rival class k, the linearized distance to the boundary
        // is |f_k - f_label| / ||grad(f_k - f_label)||; move toward the
        // closest one.
        double best_dist = std::numeric_limits<double>::max();
        nn::Tensor best_dir;
        double best_fdiff = 0.0;
        for (std::size_t k : topRivals(logits, label, 3)) {
            nn::Tensor seed(logits.shape());
            seed[k] = 1.0f;
            seed[label] = -1.0f;
            // One record serves every rival's backward: layers keep no
            // per-pass state, so no refresh forward is needed.
            nn::Tensor grad = net.backward(rec, seed);
            const double gnorm2 = grad.sumSq();
            if (gnorm2 < 1e-20)
                continue;
            const double fdiff =
                static_cast<double>(logits[k]) - logits[label];
            const double dist = std::abs(fdiff) / std::sqrt(gnorm2);
            if (dist < best_dist) {
                best_dist = dist;
                best_dir = std::move(grad);
                best_fdiff = fdiff;
            }
        }
        if (best_dir.empty())
            break;
        // Step just across the boundary: delta = |f|/||g||^2 * g.
        const double gnorm2 = best_dir.sumSq();
        const double scale =
            (1.0 + overshoot) * (std::abs(best_fdiff) + 1e-4) / gnorm2;
        for (std::size_t i = 0; i < adv.size(); ++i)
            adv[i] += static_cast<float>(scale * best_dir[i]);
        clipToImageRange(adv);
    }

    AttackResult r;
    r.success = net.predict(adv) != label;
    r.mse = mseDistortion(adv, x);
    r.iterations = it;
    r.adversarial = std::move(adv);
    return r;
}

} // namespace ptolemy::attack
