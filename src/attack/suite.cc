#include "suite.hh"

#include "attack/cw.hh"
#include "attack/deepfool.hh"
#include "attack/gradient_attacks.hh"
#include "attack/jsma.hh"

namespace ptolemy::attack
{

std::vector<std::unique_ptr<Attack>>
makeStandardAttacks(AttackBudget budget)
{
    std::vector<std::unique_ptr<Attack>> v;
    v.push_back(std::make_unique<Bim>(budget));
    v.push_back(std::make_unique<CarliniWagnerL2>());
    v.push_back(std::make_unique<DeepFool>());
    v.push_back(std::make_unique<Fgsm>(budget));
    v.push_back(std::make_unique<Jsma>());
    return v;
}

} // namespace ptolemy::attack
