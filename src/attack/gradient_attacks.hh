/**
 * @file
 * Gradient-sign attacks: FGSM [Goodfellow'14], BIM [Kurakin'16] and
 * PGD [Madry'17]. All perturb within an L∞ ball.
 *
 * The iterative attacks run whole candidate batches in lockstep: every
 * iteration issues one batched forward+backward (lossInputGradientBatch
 * on the attack's pool) for the samples still active, retires samples
 * the moment the model mispredicts them (per-sample early-exit mask),
 * and steps the survivors. Results are bit-identical to the
 * sample-serial loop at any thread count.
 */

#ifndef PTOLEMY_ATTACK_GRADIENT_ATTACKS_HH
#define PTOLEMY_ATTACK_GRADIENT_ATTACKS_HH

#include <cstdint>

#include "attack/attack.hh"

namespace ptolemy::attack
{

namespace detail
{

/**
 * Reusable per-batch state for the iterative L∞ attacks: per-sample
 * working adversarials, gradients, the early-exit mask and iteration
 * counters. Buffers never shrink, so repeated equal-size batches are
 * allocation-free once warmed.
 */
struct LinfBatchState
{
    std::vector<nn::Tensor> advs;           ///< per-sample working input
    std::vector<nn::Tensor> grads;          ///< per-sample CE gradient
    std::vector<const nn::Tensor *> advPtrs; ///< batch views of advs
    std::vector<std::uint8_t> active;       ///< 1 = still iterating
    std::vector<std::size_t> preds;         ///< per-sample argmax
    std::vector<int> iters;                 ///< iterations consumed
};

} // namespace detail

/** Single-step fast gradient sign method. */
class Fgsm : public Attack
{
  public:
    explicit Fgsm(AttackBudget budget = {}) : budget(budget) {}
    std::string name() const override { return "FGSM"; }
    void runBatch(nn::Network &net, std::span<const nn::Tensor *const> xs,
                  std::span<const std::size_t> labels,
                  std::span<AttackResult> results,
                  std::uint64_t index_base = 0) override;

  private:
    AttackBudget budget;
    AttackScratch scratch;
    std::vector<nn::Tensor> grads;
};

/** Basic iterative method: repeated small FGSM steps, clipped to the
 *  epsilon ball; each sample stops early on success. */
class Bim : public Attack
{
  public:
    explicit Bim(AttackBudget budget = {}) : budget(budget) {}
    std::string name() const override { return "BIM"; }
    void runBatch(nn::Network &net, std::span<const nn::Tensor *const> xs,
                  std::span<const std::size_t> labels,
                  std::span<AttackResult> results,
                  std::uint64_t index_base = 0) override;

  private:
    AttackBudget budget;
    AttackScratch scratch;
    detail::LinfBatchState state;
};

/**
 * Projected gradient descent: BIM from a random start in the ball.
 *
 * Randomness contract: the start noise for a sample is drawn from an
 * Rng seeded with sampleKey(seed, index_base + i) — each sample owns
 * its stream, keyed by its global index, never by batch position or a
 * shared per-instance stream. Serial run() calls, batched runBatch
 * chunks of any size, and any PTOLEMY_NUM_THREADS therefore produce
 * identical adversarials for the same (input, label, sample index).
 */
class Pgd : public Attack
{
  public:
    explicit Pgd(AttackBudget budget = {}, std::uint64_t seed = 0xB0B)
        : budget(budget), seed(seed)
    {}
    std::string name() const override { return "PGD"; }
    void runBatch(nn::Network &net, std::span<const nn::Tensor *const> xs,
                  std::span<const std::size_t> labels,
                  std::span<AttackResult> results,
                  std::uint64_t index_base = 0) override;

  private:
    AttackBudget budget;
    std::uint64_t seed;
    AttackScratch scratch;
    detail::LinfBatchState state;
};

} // namespace ptolemy::attack

#endif // PTOLEMY_ATTACK_GRADIENT_ATTACKS_HH
