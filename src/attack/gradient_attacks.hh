/**
 * @file
 * Gradient-sign attacks: FGSM [Goodfellow'14], BIM [Kurakin'16] and
 * PGD [Madry'17]. All perturb within an L∞ ball.
 */

#ifndef PTOLEMY_ATTACK_GRADIENT_ATTACKS_HH
#define PTOLEMY_ATTACK_GRADIENT_ATTACKS_HH

#include <cstdint>

#include "attack/attack.hh"

namespace ptolemy::attack
{

/** Single-step fast gradient sign method. */
class Fgsm : public Attack
{
  public:
    explicit Fgsm(AttackBudget budget = {}) : budget(budget) {}
    std::string name() const override { return "FGSM"; }
    AttackResult run(nn::Network &net, const nn::Tensor &x,
                     std::size_t label) override;

  private:
    AttackBudget budget;
};

/** Basic iterative method: repeated small FGSM steps, clipped to the
 *  epsilon ball; stops early on success. */
class Bim : public Attack
{
  public:
    explicit Bim(AttackBudget budget = {}) : budget(budget) {}
    std::string name() const override { return "BIM"; }
    AttackResult run(nn::Network &net, const nn::Tensor &x,
                     std::size_t label) override;

  private:
    AttackBudget budget;
};

/** Projected gradient descent: BIM from a random start in the ball. */
class Pgd : public Attack
{
  public:
    explicit Pgd(AttackBudget budget = {}, std::uint64_t seed = 0xB0B)
        : budget(budget), seed(seed)
    {}
    std::string name() const override { return "PGD"; }
    AttackResult run(nn::Network &net, const nn::Tensor &x,
                     std::size_t label) override;

  private:
    AttackBudget budget;
    std::uint64_t seed;
};

} // namespace ptolemy::attack

#endif // PTOLEMY_ATTACK_GRADIENT_ATTACKS_HH
