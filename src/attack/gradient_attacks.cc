#include "gradient_attacks.hh"

#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace ptolemy::attack
{

namespace
{

/** One ascent step on the CE loss: x += step * sign(grad). */
void
signStep(nn::Tensor &x, const nn::Tensor &grad, double step)
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (grad[i] > 0.0f)
            x[i] += static_cast<float>(step);
        else if (grad[i] < 0.0f)
            x[i] -= static_cast<float>(step);
    }
}

/** Grow the per-batch buffers to @p n samples (never shrinking, so
 *  warmed tensor buffers survive smaller tail batches). */
void
ensureState(detail::LinfBatchState &st, std::size_t n)
{
    if (st.advs.size() < n) {
        st.advs.resize(n);
        st.grads.resize(n);
        st.advPtrs.resize(n);
        st.active.resize(n);
        st.preds.resize(n);
        st.iters.resize(n);
    }
    for (std::size_t i = 0; i < n; ++i)
        st.advPtrs[i] = &st.advs[i];
}

/**
 * Lockstep batched BIM loop. Precondition: st.advs[0..n) hold each
 * sample's start point. Every iteration runs one fused batched
 * forward+backward for the active samples; a sample whose prediction
 * left its label is retired before stepping — exactly where the serial
 * loop broke — so results are bit-identical to the sample-serial path.
 */
void
iterativeLinfBatch(nn::Network &net, std::span<const nn::Tensor *const> xs,
                   std::span<const std::size_t> labels,
                   std::span<AttackResult> results,
                   const AttackBudget &budget, AttackScratch &scratch,
                   detail::LinfBatchState &st, ThreadPool &pool)
{
    const std::size_t n = xs.size();
    std::fill_n(st.active.begin(), n, static_cast<std::uint8_t>(1));
    std::size_t n_active = n;

    for (int it = 0; it < budget.maxIters && n_active > 0; ++it) {
        lossInputGradientBatch(net, {st.advPtrs.data(), n}, labels,
                               {st.grads.data(), n}, scratch, pool,
                               {st.preds.data(), n},
                               {st.active.data(), n},
                               /*skip_fooled=*/true);
        // Retire samples the model already mispredicts (they take no
        // step this iteration), then step the survivors.
        for (std::size_t i = 0; i < n; ++i) {
            if (!st.active[i])
                continue;
            if (st.preds[i] != labels[i]) {
                st.active[i] = 0;
                st.iters[i] = it;
                --n_active;
            }
        }
        pool.parallelForWithTid(n, [&](std::size_t i, unsigned) {
            if (!st.active[i])
                return;
            signStep(st.advs[i], st.grads[i], budget.stepSize);
            clipToEpsBall(st.advs[i], *xs[i], budget.epsilon);
        });
    }

    // Finalize: retired samples are successes by the prediction already
    // observed; budget-exhausted survivors need one more forward to
    // settle their success flag.
    pool.parallelForWithTid(n, [&](std::size_t i, unsigned tid) {
        AttackResult &r = results[i];
        if (st.active[i]) {
            auto &sl = scratch.slot(tid);
            net.forwardInto(st.advs[i], sl.rec, /*train=*/false, sl.arena);
            r.success = sl.rec.predictedClass() != labels[i];
            st.iters[i] = budget.maxIters;
        } else {
            r.success = true;
        }
        r.adversarial = st.advs[i]; // copy-assign reuses the buffer
        r.mse = mseDistortion(r.adversarial, *xs[i]);
        r.iterations = st.iters[i];
    });
}

} // namespace

void
Fgsm::runBatch(nn::Network &net, std::span<const nn::Tensor *const> xs,
               std::span<const std::size_t> labels,
               std::span<AttackResult> results, std::uint64_t)
{
    const std::size_t n = xs.size();
    if (n == 0)
        return;
    ThreadPool &tp = pool();
    scratch.prepare(net, tp);
    if (grads.size() < n)
        grads.resize(n);
    lossInputGradientBatch(net, xs, labels, {grads.data(), n}, scratch,
                           tp);
    tp.parallelForWithTid(n, [&](std::size_t i, unsigned tid) {
        auto &sl = scratch.slot(tid);
        AttackResult &r = results[i];
        r.adversarial = *xs[i]; // copy-assign reuses the buffer
        signStep(r.adversarial, grads[i], budget.epsilon);
        clipToImageRange(r.adversarial);
        net.forwardInto(r.adversarial, sl.rec, /*train=*/false, sl.arena);
        r.success = sl.rec.predictedClass() != labels[i];
        r.mse = mseDistortion(r.adversarial, *xs[i]);
        r.iterations = 1;
    });
}

void
Bim::runBatch(nn::Network &net, std::span<const nn::Tensor *const> xs,
              std::span<const std::size_t> labels,
              std::span<AttackResult> results, std::uint64_t)
{
    const std::size_t n = xs.size();
    if (n == 0)
        return;
    ThreadPool &tp = pool();
    scratch.prepare(net, tp);
    ensureState(state, n);
    for (std::size_t i = 0; i < n; ++i)
        state.advs[i] = *xs[i]; // copy-assign reuses the buffer
    iterativeLinfBatch(net, xs, labels, results, budget, scratch, state,
                       tp);
}

void
Pgd::runBatch(nn::Network &net, std::span<const nn::Tensor *const> xs,
              std::span<const std::size_t> labels,
              std::span<AttackResult> results, std::uint64_t index_base)
{
    const std::size_t n = xs.size();
    if (n == 0)
        return;
    ThreadPool &tp = pool();
    scratch.prepare(net, tp);
    ensureState(state, n);
    tp.parallelForWithTid(n, [&](std::size_t i, unsigned) {
        // Per-sample RNG keyed by the global sample index: the start
        // noise never depends on batch composition or thread count.
        Rng rng(sampleKey(seed, index_base + i));
        nn::Tensor &adv = state.advs[i];
        adv = *xs[i]; // copy-assign reuses the buffer
        for (std::size_t e = 0; e < adv.size(); ++e)
            adv[e] += static_cast<float>(
                rng.uniform(-budget.epsilon, budget.epsilon));
        clipToEpsBall(adv, *xs[i], budget.epsilon);
    });
    iterativeLinfBatch(net, xs, labels, results, budget, scratch, state,
                       tp);
}

} // namespace ptolemy::attack
