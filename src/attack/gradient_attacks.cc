#include "gradient_attacks.hh"

#include "util/rng.hh"

namespace ptolemy::attack
{

namespace
{

/** One ascent step on the CE loss: x += step * sign(grad). */
void
signStep(nn::Tensor &x, const nn::Tensor &grad, double step)
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (grad[i] > 0.0f)
            x[i] += static_cast<float>(step);
        else if (grad[i] < 0.0f)
            x[i] -= static_cast<float>(step);
    }
}

AttackResult
finish(nn::Network &net, const nn::Tensor &x, nn::Tensor adv,
       std::size_t label, int iters)
{
    AttackResult r;
    r.success = net.predict(adv) != label;
    r.mse = mseDistortion(adv, x);
    r.iterations = iters;
    r.adversarial = std::move(adv);
    return r;
}

AttackResult
iterativeLinf(nn::Network &net, const nn::Tensor &x, nn::Tensor adv,
              std::size_t label, const AttackBudget &budget)
{
    int it = 0;
    nn::Tensor grad; // reused across iterations
    for (; it < budget.maxIters; ++it) {
        if (net.predict(adv) != label)
            break; // already adversarial
        lossInputGradientInto(net, adv, label, grad);
        signStep(adv, grad, budget.stepSize);
        clipToEpsBall(adv, x, budget.epsilon);
    }
    return finish(net, x, std::move(adv), label, it);
}

} // namespace

AttackResult
Fgsm::run(nn::Network &net, const nn::Tensor &x, std::size_t label)
{
    auto grad = lossInputGradient(net, x, label);
    nn::Tensor adv = x;
    signStep(adv, grad, budget.epsilon);
    clipToImageRange(adv);
    return finish(net, x, std::move(adv), label, 1);
}

AttackResult
Bim::run(nn::Network &net, const nn::Tensor &x, std::size_t label)
{
    return iterativeLinf(net, x, x, label, budget);
}

AttackResult
Pgd::run(nn::Network &net, const nn::Tensor &x, std::size_t label)
{
    Rng rng(seed ^ (label * 0x9E3779B9ull));
    nn::Tensor adv = x;
    for (std::size_t i = 0; i < adv.size(); ++i)
        adv[i] += static_cast<float>(
            rng.uniform(-budget.epsilon, budget.epsilon));
    clipToEpsBall(adv, x, budget.epsilon);
    return iterativeLinf(net, x, std::move(adv), label, budget);
}

} // namespace ptolemy::attack
