/**
 * @file
 * Jacobian-based saliency map attack [Papernot'16] — an L0 attack that
 * perturbs few, highly-salient input elements toward a target class.
 */

#ifndef PTOLEMY_ATTACK_JSMA_HH
#define PTOLEMY_ATTACK_JSMA_HH

#include "attack/attack.hh"

namespace ptolemy::attack
{

class Jsma : public Attack
{
  public:
    /**
     * @param max_pixels maximum input elements to perturb (L0 budget).
     * @param step per-modification magnitude.
     */
    explicit Jsma(int max_pixels = 60, double step = 0.35)
        : maxPixels(max_pixels), step(step)
    {}

    std::string name() const override { return "JSMA"; }
    AttackResult run(nn::Network &net, const nn::Tensor &x,
                     std::size_t label) override;

  private:
    int maxPixels;
    double step;
};

} // namespace ptolemy::attack

#endif // PTOLEMY_ATTACK_JSMA_HH
