/**
 * @file
 * Jacobian-based saliency map attack [Papernot'16] — an L0 attack that
 * perturbs few, highly-salient input elements toward a target class.
 *
 * Batched execution fans the candidate batch out sample-parallel on
 * the attack's pool; each sample's pixel-selection loop (early-exiting
 * the moment the prediction flips or the saliency map saturates) runs
 * in one pool task against per-slot scratch, bit-identical to the
 * sample-serial loop at any thread count.
 */

#ifndef PTOLEMY_ATTACK_JSMA_HH
#define PTOLEMY_ATTACK_JSMA_HH

#include "attack/attack.hh"

namespace ptolemy::attack
{

class Jsma : public Attack
{
  public:
    /**
     * @param max_pixels maximum input elements to perturb (L0 budget).
     * @param step per-modification magnitude.
     */
    explicit Jsma(int max_pixels = 60, double step = 0.35)
        : maxPixels(max_pixels), step(step)
    {}

    std::string name() const override { return "JSMA"; }
    void runBatch(nn::Network &net, std::span<const nn::Tensor *const> xs,
                  std::span<const std::size_t> labels,
                  std::span<AttackResult> results,
                  std::uint64_t index_base = 0) override;

  private:
    int maxPixels;
    double step;
    AttackScratch scratch;
};

} // namespace ptolemy::attack

#endif // PTOLEMY_ATTACK_JSMA_HH
