#include "jsma.hh"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.hh"

namespace ptolemy::attack
{

void
Jsma::runBatch(nn::Network &net, std::span<const nn::Tensor *const> xs,
               std::span<const std::size_t> labels,
               std::span<AttackResult> results, std::uint64_t)
{
    if (xs.empty())
        return;
    ThreadPool &tp = pool();
    scratch.prepare(net, tp);
    tp.parallelForWithTid(xs.size(), [&](std::size_t si, unsigned tid) {
        auto &sl = scratch.slot(tid);
        const nn::Tensor &x = *xs[si];
        const std::size_t label = labels[si];

        nn::Tensor &adv = sl.adv;
        adv = x; // copy-assign reuses the slot buffer
        sl.flags.assign(x.size(), 0); // touched marks
        int changed = 0, it = 0;

        // Target: the runner-up class of the clean input.
        net.forwardInto(adv, sl.rec, /*train=*/false, sl.arena);
        std::size_t target = 0;
        float best = -1e30f;
        for (std::size_t k = 0; k < sl.rec.logits().size(); ++k) {
            if (k != label && sl.rec.logits()[k] > best) {
                best = sl.rec.logits()[k];
                target = k;
            }
        }

        while (changed < maxPixels) {
            ++it;
            net.forwardInto(adv, sl.rec, /*train=*/false, sl.arena);
            if (sl.rec.predictedClass() != label)
                break;
            // Saliency direction: grad of (logit_target - logit_label).
            sl.logitSeed.resizeZero(sl.rec.logits().shape());
            sl.logitSeed[target] = 1.0f;
            sl.logitSeed[label] = -1.0f;
            const nn::Tensor &grad =
                net.backwardInputOnly(sl.rec, sl.logitSeed, sl.arena);

            // Pick the untouched element with the largest |saliency|
            // that can still move in the helpful direction.
            double best_sal = 0.0;
            std::size_t best_idx = x.size();
            for (std::size_t i = 0; i < grad.size(); ++i) {
                if (sl.flags[i])
                    continue;
                const double sal =
                    std::abs(static_cast<double>(grad[i]));
                const bool movable = grad[i] > 0.0f ? adv[i] < 1.0f
                                                    : adv[i] > 0.0f;
                if (movable && sal > best_sal) {
                    best_sal = sal;
                    best_idx = i;
                }
            }
            if (best_idx == x.size())
                break; // saturated
            sl.flags[best_idx] = 1;
            ++changed;
            adv[best_idx] += grad[best_idx] > 0.0f
                ? static_cast<float>(step)
                : static_cast<float>(-step);
            adv[best_idx] = std::clamp(adv[best_idx], 0.0f, 1.0f);
        }

        AttackResult &r = results[si];
        net.forwardInto(adv, sl.rec, /*train=*/false, sl.arena);
        r.success = sl.rec.predictedClass() != label;
        r.mse = mseDistortion(adv, x);
        r.iterations = it;
        r.adversarial = adv; // copy-assign reuses the buffer
    });
}

} // namespace ptolemy::attack
