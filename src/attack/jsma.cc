#include "jsma.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ptolemy::attack
{

AttackResult
Jsma::run(nn::Network &net, const nn::Tensor &x, std::size_t label)
{
    nn::Tensor adv = x;
    std::vector<bool> touched(x.size(), false);
    int changed = 0, it = 0;

    // Target: the runner-up class of the clean input.
    auto rec0 = net.forward(adv);
    std::size_t target = 0;
    float best = -1e30f;
    for (std::size_t k = 0; k < rec0.logits().size(); ++k) {
        if (k != label && rec0.logits()[k] > best) {
            best = rec0.logits()[k];
            target = k;
        }
    }

    nn::Network::Record rec; // reused across iterations
    while (changed < maxPixels) {
        ++it;
        net.forwardInto(adv, rec);
        if (rec.predictedClass() != label)
            break;
        // Saliency direction: grad of (logit_target - logit_label).
        nn::Tensor seed(rec.logits().shape());
        seed[target] = 1.0f;
        seed[label] = -1.0f;
        nn::Tensor grad = net.backward(rec, seed);

        // Pick the untouched element with the largest |saliency| that can
        // still move in the helpful direction.
        double best_sal = 0.0;
        std::size_t best_idx = x.size();
        for (std::size_t i = 0; i < grad.size(); ++i) {
            if (touched[i])
                continue;
            const double sal = std::abs(static_cast<double>(grad[i]));
            const bool movable = grad[i] > 0.0f ? adv[i] < 1.0f
                                                : adv[i] > 0.0f;
            if (movable && sal > best_sal) {
                best_sal = sal;
                best_idx = i;
            }
        }
        if (best_idx == x.size())
            break; // saturated
        touched[best_idx] = true;
        ++changed;
        adv[best_idx] += grad[best_idx] > 0.0f
            ? static_cast<float>(step)
            : static_cast<float>(-step);
        adv[best_idx] = std::clamp(adv[best_idx], 0.0f, 1.0f);
    }

    AttackResult r;
    r.success = net.predict(adv) != label;
    r.mse = mseDistortion(adv, x);
    r.iterations = it;
    r.adversarial = std::move(adv);
    return r;
}

} // namespace ptolemy::attack
