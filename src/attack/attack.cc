#include "attack.hh"

#include <algorithm>
#include <cmath>

#include "nn/loss.hh"
#include "util/thread_pool.hh"

namespace ptolemy::attack
{

double
mseDistortion(const nn::Tensor &a, const nn::Tensor &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        s += d * d;
    }
    return a.size() == 0 ? 0.0 : s / a.size();
}

double
linfDistortion(const nn::Tensor &a, const nn::Tensor &b)
{
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
    return m;
}

std::size_t
l0Distortion(const nn::Tensor &a, const nn::Tensor &b, double tol)
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::abs(static_cast<double>(a[i]) - b[i]) > tol)
            ++n;
    return n;
}

double
l2Distortion(const nn::Tensor &a, const nn::Tensor &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        s += d * d;
    }
    return std::sqrt(s);
}

std::uint64_t
sampleKey(std::uint64_t seed, std::uint64_t sample_index)
{
    std::uint64_t z = sample_index + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return seed ^ (z ^ (z >> 31));
}

void
AttackScratch::prepare(nn::Network &net, ThreadPool &pool)
{
    if (slots.size() < pool.size())
        slots.resize(pool.size());
    // Build the parameter index before the fan-out: backward passes
    // from concurrent slots may read it but must never build it.
    net.flatParams();
}

ThreadPool &
Attack::pool() const
{
    return poolOverride ? *poolOverride : globalPool();
}

AttackResult
Attack::run(nn::Network &net, const nn::Tensor &x, std::size_t label,
            std::uint64_t sample_index)
{
    AttackResult r;
    const nn::Tensor *xp = &x;
    runBatch(net, {&xp, 1}, {&label, 1}, {&r, 1}, sample_index);
    return r;
}

nn::Tensor
lossInputGradient(nn::Network &net, const nn::Tensor &x, std::size_t label,
                  double *loss_out)
{
    nn::Tensor grad;
    lossInputGradientInto(net, x, label, grad, loss_out);
    return grad;
}

void
lossInputGradientInto(nn::Network &net, const nn::Tensor &x,
                      std::size_t label, nn::Tensor &grad, double *loss_out)
{
    thread_local nn::Network::Record rec; // reused across gradient queries
    thread_local nn::LossGrad lg;
    net.forwardInto(x, rec);
    nn::softmaxCrossEntropyInto(rec.logits(), label, lg);
    if (loss_out)
        *loss_out = lg.loss;
    grad = net.backward(rec, lg.grad); // copy-assign reuses the buffer
}

void
lossInputGradientBatch(nn::Network &net,
                       std::span<const nn::Tensor *const> xs,
                       std::span<const std::size_t> labels,
                       std::span<nn::Tensor> grads, AttackScratch &scratch,
                       ThreadPool &pool, std::span<std::size_t> preds_out,
                       std::span<const std::uint8_t> active,
                       bool skip_fooled)
{
    scratch.prepare(net, pool);
    pool.parallelForWithTid(xs.size(), [&](std::size_t i, unsigned tid) {
        if (!active.empty() && !active[i])
            return;
        auto &sl = scratch.slot(tid);
        net.forwardInto(*xs[i], sl.rec, /*train=*/false, sl.arena);
        const std::size_t pred = sl.rec.predictedClass();
        if (!preds_out.empty())
            preds_out[i] = pred;
        if (skip_fooled && pred != labels[i])
            return;
        nn::softmaxCrossEntropyInto(sl.rec.logits(), labels[i],
                                    sl.lossGrad);
        // Input-gradient-only backward: attacks never consume dW, and
        // skipping it roughly halves the conv backward arithmetic.
        // Copy-assign reuses the caller's per-sample buffer.
        grads[i] = net.backwardInputOnly(sl.rec, sl.lossGrad.grad,
                                         sl.arena);
    });
}

void
clipToImageRange(nn::Tensor &t)
{
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = std::clamp(t[i], 0.0f, 1.0f);
}

void
clipToEpsBall(nn::Tensor &adv, const nn::Tensor &origin, double eps)
{
    for (std::size_t i = 0; i < adv.size(); ++i) {
        const float lo = static_cast<float>(origin[i] - eps);
        const float hi = static_cast<float>(origin[i] + eps);
        adv[i] = std::clamp(adv[i], std::max(0.0f, lo), std::min(1.0f, hi));
    }
}

} // namespace ptolemy::attack
