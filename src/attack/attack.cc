#include "attack.hh"

#include <algorithm>
#include <cmath>

#include "nn/loss.hh"

namespace ptolemy::attack
{

double
mseDistortion(const nn::Tensor &a, const nn::Tensor &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        s += d * d;
    }
    return a.size() == 0 ? 0.0 : s / a.size();
}

double
linfDistortion(const nn::Tensor &a, const nn::Tensor &b)
{
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
    return m;
}

std::size_t
l0Distortion(const nn::Tensor &a, const nn::Tensor &b, double tol)
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::abs(static_cast<double>(a[i]) - b[i]) > tol)
            ++n;
    return n;
}

double
l2Distortion(const nn::Tensor &a, const nn::Tensor &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        s += d * d;
    }
    return std::sqrt(s);
}

nn::Tensor
lossInputGradient(nn::Network &net, const nn::Tensor &x, std::size_t label,
                  double *loss_out)
{
    nn::Tensor grad;
    lossInputGradientInto(net, x, label, grad, loss_out);
    return grad;
}

void
lossInputGradientInto(nn::Network &net, const nn::Tensor &x,
                      std::size_t label, nn::Tensor &grad, double *loss_out)
{
    thread_local nn::Network::Record rec; // reused across gradient queries
    thread_local nn::LossGrad lg;
    net.forwardInto(x, rec);
    nn::softmaxCrossEntropyInto(rec.logits(), label, lg);
    if (loss_out)
        *loss_out = lg.loss;
    grad = net.backward(rec, lg.grad); // copy-assign reuses the buffer
}

void
clipToImageRange(nn::Tensor &t)
{
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = std::clamp(t[i], 0.0f, 1.0f);
}

void
clipToEpsBall(nn::Tensor &adv, const nn::Tensor &origin, double eps)
{
    for (std::size_t i = 0; i < adv.size(); ++i) {
        const float lo = static_cast<float>(origin[i] - eps);
        const float hi = static_cast<float>(origin[i] + eps);
        adv[i] = std::clamp(adv[i], std::max(0.0f, lo), std::min(1.0f, hi));
    }
}

} // namespace ptolemy::attack
