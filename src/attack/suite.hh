/**
 * @file
 * The paper's standard five-attack evaluation suite (Sec. VI-A):
 * BIM, CWL2, DeepFool, FGSM, JSMA — covering L0, L2 and L∞ perturbation
 * measures. All five are deterministic (no per-sample randomness), so
 * the batched engine reproduces the historical sample-serial
 * evaluateSuite output bit-for-bit.
 */

#ifndef PTOLEMY_ATTACK_SUITE_HH
#define PTOLEMY_ATTACK_SUITE_HH

#include <memory>
#include <vector>

#include "attack/attack.hh"

namespace ptolemy::attack
{

/** Build the five standard attacks with default budgets. */
std::vector<std::unique_ptr<Attack>> makeStandardAttacks(
    AttackBudget budget = {});

} // namespace ptolemy::attack

#endif // PTOLEMY_ATTACK_SUITE_HH
