/**
 * @file
 * Carlini-Wagner L2 attack [Carlini'17]: gradient descent on
 * ||delta||^2 + c * max(logit_true - max_other, -kappa).
 *
 * With kappa = 0 the attack stops right at the decision boundary, which
 * produces the "low-confidence rank-1 ≈ rank-2" adversarial samples the
 * paper highlights in its CWL2 discussion (Sec. VII-B).
 *
 * Batched execution fans the candidate batch out sample-parallel on
 * the attack's pool: CW has no early exit (every sample runs the full
 * optimization), so each sample's whole descent runs in one pool task
 * against per-slot scratch — no per-iteration barriers, bit-identical
 * to the sample-serial loop at any thread count.
 */

#ifndef PTOLEMY_ATTACK_CW_HH
#define PTOLEMY_ATTACK_CW_HH

#include "attack/attack.hh"

namespace ptolemy::attack
{

class CarliniWagnerL2 : public Attack
{
  public:
    /**
     * @param c trade-off between distortion and misclassification loss.
     * @param lr gradient-descent learning rate.
     * @param max_iters optimization steps.
     * @param kappa confidence margin (0 = boundary-grazing samples).
     */
    CarliniWagnerL2(double c = 2.0, double lr = 0.02, int max_iters = 80,
                    double kappa = 0.0)
        : tradeoffC(c), learnRate(lr), maxIters(max_iters), kappa(kappa)
    {}

    std::string name() const override { return "CWL2"; }
    void runBatch(nn::Network &net, std::span<const nn::Tensor *const> xs,
                  std::span<const std::size_t> labels,
                  std::span<AttackResult> results,
                  std::uint64_t index_base = 0) override;

  private:
    double tradeoffC, learnRate;
    int maxIters;
    double kappa;
    AttackScratch scratch;
};

} // namespace ptolemy::attack

#endif // PTOLEMY_ATTACK_CW_HH
