/**
 * @file
 * Adversarial attack interface, batched attack engine and distortion
 * metrics.
 *
 * The paper evaluates five non-adaptive attacks covering all three input
 * perturbation measures — BIM (L∞), CW-L2 (L2), DeepFool (L2), FGSM (L∞),
 * JSMA (L0) — plus an adaptive activation-matching attack (Sec. VII-E).
 * Every attack here perturbs a clean, correctly-classified input into one
 * the model mispredicts, while this library's detector tries to flag it.
 *
 * Attacks are batched: the primary entry point is Attack::runBatch,
 * which drives whole candidate batches through the network's
 * record-based forward/backward surface concurrently (layers are
 * stateless across passes, so many samples can share one network).
 * The determinism contract, which core::evaluateSuite relies on, is:
 *
 *   The adversarial produced for a sample depends only on the attack's
 *   parameters, the input, the label, and the sample's global index
 *   (index_base + position). It never depends on batch composition,
 *   batch order, chunk size or thread count — serial run() calls, one
 *   64-sample runBatch, and a pool-parallel runBatch all produce
 *   bit-identical results.
 *
 * Randomized attacks (PGD's random start, the adaptive attack's target
 * sampling) uphold the contract by re-keying their RNG from
 * (seed, sampleIndex) via sampleKey() instead of sharing a stream
 * across samples.
 */

#ifndef PTOLEMY_ATTACK_ATTACK_HH
#define PTOLEMY_ATTACK_ATTACK_HH

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "nn/loss.hh"
#include "nn/network.hh"
#include "nn/tensor.hh"

namespace ptolemy
{
class ThreadPool;
}

namespace ptolemy::attack
{

/** Outcome of one attack attempt. */
struct AttackResult
{
    nn::Tensor adversarial; ///< perturbed input, clipped to [0,1]
    bool success = false;   ///< model prediction changed away from truth
    double mse = 0.0;       ///< mean-squared distortion vs the clean input
    int iterations = 0;     ///< optimizer iterations consumed
};

/** Shared perturbation budget knobs. */
struct AttackBudget
{
    double epsilon = 0.08;  ///< L∞ ball radius (where applicable)
    double stepSize = 0.01; ///< per-iteration step
    int maxIters = 40;
};

/**
 * Per-slot forward/backward scratch for the batched attack engine.
 *
 * One Slot per thread-pool slot; every buffer is reused across
 * iterations and across runBatch calls, so a warmed-up attack batch
 * loop performs no heap allocation. Slots are pure scratch: results
 * are always keyed by sample index, never by the executing slot, which
 * is what keeps batched attacks bit-identical across thread counts.
 */
struct AttackScratch
{
    struct Slot
    {
        nn::Network::Record rec;    ///< primary forward record
        nn::Network::Record auxRec; ///< secondary record (target passes)
        nn::Network::GradArena arena; ///< forward/backward scratch
        nn::LossGrad lossGrad;      ///< cross-entropy loss scratch
        nn::Tensor logitSeed;       ///< logit-space backward seed
        nn::Tensor grad;            ///< input-gradient working copy
        nn::Tensor adv;             ///< per-sample working input
        nn::Tensor best;            ///< best-so-far candidate
        std::vector<std::pair<int, nn::Tensor>> nodeSeeds; ///< backwardMulti
        std::vector<nn::Tensor> acts;    ///< activation-target scratch
        std::vector<std::size_t> idx;    ///< index-ordering scratch
        std::vector<std::uint8_t> flags; ///< per-element marks
    };

    std::vector<Slot> slots;

    /**
     * Size the slot table for @p pool and warm the network's parameter
     * index so concurrent backward passes never race on building it.
     * Never shrinks (warmed buffers are kept).
     */
    void prepare(nn::Network &net, ThreadPool &pool);

    /** Slot for the executing thread. Out-of-range ids (a nested
     *  parallel section running inline under a foreign worker's id)
     *  clamp to slot 0, which is safe because inline sections are
     *  single-threaded by construction. */
    Slot &slot(unsigned tid)
    {
        return slots[tid < slots.size() ? tid : 0];
    }
};

/**
 * Abstract attack.
 *
 * Implementations are stateful (they own reusable batch scratch), so a
 * single Attack instance must not be driven from two threads at once;
 * the parallelism lives inside runBatch, on the attack's pool.
 */
class Attack
{
  public:
    virtual ~Attack() = default;

    /** Short name matching the paper ("FGSM", "BIM", ...). */
    virtual std::string name() const = 0;

    /**
     * Attack @p net on every input of a batch.
     *
     * @param xs batch inputs (borrowed; one pointer per sample).
     * @param labels true class per sample (same length as @p xs).
     * @param results one AttackResult per sample (same length as
     *        @p xs); existing tensor buffers are reused, so passing a
     *        persistent vector keeps repeated batches allocation-free.
     * @param index_base global index of xs[0]; sample i has index
     *        index_base + i. Randomized attacks key their RNG from it
     *        (see sampleKey), making results independent of how a
     *        stream of samples is chunked into batches.
     *
     * The network's member scratch is clobbered (forward/backward
     * passes); the network's weights are never modified.
     */
    virtual void runBatch(nn::Network &net,
                          std::span<const nn::Tensor *const> xs,
                          std::span<const std::size_t> labels,
                          std::span<AttackResult> results,
                          std::uint64_t index_base = 0) = 0;

    /**
     * One-sample convenience wrapper over runBatch.
     * @param sample_index the sample's global index (see runBatch);
     *        calling run for i = 0..n-1 with sample_index = i is
     *        bit-identical to one runBatch over the same samples.
     */
    AttackResult run(nn::Network &net, const nn::Tensor &x,
                     std::size_t label, std::uint64_t sample_index = 0);

    /**
     * Pool the batch engine fans out on; nullptr (the default) means
     * the process-wide globalPool(). Results are bit-identical for any
     * pool size — this knob exists for throughput control and for
     * determinism tests that pin explicit thread counts.
     */
    void setPool(ThreadPool *pool) { poolOverride = pool; }

  protected:
    /** Resolved pool for this attack (override or globalPool()). */
    ThreadPool &pool() const;

  private:
    ThreadPool *poolOverride = nullptr;
};

/** Mean squared error between two same-shaped tensors. */
double mseDistortion(const nn::Tensor &a, const nn::Tensor &b);

/** L∞ distance. */
double linfDistortion(const nn::Tensor &a, const nn::Tensor &b);

/** Count of changed elements (L0); differences strictly above
 *  @p tol count as changed. */
std::size_t l0Distortion(const nn::Tensor &a, const nn::Tensor &b,
                         double tol = 1e-6);

/** L2 distance. */
double l2Distortion(const nn::Tensor &a, const nn::Tensor &b);

/**
 * Deterministic per-sample RNG key: mixes an attack seed with a global
 * sample index (SplitMix64 finalizer). Randomized attacks seed one Rng
 * per sample from this, so serial, batched and multi-threaded runs all
 * draw identical noise for a given sample index.
 */
std::uint64_t sampleKey(std::uint64_t seed, std::uint64_t sample_index);

/**
 * dLoss/dInput of the cross-entropy loss at (@p x, @p label).
 * Clobbers the network's layer state. @p loss_out receives the loss.
 */
nn::Tensor lossInputGradient(nn::Network &net, const nn::Tensor &x,
                             std::size_t label, double *loss_out = nullptr);

/**
 * As lossInputGradient, but writing into a caller-owned tensor so
 * iterative attacks stay allocation-free across iterations.
 */
void lossInputGradientInto(nn::Network &net, const nn::Tensor &x,
                           std::size_t label, nn::Tensor &grad,
                           double *loss_out = nullptr);

/**
 * Batched dLoss/dInput of the cross-entropy loss: for every active
 * sample i, forward xs[i] through @p net (record-based, one pool slot
 * per concurrent pass) and back-propagate softmax-CE at labels[i] into
 * grads[i]. The per-sample forward record serves both the prediction
 * check and the backward pass, so one batched iteration costs one
 * forward + one backward — the sample-serial attack loop paid an extra
 * prediction forward per iteration.
 *
 * @param xs batch inputs (borrowed).
 * @param labels true class per sample.
 * @param grads per-sample gradient destinations (buffers reused).
 * @param scratch per-slot scratch; prepare()d for @p pool on entry.
 * @param pool pool to fan the batch out on; samples are independent,
 *        so any interleaving is bit-identical to the serial loop.
 * @param preds_out when non-empty, preds_out[i] receives the argmax
 *        class of xs[i] (from the same forward pass).
 * @param active when non-empty, samples with active[i] == 0 are
 *        skipped entirely (their outputs are left untouched).
 * @param skip_fooled when true, the backward pass is skipped for
 *        samples already predicted away from labels[i] (grads[i] is
 *        left untouched); iterative attacks use this as their
 *        per-sample early exit.
 */
void lossInputGradientBatch(nn::Network &net,
                            std::span<const nn::Tensor *const> xs,
                            std::span<const std::size_t> labels,
                            std::span<nn::Tensor> grads,
                            AttackScratch &scratch, ThreadPool &pool,
                            std::span<std::size_t> preds_out = {},
                            std::span<const std::uint8_t> active = {},
                            bool skip_fooled = false);

/** Clip every element to [0, 1] (valid image range). */
void clipToImageRange(nn::Tensor &t);

/** Clip @p adv into the L∞ ball of radius @p eps around @p origin,
 *  then to [0,1]. */
void clipToEpsBall(nn::Tensor &adv, const nn::Tensor &origin, double eps);

} // namespace ptolemy::attack

#endif // PTOLEMY_ATTACK_ATTACK_HH
