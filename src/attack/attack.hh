/**
 * @file
 * Adversarial attack interface and distortion metrics.
 *
 * The paper evaluates five non-adaptive attacks covering all three input
 * perturbation measures — BIM (L∞), CW-L2 (L2), DeepFool (L2), FGSM (L∞),
 * JSMA (L0) — plus an adaptive activation-matching attack (Sec. VII-E).
 * Every attack here perturbs a clean, correctly-classified input into one
 * the model mispredicts, while this library's detector tries to flag it.
 */

#ifndef PTOLEMY_ATTACK_ATTACK_HH
#define PTOLEMY_ATTACK_ATTACK_HH

#include <string>

#include "nn/network.hh"
#include "nn/tensor.hh"

namespace ptolemy::attack
{

/** Outcome of one attack attempt. */
struct AttackResult
{
    nn::Tensor adversarial; ///< perturbed input, clipped to [0,1]
    bool success = false;   ///< model prediction changed away from truth
    double mse = 0.0;       ///< mean-squared distortion vs the clean input
    int iterations = 0;     ///< optimizer iterations consumed
};

/** Shared perturbation budget knobs. */
struct AttackBudget
{
    double epsilon = 0.08;  ///< L∞ ball radius (where applicable)
    double stepSize = 0.01; ///< per-iteration step
    int maxIters = 40;
};

/**
 * Abstract attack.
 */
class Attack
{
  public:
    virtual ~Attack() = default;

    /** Short name matching the paper ("FGSM", "BIM", ...). */
    virtual std::string name() const = 0;

    /**
     * Attack @p net on input @p x whose true class is @p label.
     * The network's layer state is clobbered (forward/backward passes).
     */
    virtual AttackResult run(nn::Network &net, const nn::Tensor &x,
                             std::size_t label) = 0;
};

/** Mean squared error between two same-shaped tensors. */
double mseDistortion(const nn::Tensor &a, const nn::Tensor &b);

/** L∞ distance. */
double linfDistortion(const nn::Tensor &a, const nn::Tensor &b);

/** Count of changed elements (L0). */
std::size_t l0Distortion(const nn::Tensor &a, const nn::Tensor &b,
                         double tol = 1e-6);

/** L2 distance. */
double l2Distortion(const nn::Tensor &a, const nn::Tensor &b);

/**
 * dLoss/dInput of the cross-entropy loss at (@p x, @p label).
 * Clobbers the network's layer state. @p loss_out receives the loss.
 */
nn::Tensor lossInputGradient(nn::Network &net, const nn::Tensor &x,
                             std::size_t label, double *loss_out = nullptr);

/**
 * As lossInputGradient, but writing into a caller-owned tensor so
 * iterative attacks (BIM/PGD) stay allocation-free across iterations.
 */
void lossInputGradientInto(nn::Network &net, const nn::Tensor &x,
                           std::size_t label, nn::Tensor &grad,
                           double *loss_out = nullptr);

/** Clip every element to [0, 1] (valid image range). */
void clipToImageRange(nn::Tensor &t);

/** Clip @p adv into the L∞ ball of radius @p eps around @p origin,
 *  then to [0,1]. */
void clipToEpsBall(nn::Tensor &adv, const nn::Tensor &origin, double eps);

} // namespace ptolemy::attack

#endif // PTOLEMY_ATTACK_ATTACK_HH
