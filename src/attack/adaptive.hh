/**
 * @file
 * Adaptive activation-matching attack (paper Sec. VII-E).
 *
 * The attacker knows everything about the defense. Since the path
 * objective (force the adversarial sample to have the same activation path
 * as a benign input) is non-differentiable, the paper relaxes it: add
 * noise delta to x so that the activations of the last n layers match a
 * benign target x_t of a different class, minimizing
 * sum_i ||z_i(x+delta) - z_i(x_t)||^2 with PGD. Five candidate targets of
 * distinct classes are tried and the lowest-loss sample is kept.
 *
 * AT-n considers the last n weighted layers; larger n is a stronger
 * attack (paper Fig. 13).
 *
 * Batched execution fans the candidate batch out sample-parallel on the
 * attack's pool: each sample's nested target/PGD loop (with its own
 * data-dependent target draws and early exits) runs in one pool task
 * against per-slot scratch, so a lockstep mask would only add barriers.
 *
 * Randomness contract: target sampling for a sample draws from an Rng
 * seeded with sampleKey(seed, index_base + i) — keyed by the sample's
 * global index, never by batch position or a shared per-instance
 * stream — so serial, batched and multi-threaded runs produce
 * identical adversarials for the same (input, label, sample index).
 */

#ifndef PTOLEMY_ATTACK_ADAPTIVE_HH
#define PTOLEMY_ATTACK_ADAPTIVE_HH

#include <cstdint>

#include "attack/attack.hh"
#include "nn/trainer.hh"

namespace ptolemy::attack
{

class AdaptiveActivationAttack : public Attack
{
  public:
    /**
     * @param layers_considered n in AT-n: how many trailing weighted
     *        layers' activations the loss matches.
     * @param target_pool benign samples to draw activation targets from
     *        (borrowed; typically the training set).
     * @param num_targets candidate targets of distinct classes (paper: 5).
     * @param iters PGD iterations per target.
     * @param lr PGD learning rate.
     */
    AdaptiveActivationAttack(int layers_considered,
                             const nn::Dataset *target_pool,
                             int num_targets = 5, int iters = 60,
                             double lr = 0.08,
                             std::uint64_t seed = 0xADA97);

    std::string name() const override
    {
        return "AT" + std::to_string(layersConsidered);
    }

    void runBatch(nn::Network &net, std::span<const nn::Tensor *const> xs,
                  std::span<const std::size_t> labels,
                  std::span<AttackResult> results,
                  std::uint64_t index_base = 0) override;

  private:
    int layersConsidered;
    const nn::Dataset *targetPool;
    int numTargets;
    int iters;
    double lr;
    std::uint64_t seed;
    AttackScratch scratch;
    std::vector<int> zNodes; ///< activation nodes, shared per batch
};

} // namespace ptolemy::attack

#endif // PTOLEMY_ATTACK_ADAPTIVE_HH
