/**
 * @file
 * Adaptive activation-matching attack (paper Sec. VII-E).
 *
 * The attacker knows everything about the defense. Since the path
 * objective (force the adversarial sample to have the same activation path
 * as a benign input) is non-differentiable, the paper relaxes it: add
 * noise delta to x so that the activations of the last n layers match a
 * benign target x_t of a different class, minimizing
 * sum_i ||z_i(x+delta) - z_i(x_t)||^2 with PGD. Five candidate targets of
 * distinct classes are tried and the lowest-loss sample is kept.
 *
 * AT-n considers the last n weighted layers; larger n is a stronger
 * attack (paper Fig. 13).
 */

#ifndef PTOLEMY_ATTACK_ADAPTIVE_HH
#define PTOLEMY_ATTACK_ADAPTIVE_HH

#include <cstdint>

#include "attack/attack.hh"
#include "nn/trainer.hh"

namespace ptolemy::attack
{

class AdaptiveActivationAttack : public Attack
{
  public:
    /**
     * @param layers_considered n in AT-n: how many trailing weighted
     *        layers' activations the loss matches.
     * @param target_pool benign samples to draw activation targets from
     *        (borrowed; typically the training set).
     * @param num_targets candidate targets of distinct classes (paper: 5).
     * @param iters PGD iterations per target.
     * @param lr PGD learning rate.
     */
    AdaptiveActivationAttack(int layers_considered,
                             const nn::Dataset *target_pool,
                             int num_targets = 5, int iters = 60,
                             double lr = 0.08,
                             std::uint64_t seed = 0xADA97);

    std::string name() const override
    {
        return "AT" + std::to_string(layersConsidered);
    }

    AttackResult run(nn::Network &net, const nn::Tensor &x,
                     std::size_t label) override;

  private:
    int layersConsidered;
    const nn::Dataset *targetPool;
    int numTargets;
    int iters;
    double lr;
    std::uint64_t seed;
};

} // namespace ptolemy::attack

#endif // PTOLEMY_ATTACK_ADAPTIVE_HH
