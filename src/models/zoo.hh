/**
 * @file
 * Model zoo: channel-scaled versions of the networks the paper evaluates.
 *
 * Layer *counts* match the originals (that is what the extraction sweeps
 * and the overhead trends depend on); channel widths are scaled down so the
 * models train from scratch on the synthetic datasets in seconds-to-minutes
 * on a CPU. See DESIGN.md's substitution table.
 *
 *  - MiniAlexNet    : 8 weighted layers (5 conv + 3 FC), like AlexNet.
 *  - MiniResNet-N   : conv1 + 4 stages of basic blocks + FC; N=18 uses
 *                     2 blocks/stage (exactly 18 weighted layers), N=26
 *                     uses 3 blocks/stage (stands in for ResNet-50 as the
 *                     "deeper residual net" data point).
 *  - MiniVGG16      : 13 conv + 3 FC = 16 weighted layers.
 *  - MiniInception  : stem + parallel-branch (1x1 / 3x3) modules + FC.
 *  - MiniDenseNet   : dense blocks with concatenated features + FC.
 */

#ifndef PTOLEMY_MODELS_ZOO_HH
#define PTOLEMY_MODELS_ZOO_HH

#include <string>

#include "nn/network.hh"

namespace ptolemy::models
{

/** AlexNet-class model: 5 conv + 3 FC. Input 3×16×16. */
nn::Network makeMiniAlexNet(int num_classes);

/** ResNet-class model with @p blocks_per_stage basic blocks per stage
 *  (2 → 18 weighted layers, 3 → 26). Input 3×16×16. */
nn::Network makeMiniResNet(int num_classes, int blocks_per_stage = 2);

/** VGG16-class model: 13 conv + 3 FC. Input 3×16×16. */
nn::Network makeMiniVGG16(int num_classes);

/** Inception-class model with two parallel-branch modules. */
nn::Network makeMiniInception(int num_classes);

/** DenseNet-class model with two dense blocks. */
nn::Network makeMiniDenseNet(int num_classes);

/**
 * Factory by name: "alexnet", "resnet18", "resnet26", "vgg16",
 * "inception", "densenet". Throws std::invalid_argument on unknown names.
 */
nn::Network makeByName(const std::string &name, int num_classes);

} // namespace ptolemy::models

#endif // PTOLEMY_MODELS_ZOO_HH
