#include "zoo.hh"

#include <memory>
#include <stdexcept>

#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/linear.hh"

namespace ptolemy::models
{

using nn::Add;
using nn::Concat;
using nn::Conv2d;
using nn::DownsamplePad;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::Linear;
using nn::MaxPool2d;
using nn::Network;
using nn::Norm2d;
using nn::ReLU;

nn::Network
makeMiniAlexNet(int num_classes)
{
    Network net("MiniAlexNet", nn::mapShape(3, 16, 16));
    net.add(std::make_unique<Conv2d>("conv1", 3, 12, 3, 1, 1));
    net.add(std::make_unique<ReLU>("relu1"));
    net.add(std::make_unique<MaxPool2d>("pool1", 2)); // 8x8
    net.add(std::make_unique<Conv2d>("conv2", 12, 24, 3, 1, 1));
    net.add(std::make_unique<ReLU>("relu2"));
    net.add(std::make_unique<MaxPool2d>("pool2", 2)); // 4x4
    net.add(std::make_unique<Conv2d>("conv3", 24, 32, 3, 1, 1));
    net.add(std::make_unique<ReLU>("relu3"));
    net.add(std::make_unique<Conv2d>("conv4", 32, 32, 3, 1, 1));
    net.add(std::make_unique<ReLU>("relu4"));
    net.add(std::make_unique<Conv2d>("conv5", 32, 24, 3, 1, 1));
    net.add(std::make_unique<ReLU>("relu5"));
    net.add(std::make_unique<MaxPool2d>("pool5", 2)); // 2x2
    net.add(std::make_unique<Flatten>("flat"));
    net.add(std::make_unique<Linear>("fc6", 24 * 2 * 2, 64));
    net.add(std::make_unique<ReLU>("relu6"));
    net.add(std::make_unique<Linear>("fc7", 64, 48));
    net.add(std::make_unique<ReLU>("relu7"));
    net.add(std::make_unique<Linear>("fc8", 48, num_classes));
    return net;
}

namespace
{

/**
 * Append one ResNet basic block (conv-norm-relu-conv-norm + skip, relu).
 *
 * @param net network under construction.
 * @param tag name prefix for the block's layers.
 * @param in_id node feeding the block.
 * @param channels block width; when @p downsample the input has
 *        channels/2 and the skip goes through DownsamplePad.
 * @return output node id.
 */
int
basicBlock(Network &net, const std::string &tag, int in_id, int channels,
           bool downsample)
{
    const int in_ch = downsample ? channels / 2 : channels;
    const int stride = downsample ? 2 : 1;
    int skip = in_id;
    if (downsample)
        skip = net.add(std::make_unique<DownsamplePad>(tag + "_skip"),
                       {in_id});
    int x = net.add(std::make_unique<Conv2d>(tag + "_conv1", in_ch, channels,
                                             3, stride, 1), {in_id});
    x = net.add(std::make_unique<Norm2d>(tag + "_norm1", channels), {x});
    x = net.add(std::make_unique<ReLU>(tag + "_relu1"), {x});
    x = net.add(std::make_unique<Conv2d>(tag + "_conv2", channels, channels,
                                         3, 1, 1), {x});
    x = net.add(std::make_unique<Norm2d>(tag + "_norm2", channels), {x});
    x = net.add(std::make_unique<Add>(tag + "_add"), {x, skip});
    return net.add(std::make_unique<ReLU>(tag + "_relu2"), {x});
}

} // namespace

nn::Network
makeMiniResNet(int num_classes, int blocks_per_stage)
{
    const int name_layers = 2 + blocks_per_stage * 4 * 2; // conv1+fc+convs
    Network net("MiniResNet" + std::to_string(name_layers),
                nn::mapShape(3, 16, 16));
    int x = net.add(std::make_unique<Conv2d>("conv1", 3, 8, 3, 1, 1));
    x = net.add(std::make_unique<Norm2d>("norm1", 8), {x});
    x = net.add(std::make_unique<ReLU>("relu1"), {x});

    const int widths[4] = {8, 16, 32, 64};
    for (int stage = 0; stage < 4; ++stage) {
        for (int blk = 0; blk < blocks_per_stage; ++blk) {
            const bool down = stage > 0 && blk == 0;
            const std::string tag = "s" + std::to_string(stage + 1) + "b" +
                                    std::to_string(blk + 1);
            x = basicBlock(net, tag, x, widths[stage], down);
        }
    }
    x = net.add(std::make_unique<GlobalAvgPool>("gap"), {x});
    net.add(std::make_unique<Linear>("fc", 64, num_classes), {x});
    return net;
}

nn::Network
makeMiniVGG16(int num_classes)
{
    Network net("MiniVGG16", nn::mapShape(3, 16, 16));
    auto conv_relu = [&](const std::string &tag, int in_c, int out_c) {
        net.add(std::make_unique<Conv2d>(tag, in_c, out_c, 3, 1, 1));
        net.add(std::make_unique<ReLU>(tag + "_relu"));
    };
    conv_relu("conv1_1", 3, 8);
    conv_relu("conv1_2", 8, 8);
    net.add(std::make_unique<MaxPool2d>("pool1", 2)); // 8x8
    conv_relu("conv2_1", 8, 16);
    conv_relu("conv2_2", 16, 16);
    net.add(std::make_unique<MaxPool2d>("pool2", 2)); // 4x4
    conv_relu("conv3_1", 16, 24);
    conv_relu("conv3_2", 24, 24);
    conv_relu("conv3_3", 24, 24);
    net.add(std::make_unique<MaxPool2d>("pool3", 2)); // 2x2
    conv_relu("conv4_1", 24, 32);
    conv_relu("conv4_2", 32, 32);
    conv_relu("conv4_3", 32, 32);
    net.add(std::make_unique<MaxPool2d>("pool4", 2)); // 1x1
    conv_relu("conv5_1", 32, 32);
    conv_relu("conv5_2", 32, 32);
    conv_relu("conv5_3", 32, 32);
    net.add(std::make_unique<Flatten>("flat"));
    net.add(std::make_unique<Linear>("fc1", 32, 48));
    net.add(std::make_unique<ReLU>("fc1_relu"));
    net.add(std::make_unique<Linear>("fc2", 48, 48));
    net.add(std::make_unique<ReLU>("fc2_relu"));
    net.add(std::make_unique<Linear>("fc3", 48, num_classes));
    return net;
}

nn::Network
makeMiniInception(int num_classes)
{
    Network net("MiniInception", nn::mapShape(3, 16, 16));
    int stem = net.add(std::make_unique<Conv2d>("stem", 3, 8, 3, 1, 1));
    stem = net.add(std::make_unique<ReLU>("stem_relu"), {stem});
    stem = net.add(std::make_unique<MaxPool2d>("stem_pool", 2), {stem});

    auto module = [&](const std::string &tag, int in_id, int in_c,
                      int branch_c) {
        int a = net.add(std::make_unique<Conv2d>(tag + "_b1", in_c, branch_c,
                                                 1, 1, 0), {in_id});
        a = net.add(std::make_unique<ReLU>(tag + "_b1r"), {a});
        int b = net.add(std::make_unique<Conv2d>(tag + "_b3", in_c, branch_c,
                                                 3, 1, 1), {in_id});
        b = net.add(std::make_unique<ReLU>(tag + "_b3r"), {b});
        return net.add(std::make_unique<Concat>(tag + "_cat"), {a, b});
    };

    int x = module("inc1", stem, 8, 8);   // -> 16ch, 8x8
    x = net.add(std::make_unique<MaxPool2d>("pool1", 2), {x}); // 4x4
    x = module("inc2", x, 16, 16);        // -> 32ch, 4x4
    x = net.add(std::make_unique<GlobalAvgPool>("gap"), {x});
    net.add(std::make_unique<Linear>("fc", 32, num_classes), {x});
    return net;
}

nn::Network
makeMiniDenseNet(int num_classes)
{
    Network net("MiniDenseNet", nn::mapShape(3, 16, 16));
    int x = net.add(std::make_unique<Conv2d>("stem", 3, 8, 3, 1, 1));
    x = net.add(std::make_unique<ReLU>("stem_relu"), {x});
    x = net.add(std::make_unique<MaxPool2d>("stem_pool", 2), {x}); // 8x8

    auto dense_layer = [&](const std::string &tag, int in_id, int in_c,
                           int growth) {
        int y = net.add(std::make_unique<Conv2d>(tag, in_c, growth, 3, 1, 1),
                        {in_id});
        y = net.add(std::make_unique<ReLU>(tag + "_relu"), {y});
        return net.add(std::make_unique<Concat>(tag + "_cat"), {in_id, y});
    };

    x = dense_layer("d1_1", x, 8, 8);   // 16
    x = dense_layer("d1_2", x, 16, 8);  // 24
    x = net.add(std::make_unique<Conv2d>("trans", 24, 16, 1, 1, 0), {x});
    x = net.add(std::make_unique<ReLU>("trans_relu"), {x});
    x = net.add(std::make_unique<MaxPool2d>("trans_pool", 2), {x}); // 4x4
    x = dense_layer("d2_1", x, 16, 8);  // 24
    x = dense_layer("d2_2", x, 24, 8);  // 32
    x = net.add(std::make_unique<GlobalAvgPool>("gap"), {x});
    net.add(std::make_unique<Linear>("fc", 32, num_classes), {x});
    return net;
}

nn::Network
makeByName(const std::string &name, int num_classes)
{
    if (name == "alexnet")
        return makeMiniAlexNet(num_classes);
    if (name == "resnet18")
        return makeMiniResNet(num_classes, 2);
    if (name == "resnet26")
        return makeMiniResNet(num_classes, 3);
    if (name == "vgg16")
        return makeMiniVGG16(num_classes);
    if (name == "inception")
        return makeMiniInception(num_classes);
    if (name == "densenet")
        return makeMiniDenseNet(num_classes);
    throw std::invalid_argument("unknown model name: " + name);
}

} // namespace ptolemy::models
