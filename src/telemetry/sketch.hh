/**
 * @file
 * Bounded-memory streaming summaries for production telemetry: a
 * Count-Min sketch sized from an explicit (ε, δ) error bound, and a
 * fixed-bin score histogram with a typed poison counter.
 *
 * Sizing follows the SketchConf idiom: the operator states the error
 * they can tolerate and the sketch derives its geometry from it, so
 * memory is provably bounded and the error is a configuration input,
 * not an accident of a hand-picked width. For a Count-Min sketch of
 * width w = ⌈e/ε⌉ and depth d = ⌈ln(1/δ)⌉ over a stream of N
 * increments, every point query satisfies
 *
 *     true(k) ≤ estimate(k) ≤ true(k) + ε·N   with probability ≥ 1−δ
 *
 * (Cormode & Muthukrishnan). The width is rounded up to a power of two
 * so row indexing is a mask, which only grows w and therefore only
 * tightens the bound.
 *
 * Determinism contract (the whole telemetry layer leans on it): every
 * counter is an integer, updates are += 1, and merging two summaries is
 * element-wise integer addition — commutative and associative exactly.
 * Aggregates assembled from per-slot shards are therefore bit-identical
 * regardless of which pool slot ingested which record, i.e. across any
 * thread count and any scheduling. Nothing in this header stores a
 * float accumulation.
 */

#ifndef PTOLEMY_TELEMETRY_SKETCH_HH
#define PTOLEMY_TELEMETRY_SKETCH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitvector.hh"

namespace ptolemy::telemetry
{

/**
 * Target point-query error bound: estimates exceed the true count by at
 * most epsilon·N (N = total increments) with probability ≥ 1 − delta.
 * The sketch derives width/depth — and so its memory — from this.
 */
struct ErrorBound
{
    double epsilon = 1.0 / 256.0; ///< additive error as a fraction of N
    double delta = 0.01;          ///< failure probability of the bound
};

/**
 * Count-Min sketch over 64-bit keys with (ε, δ)-derived geometry.
 *
 * Rows hash with independent multiply-xorshift mixers seeded from a
 * fixed per-row constant, so two sketches built from the same
 * (ErrorBound, seed) are structurally identical and mergeable.
 */
class CountMinSketch
{
  public:
    CountMinSketch() = default;

    /** Derive width/depth from @p bound (see file comment) and allocate
     *  all counters up front; no allocation happens after this. */
    explicit CountMinSketch(const ErrorBound &bound,
                            std::uint64_t seed = 0x7E1E3E7);

    std::size_t width() const { return rowWidth; }
    std::size_t depth() const { return numRows; }
    const ErrorBound &bound() const { return cfg; }

    /** Total increments ingested (the N of the ε·N bound). */
    std::uint64_t itemsAdded() const { return total; }

    /** Counter storage in bytes (the provably bounded footprint). */
    std::size_t memoryBytes() const
    {
        return counters.size() * sizeof(std::uint32_t);
    }

    /** Count @p n occurrences of @p key. */
    void add(std::uint64_t key, std::uint32_t n = 1);

    /** Count every set bit index of @p path as one key occurrence (the
     *  path-bit ingest primitive; one tzcnt loop over the raw words). */
    void addPathBits(const BitVector &path);

    /** Point query: min over rows; never undercounts. */
    std::uint64_t estimate(std::uint64_t key) const;

    /**
     * Element-wise merge of @p other into this (shard reduction). Both
     * sketches must have been built from the same (bound, seed) — same
     * geometry, same hashes — which is asserted. Integer addition, so
     * any merge order yields bit-identical counters.
     */
    void mergeFrom(const CountMinSketch &other);

    /** Zero every counter, keeping the geometry (window reset). */
    void reset();

    /** Raw counters, row-major (tests, hashing sealed windows). */
    const std::vector<std::uint32_t> &rawCounters() const
    {
        return counters;
    }

  private:
    std::size_t rowIndex(std::size_t row, std::uint64_t key) const;

    ErrorBound cfg;
    std::uint64_t seed = 0;
    std::size_t rowWidth = 0; ///< power of two, ≥ ⌈e/ε⌉
    std::size_t numRows = 0;  ///< ⌈ln(1/δ)⌉
    std::uint64_t mask = 0;   ///< rowWidth − 1
    std::uint64_t total = 0;
    std::vector<std::uint32_t> counters;   ///< depth × width, row-major
    std::vector<std::uint64_t> rowSeeds;   ///< per-row mixer constants
};

/**
 * Fixed-bin histogram over [0, 1] for detector scores (and for derived
 * per-record statistics like path divergence, which live in the same
 * range). Non-finite values — a poisoned activation propagating NaN/Inf
 * through the forest — land in a dedicated typed counter, never in a
 * bin: they cannot shift a quantile, distort a distance, or corrupt a
 * merge. All counters are integers (see determinism contract above).
 */
class ScoreHistogram
{
  public:
    ScoreHistogram() = default;

    explicit ScoreHistogram(std::size_t num_bins);

    std::size_t bins() const { return counts.size(); }

    /** Finite observations binned so far. */
    std::uint64_t total() const { return finiteTotal; }

    /** Non-finite observations routed to the typed poison counter. */
    std::uint64_t poisoned() const { return poisonCount; }

    /** Bin @p v: finite values clamp to [0, 1] and increment exactly
     *  one bin; NaN/Inf increment poisoned() and nothing else. */
    void add(double v);

    void mergeFrom(const ScoreHistogram &other);

    void reset();

    std::uint64_t count(std::size_t bin) const { return counts[bin]; }
    const std::vector<std::uint64_t> &rawCounts() const { return counts; }

    /**
     * Quantile @p q ∈ [0, 1] over the finite observations: the upper
     * edge of the first bin whose cumulative count reaches ⌈q·total⌉.
     * Deterministic given identical counts; poisoned observations are
     * excluded by construction. Returns 0 on an empty histogram.
     */
    double quantile(double q) const;

    /** Fraction of finite observations in bins at or above @p v's bin
     *  (e.g. the currently-flagged fraction at a decision threshold). */
    double fractionAtLeast(double v) const;

    /**
     * L1 distance between the two normalized bin distributions,
     * in [0, 2]. Empty histograms are treated as uniform-free: distance
     * to a non-empty one is 2 (fully disjoint), between two empties 0.
     */
    double l1Distance(const ScoreHistogram &other) const;

  private:
    std::size_t binOf(double v) const;

    std::vector<std::uint64_t> counts;
    std::uint64_t finiteTotal = 0;
    std::uint64_t poisonCount = 0;
};

} // namespace ptolemy::telemetry

#endif // PTOLEMY_TELEMETRY_SKETCH_HH
