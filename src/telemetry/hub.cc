#include "telemetry/hub.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/thread_pool.hh"

namespace ptolemy::telemetry
{

WindowStats::WindowStats(const TelemetryConfig &cfg)
    : pathBits(cfg.bound, cfg.seed),
      score(cfg.scoreBins),
      divergence(cfg.scoreBins),
      classCounts(std::max<std::size_t>(cfg.numClasses, 1), 0)
{
}

void
WindowStats::mergeFrom(const WindowStats &other)
{
    assert(classCounts.size() == other.classCounts.size() &&
           "WindowStats::mergeFrom: class arity mismatch");
    pathBits.mergeFrom(other.pathBits);
    score.mergeFrom(other.score);
    divergence.mergeFrom(other.divergence);
    for (std::size_t c = 0; c < classCounts.size(); ++c)
        classCounts[c] += other.classCounts[c];
    records += other.records;
    adversarial += other.adversarial;
}

void
WindowStats::reset()
{
    pathBits.reset();
    score.reset();
    divergence.reset();
    std::fill(classCounts.begin(), classCounts.end(), std::uint64_t{0});
    records = 0;
    adversarial = 0;
}

std::size_t
WindowStats::memoryBytes() const
{
    return pathBits.memoryBytes() +
           (score.bins() + divergence.bins() + classCounts.size()) *
               sizeof(std::uint64_t);
}

TelemetryHub::TelemetryHub(TelemetryConfig c) : cfg(std::move(c))
{
    assert(cfg.numClasses > 0 &&
           "TelemetryHub: numClasses must be configured");
    if (cfg.slots == 0)
        cfg.slots = globalPool().size();
    cfg.slots = std::max<std::size_t>(cfg.slots, 1);
    cfg.windowRing = std::max<std::size_t>(cfg.windowRing, 1);
    cfg.eventRing = std::max<std::size_t>(cfg.eventRing, 1);

    shards.reserve(cfg.slots);
    for (std::size_t s = 0; s < cfg.slots; ++s)
        shards.emplace_back(cfg);
    ring.reserve(cfg.windowRing);
    for (std::size_t w = 0; w < cfg.windowRing; ++w)
        ring.push_back(SealedWindow{0, WindowStats(cfg)});
    reference = WindowStats(cfg);
    events.resize(cfg.eventRing);
}

std::size_t
TelemetryHub::memoryBytes() const
{
    std::size_t bytes = reference.memoryBytes();
    for (const auto &s : shards)
        bytes += s.memoryBytes();
    for (const auto &w : ring)
        bytes += w.stats.memoryBytes();
    bytes += events.capacity() * sizeof(DriftEvent);
    return bytes;
}

void
TelemetryHub::ingest(unsigned slot, double score, std::size_t predicted_class,
                     bool adversarial, double divergence,
                     const BitVector *path)
{
    WindowStats &sh = shards[slot < shards.size() ? slot : 0];
    sh.score.add(score);
    sh.divergence.add(divergence);
    sh.classCounts[predicted_class < sh.classCounts.size() ? predicted_class
                                                           : 0] += 1;
    sh.records += 1;
    sh.adversarial += adversarial ? 1 : 0;
    if (path != nullptr)
        sh.pathBits.addPathBits(*path);
}

std::uint64_t
TelemetryHub::pendingRecords() const
{
    std::uint64_t n = 0;
    for (const auto &s : shards)
        n += s.records;
    return n;
}

std::uint64_t
TelemetryHub::drainShardsInto(WindowStats &dst)
{
    dst.reset();
    // Fixed slot order 0..S−1. Integer merges are exactly associative
    // and commutative, so the order does not affect the result — it is
    // fixed anyway so the reduction itself is scheduling-independent.
    for (auto &s : shards) {
        dst.mergeFrom(s);
        s.reset();
    }
    return dst.records;
}

bool
TelemetryHub::maybeSeal()
{
    if (pendingRecords() < cfg.windowRecords)
        return false;
    return sealWindow();
}

bool
TelemetryHub::sealWindow()
{
    std::lock_guard<std::mutex> lk(sealMu);
    if (pendingRecords() == 0)
        return false; // empty window: explicit no-op
    SealedWindow &slot = ring[sealedCount % ring.size()];
    drainShardsInto(slot.stats);
    slot.id = ++sealedCount;
    evaluateDrift(slot);
    return true;
}

std::uint64_t
TelemetryHub::captureReference()
{
    std::lock_guard<std::mutex> lk(sealMu);
    const std::uint64_t n = drainShardsInto(reference);
    referenceSet = n > 0;
    return n;
}

bool
TelemetryHub::hasReference() const
{
    std::lock_guard<std::mutex> lk(sealMu);
    return referenceSet;
}

std::uint64_t
TelemetryHub::windowsSealed() const
{
    std::lock_guard<std::mutex> lk(sealMu);
    return sealedCount;
}

bool
TelemetryHub::windowSummary(std::uint64_t id, WindowSummary &out) const
{
    std::lock_guard<std::mutex> lk(sealMu);
    if (id == 0 || id > sealedCount)
        return false;
    const SealedWindow &win = ring[(id - 1) % ring.size()];
    if (win.id != id)
        return false; // evicted from the ring
    summarize(win, out);
    return true;
}

bool
TelemetryHub::latestWindow(WindowSummary &out) const
{
    std::lock_guard<std::mutex> lk(sealMu);
    if (sealedCount == 0)
        return false;
    summarize(ring[(sealedCount - 1) % ring.size()], out);
    return true;
}

std::uint64_t
TelemetryHub::driftEventCount() const
{
    std::lock_guard<std::mutex> lk(sealMu);
    return eventCount;
}

void
TelemetryHub::driftEvents(std::vector<DriftEvent> &out) const
{
    std::lock_guard<std::mutex> lk(sealMu);
    out.clear();
    const std::uint64_t kept =
        std::min<std::uint64_t>(eventCount, events.size());
    for (std::uint64_t i = eventCount - kept; i < eventCount; ++i)
        out.push_back(events[i % events.size()]);
}

bool
TelemetryHub::proposeThreshold(ThresholdProposal &out,
                               double current_threshold) const
{
    std::lock_guard<std::mutex> lk(sealMu);
    if (sealedCount == 0 || !referenceSet)
        return false;
    const SealedWindow &win = ring[(sealedCount - 1) % ring.size()];
    if (win.stats.score.total() == 0 || reference.score.total() == 0)
        return false;
    // The reference flagged fraction is what the operator calibrated
    // for; the proposal is the window quantile that would flag the same
    // fraction of current traffic. A drifted score distribution then
    // maps back to the calibrated operating point — pending an offline
    // refit and an RCU swapModel(), never an in-place mutation.
    const double refFrac =
        reference.score.fractionAtLeast(current_threshold);
    out.windowId = win.id;
    out.records = win.stats.records;
    out.currentThreshold = current_threshold;
    out.referenceFlaggedFrac = refFrac;
    out.windowFlaggedFrac =
        win.stats.score.fractionAtLeast(current_threshold);
    out.proposedThreshold = win.stats.score.quantile(1.0 - refFrac);
    return true;
}

namespace
{

inline void
fnv1a(std::uint64_t &h, std::uint64_t v)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (v >> (b * 8)) & 0xFF;
        h *= 1099511628211ull;
    }
}

} // namespace

std::uint64_t
TelemetryHub::windowHash(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lk(sealMu);
    if (id == 0 || id > sealedCount)
        return 0;
    const SealedWindow &win = ring[(id - 1) % ring.size()];
    if (win.id != id)
        return 0;
    std::uint64_t h = 1469598103934665603ull;
    fnv1a(h, win.id);
    fnv1a(h, win.stats.records);
    fnv1a(h, win.stats.adversarial);
    for (const auto c : win.stats.pathBits.rawCounters())
        fnv1a(h, c);
    fnv1a(h, win.stats.pathBits.itemsAdded());
    for (const auto c : win.stats.score.rawCounts())
        fnv1a(h, c);
    fnv1a(h, win.stats.score.poisoned());
    for (const auto c : win.stats.divergence.rawCounts())
        fnv1a(h, c);
    fnv1a(h, win.stats.divergence.poisoned());
    for (const auto c : win.stats.classCounts)
        fnv1a(h, c);
    return h;
}

std::uint64_t
TelemetryHub::pathBitEstimate(std::uint64_t bit) const
{
    std::lock_guard<std::mutex> lk(sealMu);
    if (sealedCount == 0)
        return 0;
    return ring[(sealedCount - 1) % ring.size()].stats.pathBits.estimate(bit);
}

void
TelemetryHub::evaluateDrift(const SealedWindow &win)
{
    // Caller holds sealMu.
    if (win.stats.score.poisoned() > 0) {
        pushEvent({win.id, DriftKind::kPoisonedScores,
                   static_cast<double>(win.stats.score.poisoned()), 0.0});
    }
    if (!referenceSet || win.stats.records < cfg.minRecords)
        return;
    const double scoreD = win.stats.score.l1Distance(reference.score);
    if (scoreD > cfg.scoreL1Threshold)
        pushEvent({win.id, DriftKind::kScoreDistribution, scoreD,
                   cfg.scoreL1Threshold});
    const double divD =
        win.stats.divergence.l1Distance(reference.divergence);
    if (divD > cfg.divergenceL1Threshold)
        pushEvent({win.id, DriftKind::kPathDivergence, divD,
                   cfg.divergenceL1Threshold});
}

void
TelemetryHub::pushEvent(const DriftEvent &ev)
{
    events[eventCount % events.size()] = ev;
    ++eventCount;
}

void
TelemetryHub::summarize(const SealedWindow &win, WindowSummary &out) const
{
    out.id = win.id;
    out.records = win.stats.records;
    out.adversarial = win.stats.adversarial;
    out.poisonedScores =
        win.stats.score.poisoned() + win.stats.divergence.poisoned();
    out.pathBitIncrements = win.stats.pathBits.itemsAdded();
    out.scoreP50 = win.stats.score.quantile(0.50);
    out.scoreP95 = win.stats.score.quantile(0.95);
    out.scoreP99 = win.stats.score.quantile(0.99);
    out.scoreL1VsReference =
        referenceSet ? win.stats.score.l1Distance(reference.score) : 0.0;
    out.divergenceL1VsReference =
        referenceSet
            ? win.stats.divergence.l1Distance(reference.divergence)
            : 0.0;
}

} // namespace ptolemy::telemetry
