#include "telemetry/sketch.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace ptolemy::telemetry
{

namespace
{

/** Round @p n up to a power of two (≥ 1). */
std::size_t
ceilPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/** splitmix64 finalizer: the per-row key mixer. Full-avalanche, cheap
 *  (two multiplies), and deterministic across platforms. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

CountMinSketch::CountMinSketch(const ErrorBound &bound, std::uint64_t s)
    : cfg(bound), seed(s)
{
    assert(cfg.epsilon > 0.0 && cfg.epsilon <= 1.0 &&
           "CountMinSketch: epsilon must be in (0, 1]");
    assert(cfg.delta > 0.0 && cfg.delta < 1.0 &&
           "CountMinSketch: delta must be in (0, 1)");
    // w = ⌈e/ε⌉ gives E[overcount] ≤ ε·N/e per row; d = ⌈ln(1/δ)⌉
    // independent rows drive P[overcount > ε·N] below δ. Rounding w up
    // to a power of two only widens rows (tightens the bound) and turns
    // the per-update modulo into a mask.
    const double e = 2.718281828459045;
    const auto wantWidth = static_cast<std::size_t>(
        std::ceil(e / cfg.epsilon));
    rowWidth = ceilPow2(std::max<std::size_t>(wantWidth, 2));
    numRows = static_cast<std::size_t>(
        std::ceil(std::log(1.0 / cfg.delta)));
    numRows = std::max<std::size_t>(numRows, 1);
    mask = static_cast<std::uint64_t>(rowWidth) - 1;
    counters.assign(numRows * rowWidth, 0);
    rowSeeds.resize(numRows);
    for (std::size_t r = 0; r < numRows; ++r)
        rowSeeds[r] = mix64(seed + 0x0101010101010101ull * (r + 1));
}

std::size_t
CountMinSketch::rowIndex(std::size_t row, std::uint64_t key) const
{
    return static_cast<std::size_t>(mix64(key ^ rowSeeds[row]) & mask);
}

void
CountMinSketch::add(std::uint64_t key, std::uint32_t n)
{
    total += n;
    for (std::size_t r = 0; r < numRows; ++r)
        counters[r * rowWidth + rowIndex(r, key)] += n;
}

void
CountMinSketch::addPathBits(const BitVector &path)
{
    const auto &words = path.rawWords();
    for (std::size_t w = 0; w < words.size(); ++w) {
        std::uint64_t word = words[w];
        while (word) {
            const auto bit = static_cast<std::uint64_t>(
                __builtin_ctzll(word));
            add(static_cast<std::uint64_t>(w) * 64 + bit);
            word &= word - 1;
        }
    }
}

std::uint64_t
CountMinSketch::estimate(std::uint64_t key) const
{
    if (numRows == 0)
        return 0;
    std::uint64_t best = UINT64_MAX;
    for (std::size_t r = 0; r < numRows; ++r)
        best = std::min<std::uint64_t>(
            best, counters[r * rowWidth + rowIndex(r, key)]);
    return best;
}

void
CountMinSketch::mergeFrom(const CountMinSketch &other)
{
    assert(rowWidth == other.rowWidth && numRows == other.numRows &&
           seed == other.seed &&
           "CountMinSketch::mergeFrom: geometry/seed mismatch");
    for (std::size_t i = 0; i < counters.size(); ++i)
        counters[i] += other.counters[i];
    total += other.total;
}

void
CountMinSketch::reset()
{
    std::fill(counters.begin(), counters.end(), 0u);
    total = 0;
}

ScoreHistogram::ScoreHistogram(std::size_t num_bins)
    : counts(std::max<std::size_t>(num_bins, 1), 0)
{
}

std::size_t
ScoreHistogram::binOf(double v) const
{
    if (v <= 0.0)
        return 0;
    if (v >= 1.0)
        return counts.size() - 1;
    const auto b = static_cast<std::size_t>(
        v * static_cast<double>(counts.size()));
    return std::min(b, counts.size() - 1);
}

void
ScoreHistogram::add(double v)
{
    if (!std::isfinite(v)) {
        // Poisoned observation: typed counter only. It must never move
        // a bin, a quantile or a distance — the drift detector reports
        // poison as its own event class instead.
        ++poisonCount;
        return;
    }
    ++counts[binOf(v)];
    ++finiteTotal;
}

void
ScoreHistogram::mergeFrom(const ScoreHistogram &other)
{
    assert(counts.size() == other.counts.size() &&
           "ScoreHistogram::mergeFrom: bin count mismatch");
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    finiteTotal += other.finiteTotal;
    poisonCount += other.poisonCount;
}

void
ScoreHistogram::reset()
{
    std::fill(counts.begin(), counts.end(), std::uint64_t{0});
    finiteTotal = 0;
    poisonCount = 0;
}

double
ScoreHistogram::quantile(double q) const
{
    if (finiteTotal == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // ⌈q·N⌉ as an integer rank keeps the result a pure function of the
    // integer counts (bit-identical whenever the counts are).
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(finiteTotal)));
    const std::uint64_t want = std::max<std::uint64_t>(rank, 1);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < counts.size(); ++b) {
        cum += counts[b];
        if (cum >= want)
            return static_cast<double>(b + 1) /
                   static_cast<double>(counts.size());
    }
    return 1.0;
}

double
ScoreHistogram::fractionAtLeast(double v) const
{
    if (finiteTotal == 0)
        return 0.0;
    std::uint64_t above = 0;
    for (std::size_t b = binOf(v); b < counts.size(); ++b)
        above += counts[b];
    return static_cast<double>(above) /
           static_cast<double>(finiteTotal);
}

double
ScoreHistogram::l1Distance(const ScoreHistogram &other) const
{
    assert(counts.size() == other.counts.size() &&
           "ScoreHistogram::l1Distance: bin count mismatch");
    if (finiteTotal == 0 && other.finiteTotal == 0)
        return 0.0;
    if (finiteTotal == 0 || other.finiteTotal == 0)
        return 2.0;
    double d = 0.0;
    const auto na = static_cast<double>(finiteTotal);
    const auto nb = static_cast<double>(other.finiteTotal);
    for (std::size_t i = 0; i < counts.size(); ++i)
        d += std::fabs(static_cast<double>(counts[i]) / na -
                       static_cast<double>(other.counts[i]) / nb);
    return d;
}

} // namespace ptolemy::telemetry
