/**
 * @file
 * TelemetryHub: windowed, sharded, bounded-memory production telemetry
 * for the serving tier.
 *
 * A million-user deployment has to watch its own score and path-bit
 * distributions without keeping per-request state. The hub holds one
 * WindowStats shard per pool slot; the serving hot path
 * (DetectorSession::finishDetect) ingests each Decision into the shard
 * of the executing slot — integer counter updates only, no locks, no
 * allocation. Sealing a window merges the shards in fixed slot order
 * into a preallocated ring of sealed windows, evaluates drift against
 * the reference profile, and resets the shards; steady state performs
 * ZERO heap allocations after construction (asserted by serve_load and
 * the gtest suite, like every other hot loop in the tree).
 *
 * Determinism: every windowed statistic is an integer count (sketch
 * counters, histogram bins, class tallies), so the merged aggregate is
 * bit-identical regardless of which slot ingested which record — i.e.
 * across any PTOLEMY_NUM_THREADS and any scheduling. The CI
 * telemetry-determinism leg hashes sealed windows at 1 vs 2 threads.
 *
 * Thread-safety contract (mirrors DetectorSession): ingest() may be
 * called concurrently for DISTINCT slot ids (the pool guarantees
 * concurrently-executing loop bodies carry distinct ids); sealing,
 * reference capture and proposals belong to the thread that drives the
 * session between batches (the server's dispatcher). Sealed windows
 * and drift events are published under an internal mutex so monitoring
 * threads may read them while serving continues.
 *
 * Drift semantics: each sealed window with at least minRecords records
 * is compared against the reference profile captured at fit/warm-up
 * time — L1 distance between normalized score histograms, L1 distance
 * between path-divergence histograms (per-record fraction of path bits
 * falling OUTSIDE the predicted class's canary path, i.e. divergence
 * from the ClassPathStore profile), and the typed poison counter. Each
 * statistic above its threshold emits one typed DriftEvent into a
 * fixed ring.
 *
 * Recalibration is PROPOSE-ONLY: proposeThreshold() computes, from the
 * latest sealed window's score quantiles, the decision threshold that
 * would restore the reference flagged fraction. The serving model stays
 * immutable — applying a proposal means refitting offline and riding
 * the existing RCU swapModel() path, exactly like any other model
 * update.
 */

#ifndef PTOLEMY_TELEMETRY_HUB_HH
#define PTOLEMY_TELEMETRY_HUB_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "telemetry/sketch.hh"
#include "util/bitvector.hh"

namespace ptolemy::telemetry
{

/** Drift event classes (one per windowed drift statistic). */
enum class DriftKind : std::uint8_t
{
    kScoreDistribution = 0, ///< score-histogram L1 above threshold
    kPathDivergence,        ///< path-divergence histogram L1 above threshold
    kPoisonedScores,        ///< non-finite scores observed in the window
};

inline const char *
driftKindName(DriftKind k)
{
    switch (k) {
    case DriftKind::kScoreDistribution: return "score_distribution";
    case DriftKind::kPathDivergence: return "path_divergence";
    case DriftKind::kPoisonedScores: return "poisoned_scores";
    }
    return "?";
}

/** One typed drift detection, anchored to the sealed window that
 *  raised it. POD — the event ring is preallocated. */
struct DriftEvent
{
    std::uint64_t windowId = 0;
    DriftKind kind = DriftKind::kScoreDistribution;
    double statistic = 0.0; ///< the measured distance / count
    double threshold = 0.0; ///< the configured trip level
};

/** Hub configuration. Widths derive from the (ε, δ) bound; everything
 *  else is fixed-capacity so construction is the only allocation. */
struct TelemetryConfig
{
    ErrorBound bound;              ///< sizes the path-bit Count-Min sketch
    std::size_t scoreBins = 64;    ///< score/divergence histogram bins
    std::size_t numClasses = 0;    ///< prediction tally arity (required)
    std::size_t windowRecords = 1024; ///< maybeSeal() threshold
    std::size_t windowRing = 8;    ///< sealed windows kept (oldest evicted)
    std::size_t eventRing = 32;    ///< drift events kept (oldest evicted)
    std::size_t slots = 0;         ///< ingest shards; 0 = globalPool().size()
    std::uint64_t seed = 0x7E1E3E7; ///< sketch hash seed

    // Drift thresholds (see file comment for semantics).
    double scoreL1Threshold = 0.25;
    double divergenceL1Threshold = 0.25;
    std::uint64_t minRecords = 64; ///< windows below this skip drift eval
};

/**
 * One window's merged statistics: integer counters only (see the
 * determinism contract in the file comment).
 */
struct WindowStats
{
    CountMinSketch pathBits;   ///< set-bit index frequencies
    ScoreHistogram score;      ///< detector score distribution
    ScoreHistogram divergence; ///< 1 − overall path similarity per record
    std::vector<std::uint64_t> classCounts; ///< predictions per class
    std::uint64_t records = 0;
    std::uint64_t adversarial = 0; ///< records flagged by the detector

    WindowStats() = default;
    WindowStats(const TelemetryConfig &cfg);

    void mergeFrom(const WindowStats &other);
    void reset();
    std::size_t memoryBytes() const;
};

/** A sealed window: immutable once published. */
struct SealedWindow
{
    std::uint64_t id = 0; ///< 1-based seal ordinal
    WindowStats stats;
};

/** Fixed-size copy-out summary of one sealed window (monitoring
 *  surface; no containers, so snapshotting allocates nothing). */
struct WindowSummary
{
    std::uint64_t id = 0;
    std::uint64_t records = 0;
    std::uint64_t adversarial = 0;
    std::uint64_t poisonedScores = 0;
    std::uint64_t pathBitIncrements = 0; ///< sketch N for the ε·N bound
    double scoreP50 = 0.0, scoreP95 = 0.0, scoreP99 = 0.0;
    double scoreL1VsReference = 0.0;      ///< 0 when no reference
    double divergenceL1VsReference = 0.0; ///< 0 when no reference
};

/** Propose-only threshold recalibration (see file comment). */
struct ThresholdProposal
{
    std::uint64_t windowId = 0;     ///< window the proposal derives from
    std::uint64_t records = 0;
    double currentThreshold = 0.0;
    double proposedThreshold = 0.0; ///< window quantile restoring refFrac
    double referenceFlaggedFrac = 0.0;
    double windowFlaggedFrac = 0.0; ///< at currentThreshold, this window
};

/**
 * Sharded windowed telemetry aggregator (see file comment for the
 * contracts). Construction allocates everything; nothing after.
 */
class TelemetryHub
{
  public:
    explicit TelemetryHub(TelemetryConfig cfg);

    const TelemetryConfig &config() const { return cfg; }
    std::size_t numSlots() const { return shards.size(); }

    /** Total footprint of shards + ring + reference, bytes. */
    std::size_t memoryBytes() const;

    /** One record ingested into the executing slot's shard. Callable
     *  concurrently for distinct @p slot ids; out-of-range ids clamp to
     *  slot 0 (nested inline pool sections are single-threaded by
     *  construction — the same clamp DetectorSession uses).
     *  @param score forest score (NaN/Inf routes to the poison counter).
     *  @param predicted_class predicted class (tallied; clamped).
     *  @param adversarial detector verdict for the record.
     *  @param divergence 1 − overall path similarity vs the predicted
     *         class's canary path (non-finite routes to poison).
     *  @param path activation-path bits (set-bit indices feed the
     *         Count-Min sketch); nullptr skips path ingestion. */
    void ingest(unsigned slot, double score, std::size_t predicted_class,
                bool adversarial, double divergence,
                const BitVector *path);

    /** Records ingested since the last seal (sum over shards; exact
     *  only while no ingest is concurrently running). */
    std::uint64_t pendingRecords() const;

    /** Seal when pendingRecords() ≥ windowRecords (the server calls
     *  this between batches). @return true when a window sealed. */
    bool maybeSeal();

    /**
     * Seal the pending records unconditionally: merge shards in fixed
     * slot order into the next ring slot, evaluate drift against the
     * reference, reset the shards. An EMPTY pending set is an explicit
     * no-op: no window is published, no event raised, no id consumed.
     * @return true when a (non-empty) window sealed.
     */
    bool sealWindow();

    /**
     * Capture the reference profile from the pending records: merge
     * the shards into the reference stats (replacing any previous
     * reference) and reset the shards. Call after warming the serving
     * path with known-benign traffic at fit/deploy time. An empty
     * pending set clears the reference. @return records captured.
     */
    std::uint64_t captureReference();

    bool hasReference() const;

    /** Windows sealed so far (ids are 1..windowsSealed()). */
    std::uint64_t windowsSealed() const;

    /** Copy-out summary of sealed window @p id; false when the id is
     *  unknown or already evicted from the ring. */
    bool windowSummary(std::uint64_t id, WindowSummary &out) const;

    /** Summary of the latest sealed window; false when none sealed. */
    bool latestWindow(WindowSummary &out) const;

    /** Drift events raised so far (monotonic; ring keeps the latest
     *  eventRing of them). */
    std::uint64_t driftEventCount() const;

    /** Copy the retained drift events (oldest first) into @p out —
     *  caller-owned, reused buffer; amortized allocation-free. */
    void driftEvents(std::vector<DriftEvent> &out) const;

    /**
     * Threshold recalibration proposal from the latest sealed window
     * (propose-only; see file comment). @p current_threshold is the
     * serving decision threshold the proposal is relative to. Returns
     * false when no window is sealed, no reference is captured, or the
     * window holds no finite scores.
     */
    bool proposeThreshold(ThresholdProposal &out,
                          double current_threshold = 0.5) const;

    /**
     * Canonical FNV-1a hash over sealed window @p id's raw aggregates
     * (sketch counters, histogram bins, class tallies, record counts)
     * — the bit-identity probe the determinism tests and the CI
     * telemetry-determinism leg compare across thread counts. 0 when
     * the id is unknown or evicted.
     */
    std::uint64_t windowHash(std::uint64_t id) const;

    /** Point query on the latest sealed window's path-bit sketch
     *  (estimate ≤ true + ε·N at confidence 1 − δ). */
    std::uint64_t pathBitEstimate(std::uint64_t bit) const;

  private:
    /** Merge shards (fixed slot order) into @p dst, reset shards.
     *  Caller holds sealMu. @return records merged. */
    std::uint64_t drainShardsInto(WindowStats &dst);

    void evaluateDrift(const SealedWindow &win);

    void pushEvent(const DriftEvent &ev);

    void summarize(const SealedWindow &win, WindowSummary &out) const;

    TelemetryConfig cfg;
    std::vector<WindowStats> shards; ///< one per pool slot, lock-free

    mutable std::mutex sealMu; ///< guards ring/events/reference
    std::vector<SealedWindow> ring;  ///< windowRing preallocated slots
    std::uint64_t sealedCount = 0;   ///< windows sealed (ids 1-based)
    WindowStats reference;           ///< fit-time profile
    bool referenceSet = false;
    std::vector<DriftEvent> events;  ///< eventRing preallocated slots
    std::uint64_t eventCount = 0;    ///< events raised (monotonic)
};

} // namespace ptolemy::telemetry

#endif // PTOLEMY_TELEMETRY_HUB_HH
