/**
 * @file
 * Scenario from the paper's introduction: an object-recognition model in
 * a safety-critical loop, where a perturbed stop sign must not silently
 * become a yield sign.
 *
 * The synthetic "cross" texture family plays the stop sign. We deploy the
 * AlexNet-class model behind a Ptolemy detector configured for the
 * *deployment* trade-off the paper recommends for latency-critical
 * systems — forward extraction with absolute thresholds (FwAb), which
 * hides extraction behind inference — and show (a) end-to-end rejection
 * of attacked signs, and (b) what the detection costs on the modeled
 * accelerator.
 *
 * Build & run:  ./build/examples/traffic_sign_defense
 */

#include <cstdio>

#include "attack/gradient_attacks.hh"
#include "compiler/compiler.hh"
#include "core/detector.hh"
#include "core/evaluation.hh"
#include "data/synthetic.hh"
#include "hw/simulator.hh"
#include "models/zoo.hh"
#include "nn/init.hh"
#include "nn/trainer.hh"
#include "path/extractor.hh"

using namespace ptolemy;

int
main()
{
    // The 10 texture classes play 10 sign types; class 8 (cross) is the
    // stop sign.
    constexpr std::size_t kStopSign = 8;

    data::DatasetSpec spec;
    spec.numClasses = 10;
    spec.trainPerClass = 80;
    spec.testPerClass = 20;
    auto dataset = data::makeSyntheticDataset(spec);

    auto net = models::makeMiniAlexNet(10);
    nn::heInit(net, 11);
    nn::TrainConfig tc;
    tc.epochs = 4;
    tc.learningRate = 0.02;
    nn::Trainer(tc).train(net, dataset.train);
    std::printf("sign classifier accuracy: %.3f\n",
                nn::Trainer::evaluate(net, dataset.test));

    // Deployment config: FwAb with calibrated per-layer thresholds.
    const int n = static_cast<int>(net.weightedNodes().size());
    auto cfg = path::ExtractionConfig::fwAb(n);
    std::vector<nn::Tensor> calib;
    for (int i = 0; i < 8; ++i)
        calib.push_back(dataset.train[i * 37].input);
    path::calibrateAbsoluteThresholds(net, cfg, calib, 0.05);

    core::Detector detector(net, cfg, 10);
    detector.buildClassPaths(dataset.train, 100);

    attack::Pgd pgd; // a determined physical-world-style attacker
    auto pairs = core::buildAttackPairs(net, pgd, dataset.test, 80);
    core::fitAndScore(detector, pairs, 0.5);

    // Attack every correctly-classified stop sign in the test set.
    int signs = 0, fooled = 0, caught = 0;
    for (const auto &s : dataset.test) {
        if (s.label != kStopSign || net.predict(s.input) != kStopSign)
            continue;
        ++signs;
        auto res = pgd.run(net, s.input, kStopSign);
        if (!res.success)
            continue;
        ++fooled;
        const auto verdict = detector.detect(res.adversarial);
        if (verdict.adversarial)
            ++caught;
        else
            std::printf("  !! stop sign silently misread as class %zu\n",
                        verdict.predictedClass);
    }
    std::printf("\nstop signs tested: %d, successfully attacked: %d, "
                "rejected by Ptolemy: %d\n",
                signs, fooled, caught);

    // What does the defense cost on the modeled accelerator?
    path::PathExtractor ex(net, cfg);
    std::vector<path::ExtractionTrace> traces;
    for (int i = 0; i < 5; ++i) {
        auto rec = net.forward(dataset.test[i * 11].input);
        path::ExtractionTrace t;
        ex.extract(rec, &t);
        traces.push_back(std::move(t));
    }
    compiler::Compiler comp(net, cfg);
    hw::Simulator sim;
    const auto det_rep = sim.run(comp.compile(path::averageTraces(traces)));
    const auto inf_rep = sim.run(compiler::Compiler::inferenceOnly(net));
    std::printf("modeled hardware: inference %.1f us, with detection "
                "%.1f us (%.2fx)\n",
                inf_rep.latencyUs(250.0), det_rep.latencyUs(250.0),
                static_cast<double>(det_rep.cycles) / inf_rep.cycles);
    return 0;
}
