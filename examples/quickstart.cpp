/**
 * @file
 * Quickstart: the whole Ptolemy pipeline in one file.
 *
 *  1. Build and train a small CNN on the synthetic dataset.
 *  2. Offline phase: profile the training data into per-class canary
 *     paths and fit the random-forest classifier.
 *  3. Online phase: craft an adversarial input with FGSM and watch the
 *     detector flag it while passing the clean input.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>

#include "attack/gradient_attacks.hh"
#include "core/detector.hh"
#include "core/evaluation.hh"
#include "data/synthetic.hh"
#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "nn/linear.hh"
#include "nn/trainer.hh"

using namespace ptolemy;

int
main()
{
    // ------------------------------------------------ 1. model + data --
    data::DatasetSpec spec;
    spec.numClasses = 10;
    spec.trainPerClass = 60;
    spec.testPerClass = 15;
    auto dataset = data::makeSyntheticDataset(spec);

    nn::Network net("quickstart-cnn", nn::mapShape(3, 16, 16));
    net.add(std::make_unique<nn::Conv2d>("conv1", 3, 8, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu1"));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2));
    net.add(std::make_unique<nn::Conv2d>("conv2", 8, 12, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu2"));
    net.add(std::make_unique<nn::MaxPool2d>("pool2", 2));
    net.add(std::make_unique<nn::Flatten>("flat"));
    net.add(std::make_unique<nn::Linear>("fc1", 12 * 4 * 4, 48));
    net.add(std::make_unique<nn::ReLU>("relu3"));
    net.add(std::make_unique<nn::Linear>("fc2", 48, 10));
    nn::heInit(net, 7);

    nn::TrainConfig tc;
    tc.epochs = 4;
    tc.verbose = true;
    nn::Trainer(tc).train(net, dataset.train);
    std::printf("clean test accuracy: %.3f\n\n",
                nn::Trainer::evaluate(net, dataset.test));

    // --------------------------------------------- 2. offline profiling --
    // Backward extraction with a cumulative threshold (the paper's most
    // accurate variant, BwCu) on all weighted layers.
    const int n_layers = static_cast<int>(net.weightedNodes().size());
    core::Detector detector(
        net, path::ExtractionConfig::bwCu(n_layers, /*theta=*/0.5), 10);
    detector.buildClassPaths(dataset.train, /*max_per_class=*/100);

    // Fit the random forest on features from attacked training pairs.
    attack::Fgsm fgsm;
    auto pairs = core::buildAttackPairs(net, fgsm, dataset.test, 60);
    const auto eval = core::fitAndScore(detector, pairs, 0.5);
    std::printf("detection AUC on held-out FGSM pairs: %.3f\n\n", eval.auc);

    // ------------------------------------------------ 3. online phase --
    const auto &victim = pairs.front();
    const auto clean_verdict = detector.detect(victim.clean);
    const auto adv_verdict = detector.detect(victim.adversarial);
    std::printf("clean input      -> class %zu, adversarial score %.2f "
                "(%s)\n",
                clean_verdict.predictedClass, clean_verdict.score,
                clean_verdict.adversarial ? "REJECTED" : "accepted");
    std::printf("perturbed input  -> class %zu, adversarial score %.2f "
                "(%s)\n",
                adv_verdict.predictedClass, adv_verdict.score,
                adv_verdict.adversarial ? "REJECTED" : "accepted");
    std::printf("perturbation MSE: %.4f\n", victim.mse);
    return 0;
}
