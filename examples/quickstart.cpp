/**
 * @file
 * Quickstart: the whole Ptolemy pipeline in one file, on the serving
 * API (Engine/Session split).
 *
 *  1. Build and train a small CNN on the synthetic dataset.
 *  2. Offline phase (DetectorBuilder): profile the training data into
 *     per-class canary paths, fit the random-forest classifier, and
 *     freeze the result into an immutable DetectorModel.
 *  3. Online phase (DetectorSession): craft adversarial inputs with
 *     FGSM and serve mixed clean/adversarial traffic through the fused
 *     batched detectBatch — the model is shared, the session holds the
 *     per-client scratch.
 *  4. Persist the fitted model and reload it: the loaded model serves
 *     identical decisions without re-profiling.
 *
 * Build & run:  ./build/quickstart
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "attack/gradient_attacks.hh"
#include "core/detector_model.hh"
#include "core/detector_session.hh"
#include "core/evaluation.hh"
#include "data/synthetic.hh"
#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "nn/linear.hh"
#include "nn/trainer.hh"

using namespace ptolemy;

int
main()
{
    // ------------------------------------------------ 1. model + data --
    data::DatasetSpec spec;
    spec.numClasses = 10;
    spec.trainPerClass = 60;
    spec.testPerClass = 15;
    auto dataset = data::makeSyntheticDataset(spec);

    nn::Network net("quickstart-cnn", nn::mapShape(3, 16, 16));
    net.add(std::make_unique<nn::Conv2d>("conv1", 3, 8, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu1"));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2));
    net.add(std::make_unique<nn::Conv2d>("conv2", 8, 12, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu2"));
    net.add(std::make_unique<nn::MaxPool2d>("pool2", 2));
    net.add(std::make_unique<nn::Flatten>("flat"));
    net.add(std::make_unique<nn::Linear>("fc1", 12 * 4 * 4, 48));
    net.add(std::make_unique<nn::ReLU>("relu3"));
    net.add(std::make_unique<nn::Linear>("fc2", 48, 10));
    nn::heInit(net, 7);

    nn::TrainConfig tc;
    tc.epochs = 4;
    tc.verbose = true;
    nn::Trainer(tc).train(net, dataset.train);
    std::printf("clean test accuracy: %.3f\n\n",
                nn::Trainer::evaluate(net, dataset.test));

    // --------------------------------------------- 2. offline phase --
    // Backward extraction with a cumulative threshold (the paper's most
    // accurate variant, BwCu) on all weighted layers. The builder wraps
    // profiling + fitting and releases an immutable DetectorModel.
    const int n_layers = static_cast<int>(net.weightedNodes().size());
    core::DetectorBuilder builder(
        net, path::ExtractionConfig::bwCu(n_layers, /*theta=*/0.5), 10);
    builder.profileClassPaths(dataset.train, /*max_per_class=*/100);

    // Fit the random forest on features of attacked test pairs.
    attack::Fgsm fgsm;
    auto pairs = core::buildAttackPairs(net, fgsm, dataset.test, 60);
    {
        std::vector<nn::Tensor> clean, adversarial;
        for (const auto &p : pairs) {
            clean.push_back(p.clean);
            adversarial.push_back(p.adversarial);
        }
        classify::FeatureMatrix benign_rows, adv_rows;
        builder.featuresBatch(clean, benign_rows);
        builder.featuresBatch(adversarial, adv_rows);
        builder.fitClassifier(benign_rows, adv_rows);
    }
    const core::DetectorModel model = std::move(builder).build();

    // ------------------------------------------------ 3. online phase --
    // One session per client/request stream; the frozen model is shared
    // (any number of sessions, any number of threads, no locks). Serve
    // a mixed batch through the fused batched entry point.
    core::DetectorSession session(model);
    std::vector<nn::Tensor> traffic;
    for (std::size_t i = 0; i < 4 && i < pairs.size(); ++i) {
        traffic.push_back(pairs[i].clean);
        traffic.push_back(pairs[i].adversarial);
    }
    std::vector<core::Decision> decisions;
    session.detectBatch(traffic, decisions);
    for (std::size_t i = 0; i < decisions.size(); ++i)
        std::printf("%s input -> class %zu, adversarial score %.2f (%s)\n",
                    i % 2 == 0 ? "clean    " : "perturbed",
                    decisions[i].predictedClass, decisions[i].score,
                    decisions[i].adversarial ? "REJECTED" : "accepted");

    // -------------------------------------------------- 4. persistence --
    // Deploy without re-profiling: save the fitted artifacts, load them
    // into a fresh model over the same network, serve identically.
    if (model.save("quickstart_detector.model")) {
        core::DetectorModel reloaded(
            net, path::ExtractionConfig::bwCu(n_layers, 0.5), 10);
        if (reloaded.tryLoad("quickstart_detector.model")) {
            core::DetectorSession replay(reloaded);
            const auto d = replay.detect(traffic.front());
            std::printf("\nreloaded model agrees: class %zu, score %.2f\n",
                        d.predictedClass, d.score);
        }
        std::remove("quickstart_detector.model");
    }
    return 0;
}
