/**
 * @file
 * Accuracy-vs-cost trade-off exploration with the programming interface
 * (paper Sec. III-D): sweep the three algorithmic knobs — direction,
 * thresholding mechanism, and start/termination layer — through the
 * ProgramBuilder, and print the detection accuracy next to the modeled
 * latency/energy of each point.
 *
 * Build & run:  ./build/examples/tradeoff_explorer
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "attack/gradient_attacks.hh"
#include "compiler/compiler.hh"
#include "core/detector.hh"
#include "core/evaluation.hh"
#include "core/program_builder.hh"
#include "data/synthetic.hh"
#include "hw/simulator.hh"
#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "nn/linear.hh"
#include "nn/trainer.hh"
#include "path/extractor.hh"
#include "util/table.hh"

using namespace ptolemy;

namespace
{

nn::Network
buildModel()
{
    nn::Network net("explorer-cnn", nn::mapShape(3, 16, 16));
    net.add(std::make_unique<nn::Conv2d>("conv1", 3, 8, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu1"));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 2));
    net.add(std::make_unique<nn::Conv2d>("conv2", 8, 16, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu2"));
    net.add(std::make_unique<nn::MaxPool2d>("pool2", 2));
    net.add(std::make_unique<nn::Conv2d>("conv3", 16, 16, 3, 1, 1));
    net.add(std::make_unique<nn::ReLU>("relu3"));
    net.add(std::make_unique<nn::Flatten>("flat"));
    net.add(std::make_unique<nn::Linear>("fc1", 16 * 4 * 4, 48));
    net.add(std::make_unique<nn::ReLU>("relu4"));
    net.add(std::make_unique<nn::Linear>("fc2", 48, 10));
    return net;
}

} // namespace

int
main()
{
    data::DatasetSpec spec;
    spec.numClasses = 10;
    spec.trainPerClass = 60;
    spec.testPerClass = 15;
    auto dataset = data::makeSyntheticDataset(spec);

    auto net = buildModel();
    nn::heInit(net, 9);
    nn::TrainConfig tc;
    tc.epochs = 5;
    tc.learningRate = 0.02; // the three-conv stack diverges at 0.05
    nn::Trainer(tc).train(net, dataset.train);
    const int n = static_cast<int>(net.weightedNodes().size());
    std::printf("model: %d weighted layers, clean accuracy %.3f\n\n", n,
                nn::Trainer::evaluate(net, dataset.test));

    attack::Fgsm fgsm;
    auto pairs = core::buildAttackPairs(net, fgsm, dataset.test, 60);

    // Candidate design points expressed through the programming
    // interface — including the paper's Fig. 6 program (forward, last
    // three layers, cumulative only at the end).
    struct Point
    {
        std::string name;
        path::ExtractionConfig cfg;
    };
    std::vector<Point> points;
    points.push_back({"BwCu full",
                      core::ProgramBuilder(net).backwardExtraction()
                          .build()});
    points.push_back({"BwCu last 3",
                      core::ProgramBuilder(net)
                          .backwardExtraction()
                          .startAtLayer(n - 3)
                          .build()});
    points.push_back(
        {"BwAb full", core::ProgramBuilder(net)
                          .backwardExtraction()
                          .extractLayers(0, n - 1,
                                         path::ThresholdKind::Absolute, 0.0)
                          .build()});
    points.push_back(
        {"FwAb full", core::ProgramBuilder(net)
                          .forwardExtraction()
                          .extractLayers(0, n - 1,
                                         path::ThresholdKind::Absolute, 0.0)
                          .build()});
    points.push_back(
        {"Fig.6 program",
         core::ProgramBuilder(net)
             .forwardExtraction()
             .extractNone()
             .extractLayer(n - 3, path::ThresholdKind::Absolute, 0.0)
             .extractLayer(n - 2, path::ThresholdKind::Absolute, 0.0)
             .extractLayer(n - 1, path::ThresholdKind::Cumulative, 0.5)
             .build()});

    Table t("Accuracy vs modeled cost (FGSM, normalized to inference)");
    t.header({"design point", "AUC", "Latency", "Energy", "path bits"});

    std::vector<nn::Tensor> calib;
    for (int i = 0; i < 8; ++i)
        calib.push_back(dataset.train[i * 17].input);
    hw::Simulator sim;
    const auto inf_rep = sim.run(compiler::Compiler::inferenceOnly(net));

    for (auto &pt : points) {
        path::calibrateAbsoluteThresholds(net, pt.cfg, calib, 0.05);
        core::Detector det(net, pt.cfg, 10);
        det.buildClassPaths(dataset.train, 100);
        const double auc = core::fitAndScore(det, pairs, 0.5).auc;

        path::PathExtractor ex(net, pt.cfg);
        std::vector<path::ExtractionTrace> traces;
        for (int i = 0; i < 4; ++i) {
            auto rec = net.forward(dataset.test[i * 13].input);
            path::ExtractionTrace tr;
            ex.extract(rec, &tr);
            traces.push_back(std::move(tr));
        }
        const auto avg = path::averageTraces(traces);
        compiler::CompileOptions opts;
        opts.classifierOps = 0; // compare extraction cost only
        compiler::Compiler comp(net, pt.cfg, opts);
        const auto rep = sim.run(comp.compile(avg));
        t.row({pt.name, fmt(auc, 3),
               fmtX(static_cast<double>(rep.cycles) / inf_rep.cycles),
               fmtX(rep.energyPj / inf_rep.energyPj),
               std::to_string(avg.pathBits)});
    }
    t.print(std::cout);
    return 0;
}
