/**
 * @file
 * ISA playground: assemble the paper's Listing 1 (important-neuron
 * extraction with a cumulative threshold), disassemble it, and run it on
 * the cycle-level simulator under different path-constructor
 * provisionings.
 *
 * Build & run:  ./build/examples/isa_playground
 */

#include <cstdio>

#include "hw/simulator.hh"
#include "isa/assembler.hh"

using namespace ptolemy;

int
main()
{
    // The paper's Listing 1, with the loop set up for 64 important
    // neurons over 512-element receptive fields.
    const char *kernel = R"(
.set rfsize 0x200
.set thrd 0x08
.set neurons 0x40
mov r3, rfsize
mov r5, thrd
mov r11, neurons
<start>
findneuron r2, r7, r4
findrf r4, r1
sort r1, r3, r6
acum r6, r1, r5
dec r11
jne r11, <start>
halt
)";

    auto res = isa::assemble(kernel);
    if (!res.ok) {
        std::printf("assembly error: %s\n", res.error.c_str());
        return 1;
    }
    std::printf("assembled %zu instructions (%zu bytes):\n%s\n",
                res.program.size(), res.program.codeBytes(),
                res.program.disassemble().c_str());

    // Give acum a profiled average workload (the compiler would fill
    // this from the extraction trace).
    for (std::size_t i = 0; i < res.program.size(); ++i)
        if (res.program.instruction(i).op == isa::Opcode::Acum)
            res.program.meta(i).accumLen = 24;

    std::printf("running on the cycle-level model:\n");
    for (int merge_len : {4, 8, 16, 32}) {
        hw::HwConfig cfg = hw::HwConfig::baseline();
        cfg.mergeTreeLen = merge_len;
        const auto rep = hw::Simulator(cfg).run(res.program);
        std::printf("  merge tree %2d-way: %8llu cycles (%.1f us @ "
                    "250 MHz), %.1f nJ\n",
                    merge_len,
                    static_cast<unsigned long long>(rep.cycles),
                    rep.latencyUs(250.0), rep.energyPj / 1000.0);
    }
    return 0;
}
