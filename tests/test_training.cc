/**
 * @file
 * End-to-end training tests: the substrate must be able to fit the
 * synthetic data (the whole reproduction depends on trained models whose
 * class paths are meaningful).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "common/test_models.hh"
#include "nn/loss.hh"
#include "util/thread_pool.hh"

namespace ptolemy
{
namespace
{

/** Bit-exact snapshot of every trainable parameter. */
std::vector<std::vector<float>>
paramSnapshot(nn::Network &net)
{
    std::vector<std::vector<float>> out;
    for (auto p : net.params())
        out.push_back(*p.value);
    return out;
}

/** Bit-exact snapshot of every non-trainable state buffer. */
std::vector<std::vector<float>>
stateSnapshot(nn::Network &net)
{
    std::vector<std::vector<float>> out;
    for (int id = 0; id < net.numNodes(); ++id)
        for (auto p : net.layerAt(id).state())
            out.push_back(*p.value);
    return out;
}

void
expectBitIdentical(const std::vector<std::vector<float>> &a,
                   const std::vector<std::vector<float>> &b,
                   const char *what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].size(), b[i].size()) << what << " buf " << i;
        ASSERT_EQ(0, std::memcmp(a[i].data(), b[i].data(),
                                 a[i].size() * sizeof(float)))
            << what << " buf " << i << " differs";
    }
}

/** Tiny net with a Norm2d layer: exercises the deferred-stat path. */
nn::Network
makeNormNet(int num_classes)
{
    nn::Network net("NormNet", nn::mapShape(3, 16, 16));
    net.add(std::make_unique<nn::Conv2d>("conv1", 3, 6, 3, 1, 1));
    net.add(std::make_unique<nn::Norm2d>("norm1", 6));
    net.add(std::make_unique<nn::ReLU>("relu1"));
    net.add(std::make_unique<nn::MaxPool2d>("pool1", 4)); // 4x4
    net.add(std::make_unique<nn::Flatten>("flat"));
    net.add(std::make_unique<nn::Linear>("fc", 6 * 4 * 4, num_classes));
    return net;
}

TEST(Loss, SoftmaxSumsToOne)
{
    nn::Tensor logits(nn::flatShape(4), {1.0f, 2.0f, 3.0f, 4.0f});
    const auto p = nn::softmax(logits);
    double sum = 0.0;
    for (double v : p)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(p[3], p[0]);
}

TEST(Loss, CrossEntropyGradientSignsPushTowardLabel)
{
    nn::Tensor logits(nn::flatShape(3), {0.0f, 0.0f, 0.0f});
    const auto lg = nn::softmaxCrossEntropy(logits, 1);
    EXPECT_NEAR(lg.loss, std::log(3.0), 1e-6);
    EXPECT_LT(lg.grad[1], 0.0f); // increase the true-class logit
    EXPECT_GT(lg.grad[0], 0.0f);
    EXPECT_GT(lg.grad[2], 0.0f);
    float sum = lg.grad[0] + lg.grad[1] + lg.grad[2];
    EXPECT_NEAR(sum, 0.0f, 1e-6);
}

TEST(Training, LossDecreasesAndTestAccuracyIsHigh)
{
    auto &w = testing::world();
    // The shared tiny CNN must clearly learn the 10-class problem.
    EXPECT_GT(w.testAccuracy, 0.85) << "tiny model failed to train";
}

TEST(Training, TrainedModelBeatsChanceOnEveryClass)
{
    auto &w = testing::world();
    std::vector<int> correct(10, 0), total(10, 0);
    for (const auto &s : w.dataset.test) {
        ++total[s.label];
        if (w.net.predict(s.input) == s.label)
            ++correct[s.label];
    }
    for (int c = 0; c < 10; ++c) {
        ASSERT_GT(total[c], 0);
        EXPECT_GT(static_cast<double>(correct[c]) / total[c], 0.4)
            << "class " << c;
    }
}

TEST(Training, EpochStatsImprove)
{
    // Train a fresh copy for two epochs and check the loss trajectory.
    auto net = testing::makeTinyNet(10);
    nn::heInit(net, 21);
    data::DatasetSpec spec;
    spec.trainPerClass = 30;
    spec.testPerClass = 5;
    const auto ds = data::makeSyntheticDataset(spec);
    nn::TrainConfig tc;
    tc.epochs = 2;
    nn::Trainer trainer(tc);
    const auto hist = trainer.train(net, ds.train);
    ASSERT_EQ(hist.size(), 2u);
    EXPECT_LT(hist[1].avgLoss, hist[0].avgLoss);
    EXPECT_GT(hist[1].trainAccuracy, hist[0].trainAccuracy);
}

TEST(Training, EvaluateOnEmptyDatasetIsZero)
{
    auto net = testing::makeTinyNet(10);
    EXPECT_DOUBLE_EQ(nn::Trainer::evaluate(net, {}), 0.0);
}

TEST(Training, TrainOnEmptyDatasetIsANoOp)
{
    auto net = testing::makeTinyNet(10);
    nn::heInit(net, 3);
    const auto before = paramSnapshot(net);
    nn::Trainer trainer;
    const auto hist = trainer.train(net, {});
    EXPECT_TRUE(hist.empty());
    expectBitIdentical(before, paramSnapshot(net), "params");
}

TEST(Training, WeightsBitIdenticalAcrossThreadCounts)
{
    // The data-parallel trainer's determinism contract: gradient lanes
    // and reductions are keyed to sample positions, never to threads,
    // so {1, 2, 8}-thread pools must train to bit-identical weights.
    data::DatasetSpec spec;
    spec.numClasses = 4;
    spec.trainPerClass = 12;
    spec.testPerClass = 1;
    spec.seed = 91;
    const auto ds = data::makeSyntheticDataset(spec);

    std::vector<std::vector<std::vector<float>>> results;
    std::vector<std::vector<nn::EpochStats>> stats;
    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        auto net = testing::makeTinyNet(4);
        nn::heInit(net, 5);
        nn::TrainConfig tc;
        tc.epochs = 2;
        tc.batchSize = 8;
        tc.pool = &pool;
        nn::Trainer trainer(tc);
        stats.push_back(trainer.train(net, ds.train));
        results.push_back(paramSnapshot(net));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
        expectBitIdentical(results[0], results[i], "trained params");
        ASSERT_EQ(stats[0].size(), stats[i].size());
        for (std::size_t e = 0; e < stats[0].size(); ++e) {
            EXPECT_DOUBLE_EQ(stats[0][e].avgLoss, stats[i][e].avgLoss);
            EXPECT_DOUBLE_EQ(stats[0][e].trainAccuracy,
                             stats[i][e].trainAccuracy);
        }
    }
}

TEST(Training, NormRunningStatsBitIdenticalAcrossThreadCounts)
{
    // Norm2d's deferred EMA updates fold in sample order regardless of
    // which thread computed each sample's moments.
    data::DatasetSpec spec;
    spec.numClasses = 4;
    spec.trainPerClass = 10;
    spec.testPerClass = 1;
    spec.seed = 92;
    const auto ds = data::makeSyntheticDataset(spec);

    std::vector<std::vector<std::vector<float>>> weights, states;
    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        auto net = makeNormNet(4);
        nn::heInit(net, 6);
        nn::TrainConfig tc;
        tc.epochs = 2;
        tc.batchSize = 8;
        tc.pool = &pool;
        nn::Trainer trainer(tc);
        trainer.train(net, ds.train);
        weights.push_back(paramSnapshot(net));
        states.push_back(stateSnapshot(net));
    }
    ASSERT_FALSE(states[0].empty()); // the net really has running stats
    for (std::size_t i = 1; i < weights.size(); ++i) {
        expectBitIdentical(weights[0], weights[i], "trained params");
        expectBitIdentical(states[0], states[i], "running stats");
    }
}

TEST(Training, SingleStreamTrainForwardFoldsNormStats)
{
    // A hand-rolled loop using the single-stream Network API must keep
    // the pre-refactor streaming semantics: forwardInto(train=true)
    // folds the Norm running-stat update immediately.
    auto net = makeNormNet(4);
    nn::heInit(net, 8);
    const auto before = stateSnapshot(net);
    ASSERT_FALSE(before.empty());
    nn::Network::Record rec;
    nn::Tensor x(net.inputShape());
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = 0.5f + 0.01f * static_cast<float>(i % 7);
    net.forwardInto(x, rec, /*train=*/true);
    const auto after = stateSnapshot(net);
    bool moved = false;
    for (std::size_t b = 0; b < after.size() && !moved; ++b)
        for (std::size_t i = 0; i < after[b].size() && !moved; ++i)
            moved = after[b][i] != before[b][i];
    EXPECT_TRUE(moved) << "train-mode forward left running stats frozen";
}

TEST(Training, NormNetLearns)
{
    // The deferred-stat path must still fit data, and training must
    // actually move the running statistics off their init values.
    data::DatasetSpec spec;
    spec.numClasses = 4;
    spec.trainPerClass = 20;
    spec.testPerClass = 5;
    spec.seed = 93;
    const auto ds = data::makeSyntheticDataset(spec);
    auto net = makeNormNet(4);
    nn::heInit(net, 7);
    const auto state_before = stateSnapshot(net);
    nn::TrainConfig tc;
    tc.epochs = 4;
    nn::Trainer trainer(tc);
    const auto hist = trainer.train(net, ds.train);
    EXPECT_LT(hist.back().avgLoss, hist.front().avgLoss);
    EXPECT_GT(nn::Trainer::evaluate(net, ds.test), 0.5);
    const auto state_after = stateSnapshot(net);
    bool moved = false;
    for (std::size_t b = 0; b < state_after.size() && !moved; ++b)
        for (std::size_t i = 0; i < state_after[b].size() && !moved; ++i)
            moved = state_after[b][i] != state_before[b][i];
    EXPECT_TRUE(moved) << "running stats never updated";
}

} // namespace
} // namespace ptolemy
