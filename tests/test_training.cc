/**
 * @file
 * End-to-end training tests: the substrate must be able to fit the
 * synthetic data (the whole reproduction depends on trained models whose
 * class paths are meaningful).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/test_models.hh"
#include "nn/loss.hh"

namespace ptolemy
{
namespace
{

TEST(Loss, SoftmaxSumsToOne)
{
    nn::Tensor logits(nn::flatShape(4), {1.0f, 2.0f, 3.0f, 4.0f});
    const auto p = nn::softmax(logits);
    double sum = 0.0;
    for (double v : p)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(p[3], p[0]);
}

TEST(Loss, CrossEntropyGradientSignsPushTowardLabel)
{
    nn::Tensor logits(nn::flatShape(3), {0.0f, 0.0f, 0.0f});
    const auto lg = nn::softmaxCrossEntropy(logits, 1);
    EXPECT_NEAR(lg.loss, std::log(3.0), 1e-6);
    EXPECT_LT(lg.grad[1], 0.0f); // increase the true-class logit
    EXPECT_GT(lg.grad[0], 0.0f);
    EXPECT_GT(lg.grad[2], 0.0f);
    float sum = lg.grad[0] + lg.grad[1] + lg.grad[2];
    EXPECT_NEAR(sum, 0.0f, 1e-6);
}

TEST(Training, LossDecreasesAndTestAccuracyIsHigh)
{
    auto &w = testing::world();
    // The shared tiny CNN must clearly learn the 10-class problem.
    EXPECT_GT(w.testAccuracy, 0.85) << "tiny model failed to train";
}

TEST(Training, TrainedModelBeatsChanceOnEveryClass)
{
    auto &w = testing::world();
    std::vector<int> correct(10, 0), total(10, 0);
    for (const auto &s : w.dataset.test) {
        ++total[s.label];
        if (w.net.predict(s.input) == s.label)
            ++correct[s.label];
    }
    for (int c = 0; c < 10; ++c) {
        ASSERT_GT(total[c], 0);
        EXPECT_GT(static_cast<double>(correct[c]) / total[c], 0.4)
            << "class " << c;
    }
}

TEST(Training, EpochStatsImprove)
{
    // Train a fresh copy for two epochs and check the loss trajectory.
    auto net = testing::makeTinyNet(10);
    nn::heInit(net, 21);
    data::DatasetSpec spec;
    spec.trainPerClass = 30;
    spec.testPerClass = 5;
    const auto ds = data::makeSyntheticDataset(spec);
    nn::TrainConfig tc;
    tc.epochs = 2;
    nn::Trainer trainer(tc);
    const auto hist = trainer.train(net, ds.train);
    ASSERT_EQ(hist.size(), 2u);
    EXPECT_LT(hist[1].avgLoss, hist[0].avgLoss);
    EXPECT_GT(hist[1].trainAccuracy, hist[0].trainAccuracy);
}

TEST(Training, EvaluateOnEmptyDatasetIsZero)
{
    auto net = testing::makeTinyNet(10);
    EXPECT_DOUBLE_EQ(nn::Trainer::evaluate(net, {}), 0.0);
}

} // namespace
} // namespace ptolemy
