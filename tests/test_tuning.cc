/**
 * @file
 * Tuning-file loader tests: a bench_sweep picks JSON applies its
 * picked_env knobs at startup, explicit environment always wins,
 * unknown knobs are never injected, and malformed/missing files are
 * ignored without side effects.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "util/tuning.hh"

namespace
{

/** Scoped env guard: remembers and restores one variable. */
class EnvGuard
{
  public:
    explicit EnvGuard(const char *name) : key(name)
    {
        if (const char *v = std::getenv(name)) {
            had = true;
            old = v;
        }
        ::unsetenv(name);
    }
    ~EnvGuard()
    {
        if (had)
            ::setenv(key.c_str(), old.c_str(), 1);
        else
            ::unsetenv(key.c_str());
    }

  private:
    std::string key, old;
    bool had = false;
};

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    out << text;
}

TEST(Tuning, PicksFileAppliesOnlyUnsetKnownKnobs)
{
    EnvGuard g1("PTOLEMY_WIDE_CHUNK"), g2("PTOLEMY_PREPACK"),
        g3("PTOLEMY_SIMD"), g4("PTOLEMY_EVIL_INJECTION");
    ::setenv("PTOLEMY_PREPACK", "1", 1); // explicitly pinned: must win

    const std::string path = "tuning_picks_test.json";
    // Shape matches tools/bench_sweep.py output: string AND bare-number
    // values, plus a knob the whitelist must refuse.
    writeFile(path, R"({
  "select_key": "detect.batch_per_sec",
  "picked_env": {
    "PTOLEMY_WIDE_CHUNK": 48,
    "PTOLEMY_PREPACK": "0",
    "PTOLEMY_SIMD": "scalar",
    "PTOLEMY_EVIL_INJECTION": "1"
  },
  "picked_knobs": {"threads": 1}
})");

    const unsigned applied = ptolemy::applyTuningFile(path.c_str());
    EXPECT_EQ(applied, 2u) << "WIDE_CHUNK + SIMD (PREPACK was pinned, "
                              "EVIL is not a knob)";
    ASSERT_NE(std::getenv("PTOLEMY_WIDE_CHUNK"), nullptr);
    EXPECT_STREQ(std::getenv("PTOLEMY_WIDE_CHUNK"), "48");
    EXPECT_STREQ(std::getenv("PTOLEMY_SIMD"), "scalar");
    EXPECT_STREQ(std::getenv("PTOLEMY_PREPACK"), "1")
        << "explicit environment must beat the tuning file";
    EXPECT_EQ(std::getenv("PTOLEMY_EVIL_INJECTION"), nullptr)
        << "a tuning file must never inject arbitrary environment";
    std::remove(path.c_str());
}

TEST(Tuning, MalformedAndMissingFilesAreIgnored)
{
    EnvGuard g1("PTOLEMY_WIDE_CHUNK");
    EXPECT_EQ(ptolemy::applyTuningFile("tuning_no_such_file.json"), 0u);

    const std::string path = "tuning_bad_test.json";
    writeFile(path, "{\"rows\": []}"); // no picked_env block
    EXPECT_EQ(ptolemy::applyTuningFile(path.c_str()), 0u);
    writeFile(path, "not json at all");
    EXPECT_EQ(ptolemy::applyTuningFile(path.c_str()), 0u);
    writeFile(path, "{\"picked_env\": {\"PTOLEMY_WIDE_CHUNK\": }");
    EXPECT_EQ(ptolemy::applyTuningFile(path.c_str()), 0u);
    EXPECT_EQ(std::getenv("PTOLEMY_WIDE_CHUNK"), nullptr);
    std::remove(path.c_str());
}

TEST(Tuning, EnsureTuningAppliedIsIdempotent)
{
    // The once-flag has long since fired in this process (the global
    // pool reads it at first use); this just pins the API contract:
    // callable any number of times, cheap, and the introspection
    // counter is stable.
    ptolemy::ensureTuningApplied();
    const unsigned a = ptolemy::tuningKnobsApplied();
    ptolemy::ensureTuningApplied();
    EXPECT_EQ(ptolemy::tuningKnobsApplied(), a);
}

} // namespace
