/**
 * @file
 * Attack-suite tests: every attack must actually fool the trained model
 * on a reasonable fraction of inputs while respecting its perturbation
 * family (L∞ ball, L0 budget, low-distortion L2).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "attack/adaptive.hh"
#include "attack/cw.hh"
#include "attack/deepfool.hh"
#include "attack/gradient_attacks.hh"
#include "attack/jsma.hh"
#include "attack/suite.hh"
#include "common/test_models.hh"

namespace ptolemy::attack
{
namespace
{

/** Collect up to @p n correctly-classified test samples. */
std::vector<const nn::Sample *>
correctSamples(int n)
{
    auto &w = ptolemy::testing::world();
    std::vector<const nn::Sample *> out;
    for (const auto &s : w.dataset.test) {
        if (w.net.predict(s.input) == s.label)
            out.push_back(&s);
        if (static_cast<int>(out.size()) == n)
            break;
    }
    return out;
}

double
successRate(Attack &atk, int n = 12)
{
    auto &w = ptolemy::testing::world();
    const auto samples = correctSamples(n);
    int wins = 0;
    // Distinct sample indices so randomized attacks (PGD) draw a
    // fresh noise realization per sample, like the evaluation path.
    for (std::size_t i = 0; i < samples.size(); ++i)
        wins += atk.run(w.net, samples[i]->input, samples[i]->label, i)
                    .success;
    return samples.empty() ? 0.0
                           : static_cast<double>(wins) / samples.size();
}

TEST(Metrics, DistortionMeasures)
{
    nn::Tensor a(nn::flatShape(4), {0.0f, 0.0f, 0.0f, 0.0f});
    nn::Tensor b(nn::flatShape(4), {0.1f, 0.0f, -0.2f, 0.0f});
    EXPECT_NEAR(mseDistortion(a, b), (0.01 + 0.04) / 4.0, 1e-9);
    EXPECT_NEAR(linfDistortion(a, b), 0.2, 1e-7);
    EXPECT_EQ(l0Distortion(a, b), 2u);
    EXPECT_NEAR(l2Distortion(a, b), std::sqrt(0.05), 1e-7);
}

TEST(Metrics, ClipHelpers)
{
    nn::Tensor t(nn::flatShape(3), {-0.5f, 0.5f, 1.5f});
    clipToImageRange(t);
    EXPECT_FLOAT_EQ(t[0], 0.0f);
    EXPECT_FLOAT_EQ(t[2], 1.0f);

    nn::Tensor origin(nn::flatShape(3), {0.5f, 0.5f, 0.5f});
    nn::Tensor adv(nn::flatShape(3), {0.9f, 0.1f, 0.5f});
    clipToEpsBall(adv, origin, 0.1);
    EXPECT_FLOAT_EQ(adv[0], 0.6f);
    EXPECT_FLOAT_EQ(adv[1], 0.4f);
}

TEST(Fgsm, FoolsModelWithinEpsBall)
{
    Fgsm atk;
    EXPECT_GT(successRate(atk), 0.3);
    auto &w = ptolemy::testing::world();
    const auto *s = correctSamples(1)[0];
    const auto r = atk.run(w.net, s->input, s->label);
    EXPECT_LE(linfDistortion(r.adversarial, s->input), 0.08 + 1e-5);
}

TEST(Bim, StrongerThanFgsmAndRespectsBall)
{
    Fgsm fgsm;
    Bim bim;
    EXPECT_GE(successRate(bim) + 0.25, successRate(fgsm));
    auto &w = ptolemy::testing::world();
    const auto *s = correctSamples(2)[1];
    const auto r = bim.run(w.net, s->input, s->label);
    EXPECT_LE(linfDistortion(r.adversarial, s->input), 0.08 + 1e-5);
    if (r.success)
        EXPECT_NE(w.net.predict(r.adversarial), s->label);
}

TEST(Pgd, SucceedsOften)
{
    Pgd atk;
    EXPECT_GT(successRate(atk), 0.5);
}

TEST(Jsma, PerturbsFewPixels)
{
    Jsma atk(40, 0.4);
    auto &w = ptolemy::testing::world();
    const auto samples = correctSamples(6);
    for (const auto *s : samples) {
        const auto r = atk.run(w.net, s->input, s->label);
        EXPECT_LE(l0Distortion(r.adversarial, s->input), 40u);
    }
}

TEST(DeepFoolAttack, FindsSmallPerturbations)
{
    DeepFool atk;
    auto &w = ptolemy::testing::world();
    const auto samples = correctSamples(8);
    int wins = 0;
    double total_mse = 0.0;
    for (const auto *s : samples) {
        const auto r = atk.run(w.net, s->input, s->label);
        wins += r.success;
        if (r.success)
            total_mse += r.mse;
    }
    EXPECT_GT(wins, 2);
    // DeepFool's whole point is minimal distortion.
    EXPECT_LT(total_mse / std::max(1, wins), 0.02);
}

TEST(CarliniWagner, ProducesLowConfidenceAdversaries)
{
    CarliniWagnerL2 atk;
    auto &w = ptolemy::testing::world();
    const auto samples = correctSamples(8);
    int wins = 0;
    for (const auto *s : samples) {
        const auto r = atk.run(w.net, s->input, s->label);
        if (!r.success)
            continue;
        ++wins;
        // Low-confidence property (paper Sec. VII-B): rank-1 and rank-2
        // logits should be close for boundary-grazing CW samples.
        auto rec = w.net.forward(r.adversarial);
        std::vector<float> logits(rec.logits().vec());
        std::sort(logits.rbegin(), logits.rend());
        EXPECT_LT(logits[0] - logits[1], 2.0f);
    }
    EXPECT_GT(wins, 2);
}

TEST(AdaptiveAttack, MatchesActivationsAndFools)
{
    auto &w = ptolemy::testing::world();
    AdaptiveActivationAttack atk(4, &w.dataset.train, 3, 40, 0.08);
    EXPECT_EQ(atk.name(), "AT4");
    const auto samples = correctSamples(5);
    int wins = 0;
    double mse_sum = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        // Distinct indices -> per-sample target-draw streams.
        const auto r =
            atk.run(w.net, samples[i]->input, samples[i]->label, i);
        wins += r.success;
        mse_sum += r.mse;
    }
    EXPECT_GT(wins, 1);
    // Unbounded attack but the distortion stays moderate (paper reports
    // avg MSE 0.007, max 0.035 at ImageNet scale).
    EXPECT_LT(mse_sum / samples.size(), 0.25);
}

TEST(Suite, ContainsThePaperFiveAttacks)
{
    const auto attacks = makeStandardAttacks();
    ASSERT_EQ(attacks.size(), 5u);
    EXPECT_EQ(attacks[0]->name(), "BIM");
    EXPECT_EQ(attacks[1]->name(), "CWL2");
    EXPECT_EQ(attacks[2]->name(), "DeepFool");
    EXPECT_EQ(attacks[3]->name(), "FGSM");
    EXPECT_EQ(attacks[4]->name(), "JSMA");
}

} // namespace
} // namespace ptolemy::attack
