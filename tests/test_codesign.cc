/**
 * @file
 * Hardware/software co-design cross-validation: the compiled programs'
 * functional execution (hw::runFunctional) must be bit-identical to the
 * software serving engine (DetectorSession::detectBatch) — selected path
 * bits AND Decisions — at both the argmax-selection and heap-fallback
 * operating points; batch programs must be functionally equivalent to
 * repeating the single-sample program; and the compiler's static output
 * is pinned per optimization-pass combination so any emission change is
 * a deliberate, visible diff.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/test_models.hh"
#include "compiler/compiler.hh"
#include "core/detector_model.hh"
#include "core/detector_session.hh"
#include "hw/functional.hh"
#include "path/extractor.hh"
#include "path/trace.hh"
#include "util/rng.hh"

namespace ptolemy::hw
{
namespace
{

int
numWeighted()
{
    return static_cast<int>(
        ptolemy::testing::world().net.weightedNodes().size());
}

/** Mixed clean/perturbed probe inputs (same recipe as the serving-API
 *  tests: half the batch nudged off-manifold so decisions differ). */
std::vector<nn::Tensor>
probeInputs(std::size_t n)
{
    auto &w = ptolemy::testing::world();
    Rng rng(0xC0DE516);
    std::vector<nn::Tensor> xs;
    for (std::size_t i = 0; i < n; ++i) {
        nn::Tensor x = w.dataset.test[i % w.dataset.test.size()].input;
        if (i % 2 == 1)
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.08, 0.08));
        xs.push_back(std::move(x));
    }
    return xs;
}

/** Fully-fitted model (class paths + forest) at one theta. */
core::DetectorModel
makeModel(double theta)
{
    auto &w = ptolemy::testing::world();
    core::DetectorBuilder bld(
        w.net, path::ExtractionConfig::bwCu(numWeighted(), theta), 10);
    bld.profileClassPaths(w.dataset.train, 20);
    Rng rng(0x51AB5);
    std::vector<nn::Tensor> clean, noisy;
    for (std::size_t i = 0; i < 16; ++i) {
        const auto &s = w.dataset.test[i];
        clean.push_back(s.input);
        nn::Tensor x = s.input;
        for (std::size_t e = 0; e < x.size(); ++e)
            x[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
        noisy.push_back(std::move(x));
    }
    classify::FeatureMatrix benign, adversarial;
    bld.featuresBatch(clean, benign);
    bld.featuresBatch(noisy, adversarial);
    bld.fitClassifier(benign, adversarial);
    return std::move(bld).build();
}

/** Profiled trace over the probe inputs via the batched entry point. */
path::ExtractionTrace
profiledTrace(const core::DetectorModel &model, const nn::Network &net,
              const std::vector<nn::Tensor> &xs)
{
    std::vector<nn::Network::Record> recs;
    net.forwardBatch(xs, recs);
    return model.extractor().profileBatch(recs);
}

void
expectDecisionsEqual(const core::Decision &a, const core::Decision &b,
                     const std::string &what)
{
    EXPECT_EQ(a.predictedClass, b.predictedClass) << what;
    EXPECT_EQ(a.adversarial, b.adversarial) << what;
    EXPECT_EQ(a.score, b.score) << what; // bitwise: doubles must match
    EXPECT_EQ(a.features.overall, b.features.overall) << what;
    ASSERT_EQ(a.features.perLayer.size(), b.features.perLayer.size())
        << what;
    for (std::size_t l = 0; l < a.features.perLayer.size(); ++l)
        EXPECT_EQ(a.features.perLayer[l], b.features.perLayer[l])
            << what << " layer " << l;
}

/** Core cross-validation: a batch-N compiled program executed
 *  functionally must reproduce DetectorSession::detectBatch bit for bit
 *  (selected path bits and full Decisions). */
void
crossValidate(const nn::Network &net, const core::DetectorModel &model,
              const std::vector<nn::Tensor> &xs, double theta)
{
    const auto trace = profiledTrace(model, net, xs);
    compiler::CompileOptions opts;
    opts.batchSize = xs.size();
    const auto cfg = path::ExtractionConfig::bwCu(
        static_cast<int>(net.weightedNodes().size()), theta);
    const auto prog = compiler::Compiler(net, cfg, opts).compile(trace);

    std::vector<const nn::Tensor *> ptrs;
    for (const auto &x : xs)
        ptrs.push_back(&x);
    const std::span<const nn::Tensor *const> span(ptrs.data(), ptrs.size());

    const auto hw_res = runFunctional(prog, model, span);
    ASSERT_TRUE(hw_res.halted);
    ASSERT_EQ(hw_res.decisions.size(), xs.size());
    ASSERT_EQ(hw_res.paths.size(), xs.size());

    // Software side: the serving engine's decisions...
    core::DetectorSession sess(model);
    std::vector<core::Decision> sw(xs.size());
    sess.detectBatch(span, {sw.data(), sw.size()});

    // ...and its selected path bits (branchless argmax selection — a
    // different selection algorithm than the simulator's reference
    // sort, so matching bits are a real cross-check).
    path::ExtractionWorkspace ws;
    nn::Network::Record rec;
    BitVector sw_path;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const std::string what =
            "theta=" + std::to_string(theta) + " sample " +
            std::to_string(i);
        expectDecisionsEqual(hw_res.decisions[i], sw[i], what);
        model.network().inferInto(xs[i], rec);
        model.extractor().extractInto(rec, ws, sw_path);
        EXPECT_TRUE(hw_res.paths[i] == sw_path) << what << ": selected "
                                                   "path bits diverge";
    }
}

TEST(Codesign, FunctionalSimMatchesSessionArgmaxSelection)
{
    auto &w = ptolemy::testing::world();
    const core::DetectorModel model = makeModel(0.5);
    const auto xs = probeInputs(6);

    // The trained world's psum mass is concentrated: every ranked
    // prefix fits in the scan-pass budget, so this covers exactly the
    // argmax selection path.
    const auto trace = profiledTrace(model, w.net, xs);
    EXPECT_EQ(trace.sum(
                  [](const path::LayerTrace &lt) { return lt.heapPops; }),
              0u)
        << "expected a pure argmax-selection workload";

    crossValidate(w.net, model, xs, 0.5);
}

TEST(Codesign, FunctionalSimMatchesSessionHeapFallback)
{
    // Trained layers concentrate their psum mass, so no realistic theta
    // overflows the 32-pass scan budget on the tiny world (even 0.999
    // stays under it — cancellation keeps ranked prefixes short). To
    // cover the heap-fallback selection path for real, build a wide
    // all-positive FC net whose psums are near-uniform: at theta=0.98
    // the minimal prefix spans ~98% of a 256-wide receptive field,
    // far past the budget on both the session (scan -> heap) and the
    // functional simulator (reference sort) sides.
    nn::Network net("widefc", nn::flatShape(256));
    auto fc1 = std::make_unique<nn::Linear>("fc1", 256, 24);
    auto fc2 = std::make_unique<nn::Linear>("fc2", 24, 4);
    Rng wrng(0xFA11BAC);
    for (nn::Linear *fc : {fc1.get(), fc2.get()}) {
        for (auto &v : fc->weights())
            v = static_cast<float>(wrng.uniform(0.5, 1.5));
        for (auto &v : fc->biases())
            v = 0.0f;
    }
    net.add(std::move(fc1));
    net.add(std::make_unique<nn::ReLU>("relu"));
    net.add(std::move(fc2));

    Rng rng(0x4EA9);
    std::vector<nn::Tensor> xs;
    for (int i = 0; i < 4; ++i) {
        nn::Tensor x(nn::flatShape(256));
        for (std::size_t e = 0; e < x.size(); ++e)
            x[e] = static_cast<float>(rng.uniform(0.5, 1.0));
        xs.push_back(std::move(x));
    }

    core::DetectorBuilder bld(
        net, path::ExtractionConfig::bwCu(2, 0.98), 4);
    {
        nn::Dataset profile;
        nn::Network::Record rec;
        for (const auto &x : xs)
            profile.push_back({x, net.inferPredict(x, rec)});
        bld.profileClassPaths(profile, 4);
        std::vector<nn::Tensor> noisy;
        for (const auto &x : xs) {
            nn::Tensor p = x;
            for (std::size_t e = 0; e < p.size(); ++e)
                p[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
            noisy.push_back(std::move(p));
        }
        classify::FeatureMatrix benign, adversarial;
        bld.featuresBatch(xs, benign);
        bld.featuresBatch(noisy, adversarial);
        bld.fitClassifier(benign, adversarial);
    }
    const core::DetectorModel model = std::move(bld).build();

    // Coverage proof: the workload must actually overflow the scan-pass
    // budget, or this test silently collapses onto the argmax path.
    const auto trace = profiledTrace(model, net, xs);
    EXPECT_GT(trace.sum([](const path::LayerTrace &lt) {
        return lt.heapFallbackNeurons;
    }), 0u) << "workload never overflowed the scan-pass budget";
    EXPECT_GT(trace.sum(
                  [](const path::LayerTrace &lt) { return lt.heapPops; }),
              0u);

    crossValidate(net, model, xs, 0.98);
}

TEST(Codesign, BatchProgramEquivalentToRepeatedSingleSample)
{
    auto &w = ptolemy::testing::world();
    const core::DetectorModel model = makeModel(0.5);
    const auto xs = probeInputs(5);
    const auto trace = profiledTrace(model, w.net, xs);
    const auto cfg = path::ExtractionConfig::bwCu(numWeighted(), 0.5);

    compiler::CompileOptions single;
    const auto prog1 = compiler::Compiler(w.net, cfg, single).compile(trace);
    compiler::CompileOptions batched;
    batched.batchSize = xs.size();
    const auto progN =
        compiler::Compiler(w.net, cfg, batched).compile(trace);

    std::vector<const nn::Tensor *> ptrs;
    for (const auto &x : xs)
        ptrs.push_back(&x);
    const auto batch_res = runFunctional(
        progN, model, {ptrs.data(), ptrs.size()});
    ASSERT_TRUE(batch_res.halted);
    ASSERT_EQ(batch_res.decisions.size(), xs.size());

    for (std::size_t i = 0; i < xs.size(); ++i) {
        const auto one = runFunctional(prog1, model, {&ptrs[i], 1});
        ASSERT_TRUE(one.halted);
        ASSERT_EQ(one.decisions.size(), 1u);
        const std::string what = "sample " + std::to_string(i);
        expectDecisionsEqual(batch_res.decisions[i], one.decisions[0],
                             what);
        EXPECT_TRUE(batch_res.paths[i] == one.paths[0]) << what;
    }
}

TEST(Codesign, BatchOneProgramIdenticalToSingleSampleProgram)
{
    // batchSize=1 must emit the historical single-sample program byte
    // for byte — no countdown loop, no movr/dec/jne scaffolding.
    auto &w = ptolemy::testing::world();
    const core::DetectorModel model = makeModel(0.5);
    const auto trace = profiledTrace(model, w.net, probeInputs(4));
    const auto cfg = path::ExtractionConfig::bwCu(numWeighted(), 0.5);

    compiler::CompileOptions implicit;
    compiler::CompileOptions explicit1;
    explicit1.batchSize = 1;
    const auto a = compiler::Compiler(w.net, cfg, implicit).compile(trace);
    const auto b = compiler::Compiler(w.net, cfg, explicit1).compile(trace);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.instruction(i).encode(), b.instruction(i).encode())
            << "instruction " << i;
}

TEST(Codesign, GoldenInstructionCountsPerOptionCombination)
{
    // Static program sizes for the shared trained world, pinned per
    // optimization-pass combination. These are deterministic functions
    // of the compiler's emission logic and the network topology (4
    // weighted layers): an unexpected change here means program
    // emission changed and must be reviewed (and the hw block of
    // bench/baselines/default.json re-recorded).
    auto &w = ptolemy::testing::world();
    const core::DetectorModel model = makeModel(0.5);
    const auto trace = profiledTrace(model, w.net, probeInputs(4));
    const auto cfg = path::ExtractionConfig::bwCu(numWeighted(), 0.5);

    const auto size_for = [&](const compiler::CompileOptions &opts) {
        return compiler::Compiler(w.net, cfg, opts).compile(trace).size();
    };

    compiler::CompileOptions all;
    compiler::CompileOptions no_neuron = all;
    no_neuron.neuronPipelining = false;
    compiler::CompileOptions no_layer = all;
    no_layer.layerPipelining = false;
    compiler::CompileOptions no_recompute = all;
    no_recompute.recomputePsums = false;
    compiler::CompileOptions none;
    none.neuronPipelining = false;
    none.layerPipelining = false;
    none.recomputePsums = false;
    compiler::CompileOptions batch8 = all;
    batch8.batchSize = 8;

    EXPECT_EQ(size_for(all), 65u);
    EXPECT_EQ(size_for(no_neuron), 55u);
    EXPECT_EQ(size_for(no_layer), 65u);
    EXPECT_EQ(size_for(no_recompute), 59u);
    EXPECT_EQ(size_for(none), 51u);
    EXPECT_EQ(size_for(batch8), 132u);
}

} // namespace
} // namespace ptolemy::hw
