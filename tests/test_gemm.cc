/**
 * @file
 * GEMM kernel correctness and GEMM-conv vs naive-conv equivalence
 * (forward and backward, padded/strided cases swept).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "nn/conv.hh"
#include "nn/gemm.hh"
#include "nn/linear.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace ptolemy::nn
{
namespace
{

void
fillRandom(std::vector<float> &v, Rng &rng, float scale = 1.0f)
{
    for (auto &x : v)
        x = (static_cast<float>(rng.uniform()) - 0.5f) * scale;
}

Tensor
randomTensor(Shape s, Rng &rng, float scale = 1.0f)
{
    Tensor t(s);
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = (static_cast<float>(rng.uniform()) - 0.5f) * scale;
    return t;
}

/** RAII guard restoring the process-wide conv-mode flag. */
struct ConvModeGuard
{
    bool saved = naiveConvFlag();
    ~ConvModeGuard() { naiveConvFlag() = saved; }
};

void
naiveGemmRef(int M, int N, int K, const std::vector<float> &A,
             const std::vector<float> &B, std::vector<float> &C)
{
    C.assign(static_cast<std::size_t>(M) * N, 0.0f);
    for (int i = 0; i < M; ++i)
        for (int k = 0; k < K; ++k)
            for (int j = 0; j < N; ++j)
                C[static_cast<std::size_t>(i) * N + j] +=
                    A[static_cast<std::size_t>(i) * K + k] *
                    B[static_cast<std::size_t>(k) * N + j];
}

TEST(Sgemm, MatchesNaiveTripleLoopAcrossBlockBoundaries)
{
    Rng rng(1);
    // Sizes straddling the kernel's 32/128/256 block boundaries.
    const int sizes[][3] = {
        {1, 1, 1}, {3, 5, 7}, {33, 17, 129}, {64, 300, 140}, {40, 257, 4}};
    for (const auto &s : sizes) {
        const int M = s[0], N = s[1], K = s[2];
        std::vector<float> A(static_cast<std::size_t>(M) * K);
        std::vector<float> B(static_cast<std::size_t>(K) * N);
        fillRandom(A, rng);
        fillRandom(B, rng);
        std::vector<float> C(static_cast<std::size_t>(M) * N, -1.0f);
        std::vector<float> ref;
        sgemm(M, N, K, A.data(), B.data(), C.data());
        naiveGemmRef(M, N, K, A, B, ref);
        for (std::size_t i = 0; i < ref.size(); ++i)
            ASSERT_NEAR(C[i], ref[i], 1e-3f)
                << "M=" << M << " N=" << N << " K=" << K << " i=" << i;
    }
}

TEST(Sgemm, TransposedVariantsMatchPlainGemm)
{
    Rng rng(2);
    const int M = 37, N = 65, K = 50;
    std::vector<float> A(static_cast<std::size_t>(M) * K);
    std::vector<float> B(static_cast<std::size_t>(K) * N);
    fillRandom(A, rng);
    fillRandom(B, rng);
    std::vector<float> ref;
    naiveGemmRef(M, N, K, A, B, ref);

    // sgemmTN consumes A stored transposed ([K x M]).
    std::vector<float> At(static_cast<std::size_t>(K) * M);
    for (int i = 0; i < M; ++i)
        for (int k = 0; k < K; ++k)
            At[static_cast<std::size_t>(k) * M + i] =
                A[static_cast<std::size_t>(i) * K + k];
    std::vector<float> C(static_cast<std::size_t>(M) * N);
    sgemmTN(M, N, K, At.data(), B.data(), C.data());
    for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(C[i], ref[i], 1e-3f);

    // sgemmNT consumes B stored transposed ([N x K]).
    std::vector<float> Bt(static_cast<std::size_t>(N) * K);
    for (int k = 0; k < K; ++k)
        for (int j = 0; j < N; ++j)
            Bt[static_cast<std::size_t>(j) * K + k] =
                B[static_cast<std::size_t>(k) * N + j];
    std::vector<float> C2(static_cast<std::size_t>(M) * N);
    sgemmNT(M, N, K, A.data(), Bt.data(), C2.data());
    for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(C2[i], ref[i], 1e-3f);
}

TEST(Sgemm, AccumulateAddsOntoExistingC)
{
    Rng rng(3);
    const int M = 8, N = 9, K = 10;
    std::vector<float> A(static_cast<std::size_t>(M) * K);
    std::vector<float> B(static_cast<std::size_t>(K) * N);
    fillRandom(A, rng);
    fillRandom(B, rng);
    std::vector<float> ref;
    naiveGemmRef(M, N, K, A, B, ref);
    std::vector<float> C(ref.size(), 2.5f);
    sgemm(M, N, K, A.data(), B.data(), C.data(), /*accumulate=*/true);
    for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(C[i], ref[i] + 2.5f, 1e-3f);
}

/** Shapes swept by the conv equivalence tests: {k, stride, pad, h, w}.
 *  The 1-wide/1-tall cases cover kernel footprints wider than the
 *  padded image, which the im2col border fast path must clamp. */
const int kConvCases[][5] = {
    {3, 1, 1, 8, 8},  {3, 1, 0, 8, 10}, {3, 2, 1, 9, 9}, {1, 1, 0, 6, 6},
    {5, 1, 2, 11, 9}, {5, 2, 2, 12, 12}, {3, 2, 0, 7, 11}, {5, 1, 2, 4, 1},
    {5, 1, 2, 1, 6}};

TEST(ConvGemm, ForwardMatchesNaiveAcrossStridesAndPadding)
{
    ConvModeGuard guard;
    Rng rng(4);
    for (const auto &cs : kConvCases) {
        const int k = cs[0], stride = cs[1], pad = cs[2];
        const int h = cs[3], w = cs[4];
        Conv2d conv("c", 3, 5, k, stride, pad);
        fillRandom(conv.weights(), rng);
        fillRandom(conv.biases(), rng);
        const Tensor x = randomTensor(mapShape(3, h, w), rng);

        Tensor out_gemm, out_naive;
        naiveConvFlag() = false;
        conv.forwardInto({&x}, out_gemm, false);
        naiveConvFlag() = true;
        conv.forwardInto({&x}, out_naive, false);

        ASSERT_EQ(out_gemm.shape(), out_naive.shape());
        for (std::size_t i = 0; i < out_gemm.size(); ++i)
            ASSERT_NEAR(out_gemm[i], out_naive[i], 1e-4f)
                << "k=" << k << " s=" << stride << " p=" << pad
                << " i=" << i;
    }
}

TEST(ConvGemm, BackwardMatchesNaiveAcrossStridesAndPadding)
{
    ConvModeGuard guard;
    Rng rng(5);
    for (const auto &cs : kConvCases) {
        const int k = cs[0], stride = cs[1], pad = cs[2];
        const int h = cs[3], w = cs[4];
        // Two identical layers, one per mode, so gradient accumulation
        // stays separate.
        Conv2d cg("g", 3, 4, k, stride, pad), cn("n", 3, 4, k, stride, pad);
        fillRandom(cg.weights(), rng);
        fillRandom(cg.biases(), rng);
        cn.weights() = cg.weights();
        cn.biases() = cg.biases();
        const Tensor x = randomTensor(mapShape(3, h, w), rng);

        naiveConvFlag() = false;
        auto out = cg.forward({&x}, false);
        const Tensor gout = randomTensor(out.shape(), rng);
        auto gin_gemm = cg.backward({&x}, gout);

        naiveConvFlag() = true;
        cn.forward({&x}, false);
        auto gin_naive = cn.backward({&x}, gout);

        for (std::size_t i = 0; i < gin_gemm[0].size(); ++i)
            ASSERT_NEAR(gin_gemm[0][i], gin_naive[0][i], 1e-4f)
                << "grad_in k=" << k << " s=" << stride << " p=" << pad;
        auto pg = cg.params(), pn = cn.params();
        for (std::size_t b = 0; b < pg.size(); ++b)
            for (std::size_t i = 0; i < pg[b].grad->size(); ++i)
                ASSERT_NEAR((*pg[b].grad)[i], (*pn[b].grad)[i], 1e-3f)
                    << "param buf " << b << " k=" << k << " s=" << stride
                    << " p=" << pad;
    }
}

TEST(ConvGemm, PartialSumsStillMatchForwardOutput)
{
    // The extraction path decomposes each output neuron into partial
    // sums; they must sum to the GEMM output minus bias within float
    // noise regardless of the forward implementation.
    ConvModeGuard guard;
    naiveConvFlag() = false;
    Rng rng(6);
    Conv2d conv("c", 2, 3, 3, 1, 1);
    fillRandom(conv.weights(), rng);
    fillRandom(conv.biases(), rng);
    const Tensor x = randomTensor(mapShape(2, 6, 6), rng);
    Tensor out;
    conv.forwardInto({&x}, out, false);

    std::vector<PartialSum> psums;
    for (std::size_t o = 0; o < out.size(); ++o) {
        conv.partialSums(x, o, psums);
        double s = conv.biases()[o / (out.shape().numel() / 3)];
        for (const auto &ps : psums)
            s += ps.value;
        ASSERT_NEAR(s, out[o], 1e-4);
    }
}

/** RAII guard restoring the process-wide SIMD mode. */
struct SimdModeGuard
{
    SimdMode saved = simdMode();
    ~SimdModeGuard() { simdMode() = saved; }
};

/** RAII guard restoring the gemm pool pointer. */
struct GemmPoolGuard
{
    ThreadPool *saved = gemmPool();
    ~GemmPoolGuard() { gemmPool() = saved; }
};

TEST(SgemmSimd, Avx2MatchesScalarAcrossOddRemainders)
{
    if (!avx2Available())
        GTEST_SKIP() << "AVX2 kernels not compiled in or not supported";
    SimdModeGuard guard;
    GemmPoolGuard pool_guard;
    gemmPool() = nullptr; // isolate the kernels from threading
    Rng rng(11);

    // Remainders around the microkernel's 6-row / 16-column / 8-column
    // blocking and a few deeper K values for the FMA accumulators.
    const int ms[] = {1, 2, 5, 6, 7, 12, 17, 33};
    const int ns[] = {1, 7, 8, 15, 16, 17, 24, 40, 257};
    const int ks[] = {1, 3, 9, 64};
    for (int M : ms) {
        for (int N : ns) {
            for (int K : ks) {
                std::vector<float> A(static_cast<std::size_t>(M) * K);
                std::vector<float> B(static_cast<std::size_t>(K) * N);
                std::vector<float> Bt(static_cast<std::size_t>(N) * K);
                std::vector<float> At(static_cast<std::size_t>(K) * M);
                fillRandom(A, rng);
                fillRandom(B, rng);
                for (int i = 0; i < M; ++i)
                    for (int k = 0; k < K; ++k)
                        At[static_cast<std::size_t>(k) * M + i] =
                            A[static_cast<std::size_t>(i) * K + k];
                for (int k = 0; k < K; ++k)
                    for (int j = 0; j < N; ++j)
                        Bt[static_cast<std::size_t>(j) * K + k] =
                            B[static_cast<std::size_t>(k) * N + j];

                const std::size_t cn = static_cast<std::size_t>(M) * N;
                std::vector<float> cs(cn, 0.5f), cv(cn, 0.5f);
                const float tol =
                    1e-4f * (1.0f + static_cast<float>(K) * 0.05f);
                const bool acc = (M + N + K) % 2 == 0; // sweep both modes

                simdMode() = SimdMode::Scalar;
                sgemm(M, N, K, A.data(), B.data(), cs.data(), acc);
                simdMode() = SimdMode::Avx2;
                sgemm(M, N, K, A.data(), B.data(), cv.data(), acc);
                for (std::size_t i = 0; i < cn; ++i)
                    ASSERT_NEAR(cs[i], cv[i], tol)
                        << "sgemm M=" << M << " N=" << N << " K=" << K
                        << " acc=" << acc << " i=" << i;

                std::fill(cs.begin(), cs.end(), 0.5f);
                std::fill(cv.begin(), cv.end(), 0.5f);
                simdMode() = SimdMode::Scalar;
                sgemmTN(M, N, K, At.data(), B.data(), cs.data(), acc);
                simdMode() = SimdMode::Avx2;
                sgemmTN(M, N, K, At.data(), B.data(), cv.data(), acc);
                for (std::size_t i = 0; i < cn; ++i)
                    ASSERT_NEAR(cs[i], cv[i], tol)
                        << "sgemmTN M=" << M << " N=" << N << " K=" << K;

                std::fill(cs.begin(), cs.end(), 0.5f);
                std::fill(cv.begin(), cv.end(), 0.5f);
                simdMode() = SimdMode::Scalar;
                sgemmNT(M, N, K, A.data(), Bt.data(), cs.data(), acc);
                simdMode() = SimdMode::Avx2;
                sgemmNT(M, N, K, A.data(), Bt.data(), cv.data(), acc);
                for (std::size_t i = 0; i < cn; ++i)
                    ASSERT_NEAR(cs[i], cv[i], tol)
                        << "sgemmNT M=" << M << " N=" << N << " K=" << K;
            }
        }
    }
}

TEST(SgemvBias, Avx2MatchesScalarAcrossOddLengths)
{
    if (!avx2Available())
        GTEST_SKIP() << "AVX2 kernels not compiled in or not supported";
    SimdModeGuard guard;
    Rng rng(13);

    // Lengths around the 8-wide FMA blocking plus FC-layer-like sizes.
    const int ms[] = {1, 2, 7, 10, 48, 64};
    const int ks[] = {1, 5, 8, 9, 16, 23, 192};
    for (int M : ms) {
        for (int K : ks) {
            std::vector<float> A(static_cast<std::size_t>(M) * K);
            std::vector<float> x(static_cast<std::size_t>(K));
            std::vector<float> b(static_cast<std::size_t>(M));
            fillRandom(A, rng);
            fillRandom(x, rng);
            fillRandom(b, rng);
            std::vector<float> ys(M, -7.0f), yv(M, -7.0f);
            const float tol = 1e-5f * (1.0f + static_cast<float>(K));
            simdMode() = SimdMode::Scalar;
            sgemvBias(M, K, A.data(), x.data(), b.data(), ys.data());
            simdMode() = SimdMode::Avx2;
            sgemvBias(M, K, A.data(), x.data(), b.data(), yv.data());
            for (int i = 0; i < M; ++i)
                ASSERT_NEAR(ys[i], yv[i], tol)
                    << "M=" << M << " K=" << K << " i=" << i;
        }
    }
}

TEST(SgemmThreads, BitIdenticalAcrossThreadCounts)
{
    // Each C element's accumulation order is independent of the tile
    // partition, so every pool size must give bit-identical results in
    // both kernel families. The product is sized above the parallel
    // cutoff so the pooled path actually engages.
    SimdModeGuard guard;
    GemmPoolGuard pool_guard;
    const int M = 64, N = 300, K = 80;
    Rng rng(12);
    std::vector<float> A(static_cast<std::size_t>(M) * K);
    std::vector<float> B(static_cast<std::size_t>(K) * N);
    std::vector<float> Bt(static_cast<std::size_t>(N) * K);
    fillRandom(A, rng);
    fillRandom(B, rng);
    for (int k = 0; k < K; ++k)
        for (int j = 0; j < N; ++j)
            Bt[static_cast<std::size_t>(j) * K + k] =
                B[static_cast<std::size_t>(k) * N + j];

    std::vector<SimdMode> modes = {SimdMode::Scalar};
    if (avx2Available())
        modes.push_back(SimdMode::Avx2);
    for (SimdMode mode : modes) {
        simdMode() = mode;
        gemmPool() = nullptr;
        std::vector<float> ref(static_cast<std::size_t>(M) * N);
        std::vector<float> ref_nt(ref.size());
        sgemm(M, N, K, A.data(), B.data(), ref.data());
        sgemmNT(M, N, K, A.data(), Bt.data(), ref_nt.data());

        for (unsigned threads : {1u, 2u, 8u}) {
            ThreadPool pool(threads);
            gemmPool() = &pool;
            std::vector<float> c(ref.size(), -1.0f), c_nt(ref.size(), -1.0f);
            sgemm(M, N, K, A.data(), B.data(), c.data());
            sgemmNT(M, N, K, A.data(), Bt.data(), c_nt.data());
            for (std::size_t i = 0; i < ref.size(); ++i) {
                ASSERT_EQ(c[i], ref[i])
                    << "sgemm mode=" << static_cast<int>(mode)
                    << " threads=" << threads << " i=" << i;
                ASSERT_EQ(c_nt[i], ref_nt[i])
                    << "sgemmNT mode=" << static_cast<int>(mode)
                    << " threads=" << threads << " i=" << i;
            }
            gemmPool() = nullptr;
        }
    }
}

TEST(LinearGemv, ForwardMatchesManualDotProducts)
{
    Rng rng(7);
    Linear lin("fc", 13, 6);
    fillRandom(lin.weights(), rng);
    fillRandom(lin.biases(), rng);
    const Tensor x = randomTensor(flatShape(13), rng);
    auto out = lin.forward({&x}, false);
    for (int o = 0; o < 6; ++o) {
        float acc = lin.biases()[o];
        for (int i = 0; i < 13; ++i)
            acc += lin.weights()[static_cast<std::size_t>(o) * 13 + i] * x[i];
        ASSERT_NEAR(out[o], acc, 1e-5f);
    }
}

} // namespace
} // namespace ptolemy::nn
