/**
 * @file
 * Unit tests for the BitVector path representation.
 */

#include <gtest/gtest.h>

#include "util/bitvector.hh"
#include "util/rng.hh"

namespace ptolemy
{
namespace
{

TEST(BitVector, StartsAllZero)
{
    BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_EQ(v.popcount(), 0u);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_FALSE(v.test(i));
}

TEST(BitVector, SetClearTest)
{
    BitVector v(100);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(99);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(99));
    EXPECT_FALSE(v.test(1));
    EXPECT_EQ(v.popcount(), 4u);
    v.clear(63);
    EXPECT_FALSE(v.test(63));
    EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVector, ResetKeepsSize)
{
    BitVector v(70);
    v.set(5);
    v.reset();
    EXPECT_EQ(v.size(), 70u);
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, OrAggregation)
{
    BitVector a(128), b(128);
    a.set(3);
    a.set(100);
    b.set(100);
    b.set(127);
    a |= b;
    EXPECT_TRUE(a.test(3));
    EXPECT_TRUE(a.test(100));
    EXPECT_TRUE(a.test(127));
    EXPECT_EQ(a.popcount(), 3u);
}

TEST(BitVector, AndPopcountMatchesMaterializedAnd)
{
    Rng rng(11);
    BitVector a(517), b(517);
    for (int i = 0; i < 200; ++i) {
        a.set(rng.below(517));
        b.set(rng.below(517));
    }
    BitVector c = a;
    c &= b;
    EXPECT_EQ(a.andPopcount(b), c.popcount());
}

TEST(BitVector, PopcountRange)
{
    BitVector v(256);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(128);
    v.set(255);
    EXPECT_EQ(v.popcountRange(0, 256), 5u);
    EXPECT_EQ(v.popcountRange(0, 64), 2u);
    EXPECT_EQ(v.popcountRange(64, 128), 1u);
    EXPECT_EQ(v.popcountRange(64, 65), 1u);
    EXPECT_EQ(v.popcountRange(65, 128), 0u);
    EXPECT_EQ(v.popcountRange(128, 256), 2u);
    EXPECT_EQ(v.popcountRange(10, 10), 0u);
}

TEST(BitVector, AndPopcountRange)
{
    BitVector a(200), b(200);
    a.set(5);
    a.set(70);
    a.set(150);
    b.set(5);
    b.set(150);
    EXPECT_EQ(a.andPopcountRange(b, 0, 200), 2u);
    EXPECT_EQ(a.andPopcountRange(b, 0, 64), 1u);
    EXPECT_EQ(a.andPopcountRange(b, 64, 128), 0u);
    EXPECT_EQ(a.andPopcountRange(b, 100, 200), 1u);
}

TEST(BitVector, JaccardSimilarity)
{
    BitVector a(64), b(64);
    a.set(1);
    a.set(2);
    b.set(2);
    b.set(3);
    // intersection 1, union 3
    EXPECT_DOUBLE_EQ(a.jaccard(b), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(a.jaccard(a), 1.0);
    BitVector e1(64), e2(64);
    EXPECT_DOUBLE_EQ(e1.jaccard(e2), 1.0); // both empty: identical
}

TEST(BitVector, SerializeRoundtrip)
{
    Rng rng(99);
    BitVector v(321);
    for (int i = 0; i < 100; ++i)
        v.set(rng.below(321));
    BitVector w;
    ASSERT_TRUE(BitVector::deserialize(v.serialize(), w));
    EXPECT_EQ(v, w);
}

TEST(BitVector, DeserializeRejectsGarbage)
{
    BitVector w;
    EXPECT_FALSE(BitVector::deserialize("", w));
    EXPECT_FALSE(BitVector::deserialize("abc", w));
    std::string truncated = BitVector(200).serialize();
    truncated.resize(truncated.size() - 3);
    EXPECT_FALSE(BitVector::deserialize(truncated, w));
}

/** Property sweep: popcountRange sums over a partition equal popcount. */
class BitVectorSizeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BitVectorSizeSweep, RangePartitionSumsToTotal)
{
    const std::size_t n = GetParam();
    Rng rng(n);
    BitVector v(n);
    for (std::size_t i = 0; i < n / 3 + 1; ++i)
        v.set(rng.below(n));
    const std::size_t step = n / 7 + 1;
    std::size_t total = 0;
    for (std::size_t lo = 0; lo < n; lo += step)
        total += v.popcountRange(lo, std::min(n, lo + step));
    EXPECT_EQ(total, v.popcount());
}

TEST_P(BitVectorSizeSweep, AndPopcountSymmetric)
{
    const std::size_t n = GetParam();
    Rng rng(n * 3 + 1);
    BitVector a(n), b(n);
    for (std::size_t i = 0; i < n / 2 + 1; ++i) {
        a.set(rng.below(n));
        b.set(rng.below(n));
    }
    EXPECT_EQ(a.andPopcount(b), b.andPopcount(a));
    EXPECT_LE(a.andPopcount(b), std::min(a.popcount(), b.popcount()));
}

TEST_P(BitVectorSizeSweep, OrAssignCountNewMatchesTwoPassDelta)
{
    const std::size_t n = GetParam();
    Rng rng(n * 5 + 7);
    BitVector acc(n), path(n);
    for (std::size_t i = 0; i < n / 3 + 1; ++i) {
        acc.set(rng.below(n));
        path.set(rng.below(n));
    }
    BitVector two_pass = acc;
    const std::size_t before = two_pass.popcount();
    two_pass |= path;
    const std::size_t expected_delta = two_pass.popcount() - before;

    const std::size_t delta = acc.orAssignCountNew(path);
    EXPECT_EQ(delta, expected_delta);
    EXPECT_EQ(acc, two_pass);
    // Saturation: OR-ing the same path again adds nothing.
    EXPECT_EQ(acc.orAssignCountNew(path), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorSizeSweep,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 1000,
                                           4096));

} // namespace
} // namespace ptolemy
