/**
 * @file
 * Area / DRAM / energy model tests against the paper's Sec. VII-A and
 * VII-G accounting.
 */

#include <gtest/gtest.h>

#include "hw/area.hh"
#include "hw/energy.hh"

namespace ptolemy::hw
{
namespace
{

TEST(AreaModel, DefaultConfigMatchesPaperOverhead)
{
    const auto a = areaBreakdown(HwConfig::baseline());
    // Paper: 5.2% total (0.08 mm^2), 3.9% SRAM, 0.4% MAC, 0.9% logic.
    EXPECT_NEAR(a.overheadFraction, 0.052, 0.006);
    EXPECT_NEAR(a.totalOverheadMm2, 0.08, 0.01);
    EXPECT_NEAR(a.sramFraction, 0.039, 0.005);
    EXPECT_NEAR(a.macFraction, 0.004, 0.002);
    EXPECT_NEAR(a.logicFraction, 0.009, 0.004);
    // Components sum to the total.
    EXPECT_NEAR(a.extraSramMm2 + a.macAugmentMm2 + a.otherLogicMm2,
                a.totalOverheadMm2, 1e-12);
}

TEST(AreaModel, EightBitIncreasesOverheadFraction)
{
    // Paper Sec. VII-G: 5.2% -> 5.5% at 8 bit.
    const auto base = areaBreakdown(HwConfig::baseline());
    const auto eight = areaBreakdown(HwConfig::eightBit());
    EXPECT_GT(eight.overheadFraction, base.overheadFraction);
    EXPECT_NEAR(eight.overheadFraction, 0.055, 0.008);
}

TEST(AreaModel, BigArrayIncreasesOverheadFraction)
{
    // Paper Sec. VII-G: 5.2% -> 6.4% at 32x32.
    const auto base = areaBreakdown(HwConfig::baseline());
    const auto big = areaBreakdown(HwConfig::bigArray());
    EXPECT_GT(big.overheadFraction, base.overheadFraction);
    EXPECT_NEAR(big.overheadFraction, 0.064, 0.012);
}

TEST(DramModel, MasksAreBitPacked)
{
    const HwConfig cfg = HwConfig::baseline();
    // 8 mask bits -> 1 byte, double-buffered -> 2 bytes.
    EXPECT_EQ(extraDramBytes(cfg, 0, 8, 0), 2u);
}

TEST(DramModel, PsumStoreDwarfsMaskStore)
{
    const HwConfig cfg = HwConfig::baseline();
    const std::size_t n = 1'000'000; // psums == mask bits
    EXPECT_GT(extraDramBytes(cfg, n, 0, 0),
              20 * extraDramBytes(cfg, 0, n, 0));
}

TEST(DramModel, RecomputeBuffersOnlyImportantRfs)
{
    const HwConfig cfg = HwConfig::baseline();
    // Under recompute only ~5% of psums are ever materialized
    // (paper Sec. IV-B observation).
    const std::size_t all = 1'000'000, important = 50'000;
    EXPECT_LT(extraDramBytes(cfg, 0, 0, important),
              extraDramBytes(cfg, all, 0, 0) / 10);
}

TEST(EnergyModel, DramDominatesSramPerByte)
{
    const EnergyModel e(HwConfig::baseline());
    EXPECT_GT(e.dramByte(), 10.0 * e.sramByte() / 2.0);
    EXPECT_GT(e.macOp(), 0.0);
    EXPECT_GT(e.sortCompare(), e.maskBit());
}

TEST(EnergyModel, EightBitCheaperPerOp)
{
    const EnergyModel e16(HwConfig::baseline());
    const EnergyModel e8(HwConfig::eightBit());
    EXPECT_LT(e8.macOp(), e16.macOp());
    EXPECT_LT(e8.sortCompare(), e16.sortCompare());
}

TEST(HwConfigTest, DerivedQuantities)
{
    const HwConfig cfg = HwConfig::baseline();
    EXPECT_EQ(cfg.macsPerCycle(), 400u);
    EXPECT_EQ(cfg.elemBytes(), 2u);
    // 4 channels x 12.8 GB/s at 250 MHz ~ 204.8 B/cycle.
    EXPECT_NEAR(cfg.dramBytesPerCycle(), 204.8, 0.1);
}

} // namespace
} // namespace ptolemy::hw
