/**
 * @file
 * Path-extraction tests: the paper's Fig. 3 worked example, direction and
 * thresholding semantics, selective extraction, class-path aggregation
 * and similarity features.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/test_models.hh"
#include "nn/linear.hh"
#include "path/class_path.hh"
#include "path/extractor.hh"

namespace ptolemy::path
{
namespace
{

/** One-linear-layer network with the paper's Fig. 3 FC weights. */
nn::Network
fig3Net()
{
    nn::Network net("fig3", nn::flatShape(5));
    auto lin = std::make_unique<nn::Linear>("fc", 5, 1);
    lin->weights() = {2.1f, 0.09f, 0.2f, 0.2f, 0.1f};
    lin->biases() = {0.0f};
    net.add(std::move(lin));
    return net;
}

TEST(BackwardCumulative, Fig3FcExampleSelectsTwoLargestPsums)
{
    auto net = fig3Net();
    nn::Tensor x(nn::flatShape(5), {0.1f, 1.0f, 0.4f, 0.3f, 0.2f});
    auto rec = net.forward(x);
    EXPECT_NEAR(rec.logits()[0], 0.46f, 1e-5);

    // theta = 0.6: the two largest partial sums (0.21, 0.09) reach
    // 0.30 >= 0.6 * 0.46 = 0.276; the minimal important set is inputs
    // {0, 1} (values 0.1 and 1.0), exactly the paper's example.
    PathExtractor ex(net, ExtractionConfig::bwCu(1, 0.6));
    const BitVector p = ex.extract(rec);
    EXPECT_EQ(p.size(), 5u);
    EXPECT_TRUE(p.test(0));
    EXPECT_TRUE(p.test(1));
    EXPECT_FALSE(p.test(2));
    EXPECT_FALSE(p.test(3));
    EXPECT_FALSE(p.test(4));
}

TEST(BackwardCumulative, ThetaOneSelectsUntilFullCoverage)
{
    auto net = fig3Net();
    nn::Tensor x(nn::flatShape(5), {0.1f, 1.0f, 0.4f, 0.3f, 0.2f});
    auto rec = net.forward(x);
    PathExtractor ex(net, ExtractionConfig::bwCu(1, 1.0));
    EXPECT_EQ(ex.extract(rec).popcount(), 5u);
}

TEST(BackwardCumulative, HigherThetaNeverSelectsFewerNeurons)
{
    auto &w = testing::world();
    const auto &sample = w.dataset.test[3];
    auto rec = w.net.forward(sample.input);
    const int n = static_cast<int>(w.net.weightedNodes().size());

    std::size_t prev = 0;
    for (double theta : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        PathExtractor ex(w.net, ExtractionConfig::bwCu(n, theta));
        const std::size_t bits = ex.extract(rec).popcount();
        EXPECT_GE(bits, prev) << "theta " << theta;
        prev = bits;
    }
}

TEST(BackwardCumulative, ImportantNeuronsAreSparse)
{
    // Paper Sec. III-B: even at theta=0.9 under 5% of neurons matter.
    // Our tiny models are less sparse than ImageNet-scale ones, but the
    // path must still be a small fraction of all neurons at theta=0.5.
    auto &w = testing::world();
    const int n = static_cast<int>(w.net.weightedNodes().size());
    PathExtractor ex(w.net, ExtractionConfig::bwCu(n, 0.5));
    auto rec = w.net.forward(w.dataset.test[0].input);
    const BitVector p = ex.extract(rec);
    EXPECT_LT(static_cast<double>(p.popcount()) / p.size(), 0.25);
    EXPECT_GT(p.popcount(), 0u);
}

TEST(BackwardAbsolute, ThresholdZeroTakesPositivePsumsOnly)
{
    auto net = fig3Net();
    nn::Tensor x(nn::flatShape(5), {0.1f, 1.0f, -0.4f, 0.3f, 0.2f});
    auto rec = net.forward(x);
    auto cfg = ExtractionConfig::bwAb(1, 0.0);
    PathExtractor ex(net, cfg);
    const BitVector p = ex.extract(rec);
    // psums: 0.21, 0.09, -0.08, 0.06, 0.02 -> index 2 excluded.
    EXPECT_TRUE(p.test(0));
    EXPECT_TRUE(p.test(1));
    EXPECT_FALSE(p.test(2));
    EXPECT_TRUE(p.test(3));
    EXPECT_TRUE(p.test(4));
}

TEST(ForwardAbsolute, MarksActivationsAboveThreshold)
{
    auto net = fig3Net();
    nn::Tensor x(nn::flatShape(5), {0.1f, 1.0f, 0.4f, 0.3f, 0.2f});
    auto rec = net.forward(x);
    auto cfg = ExtractionConfig::fwAb(1, 0.35);
    PathExtractor ex(net, cfg);
    const BitVector p = ex.extract(rec);
    EXPECT_FALSE(p.test(0));
    EXPECT_TRUE(p.test(1));  // 1.0
    EXPECT_TRUE(p.test(2));  // 0.4
    EXPECT_FALSE(p.test(3));
    EXPECT_FALSE(p.test(4));
}

TEST(SelectiveExtraction, SuffixLayoutShrinks)
{
    auto &w = testing::world();
    const int n = static_cast<int>(w.net.weightedNodes().size());
    auto full = ExtractionConfig::bwCu(n, 0.5);
    auto last2 = ExtractionConfig::bwCu(n, 0.5);
    last2.selectFrom(n - 2);
    PathExtractor ex_full(w.net, full), ex_last2(w.net, last2);
    EXPECT_LT(ex_last2.layout().totalBits(), ex_full.layout().totalBits());
    EXPECT_EQ(static_cast<int>(ex_last2.layout().segments().size()), 2);
}

TEST(SelectiveExtraction, FirstExtractedLayerTracksSelectFrom)
{
    auto cfg = ExtractionConfig::bwCu(8, 0.5);
    EXPECT_EQ(cfg.firstExtractedLayer(), 0);
    cfg.selectFrom(5);
    EXPECT_EQ(cfg.firstExtractedLayer(), 5);
    EXPECT_EQ(cfg.numExtracted(), 3);
}

TEST(VariantNames, MatchPaperTags)
{
    EXPECT_EQ(ExtractionConfig::bwCu(4).variantName(), "BwCu");
    EXPECT_EQ(ExtractionConfig::bwAb(4).variantName(), "BwAb");
    EXPECT_EQ(ExtractionConfig::fwAb(4).variantName(), "FwAb");
    EXPECT_EQ(ExtractionConfig::hybrid(4).variantName(), "Hybrid");
}

TEST(HybridConfig, AbsoluteFirstHalfCumulativeRest)
{
    const auto cfg = ExtractionConfig::hybrid(8, 0.5, 0.1);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(cfg.layers[i].kind, ThresholdKind::Absolute) << i;
    for (int i = 4; i < 8; ++i)
        EXPECT_EQ(cfg.layers[i].kind, ThresholdKind::Cumulative) << i;
}

TEST(ExtractionTraceTest, CountsAreConsistent)
{
    auto &w = testing::world();
    const int n = static_cast<int>(w.net.weightedNodes().size());
    PathExtractor ex(w.net, ExtractionConfig::bwCu(n, 0.5));
    auto rec = w.net.forward(w.dataset.test[1].input);
    ExtractionTrace trace;
    const BitVector p = ex.extract(rec, &trace);

    EXPECT_EQ(trace.pathBits, p.popcount());
    EXPECT_EQ(trace.layers.size(), static_cast<std::size_t>(n));
    EXPECT_EQ(trace.totalMacs, networkMacs(w.net));
    std::size_t bits_sum = 0;
    for (const auto &lt : trace.layers) {
        EXPECT_GT(lt.importantOut, 0u);
        EXPECT_GE(lt.psumsConsidered, lt.importantOut);
        EXPECT_EQ(lt.sortedElems, lt.psumsConsidered); // cumulative sorts
        bits_sum += lt.importantIn;
    }
    EXPECT_EQ(bits_sum, p.popcount());
    // The last layer has exactly one important output: the predicted
    // class (paper Sec. III-A).
    EXPECT_EQ(trace.layers.back().importantOut, 1u);
}

TEST(ExtractionTraceTest, AverageTracesDividesCounts)
{
    ExtractionTrace a, b;
    a.direction = b.direction = Direction::Backward;
    a.pathBits = 10;
    b.pathBits = 20;
    LayerTrace la;
    la.importantOut = 4;
    la.importantIn = 8;
    LayerTrace lb = la;
    lb.importantOut = 6;
    lb.importantIn = 12;
    a.layers = {la};
    b.layers = {lb};
    const auto avg = averageTraces({a, b});
    EXPECT_EQ(avg.pathBits, 15u);
    EXPECT_EQ(avg.layers[0].importantOut, 5u);
    EXPECT_EQ(avg.layers[0].importantIn, 10u);
}

TEST(Calibration, AbsoluteThresholdsHitTargetFraction)
{
    auto &w = testing::world();
    const int n = static_cast<int>(w.net.weightedNodes().size());
    auto cfg = ExtractionConfig::fwAb(n, 0.0);
    std::vector<nn::Tensor> samples;
    for (int i = 0; i < 8; ++i)
        samples.push_back(w.dataset.train[i * 11].input);
    calibrateAbsoluteThresholds(w.net, cfg, samples, 0.10);

    // Extract with the calibrated thresholds: the marked fraction should
    // be loosely near 10% (it is a quantile over pooled activations).
    PathExtractor ex(w.net, cfg);
    auto rec = w.net.forward(w.dataset.test[2].input);
    const BitVector p = ex.extract(rec);
    const double frac = static_cast<double>(p.popcount()) / p.size();
    EXPECT_GT(frac, 0.01);
    EXPECT_LT(frac, 0.40);
}

// ------------------------------------------------------------ class paths

TEST(ClassPaths, AggregationIsMonotonicAndSaturates)
{
    auto &w = testing::world();
    const int n = static_cast<int>(w.net.weightedNodes().size());
    PathExtractor ex(w.net, ExtractionConfig::bwCu(n, 0.5));
    ClassPathStore store(10, ex.layout().totalBits());

    std::size_t prev_pop = 0;
    std::size_t new_bits_late = 1;
    int aggregated = 0;
    for (const auto &s : w.dataset.train) {
        if (s.label != 0)
            continue;
        auto rec = w.net.forward(s.input);
        if (rec.predictedClass() != 0)
            continue;
        const std::size_t fresh = store.aggregate(0, ex.extract(rec));
        const std::size_t pop = store.classPath(0).popcount();
        EXPECT_GE(pop, prev_pop);
        prev_pop = pop;
        ++aggregated;
        if (aggregated > 30)
            new_bits_late = fresh;
    }
    ASSERT_GT(aggregated, 20);
    // Later samples contribute far fewer new bits than the path holds:
    // the paper's saturation behaviour.
    EXPECT_LT(new_bits_late, prev_pop / 5 + 10);
    // The class path never saturates to all-ones.
    EXPECT_LT(prev_pop, store.classPath(0).size());
}

TEST(ClassPaths, SaveLoadRoundtrip)
{
    ClassPathStore store(3, 100);
    BitVector p(100);
    p.set(7);
    p.set(42);
    store.aggregate(1, p);
    const std::string path = ::testing::TempDir() + "/cps.bin";
    ASSERT_TRUE(store.save(path));
    ClassPathStore loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.numClasses(), 3u);
    EXPECT_EQ(loaded.samplesSeen(1), 1u);
    EXPECT_TRUE(loaded.classPath(1).test(42));
    std::remove(path.c_str());
}

TEST(SimilarityFeatures, SelfSimilarityIsOne)
{
    auto &w = testing::world();
    const int n = static_cast<int>(w.net.weightedNodes().size());
    PathExtractor ex(w.net, ExtractionConfig::bwCu(n, 0.5));
    auto rec = w.net.forward(w.dataset.test[0].input);
    const BitVector p = ex.extract(rec);
    const auto f = computeSimilarity(p, p, ex.layout());
    EXPECT_DOUBLE_EQ(f.overall, 1.0);
    for (double s : f.perLayer)
        EXPECT_DOUBLE_EQ(s, 1.0);
    EXPECT_EQ(f.toVector().size(), f.perLayer.size() + 1);
}

TEST(SimilarityFeatures, DisjointPathsScoreZero)
{
    PathLayout layout;
    BitVector a(128), b(128);
    a.set(1);
    b.set(2);
    const auto f = computeSimilarity(a, b, layout);
    EXPECT_DOUBLE_EQ(f.overall, 0.0);
}

TEST(SimilarityFeatures, FeaturesAreInUnitInterval)
{
    auto &w = testing::world();
    const int n = static_cast<int>(w.net.weightedNodes().size());
    PathExtractor ex(w.net, ExtractionConfig::bwCu(n, 0.5));
    ClassPathStore store(10, ex.layout().totalBits());
    for (int i = 0; i < 40; ++i) {
        auto rec = w.net.forward(w.dataset.train[i].input);
        store.aggregate(rec.predictedClass(), ex.extract(rec));
    }
    auto rec = w.net.forward(w.dataset.test[5].input);
    const BitVector p = ex.extract(rec);
    const auto f =
        computeSimilarity(p, store.classPath(rec.predictedClass()),
                          ex.layout());
    for (double s : f.toVector()) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
    }
}

} // namespace
} // namespace ptolemy::path
