/**
 * @file
 * Network graph tests: topology, recording, backward consistency,
 * serialization, and the model zoo's structural invariants.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "models/zoo.hh"
#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/init.hh"
#include "nn/linear.hh"
#include "nn/loss.hh"
#include "nn/network.hh"
#include "util/rng.hh"

namespace ptolemy::nn
{
namespace
{

Tensor
randomImage(std::uint64_t seed)
{
    Rng rng(seed);
    Tensor t(mapShape(3, 16, 16));
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.uniform());
    return t;
}

Network
smallNet()
{
    Network net("small", mapShape(3, 16, 16));
    net.add(std::make_unique<Conv2d>("c1", 3, 4, 3, 1, 1));
    net.add(std::make_unique<ReLU>("r1"));
    net.add(std::make_unique<MaxPool2d>("p1", 2));
    net.add(std::make_unique<Flatten>("f"));
    net.add(std::make_unique<Linear>("fc", 4 * 8 * 8, 5));
    heInit(net, 17);
    return net;
}

TEST(Network, RecordsEveryNodeOutput)
{
    auto net = smallNet();
    auto rec = net.forward(randomImage(1));
    EXPECT_EQ(rec.outputs.size(), 5u);
    EXPECT_EQ(rec.logits().size(), 5u);
    EXPECT_LT(rec.predictedClass(), 5u);
}

TEST(Network, WeightedNodesInTopologicalOrder)
{
    auto net = smallNet();
    const auto &w = net.weightedNodes();
    ASSERT_EQ(w.size(), 2u);
    EXPECT_LT(w[0], w[1]);
    EXPECT_EQ(net.layerAt(w[0]).kind(), LayerKind::Conv);
    EXPECT_EQ(net.layerAt(w[1]).kind(), LayerKind::Linear);
}

TEST(Network, ConsumersOfInputAndNodes)
{
    auto net = smallNet();
    const auto input_consumers = net.consumersOf(-1);
    ASSERT_EQ(input_consumers.size(), 1u);
    EXPECT_EQ(input_consumers[0], 0);
    EXPECT_EQ(net.consumersOf(0), std::vector<int>{1});
}

TEST(Network, BackwardMatchesNumericalLossGradient)
{
    auto net = smallNet();
    const Tensor x = randomImage(2);
    const std::size_t label = 3;

    auto rec = net.forward(x);
    auto lg = softmaxCrossEntropy(rec.logits(), label);
    const Tensor analytic = net.backward(rec, lg.grad);

    // Spot-check a handful of input coordinates numerically.
    const float h = 1e-3f;
    Tensor xp = x;
    for (std::size_t i = 0; i < x.size(); i += 97) {
        xp[i] = x[i] + h;
        auto up = softmaxCrossEntropy(net.forward(xp).logits(), label).loss;
        xp[i] = x[i] - h;
        auto dn = softmaxCrossEntropy(net.forward(xp).logits(), label).loss;
        xp[i] = x[i];
        EXPECT_NEAR(analytic[i], (up - dn) / (2.0 * h), 5e-2)
            << "at " << i;
    }
}

TEST(Network, BackwardMultiWithLogitsSeedMatchesBackward)
{
    auto net = smallNet();
    const Tensor x = randomImage(3);
    auto rec = net.forward(x);
    Tensor seed(rec.logits().shape());
    seed[0] = 1.0f;
    seed[2] = -0.5f;

    const Tensor a = net.backward(rec, seed);
    const Tensor b =
        net.backwardMulti(rec, {{net.numNodes() - 1, seed}});
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(Network, SaveLoadRoundtrip)
{
    auto net = smallNet();
    const Tensor x = randomImage(4);
    const auto logits_before = net.forward(x).logits();

    const std::string path = ::testing::TempDir() + "/net_roundtrip.bin";
    ASSERT_TRUE(net.save(path));

    auto net2 = smallNet(); // same arch, different init seed state
    heInit(net2, 999);
    ASSERT_TRUE(net2.load(path));
    const auto logits_after = net2.forward(x).logits();
    for (std::size_t i = 0; i < logits_before.size(); ++i)
        EXPECT_FLOAT_EQ(logits_before[i], logits_after[i]);
    std::remove(path.c_str());
}

TEST(Network, LoadRejectsArchitectureMismatch)
{
    auto net = smallNet();
    const std::string path = ::testing::TempDir() + "/net_mismatch.bin";
    ASSERT_TRUE(net.save(path));
    auto other = models::makeMiniAlexNet(10);
    EXPECT_FALSE(other.load(path));
    std::remove(path.c_str());
}

TEST(Network, NumParamsCountsEverything)
{
    Network net("p", mapShape(1, 4, 4));
    net.add(std::make_unique<Conv2d>("c", 1, 2, 3, 1, 1)); // 18 + 2
    net.add(std::make_unique<Flatten>("f"));
    net.add(std::make_unique<Linear>("l", 32, 3)); // 96 + 3
    EXPECT_EQ(net.numParams(), 18u + 2 + 96 + 3);
}

// ------------------------------------------------------------- model zoo --

struct ZooCase
{
    const char *name;
    int expectedWeighted;
};

class ModelZoo : public ::testing::TestWithParam<ZooCase>
{
};

TEST_P(ModelZoo, BuildsAndRuns)
{
    auto net = models::makeByName(GetParam().name, 10);
    heInit(net, 5);
    EXPECT_EQ(static_cast<int>(net.weightedNodes().size()),
              GetParam().expectedWeighted);
    auto rec = net.forward(randomImage(6));
    EXPECT_EQ(rec.logits().size(), 10u);
    // Gradients flow end-to-end.
    auto lg = softmaxCrossEntropy(rec.logits(), 0);
    const Tensor g = net.backward(rec, lg.grad);
    double mag = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i)
        mag += std::abs(g[i]);
    EXPECT_GT(mag, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ModelZoo,
    ::testing::Values(ZooCase{"alexnet", 8}, ZooCase{"resnet18", 18},
                      ZooCase{"resnet26", 26}, ZooCase{"vgg16", 16},
                      ZooCase{"inception", 6}, ZooCase{"densenet", 7}),
    [](const ::testing::TestParamInfo<ZooCase> &info) {
        return info.param.name;
    });

TEST(ModelZoo, UnknownNameThrows)
{
    EXPECT_THROW(models::makeByName("nope", 10), std::invalid_argument);
}

} // namespace
} // namespace ptolemy::nn
