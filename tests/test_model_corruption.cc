/**
 * @file
 * DetectorModel artifact-corruption sweep: load() must reject a
 * truncation at EVERY byte offset and single-byte flips across the
 * header/signature region with a typed ModelLoadError — never a crash,
 * out-of-bounds read, or unbounded allocation (the CI AddressSanitizer
 * leg runs this suite to enforce the "never" part), and never a
 * half-applied model (strong guarantee: the target keeps serving its
 * old artifacts after a failed load).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/test_models.hh"
#include "core/detector_model.hh"
#include "core/detector_session.hh"
#include "util/rng.hh"

namespace ptolemy::core
{
namespace
{

/**
 * A deliberately small fitted model (3 classes, untrained net, 3-tree
 * forest) so its artifact file stays in the few-KB range: the
 * truncation sweep re-parses a prefix of the file for every byte
 * offset, which is quadratic in file size.
 */
struct SmallWorld
{
    nn::Network net;
    DetectorModel model;

    SmallWorld()
        : net(ptolemy::testing::makeTinyNet(3)),
          model(buildModel(net))
    {
    }

    static DetectorModel
    buildModel(nn::Network &net)
    {
        nn::heInit(net, 11);
        data::DatasetSpec spec;
        spec.numClasses = 3;
        spec.trainPerClass = 12;
        spec.testPerClass = 4;
        spec.seed = 99;
        const auto ds = data::makeSyntheticDataset(spec);

        classify::ForestConfig fc;
        fc.numTrees = 3;
        fc.growth.maxDepth = 4;
        DetectorBuilder bld(
            net,
            path::ExtractionConfig::bwCu(
                static_cast<int>(net.weightedNodes().size()), 0.5),
            3, fc);
        // The untrained net still predicts some training samples
        // "correctly" by chance — enough to populate class paths.
        bld.profileClassPaths(ds.train, 12);

        Rng rng(0xC0FF);
        std::vector<nn::Tensor> clean, noisy;
        for (const auto &s : ds.test) {
            clean.push_back(s.input);
            nn::Tensor x = s.input;
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
            noisy.push_back(std::move(x));
        }
        classify::FeatureMatrix benign, adversarial;
        bld.featuresBatch(clean, benign);
        bld.featuresBatch(noisy, adversarial);
        bld.fitClassifier(benign, adversarial);
        return std::move(bld).build();
    }
};

SmallWorld &
smallWorld()
{
    static SmallWorld w;
    return w;
}

std::vector<char>
readAll(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good());
    return std::vector<char>(std::istreambuf_iterator<char>(is),
                             std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const char *data, std::size_t n)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(os.good());
    os.write(data, static_cast<std::streamsize>(n));
    ASSERT_TRUE(os.good());
}

DetectorModel
freshTarget()
{
    auto &w = smallWorld();
    return DetectorModel(
        w.net,
        path::ExtractionConfig::bwCu(
            static_cast<int>(w.net.weightedNodes().size()), 0.5),
        3);
}

TEST(ModelCorruption, TruncationAtEveryByteOffsetThrowsTyped)
{
    auto &w = smallWorld();
    const std::string path = "corrupt_trunc.model";
    ASSERT_TRUE(w.model.save(path));
    const std::vector<char> bytes = readAll(path);
    ASSERT_GT(bytes.size(), 0u);
    // Keep the quadratic sweep honest-but-bounded: the fixture is
    // sized for this, a ballooned artifact would silently turn the
    // sweep into minutes of I/O.
    ASSERT_LT(bytes.size(), 600u * 1024)
        << "fixture artifact grew too large for an every-offset sweep";

    DetectorModel target = freshTarget();
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        writeAll(path, bytes.data(), cut);
        EXPECT_THROW(target.load(path), ModelLoadError)
            << "truncation at byte " << cut << " of " << bytes.size();
    }

    // The full file still loads — the sweep didn't lose the original —
    // and the target, having survived every failed load unchanged,
    // accepts it (strong guarantee end-to-end).
    writeAll(path, bytes.data(), bytes.size());
    EXPECT_NO_THROW(target.load(path));
    std::remove(path.c_str());
}

TEST(ModelCorruption, HeaderAndSignatureByteFlipsThrowTyped)
{
    auto &w = smallWorld();
    const std::string path = "corrupt_flip.model";
    ASSERT_TRUE(w.model.save(path));
    const std::vector<char> bytes = readAll(path);

    // The header/signature region: length-prefixed magic, length-
    // prefixed architecture signature, and the u64 class count. Every
    // byte in it is semantically validated, so ANY flip must be
    // rejected. (Past this region lie raw class-path/forest payload
    // bytes, where a flip yields a different-but-well-formed model —
    // that is what the signature cannot catch and checksumming would;
    // out of scope here.)
    const std::size_t region =
        std::min(8 + std::string("ptolemy-detector-v1").size() + 8 +
                     w.net.signature().size() + 8,
                 bytes.size());
    DetectorModel target = freshTarget();
    std::vector<char> mutated = bytes;
    for (std::size_t off = 0; off < region; ++off) {
        for (const unsigned char mask : {0xFFu, 0x01u}) {
            mutated[off] =
                static_cast<char>(static_cast<unsigned char>(bytes[off]) ^
                                  mask);
            writeAll(path, mutated.data(), mutated.size());
            EXPECT_THROW(target.load(path), ModelLoadError)
                << "flip mask 0x" << std::hex << +mask << std::dec
                << " at byte " << off;
            mutated[off] = bytes[off]; // restore for the next offset
        }
    }

    writeAll(path, bytes.data(), bytes.size());
    EXPECT_NO_THROW(target.load(path));
    std::remove(path.c_str());
}

TEST(ModelCorruption, FailedLoadLeavesServingModelUntouched)
{
    auto &w = smallWorld();
    const std::string path = "corrupt_strong.model";
    ASSERT_TRUE(w.model.save(path));

    // A target that already serves: decisions before a failed load
    // must equal decisions after it, bitwise.
    DetectorModel target = freshTarget();
    ASSERT_NO_THROW(target.load(path));
    data::DatasetSpec spec;
    spec.numClasses = 3;
    spec.trainPerClass = 1;
    spec.testPerClass = 2;
    spec.seed = 7;
    const auto probe = data::makeSyntheticDataset(spec);

    DetectorSession before(target);
    std::vector<Decision> ref;
    for (const auto &s : probe.test)
        ref.push_back(before.detect(s.input));

    // Corrupt the tail (forest area) — the header parses, the load
    // fails deep, and nothing may have been half-applied.
    std::vector<char> bytes = readAll(path);
    bytes.resize(bytes.size() - bytes.size() / 4);
    writeAll(path, bytes.data(), bytes.size());
    EXPECT_THROW(target.load(path), ModelLoadError);
    EXPECT_FALSE(target.tryLoad(path));

    DetectorSession after(target);
    for (std::size_t i = 0; i < ref.size(); ++i) {
        const Decision d = after.detect(probe.test[i].input);
        EXPECT_EQ(d.score, ref[i].score) << "sample " << i;
        EXPECT_EQ(d.predictedClass, ref[i].predictedClass)
            << "sample " << i;
        EXPECT_EQ(d.adversarial, ref[i].adversarial) << "sample " << i;
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace ptolemy::core
