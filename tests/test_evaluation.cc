/**
 * @file
 * Attack-evaluation accounting regression tests: success rates must be
 * normalized by the attacks actually attempted (the test set can run
 * out of correctly-classified inputs), and fitAndScore must always
 * keep a non-empty held-out split however extreme train_fraction is.
 */

#include <gtest/gtest.h>

#include "attack/gradient_attacks.hh"
#include "common/test_models.hh"
#include "core/detector.hh"
#include "core/evaluation.hh"
#include "util/rng.hh"

namespace ptolemy::core
{
namespace
{

int
numWeighted()
{
    return static_cast<int>(
        ptolemy::testing::world().net.weightedNodes().size());
}

/** Detector over the shared trained world with a few class paths. */
Detector
smallDetector()
{
    auto &w = ptolemy::testing::world();
    Detector det(w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5),
                 10);
    det.buildClassPaths(w.dataset.train, 10);
    return det;
}

/** Pairs manufactured from test samples + deterministic noise: enough
 *  for fitAndScore, with no attack cost. */
std::vector<DetectionPair>
syntheticPairs(std::size_t n)
{
    auto &w = ptolemy::testing::world();
    Rng rng(0x51AB);
    std::vector<DetectionPair> pairs;
    for (std::size_t i = 0; i < n; ++i) {
        const auto &s = w.dataset.test[i];
        DetectionPair p;
        p.clean = s.input;
        p.adversarial = s.input;
        for (std::size_t e = 0; e < p.adversarial.size(); ++e)
            p.adversarial[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
        p.label = s.label;
        p.mse = 0.003;
        pairs.push_back(std::move(p));
    }
    return pairs;
}

TEST(EvaluationAccounting, SuccessRateDividesByAttemptedNotByCap)
{
    // A test slice smaller than the cap: buildAttackPairs can attempt
    // at most slice-many attacks, so the denominator must be the
    // attempted count — dividing by the cap deflated every rate.
    auto &w = ptolemy::testing::world();
    const nn::Dataset slice(w.dataset.test.begin(),
                            w.dataset.test.begin() + 10);
    const int cap = 30;
    attack::Fgsm fgsm;

    int attempted = 0;
    const auto pairs =
        buildAttackPairs(w.net, fgsm, slice, cap, 0xE7A1, &attempted);
    ASSERT_GT(attempted, 0);
    ASSERT_LE(attempted, static_cast<int>(slice.size()));
    ASSERT_LT(attempted, cap) << "slice must exhaust before the cap";
    ASSERT_GT(pairs.size(), 0u) << "FGSM should fool some inputs";

    auto det = smallDetector();
    const auto r = evaluateAttack(w.net, det, fgsm, slice, cap);
    EXPECT_EQ(r.numAttempted, static_cast<std::size_t>(attempted));
    EXPECT_EQ(r.numPairs, pairs.size());
    EXPECT_DOUBLE_EQ(r.attackSuccessRate,
                     static_cast<double>(r.numPairs) / r.numAttempted);
}

TEST(EvaluationAccounting, EmptyTestSetIsSafe)
{
    auto &w = ptolemy::testing::world();
    auto det = smallDetector();
    attack::Fgsm fgsm;
    int attempted = -1;
    const auto pairs =
        buildAttackPairs(w.net, fgsm, {}, 20, 0xE7A1, &attempted);
    EXPECT_TRUE(pairs.empty());
    EXPECT_EQ(attempted, 0);
    const auto r = evaluateAttack(w.net, det, fgsm, {}, 20);
    EXPECT_EQ(r.numPairs, 0u);
    EXPECT_EQ(r.numAttempted, 0u);
    EXPECT_DOUBLE_EQ(r.attackSuccessRate, 0.0);
}

TEST(EvaluationSplit, HighTrainFractionStillHoldsOutTwoPairs)
{
    // 4 pairs at train_fraction 0.9: the unclamped split trained on 3
    // and scored a single pair (or none at fraction 1.0), reporting a
    // near-vacuous AUC. The clamp guarantees >= 2 held-out pairs.
    auto det = smallDetector();
    const auto pairs = syntheticPairs(4);
    for (double frac : {0.9, 1.0}) {
        const auto ps = fitAndScore(det, pairs, frac);
        EXPECT_EQ(ps.heldOut.size(), 4u) << "frac=" << frac;
        EXPECT_GE(ps.auc, 0.0);
        EXPECT_LE(ps.auc, 1.0);
    }
    // And the lower clamp still applies: tiny fractions keep 2 in
    // training.
    const auto ps = fitAndScore(det, pairs, 0.0);
    EXPECT_EQ(ps.heldOut.size(), 4u);
}

} // namespace
} // namespace ptolemy::core
