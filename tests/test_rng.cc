/**
 * @file
 * Determinism and distribution sanity tests for the RNG.
 */

#include <gtest/gtest.h>

#include "util/rng.hh"

namespace ptolemy
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, BelowBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(1234);
    double sum = 0.0, sumsq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sumsq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(77);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.03);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng rng(321);
    const auto first = rng.next();
    rng.next();
    rng.reseed(321);
    EXPECT_EQ(rng.next(), first);
}

} // namespace
} // namespace ptolemy
