/**
 * @file
 * Serving-tier robustness tests: typed per-request resolution under
 * load shedding, deadlines, poisoned requests, injected batch stalls
 * and hot model swaps — plus the conservation contract (every
 * submitted request resolves exactly once, nothing lost, server never
 * crashes) and Decision bit-identity of every kOk response against a
 * direct DetectorSession over the same model.
 */

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/test_models.hh"
#include "core/detector_model.hh"
#include "core/detector_session.hh"
#include "core/fault_injection.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/rng.hh"

namespace ptolemy::serve
{
namespace
{

using core::Decision;
using core::DetectorModel;
using core::DetectorSession;

int
numWeighted()
{
    return static_cast<int>(
        ptolemy::testing::world().net.weightedNodes().size());
}

/** Mixed clean/perturbed serving inputs. */
std::vector<nn::Tensor>
probeInputs(std::size_t n)
{
    auto &w = ptolemy::testing::world();
    Rng rng(0x5E7E5);
    std::vector<nn::Tensor> xs;
    for (std::size_t i = 0; i < n; ++i) {
        nn::Tensor x = w.dataset.test[i % w.dataset.test.size()].input;
        if (i % 2 == 1)
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.08, 0.08));
        xs.push_back(std::move(x));
    }
    return xs;
}

/** One fitted model over the shared trained world (built once per
 *  process; same recipe as the detector-API tests). */
const DetectorModel &
servedModel()
{
    static const DetectorModel model = [] {
        auto &w = ptolemy::testing::world();
        core::DetectorBuilder bld(
            w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5), 10);
        bld.profileClassPaths(w.dataset.train, 30);
        Rng rng(0x51AB);
        std::vector<nn::Tensor> clean, noisy;
        for (std::size_t i = 0; i < 24; ++i) {
            const auto &s = w.dataset.test[i];
            clean.push_back(s.input);
            nn::Tensor x = s.input;
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
            noisy.push_back(std::move(x));
        }
        classify::FeatureMatrix benign, adversarial;
        bld.featuresBatch(clean, benign);
        bld.featuresBatch(noisy, adversarial);
        bld.fitClassifier(benign, adversarial);
        return std::move(bld).build();
    }();
    return model;
}

/** Reference decisions from a direct session (the bit-identity
 *  baseline every kOk response is compared against). */
std::vector<Decision>
referenceDecisions(const DetectorModel &model,
                   const std::vector<nn::Tensor> &xs)
{
    DetectorSession sess(model);
    std::vector<Decision> ref;
    for (const auto &x : xs)
        ref.push_back(sess.detect(x));
    return ref;
}

void
expectDecisionsEqual(const Decision &a, const Decision &b,
                     const std::string &what)
{
    EXPECT_EQ(a.predictedClass, b.predictedClass) << what;
    EXPECT_EQ(a.adversarial, b.adversarial) << what;
    EXPECT_EQ(a.score, b.score) << what; // bitwise: doubles must match
    EXPECT_EQ(a.features.overall, b.features.overall) << what;
    ASSERT_EQ(a.features.perLayer.size(), b.features.perLayer.size())
        << what;
    for (std::size_t l = 0; l < a.features.perLayer.size(); ++l)
        EXPECT_EQ(a.features.perLayer[l], b.features.perLayer[l])
            << what << " layer " << l;
}

TEST(Serve, ServedDecisionsBitIdenticalToDirectSession)
{
    const auto &model = servedModel();
    const auto xs = probeInputs(12);
    const auto ref = referenceDecisions(model, xs);

    DetectorServer server(model);
    std::vector<ServeRequest> slab(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        slab[i].reset(xs[i]);
        EXPECT_EQ(server.submit(slab[i]), RequestStatus::kQueued);
    }
    for (std::size_t i = 0; i < xs.size(); ++i) {
        ASSERT_EQ(server.wait(slab[i]), RequestStatus::kOk);
        expectDecisionsEqual(slab[i].decision, ref[i],
                             "served sample " + std::to_string(i));
        EXPECT_GE(slab[i].latencyMicros(), 0.0);
    }
    server.stop();
    const auto st = server.stats();
    EXPECT_EQ(st.submitted, xs.size());
    EXPECT_EQ(st.ok, xs.size());
    EXPECT_TRUE(st.conserved());
    EXPECT_GE(st.batches, 1u);
}

TEST(Serve, ExpiredDeadlineResolvesTyped)
{
    const auto &model = servedModel();
    const auto xs = probeInputs(1);

    DetectorServer server(model);
    ServeRequest req;
    req.reset(xs[0], Clock::now() - std::chrono::milliseconds(1));
    ASSERT_EQ(server.submit(req), RequestStatus::kQueued);
    EXPECT_EQ(server.wait(req), RequestStatus::kDeadlineExceeded);
    server.stop();
    const auto st = server.stats();
    EXPECT_EQ(st.deadlineExceeded, 1u);
    EXPECT_TRUE(st.conserved());
}

TEST(Serve, OverloadShedsInsteadOfBlocking)
{
    const auto &model = servedModel();
    const auto xs = probeInputs(4);

    // One-deep admission, one-request batches, every batch stalled:
    // flooding from this thread must shed synchronously, never block.
    core::ServeFaultPlan plan;
    plan.delayEveryNthBatch = 1;
    plan.batchDelayMicros = 3000;
    ServeConfig cfg;
    cfg.queueDepth = 2;
    cfg.maxBatch = 1;
    DetectorServer server(model, cfg, &plan);

    constexpr std::size_t kFlood = 40;
    std::vector<ServeRequest> slab(kFlood);
    std::size_t shed_at_submit = 0;
    for (std::size_t i = 0; i < kFlood; ++i) {
        slab[i].reset(xs[i % xs.size()]);
        if (server.submit(slab[i]) == RequestStatus::kShed) {
            ++shed_at_submit;
            EXPECT_EQ(slab[i].status.load(), RequestStatus::kShed);
        }
    }
    for (auto &r : slab)
        EXPECT_TRUE(isResolved(server.wait(r)));
    server.stop();

    const auto st = server.stats();
    EXPECT_GT(shed_at_submit, 0u) << "flood never tripped admission";
    EXPECT_EQ(st.shed, shed_at_submit);
    EXPECT_EQ(st.submitted, kFlood);
    EXPECT_TRUE(st.conserved());
    EXPECT_GT(plan.delaysInjected.load(), 0u);
}

TEST(Serve, PoisonedRequestIsIsolatedFromItsBatchmates)
{
    const auto &model = servedModel();
    const auto xs = probeInputs(16);
    const auto ref = referenceDecisions(model, xs);

    core::ServeFaultPlan plan;
    plan.poisonEveryNthRequest = 4; // submit ordinals 3, 7, 11, 15
    DetectorServer server(model, {}, &plan);

    std::vector<ServeRequest> slab(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        slab[i].reset(xs[i]);
        ASSERT_EQ(server.submit(slab[i]), RequestStatus::kQueued);
    }
    std::size_t poisoned = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const RequestStatus s = server.wait(slab[i]);
        if (plan.poisoned(slab[i].seq)) {
            ++poisoned;
            EXPECT_EQ(s, RequestStatus::kError) << "sample " << i;
            EXPECT_STREQ(slab[i].error, "poisoned request");
        } else {
            ASSERT_EQ(s, RequestStatus::kOk) << "sample " << i;
            expectDecisionsEqual(slab[i].decision, ref[i],
                                 "batchmate " + std::to_string(i));
        }
    }
    server.stop();
    EXPECT_EQ(poisoned, 4u);
    EXPECT_EQ(plan.poisonsInjected.load(), 4u);
    const auto st = server.stats();
    EXPECT_EQ(st.errors, 4u);
    EXPECT_EQ(st.ok, xs.size() - 4);
    EXPECT_TRUE(st.conserved());
}

TEST(Serve, HotSwapServesNewModelAndFailedSwapKeepsOld)
{
    auto &w = ptolemy::testing::world();
    const auto &model = servedModel();
    const auto xs = probeInputs(6);
    const std::string path_a = "serve_swap_a.model";
    const std::string path_b = "serve_swap_b.model";
    ASSERT_TRUE(model.save(path_a));

    // A second fitted model with a different extraction threshold —
    // distinct artifacts over the same architecture signature.
    {
        core::DetectorBuilder bld(
            w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.3), 10);
        bld.profileClassPaths(w.dataset.train, 20);
        Rng rng(0x51AB);
        std::vector<nn::Tensor> clean, noisy;
        for (std::size_t i = 0; i < 16; ++i) {
            const auto &s = w.dataset.test[i];
            clean.push_back(s.input);
            nn::Tensor x = s.input;
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
            noisy.push_back(std::move(x));
        }
        classify::FeatureMatrix benign, adversarial;
        bld.featuresBatch(clean, benign);
        bld.featuresBatch(noisy, adversarial);
        bld.fitClassifier(benign, adversarial);
        ASSERT_TRUE(std::move(bld).build().save(path_b));
    }

    // Reference decisions for the swapped-in artifacts.
    DetectorModel loaded_b(
        w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5), 10);
    ASSERT_NO_THROW(loaded_b.load(path_b));
    const auto ref_a = referenceDecisions(model, xs);
    const auto ref_b = referenceDecisions(loaded_b, xs);

    core::ServeFaultPlan plan;
    DetectorServer server(model, {}, &plan);
    const auto before = server.pinModel();

    auto serve_all = [&](std::vector<ServeRequest> &slab) {
        for (std::size_t i = 0; i < xs.size(); ++i) {
            slab[i].reset(xs[i]);
            EXPECT_EQ(server.submit(slab[i]), RequestStatus::kQueued);
        }
        for (auto &r : slab)
            ASSERT_EQ(server.wait(r), RequestStatus::kOk);
    };

    std::vector<ServeRequest> slab(xs.size());
    serve_all(slab);
    for (std::size_t i = 0; i < xs.size(); ++i)
        expectDecisionsEqual(slab[i].decision, ref_a[i],
                             "pre-swap " + std::to_string(i));

    // Successful swap: new requests serve the new artifacts.
    ASSERT_TRUE(server.swapModel(path_b));
    EXPECT_NE(server.pinModel(), before);
    serve_all(slab);
    for (std::size_t i = 0; i < xs.size(); ++i)
        expectDecisionsEqual(slab[i].decision, ref_b[i],
                             "post-swap " + std::to_string(i));

    // Injected swap-during-load fault: the load throws, the old (B)
    // model keeps serving.
    plan.failNextSwaps.store(1);
    EXPECT_FALSE(server.swapModel(path_a));
    EXPECT_EQ(plan.swapFaultsInjected.load(), 1u);
    serve_all(slab);
    for (std::size_t i = 0; i < xs.size(); ++i)
        expectDecisionsEqual(slab[i].decision, ref_b[i],
                             "post-failed-swap " + std::to_string(i));

    // Plain bad artifact: same degradation path.
    EXPECT_FALSE(server.swapModel("serve_swap_missing.model"));

    server.stop();
    const auto st = server.stats();
    EXPECT_EQ(st.swaps, 1u);
    EXPECT_EQ(st.failedSwaps, 2u);
    EXPECT_TRUE(st.conserved());
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(Serve, RetryClientBacksOffThroughOverload)
{
    const auto &model = servedModel();
    const auto xs = probeInputs(8);
    const auto ref = referenceDecisions(model, xs);

    core::ServeFaultPlan plan;
    plan.delayEveryNthBatch = 2;
    plan.batchDelayMicros = 1500;
    ServeConfig cfg;
    cfg.queueDepth = 2;
    cfg.maxBatch = 2;
    DetectorServer server(model, cfg, &plan);

    RetryClient::Options ropt;
    ropt.maxAttempts = 64;
    ropt.initialBackoffMicros = 200;

    // Two competing client threads over a two-deep queue: shed +
    // retry traffic is all but guaranteed, and every request must
    // still end kOk with a bit-identical decision.
    auto client = [&](int tid) {
        RetryClient rc(server, ropt);
        ServeRequest req;
        for (int round = 0; round < 3; ++round)
            for (std::size_t i = 0; i < xs.size(); ++i) {
                ASSERT_EQ(rc.detect(req, xs[i]), RequestStatus::kOk)
                    << "client " << tid;
                expectDecisionsEqual(req.decision, ref[i],
                                     "client " + std::to_string(tid) +
                                         " sample " + std::to_string(i));
            }
    };
    std::thread ta(client, 0), tb(client, 1);
    ta.join();
    tb.join();
    server.stop();
    EXPECT_TRUE(server.stats().conserved());
}

TEST(Serve, FaultCampaignConservesEveryRequest)
{
    const auto &model = servedModel();
    const auto xs = probeInputs(10);
    const auto ref = referenceDecisions(model, xs);
    const std::string swap_path = "serve_campaign.model";
    ASSERT_TRUE(model.save(swap_path));

    // Combined campaign: stalled batches + poisoned requests + failed
    // and successful hot swaps, under concurrent clients with tight
    // deadlines. The swap artifact is the SAME fitted model, so every
    // kOk decision stays bit-identical to the reference across swaps.
    core::ServeFaultPlan plan;
    plan.delayEveryNthBatch = 3;
    plan.batchDelayMicros = 2000;
    plan.poisonEveryNthRequest = 7;
    ServeConfig cfg;
    cfg.queueDepth = 8;
    cfg.maxBatch = 4;
    cfg.batchWindowMicros = 100;
    cfg.defaultDeadlineMicros = 40000;
    DetectorServer server(model, cfg, &plan);

    constexpr int kClients = 3;
    constexpr int kPerClient = 30;
    std::array<std::array<RequestStatus, kPerClient>, kClients> finals{};
    auto client = [&](int tid) {
        RetryClient::Options ropt;
        ropt.maxAttempts = 3;
        ropt.initialBackoffMicros = 200;
        RetryClient rc(server, ropt);
        ServeRequest req;
        for (int i = 0; i < kPerClient; ++i) {
            const auto &x = xs[(tid + i) % xs.size()];
            finals[tid][i] = rc.detect(req, x);
            EXPECT_TRUE(isResolved(finals[tid][i]));
            if (finals[tid][i] == RequestStatus::kOk)
                expectDecisionsEqual(
                    req.decision, ref[(tid + i) % xs.size()],
                    "campaign client " + std::to_string(tid) +
                        " request " + std::to_string(i));
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t)
        threads.emplace_back(client, t);

    // Hot-swap churn during the campaign, failures included.
    for (int s = 0; s < 4; ++s) {
        if (s == 2)
            plan.failNextSwaps.store(1);
        server.swapModel(swap_path);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    for (auto &t : threads)
        t.join();
    server.stop();

    const auto st = server.stats();
    EXPECT_TRUE(st.conserved())
        << "submitted=" << st.submitted << " resolved=" << st.resolved();
    // Client-side: every one of the 90 logical requests got exactly one
    // terminal status.
    std::size_t finals_seen = 0;
    for (const auto &per : finals)
        for (RequestStatus s : per)
            finals_seen += isResolved(s) ? 1 : 0;
    EXPECT_EQ(finals_seen,
              static_cast<std::size_t>(kClients) * kPerClient);
    EXPECT_GT(st.ok, 0u);
    std::remove(swap_path.c_str());
}

} // namespace
} // namespace ptolemy::serve
