/**
 * @file
 * ThreadPool exception contract: a throwing task must never
 * std::terminate the process. Every index is still attempted, the
 * lowest-indexed exception is rethrown on the calling thread
 * (deterministically, at any thread count), and the pool remains fully
 * usable afterwards.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/thread_pool.hh"

namespace ptolemy
{
namespace
{

TEST(ThreadPoolExceptions, ThrowingTaskRethrowsLowestIndexAtAnyThreadCount)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        constexpr std::size_t kN = 64;
        std::vector<std::atomic<int>> ran(kN);
        for (auto &r : ran)
            r.store(0);

        // Several indices throw; the lowest (index 5) must win
        // regardless of which worker reaches which index first.
        try {
            pool.parallelFor(kN, [&](std::size_t i) {
                ran[i].fetch_add(1);
                if (i == 5 || i == 23 || i == 41)
                    throw std::runtime_error("task " + std::to_string(i));
            });
            FAIL() << "expected rethrow (threads=" << threads << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "task 5") << "threads=" << threads;
        }

        // Deterministic executed set: every index was still attempted,
        // exactly once.
        for (std::size_t i = 0; i < kN; ++i)
            EXPECT_EQ(ran[i].load(), 1)
                << "threads=" << threads << " index " << i;

        // The pool must be fully usable after a rethrow.
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(100, [&](std::size_t i) { sum.fetch_add(i); });
        EXPECT_EQ(sum.load(), 4950u) << "threads=" << threads;
    }
}

TEST(ThreadPoolExceptions, SingleThrowingIndexIsIsolated)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        ThreadPool pool(threads);
        std::atomic<int> completed{0};
        EXPECT_THROW(pool.parallelForWithTid(
                         8,
                         [&](std::size_t i, unsigned) {
                             if (i == 3)
                                 throw std::logic_error("boom");
                             completed.fetch_add(1);
                         }),
                     std::logic_error)
            << "threads=" << threads;
        EXPECT_EQ(completed.load(), 7) << "threads=" << threads;
    }
}

TEST(ThreadPoolExceptions, NestedInlineSectionPropagatesToOuterIndex)
{
    ThreadPool pool(2);
    // The outer loop's index 1 runs a nested section whose inner index
    // throws; the nested inline loop rethrows into the outer task,
    // which must surface it as outer index 1's exception.
    try {
        pool.parallelFor(4, [&](std::size_t outer) {
            pool.parallelFor(4, [&](std::size_t inner) {
                if (outer == 1 && inner == 2)
                    throw std::runtime_error("outer 1 inner 2");
            });
        });
        FAIL() << "expected rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "outer 1 inner 2");
    }
}

} // namespace
} // namespace ptolemy
