/**
 * @file
 * Layer forward correctness (including the paper's Fig. 3 worked example)
 * and backward numerical gradient checks.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/common_layers.hh"
#include "nn/conv.hh"
#include "nn/linear.hh"
#include "util/rng.hh"

namespace ptolemy::nn
{
namespace
{

/** loss = sum(weight_i * out_i); returns analytic dLoss/dInput. */
Tensor
analyticInputGrad(Layer &layer, const Tensor &x, const Tensor &loss_w)
{
    auto out = layer.forward({&x}, false);
    EXPECT_EQ(out.size(), loss_w.size());
    auto grads = layer.backward({&x}, loss_w);
    return grads[0];
}

/** Central-difference dLoss/dInput for the same loss. */
Tensor
numericInputGrad(Layer &layer, const Tensor &x, const Tensor &loss_w,
                 float h = 1e-3f)
{
    Tensor g(x.shape());
    Tensor xp = x;
    for (std::size_t i = 0; i < x.size(); ++i) {
        xp[i] = x[i] + h;
        auto up = layer.forward({&xp}, false);
        xp[i] = x[i] - h;
        auto dn = layer.forward({&xp}, false);
        xp[i] = x[i];
        double lp = 0.0, ln = 0.0;
        for (std::size_t o = 0; o < up.size(); ++o) {
            lp += static_cast<double>(loss_w[o]) * up[o];
            ln += static_cast<double>(loss_w[o]) * dn[o];
        }
        g[i] = static_cast<float>((lp - ln) / (2.0 * h));
    }
    return g;
}

void
expectGradsClose(const Tensor &a, const Tensor &b, float tol = 2e-2f)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], tol) << "at index " << i;
}

Tensor
randomTensor(Shape s, std::uint64_t seed, double scale = 1.0)
{
    Rng rng(seed);
    Tensor t(s);
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.gaussian(0.0, scale));
    return t;
}

// ---------------------------------------------------------------------------

TEST(LinearLayer, ForwardMatchesManualDotProduct)
{
    Linear lin("fc", 3, 2);
    lin.weights() = {1.0f, 2.0f, 3.0f, /*row1*/ -1.0f, 0.5f, 0.0f};
    lin.biases() = {0.5f, -0.5f};
    Tensor x(flatShape(3), {1.0f, 1.0f, 2.0f});
    auto y = lin.forward({&x}, false);
    EXPECT_FLOAT_EQ(y[0], 1.0f + 2.0f + 6.0f + 0.5f);
    EXPECT_FLOAT_EQ(y[1], -1.0f + 0.5f + 0.0f - 0.5f);
}

TEST(LinearLayer, PartialSumsMatchPaperFig3FcExample)
{
    // Paper Fig. 3 (left): inputs produce partial sums
    // 0.1*2.1, 1.0*0.09, 0.4*0.2, 0.3*0.2, 0.2*0.1 summing to 0.46.
    Linear lin("fc", 5, 1);
    lin.weights() = {2.1f, 0.09f, 0.2f, 0.2f, 0.1f};
    lin.biases() = {0.0f};
    Tensor x(flatShape(5), {0.1f, 1.0f, 0.4f, 0.3f, 0.2f});
    auto y = lin.forward({&x}, false);
    EXPECT_NEAR(y[0], 0.46f, 1e-6);

    std::vector<PartialSum> ps;
    lin.partialSums(x, 0, ps);
    ASSERT_EQ(ps.size(), 5u);
    EXPECT_NEAR(ps[0].value, 0.21f, 1e-6);
    EXPECT_NEAR(ps[1].value, 0.09f, 1e-6);
    double total = 0.0;
    for (const auto &p : ps)
        total += p.value;
    EXPECT_NEAR(total, 0.46, 1e-6);
}

TEST(LinearLayer, BackwardNumericalGradient)
{
    Linear lin("fc", 6, 4);
    Rng rng(3);
    for (auto &w : lin.weights())
        w = static_cast<float>(rng.gaussian(0.0, 0.5));
    const Tensor x = randomTensor(flatShape(6), 10);
    const Tensor lw = randomTensor(flatShape(4), 11);
    expectGradsClose(analyticInputGrad(lin, x, lw),
                     numericInputGrad(lin, x, lw));
}

TEST(ConvLayer, ForwardIdentityKernel)
{
    // 1x1 kernel with weight 1 and zero bias must copy the input.
    Conv2d conv("c", 1, 1, 1, 1, 0);
    conv.weights() = {1.0f};
    Tensor x = randomTensor(mapShape(1, 4, 4), 5);
    auto y = conv.forward({&x}, false);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(ConvLayer, OutputShapeWithStrideAndPad)
{
    Conv2d conv("c", 3, 8, 3, 2, 1);
    const Shape out = conv.outputShape({mapShape(3, 16, 16)});
    EXPECT_EQ(out.c, 8);
    EXPECT_EQ(out.h, 8);
    EXPECT_EQ(out.w, 8);
}

TEST(ConvLayer, PartialSumsSumToOutputMinusBias)
{
    Conv2d conv("c", 2, 3, 3, 1, 1);
    Rng rng(8);
    for (auto &w : conv.weights())
        w = static_cast<float>(rng.gaussian(0.0, 0.5));
    conv.biases() = {0.1f, -0.2f, 0.3f};
    const Tensor x = randomTensor(mapShape(2, 5, 5), 21);
    auto y = conv.forward({&x}, false);

    std::vector<PartialSum> ps;
    for (std::size_t o = 0; o < y.size(); o += 7) {
        conv.partialSums(x, o, ps);
        double total = 0.0;
        for (const auto &p : ps)
            total += p.value;
        const int oc = static_cast<int>(o / (5 * 5));
        EXPECT_NEAR(total, y[o] - conv.biases()[oc], 1e-4);
    }
}

TEST(ConvLayer, ReceptiveFieldSizeInterior)
{
    Conv2d conv("c", 4, 2, 3, 1, 1);
    EXPECT_EQ(conv.receptiveFieldSize(), 4u * 3 * 3);
}

TEST(ConvLayer, BackwardNumericalGradient)
{
    Conv2d conv("c", 2, 3, 3, 1, 1);
    Rng rng(4);
    for (auto &w : conv.weights())
        w = static_cast<float>(rng.gaussian(0.0, 0.5));
    const Tensor x = randomTensor(mapShape(2, 4, 4), 12);
    const Tensor lw = randomTensor(mapShape(3, 4, 4), 13);
    expectGradsClose(analyticInputGrad(conv, x, lw),
                     numericInputGrad(conv, x, lw));
}

TEST(ConvLayer, StridedBackwardNumericalGradient)
{
    Conv2d conv("c", 2, 2, 3, 2, 1);
    Rng rng(6);
    for (auto &w : conv.weights())
        w = static_cast<float>(rng.gaussian(0.0, 0.5));
    const Tensor x = randomTensor(mapShape(2, 6, 6), 14);
    const Tensor lw = randomTensor(mapShape(2, 3, 3), 15);
    expectGradsClose(analyticInputGrad(conv, x, lw),
                     numericInputGrad(conv, x, lw));
}

TEST(ReLULayer, ForwardAndMaskedBackward)
{
    ReLU relu("r");
    Tensor x(flatShape(4), {-1.0f, 2.0f, 0.0f, 3.0f});
    auto y = relu.forward({&x}, false);
    EXPECT_FLOAT_EQ(y[0], 0.0f);
    EXPECT_FLOAT_EQ(y[1], 2.0f);
    EXPECT_FLOAT_EQ(y[3], 3.0f);
    Tensor g(flatShape(4), {1.0f, 1.0f, 1.0f, 1.0f});
    auto gi = relu.backward({&x}, g);
    EXPECT_FLOAT_EQ(gi[0][0], 0.0f);
    EXPECT_FLOAT_EQ(gi[0][1], 1.0f);
    EXPECT_FLOAT_EQ(gi[0][2], 0.0f);
}

TEST(MaxPoolLayer, ForwardPicksWindowMax)
{
    MaxPool2d pool("p", 2);
    Tensor x(mapShape(1, 2, 2), {1.0f, 4.0f, 3.0f, 2.0f});
    auto y = pool.forward({&x}, false);
    ASSERT_EQ(y.size(), 1u);
    EXPECT_FLOAT_EQ(y[0], 4.0f);
}

TEST(MaxPoolLayer, BackwardRoutesToArgmax)
{
    MaxPool2d pool("p", 2);
    Tensor x(mapShape(1, 2, 2), {1.0f, 4.0f, 3.0f, 2.0f});
    pool.forward({&x}, false);
    Tensor g(mapShape(1, 1, 1), {2.5f});
    auto gi = pool.backward({&x}, g);
    EXPECT_FLOAT_EQ(gi[0][1], 2.5f);
    EXPECT_FLOAT_EQ(gi[0][0], 0.0f);
    EXPECT_FLOAT_EQ(gi[0][2], 0.0f);
}

TEST(MaxPoolLayer, BackmapFindsWinner)
{
    MaxPool2d pool("p", 2);
    Tensor x(mapShape(1, 2, 2), {1.0f, 4.0f, 3.0f, 2.0f});
    auto y = pool.forward({&x}, false);
    std::vector<std::vector<std::size_t>> per_input;
    pool.backmapImportant({&x}, y, {0}, per_input);
    ASSERT_EQ(per_input.size(), 1u);
    ASSERT_EQ(per_input[0].size(), 1u);
    EXPECT_EQ(per_input[0][0], 1u);
}

TEST(GlobalAvgPoolLayer, ForwardAveragesChannel)
{
    GlobalAvgPool gap("g");
    Tensor x(mapShape(2, 2, 2),
             {1.0f, 2.0f, 3.0f, 4.0f, 10.0f, 10.0f, 10.0f, 10.0f});
    auto y = gap.forward({&x}, false);
    EXPECT_FLOAT_EQ(y[0], 2.5f);
    EXPECT_FLOAT_EQ(y[1], 10.0f);
}

TEST(GlobalAvgPoolLayer, BackwardSpreadsUniformly)
{
    GlobalAvgPool gap("g");
    Tensor x = randomTensor(mapShape(1, 2, 2), 30);
    gap.forward({&x}, false);
    Tensor g(flatShape(1), {4.0f});
    auto gi = gap.backward({&x}, g);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(gi[0][i], 1.0f);
}

TEST(FlattenLayer, RoundTripValues)
{
    Flatten flat("f");
    Tensor x = randomTensor(mapShape(2, 3, 3), 31);
    auto y = flat.forward({&x}, false);
    EXPECT_TRUE(y.shape().isFlat());
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_FLOAT_EQ(y[i], x[i]);
    auto gi = flat.backward({&x}, y);
    EXPECT_EQ(gi[0].shape(), x.shape());
}

TEST(AddLayer, ForwardAndBackward)
{
    Add add("a");
    Tensor a(flatShape(3), {1.0f, 2.0f, 3.0f});
    Tensor b(flatShape(3), {0.1f, 0.2f, 0.3f});
    auto y = add.forward({&a, &b}, false);
    EXPECT_FLOAT_EQ(y[2], 3.3f);
    Tensor g(flatShape(3), {1.0f, 1.0f, 1.0f});
    auto gi = add.backward({&a, &b}, g);
    ASSERT_EQ(gi.size(), 2u);
    EXPECT_FLOAT_EQ(gi[0][0], 1.0f);
    EXPECT_FLOAT_EQ(gi[1][0], 1.0f);
}

TEST(ConcatLayer, SplitsImportanceByBranch)
{
    Concat cat("c");
    Tensor a = randomTensor(mapShape(2, 2, 2), 40);
    Tensor b = randomTensor(mapShape(3, 2, 2), 41);
    auto y = cat.forward({&a, &b}, false);
    EXPECT_EQ(y.shape().c, 5);
    std::vector<std::vector<std::size_t>> per_input;
    cat.backmapImportant({&a, &b}, y, {0, 7, 8, 19}, per_input);
    ASSERT_EQ(per_input.size(), 2u);
    EXPECT_EQ(per_input[0], (std::vector<std::size_t>{0, 7}));
    EXPECT_EQ(per_input[1], (std::vector<std::size_t>{0, 11}));
}

TEST(DownsamplePadLayer, ShapeAndValues)
{
    DownsamplePad ds("d");
    Tensor x = randomTensor(mapShape(2, 4, 4), 50);
    auto y = ds.forward({&x}, false);
    EXPECT_EQ(y.shape().c, 4);
    EXPECT_EQ(y.shape().h, 2);
    EXPECT_FLOAT_EQ(y.at(0, 0, 0), x.at(0, 0, 0));
    EXPECT_FLOAT_EQ(y.at(1, 1, 1), x.at(1, 2, 2));
    EXPECT_FLOAT_EQ(y.at(2, 0, 0), 0.0f); // zero-padded channel
}

TEST(DownsamplePadLayer, BackmapSkipsPaddedChannels)
{
    DownsamplePad ds("d");
    Tensor x = randomTensor(mapShape(1, 4, 4), 51);
    auto y = ds.forward({&x}, false);
    std::vector<std::vector<std::size_t>> per_input;
    // Output idx 0 = (c0, 0, 0) maps to input (0,0,0); idx 4 = padded c1.
    ds.backmapImportant({&x}, y, {0, 4}, per_input);
    ASSERT_EQ(per_input[0].size(), 1u);
    EXPECT_EQ(per_input[0][0], 0u);
}

TEST(NormLayer, InferenceIsAffineOfRunningStats)
{
    Norm2d norm("n", 2);
    Tensor x = randomTensor(mapShape(2, 3, 3), 60);
    // Without training the running stats are (0,1): y ~= x.
    auto y = norm.forward({&x}, false);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y[i], x[i], 1e-4);
}

TEST(NormLayer, TrainingMovesRunningStats)
{
    Norm2d norm("n", 1);
    Tensor x(mapShape(1, 2, 2), {10.0f, 10.0f, 10.0f, 10.0f});
    for (int i = 0; i < 200; ++i)
        norm.forward({&x}, true);
    // Running mean approaches 10, so the normalized output approaches 0.
    auto y = norm.forward({&x}, false);
    EXPECT_NEAR(y[0], 0.0f, 0.2f);
}

TEST(NormLayer, BackwardNumericalGradient)
{
    Norm2d norm("n", 2);
    // Prime the running stats, then check the frozen-stats gradient.
    Tensor warm = randomTensor(mapShape(2, 3, 3), 61);
    for (int i = 0; i < 10; ++i)
        norm.forward({&warm}, true);
    const Tensor x = randomTensor(mapShape(2, 3, 3), 62);
    const Tensor lw = randomTensor(mapShape(2, 3, 3), 63);
    expectGradsClose(analyticInputGrad(norm, x, lw),
                     numericInputGrad(norm, x, lw));
}

} // namespace
} // namespace ptolemy::nn
