/**
 * @file
 * Bit-identity tests for the single-core fast-path kernels: AVX2 vs
 * scalar BitVector popcount family (unaligned ranges, widths that are
 * not lane multiples, degenerate all-zero/all-ones words), AVX2 vs
 * scalar partial-sum construction and ranked-argmax selection, the
 * batched gemv against its per-sample reference, and the wide-batch
 * layer-major forward against per-sample inference across chunk sizes,
 * thread counts and SIMD modes. Everything here asserts exact equality:
 * the fast paths are drop-in replacements, not approximations.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/test_models.hh"
#include "core/detector_model.hh"
#include "core/detector_session.hh"
#include "nn/conv.hh"
#include "nn/gemm.hh"
#include "nn/linear.hh"
#include "nn/network.hh"
#include "path/extractor.hh"
#include "util/bitvector.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace ptolemy
{
namespace
{

/** RAII guard restoring the process-wide SIMD mode. */
struct SimdModeGuard
{
    SimdMode saved = simdMode();
    ~SimdModeGuard() { simdMode() = saved; }
};

BitVector
randomBits(std::size_t nbits, Rng &rng, double density)
{
    BitVector v(nbits);
    for (std::size_t i = 0; i < nbits; ++i)
        if (rng.uniform() < density)
            v.set(i);
    return v;
}

TEST(BitVectorSimd, Avx2MatchesScalarAcrossWidthsAndDensities)
{
    if (!avx2Available())
        GTEST_SKIP() << "AVX2 kernels not compiled in or not supported";
    SimdModeGuard guard;
    Rng rng(0xB17);

    // Widths straddling the 4-word vector block and the kAvx2MinWords
    // dispatch floor, none a multiple of 256 bits; densities including
    // the all-zero and all-one corner words.
    const std::size_t widths[] = {1, 63, 300, 511, 4096 + 7, 65536 + 17};
    const double densities[] = {0.0, 0.02, 0.5, 1.0};
    for (std::size_t nbits : widths) {
        for (double d : densities) {
            const BitVector a = randomBits(nbits, rng, d);
            const BitVector b = randomBits(nbits, rng, 1.0 - d * 0.5);

            simdMode() = SimdMode::Scalar;
            const std::size_t pop_s = a.popcount();
            const std::size_t and_s = a.andPopcount(b);
            const double jac_s = a.jaccard(b);
            simdMode() = SimdMode::Avx2;
            EXPECT_EQ(a.popcount(), pop_s) << nbits << " d=" << d;
            EXPECT_EQ(a.andPopcount(b), and_s) << nbits << " d=" << d;
            // Exact double equality: both paths divide the same exact
            // intersection/union integers.
            EXPECT_EQ(a.jaccard(b), jac_s) << nbits << " d=" << d;
        }
    }
}

TEST(BitVectorSimd, RangeKernelsMatchScalarOnUnalignedRanges)
{
    if (!avx2Available())
        GTEST_SKIP() << "AVX2 kernels not compiled in or not supported";
    SimdModeGuard guard;
    Rng rng(0xCAFE);
    const std::size_t nbits = 4096 + 300; // interior spans + ragged tail
    const BitVector a = randomBits(nbits, rng, 0.3);
    const BitVector b = randomBits(nbits, rng, 0.6);

    for (int trial = 0; trial < 200; ++trial) {
        // Deliberately word-unaligned endpoints (off-by-one around word
        // and vector-block boundaries included by density of trials).
        const std::size_t lo = rng.below(nbits);
        const std::size_t hi = lo + rng.below(nbits - lo + 1);
        simdMode() = SimdMode::Scalar;
        const std::size_t pop_s = a.popcountRange(lo, hi);
        const std::size_t and_s = a.andPopcountRange(b, lo, hi);
        simdMode() = SimdMode::Avx2;
        EXPECT_EQ(a.popcountRange(lo, hi), pop_s)
            << "[" << lo << ", " << hi << ")";
        EXPECT_EQ(a.andPopcountRange(b, lo, hi), and_s)
            << "[" << lo << ", " << hi << ")";
    }
}

TEST(SgemvBiasBatch, BitIdenticalToPerSampleAcrossLaneRemainders)
{
    SimdModeGuard guard;
    Rng rng(0x6E3);
    // S sweeps the 4-sample interleave plus remainder lanes; K sweeps
    // the 8-wide FMA blocking remainders.
    const int Ms[] = {1, 3, 10, 64};
    const int Ks[] = {1, 7, 8, 9, 33, 2048};
    std::vector<SimdMode> modes = {SimdMode::Scalar};
    if (avx2Available())
        modes.push_back(SimdMode::Avx2);
    for (SimdMode mode : modes) {
        simdMode() = mode;
        for (int M : Ms) {
            for (int K : Ks) {
                std::vector<float> A(static_cast<std::size_t>(M) * K);
                std::vector<float> b(static_cast<std::size_t>(M));
                for (auto &v : A)
                    v = static_cast<float>(rng.uniform(-1.0, 1.0));
                for (auto &v : b)
                    v = static_cast<float>(rng.uniform(-1.0, 1.0));
                for (std::size_t S : {1u, 2u, 3u, 4u, 5u, 9u}) {
                    std::vector<std::vector<float>> xs(S), ys(S), ref(S);
                    std::vector<const float *> xp(S);
                    std::vector<float *> yp(S);
                    for (std::size_t s = 0; s < S; ++s) {
                        xs[s].resize(static_cast<std::size_t>(K));
                        for (auto &v : xs[s])
                            v = static_cast<float>(rng.uniform(-1.0, 1.0));
                        ys[s].assign(static_cast<std::size_t>(M), -9.0f);
                        ref[s].assign(static_cast<std::size_t>(M), -9.0f);
                        xp[s] = xs[s].data();
                        yp[s] = ys[s].data();
                        nn::sgemvBias(M, K, A.data(), xs[s].data(),
                                      b.data(), ref[s].data());
                    }
                    nn::sgemvBiasBatch(M, K, A.data(), b.data(), xp.data(),
                                       yp.data(), S);
                    for (std::size_t s = 0; s < S; ++s)
                        ASSERT_EQ(0, std::memcmp(ys[s].data(),
                                                 ref[s].data(),
                                                 ys[s].size() *
                                                     sizeof(float)))
                            << "mode=" << simdModeName() << " M=" << M
                            << " K=" << K << " S=" << S << " s=" << s;
                }
            }
        }
    }
}

void
expectPartialSumsEqual(const std::vector<nn::PartialSum> &a,
                       const std::vector<nn::PartialSum> &b,
                       const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].inputIndex, b[i].inputIndex) << what << " i=" << i;
        EXPECT_EQ(a[i].value, b[i].value) << what << " i=" << i;
    }
}

TEST(PartialSumsSimd, LinearAndConvRowsMatchScalarBitwise)
{
    if (!avx2Available())
        GTEST_SKIP() << "AVX2 kernels not compiled in or not supported";
    SimdModeGuard guard;
    Rng rng(0x75);

    // Odd fan-in exercises the 8-wide interleave tail.
    nn::Linear fc("fc", 333, 5);
    for (auto &w : fc.weights())
        w = static_cast<float>(rng.uniform(-1.0, 1.0));
    nn::Tensor x(nn::flatShape(333));
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));

    // Padded conv: interior neurons take the pointer-walk fast path,
    // border neurons the clamped general path.
    nn::Conv2d conv("c", 4, 3, 3, 1, 1);
    for (auto &w : conv.weights())
        w = static_cast<float>(rng.uniform(-1.0, 1.0));
    nn::Tensor cx(nn::mapShape(4, 7, 7));
    for (std::size_t i = 0; i < cx.size(); ++i)
        cx[i] = static_cast<float>(rng.uniform(-1.0, 1.0));

    std::vector<nn::PartialSum> s, v;
    for (std::size_t o = 0; o < 5; ++o) {
        simdMode() = SimdMode::Scalar;
        fc.partialSums(x, o, s);
        simdMode() = SimdMode::Avx2;
        fc.partialSums(x, o, v);
        expectPartialSumsEqual(s, v, "fc o=" + std::to_string(o));
    }
    for (std::size_t o = 0; o < static_cast<std::size_t>(3 * 7 * 7); ++o) {
        simdMode() = SimdMode::Scalar;
        conv.partialSums(cx, o, s);
        simdMode() = SimdMode::Avx2;
        conv.partialSums(cx, o, v);
        expectPartialSumsEqual(s, v, "conv o=" + std::to_string(o));
    }
}

/** Extraction over the shared trained world: every selection strategy
 *  (reference full sort, scan/heap hybrid, AVX2 argmax) and SIMD mode
 *  must produce the same path bits. theta=0.98 forces prefixes past the
 *  scan-pass cap so the heap fallback is exercised too. */
TEST(ExtractionSimd, PathBitsInvariantAcrossSelectionAndSimdModes)
{
    SimdModeGuard guard;
    auto &w = testing::world();
    const int layers = static_cast<int>(w.net.weightedNodes().size());
    for (double theta : {0.5, 0.98}) {
        path::PathExtractor ex(w.net,
                               path::ExtractionConfig::bwCu(layers, theta));
        nn::Network::Record rec;
        path::ExtractionWorkspace ws;

        std::vector<BitVector> got;
        std::vector<std::string> label;
        std::vector<SimdMode> modes = {SimdMode::Scalar};
        if (avx2Available())
            modes.push_back(SimdMode::Avx2);
        for (SimdMode mode : modes) {
            for (bool reference : {false, true}) {
                simdMode() = mode;
                ws.referenceSort = reference;
                BitVector bits;
                for (int i = 0; i < 6; ++i) {
                    w.net.inferInto(w.dataset.test[i].input, rec);
                    BitVector one;
                    ex.extractInto(rec, ws, one);
                    if (bits.size() == 0)
                        bits = BitVector(one.size());
                    bits |= one;
                }
                got.push_back(std::move(bits));
                label.push_back(std::string(simdModeName()) +
                                (reference ? "+refsort" : "+scan"));
            }
        }
        for (std::size_t i = 1; i < got.size(); ++i) {
            ASSERT_EQ(got[i].size(), got[0].size());
            EXPECT_EQ(got[i].popcount(), got[0].popcount())
                << label[i] << " vs " << label[0] << " theta=" << theta;
            EXPECT_EQ(got[i].andPopcount(got[0]), got[0].popcount())
                << label[i] << " vs " << label[0] << " theta=" << theta;
        }
    }
}

TEST(ForwardBatchWide, BitIdenticalToPerSampleAcrossChunksAndThreads)
{
    SimdModeGuard guard;
    auto &w = testing::world();
    std::vector<const nn::Tensor *> xs;
    for (std::size_t i = 0; i < 64; ++i)
        xs.push_back(&w.dataset.test[i % w.dataset.test.size()].input);

    std::vector<SimdMode> modes = {SimdMode::Scalar};
    if (avx2Available())
        modes.push_back(SimdMode::Avx2);
    for (SimdMode mode : modes) {
        simdMode() = mode;
        // Per-sample reference records under the same SIMD mode (the
        // wide path promises identity to *this mode's* per-sample
        // forward, not across modes — GEMM accumulation orders differ).
        std::vector<nn::Network::Record> ref(64);
        for (std::size_t i = 0; i < 64; ++i)
            w.net.inferInto(*xs[i], ref[i]);
        for (std::size_t chunk : {1u, 2u, 64u}) {
            for (unsigned threads : {1u, 2u, 8u}) {
                ThreadPool pool(threads);
                std::vector<nn::Network::Record> recs;
                for (std::size_t base = 0; base < 64; base += chunk) {
                    const std::size_t n = std::min<std::size_t>(
                        chunk, 64 - base);
                    const std::span<const nn::Tensor *const> span(
                        xs.data() + base, n);
                    w.net.forwardBatchWide(span, recs, &pool);
                    for (std::size_t i = 0; i < n; ++i) {
                        const auto &got = recs[i].outputs;
                        const auto &want = ref[base + i].outputs;
                        ASSERT_EQ(got.size(), want.size());
                        for (std::size_t l = 0; l < got.size(); ++l) {
                            ASSERT_EQ(got[l].size(), want[l].size());
                            ASSERT_EQ(0,
                                      std::memcmp(got[l].data(),
                                                  want[l].data(),
                                                  got[l].size() *
                                                      sizeof(float)))
                                << "mode=" << simdModeName()
                                << " chunk=" << chunk
                                << " threads=" << threads << " sample "
                                << base + i << " layer " << l;
                        }
                    }
                }
            }
        }
    }
}

TEST(DetectorSessionWide, DecisionsMatchFusedAcrossChunkSizes)
{
    auto &w = testing::world();
    static const core::DetectorModel model = [&] {
        core::DetectorBuilder bld(
            w.net,
            path::ExtractionConfig::bwCu(
                static_cast<int>(w.net.weightedNodes().size()), 0.5),
            10);
        bld.profileClassPaths(w.dataset.train, 20);
        Rng rng(0x51AB);
        std::vector<nn::Tensor> clean, noisy;
        for (std::size_t i = 0; i < 16; ++i) {
            const auto &s = w.dataset.test[i];
            clean.push_back(s.input);
            nn::Tensor x = s.input;
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
            noisy.push_back(std::move(x));
        }
        classify::FeatureMatrix benign, adversarial;
        bld.featuresBatch(clean, benign);
        bld.featuresBatch(noisy, adversarial);
        bld.fitClassifier(benign, adversarial);
        return std::move(bld).build();
    }();

    std::vector<nn::Tensor> xs;
    for (std::size_t i = 0; i < 13; ++i)
        xs.push_back(w.dataset.test[i].input);

    core::DetectorSession sess(model);
    sess.setWideBatch(false);
    std::vector<core::Decision> fused;
    sess.detectBatch(xs, fused);

    for (std::size_t chunk : {1u, 2u, 5u, 64u}) {
        for (unsigned threads : {1u, 2u}) {
            ThreadPool pool(threads);
            core::DetectorSession wide_sess(model);
            wide_sess.setWideBatch(true);
            wide_sess.setWideChunk(chunk);
            std::vector<core::Decision> out;
            wide_sess.detectBatch(xs, out, &pool);
            ASSERT_EQ(out.size(), fused.size());
            for (std::size_t i = 0; i < out.size(); ++i) {
                EXPECT_EQ(out[i].predictedClass, fused[i].predictedClass);
                EXPECT_EQ(out[i].adversarial, fused[i].adversarial);
                EXPECT_EQ(out[i].score, fused[i].score)
                    << "chunk=" << chunk << " threads=" << threads
                    << " sample " << i;
                EXPECT_EQ(out[i].features.overall,
                          fused[i].features.overall);
                ASSERT_EQ(out[i].features.perLayer.size(),
                          fused[i].features.perLayer.size());
                for (std::size_t l = 0;
                     l < out[i].features.perLayer.size(); ++l)
                    EXPECT_EQ(out[i].features.perLayer[l],
                              fused[i].features.perLayer[l]);
            }
        }
    }
}

} // namespace
} // namespace ptolemy
