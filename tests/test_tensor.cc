/**
 * @file
 * Tensor and shape tests.
 */

#include <gtest/gtest.h>

#include "nn/tensor.hh"

namespace ptolemy::nn
{
namespace
{

TEST(Shape, Numel)
{
    EXPECT_EQ(flatShape(10).numel(), 10u);
    EXPECT_TRUE(flatShape(10).isFlat());
    EXPECT_EQ(mapShape(3, 4, 5).numel(), 60u);
    EXPECT_FALSE(mapShape(3, 4, 5).isFlat());
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t(mapShape(2, 3, 3));
    EXPECT_EQ(t.size(), 18u);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ChwIndexing)
{
    Tensor t(mapShape(2, 3, 4));
    t.at(1, 2, 3) = 5.0f;
    EXPECT_EQ(t[t.index(1, 2, 3)], 5.0f);
    EXPECT_EQ(t.index(0, 0, 0), 0u);
    EXPECT_EQ(t.index(1, 0, 0), 12u);
    EXPECT_EQ(t.index(1, 2, 3), 12u + 2 * 4 + 3);
}

TEST(Tensor, ElementwiseOps)
{
    Tensor a(flatShape(3), {1.0f, 2.0f, 3.0f});
    Tensor b(flatShape(3), {0.5f, 0.5f, 0.5f});
    a += b;
    EXPECT_FLOAT_EQ(a[0], 1.5f);
    a *= 2.0f;
    EXPECT_FLOAT_EQ(a[2], 7.0f);
}

TEST(Tensor, SumSqAndArgmax)
{
    Tensor t(flatShape(4), {1.0f, -2.0f, 3.0f, 0.0f});
    EXPECT_DOUBLE_EQ(t.sumSq(), 1.0 + 4.0 + 9.0);
    EXPECT_EQ(t.argmax(), 2u);
}

TEST(Tensor, FillConstant)
{
    Tensor t(flatShape(5));
    t.fill(2.5f);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_FLOAT_EQ(t[i], 2.5f);
}

} // namespace
} // namespace ptolemy::nn
