/**
 * @file
 * Tests for the table printer and binary serialization helpers that the
 * caches and bench outputs rely on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/serialize.hh"
#include "util/table.hh"

namespace ptolemy
{
namespace
{

TEST(TablePrinter, AlignsColumnsAndKeepsCells)
{
    Table t("demo");
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"b", "22222"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("| alpha |"), std::string::npos);
    EXPECT_NE(out.find("22222"), std::string::npos);
    // Every data row has the same width as the header row.
    std::istringstream is(out);
    std::string line;
    std::size_t width = 0;
    std::getline(is, line); // title
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width) << line;
    }
}

TEST(TablePrinter, CsvRendering)
{
    Table t("csv");
    t.header({"a", "b"});
    t.row({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Formatters, NumberFormats)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(1.0, 0), "1");
    EXPECT_EQ(fmtX(12.34), "12.3x");
    EXPECT_EQ(fmtPct(0.052), "5.2%");
}

TEST(Serialize, IntegerRoundtrip)
{
    std::stringstream ss;
    writeU64(ss, 0xDEADBEEFCAFEull);
    writeU32(ss, 42);
    writeF64(ss, -3.5);
    std::uint64_t a;
    std::uint32_t b;
    double c;
    ASSERT_TRUE(readU64(ss, a));
    ASSERT_TRUE(readU32(ss, b));
    ASSERT_TRUE(readF64(ss, c));
    EXPECT_EQ(a, 0xDEADBEEFCAFEull);
    EXPECT_EQ(b, 42u);
    EXPECT_DOUBLE_EQ(c, -3.5);
}

TEST(Serialize, FloatVectorRoundtrip)
{
    std::stringstream ss;
    std::vector<float> v = {1.0f, -2.5f, 3.25f};
    writeFloats(ss, v);
    writeFloats(ss, {});
    std::vector<float> w, e;
    ASSERT_TRUE(readFloats(ss, w));
    ASSERT_TRUE(readFloats(ss, e));
    EXPECT_EQ(w, v);
    EXPECT_TRUE(e.empty());
}

TEST(Serialize, StringRoundtripIncludingNulBytes)
{
    std::stringstream ss;
    const std::string s("a\0b", 3);
    writeString(ss, s);
    std::string t;
    ASSERT_TRUE(readString(ss, t));
    EXPECT_EQ(t, s);
}

TEST(Serialize, ShortReadFails)
{
    std::stringstream ss;
    writeU64(ss, 100); // length prefix claims 100 floats, none follow
    std::vector<float> v;
    EXPECT_FALSE(readFloats(ss, v));

    std::stringstream empty;
    std::uint64_t x;
    EXPECT_FALSE(readU64(empty, x));
}

} // namespace
} // namespace ptolemy
