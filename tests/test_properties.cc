/**
 * @file
 * Cross-variant property tests: invariants that must hold for every
 * extraction variant, every theta, and arbitrary ISA words.
 */

#include <gtest/gtest.h>

#include "attack/gradient_attacks.hh"
#include "common/test_models.hh"
#include "compiler/compiler.hh"
#include "core/detector.hh"
#include "core/evaluation.hh"
#include "hw/simulator.hh"
#include "isa/instruction.hh"
#include "path/extractor.hh"
#include "util/rng.hh"

namespace ptolemy
{
namespace
{

int
numWeighted()
{
    return static_cast<int>(testing::world().net.weightedNodes().size());
}

/** Build a calibrated config for a named variant. */
path::ExtractionConfig
variantConfig(const std::string &name)
{
    auto &w = testing::world();
    const int n = numWeighted();
    path::ExtractionConfig cfg;
    if (name == "BwCu")
        cfg = path::ExtractionConfig::bwCu(n, 0.5);
    else if (name == "BwAb")
        cfg = path::ExtractionConfig::bwAb(n);
    else if (name == "FwAb")
        cfg = path::ExtractionConfig::fwAb(n);
    else
        cfg = path::ExtractionConfig::hybrid(n, 0.5);
    std::vector<nn::Tensor> samples;
    for (int i = 0; i < 6; ++i)
        samples.push_back(w.dataset.train[i * 19].input);
    path::calibrateAbsoluteThresholds(w.net, cfg, samples, 0.05);
    return cfg;
}

class VariantProperties : public ::testing::TestWithParam<std::string>
{
};

TEST_P(VariantProperties, ExtractionIsDeterministic)
{
    auto &w = testing::world();
    path::PathExtractor ex(w.net, variantConfig(GetParam()));
    auto rec = w.net.forward(w.dataset.test[4].input);
    const BitVector a = ex.extract(rec);
    const BitVector b = ex.extract(rec);
    EXPECT_EQ(a, b);
}

TEST_P(VariantProperties, PathBitsFitTheLayout)
{
    auto &w = testing::world();
    path::PathExtractor ex(w.net, variantConfig(GetParam()));
    for (int i = 0; i < 6; ++i) {
        auto rec = w.net.forward(w.dataset.test[i * 5].input);
        const BitVector p = ex.extract(rec);
        EXPECT_EQ(p.size(), ex.layout().totalBits());
        // Per-segment popcount never exceeds the segment width, and the
        // segment sums equal the total.
        std::size_t sum = 0;
        for (const auto &seg : ex.layout().segments()) {
            const std::size_t ones = p.popcountRange(
                seg.bitOffset, seg.bitOffset + seg.numBits);
            EXPECT_LE(ones, seg.numBits);
            sum += ones;
        }
        EXPECT_EQ(sum, p.popcount());
    }
}

TEST_P(VariantProperties, TraceCountsMatchPath)
{
    auto &w = testing::world();
    path::PathExtractor ex(w.net, variantConfig(GetParam()));
    auto rec = w.net.forward(w.dataset.test[2].input);
    path::ExtractionTrace trace;
    const BitVector p = ex.extract(rec, &trace);
    EXPECT_EQ(trace.pathBits, p.popcount());
    std::size_t bits = 0;
    for (const auto &lt : trace.layers) {
        bits += lt.importantIn;
        EXPECT_LE(lt.importantIn, lt.inputFmapSize);
    }
    EXPECT_EQ(bits, p.popcount());
}

TEST_P(VariantProperties, DetectorBeatsChanceOnFgsm)
{
    auto &w = testing::world();
    core::Detector det(w.net, variantConfig(GetParam()), 10);
    det.buildClassPaths(w.dataset.train, 40);
    attack::Fgsm fgsm;
    auto pairs = core::buildAttackPairs(w.net, fgsm, w.dataset.test, 40);
    ASSERT_GT(pairs.size(), 6u);
    EXPECT_GT(core::fitAndScore(det, pairs, 0.5).auc, 0.6)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantProperties,
                         ::testing::Values("BwCu", "BwAb", "FwAb",
                                           "Hybrid"),
                         [](const auto &info) { return info.param; });

// ---------------------------------------------------------------- ISA ----

TEST(IsaProperty, DecodeEncodeIdempotentOnRandomWords)
{
    Rng rng(0x15A);
    int valid = 0;
    for (int i = 0; i < 2000; ++i) {
        const std::uint32_t word = rng.next() & 0xFFFFFF;
        const auto ins = isa::Instruction::decode(word);
        // Unknown opcodes decode to *something*; re-encoding a decoded
        // instruction must be a fixed point.
        const auto again = isa::Instruction::decode(ins.encode());
        EXPECT_EQ(ins, again);
        if (ins.op == isa::Opcode::Halt)
            continue;
        ++valid;
    }
    EXPECT_GT(valid, 0);
}

// ---------------------------------------------------------- simulator ----

TEST(SimulatorProperty, MoreWorkNeverFinishesEarlier)
{
    hw::Simulator sim;
    isa::InstrMeta m;
    std::uint64_t prev = 0;
    for (std::size_t macs : {1000u, 10000u, 100000u, 1000000u}) {
        m.macs = macs;
        const auto d = sim.durationOf(isa::makeInf(0, 2, 1), m, 0);
        EXPECT_GE(d, prev);
        prev = d;
    }
    prev = 0;
    isa::InstrMeta s;
    for (std::size_t len : {16u, 256u, 4096u, 65536u}) {
        s.seqLen = len;
        const auto d = sim.durationOf(isa::makeSort(1, 3, 6), s, len);
        EXPECT_GE(d, prev);
        prev = d;
    }
}

TEST(SimulatorProperty, CyclesCoverEveryUnitsBusyTime)
{
    auto &w = testing::world();
    // Any simulated program: total cycles >= busy time of each unit.
    const auto prog = compiler::Compiler::inferenceOnly(w.net);
    hw::Simulator sim;
    const auto rep = sim.run(prog);
    for (int u = 0; u < hw::kNumFuncUnits; ++u)
        EXPECT_GE(rep.cycles, rep.unitBusyCycles[u]);
}

// -------------------------------------------------------- class paths ----

TEST(ClassPathProperty, AggregateIsIdempotentForSamePath)
{
    auto &w = testing::world();
    path::PathExtractor ex(w.net, variantConfig("BwCu"));
    auto rec = w.net.forward(w.dataset.train[0].input);
    const BitVector p = ex.extract(rec);
    path::ClassPathStore store(10, p.size());
    store.aggregate(0, p);
    const std::size_t pop = store.classPath(0).popcount();
    EXPECT_EQ(store.aggregate(0, p), 0u); // OR with itself adds nothing
    EXPECT_EQ(store.classPath(0).popcount(), pop);
}

TEST(ClassPathProperty, AggregationOrderDoesNotMatter)
{
    auto &w = testing::world();
    path::PathExtractor ex(w.net, variantConfig("BwCu"));
    std::vector<BitVector> paths;
    for (int i = 0; i < 5; ++i)
        paths.push_back(
            ex.extract(w.net.forward(w.dataset.train[i * 3].input)));
    path::ClassPathStore fwd(1, paths[0].size());
    path::ClassPathStore rev(1, paths[0].size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
        fwd.aggregate(0, paths[i]);
        rev.aggregate(0, paths[paths.size() - 1 - i]);
    }
    EXPECT_EQ(fwd.classPath(0), rev.classPath(0));
}

} // namespace
} // namespace ptolemy
