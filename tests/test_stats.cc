/**
 * @file
 * Unit tests for the statistics helpers, especially the AUC metric the
 * whole evaluation rests on.
 */

#include <gtest/gtest.h>

#include "util/stats.hh"

namespace ptolemy
{
namespace
{

TEST(Stats, MeanAndStddev)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
    EXPECT_NEAR(stddev({2.0, 4.0}), 1.0, 1e-12);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(minOf({3.0, -1.0, 2.0}), -1.0);
    EXPECT_DOUBLE_EQ(maxOf({3.0, -1.0, 2.0}), 3.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
    EXPECT_DOUBLE_EQ(percentile({5.0}, 90), 5.0);
}

TEST(Auc, PerfectSeparation)
{
    // All adversarial scores above all benign scores.
    EXPECT_DOUBLE_EQ(aucScore({0.9, 0.8, 0.1, 0.2}, {1, 1, 0, 0}), 1.0);
}

TEST(Auc, PerfectInversion)
{
    EXPECT_DOUBLE_EQ(aucScore({0.1, 0.2, 0.9, 0.8}, {1, 1, 0, 0}), 0.0);
}

TEST(Auc, RandomScoresGiveHalf)
{
    // Identical scores: AUC must be exactly 0.5 via midranks.
    EXPECT_DOUBLE_EQ(aucScore({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5);
}

TEST(Auc, HandlesTiesByMidrank)
{
    // One tie straddling the classes: 2 pos, 2 neg.
    // pairs: (0.3pos vs 0.1neg)=1, (0.3pos vs 0.3neg)=0.5,
    //        (0.7pos vs 0.1neg)=1, (0.7pos vs 0.3neg)=1 -> 3.5/4
    EXPECT_DOUBLE_EQ(aucScore({0.3, 0.7, 0.1, 0.3}, {1, 1, 0, 0}), 0.875);
}

TEST(Auc, DegenerateSingleClass)
{
    EXPECT_DOUBLE_EQ(aucScore({0.1, 0.9}, {1, 1}), 0.5);
    EXPECT_DOUBLE_EQ(aucScore({0.1, 0.9}, {0, 0}), 0.5);
}

TEST(Auc, EmptyInputIsChanceLevel)
{
    // Zero held-out points carry no ranking information; the score must
    // be the defined chance level, not a divide-by-zero artifact.
    EXPECT_DOUBLE_EQ(aucScore({}, {}), 0.5);
    EXPECT_DOUBLE_EQ(aucScore({0.7}, {1}), 0.5);
}

TEST(DetectionCounts, ThresholdCounting)
{
    const std::vector<double> scores = {0.9, 0.4, 0.6, 0.1};
    const std::vector<int> labels = {1, 1, 0, 0};
    const auto c = countsAtThreshold(scores, labels, 0.5);
    EXPECT_EQ(c.truePos, 1u);
    EXPECT_EQ(c.falseNeg, 1u);
    EXPECT_EQ(c.falsePos, 1u);
    EXPECT_EQ(c.trueNeg, 1u);
    EXPECT_DOUBLE_EQ(c.tpr(), 0.5);
    EXPECT_DOUBLE_EQ(c.fpr(), 0.5);
    EXPECT_DOUBLE_EQ(c.accuracy(), 0.5);
}

} // namespace
} // namespace ptolemy
