/**
 * @file
 * ISA tests: 24-bit encode/decode roundtrips, Table I operand arities,
 * and the assembler with the paper's Listing 1.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

namespace ptolemy::isa
{
namespace
{

TEST(Instruction, EncodingFitsIn24Bits)
{
    const auto ins = makeInfSp(15, 14, 13, 12);
    EXPECT_LT(ins.encode(), 1u << 24);
    const auto mv = makeMov(15, 0xFFFF);
    EXPECT_LT(mv.encode(), 1u << 24);
}

class OpcodeRoundtrip : public ::testing::TestWithParam<Instruction>
{
};

TEST_P(OpcodeRoundtrip, EncodeDecodeIdentity)
{
    const Instruction ins = GetParam();
    EXPECT_EQ(Instruction::decode(ins.encode()), ins);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundtrip,
    ::testing::Values(makeInf(1, 2, 3), makeInfSp(4, 5, 6, 7),
                      makeCsps(8, 9, 10), makeSort(1, 3, 6),
                      makeAcum(6, 1, 5), makeGenMasks(2, 14),
                      makeFindNeuron(5, 3, 4), makeFindRf(4, 1),
                      makeCls(13, 14, 15), makeMov(3, 0x200),
                      makeMovR(2, 9), makeDec(11), makeJne(11, 5),
                      makeHalt()));

TEST(Instruction, OperandArityMatchesTableI)
{
    EXPECT_EQ(opcodeNumRegs(Opcode::Inf), 3);
    EXPECT_EQ(opcodeNumRegs(Opcode::InfSp), 4);
    EXPECT_EQ(opcodeNumRegs(Opcode::Csps), 3);
    EXPECT_EQ(opcodeNumRegs(Opcode::Sort), 3);
    EXPECT_EQ(opcodeNumRegs(Opcode::Acum), 3);
    EXPECT_EQ(opcodeNumRegs(Opcode::GenMasks), 2);
    EXPECT_EQ(opcodeNumRegs(Opcode::FindNeuron), 3);
    EXPECT_EQ(opcodeNumRegs(Opcode::FindRf), 2);
    EXPECT_EQ(opcodeNumRegs(Opcode::Cls), 3);
}

TEST(Instruction, ClassesMatchTableI)
{
    EXPECT_EQ(opcodeClass(Opcode::Inf), InstrClass::Inference);
    EXPECT_EQ(opcodeClass(Opcode::Csps), InstrClass::Inference);
    EXPECT_EQ(opcodeClass(Opcode::Sort), InstrClass::PathConstruction);
    EXPECT_EQ(opcodeClass(Opcode::FindRf), InstrClass::PathConstruction);
    EXPECT_EQ(opcodeClass(Opcode::Cls), InstrClass::Classification);
    EXPECT_EQ(opcodeClass(Opcode::Mov), InstrClass::Other);
    EXPECT_EQ(opcodeClass(Opcode::Jne), InstrClass::Other);
}

TEST(Instruction, ToStringRendersOperands)
{
    EXPECT_EQ(makeSort(1, 3, 6).toString(), "sort r1, r3, r6");
    EXPECT_EQ(makeMov(3, 0x200).toString(), "mov r3, 0x200");
    EXPECT_EQ(makeHalt().toString(), "halt");
}

TEST(Program, CodeBytesAreThreePerInstruction)
{
    Program p;
    p.append(makeMov(3, 1));
    p.append(makeHalt());
    EXPECT_EQ(p.codeBytes(), 6u);
    EXPECT_NE(p.disassemble().find("mov r3"), std::string::npos);
}

TEST(Assembler, AssemblesListingOneStyleProgram)
{
    // The paper's Listing 1 (cumulative-threshold extraction kernel),
    // with the omitted loop-prologue lines made concrete.
    const std::string src = R"(
.set rfsize 0x200
.set thrd 0x08
mov r3, rfsize
mov r5, thrd
mov r11, 0x10
<start>
findneuron r2, r7, r4
findrf r4, r1
sort r1, r3, r6
acum r6, r1, r5
dec r11
jne r11, <start>
halt
)";
    const auto res = assemble(src);
    ASSERT_TRUE(res.ok) << res.error;
    // mov x3, findneuron, findrf, sort, acum, dec, jne, halt.
    EXPECT_EQ(res.program.size(), 10u);
    // Program stays under 100 bytes (paper Sec. V-D).
    EXPECT_LT(res.program.codeBytes(), 100u);
    // Label resolved to the findneuron instruction (index 3).
    const auto &jne = res.program.instruction(8);
    EXPECT_EQ(jne.op, Opcode::Jne);
    EXPECT_EQ(jne.imm, 3);
    // .set constant resolved.
    EXPECT_EQ(res.program.instruction(0).imm, 0x200);
}

TEST(Assembler, ReportsUnknownMnemonic)
{
    const auto res = assemble("frobnicate r1, r2\n");
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("unknown mnemonic"), std::string::npos);
}

TEST(Assembler, ReportsBadRegister)
{
    EXPECT_FALSE(assemble("dec r16\n").ok);
    EXPECT_FALSE(assemble("dec x1\n").ok);
}

TEST(Assembler, ReportsOperandCountMismatch)
{
    EXPECT_FALSE(assemble("sort r1, r2\n").ok);
}

TEST(Assembler, ReportsUnresolvedLabel)
{
    EXPECT_FALSE(assemble("jne r1, <nowhere>\n").ok);
}

TEST(Assembler, IgnoresCommentsAndBlankLines)
{
    const auto res = assemble("; comment only\n\nhalt ; trailing\n");
    ASSERT_TRUE(res.ok);
    EXPECT_EQ(res.program.size(), 1u);
}

TEST(Assembler, RoundTripsThroughDisassembly)
{
    const auto res = assemble("mov r3, 0x20\nsort r1, r3, r6\n"
                              "infsp r0, r1, r2, r10\ndec r11\n"
                              "jne r11, 1\nhalt\n");
    ASSERT_TRUE(res.ok) << res.error;
    const auto res2 = assemble(res.program.disassemble());
    ASSERT_TRUE(res2.ok) << res2.error;
    ASSERT_EQ(res2.program.size(), res.program.size());
    for (std::size_t i = 0; i < res.program.size(); ++i)
        EXPECT_EQ(res.program.instruction(i).encode(),
                  res2.program.instruction(i).encode());
}

} // namespace
} // namespace ptolemy::isa
