/**
 * @file
 * Baseline-detector tests (EP / CDRP / DeepFense) plus the qualitative
 * accuracy ordering the paper's Figs. 10 and 12 rest on.
 */

#include <gtest/gtest.h>

#include "attack/gradient_attacks.hh"
#include "baselines/cdrp.hh"
#include "baselines/deepfense.hh"
#include "baselines/ep.hh"
#include "common/test_models.hh"
#include "core/detector.hh"
#include "core/evaluation.hh"

namespace ptolemy::baselines
{
namespace
{

std::vector<core::DetectionPair> &
fgsmPairs()
{
    static std::vector<core::DetectionPair> pairs = [] {
        auto &w = ptolemy::testing::world();
        attack::Fgsm fgsm;
        return core::buildAttackPairs(w.net, fgsm, w.dataset.test, 100);
    }();
    return pairs;
}

TEST(EpBaselineTest, DetectsAdversaries)
{
    auto &w = ptolemy::testing::world();
    EpBaseline ep(w.net, 10);
    ep.profile(w.net, w.dataset.train);
    const double auc = evaluateBaselineAuc(ep, w.net, fgsmPairs());
    EXPECT_GT(auc, 0.85); // measured minimum across kernel regimes: 0.978
    EXPECT_TRUE(ep.inferenceTimeCapable());
    EXPECT_EQ(ep.name(), "EP");
}

TEST(CdrpBaselineTest, RunsButIsNotInferenceTimeCapable)
{
    auto &w = ptolemy::testing::world();
    CdrpBaseline cdrp(w.net, 10);
    cdrp.profile(w.net, w.dataset.train);
    const double auc = evaluateBaselineAuc(cdrp, w.net, fgsmPairs());
    EXPECT_GT(auc, 0.80); // real discrimination on the shared fixture...
    EXPECT_FALSE(cdrp.inferenceTimeCapable()); // ...but needs retraining
}

TEST(DeepFenseBaselineTest, VariantNamesAndDefenderCounts)
{
    auto &w = ptolemy::testing::world();
    DeepFenseBaseline dfl(w.net, 1), dfm(w.net, 8), dfh(w.net, 16);
    EXPECT_EQ(dfl.name(), "DFL");
    EXPECT_EQ(dfm.name(), "DFM");
    EXPECT_EQ(dfh.name(), "DFH");
    EXPECT_EQ(dfl.numDefenders(), 1);
    EXPECT_EQ(dfh.numDefenders(), 16);
    // Redundancy cost scales with the number of defenders.
    EXPECT_GT(dfh.extraMacs(), dfm.extraMacs());
    EXPECT_GT(dfm.extraMacs(), dfl.extraMacs());
}

TEST(DeepFenseBaselineTest, MultiDefenderVariantsDetectAboveChance)
{
    // On the enlarged shared fixture the multi-defender variants show
    // real discrimination (paper Fig. 12's premise); the single
    // defender is weaker and only gets a structural bound. Measured
    // minima across the AVX2 / scalar / naive-conv kernel regimes:
    // DFL 0.48, DFM 0.60, DFH 0.58.
    auto &w = ptolemy::testing::world();
    DeepFenseBaseline dfl(w.net, 1), dfm(w.net, 8), dfh(w.net, 16);
    dfl.profile(w.net, w.dataset.train);
    dfm.profile(w.net, w.dataset.train);
    dfh.profile(w.net, w.dataset.train);
    const double auc_l = evaluateBaselineAuc(dfl, w.net, fgsmPairs());
    const double auc_m = evaluateBaselineAuc(dfm, w.net, fgsmPairs());
    const double auc_h = evaluateBaselineAuc(dfh, w.net, fgsmPairs());
    EXPECT_GT(auc_l, 0.40);
    EXPECT_GT(auc_m, 0.55); // genuinely better than chance
    EXPECT_GT(auc_h, 0.55);
    EXPECT_GT(auc_h + 0.10, auc_l); // more defenders never collapse
}

TEST(AccuracyOrdering, PtolemyBwCuAtLeastMatchesBaselines)
{
    // The qualitative content of Fig. 10/12: Ptolemy's backward
    // cumulative variant is at least as accurate as EP and clearly more
    // accurate than CDRP and DeepFense on the same pairs.
    auto &w = ptolemy::testing::world();
    const int n = static_cast<int>(w.net.weightedNodes().size());

    core::Detector det(w.net, path::ExtractionConfig::bwCu(n, 0.5), 10);
    det.buildClassPaths(w.dataset.train, 60);
    const double ptolemy_auc =
        core::fitAndScore(det, fgsmPairs(), 0.5).auc;

    EpBaseline ep(w.net, 10);
    ep.profile(w.net, w.dataset.train);
    const double ep_auc = evaluateBaselineAuc(ep, w.net, fgsmPairs());

    CdrpBaseline cdrp(w.net, 10);
    cdrp.profile(w.net, w.dataset.train);
    const double cdrp_auc = evaluateBaselineAuc(cdrp, w.net, fgsmPairs());

    // Margins cover a few AUC quanta of the held-out split. Measured
    // minimum Ptolemy AUC across kernel regimes: 0.998.
    EXPECT_GE(ptolemy_auc + 0.05, ep_auc);  // >= EP (within noise)
    EXPECT_GE(ptolemy_auc + 0.10, cdrp_auc);
    EXPECT_GT(ptolemy_auc, 0.9);
}

} // namespace
} // namespace ptolemy::baselines
