/**
 * @file
 * Synthetic dataset tests.
 */

#include <gtest/gtest.h>

#include "data/synthetic.hh"
#include "util/rng.hh"

namespace ptolemy::data
{
namespace
{

TEST(SyntheticData, ShapesAndCounts)
{
    DatasetSpec spec;
    spec.numClasses = 10;
    spec.trainPerClass = 8;
    spec.testPerClass = 3;
    const auto ds = makeSyntheticDataset(spec);
    EXPECT_EQ(ds.train.size(), 80u);
    EXPECT_EQ(ds.test.size(), 30u);
    EXPECT_EQ(ds.numClasses, 10);
    for (const auto &s : ds.train) {
        EXPECT_EQ(s.input.shape(), nn::mapShape(3, 16, 16));
        EXPECT_LT(s.label, 10u);
    }
}

TEST(SyntheticData, PixelRangeIsValidImage)
{
    DatasetSpec spec;
    spec.trainPerClass = 5;
    spec.testPerClass = 1;
    const auto ds = makeSyntheticDataset(spec);
    for (const auto &s : ds.train)
        for (std::size_t i = 0; i < s.input.size(); ++i) {
            EXPECT_GE(s.input[i], 0.0f);
            EXPECT_LE(s.input[i], 1.0f);
        }
}

TEST(SyntheticData, DeterministicForSeed)
{
    DatasetSpec spec;
    spec.trainPerClass = 4;
    spec.testPerClass = 2;
    const auto a = makeSyntheticDataset(spec);
    const auto b = makeSyntheticDataset(spec);
    ASSERT_EQ(a.train.size(), b.train.size());
    for (std::size_t i = 0; i < a.train.size(); ++i)
        for (std::size_t j = 0; j < a.train[i].input.size(); ++j)
            EXPECT_EQ(a.train[i].input[j], b.train[i].input[j]);
}

TEST(SyntheticData, DifferentSeedsDiffer)
{
    DatasetSpec a_spec, b_spec;
    a_spec.trainPerClass = b_spec.trainPerClass = 2;
    a_spec.testPerClass = b_spec.testPerClass = 1;
    b_spec.seed = a_spec.seed + 1;
    const auto a = makeSyntheticDataset(a_spec);
    const auto b = makeSyntheticDataset(b_spec);
    int diffs = 0;
    for (std::size_t j = 0; j < a.train[0].input.size(); ++j)
        diffs += a.train[0].input[j] != b.train[0].input[j];
    EXPECT_GT(diffs, 100);
}

TEST(SyntheticData, ClassesAreVisuallyDistinct)
{
    // Mean image of different classes should differ clearly more than two
    // samples of the same class differ from their own mean.
    DatasetSpec spec;
    spec.trainPerClass = 20;
    spec.testPerClass = 1;
    spec.noiseSigma = 0.03;
    const auto ds = makeSyntheticDataset(spec);

    auto class_mean = [&](int cls) {
        nn::Tensor m(nn::mapShape(3, 16, 16));
        int n = 0;
        for (const auto &s : ds.train)
            if (static_cast<int>(s.label) == cls) {
                m += s.input;
                ++n;
            }
        m *= 1.0f / n;
        return m;
    };
    const auto m0 = class_mean(0);
    const auto m1 = class_mean(1);
    double inter = 0.0;
    for (std::size_t i = 0; i < m0.size(); ++i)
        inter += (m0[i] - m1[i]) * (m0[i] - m1[i]);
    EXPECT_GT(inter / m0.size(), 1e-3);
}

TEST(SyntheticData, HundredClassVariantWorks)
{
    DatasetSpec spec;
    spec.numClasses = 100;
    spec.trainPerClass = 2;
    spec.testPerClass = 1;
    const auto ds = makeSyntheticDataset(spec);
    EXPECT_EQ(ds.train.size(), 200u);
    std::size_t max_label = 0;
    for (const auto &s : ds.train)
        max_label = std::max(max_label, s.label);
    EXPECT_EQ(max_label, 99u);
}

} // namespace
} // namespace ptolemy::data
