/**
 * @file
 * Telemetry subsystem tests: Count-Min point-query error within the
 * configured (ε, δ) bound on skewed streams, shard-merge bit-identity
 * across slot counts, windowed hub seal determinism, empty-window
 * no-op, NaN/Inf poison routing, drift-event semantics (fire on shift,
 * stay silent unshifted), threshold-recalibration proposal math, the
 * zero-allocation steady state, and end-to-end session integration
 * (attached telemetry never changes a Decision; sealed aggregates are
 * bit-identical at any thread count, including concurrent ingest
 * through a serving hot model swap — the TSan target).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "common/alloc_probe.hh"
#include "common/test_models.hh"
#include "core/detector_model.hh"
#include "core/detector_session.hh"
#include "serve/server.hh"
#include "telemetry/hub.hh"
#include "telemetry/sketch.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace ptolemy::telemetry
{
namespace
{

TEST(Telemetry, SketchGeometryDerivesFromErrorBound)
{
    const ErrorBound bound{1.0 / 256.0, 0.01};
    const CountMinSketch cm(bound);
    // w = ⌈e/ε⌉ rounded up to a power of two, d = ⌈ln(1/δ)⌉.
    EXPECT_GE(cm.width(), static_cast<std::size_t>(
                              std::ceil(2.718281828 / bound.epsilon)));
    EXPECT_EQ(cm.width() & (cm.width() - 1), 0u) << "width must be pow2";
    EXPECT_EQ(cm.depth(), static_cast<std::size_t>(
                              std::ceil(std::log(1.0 / bound.delta))));
    EXPECT_EQ(cm.memoryBytes(),
              cm.width() * cm.depth() * sizeof(std::uint32_t));
    // Tighter ε → wider rows → more memory, monotonically.
    const CountMinSketch tight(ErrorBound{1.0 / 4096.0, 0.01});
    EXPECT_GT(tight.memoryBytes(), cm.memoryBytes());
}

TEST(Telemetry, SketchPointQueryWithinEpsilonNOnSkewedStream)
{
    // Attack-shaped stream: a few heavy hitters over a broad tail, the
    // worst case for per-key overcount concentration.
    const ErrorBound bound{1.0 / 256.0, 0.01};
    CountMinSketch cm(bound);
    std::vector<std::uint64_t> truth(4096, 0);
    for (std::uint64_t k = 0; k < 32; ++k) {
        for (int i = 0; i < 500; ++i)
            cm.add(k);
        truth[k] += 500;
    }
    Rng rng(0xC0FFEE);
    for (int i = 0; i < 20000; ++i) {
        const auto k = static_cast<std::uint64_t>(
            rng.uniform(0.0, 1.0) * 4096.0);
        cm.add(k % 4096);
        ++truth[k % 4096];
    }
    const double epsN =
        bound.epsilon * static_cast<double>(cm.itemsAdded());
    std::size_t violations = 0;
    for (std::uint64_t k = 0; k < truth.size(); ++k) {
        const std::uint64_t est = cm.estimate(k);
        ASSERT_GE(est, truth[k]) << "Count-Min must never undercount";
        if (static_cast<double>(est - truth[k]) > epsN)
            ++violations;
    }
    // The bound promises ≤ δ violation probability per key; the stream
    // and hashes are fixed, so this is a deterministic check.
    EXPECT_LE(static_cast<double>(violations),
              bound.delta * static_cast<double>(truth.size()));
}

TEST(Telemetry, SketchMergeBitIdenticalAcrossShardCounts)
{
    const ErrorBound bound{1.0 / 128.0, 0.05};
    // One fixed update stream, dealt round-robin across S shards, then
    // reduced in fixed slot order. Every S must produce byte-identical
    // counters — the property the hub's thread-count determinism rests
    // on.
    std::vector<std::uint64_t> stream;
    Rng rng(0x5EED);
    for (int i = 0; i < 30000; ++i)
        stream.push_back(static_cast<std::uint64_t>(
            rng.uniform(0.0, 1.0) * 100000.0));

    std::vector<std::uint32_t> baseline;
    for (const std::size_t S : {1u, 2u, 8u}) {
        std::vector<CountMinSketch> shards;
        for (std::size_t s = 0; s < S; ++s)
            shards.emplace_back(bound);
        for (std::size_t i = 0; i < stream.size(); ++i)
            shards[i % S].add(stream[i]);
        CountMinSketch merged(bound);
        for (std::size_t s = 0; s < S; ++s)
            merged.mergeFrom(shards[s]);
        if (baseline.empty()) {
            baseline = merged.rawCounters();
        } else {
            EXPECT_EQ(merged.rawCounters(), baseline)
                << "shard count " << S << " changed the aggregate";
        }
        EXPECT_EQ(merged.itemsAdded(), stream.size());
    }
}

TEST(Telemetry, HistogramPoisonRoutingAndQuantiles)
{
    ScoreHistogram h(64);
    EXPECT_EQ(h.quantile(0.5), 0.0) << "empty histogram quantile is 0";
    for (int i = 0; i < 100; ++i)
        h.add(0.25);
    const double q50 = h.quantile(0.5);
    const double l1Self = h.l1Distance(h);
    // Poison must land in the typed counter and nowhere else: same
    // totals, same quantiles, same distances afterwards.
    h.add(std::numeric_limits<double>::quiet_NaN());
    h.add(std::numeric_limits<double>::infinity());
    h.add(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.poisoned(), 3u);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_EQ(h.quantile(0.5), q50);
    EXPECT_EQ(h.l1Distance(h), l1Self);
    // Clamping: out-of-range finite values are real observations in
    // the edge bins, not poison.
    h.add(-0.5);
    h.add(1.5);
    EXPECT_EQ(h.total(), 102u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(63), 1u);
    EXPECT_EQ(h.quantile(1.0), 1.0);
    // Disjoint distributions are maximally distant; identical ones at
    // different sample sizes are not distant at all.
    ScoreHistogram lo(8), hi(8), lo2(8);
    for (int i = 0; i < 50; ++i)
        lo.add(0.1);
    for (int i = 0; i < 70; ++i)
        hi.add(0.9);
    for (int i = 0; i < 500; ++i)
        lo2.add(0.1);
    EXPECT_DOUBLE_EQ(lo.l1Distance(hi), 2.0);
    EXPECT_DOUBLE_EQ(lo.l1Distance(lo2), 0.0);
    EXPECT_DOUBLE_EQ(lo.l1Distance(ScoreHistogram(8)), 2.0);
}

TelemetryConfig
smallConfig(std::size_t slots)
{
    TelemetryConfig cfg;
    cfg.numClasses = 10;
    cfg.slots = slots;
    cfg.windowRecords = 256;
    cfg.minRecords = 32;
    // Wide trip levels: the synthetic shifted window is fully disjoint
    // from the reference (L1 = 2.0), while honest sampling noise
    // between fresh draws of the same distribution stays well below.
    cfg.scoreL1Threshold = 0.5;
    cfg.divergenceL1Threshold = 0.5;
    return cfg;
}

/** Deterministic synthetic record stream: scores around @p center,
 *  paths with a few bits keyed off the index. */
void
ingestStream(TelemetryHub &hub, std::size_t n, double center,
             std::size_t slot_count, std::uint64_t seed)
{
    Rng rng(seed);
    // Static scratch: the allocation-free steady-state test wraps this
    // helper, so the path buffer must not be re-allocated per call.
    static BitVector path(512);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t b = 0; b < 512; ++b)
            path.clear(b);
        path.set((i * 7) % 512);
        path.set((i * 13 + 1) % 512);
        const double score = center + rng.uniform(-0.1, 0.1);
        hub.ingest(static_cast<unsigned>(i % slot_count), score, i % 10,
                   score >= 0.5, 0.2 + rng.uniform(-0.05, 0.05), &path);
    }
}

TEST(Telemetry, WindowSealBitIdenticalAcrossSlotCounts)
{
    // Same records, dealt across 1, 2 and 8 shards: the sealed window
    // must hash identically — the in-process version of the CI
    // telemetry-determinism leg.
    std::uint64_t baseline = 0;
    for (const std::size_t S : {1u, 2u, 8u}) {
        TelemetryHub hub(smallConfig(S));
        ingestStream(hub, 500, 0.3, S, 0xAB);
        ASSERT_TRUE(hub.sealWindow());
        const std::uint64_t h = hub.windowHash(1);
        ASSERT_NE(h, 0u);
        if (baseline == 0)
            baseline = h;
        else
            EXPECT_EQ(h, baseline)
                << "slot count " << S << " changed the sealed window";
    }
}

TEST(Telemetry, EmptyWindowSealIsNoOp)
{
    TelemetryHub hub(smallConfig(2));
    EXPECT_FALSE(hub.sealWindow());
    EXPECT_FALSE(hub.maybeSeal());
    EXPECT_EQ(hub.windowsSealed(), 0u);
    EXPECT_EQ(hub.driftEventCount(), 0u);
    WindowSummary ws;
    EXPECT_FALSE(hub.latestWindow(ws));
    // A real window after the no-ops still gets id 1: no id was burned.
    ingestStream(hub, 100, 0.3, 2, 0x1);
    ASSERT_TRUE(hub.sealWindow());
    ASSERT_TRUE(hub.latestWindow(ws));
    EXPECT_EQ(ws.id, 1u);
    EXPECT_EQ(ws.records, 100u);
}

TEST(Telemetry, DriftEventsFireOnShiftAndStaySilentUnshifted)
{
    TelemetryHub hub(smallConfig(4));
    // Reference: benign traffic profile.
    ingestStream(hub, 1000, 0.25, 4, 0x10);
    EXPECT_EQ(hub.captureReference(), 1000u);
    EXPECT_TRUE(hub.hasReference());

    // Unshifted window (fresh draw, same distribution): silent.
    ingestStream(hub, 400, 0.25, 4, 0x11);
    ASSERT_TRUE(hub.sealWindow());
    EXPECT_EQ(hub.driftEventCount(), 0u)
        << "an unshifted window must not raise drift";

    // Shifted window: scores moved far from the reference — fires.
    ingestStream(hub, 400, 0.75, 4, 0x12);
    ASSERT_TRUE(hub.sealWindow());
    ASSERT_GE(hub.driftEventCount(), 1u);
    std::vector<DriftEvent> evs;
    hub.driftEvents(evs);
    bool sawScore = false;
    for (const auto &e : evs)
        if (e.kind == DriftKind::kScoreDistribution) {
            sawScore = true;
            EXPECT_EQ(e.windowId, 2u);
            EXPECT_GT(e.statistic, e.threshold);
        }
    EXPECT_TRUE(sawScore);

    // A window below minRecords never evaluates distribution drift.
    const std::uint64_t before = hub.driftEventCount();
    ingestStream(hub, 8, 0.95, 4, 0x13);
    ASSERT_TRUE(hub.sealWindow());
    EXPECT_EQ(hub.driftEventCount(), before);
}

TEST(Telemetry, PoisonedScoresRaiseTypedEvent)
{
    TelemetryHub hub(smallConfig(1));
    ingestStream(hub, 64, 0.3, 1, 0x20);
    hub.ingest(0, std::numeric_limits<double>::quiet_NaN(), 0, true,
               std::numeric_limits<double>::quiet_NaN(), nullptr);
    ASSERT_TRUE(hub.sealWindow());
    std::vector<DriftEvent> evs;
    hub.driftEvents(evs);
    ASSERT_EQ(evs.size(), 1u);
    EXPECT_EQ(evs[0].kind, DriftKind::kPoisonedScores);
    EXPECT_EQ(evs[0].statistic, 1.0);
    WindowSummary ws;
    ASSERT_TRUE(hub.latestWindow(ws));
    EXPECT_EQ(ws.poisonedScores, 2u); // score + divergence both NaN
    EXPECT_EQ(ws.records, 65u);
}

TEST(Telemetry, ThresholdProposalRestoresReferenceFlaggedFraction)
{
    TelemetryHub hub(smallConfig(2));
    ThresholdProposal p;
    EXPECT_FALSE(hub.proposeThreshold(p)) << "nothing sealed yet";

    // Reference: ~10% of traffic at/above the 0.5 decision threshold.
    Rng rng(0x30);
    for (int i = 0; i < 2000; ++i) {
        const double s =
            (i % 10 == 0) ? 0.6 + rng.uniform(0.0, 0.3)
                          : 0.05 + rng.uniform(0.0, 0.3);
        hub.ingest(0, s, 0, s >= 0.5, 0.2, nullptr);
    }
    hub.captureReference();

    // Drifted window: everything shifted up by 0.25 — far more traffic
    // gets flagged at the old threshold.
    for (int i = 0; i < 2000; ++i) {
        const double s =
            ((i % 10 == 0) ? 0.6 + rng.uniform(0.0, 0.3)
                           : 0.05 + rng.uniform(0.0, 0.3)) +
            0.25;
        hub.ingest(0, s, 0, s >= 0.5, 0.2, nullptr);
    }
    ASSERT_TRUE(hub.sealWindow());
    ASSERT_TRUE(hub.proposeThreshold(p, 0.5));
    EXPECT_EQ(p.windowId, 1u);
    EXPECT_NEAR(p.referenceFlaggedFrac, 0.10, 0.02);
    EXPECT_GT(p.windowFlaggedFrac, 0.3)
        << "the shift should over-flag at the old threshold";
    EXPECT_GT(p.proposedThreshold, 0.5)
        << "restoring the flagged fraction means raising the threshold";
    // Applying the proposed threshold to the drifted window recovers
    // the reference flagged fraction to within histogram resolution
    // (replay the exact window draw: same seed, reference draw burned
    // first to advance the generator identically).
    Rng replay(0x30);
    for (int i = 0; i < 2000; ++i)
        (void)replay.uniform(0.0, 0.3);
    std::size_t flagged = 0;
    for (int i = 0; i < 2000; ++i) {
        const double s =
            ((i % 10 == 0) ? 0.6 + replay.uniform(0.0, 0.3)
                           : 0.05 + replay.uniform(0.0, 0.3)) +
            0.25;
        if (s >= p.proposedThreshold)
            ++flagged;
    }
    EXPECT_NEAR(static_cast<double>(flagged) / 2000.0,
                p.referenceFlaggedFrac, 0.05);
}

TEST(Telemetry, IngestAndSealSteadyStateAllocationFree)
{
    TelemetryConfig cfg = smallConfig(4);
    cfg.windowRecords = 128;
    TelemetryHub hub(cfg);
    // Warm-up: reference + two full window cycles + the reusable
    // event buffer.
    ingestStream(hub, 128, 0.3, 4, 0x40);
    hub.captureReference();
    std::vector<DriftEvent> evs;
    evs.reserve(cfg.eventRing);
    WindowSummary ws;
    ThresholdProposal prop;
    for (int w = 0; w < 2; ++w) {
        ingestStream(hub, 128, 0.3, 4, 0x41 + w);
        ASSERT_TRUE(hub.maybeSeal());
        hub.driftEvents(evs);
        ASSERT_TRUE(hub.latestWindow(ws));
        ASSERT_TRUE(hub.proposeThreshold(prop));
    }
    // Steady state: one full window of ingest + seal + the whole
    // monitoring read surface, with the heap counter pinned.
    const std::size_t before =
        g_test_allocs.load(std::memory_order_relaxed);
    ingestStream(hub, 128, 0.3, 4, 0x50);
    ASSERT_TRUE(hub.maybeSeal());
    hub.driftEvents(evs);
    ASSERT_TRUE(hub.latestWindow(ws));
    ASSERT_TRUE(hub.proposeThreshold(prop));
    (void)hub.windowHash(ws.id);
    (void)hub.pathBitEstimate(7);
    EXPECT_EQ(g_test_allocs.load(std::memory_order_relaxed), before)
        << "telemetry steady state must not allocate";
}

// ---------------------------------------------------------------------
// Session / serving integration.

int
numWeighted()
{
    return static_cast<int>(
        ptolemy::testing::world().net.weightedNodes().size());
}

/** Fitted model over the shared trained world (same recipe as the
 *  serve tests). */
const core::DetectorModel &
fittedModel()
{
    static const core::DetectorModel model = [] {
        auto &w = ptolemy::testing::world();
        core::DetectorBuilder bld(
            w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5), 10);
        bld.profileClassPaths(w.dataset.train, 30);
        Rng rng(0x51AB);
        std::vector<nn::Tensor> clean, noisy;
        for (std::size_t i = 0; i < 24; ++i) {
            const auto &s = w.dataset.test[i];
            clean.push_back(s.input);
            nn::Tensor x = s.input;
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.1, 0.1));
            noisy.push_back(std::move(x));
        }
        classify::FeatureMatrix benign, adversarial;
        bld.featuresBatch(clean, benign);
        bld.featuresBatch(noisy, adversarial);
        bld.fitClassifier(benign, adversarial);
        return std::move(bld).build();
    }();
    return model;
}

std::vector<nn::Tensor>
mixedInputs(std::size_t n)
{
    auto &w = ptolemy::testing::world();
    Rng rng(0x7E1E);
    std::vector<nn::Tensor> xs;
    for (std::size_t i = 0; i < n; ++i) {
        nn::Tensor x = w.dataset.test[i % w.dataset.test.size()].input;
        if (i % 2 == 1)
            for (std::size_t e = 0; e < x.size(); ++e)
                x[e] += static_cast<float>(rng.uniform(-0.08, 0.08));
        xs.push_back(std::move(x));
    }
    return xs;
}

TelemetryConfig
sessionConfig()
{
    TelemetryConfig cfg;
    cfg.numClasses = 10;
    cfg.slots = 8; // ≥ the widest pool below; extra shards merge empty
    cfg.windowRecords = 1u << 30; // seal manually
    return cfg;
}

TEST(Telemetry, SessionIngestBitIdenticalAcrossThreadCounts)
{
    const auto &model = fittedModel();
    const auto xs = mixedInputs(48);

    // Baseline: decisions without telemetry attached.
    core::DetectorSession plain(model);
    std::vector<core::Decision> want;
    plain.detectBatch(xs, want);

    std::uint64_t baseline = 0;
    for (const unsigned T : {1u, 2u, 8u}) {
        ThreadPool pool(T);
        TelemetryHub hub(sessionConfig());
        core::DetectorSession sess(model);
        sess.attachTelemetry(&hub);
        EXPECT_EQ(sess.telemetryHub(), &hub);
        std::vector<core::Decision> got;
        sess.detectBatch(xs, got, &pool);
        ASSERT_TRUE(hub.sealWindow());
        const std::uint64_t h = hub.windowHash(1);
        ASSERT_NE(h, 0u);
        if (baseline == 0)
            baseline = h;
        else
            EXPECT_EQ(h, baseline) << "sealed window differs at "
                                   << T << " threads";
        // Telemetry must be a pure observer: scores bit-identical to
        // the un-instrumented session.
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].score, want[i].score);
            EXPECT_EQ(got[i].adversarial, want[i].adversarial);
            EXPECT_EQ(got[i].predictedClass, want[i].predictedClass);
        }
        WindowSummary ws;
        ASSERT_TRUE(hub.latestWindow(ws));
        EXPECT_EQ(ws.records, xs.size());
    }
}

TEST(Telemetry, ConcurrentIngestDuringHotModelSwap)
{
    // TSan target: client threads drive the server (dispatcher ingests
    // into the hub and seals between batches) while the main thread
    // swaps models — the replacement session re-attaches the same hub
    // mid-traffic. Counters must conserve and every ingested record
    // must land in exactly one window.
    const auto &model = fittedModel();
    const std::string path = "telemetry_swap.model";
    ASSERT_TRUE(model.save(path));

    const auto xs = mixedInputs(16);
    TelemetryConfig tcfg = sessionConfig();
    tcfg.windowRecords = 64; // several seals over the run
    TelemetryHub hub(tcfg);

    serve::ServeConfig cfg;
    cfg.telemetry = &hub;
    serve::DetectorServer server(model, cfg);

    std::atomic<std::uint64_t> served{0};
    auto client = [&](unsigned id) {
        std::vector<serve::ServeRequest> slab(8);
        for (int round = 0; round < 12; ++round) {
            for (std::size_t i = 0; i < slab.size(); ++i) {
                slab[i].reset(xs[(id + round + i) % xs.size()]);
                server.submit(slab[i]);
            }
            for (auto &r : slab)
                if (server.wait(r) == serve::RequestStatus::kOk)
                    served.fetch_add(1, std::memory_order_relaxed);
        }
    };
    std::thread c1(client, 0), c2(client, 7);
    for (int s = 0; s < 4; ++s)
        EXPECT_TRUE(server.swapModel(path));
    c1.join();
    c2.join();
    server.stop();
    hub.sealWindow(); // flush the tail

    EXPECT_TRUE(server.stats().conserved());
    // Every kOk decision was ingested exactly once, across all swaps.
    std::uint64_t windowed = 0;
    WindowSummary ws;
    for (std::uint64_t id = 1; id <= hub.windowsSealed(); ++id)
        if (hub.windowSummary(id, ws))
            windowed += ws.records;
    EXPECT_EQ(windowed + hub.pendingRecords(),
              served.load(std::memory_order_relaxed));
    EXPECT_EQ(hub.pendingRecords(), 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace ptolemy::telemetry
