/**
 * @file
 * Compiler tests: code generation for each variant, program sizes, the
 * three optimization passes, and end-to-end latency ordering on the
 * simulator (the qualitative content of the paper's Fig. 11).
 */

#include <gtest/gtest.h>

#include "common/test_models.hh"
#include "compiler/compiler.hh"
#include "hw/simulator.hh"
#include "path/extractor.hh"

namespace ptolemy::compiler
{
namespace
{

using path::ExtractionConfig;

/** Calibrate absolute thresholds like the offline profiling phase does:
 *  roughly 5% of compared values pass. */
ExtractionConfig
calibrated(ExtractionConfig cfg)
{
    auto &w = ptolemy::testing::world();
    std::vector<nn::Tensor> samples;
    for (int i = 0; i < 6; ++i)
        samples.push_back(w.dataset.train[i * 13].input);
    path::calibrateAbsoluteThresholds(w.net, cfg, samples, 0.05);
    return cfg;
}

/** Profiled average trace for a config on the shared trained model. */
path::ExtractionTrace
profiledTrace(const ExtractionConfig &cfg, int samples = 4)
{
    auto &w = ptolemy::testing::world();
    path::PathExtractor ex(w.net, cfg);
    std::vector<path::ExtractionTrace> traces;
    for (int i = 0; i < samples; ++i) {
        auto rec = w.net.forward(w.dataset.test[i * 7].input);
        path::ExtractionTrace t;
        ex.extract(rec, &t);
        traces.push_back(std::move(t));
    }
    return path::averageTraces(traces);
}

int
numWeighted()
{
    return static_cast<int>(
        ptolemy::testing::world().net.weightedNodes().size());
}

TEST(CompilerTest, InferenceOnlyProgramHasOneInfPerLayer)
{
    auto &w = ptolemy::testing::world();
    const auto prog = Compiler::inferenceOnly(w.net);
    EXPECT_EQ(prog.size(), w.net.weightedNodes().size() + 1); // + halt
    for (std::size_t i = 0; i + 1 < prog.size(); ++i)
        EXPECT_EQ(prog.instruction(i).op, isa::Opcode::Inf);
}

TEST(CompilerTest, ProgramsStaySmall)
{
    // Paper Sec. V-D: the largest program (BwCu) is ~30 static
    // instructions, under 100 bytes.
    auto &w = ptolemy::testing::world();
    const auto cfg = ExtractionConfig::bwCu(numWeighted(), 0.5);
    Compiler comp(w.net, cfg);
    const auto prog = comp.compile(profiledTrace(cfg));
    // The paper quotes ~30 static instructions for its 8-layer BwCu
    // program; ours adds a software-pipelined prologue/epilogue per
    // layer, staying within the same order of magnitude.
    EXPECT_LT(prog.size(), 30u * numWeighted());
    EXPECT_LT(prog.codeBytes(), 400u);
}

TEST(CompilerTest, BwCuUsesInfSpWithoutRecompute)
{
    auto &w = ptolemy::testing::world();
    const auto cfg = ExtractionConfig::bwCu(numWeighted(), 0.5);
    CompileOptions opts;
    opts.recomputePsums = false;
    Compiler comp(w.net, cfg, opts);
    const auto prog = comp.compile(profiledTrace(cfg));
    int infsp = 0, csps = 0;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        infsp += prog.instruction(i).op == isa::Opcode::InfSp;
        csps += prog.instruction(i).op == isa::Opcode::Csps;
    }
    EXPECT_EQ(infsp, numWeighted());
    EXPECT_EQ(csps, 0);
}

TEST(CompilerTest, RecomputeReplacesInfSpWithCsps)
{
    auto &w = ptolemy::testing::world();
    const auto cfg = ExtractionConfig::bwCu(numWeighted(), 0.5);
    CompileOptions opts;
    opts.recomputePsums = true;
    Compiler comp(w.net, cfg, opts);
    const auto prog = comp.compile(profiledTrace(cfg));
    int infsp = 0, csps = 0;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        infsp += prog.instruction(i).op == isa::Opcode::InfSp;
        csps += prog.instruction(i).op == isa::Opcode::Csps;
    }
    EXPECT_EQ(infsp, 0);
    EXPECT_GT(csps, 0);
}

TEST(CompilerTest, RecomputeShrinksDramFootprint)
{
    auto &w = ptolemy::testing::world();
    const auto cfg = ExtractionConfig::bwCu(numWeighted(), 0.5);
    const auto trace = profiledTrace(cfg);
    CompileOptions store_all;
    store_all.recomputePsums = false;
    CompileOptions recompute;
    recompute.recomputePsums = true;
    const auto fp_store = Compiler(w.net, cfg, store_all)
                              .dramFootprint(trace);
    const auto fp_rec = Compiler(w.net, cfg, recompute)
                            .dramFootprint(trace);
    EXPECT_GT(fp_store.psumCount, 0u);
    EXPECT_EQ(fp_rec.psumCount, 0u);
    EXPECT_LT(fp_rec.recomputePsums, fp_store.psumCount);
}

TEST(CompilerTest, AbsoluteVariantsStoreMasksNotPsums)
{
    auto &w = ptolemy::testing::world();
    const auto cfg = ExtractionConfig::bwAb(numWeighted(), 0.0);
    Compiler comp(w.net, cfg);
    const auto fp = comp.dramFootprint(profiledTrace(cfg));
    EXPECT_EQ(fp.psumCount, 0u);
    EXPECT_EQ(fp.recomputePsums, 0u);
    EXPECT_GT(fp.maskBits, 0u);
}

// ------------------------------------------------- latency orderings ----

std::uint64_t
cyclesFor(const ExtractionConfig &raw_cfg, CompileOptions opts = {})
{
    auto &w = ptolemy::testing::world();
    const auto cfg = calibrated(raw_cfg);
    Compiler comp(w.net, cfg, opts);
    const auto prog = comp.compile(profiledTrace(cfg));
    return hw::Simulator().run(prog).cycles;
}

std::uint64_t
inferenceCycles()
{
    auto &w = ptolemy::testing::world();
    return hw::Simulator().run(Compiler::inferenceOnly(w.net)).cycles;
}

TEST(CompilerTest, VariantLatencyOrderingMatchesPaper)
{
    // Fig. 11: BwCu >> Hybrid > BwAb > FwAb, all >= inference. The final
    // random-forest classification is a constant MCU tail that is <0.1%
    // at paper scale but comparable to our mini models' entire
    // inference, so the extraction-overhead claims are checked with the
    // classifier excluded (classifierOps = 0).
    const int n = numWeighted();
    CompileOptions no_cls;
    no_cls.classifierOps = 0;
    const auto inf = inferenceCycles();
    const auto bwcu = cyclesFor(ExtractionConfig::bwCu(n, 0.5), no_cls);
    const auto bwab = cyclesFor(ExtractionConfig::bwAb(n, 0.0), no_cls);
    const auto fwab = cyclesFor(ExtractionConfig::fwAb(n, 0.0), no_cls);
    const auto hybrid =
        cyclesFor(ExtractionConfig::hybrid(n, 0.5, 0.0), no_cls);

    EXPECT_GT(bwcu, hybrid);
    EXPECT_GT(hybrid, bwab);
    EXPECT_GE(bwab, fwab);
    EXPECT_GE(fwab, inf);
    // FwAb hides extraction behind inference: low single-digit overhead.
    EXPECT_LT(static_cast<double>(fwab) / inf, 1.3);
    // BwCu pays for serialized sorting: much larger overhead.
    EXPECT_GT(static_cast<double>(bwcu) / inf, 3.0);
}

TEST(CompilerTest, NeuronPipeliningReducesBwCuLatency)
{
    // The tiny test model extracts only a handful of important neurons
    // per layer, so exercise the scheduler with a profiled trace scaled
    // to realistic trip counts (hundreds of important outputs per layer,
    // as on AlexNet-class models).
    auto &w = ptolemy::testing::world();
    const int n = numWeighted();
    const auto cfg = ExtractionConfig::bwCu(n, 0.5);
    auto trace = profiledTrace(cfg);
    for (auto &lt : trace.layers) {
        lt.importantOut *= 50;
        lt.psumsConsidered *= 50;
        lt.sortedElems *= 50;
        lt.importantIn *= 50;
    }
    CompileOptions on, off;
    on.neuronPipelining = true;
    off.neuronPipelining = false;
    const auto c_on =
        hw::Simulator().run(Compiler(w.net, cfg, on).compile(trace)).cycles;
    const auto c_off =
        hw::Simulator().run(Compiler(w.net, cfg, off).compile(trace))
            .cycles;
    EXPECT_LT(c_on, c_off);
}

TEST(CompilerTest, LayerPipeliningNeverHurtsForward)
{
    const int n = numWeighted();
    auto cfg = ExtractionConfig::fwAb(n, 0.0);
    // Make the last layer cumulative (the Fig. 6 shape) so extraction has
    // real sorting work to hide.
    cfg.layers[n - 1].kind = path::ThresholdKind::Cumulative;
    CompileOptions on, off;
    on.layerPipelining = true;
    off.layerPipelining = false;
    EXPECT_LE(cyclesFor(cfg, on), cyclesFor(cfg, off));
}

TEST(CompilerTest, EarlyTerminationReducesCost)
{
    const int n = numWeighted();
    auto full = ExtractionConfig::bwCu(n, 0.5);
    auto last2 = ExtractionConfig::bwCu(n, 0.5);
    last2.selectFrom(n - 2);
    EXPECT_LT(cyclesFor(last2), cyclesFor(full));
}

TEST(CompilerTest, ThetaSweepIncreasesCost)
{
    // Table II: latency grows with theta.
    const int n = numWeighted();
    const auto lo = cyclesFor(ExtractionConfig::bwCu(n, 0.1));
    const auto mid = cyclesFor(ExtractionConfig::bwCu(n, 0.5));
    const auto hi = cyclesFor(ExtractionConfig::bwCu(n, 0.9));
    EXPECT_LT(lo, mid);
    EXPECT_LT(mid, hi);
}

} // namespace
} // namespace ptolemy::compiler
