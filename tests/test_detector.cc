/**
 * @file
 * End-to-end detector tests: offline profiling, online detection, the
 * programming interface, and the evaluation harness.
 */

#include <gtest/gtest.h>

#include "attack/gradient_attacks.hh"
#include "common/test_models.hh"
#include "core/detector.hh"
#include "core/evaluation.hh"
#include "core/program_builder.hh"

namespace ptolemy::core
{
namespace
{

int
numWeighted()
{
    return static_cast<int>(
        ptolemy::testing::world().net.weightedNodes().size());
}

TEST(DetectorTest, BuildsClassPathsFromCorrectPredictionsOnly)
{
    auto &w = ptolemy::testing::world();
    Detector det(w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5),
                 10);
    const std::size_t aggregated = det.buildClassPaths(w.dataset.train, 20);
    EXPECT_GT(aggregated, 100u); // most of 10 classes x 20 samples
    EXPECT_LE(aggregated, 200u);
    for (std::size_t c = 0; c < 10; ++c) {
        EXPECT_GT(det.classPaths().classPath(c).popcount(), 0u)
            << "class " << c;
        EXPECT_LE(det.classPaths().samplesSeen(c), 20u);
    }
}

TEST(DetectorTest, DetectsFgsmAdversariesWithHighAuc)
{
    auto &w = ptolemy::testing::world();
    Detector det(w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5),
                 10);
    det.buildClassPaths(w.dataset.train, 60);
    attack::Fgsm fgsm;
    const auto result =
        evaluateAttack(w.net, det, fgsm, w.dataset.test, 60);
    EXPECT_EQ(result.attackName, "FGSM");
    EXPECT_GT(result.numPairs, 10u);
    EXPECT_GT(result.auc, 0.80) << "detection should clearly beat chance";
}

TEST(DetectorTest, DetectDecisionIsConsistentWithScore)
{
    auto &w = ptolemy::testing::world();
    Detector det(w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5),
                 10);
    det.buildClassPaths(w.dataset.train, 40);
    attack::Fgsm fgsm;
    auto pairs = buildAttackPairs(w.net, fgsm, w.dataset.test, 40);
    ASSERT_GT(pairs.size(), 4u);
    fitAndScore(det, pairs, 0.5);

    const auto d = det.detect(pairs[0].clean);
    EXPECT_EQ(d.adversarial, d.score >= 0.5);
    EXPECT_LT(d.predictedClass, 10u);
    EXPECT_FALSE(d.features.perLayer.empty());
}

TEST(DetectorTest, FeaturesIncludeOverallAndPerLayer)
{
    auto &w = ptolemy::testing::world();
    Detector det(w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5),
                 10);
    det.buildClassPaths(w.dataset.train, 20);
    auto rec = w.net.forward(w.dataset.test[0].input);
    path::ExtractionTrace trace;
    const auto f = det.featuresFor(rec, &trace);
    EXPECT_EQ(f.size(), static_cast<std::size_t>(numWeighted()) + 1);
    EXPECT_EQ(trace.layers.size(), static_cast<std::size_t>(numWeighted()));
}

TEST(DetectorTest, VariantNameReflectsConfig)
{
    auto &w = ptolemy::testing::world();
    Detector d1(w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5),
                10);
    EXPECT_EQ(d1.variantName(), "BwCu");
    Detector d2(w.net, path::ExtractionConfig::fwAb(numWeighted(), 0.1),
                10);
    EXPECT_EQ(d2.variantName(), "FwAb");
}

// ------------------------------------------------------ ProgramBuilder --

TEST(ProgramBuilderTest, ReproducesPaperFig6Shape)
{
    auto &w = ptolemy::testing::world();
    const int n = numWeighted();
    const auto cfg = ProgramBuilder(w.net)
                         .forwardExtraction()
                         .extractNone()
                         .extractLayer(n - 3, path::ThresholdKind::Absolute,
                                       0.2)
                         .extractLayer(n - 2, path::ThresholdKind::Absolute,
                                       0.2)
                         .extractLayer(n - 1,
                                       path::ThresholdKind::Cumulative, 0.5)
                         .build();
    EXPECT_EQ(cfg.direction, path::Direction::Forward);
    EXPECT_EQ(cfg.numExtracted(), 3);
    EXPECT_EQ(cfg.layers[n - 1].kind, path::ThresholdKind::Cumulative);
    EXPECT_EQ(cfg.layers[n - 2].kind, path::ThresholdKind::Absolute);
    EXPECT_DOUBLE_EQ(cfg.layers[n - 2].phi, 0.2);
}

TEST(ProgramBuilderTest, StartAtLayerImplementsSelectiveExtraction)
{
    auto &w = ptolemy::testing::world();
    const auto cfg =
        ProgramBuilder(w.net).backwardExtraction().startAtLayer(2).build();
    EXPECT_EQ(cfg.firstExtractedLayer(), 2);
}

TEST(ProgramBuilderTest, RejectsBadIndicesAndEmptyConfigs)
{
    auto &w = ptolemy::testing::world();
    EXPECT_THROW(ProgramBuilder(w.net).extractLayer(
                     99, path::ThresholdKind::Absolute, 0.1),
                 std::out_of_range);
    EXPECT_THROW(ProgramBuilder(w.net).extractNone().build(),
                 std::logic_error);
}

// --------------------------------------------------------- evaluation --

TEST(EvaluationTest, PairsComeFromCorrectlyClassifiedInputs)
{
    auto &w = ptolemy::testing::world();
    attack::Fgsm fgsm;
    const auto pairs = buildAttackPairs(w.net, fgsm, w.dataset.test, 30);
    for (const auto &p : pairs) {
        EXPECT_EQ(w.net.predict(p.clean), p.label);
        EXPECT_NE(w.net.predict(p.adversarial), p.label);
        EXPECT_GT(p.mse, 0.0);
    }
}

TEST(EvaluationTest, FitAndScoreHandlesDegenerateInputs)
{
    auto &w = ptolemy::testing::world();
    Detector det(w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5),
                 10);
    const auto scores = fitAndScore(det, {}, 0.5);
    EXPECT_TRUE(scores.heldOut.empty());
    EXPECT_DOUBLE_EQ(scores.auc, 0.5);
}

TEST(EvaluationTest, HeldOutIsBalanced)
{
    auto &w = ptolemy::testing::world();
    Detector det(w.net, path::ExtractionConfig::bwCu(numWeighted(), 0.5),
                 10);
    det.buildClassPaths(w.dataset.train, 30);
    attack::Fgsm fgsm;
    auto pairs = buildAttackPairs(w.net, fgsm, w.dataset.test, 40);
    ASSERT_GT(pairs.size(), 6u);
    const auto ps = fitAndScore(det, pairs, 0.5);
    std::size_t adv = 0;
    for (const auto &s : ps.heldOut)
        adv += s.label;
    EXPECT_EQ(adv * 2, ps.heldOut.size()); // evenly split (paper setup)
}

} // namespace
} // namespace ptolemy::core
