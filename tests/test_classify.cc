/**
 * @file
 * Decision tree and random forest tests.
 */

#include <gtest/gtest.h>

#include "classify/random_forest.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace ptolemy::classify
{
namespace
{

/** Two 2-D Gaussian blobs with some overlap. */
void
makeBlobs(std::size_t n_per_class, FeatureMatrix &x, std::vector<int> &y,
          std::uint64_t seed, double separation = 2.0)
{
    Rng rng(seed);
    for (std::size_t i = 0; i < n_per_class; ++i) {
        x.push_back({rng.gaussian(0.0, 1.0), rng.gaussian(0.0, 1.0)});
        y.push_back(0);
        x.push_back({rng.gaussian(separation, 1.0),
                     rng.gaussian(separation, 1.0)});
        y.push_back(1);
    }
}

TEST(DecisionTree, FitsSeparableData)
{
    FeatureMatrix x;
    std::vector<int> y;
    makeBlobs(100, x, y, 1, 6.0); // well separated

    std::vector<std::size_t> rows(x.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
        rows[i] = i;
    DecisionTree tree;
    Rng rng(2);
    tree.fit(x, y, rows, DecisionTree::GrowthConfig{}, rng);

    int correct = 0;
    for (std::size_t i = 0; i < x.size(); ++i)
        correct += (tree.predict(x[i]) >= 0.5) == (y[i] == 1);
    EXPECT_GT(static_cast<double>(correct) / x.size(), 0.97);
    EXPECT_GT(tree.numNodes(), 1u);
    EXPECT_LE(tree.depth(), 12);
}

TEST(DecisionTree, PureDataYieldsLeafOnly)
{
    FeatureMatrix x = {{1.0}, {2.0}, {3.0}};
    std::vector<int> y = {1, 1, 1};
    std::vector<std::size_t> rows = {0, 1, 2};
    DecisionTree tree;
    Rng rng(3);
    tree.fit(x, y, rows, DecisionTree::GrowthConfig{}, rng);
    EXPECT_EQ(tree.numNodes(), 1u);
    EXPECT_DOUBLE_EQ(tree.predict({5.0}), 1.0);
    EXPECT_EQ(tree.decisionOps({5.0}), 0u);
}

TEST(DecisionTree, RespectsMaxDepth)
{
    Rng data_rng(4);
    FeatureMatrix x;
    std::vector<int> y;
    for (int i = 0; i < 400; ++i) {
        x.push_back({data_rng.uniform(), data_rng.uniform()});
        y.push_back(data_rng.bernoulli(0.5) ? 1 : 0); // pure noise
    }
    std::vector<std::size_t> rows(x.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
        rows[i] = i;
    DecisionTree::GrowthConfig gc;
    gc.maxDepth = 4;
    DecisionTree tree;
    Rng rng(5);
    tree.fit(x, y, rows, gc, rng);
    EXPECT_LE(tree.depth(), 4);
}

TEST(RandomForest, BeatsChanceOnOverlappingBlobs)
{
    FeatureMatrix x;
    std::vector<int> y;
    makeBlobs(150, x, y, 6, 1.5);
    FeatureMatrix xt;
    std::vector<int> yt;
    makeBlobs(80, xt, yt, 7, 1.5);

    RandomForest rf;
    rf.fit(x, y);
    std::vector<double> scores;
    for (const auto &row : xt)
        scores.push_back(rf.predictProb(row));
    EXPECT_GT(aucScore(scores, yt), 0.85);
}

TEST(RandomForest, MatchesPaperScaleDescription)
{
    // "100 decision trees, each of which has an average depth of 12"
    // (Sec. V-D). Our default config matches tree count and caps depth.
    FeatureMatrix x;
    std::vector<int> y;
    makeBlobs(100, x, y, 8, 1.0);
    RandomForest rf;
    rf.fit(x, y);
    EXPECT_EQ(rf.numTrees(), 100);
    EXPECT_LE(rf.avgDepth(), 12.0);
    // Total decision ops stay in the low thousands -> microseconds on an
    // MCU, five orders below inference (paper Sec. V-D).
    EXPECT_LT(rf.decisionOps(x[0]), 2000u);
}

TEST(RandomForest, DeterministicForSeed)
{
    FeatureMatrix x;
    std::vector<int> y;
    makeBlobs(60, x, y, 9, 2.0);
    RandomForest a, b;
    a.fit(x, y);
    b.fit(x, y);
    for (std::size_t i = 0; i < x.size(); i += 13)
        EXPECT_DOUBLE_EQ(a.predictProb(x[i]), b.predictProb(x[i]));
}

TEST(RandomForest, UnfittedPredictsHalf)
{
    RandomForest rf;
    EXPECT_DOUBLE_EQ(rf.predictProb({0.5}), 0.5);
}

} // namespace
} // namespace ptolemy::classify
