/**
 * @file
 * Batched forward + workspace-reuse equivalence: forwardBatch records
 * must match per-sample forward() records bitwise, extraction from
 * either must produce identical paths, a reused ExtractionWorkspace
 * must behave exactly like a fresh one, and the heap-prefix cumulative
 * selection must pick the same sets as the full-sort reference.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/test_models.hh"
#include "nn/network.hh"
#include "path/extractor.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace ptolemy::path
{
namespace
{

std::vector<nn::Tensor>
randomBatch(std::size_t n, nn::Shape shape, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<nn::Tensor> xs;
    xs.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
        nn::Tensor x(shape);
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = static_cast<float>(rng.uniform());
        xs.push_back(std::move(x));
    }
    return xs;
}

TEST(ForwardBatch, RecordsMatchPerSampleForwardBitwise)
{
    auto net = ptolemy::testing::makeTinyNet(10);
    nn::heInit(net, 3);
    const auto xs = randomBatch(6, net.inputShape(), 11);

    std::vector<nn::Network::Record> recs;
    net.forwardBatch(xs, recs);
    ASSERT_EQ(recs.size(), xs.size());

    for (std::size_t s = 0; s < xs.size(); ++s) {
        auto ref = net.forward(xs[s]);
        ASSERT_EQ(recs[s].outputs.size(), ref.outputs.size());
        for (std::size_t n = 0; n < ref.outputs.size(); ++n) {
            ASSERT_EQ(recs[s].outputs[n].shape(), ref.outputs[n].shape());
            for (std::size_t i = 0; i < ref.outputs[n].size(); ++i)
                ASSERT_EQ(recs[s].outputs[n][i], ref.outputs[n][i])
                    << "sample " << s << " node " << n << " elem " << i;
        }
    }
}

TEST(ForwardBatch, ThreadPoolProducesIdenticalRecords)
{
    auto net = ptolemy::testing::makeTinyNet(10);
    nn::heInit(net, 4);
    const auto xs = randomBatch(9, net.inputShape(), 12);

    std::vector<nn::Network::Record> serial, pooled;
    net.forwardBatch(xs, serial);
    ThreadPool pool(3);
    net.forwardBatch(xs, pooled, &pool);

    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t s = 0; s < serial.size(); ++s)
        for (std::size_t n = 0; n < serial[s].outputs.size(); ++n)
            for (std::size_t i = 0; i < serial[s].outputs[n].size(); ++i)
                ASSERT_EQ(serial[s].outputs[n][i], pooled[s].outputs[n][i]);
}

TEST(ForwardBatch, ReusedRecordVectorIsRefilledCorrectly)
{
    auto net = ptolemy::testing::makeTinyNet(10);
    nn::heInit(net, 5);
    const auto xs_a = randomBatch(4, net.inputShape(), 13);
    const auto xs_b = randomBatch(4, net.inputShape(), 14);

    std::vector<nn::Network::Record> recs;
    net.forwardBatch(xs_a, recs);
    net.forwardBatch(xs_b, recs); // reuse the same records
    for (std::size_t s = 0; s < xs_b.size(); ++s) {
        auto ref = net.forward(xs_b[s]);
        for (std::size_t i = 0; i < ref.logits().size(); ++i)
            ASSERT_EQ(recs[s].logits()[i], ref.logits()[i]);
    }
}

TEST(ExtractionWorkspace, BatchAndPerSampleExtractionBitwiseEqual)
{
    auto net = ptolemy::testing::makeTinyNet(10);
    nn::heInit(net, 6);
    const int n_w = static_cast<int>(net.weightedNodes().size());
    PathExtractor ex(net, ExtractionConfig::bwCu(n_w, 0.5));
    const auto xs = randomBatch(5, net.inputShape(), 15);

    std::vector<nn::Network::Record> recs;
    net.forwardBatch(xs, recs);

    ExtractionWorkspace ws;
    for (std::size_t s = 0; s < xs.size(); ++s) {
        auto per_sample = net.forward(xs[s]);
        const BitVector a = ex.extract(per_sample);     // fresh workspace
        const BitVector b = ex.extract(recs[s], ws);    // batch rec, reused ws
        EXPECT_EQ(a, b) << "sample " << s;
    }
}

TEST(ExtractionWorkspace, ReuseProducesIdenticalBitVectorsAcrossCalls)
{
    auto net = ptolemy::testing::makeTinyNet(10);
    nn::heInit(net, 7);
    const int n_w = static_cast<int>(net.weightedNodes().size());
    const auto xs = randomBatch(4, net.inputShape(), 16);
    std::vector<nn::Network::Record> recs;
    net.forwardBatch(xs, recs);

    for (auto cfg : {ExtractionConfig::bwCu(n_w, 0.5),
                     ExtractionConfig::bwAb(n_w, 0.01),
                     ExtractionConfig::fwAb(n_w, 0.1)}) {
        PathExtractor ex(net, cfg);
        // Reference paths, each from a pristine workspace.
        std::vector<BitVector> fresh;
        for (const auto &rec : recs)
            fresh.push_back(ex.extract(rec));
        // One workspace + one output vector reused across interleaved,
        // repeated extractions must reproduce them exactly.
        ExtractionWorkspace ws;
        BitVector bits;
        for (int round = 0; round < 3; ++round) {
            for (std::size_t s = 0; s < recs.size(); ++s) {
                ex.extractInto(recs[s], ws, bits);
                EXPECT_EQ(bits, fresh[s])
                    << "round " << round << " sample " << s << " variant "
                    << cfg.variantName();
            }
        }
    }
}

TEST(ExtractionWorkspace, HeapPrefixSelectionMatchesReferenceSort)
{
    auto net = ptolemy::testing::makeTinyNet(10);
    nn::heInit(net, 8);
    const int n_w = static_cast<int>(net.weightedNodes().size());
    const auto xs = randomBatch(6, net.inputShape(), 17);
    std::vector<nn::Network::Record> recs;
    net.forwardBatch(xs, recs);

    // Backward cumulative plus a forward-cumulative config (the heap
    // also serves the forward direction's activation-mass ranking).
    ExtractionConfig fw_cu;
    fw_cu.direction = Direction::Forward;
    fw_cu.layers.assign(
        static_cast<std::size_t>(n_w),
        LayerPolicy{true, ThresholdKind::Cumulative, 0.7, 0.0});

    for (auto cfg : {ExtractionConfig::bwCu(n_w, 0.5),
                     ExtractionConfig::bwCu(n_w, 0.9), fw_cu}) {
        PathExtractor ex(net, cfg);
        ExtractionWorkspace heap_ws, sort_ws;
        sort_ws.referenceSort = true;
        for (std::size_t s = 0; s < recs.size(); ++s) {
            const BitVector a = ex.extract(recs[s], heap_ws);
            const BitVector b = ex.extract(recs[s], sort_ws);
            EXPECT_EQ(a, b) << "sample " << s;
        }
    }
}

TEST(ExtractionWorkspace, TracesUnaffectedByWorkspaceReuse)
{
    auto net = ptolemy::testing::makeTinyNet(10);
    nn::heInit(net, 9);
    const int n_w = static_cast<int>(net.weightedNodes().size());
    PathExtractor ex(net, ExtractionConfig::bwCu(n_w, 0.5));
    const auto xs = randomBatch(2, net.inputShape(), 18);
    std::vector<nn::Network::Record> recs;
    net.forwardBatch(xs, recs);

    ExtractionWorkspace ws;
    ExtractionTrace reused_trace;
    ex.extract(recs[1], ws);                // dirty the workspace
    ex.extract(recs[0], ws, &reused_trace); // then trace with reuse
    ExtractionTrace ref;
    ex.extract(recs[0], &ref);
    ASSERT_EQ(reused_trace.layers.size(), ref.layers.size());
    for (std::size_t l = 0; l < ref.layers.size(); ++l) {
        EXPECT_EQ(reused_trace.layers[l].importantOut,
                  ref.layers[l].importantOut);
        EXPECT_EQ(reused_trace.layers[l].importantIn,
                  ref.layers[l].importantIn);
        EXPECT_EQ(reused_trace.layers[l].psumsConsidered,
                  ref.layers[l].psumsConsidered);
    }
    EXPECT_EQ(reused_trace.pathBits, ref.pathBits);
}

TEST(ExtractionWorkspace, SurvivesReuseAcrossDifferentNetworks)
{
    // A workspace dirtied by a larger network must reset cleanly when
    // reused with a smaller one (stale touched ids would otherwise
    // index out of bounds).
    auto big = ptolemy::testing::makeTinyNet(10);
    nn::heInit(big, 21);
    nn::Network small("small", nn::flatShape(8));
    small.add(std::make_unique<nn::Linear>("fc", 8, 4));
    nn::heInit(small, 22);

    PathExtractor ex_big(
        big, ExtractionConfig::bwCu(
                 static_cast<int>(big.weightedNodes().size()), 0.5));
    PathExtractor ex_small(
        small, ExtractionConfig::bwCu(
                   static_cast<int>(small.weightedNodes().size()), 0.5));

    const auto xs = randomBatch(1, big.inputShape(), 23);
    auto rec_big = big.forward(xs[0]);
    Rng rng(24);
    nn::Tensor x_small(nn::flatShape(8));
    for (std::size_t i = 0; i < x_small.size(); ++i)
        x_small[i] = static_cast<float>(rng.uniform());
    auto rec_small = small.forward(x_small);

    ExtractionWorkspace ws;
    ex_big.extract(rec_big, ws); // dirties high node ids
    const BitVector got = ex_small.extract(rec_small, ws);
    const BitVector ref = ex_small.extract(rec_small);
    EXPECT_EQ(got, ref);
    // And back again to the big network.
    EXPECT_EQ(ex_big.extract(rec_big, ws), ex_big.extract(rec_big));
}

TEST(ExtractBatch, MatchesSequentialExtractAcrossThreadCounts)
{
    auto net = ptolemy::testing::makeTinyNet(10);
    nn::heInit(net, 31);
    const int n_w = static_cast<int>(net.weightedNodes().size());
    const auto xs = randomBatch(13, net.inputShape(), 32);
    std::vector<nn::Network::Record> recs;
    net.forwardBatch(xs, recs);

    for (auto cfg : {ExtractionConfig::bwCu(n_w, 0.5),
                     ExtractionConfig::bwAb(n_w, 0.01),
                     ExtractionConfig::fwAb(n_w, 0.1)}) {
        PathExtractor ex(net, cfg);
        std::vector<BitVector> ref;
        for (const auto &rec : recs)
            ref.push_back(ex.extract(rec));

        // No pool at all (serial overload).
        const auto serial = ex.extractBatch(recs);
        ASSERT_EQ(serial.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i)
            EXPECT_EQ(serial[i], ref[i])
                << "serial sample " << i << " " << cfg.variantName();

        for (unsigned threads : {1u, 2u, 8u}) {
            ThreadPool pool(threads);
            BatchExtractionWorkspace bws;
            std::vector<BitVector> out;
            // Repeat with a reused workspace: the second round must be
            // as clean as the first.
            for (int round = 0; round < 2; ++round) {
                ex.extractBatch(recs, out, bws, &pool);
                ASSERT_EQ(out.size(), ref.size());
                for (std::size_t i = 0; i < ref.size(); ++i)
                    EXPECT_EQ(out[i], ref[i])
                        << "threads=" << threads << " round=" << round
                        << " sample " << i << " " << cfg.variantName();
            }
        }
    }
}

TEST(RecordBackward, BatchRecordsAreDifferentiable)
{
    // Layers keep no per-pass state, so any record — including one from
    // forwardBatch — carries everything backward needs, and the result
    // matches a fresh single-stream forward+backward bitwise.
    auto net = ptolemy::testing::makeTinyNet(4);
    nn::heInit(net, 33);
    const auto xs = randomBatch(2, net.inputShape(), 34);

    std::vector<nn::Network::Record> recs;
    net.forwardBatch(xs, recs);
    nn::Tensor seed(nn::flatShape(4));
    seed[0] = 1.0f;
    const nn::Tensor from_batch = net.backward(recs[1], seed);

    auto rec = net.forward(xs[1]);
    net.zeroGrads(); // param grads accumulated above are irrelevant here
    const nn::Tensor &fresh = net.backward(rec, seed);
    ASSERT_EQ(from_batch.size(), fresh.size());
    for (std::size_t i = 0; i < from_batch.size(); ++i)
        ASSERT_EQ(from_batch[i], fresh[i]) << "i=" << i;
}

TEST(RecordBackward, MismatchedRecordThrows)
{
    auto net = ptolemy::testing::makeTinyNet(4);
    nn::heInit(net, 37);
    nn::Tensor seed(nn::flatShape(4));
    seed[0] = 1.0f;
    nn::Network::Record empty;
    EXPECT_THROW(net.backward(empty, seed), std::logic_error);
}

TEST(GradArena, RepeatedBackwardReturnsIdenticalGradients)
{
    auto net = ptolemy::testing::makeTinyNet(4);
    nn::heInit(net, 35);
    const auto xs = randomBatch(2, net.inputShape(), 36);
    nn::Tensor seed(nn::flatShape(4));
    seed[1] = 1.0f;
    seed[3] = -0.5f;

    auto rec = net.forward(xs[0]);
    const nn::Tensor first = net.backward(rec, seed); // copy off the arena
    // Interleave another sample, then repeat the first: the arena must
    // not leak state between passes.
    rec = net.forward(xs[1]);
    net.backward(rec, seed);
    rec = net.forward(xs[0]);
    const nn::Tensor &second = net.backward(rec, seed);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        ASSERT_EQ(first[i], second[i]) << "i=" << i;
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::atomic<int> inner_total{0};
    // Outer loop on the pool; each body issues another parallelFor on
    // the same pool. Nested sections must run inline (no deadlock on
    // the single job slot, no thread explosion) and still cover every
    // index exactly once.
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(16, [&](std::size_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h = 0;
    pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    // Reuse: a second loop on the same pool must also run cleanly.
    std::atomic<int> sum{0};
    pool.parallelFor(100, [&](std::size_t i) {
        sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 4950);
}

} // namespace
} // namespace ptolemy::path
